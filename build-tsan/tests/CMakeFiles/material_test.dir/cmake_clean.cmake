file(REMOVE_RECURSE
  "CMakeFiles/material_test.dir/material_test.cpp.o"
  "CMakeFiles/material_test.dir/material_test.cpp.o.d"
  "material_test"
  "material_test.pdb"
  "material_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/material_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
