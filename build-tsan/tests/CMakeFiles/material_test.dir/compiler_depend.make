# Empty compiler generated dependencies file for material_test.
# This may be replaced when dependencies are built.
