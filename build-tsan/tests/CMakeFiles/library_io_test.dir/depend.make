# Empty dependencies file for library_io_test.
# This may be replaced when dependencies are built.
