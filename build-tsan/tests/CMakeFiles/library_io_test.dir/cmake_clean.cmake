file(REMOVE_RECURSE
  "CMakeFiles/library_io_test.dir/library_io_test.cpp.o"
  "CMakeFiles/library_io_test.dir/library_io_test.cpp.o.d"
  "library_io_test"
  "library_io_test.pdb"
  "library_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/library_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
