
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/perfmodel_test.cpp" "tests/CMakeFiles/perfmodel_test.dir/perfmodel_test.cpp.o" "gcc" "tests/CMakeFiles/perfmodel_test.dir/perfmodel_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/models/CMakeFiles/antmoc_models.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/cluster/CMakeFiles/antmoc_cluster.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/partition/CMakeFiles/antmoc_partition.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/perfmodel/CMakeFiles/antmoc_perfmodel.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/solver/CMakeFiles/antmoc_solver.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/comm/CMakeFiles/antmoc_comm.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/gpusim/CMakeFiles/antmoc_gpusim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/fault/CMakeFiles/antmoc_fault.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/material/CMakeFiles/antmoc_material.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/track/CMakeFiles/antmoc_track.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/io/CMakeFiles/antmoc_io.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/geometry/CMakeFiles/antmoc_geometry.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/antmoc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
