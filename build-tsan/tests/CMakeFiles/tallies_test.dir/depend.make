# Empty dependencies file for tallies_test.
# This may be replaced when dependencies are built.
