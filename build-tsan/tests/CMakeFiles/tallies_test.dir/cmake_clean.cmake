file(REMOVE_RECURSE
  "CMakeFiles/tallies_test.dir/tallies_test.cpp.o"
  "CMakeFiles/tallies_test.dir/tallies_test.cpp.o.d"
  "tallies_test"
  "tallies_test.pdb"
  "tallies_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tallies_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
