file(REMOVE_RECURSE
  "CMakeFiles/param_test.dir/param_test.cpp.o"
  "CMakeFiles/param_test.dir/param_test.cpp.o.d"
  "param_test"
  "param_test.pdb"
  "param_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/param_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
