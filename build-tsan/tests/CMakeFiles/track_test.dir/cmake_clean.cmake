file(REMOVE_RECURSE
  "CMakeFiles/track_test.dir/track_test.cpp.o"
  "CMakeFiles/track_test.dir/track_test.cpp.o.d"
  "track_test"
  "track_test.pdb"
  "track_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/track_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
