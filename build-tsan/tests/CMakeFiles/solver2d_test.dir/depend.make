# Empty dependencies file for solver2d_test.
# This may be replaced when dependencies are built.
