file(REMOVE_RECURSE
  "CMakeFiles/solver2d_test.dir/solver2d_test.cpp.o"
  "CMakeFiles/solver2d_test.dir/solver2d_test.cpp.o.d"
  "solver2d_test"
  "solver2d_test.pdb"
  "solver2d_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solver2d_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
