file(REMOVE_RECURSE
  "CMakeFiles/physics_test.dir/physics_test.cpp.o"
  "CMakeFiles/physics_test.dir/physics_test.cpp.o.d"
  "physics_test"
  "physics_test.pdb"
  "physics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/physics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
