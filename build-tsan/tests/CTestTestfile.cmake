# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-tsan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-tsan/tests/util_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/comm_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/gpusim_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/geometry_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/material_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/track_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/solver_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/domain_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/perfmodel_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/partition_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/cluster_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/io_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/models_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/multi_gpu_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/subdivision_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/tallies_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/physics_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/param_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/features_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/solver2d_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/library_io_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/robustness_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/fault_test[1]_include.cmake")
