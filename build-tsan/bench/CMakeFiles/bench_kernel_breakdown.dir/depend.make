# Empty dependencies file for bench_kernel_breakdown.
# This may be replaced when dependencies are built.
