file(REMOVE_RECURSE
  "CMakeFiles/bench_track_management.dir/bench_track_management.cpp.o"
  "CMakeFiles/bench_track_management.dir/bench_track_management.cpp.o.d"
  "bench_track_management"
  "bench_track_management.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_track_management.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
