# Empty dependencies file for bench_track_management.
# This may be replaced when dependencies are built.
