file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_model.dir/bench_perf_model.cpp.o"
  "CMakeFiles/bench_perf_model.dir/bench_perf_model.cpp.o.d"
  "bench_perf_model"
  "bench_perf_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
