file(REMOVE_RECURSE
  "CMakeFiles/bench_discretization.dir/bench_discretization.cpp.o"
  "CMakeFiles/bench_discretization.dir/bench_discretization.cpp.o.d"
  "bench_discretization"
  "bench_discretization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_discretization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
