# Empty dependencies file for bench_discretization.
# This may be replaced when dependencies are built.
