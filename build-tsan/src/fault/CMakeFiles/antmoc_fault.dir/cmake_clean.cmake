file(REMOVE_RECURSE
  "CMakeFiles/antmoc_fault.dir/fault.cpp.o"
  "CMakeFiles/antmoc_fault.dir/fault.cpp.o.d"
  "libantmoc_fault.a"
  "libantmoc_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/antmoc_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
