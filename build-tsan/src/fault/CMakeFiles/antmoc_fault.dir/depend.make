# Empty dependencies file for antmoc_fault.
# This may be replaced when dependencies are built.
