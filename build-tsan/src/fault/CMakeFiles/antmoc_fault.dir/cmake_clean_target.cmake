file(REMOVE_RECURSE
  "libantmoc_fault.a"
)
