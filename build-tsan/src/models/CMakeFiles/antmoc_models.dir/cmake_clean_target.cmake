file(REMOVE_RECURSE
  "libantmoc_models.a"
)
