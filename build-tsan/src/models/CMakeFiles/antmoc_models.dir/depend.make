# Empty dependencies file for antmoc_models.
# This may be replaced when dependencies are built.
