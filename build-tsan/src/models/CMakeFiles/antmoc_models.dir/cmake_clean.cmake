file(REMOVE_RECURSE
  "CMakeFiles/antmoc_models.dir/c5g7_model.cpp.o"
  "CMakeFiles/antmoc_models.dir/c5g7_model.cpp.o.d"
  "libantmoc_models.a"
  "libantmoc_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/antmoc_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
