file(REMOVE_RECURSE
  "libantmoc_track.a"
)
