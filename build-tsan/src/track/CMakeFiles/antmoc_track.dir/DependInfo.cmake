
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/track/generator2d.cpp" "src/track/CMakeFiles/antmoc_track.dir/generator2d.cpp.o" "gcc" "src/track/CMakeFiles/antmoc_track.dir/generator2d.cpp.o.d"
  "/root/repo/src/track/quadrature.cpp" "src/track/CMakeFiles/antmoc_track.dir/quadrature.cpp.o" "gcc" "src/track/CMakeFiles/antmoc_track.dir/quadrature.cpp.o.d"
  "/root/repo/src/track/track3d.cpp" "src/track/CMakeFiles/antmoc_track.dir/track3d.cpp.o" "gcc" "src/track/CMakeFiles/antmoc_track.dir/track3d.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/geometry/CMakeFiles/antmoc_geometry.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/antmoc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
