file(REMOVE_RECURSE
  "CMakeFiles/antmoc_track.dir/generator2d.cpp.o"
  "CMakeFiles/antmoc_track.dir/generator2d.cpp.o.d"
  "CMakeFiles/antmoc_track.dir/quadrature.cpp.o"
  "CMakeFiles/antmoc_track.dir/quadrature.cpp.o.d"
  "CMakeFiles/antmoc_track.dir/track3d.cpp.o"
  "CMakeFiles/antmoc_track.dir/track3d.cpp.o.d"
  "libantmoc_track.a"
  "libantmoc_track.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/antmoc_track.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
