# Empty dependencies file for antmoc_track.
# This may be replaced when dependencies are built.
