file(REMOVE_RECURSE
  "libantmoc_util.a"
)
