# Empty dependencies file for antmoc_util.
# This may be replaced when dependencies are built.
