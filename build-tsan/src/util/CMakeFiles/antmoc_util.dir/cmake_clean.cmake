file(REMOVE_RECURSE
  "CMakeFiles/antmoc_util.dir/cli.cpp.o"
  "CMakeFiles/antmoc_util.dir/cli.cpp.o.d"
  "CMakeFiles/antmoc_util.dir/config.cpp.o"
  "CMakeFiles/antmoc_util.dir/config.cpp.o.d"
  "CMakeFiles/antmoc_util.dir/log.cpp.o"
  "CMakeFiles/antmoc_util.dir/log.cpp.o.d"
  "CMakeFiles/antmoc_util.dir/timer.cpp.o"
  "CMakeFiles/antmoc_util.dir/timer.cpp.o.d"
  "libantmoc_util.a"
  "libantmoc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/antmoc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
