# Empty dependencies file for antmoc_partition.
# This may be replaced when dependencies are built.
