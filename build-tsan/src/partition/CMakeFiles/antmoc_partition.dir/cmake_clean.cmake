file(REMOVE_RECURSE
  "CMakeFiles/antmoc_partition.dir/graph.cpp.o"
  "CMakeFiles/antmoc_partition.dir/graph.cpp.o.d"
  "CMakeFiles/antmoc_partition.dir/load_mapper.cpp.o"
  "CMakeFiles/antmoc_partition.dir/load_mapper.cpp.o.d"
  "CMakeFiles/antmoc_partition.dir/partitioner.cpp.o"
  "CMakeFiles/antmoc_partition.dir/partitioner.cpp.o.d"
  "libantmoc_partition.a"
  "libantmoc_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/antmoc_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
