
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/partition/graph.cpp" "src/partition/CMakeFiles/antmoc_partition.dir/graph.cpp.o" "gcc" "src/partition/CMakeFiles/antmoc_partition.dir/graph.cpp.o.d"
  "/root/repo/src/partition/load_mapper.cpp" "src/partition/CMakeFiles/antmoc_partition.dir/load_mapper.cpp.o" "gcc" "src/partition/CMakeFiles/antmoc_partition.dir/load_mapper.cpp.o.d"
  "/root/repo/src/partition/partitioner.cpp" "src/partition/CMakeFiles/antmoc_partition.dir/partitioner.cpp.o" "gcc" "src/partition/CMakeFiles/antmoc_partition.dir/partitioner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/perfmodel/CMakeFiles/antmoc_perfmodel.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/solver/CMakeFiles/antmoc_solver.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/track/CMakeFiles/antmoc_track.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/antmoc_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/material/CMakeFiles/antmoc_material.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/gpusim/CMakeFiles/antmoc_gpusim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/comm/CMakeFiles/antmoc_comm.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/fault/CMakeFiles/antmoc_fault.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/geometry/CMakeFiles/antmoc_geometry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
