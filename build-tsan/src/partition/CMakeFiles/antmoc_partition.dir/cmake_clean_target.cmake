file(REMOVE_RECURSE
  "libantmoc_partition.a"
)
