# Empty dependencies file for antmoc_cluster.
# This may be replaced when dependencies are built.
