file(REMOVE_RECURSE
  "CMakeFiles/antmoc_cluster.dir/scaling.cpp.o"
  "CMakeFiles/antmoc_cluster.dir/scaling.cpp.o.d"
  "libantmoc_cluster.a"
  "libantmoc_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/antmoc_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
