file(REMOVE_RECURSE
  "libantmoc_cluster.a"
)
