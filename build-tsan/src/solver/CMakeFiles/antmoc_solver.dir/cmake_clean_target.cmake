file(REMOVE_RECURSE
  "libantmoc_solver.a"
)
