# Empty dependencies file for antmoc_solver.
# This may be replaced when dependencies are built.
