
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/solver/cpu_solver.cpp" "src/solver/CMakeFiles/antmoc_solver.dir/cpu_solver.cpp.o" "gcc" "src/solver/CMakeFiles/antmoc_solver.dir/cpu_solver.cpp.o.d"
  "/root/repo/src/solver/decomposition.cpp" "src/solver/CMakeFiles/antmoc_solver.dir/decomposition.cpp.o" "gcc" "src/solver/CMakeFiles/antmoc_solver.dir/decomposition.cpp.o.d"
  "/root/repo/src/solver/domain_solver.cpp" "src/solver/CMakeFiles/antmoc_solver.dir/domain_solver.cpp.o" "gcc" "src/solver/CMakeFiles/antmoc_solver.dir/domain_solver.cpp.o.d"
  "/root/repo/src/solver/fsr_data.cpp" "src/solver/CMakeFiles/antmoc_solver.dir/fsr_data.cpp.o" "gcc" "src/solver/CMakeFiles/antmoc_solver.dir/fsr_data.cpp.o.d"
  "/root/repo/src/solver/gpu_solver.cpp" "src/solver/CMakeFiles/antmoc_solver.dir/gpu_solver.cpp.o" "gcc" "src/solver/CMakeFiles/antmoc_solver.dir/gpu_solver.cpp.o.d"
  "/root/repo/src/solver/multi_gpu_solver.cpp" "src/solver/CMakeFiles/antmoc_solver.dir/multi_gpu_solver.cpp.o" "gcc" "src/solver/CMakeFiles/antmoc_solver.dir/multi_gpu_solver.cpp.o.d"
  "/root/repo/src/solver/resilient_solver.cpp" "src/solver/CMakeFiles/antmoc_solver.dir/resilient_solver.cpp.o" "gcc" "src/solver/CMakeFiles/antmoc_solver.dir/resilient_solver.cpp.o.d"
  "/root/repo/src/solver/solver2d.cpp" "src/solver/CMakeFiles/antmoc_solver.dir/solver2d.cpp.o" "gcc" "src/solver/CMakeFiles/antmoc_solver.dir/solver2d.cpp.o.d"
  "/root/repo/src/solver/tallies.cpp" "src/solver/CMakeFiles/antmoc_solver.dir/tallies.cpp.o" "gcc" "src/solver/CMakeFiles/antmoc_solver.dir/tallies.cpp.o.d"
  "/root/repo/src/solver/track_policy.cpp" "src/solver/CMakeFiles/antmoc_solver.dir/track_policy.cpp.o" "gcc" "src/solver/CMakeFiles/antmoc_solver.dir/track_policy.cpp.o.d"
  "/root/repo/src/solver/transport_solver.cpp" "src/solver/CMakeFiles/antmoc_solver.dir/transport_solver.cpp.o" "gcc" "src/solver/CMakeFiles/antmoc_solver.dir/transport_solver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/track/CMakeFiles/antmoc_track.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/material/CMakeFiles/antmoc_material.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/geometry/CMakeFiles/antmoc_geometry.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/gpusim/CMakeFiles/antmoc_gpusim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/comm/CMakeFiles/antmoc_comm.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/fault/CMakeFiles/antmoc_fault.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/antmoc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
