file(REMOVE_RECURSE
  "CMakeFiles/antmoc_solver.dir/cpu_solver.cpp.o"
  "CMakeFiles/antmoc_solver.dir/cpu_solver.cpp.o.d"
  "CMakeFiles/antmoc_solver.dir/decomposition.cpp.o"
  "CMakeFiles/antmoc_solver.dir/decomposition.cpp.o.d"
  "CMakeFiles/antmoc_solver.dir/domain_solver.cpp.o"
  "CMakeFiles/antmoc_solver.dir/domain_solver.cpp.o.d"
  "CMakeFiles/antmoc_solver.dir/fsr_data.cpp.o"
  "CMakeFiles/antmoc_solver.dir/fsr_data.cpp.o.d"
  "CMakeFiles/antmoc_solver.dir/gpu_solver.cpp.o"
  "CMakeFiles/antmoc_solver.dir/gpu_solver.cpp.o.d"
  "CMakeFiles/antmoc_solver.dir/multi_gpu_solver.cpp.o"
  "CMakeFiles/antmoc_solver.dir/multi_gpu_solver.cpp.o.d"
  "CMakeFiles/antmoc_solver.dir/resilient_solver.cpp.o"
  "CMakeFiles/antmoc_solver.dir/resilient_solver.cpp.o.d"
  "CMakeFiles/antmoc_solver.dir/solver2d.cpp.o"
  "CMakeFiles/antmoc_solver.dir/solver2d.cpp.o.d"
  "CMakeFiles/antmoc_solver.dir/tallies.cpp.o"
  "CMakeFiles/antmoc_solver.dir/tallies.cpp.o.d"
  "CMakeFiles/antmoc_solver.dir/track_policy.cpp.o"
  "CMakeFiles/antmoc_solver.dir/track_policy.cpp.o.d"
  "CMakeFiles/antmoc_solver.dir/transport_solver.cpp.o"
  "CMakeFiles/antmoc_solver.dir/transport_solver.cpp.o.d"
  "libantmoc_solver.a"
  "libantmoc_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/antmoc_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
