file(REMOVE_RECURSE
  "CMakeFiles/antmoc_gpusim.dir/device.cpp.o"
  "CMakeFiles/antmoc_gpusim.dir/device.cpp.o.d"
  "CMakeFiles/antmoc_gpusim.dir/device_memory.cpp.o"
  "CMakeFiles/antmoc_gpusim.dir/device_memory.cpp.o.d"
  "CMakeFiles/antmoc_gpusim.dir/thread_pool.cpp.o"
  "CMakeFiles/antmoc_gpusim.dir/thread_pool.cpp.o.d"
  "libantmoc_gpusim.a"
  "libantmoc_gpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/antmoc_gpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
