file(REMOVE_RECURSE
  "libantmoc_gpusim.a"
)
