# Empty dependencies file for antmoc_gpusim.
# This may be replaced when dependencies are built.
