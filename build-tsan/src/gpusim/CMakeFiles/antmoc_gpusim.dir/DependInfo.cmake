
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpusim/device.cpp" "src/gpusim/CMakeFiles/antmoc_gpusim.dir/device.cpp.o" "gcc" "src/gpusim/CMakeFiles/antmoc_gpusim.dir/device.cpp.o.d"
  "/root/repo/src/gpusim/device_memory.cpp" "src/gpusim/CMakeFiles/antmoc_gpusim.dir/device_memory.cpp.o" "gcc" "src/gpusim/CMakeFiles/antmoc_gpusim.dir/device_memory.cpp.o.d"
  "/root/repo/src/gpusim/thread_pool.cpp" "src/gpusim/CMakeFiles/antmoc_gpusim.dir/thread_pool.cpp.o" "gcc" "src/gpusim/CMakeFiles/antmoc_gpusim.dir/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/antmoc_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/fault/CMakeFiles/antmoc_fault.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
