# Empty dependencies file for antmoc_io.
# This may be replaced when dependencies are built.
