file(REMOVE_RECURSE
  "libantmoc_io.a"
)
