file(REMOVE_RECURSE
  "CMakeFiles/antmoc_io.dir/writers.cpp.o"
  "CMakeFiles/antmoc_io.dir/writers.cpp.o.d"
  "libantmoc_io.a"
  "libantmoc_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/antmoc_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
