file(REMOVE_RECURSE
  "CMakeFiles/antmoc_perfmodel.dir/perfmodel.cpp.o"
  "CMakeFiles/antmoc_perfmodel.dir/perfmodel.cpp.o.d"
  "libantmoc_perfmodel.a"
  "libantmoc_perfmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/antmoc_perfmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
