# Empty dependencies file for antmoc_perfmodel.
# This may be replaced when dependencies are built.
