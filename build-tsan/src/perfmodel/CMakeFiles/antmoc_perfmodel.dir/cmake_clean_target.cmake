file(REMOVE_RECURSE
  "libantmoc_perfmodel.a"
)
