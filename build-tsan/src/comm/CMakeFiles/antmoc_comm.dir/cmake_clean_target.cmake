file(REMOVE_RECURSE
  "libantmoc_comm.a"
)
