file(REMOVE_RECURSE
  "CMakeFiles/antmoc_comm.dir/communicator.cpp.o"
  "CMakeFiles/antmoc_comm.dir/communicator.cpp.o.d"
  "CMakeFiles/antmoc_comm.dir/runtime.cpp.o"
  "CMakeFiles/antmoc_comm.dir/runtime.cpp.o.d"
  "libantmoc_comm.a"
  "libantmoc_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/antmoc_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
