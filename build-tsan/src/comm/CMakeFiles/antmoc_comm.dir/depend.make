# Empty dependencies file for antmoc_comm.
# This may be replaced when dependencies are built.
