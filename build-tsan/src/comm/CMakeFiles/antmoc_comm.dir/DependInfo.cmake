
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/comm/communicator.cpp" "src/comm/CMakeFiles/antmoc_comm.dir/communicator.cpp.o" "gcc" "src/comm/CMakeFiles/antmoc_comm.dir/communicator.cpp.o.d"
  "/root/repo/src/comm/runtime.cpp" "src/comm/CMakeFiles/antmoc_comm.dir/runtime.cpp.o" "gcc" "src/comm/CMakeFiles/antmoc_comm.dir/runtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/antmoc_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/fault/CMakeFiles/antmoc_fault.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
