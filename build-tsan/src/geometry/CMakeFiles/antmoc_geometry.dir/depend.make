# Empty dependencies file for antmoc_geometry.
# This may be replaced when dependencies are built.
