file(REMOVE_RECURSE
  "CMakeFiles/antmoc_geometry.dir/builder.cpp.o"
  "CMakeFiles/antmoc_geometry.dir/builder.cpp.o.d"
  "CMakeFiles/antmoc_geometry.dir/geometry.cpp.o"
  "CMakeFiles/antmoc_geometry.dir/geometry.cpp.o.d"
  "CMakeFiles/antmoc_geometry.dir/surface.cpp.o"
  "CMakeFiles/antmoc_geometry.dir/surface.cpp.o.d"
  "libantmoc_geometry.a"
  "libantmoc_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/antmoc_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
