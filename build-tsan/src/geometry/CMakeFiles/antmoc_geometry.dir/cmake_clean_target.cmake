file(REMOVE_RECURSE
  "libantmoc_geometry.a"
)
