# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-tsan/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("fault")
subdirs("comm")
subdirs("gpusim")
subdirs("geometry")
subdirs("material")
subdirs("models")
subdirs("track")
subdirs("perfmodel")
subdirs("solver")
subdirs("partition")
subdirs("cluster")
subdirs("io")
