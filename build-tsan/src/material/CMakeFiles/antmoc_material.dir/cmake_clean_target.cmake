file(REMOVE_RECURSE
  "libantmoc_material.a"
)
