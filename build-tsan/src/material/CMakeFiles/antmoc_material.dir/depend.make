# Empty dependencies file for antmoc_material.
# This may be replaced when dependencies are built.
