
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/material/c5g7.cpp" "src/material/CMakeFiles/antmoc_material.dir/c5g7.cpp.o" "gcc" "src/material/CMakeFiles/antmoc_material.dir/c5g7.cpp.o.d"
  "/root/repo/src/material/library_io.cpp" "src/material/CMakeFiles/antmoc_material.dir/library_io.cpp.o" "gcc" "src/material/CMakeFiles/antmoc_material.dir/library_io.cpp.o.d"
  "/root/repo/src/material/material.cpp" "src/material/CMakeFiles/antmoc_material.dir/material.cpp.o" "gcc" "src/material/CMakeFiles/antmoc_material.dir/material.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/antmoc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
