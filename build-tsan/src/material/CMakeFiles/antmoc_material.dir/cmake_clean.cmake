file(REMOVE_RECURSE
  "CMakeFiles/antmoc_material.dir/c5g7.cpp.o"
  "CMakeFiles/antmoc_material.dir/c5g7.cpp.o.d"
  "CMakeFiles/antmoc_material.dir/library_io.cpp.o"
  "CMakeFiles/antmoc_material.dir/library_io.cpp.o.d"
  "CMakeFiles/antmoc_material.dir/material.cpp.o"
  "CMakeFiles/antmoc_material.dir/material.cpp.o.d"
  "libantmoc_material.a"
  "libantmoc_material.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/antmoc_material.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
