file(REMOVE_RECURSE
  "CMakeFiles/rod_worth.dir/rod_worth.cpp.o"
  "CMakeFiles/rod_worth.dir/rod_worth.cpp.o.d"
  "rod_worth"
  "rod_worth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rod_worth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
