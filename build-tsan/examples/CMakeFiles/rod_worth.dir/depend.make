# Empty dependencies file for rod_worth.
# This may be replaced when dependencies are built.
