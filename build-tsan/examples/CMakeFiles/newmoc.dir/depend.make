# Empty dependencies file for newmoc.
# This may be replaced when dependencies are built.
