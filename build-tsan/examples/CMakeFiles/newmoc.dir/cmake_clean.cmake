file(REMOVE_RECURSE
  "CMakeFiles/newmoc.dir/c5g7_core.cpp.o"
  "CMakeFiles/newmoc.dir/c5g7_core.cpp.o.d"
  "newmoc"
  "newmoc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/newmoc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
