# Empty compiler generated dependencies file for track_management.
# This may be replaced when dependencies are built.
