file(REMOVE_RECURSE
  "CMakeFiles/track_management.dir/track_management.cpp.o"
  "CMakeFiles/track_management.dir/track_management.cpp.o.d"
  "track_management"
  "track_management.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/track_management.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
