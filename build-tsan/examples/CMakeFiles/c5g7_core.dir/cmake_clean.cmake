file(REMOVE_RECURSE
  "CMakeFiles/c5g7_core.dir/c5g7_core.cpp.o"
  "CMakeFiles/c5g7_core.dir/c5g7_core.cpp.o.d"
  "c5g7_core"
  "c5g7_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/c5g7_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
