# Empty dependencies file for c5g7_core.
# This may be replaced when dependencies are built.
