#include "models/c5g7_model.h"

#include <array>

#include "geometry/builder.h"
#include "material/c5g7.h"
#include "util/error.h"

namespace antmoc::models {
namespace {

constexpr double kPinPitch = 1.26;
constexpr double kPinRadius = 0.54;
constexpr double kFuelHeight = 42.84;
constexpr double kTotalHeight = 64.26;

/// Alias material ids used to target rod insertion per assembly class
/// (the zone-override mechanism replaces materials by id).
constexpr int kGtInnerUo2 = 8;  ///< guide tubes of the inner UO2 assembly
constexpr int kGtMox = 9;       ///< guide tubes of the MOX assemblies

/// The 24 guide-tube positions of the 17x17 benchmark assembly
/// (fission chamber at (8,8) handled separately).
constexpr std::array<std::array<int, 2>, 24> kGuideTubes = {{
    {{2, 5}},  {{2, 8}},  {{2, 11}}, {{3, 3}},  {{3, 13}},
    {{5, 2}},  {{5, 5}},  {{5, 8}},  {{5, 11}}, {{5, 14}},
    {{8, 2}},  {{8, 5}},  {{8, 11}}, {{8, 14}},
    {{11, 2}}, {{11, 5}}, {{11, 8}}, {{11, 11}}, {{11, 14}},
    {{13, 3}}, {{13, 13}},
    {{14, 5}}, {{14, 8}}, {{14, 11}},
}};

bool is_guide_tube(int i, int j) {
  for (const auto& gt : kGuideTubes)
    if (gt[0] == j && gt[1] == i) return true;
  return false;
}

/// MOX enrichment zoning (benchmark figure): 4.3% on the outer ring,
/// 7.0% in the next three rings and at the corners of the central zone,
/// 8.7% in the octagonal center.
int mox_material(int i, int j, int n) {
  const int d = std::min(std::min(i, j), std::min(n - 1 - i, n - 1 - j));
  if (d == 0) return c5g7::kMOX43;
  if (d <= 3) return c5g7::kMOX70;
  const bool corner_of_center =
      (i == 4 || i == n - 5) && (j == 4 || j == n - 5);
  return corner_of_center ? c5g7::kMOX70 : c5g7::kMOX87;
}

enum class AssemblyKind { kUo2Inner, kUo2Outer, kMox, kReflector };

/// Pin material map for one assembly position.
int pin_material(AssemblyKind kind, int i, int j, int n) {
  const int center = n / 2;
  if (i == center && j == center) return c5g7::kFissionChamber;
  if (n == 17 && is_guide_tube(i, j)) {
    switch (kind) {
      case AssemblyKind::kUo2Inner: return kGtInnerUo2;
      case AssemblyKind::kMox: return kGtMox;
      default: return c5g7::kGuideTube;
    }
  }
  if (kind == AssemblyKind::kMox) return mox_material(i, j, n);
  return c5g7::kUO2;
}

std::vector<Material> benchmark_materials() {
  auto mats = c5g7::materials();
  // Aliases for per-assembly rod targeting (same physics as GuideTube).
  Material gt_inner = mats[c5g7::kGuideTube];
  Material gt_mox = mats[c5g7::kGuideTube];
  mats.push_back(gt_inner);  // id 8
  mats.push_back(gt_mox);    // id 9
  return mats;
}

/// Builds one assembly universe; returns its universe id. Pin universes
/// are created per distinct material on demand.
int build_assembly_universe(GeometryBuilder& b, AssemblyKind kind, int n,
                            std::vector<int>& pin_universe_of_material,
                            const PinSubdivision& subdivision) {
  if (kind == AssemblyKind::kReflector) {
    const int u = b.add_universe("reflector_assembly");
    b.add_cell(u, "water", c5g7::kModerator, {});
    return u;
  }
  std::vector<int> pins(n * n);
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < n; ++i) {
      const int m = pin_material(kind, i, j, n);
      if (pin_universe_of_material[m] < 0)
        pin_universe_of_material[m] = b.add_pin_universe(
            "pin_m" + std::to_string(m), m, c5g7::kModerator, kPinRadius,
            subdivision);
      pins[j * n + i] = pin_universe_of_material[m];
    }
  const char* name = kind == AssemblyKind::kMox ? "mox_assembly"
                                                : "uo2_assembly";
  const int lat =
      b.add_centered_lattice(name, n, n, kPinPitch, kPinPitch, pins);
  const int u = b.add_universe(std::string(name) + "_u");
  b.add_fill_cell(u, "lat", lat, {});
  return u;
}

/// Appends the 4 axial zones (3 fuel thirds + top reflector) and the rod
/// configuration's material overrides.
void add_axial_zones(GeometryBuilder& b, const C5G7Options& opt) {
  const double hs = opt.height_scale;
  require(hs > 0.0, "height_scale must be positive");
  const double fuel_h = kFuelHeight * hs;
  const double total_h = kTotalHeight * hs;
  const int third_layers = std::max(1, opt.fuel_layers / 3);
  b.add_axial_zone(0.0, fuel_h / 3, third_layers);
  b.add_axial_zone(fuel_h / 3, 2 * fuel_h / 3, third_layers);
  b.add_axial_zone(2 * fuel_h / 3, fuel_h, third_layers);
  b.add_axial_zone(fuel_h, total_h, std::max(1, opt.reflector_layers));

  // Top reflector: every fuel column becomes water; guide tubes persist.
  for (int m : {static_cast<int>(c5g7::kUO2), static_cast<int>(c5g7::kMOX43),
                static_cast<int>(c5g7::kMOX70),
                static_cast<int>(c5g7::kMOX87),
                static_cast<int>(c5g7::kFissionChamber)})
    b.override_zone_material(3, m, c5g7::kModerator);

  switch (opt.config) {
    case RodConfig::kUnrodded:
      break;
    case RodConfig::kRoddedA:
      // Inner UO2 rods: upper third of the core + the reflector above it.
      b.override_zone_material(3, kGtInnerUo2, c5g7::kControlRod);
      b.override_zone_material(2, kGtInnerUo2, c5g7::kControlRod);
      break;
    case RodConfig::kRoddedB:
      b.override_zone_material(3, kGtInnerUo2, c5g7::kControlRod);
      b.override_zone_material(2, kGtInnerUo2, c5g7::kControlRod);
      b.override_zone_material(1, kGtInnerUo2, c5g7::kControlRod);
      b.override_zone_material(3, kGtMox, c5g7::kControlRod);
      b.override_zone_material(2, kGtMox, c5g7::kControlRod);
      break;
  }
}

void set_benchmark_boundaries(GeometryBuilder& b) {
  // Quarter-core symmetry: reflective toward the core center planes.
  b.set_boundary(Face::kXMin, BoundaryType::kReflective);
  b.set_boundary(Face::kYMin, BoundaryType::kReflective);
  b.set_boundary(Face::kZMin, BoundaryType::kReflective);
  b.set_boundary(Face::kXMax, BoundaryType::kVacuum);
  b.set_boundary(Face::kYMax, BoundaryType::kVacuum);
  b.set_boundary(Face::kZMax, BoundaryType::kVacuum);
}

}  // namespace

C5G7Model build_core(const C5G7Options& opt) {
  require(opt.pins_per_assembly >= 1 && opt.pins_per_assembly % 2 == 1,
          "pins_per_assembly must be odd");
  const int n = opt.pins_per_assembly;
  const double asm_w = n * kPinPitch;

  GeometryBuilder b;
  std::vector<int> pin_universe(c5g7::kNumMaterials + 2, -1);
  const int uo2_inner = build_assembly_universe(
      b, AssemblyKind::kUo2Inner, n, pin_universe, opt.subdivision);
  const int uo2_outer = build_assembly_universe(
      b, AssemblyKind::kUo2Outer, n, pin_universe, opt.subdivision);
  const int mox = build_assembly_universe(b, AssemblyKind::kMox, n,
                                          pin_universe, opt.subdivision);
  const int refl = build_assembly_universe(b, AssemblyKind::kReflector, n,
                                           pin_universe, opt.subdivision);

  // Fig. 6 quarter-core: inner UO2 at the symmetry corner, MOX on the
  // anti-diagonal, reflector along the outer L.
  const std::vector<int> core = {
      uo2_inner, mox,       refl,  // j = 0 (y_min row)
      mox,       uo2_outer, refl,  // j = 1
      refl,      refl,      refl,  // j = 2
  };
  const int root =
      b.add_lattice("core", 3, 3, asm_w, asm_w, 0.0, 0.0, core);
  b.set_root(root);

  Bounds bounds;
  bounds.x_max = 3 * asm_w;
  bounds.y_max = 3 * asm_w;
  b.set_bounds(bounds);
  set_benchmark_boundaries(b);
  add_axial_zones(b, opt);

  return {b.build(), benchmark_materials()};
}

C5G7Model build_assembly(const C5G7Options& opt) {
  require(opt.pins_per_assembly >= 1 && opt.pins_per_assembly % 2 == 1,
          "pins_per_assembly must be odd");
  const int n = opt.pins_per_assembly;
  const double asm_w = n * kPinPitch;

  GeometryBuilder b;
  std::vector<int> pin_universe(c5g7::kNumMaterials + 2, -1);
  const int u = build_assembly_universe(b, AssemblyKind::kUo2Inner, n,
                                        pin_universe, opt.subdivision);
  const int root = b.add_lattice("root", 1, 1, asm_w, asm_w, 0.0, 0.0, {u});
  b.set_root(root);

  Bounds bounds;
  bounds.x_max = asm_w;
  bounds.y_max = asm_w;
  b.set_bounds(bounds);
  b.set_all_radial_boundaries(BoundaryType::kReflective);
  b.set_boundary(Face::kZMin, BoundaryType::kReflective);
  b.set_boundary(Face::kZMax, BoundaryType::kVacuum);
  add_axial_zones(b, opt);

  return {b.build(), benchmark_materials()};
}

C5G7Model build_pin_cell(int axial_layers, double height) {
  GeometryBuilder b;
  const int circ = b.add_circle(0.0, 0.0, kPinRadius);
  const int pin = b.add_universe("pin");
  b.add_cell(pin, "fuel", c5g7::kUO2, {b.inside(circ)});
  b.add_cell(pin, "mod", c5g7::kModerator, {b.outside(circ)});
  const int root =
      b.add_lattice("root", 1, 1, kPinPitch, kPinPitch, 0.0, 0.0, {pin});
  b.set_root(root);

  Bounds bounds;
  bounds.x_max = kPinPitch;
  bounds.y_max = kPinPitch;
  b.set_bounds(bounds);
  b.set_all_radial_boundaries(BoundaryType::kReflective);
  b.set_boundary(Face::kZMin, BoundaryType::kReflective);
  b.set_boundary(Face::kZMax, BoundaryType::kReflective);
  b.add_axial_zone(0.0, height, axial_layers);

  return {b.build(), benchmark_materials()};
}

std::vector<double> pin_powers(const Geometry& geometry,
                               const std::vector<double>& fission_rate,
                               const std::vector<double>& volumes,
                               int pins_x, int pins_y) {
  require(static_cast<long>(fission_rate.size()) == geometry.num_fsrs(),
          "fission_rate size mismatch");
  require(static_cast<long>(volumes.size()) == geometry.num_fsrs(),
          "volumes size mismatch");
  const Bounds& b = geometry.bounds();
  const double px = b.width_x() / pins_x;
  const double py = b.width_y() / pins_y;

  // The fission power of a pin cell is carried by its (unique) fuel
  // region; locate it by the pin center and integrate over layers.
  std::vector<double> power(static_cast<std::size_t>(pins_x) * pins_y, 0.0);
  for (int j = 0; j < pins_y; ++j)
    for (int i = 0; i < pins_x; ++i) {
      const Point2 center{b.x_min + (i + 0.5) * px,
                          b.y_min + (j + 0.5) * py};
      const int region = geometry.find_radial(center).region;
      double p = 0.0;
      for (int l = 0; l < geometry.num_axial_layers(); ++l) {
        const long fsr = geometry.fsr_id(region, l);
        p += fission_rate[fsr] * volumes[fsr];
      }
      power[static_cast<std::size_t>(j) * pins_x + i] = p;
    }
  return power;
}

}  // namespace antmoc::models
