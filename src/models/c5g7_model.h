#pragma once

/// \file c5g7_model.h
/// Builders for the OECD/NEA C5G7 3D extension benchmark geometry
/// (paper §5, Fig. 6): a 3x3 arrangement of two UO2 assemblies, two MOX
/// assemblies, and five reflector assemblies; 17x17 pin cells of 1.26 cm
/// pitch and 0.54 cm pin radius; 64.26 cm axial extent with the top third
/// an axial water reflector. Reflective boundaries on x_min/y_min/z_min
/// (the benchmark's quarter-core symmetry planes), vacuum elsewhere.
///
/// Scaled-down variants (fewer pins per assembly, reduced height, coarser
/// axial layering) keep the full heterogeneity structure for tests and
/// laptop-scale benches.

#include <vector>

#include "geometry/builder.h"
#include "geometry/geometry.h"
#include "material/material.h"

namespace antmoc::models {

enum class RodConfig {
  kUnrodded,  ///< control rods withdrawn (rods only above the core)
  kRoddedA,   ///< rods inserted into the inner UO2 assembly's upper third
  kRoddedB,   ///< rods into inner UO2 (2/3) and both MOX (1/3) assemblies
};

struct C5G7Options {
  RodConfig config = RodConfig::kUnrodded;

  /// Pins per assembly side. 17 reproduces the benchmark (guide-tube and
  /// MOX-enrichment maps included); other odd values build a scaled
  /// assembly with a central fission chamber and no guide tubes.
  int pins_per_assembly = 17;

  /// Axial layers in the fuel zone and in the top reflector zone.
  int fuel_layers = 3;
  int reflector_layers = 1;

  /// Scales the axial extent (1.0 = the benchmark's 64.26 cm).
  double height_scale = 1.0;

  /// FSR refinement of every pin (rings/sectors); default = 2 regions/pin.
  PinSubdivision subdivision;
};

struct C5G7Model {
  Geometry geometry;
  std::vector<Material> materials;
};

/// Full 3x3-assembly core (Fig. 6).
C5G7Model build_core(const C5G7Options& options = {});

/// One UO2 assembly with reflective radial boundaries (infinite lattice).
C5G7Model build_assembly(const C5G7Options& options = {});

/// A single UO2 pin cell with reflective radial boundaries.
C5G7Model build_pin_cell(int axial_layers = 2, double height = 4.0);

/// Pin-cell mesh index helpers for the §5.1 pin-wise fission-rate
/// comparison: averages FSR fission rates onto a (pins_x, pins_y) radial
/// pin grid, weighting by FSR volume.
std::vector<double> pin_powers(const Geometry& geometry,
                               const std::vector<double>& fission_rate,
                               const std::vector<double>& volumes,
                               int pins_x, int pins_y);

}  // namespace antmoc::models
