#include "io/writers.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "util/crc32.h"
#include "util/error.h"

namespace antmoc::io {
namespace {

std::ofstream open_or_throw(const std::string& path) {
  std::ofstream out(path);
  if (!out) fail<Error>("cannot open output file: " + path);
  return out;
}

constexpr char kBlobMagic[8] = {'A', 'N', 'T', 'M', 'O', 'C', '0', '2'};
constexpr char kV1Magic[8] = {'A', 'N', 'T', 'M', 'O', 'C', '0', '1'};

}  // namespace

void write_checked_blob(const std::string& path,
                        const std::vector<std::byte>& payload) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary);
    if (!out) fail<Error>("cannot open checkpoint for writing: " + tmp);
    const std::uint64_t size = payload.size();
    const std::uint32_t crc = util::crc32(payload.data(), payload.size());
    out.write(kBlobMagic, sizeof kBlobMagic);
    out.write(reinterpret_cast<const char*>(&size), sizeof size);
    out.write(reinterpret_cast<const char*>(&crc), sizeof crc);
    out.write(reinterpret_cast<const char*>(payload.data()), payload.size());
    require(static_cast<bool>(out), "checkpoint write failed: " + tmp);
  }
  // Atomic publish: a reader sees the old file or the new one, never a
  // torn write — the property the shard recovery line depends on.
  if (std::rename(tmp.c_str(), path.c_str()) != 0)
    fail<Error>("cannot rename " + tmp + " to " + path);
}

std::vector<std::byte> read_checked_blob(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail<Error>("cannot open checkpoint: " + path);
  char magic[8];
  in.read(magic, sizeof magic);
  if (!in) fail<Error>("checkpoint truncated inside the header: " + path);
  if (std::equal(magic, magic + 8, kV1Magic))
    fail<Error>("version-1 (pre-CRC) ANT-MOC checkpoint — re-create it "
                "with this build: " + path);
  require(std::equal(magic, magic + 8, kBlobMagic),
          "not an ANT-MOC checkpoint: " + path);
  std::uint64_t size = 0;
  std::uint32_t stored_crc = 0;
  in.read(reinterpret_cast<char*>(&size), sizeof size);
  in.read(reinterpret_cast<char*>(&stored_crc), sizeof stored_crc);
  if (!in) fail<Error>("checkpoint truncated inside the header: " + path);
  std::vector<std::byte> payload(size);
  in.read(reinterpret_cast<char*>(payload.data()),
          static_cast<std::streamsize>(size));
  if (static_cast<std::uint64_t>(in.gcount()) != size)
    fail<Error>("checkpoint truncated: header promises " +
                std::to_string(size) + " B of payload but only " +
                std::to_string(in.gcount()) + " B present: " + path);
  const std::uint32_t crc = util::crc32(payload.data(), payload.size());
  if (crc != stored_crc) {
    char hex[64];
    std::snprintf(hex, sizeof hex, "stored %08x, computed %08x", stored_crc,
                  crc);
    fail<Error>("checkpoint corrupt (CRC mismatch: " + std::string(hex) +
                "): " + path);
  }
  return payload;
}

void write_fission_rate_csv(const std::string& path,
                            const Geometry& geometry,
                            const std::vector<double>& fission_rate,
                            const std::vector<double>& volumes) {
  require(static_cast<long>(fission_rate.size()) == geometry.num_fsrs(),
          "fission_rate size mismatch");
  require(static_cast<long>(volumes.size()) == geometry.num_fsrs(),
          "volumes size mismatch");
  auto out = open_or_throw(path);
  out << "fsr,radial_region,layer,material,volume,fission_rate\n";
  for (long fsr = 0; fsr < geometry.num_fsrs(); ++fsr)
    out << fsr << ',' << geometry.fsr_radial_region(fsr) << ','
        << geometry.fsr_layer(fsr) << ',' << geometry.fsr_material(fsr)
        << ',' << volumes[fsr] << ',' << fission_rate[fsr] << '\n';
  require(static_cast<bool>(out), "write failed: " + path);
}

void write_pin_power_csv(const std::string& path,
                         const std::vector<double>& power, int pins_x,
                         int pins_y) {
  require(static_cast<int>(power.size()) == pins_x * pins_y,
          "pin power grid size mismatch");
  auto out = open_or_throw(path);
  for (int j = pins_y - 1; j >= 0; --j) {  // top row first, map-style
    for (int i = 0; i < pins_x; ++i) {
      if (i) out << ',';
      out << power[static_cast<std::size_t>(j) * pins_x + i];
    }
    out << '\n';
  }
  require(static_cast<bool>(out), "write failed: " + path);
}

void write_vtk_volume(const std::string& path, const std::string& name,
                      int nx, int ny, int nz, double spacing_x,
                      double spacing_y, double spacing_z,
                      const std::vector<double>& values) {
  require(static_cast<long>(values.size()) ==
              static_cast<long>(nx) * ny * nz,
          "VTK volume size mismatch");
  auto out = open_or_throw(path);
  out << "# vtk DataFile Version 3.0\n"
      << name << "\nASCII\nDATASET STRUCTURED_POINTS\n"
      << "DIMENSIONS " << nx << ' ' << ny << ' ' << nz << '\n'
      << "ORIGIN 0 0 0\n"
      << "SPACING " << spacing_x << ' ' << spacing_y << ' ' << spacing_z
      << '\n'
      << "POINT_DATA " << values.size() << '\n'
      << "SCALARS " << name << " double 1\nLOOKUP_TABLE default\n";
  for (double v : values) out << v << '\n';
  require(static_cast<bool>(out), "write failed: " + path);
}

void write_material_map_pgm(const std::string& path,
                            const Geometry& geometry, int resolution) {
  require(resolution >= 2, "material map needs at least 2x2 samples");
  auto out = open_or_throw(path);
  const Bounds& b = geometry.bounds();
  const int max_gray = 255;
  out << "P2\n" << resolution << ' ' << resolution << '\n' << max_gray
      << '\n';
  const int num_materials = std::max(1, geometry.num_materials());
  for (int j = resolution - 1; j >= 0; --j) {  // image rows top-down
    for (int i = 0; i < resolution; ++i) {
      const Point2 p{b.x_min + (i + 0.5) * b.width_x() / resolution,
                     b.y_min + (j + 0.5) * b.width_y() / resolution};
      const int m = geometry.find_radial(p).material;
      out << (m * max_gray / num_materials) << ' ';
    }
    out << '\n';
  }
  require(static_cast<bool>(out), "write failed: " + path);
}

std::string format_table(const std::vector<std::string>& headers,
                         const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> width(headers.size());
  for (std::size_t c = 0; c < headers.size(); ++c)
    width[c] = headers[c].size();
  for (const auto& row : rows) {
    require(row.size() == headers.size(), "table row width mismatch");
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());
  }
  std::string out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      out.append(width[c] - row[c].size() + 2, ' ');
    }
    out += '\n';
  };
  emit_row(headers);
  for (std::size_t c = 0; c < headers.size(); ++c)
    out.append(width[c], '-').append(2, ' ');
  out += '\n';
  for (const auto& row : rows) emit_row(row);
  return out;
}

}  // namespace antmoc::io
