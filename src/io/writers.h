#pragma once

/// \file writers.h
/// Output generation (paper §3.1 stage 5): FSR fission-rate data to CSV,
/// pin-power maps, legacy-VTK volumes for ParaView (the paper's Fig. 7
/// visualization path), and aligned text tables for the run log.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "geometry/geometry.h"

namespace antmoc::io {

/// CRC-framed binary blobs — the container for checkpoint files and
/// per-domain shards (DESIGN.md §11). Layout:
///   bytes 0..5   "ANTMOC"
///   bytes 6..7   version, ASCII "02"
///   u64          payload size in bytes
///   u32          CRC-32 (IEEE) of the payload
///   payload
/// write_checked_blob() writes to `path + ".tmp"` and renames into place,
/// so a reader never sees a half-written file even if the writer dies
/// mid-checkpoint. read_checked_blob() rejects wrong-magic, version-1
/// (pre-CRC), truncated, and bit-flipped files with distinct diagnostics.
void write_checked_blob(const std::string& path,
                        const std::vector<std::byte>& payload);
std::vector<std::byte> read_checked_blob(const std::string& path);

/// Writes one row per FSR: fsr, radial_region, layer, material, volume,
/// fission_rate. Throws antmoc::Error if the file cannot be written.
void write_fission_rate_csv(const std::string& path,
                            const Geometry& geometry,
                            const std::vector<double>& fission_rate,
                            const std::vector<double>& volumes);

/// Writes a pin-power map (row-major, j increasing with y) as CSV.
void write_pin_power_csv(const std::string& path,
                         const std::vector<double>& power, int pins_x,
                         int pins_y);

/// Legacy-VTK STRUCTURED_POINTS scalar volume (ParaView-compatible; the
/// paper renders Fig. 7 with ParaView). `values` is x-fastest.
void write_vtk_volume(const std::string& path, const std::string& name,
                      int nx, int ny, int nz, double spacing_x,
                      double spacing_y, double spacing_z,
                      const std::vector<double>& values);

/// Rasterizes the radial material map at `resolution` samples per axis
/// into a PGM (portable graymap) image — a zero-dependency way to eyeball
/// a CSG model (materials map to evenly spaced gray levels).
void write_material_map_pgm(const std::string& path,
                            const Geometry& geometry, int resolution);

/// Aligned fixed-width text table (benches print paper-style tables).
std::string format_table(const std::vector<std::string>& headers,
                         const std::vector<std::vector<std::string>>& rows);

}  // namespace antmoc::io
