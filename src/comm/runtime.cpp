#include "comm/runtime.h"

#include <exception>
#include <thread>
#include <vector>

#include "util/error.h"
#include "util/log.h"

namespace antmoc::comm {

std::uint64_t Runtime::run(int nranks,
                           const std::function<void(Communicator&)>& fn,
                           const CommOptions& options) {
  require(nranks >= 1, "Runtime::run needs at least one rank");
  auto state = std::make_shared<detail::SharedState>(nranks, options);

  if (nranks == 1) {
    // Fast path: no thread spawn for serial worlds.
    Communicator comm(0, state);
    fn(comm);
    return comm.total_bytes_sent();
  }

  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(nranks);
  threads.reserve(nranks);
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&, r] {
      Communicator comm(r, state);
      try {
        fn(comm);
      } catch (const std::exception& e) {
        errors[r] = std::current_exception();
        state->mark_dead(r, e.what());
      } catch (...) {
        errors[r] = std::current_exception();
        state->mark_dead(r, "unknown exception");
      }
    });
  }
  for (auto& t : threads) t.join();

  // Deaths absorbed by a completed shrink() (survivor takeover,
  // DESIGN.md §11) are not failures of the run: the survivors adopted the
  // dead ranks' work and finished.
  std::vector<char> handled;
  {
    std::lock_guard lock(state->poison_mutex);
    handled = state->handled;
  }

  // Prefer the original failure over the PeerFailure echoes it caused.
  std::exception_ptr secondary;
  for (int r = 0; r < nranks; ++r) {
    const auto& err = errors[r];
    if (!err) continue;
    if (handled[r]) {
      try {
        std::rethrow_exception(err);
      } catch (const std::exception& e) {
        log::info("runtime: rank ", r,
                  " died but its failure was absorbed by a survivor "
                  "takeover: ", e.what());
      } catch (...) {
      }
      continue;
    }
    try {
      std::rethrow_exception(err);
    } catch (const PeerFailure&) {
      if (!secondary) secondary = err;
    } catch (...) {
      std::rethrow_exception(err);
    }
  }
  if (secondary) std::rethrow_exception(secondary);

  std::uint64_t total = 0;
  for (int r = 0; r < nranks; ++r)
    total += state->bytes_sent[r].load(std::memory_order_relaxed);
  return total;
}

}  // namespace antmoc::comm
