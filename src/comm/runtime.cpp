#include "comm/runtime.h"

#include <exception>
#include <thread>
#include <vector>

#include "util/error.h"

namespace antmoc::comm {

std::uint64_t Runtime::run(int nranks,
                           const std::function<void(Communicator&)>& fn) {
  require(nranks >= 1, "Runtime::run needs at least one rank");
  auto state = std::make_shared<detail::SharedState>(nranks);

  if (nranks == 1) {
    // Fast path: no thread spawn for serial worlds.
    Communicator comm(0, state);
    fn(comm);
    return comm.total_bytes_sent();
  }

  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(nranks);
  threads.reserve(nranks);
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&, r] {
      Communicator comm(r, state);
      try {
        fn(comm);
      } catch (...) {
        errors[r] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (auto& err : errors)
    if (err) std::rethrow_exception(err);

  std::uint64_t total = 0;
  for (int r = 0; r < nranks; ++r)
    total += state->bytes_sent[r].load(std::memory_order_relaxed);
  return total;
}

}  // namespace antmoc::comm
