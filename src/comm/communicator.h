#pragma once

/// \file communicator.h
/// In-process message-passing runtime standing in for MPI (see DESIGN.md §1).
///
/// Ranks execute as threads inside one process; a Communicator gives each
/// rank MPI-like point-to-point and collective operations. Sends are
/// *buffered* (they copy into the destination mailbox and return
/// immediately), matching the "Buffered Synchronous algorithm" the paper
/// uses for angular-flux exchange (§3.3, Eq. 7): every domain posts its tail
/// fluxes, then all domains receive head fluxes from neighbors without
/// deadlock regardless of ordering.
///
/// All traffic is byte-counted so the communication model (Eq. 7) can be
/// validated against actually transferred bytes.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <algorithm>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

namespace antmoc::comm {

/// Reduction operator for allreduce.
enum class ReduceOp { kSum, kMax, kMin };

namespace detail {

struct Message {
  int source = 0;
  int tag = 0;
  std::vector<std::byte> payload;
};

struct Mailbox {
  std::mutex mutex;
  std::condition_variable ready;
  std::deque<Message> queue;
};

/// State shared by all ranks of one Runtime::run() invocation.
struct SharedState {
  explicit SharedState(int nranks);

  int nranks;
  std::vector<std::unique_ptr<Mailbox>> mailboxes;

  // Dissemination-free central barrier (generation counted).
  std::mutex barrier_mutex;
  std::condition_variable barrier_cv;
  int barrier_arrived = 0;
  std::uint64_t barrier_generation = 0;

  // Allreduce scratch: contributions gathered under a mutex; the last
  // arriving rank publishes the result for the current generation.
  std::mutex reduce_mutex;
  std::condition_variable reduce_cv;
  int reduce_arrived = 0;
  std::uint64_t reduce_generation = 0;
  std::vector<double> reduce_buffer;
  std::vector<double> reduce_result;

  // Byte counters, indexed by source rank.
  std::vector<std::atomic<std::uint64_t>> bytes_sent;
  std::vector<std::atomic<std::uint64_t>> messages_sent;
};

}  // namespace detail

/// Per-rank handle to the message-passing world.
class Communicator {
 public:
  Communicator(int rank, std::shared_ptr<detail::SharedState> state)
      : rank_(rank), state_(std::move(state)) {}

  int rank() const { return rank_; }
  int size() const { return state_->nranks; }

  /// Buffered send: copies `bytes` bytes into `dest`'s mailbox; returns
  /// immediately. Tags disambiguate concurrent exchanges.
  void send(int dest, int tag, const void* data, std::size_t bytes);

  /// Blocking receive matching (source, tag); copies exactly `bytes` bytes.
  /// Throws antmoc::Error if the matched message has a different size.
  void recv(int source, int tag, void* data, std::size_t bytes);

  template <class T>
  void send(int dest, int tag, const std::vector<T>& v) {
    send(dest, tag, v.data(), v.size() * sizeof(T));
  }
  template <class T>
  void recv(int source, int tag, std::vector<T>& v) {
    recv(source, tag, v.data(), v.size() * sizeof(T));
  }

  /// Combined post-then-collect exchange with one peer.
  template <class T>
  void sendrecv(int peer, int tag, const std::vector<T>& out,
                std::vector<T>& in) {
    send(peer, tag, out);
    recv(peer, tag, in);
  }

  /// Blocks until all ranks arrive.
  void barrier();

  /// Element-wise allreduce over all ranks; every rank gets the result.
  void allreduce(std::vector<double>& values, ReduceOp op);
  double allreduce(double value, ReduceOp op);

  /// Root's buffer is copied to every rank (sizes must already agree).
  void broadcast(void* data, std::size_t bytes, int root);
  template <class T>
  void broadcast(std::vector<T>& v, int root) {
    broadcast(v.data(), v.size() * sizeof(T), root);
  }

  /// Gathers equal-sized contributions onto `root`: on root, `all` is
  /// resized to size() * local.size() with rank r's data at offset
  /// r * local.size(); on other ranks `all` is left empty.
  template <class T>
  void gather(const std::vector<T>& local, std::vector<T>& all, int root) {
    constexpr int kTag = 901;
    if (rank_ == root) {
      all.assign(static_cast<std::size_t>(size()) * local.size(), T{});
      std::copy(local.begin(), local.end(),
                all.begin() + static_cast<std::size_t>(root) * local.size());
      for (int r = 0; r < size(); ++r) {
        if (r == root) continue;
        recv(r, kTag, all.data() + static_cast<std::size_t>(r) * local.size(),
             local.size() * sizeof(T));
      }
    } else {
      all.clear();
      send(root, kTag, local.data(), local.size() * sizeof(T));
    }
  }

  /// Total bytes this rank has sent via point-to-point messages.
  std::uint64_t bytes_sent() const;
  std::uint64_t messages_sent() const;

  /// Sum of point-to-point bytes sent by all ranks (call after barrier).
  std::uint64_t total_bytes_sent() const;

 private:
  int rank_;
  std::shared_ptr<detail::SharedState> state_;
};

}  // namespace antmoc::comm
