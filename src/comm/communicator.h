#pragma once

/// \file communicator.h
/// In-process message-passing runtime standing in for MPI (see DESIGN.md §1).
///
/// Ranks execute as threads inside one process; a Communicator gives each
/// rank MPI-like point-to-point and collective operations. Sends are
/// *buffered* (they copy into the destination mailbox and return
/// immediately), matching the "Buffered Synchronous algorithm" the paper
/// uses for angular-flux exchange (§3.3, Eq. 7): every domain posts its tail
/// fluxes, then all domains receive head fluxes from neighbors without
/// deadlock regardless of ordering.
///
/// Fault tolerance (DESIGN.md §5, §11): blocking calls accept a
/// configurable deadline (CommOptions) and throw CommTimeout naming rank,
/// peer, and tag on expiry. When any rank fails, the world is *poisoned*:
/// every blocked rank wakes with PeerFailure instead of hanging, so a
/// decomposed solve always terminates with a diagnostic. Survivors may
/// then *shrink* the world (ULFM-style): shrink() is a survivor-only
/// collective that agrees the dead set, purges every mailbox, resets
/// collective scratch, and clears the poison so the remaining ranks can
/// keep communicating — the transport-level repair underneath the domain
/// takeover protocol. Point-to-point calls that target a dead rank fail
/// fast with PeerFailure instead of hanging until a deadline.
///
/// Nonblocking primitives (DESIGN.md §8): isend/irecv return a Request;
/// test() polls without blocking, wait()/wait_any()/wait_all() block with
/// the same deadline and poison semantics as the blocking calls. A posted
/// irecv claims a matching message only inside test/wait calls — matching
/// between a posted irecv and a concurrent blocking recv with the same
/// (source, tag) signature is unspecified, exactly like two MPI receives
/// with identical signatures. Messages from one (source, tag) pair are
/// matched in FIFO order.
///
/// All traffic is byte-counted so the communication model (Eq. 7) can be
/// validated against actually transferred bytes.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <algorithm>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/error.h"

namespace antmoc::comm {

/// Reduction operator for allreduce.
enum class ReduceOp { kSum, kMax, kMin };

/// World-wide communication knobs, fixed at Runtime::run() launch.
struct CommOptions {
  /// Deadline for blocking calls (recv/barrier/allreduce/broadcast).
  /// Zero (the default) disables the deadline: calls block forever unless
  /// the world is poisoned.
  std::chrono::milliseconds deadline{0};
};

namespace detail {

struct Message {
  int source = 0;
  int tag = 0;
  std::vector<std::byte> payload;
};

/// Shared state of one in-flight nonblocking operation. Sends complete at
/// creation (the runtime is buffered); receives complete when test/wait
/// matches a message and delivers it into the caller's buffer.
struct RequestState {
  enum class Kind { kSend, kRecv };
  Kind kind = Kind::kRecv;
  int peer = -1;
  int tag = 0;
  bool complete = false;
  std::size_t bytes = 0;  ///< payload size, filled at completion
  /// Copies the matched payload into the destination buffer; set by the
  /// posting irecv overload, cleared after delivery.
  std::function<void(std::vector<std::byte>&&)> deliver;
  /// Outstanding-request counter of the posting rank; decremented exactly
  /// once — at completion, or at destruction when the request is abandoned
  /// (e.g. a poisoned-world unwind drops its handles). Leak accounting for
  /// the PeerFailure/CommTimeout diagnostics.
  std::atomic<int>* outstanding = nullptr;

  ~RequestState() {
    if (outstanding != nullptr && !complete)
      outstanding->fetch_sub(1, std::memory_order_relaxed);
  }
};

struct Mailbox {
  std::mutex mutex;
  std::condition_variable ready;
  std::deque<Message> queue;
};

/// State shared by all ranks of one Runtime::run() invocation.
struct SharedState {
  explicit SharedState(int nranks, CommOptions options = {});

  int nranks;
  CommOptions options;
  std::vector<std::unique_ptr<Mailbox>> mailboxes;

  // Dissemination-free central barrier (generation counted).
  std::mutex barrier_mutex;
  std::condition_variable barrier_cv;
  int barrier_arrived = 0;
  std::uint64_t barrier_generation = 0;

  // Allreduce scratch: each rank parks its contribution in its own slot;
  // the last arriving rank reduces the slots in fixed rank order and
  // publishes the result. Reducing in rank order (not arrival order)
  // makes the floating-point sum deterministic run to run — the
  // collective-side requirement for the decomposed solve's
  // bit-reproducibility (DESIGN.md §8). Dead ranks' slots are skipped.
  std::mutex reduce_mutex;
  std::condition_variable reduce_cv;
  int reduce_arrived = 0;
  std::uint64_t reduce_generation = 0;
  std::vector<std::vector<double>> reduce_slots;
  std::vector<double> reduce_result;

  // Keyed ("slotted") allreduce scratch: contributions are keyed by an
  // arbitrary slot id (the decomposed solve keys by *domain*, not rank)
  // and reduced in ascending key order. After a takeover moves a domain
  // to a new host, the reduction expression is unchanged — the
  // bit-reproducibility argument of DESIGN.md §11.
  std::mutex slot_mutex;
  std::condition_variable slot_cv;
  int slot_arrived = 0;
  std::uint64_t slot_generation = 0;
  std::map<int, const std::vector<double>*> slot_contribs;
  std::vector<double> slot_result;

  // Shrink collective scratch (survivor-only; see Communicator::shrink).
  std::mutex shrink_mutex;
  std::condition_variable shrink_cv;
  int shrink_arrived = 0;
  std::uint64_t shrink_generation = 0;

  // Poisoned-world flag: set when any rank fails so blocked peers wake
  // with PeerFailure instead of hanging. First failure wins the reason.
  std::atomic<bool> poisoned{false};
  mutable std::mutex poison_mutex;
  int poison_rank = -1;
  std::string poison_reason;

  // Liveness: dead ranks never rejoin; collectives complete when every
  // *alive* rank arrives. `handled` marks deaths absorbed by a completed
  // shrink so Runtime::run() does not rethrow errors the survivors
  // already recovered from. `last_death` keeps the most recent death's
  // diagnostic after shrink() clears the poison.
  std::vector<std::atomic<bool>> dead;
  std::atomic<int> alive_count;
  std::vector<char> handled;  ///< guarded by poison_mutex
  std::string last_death;     ///< guarded by poison_mutex

  /// Marks the world poisoned (first caller records rank + reason) and
  /// wakes every rank blocked in recv/barrier/allreduce/shrink.
  void poison(int rank, const std::string& reason);

  /// Records `rank` as permanently dead (it threw out of its rank
  /// function), then poisons the world. Called by Runtime on the failing
  /// rank's thread.
  void mark_dead(int rank, const std::string& reason);

  /// Human-readable cause recorded by poison() ("rank R failed: ...");
  /// falls back to the last pre-shrink death once the poison is cleared.
  std::string poison_cause() const;

  // Byte counters, indexed by source rank.
  std::vector<std::atomic<std::uint64_t>> bytes_sent;
  std::vector<std::atomic<std::uint64_t>> messages_sent;
  // Posted-but-incomplete nonblocking requests, indexed by posting rank.
  std::vector<std::atomic<int>> outstanding;
};

}  // namespace detail

/// Handle to one nonblocking operation (isend/irecv). Default-constructed
/// requests are "null": done() is true and wait/test treat them as already
/// complete. Requests are owned by the rank that posted them; they must
/// not be tested or waited on from another rank's thread. For receives,
/// the destination buffer must stay alive and unmoved until done().
class Request {
 public:
  Request() = default;

  bool valid() const { return state_ != nullptr; }
  bool done() const { return state_ == nullptr || state_->complete; }
  int peer() const { return state_ ? state_->peer : -1; }
  int tag() const { return state_ ? state_->tag : -1; }
  /// Bytes transferred; for receives, valid once done().
  std::size_t bytes() const { return state_ ? state_->bytes : 0; }

 private:
  friend class Communicator;
  explicit Request(std::shared_ptr<detail::RequestState> state)
      : state_(std::move(state)) {}
  std::shared_ptr<detail::RequestState> state_;
};

/// Per-rank handle to the message-passing world.
class Communicator {
 public:
  Communicator(int rank, std::shared_ptr<detail::SharedState> state)
      : rank_(rank), state_(std::move(state)) {}

  int rank() const { return rank_; }
  int size() const { return state_->nranks; }

  /// Deadline configured for this world's blocking calls (0 = none).
  std::chrono::milliseconds deadline() const {
    return state_->options.deadline;
  }

  /// Buffered send: copies `bytes` bytes into `dest`'s mailbox; returns
  /// immediately. Tags disambiguate concurrent exchanges. Throws
  /// PeerFailure if the world is already poisoned.
  void send(int dest, int tag, const void* data, std::size_t bytes);

  /// Blocking receive matching (source, tag); copies exactly `bytes` bytes.
  /// Throws antmoc::Error if the matched message has a different size,
  /// CommTimeout past the configured deadline, and PeerFailure if another
  /// rank fails while this one is blocked.
  void recv(int source, int tag, void* data, std::size_t bytes);

  /// Blocking receive matching (source, tag) that accepts whatever size
  /// the sender posted; returns the raw payload.
  std::vector<std::byte> recv_bytes(int source, int tag);

  template <class T>
  void send(int dest, int tag, const std::vector<T>& v) {
    send(dest, tag, v.data(), v.size() * sizeof(T));
  }

  /// Vector receive: `v` is resized to the matched message size — callers
  /// need not (and cannot reliably) pre-size it. Throws antmoc::Error
  /// naming both sizes if the payload is not a whole number of T.
  template <class T>
  void recv(int source, int tag, std::vector<T>& v) {
    const std::vector<std::byte> payload = recv_bytes(source, tag);
    if (payload.size() % sizeof(T) != 0)
      fail<Error>("recv: rank " + std::to_string(rank_) + " matched a " +
                  std::to_string(payload.size()) +
                  "-byte message from rank " + std::to_string(source) +
                  " (tag " + std::to_string(tag) +
                  ") that is not a whole number of " +
                  std::to_string(sizeof(T)) + "-byte elements");
    v.resize(payload.size() / sizeof(T));
    std::memcpy(v.data(), payload.data(), payload.size());
  }

  // --- nonblocking point-to-point (DESIGN.md §8) ---------------------------

  /// Nonblocking send. The runtime is buffered, so the payload is copied
  /// into `dest`'s mailbox immediately and the returned request is already
  /// complete — but byte counting, telemetry, and the poison check are
  /// identical to send(), and callers should treat completion as only
  /// guaranteed after wait()/test(), as with MPI.
  Request isend(int dest, int tag, const void* data, std::size_t bytes);

  template <class T>
  Request isend(int dest, int tag, const std::vector<T>& v) {
    return isend(dest, tag, v.data(), v.size() * sizeof(T));
  }

  /// Posts a receive matching (source, tag) into a fixed-size buffer; the
  /// match happens inside a later test/wait call. Completion with a
  /// different-sized message throws antmoc::Error from that call.
  Request irecv(int source, int tag, void* data, std::size_t bytes);

  /// Posts a receive that adopts whatever size the sender ships: on
  /// completion `v` is resized to the payload (which must be a whole
  /// number of T). `v` must outlive the request.
  template <class T>
  Request irecv(int source, int tag, std::vector<T>& v) {
    std::vector<T>* dest = &v;
    const int self = rank_;
    return post_recv(source, tag, [dest, self, source, tag](
                                      std::vector<std::byte>&& payload) {
      if (payload.size() % sizeof(T) != 0)
        fail<Error>("irecv: rank " + std::to_string(self) + " matched a " +
                    std::to_string(payload.size()) +
                    "-byte message from rank " + std::to_string(source) +
                    " (tag " + std::to_string(tag) +
                    ") that is not a whole number of " +
                    std::to_string(sizeof(T)) + "-byte elements");
      dest->resize(payload.size() / sizeof(T));
      std::memcpy(dest->data(), payload.data(), payload.size());
    });
  }

  /// Nonblocking progress: attempts to complete `r` and returns done().
  /// Null or already-complete requests return true immediately. Throws
  /// PeerFailure if the world is poisoned.
  bool test(Request& r);

  /// Blocks until `r` completes (deadline- and poison-aware).
  void wait(Request& r);

  /// Blocks until at least one incomplete request in `reqs` completes and
  /// returns its index; returns -1 immediately if every request is already
  /// complete (or null). Deadline- and poison-aware like recv().
  int wait_any(std::vector<Request>& reqs);

  /// Waits for every request in `reqs`.
  void wait_all(std::vector<Request>& reqs);

  /// Combined post-then-collect exchange with one peer.
  template <class T>
  void sendrecv(int peer, int tag, const std::vector<T>& out,
                std::vector<T>& in) {
    send(peer, tag, out);
    recv(peer, tag, in);
  }

  /// Blocks until all alive ranks arrive (or the deadline/poison fires).
  void barrier();

  /// Element-wise allreduce over all alive ranks; every rank gets the
  /// result. Dead ranks' parked slots are skipped in the fixed-order
  /// reduction.
  void allreduce(std::vector<double>& values, ReduceOp op);
  double allreduce(double value, ReduceOp op);

  /// Keyed allreduce (DESIGN.md §11): each rank contributes zero or more
  /// (slot id, values) pairs — the decomposed solve keys by domain — and
  /// every contributed vector is replaced by the element-wise reduction
  /// over all slots, combined in ascending *slot* order. Because the
  /// reduction order follows slot ids rather than ranks, re-hosting a
  /// slot on a different rank (domain takeover, voluntary migration)
  /// leaves the floating-point result bitwise unchanged. Slot ids must be
  /// globally unique per call; all contributed vectors must be equally
  /// sized. Completes when every alive rank arrives.
  void allreduce_slots(
      const std::vector<std::pair<int, std::vector<double>*>>& contribs,
      ReduceOp op);

  // --- survivor recovery (DESIGN.md §11) -----------------------------------

  /// Survivor-only collective repairing a poisoned world: blocks until
  /// every alive rank arrives (new deaths while waiting shrink the
  /// quorum), then purges all mailboxes, resets barrier/reduce scratch,
  /// marks the dead set handled, and clears the poison. Returns the
  /// agreed dead ranks (ascending). Unlike other collectives it does not
  /// throw on a poisoned world — it is the repair — but it honors the
  /// configured deadline (CommTimeout) so a hung survivor cannot wedge
  /// the takeover.
  std::vector<int> shrink();

  /// True once `rank` died (threw out of its rank function).
  bool is_dead(int rank) const {
    return state_->dead[rank].load(std::memory_order_acquire);
  }

  /// Ranks not (yet) dead.
  int num_alive() const {
    return state_->alive_count.load(std::memory_order_acquire);
  }

  /// Posted-but-incomplete nonblocking requests owned by this rank — zero
  /// after a clean drain; nonzero in a failure diagnostic means handles
  /// were abandoned mid-flight.
  int outstanding_requests() const {
    return state_->outstanding[rank_].load(std::memory_order_relaxed);
  }

  /// Root's buffer is copied to every rank (sizes must already agree).
  void broadcast(void* data, std::size_t bytes, int root);
  template <class T>
  void broadcast(std::vector<T>& v, int root) {
    broadcast(v.data(), v.size() * sizeof(T), root);
  }

  /// Gathers equal-sized contributions onto `root`: on root, `all` is
  /// resized to size() * local.size() with rank r's data at offset
  /// r * local.size(); on other ranks `all` is left empty. Every received
  /// payload is validated against local.size() * sizeof(T); a mismatched
  /// contribution throws a descriptive Error instead of corrupting `all`.
  template <class T>
  void gather(const std::vector<T>& local, std::vector<T>& all, int root) {
    constexpr int kTag = 901;
    const std::size_t expected = local.size() * sizeof(T);
    if (rank_ == root) {
      all.assign(static_cast<std::size_t>(size()) * local.size(), T{});
      std::copy(local.begin(), local.end(),
                all.begin() + static_cast<std::size_t>(root) * local.size());
      for (int r = 0; r < size(); ++r) {
        if (r == root || is_dead(r)) continue;  // dead slots stay zeroed
        const std::vector<std::byte> payload = recv_bytes(r, kTag);
        if (payload.size() != expected)
          fail<Error>("gather: rank " + std::to_string(r) + " contributed " +
                      std::to_string(payload.size()) + " B but root rank " +
                      std::to_string(root) + " expected " +
                      std::to_string(expected) + " B (" +
                      std::to_string(local.size()) + " elements of " +
                      std::to_string(sizeof(T)) + " B)");
        std::memcpy(all.data() + static_cast<std::size_t>(r) * local.size(),
                    payload.data(), payload.size());
      }
    } else {
      all.clear();
      send(root, kTag, local.data(), expected);
    }
  }

  /// Total bytes this rank has sent via point-to-point messages.
  std::uint64_t bytes_sent() const;
  std::uint64_t messages_sent() const;

  /// Sum of point-to-point bytes sent by all ranks (call after barrier).
  std::uint64_t total_bytes_sent() const;

 private:
  /// Matches (source, tag) in this rank's mailbox, honoring deadline and
  /// poison; the returned message is removed from the queue.
  detail::Message match(int source, int tag);

  /// Registers an irecv request with the given delivery functor.
  Request post_recv(int source, int tag,
                    std::function<void(std::vector<std::byte>&&)> deliver);

  /// Completes `rs` against the (locked) mailbox queue if a matching
  /// message is queued; returns whether it completed. Caller records the
  /// received bytes after releasing the lock.
  bool try_complete_locked(detail::RequestState& rs, detail::Mailbox& box);

  /// Telemetry hook: counts received payload bytes (total and per rank).
  void record_recv(std::size_t bytes) const;

  /// Logs and throws PeerFailure carrying the recorded poison cause (which
  /// names the failed rank and, for injected faults, the fault point) plus
  /// this rank's outstanding nonblocking-request count.
  [[noreturn]] void fail_peer(const char* op) const;

  /// Logs and throws PeerFailure for an operation targeting a rank that is
  /// already dead in a repaired (shrunk) world.
  [[noreturn]] void fail_dead_peer(const char* op, int peer) const;

  /// Logs and throws CommTimeout naming rank, peer, tag, and the
  /// outstanding nonblocking-request count.
  [[noreturn]] void fail_timeout(const char* op, int peer, int tag) const;

  int rank_;
  std::shared_ptr<detail::SharedState> state_;
};

}  // namespace antmoc::comm
