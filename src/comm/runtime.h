#pragma once

/// \file runtime.h
/// Launches a fixed-size "world" of ranks, each running the same function
/// on its own thread — the moral equivalent of `mpirun -n <nranks>`.

#include <functional>

#include "comm/communicator.h"

namespace antmoc::comm {

class Runtime {
 public:
  /// Runs `fn` on `nranks` concurrent ranks and joins them all.
  /// The first exception thrown by any rank is rethrown on the caller's
  /// thread after every rank has been joined.
  ///
  /// Returns the total point-to-point bytes sent across all ranks, so
  /// callers can validate the paper's communication model (Eq. 7).
  static std::uint64_t run(int nranks,
                           const std::function<void(Communicator&)>& fn);
};

}  // namespace antmoc::comm
