#pragma once

/// \file runtime.h
/// Launches a fixed-size "world" of ranks, each running the same function
/// on its own thread — the moral equivalent of `mpirun -n <nranks>`.

#include <functional>

#include "comm/communicator.h"

namespace antmoc::comm {

class Runtime {
 public:
  /// Runs `fn` on `nranks` concurrent ranks and joins them all.
  ///
  /// Fault semantics: the first rank to throw poisons the world, which
  /// wakes every rank blocked in recv/barrier/allreduce with PeerFailure —
  /// run() always terminates, never deadlocks on a dead peer. After all
  /// ranks have joined, the *original* failure (the first non-PeerFailure
  /// exception) is rethrown on the caller's thread; secondary PeerFailure
  /// exceptions are rethrown only if no rank recorded a primary cause.
  ///
  /// `options` configures world-wide knobs such as the blocking-call
  /// deadline (see CommOptions).
  ///
  /// Returns the total point-to-point bytes sent across all ranks, so
  /// callers can validate the paper's communication model (Eq. 7).
  static std::uint64_t run(int nranks,
                           const std::function<void(Communicator&)>& fn,
                           const CommOptions& options = {});
};

}  // namespace antmoc::comm
