#include "comm/communicator.h"

#include <algorithm>

#include "util/error.h"

namespace antmoc::comm {

namespace detail {

SharedState::SharedState(int n)
    : nranks(n), bytes_sent(n), messages_sent(n) {
  mailboxes.reserve(n);
  for (int i = 0; i < n; ++i)
    mailboxes.push_back(std::make_unique<Mailbox>());
}

}  // namespace detail

void Communicator::send(int dest, int tag, const void* data,
                        std::size_t bytes) {
  require(dest >= 0 && dest < size(), "send: destination rank out of range");
  detail::Message msg;
  msg.source = rank_;
  msg.tag = tag;
  msg.payload.resize(bytes);
  std::memcpy(msg.payload.data(), data, bytes);

  auto& box = *state_->mailboxes[dest];
  {
    std::lock_guard lock(box.mutex);
    box.queue.push_back(std::move(msg));
  }
  state_->bytes_sent[rank_].fetch_add(bytes, std::memory_order_relaxed);
  state_->messages_sent[rank_].fetch_add(1, std::memory_order_relaxed);
  box.ready.notify_all();
}

void Communicator::recv(int source, int tag, void* data, std::size_t bytes) {
  require(source >= 0 && source < size(), "recv: source rank out of range");
  auto& box = *state_->mailboxes[rank_];
  std::unique_lock lock(box.mutex);
  for (;;) {
    auto it = std::find_if(box.queue.begin(), box.queue.end(),
                           [&](const detail::Message& m) {
                             return m.source == source && m.tag == tag;
                           });
    if (it != box.queue.end()) {
      require(it->payload.size() == bytes,
              "recv: message size mismatch (expected " +
                  std::to_string(bytes) + ", got " +
                  std::to_string(it->payload.size()) + ")");
      std::memcpy(data, it->payload.data(), bytes);
      box.queue.erase(it);
      return;
    }
    box.ready.wait(lock);
  }
}

void Communicator::barrier() {
  auto& s = *state_;
  std::unique_lock lock(s.barrier_mutex);
  const std::uint64_t generation = s.barrier_generation;
  if (++s.barrier_arrived == s.nranks) {
    s.barrier_arrived = 0;
    ++s.barrier_generation;
    s.barrier_cv.notify_all();
  } else {
    s.barrier_cv.wait(
        lock, [&] { return s.barrier_generation != generation; });
  }
}

void Communicator::allreduce(std::vector<double>& values, ReduceOp op) {
  auto& s = *state_;
  std::unique_lock lock(s.reduce_mutex);
  const std::uint64_t generation = s.reduce_generation;

  if (s.reduce_arrived == 0) {
    s.reduce_buffer = values;  // first contributor seeds the accumulator
  } else {
    require(s.reduce_buffer.size() == values.size(),
            "allreduce: ranks passed different value counts");
    for (std::size_t i = 0; i < values.size(); ++i) {
      switch (op) {
        case ReduceOp::kSum:
          s.reduce_buffer[i] += values[i];
          break;
        case ReduceOp::kMax:
          s.reduce_buffer[i] = std::max(s.reduce_buffer[i], values[i]);
          break;
        case ReduceOp::kMin:
          s.reduce_buffer[i] = std::min(s.reduce_buffer[i], values[i]);
          break;
      }
    }
  }

  if (++s.reduce_arrived == s.nranks) {
    s.reduce_result = s.reduce_buffer;
    s.reduce_arrived = 0;
    ++s.reduce_generation;
    values = s.reduce_result;
    s.reduce_cv.notify_all();
  } else {
    s.reduce_cv.wait(lock,
                     [&] { return s.reduce_generation != generation; });
    values = s.reduce_result;
  }
}

void Communicator::broadcast(void* data, std::size_t bytes, int root) {
  constexpr int kTag = 900;
  if (rank_ == root) {
    for (int r = 0; r < size(); ++r)
      if (r != root) send(r, kTag, data, bytes);
  } else {
    recv(root, kTag, data, bytes);
  }
}

double Communicator::allreduce(double value, ReduceOp op) {
  std::vector<double> v{value};
  allreduce(v, op);
  return v[0];
}

std::uint64_t Communicator::bytes_sent() const {
  return state_->bytes_sent[rank_].load(std::memory_order_relaxed);
}

std::uint64_t Communicator::messages_sent() const {
  return state_->messages_sent[rank_].load(std::memory_order_relaxed);
}

std::uint64_t Communicator::total_bytes_sent() const {
  std::uint64_t total = 0;
  for (int r = 0; r < size(); ++r)
    total += state_->bytes_sent[r].load(std::memory_order_relaxed);
  return total;
}

}  // namespace antmoc::comm
