#include "comm/communicator.h"

#include <algorithm>

#include "fault/fault.h"
#include "telemetry/telemetry.h"
#include "util/error.h"
#include "util/log.h"

namespace antmoc::comm {

namespace detail {

SharedState::SharedState(int n, CommOptions opts)
    : nranks(n), options(opts), dead(n), alive_count(n), handled(n, 0),
      bytes_sent(n), messages_sent(n), outstanding(n) {
  reduce_slots.resize(n);
  mailboxes.reserve(n);
  for (int i = 0; i < n; ++i)
    mailboxes.push_back(std::make_unique<Mailbox>());
}

void SharedState::poison(int rank, const std::string& reason) {
  {
    std::lock_guard lock(poison_mutex);
    if (!poisoned.load(std::memory_order_relaxed)) {
      poison_rank = rank;
      poison_reason = reason;
    }
    poisoned.store(true, std::memory_order_release);
  }
  // Wake every potentially blocked rank. Notifying under each waiter's
  // mutex guarantees no wakeup is lost between predicate check and wait.
  // The mutexes are taken strictly one at a time (never nested), so this
  // cannot form a lock cycle with shrink()'s completion sweep.
  for (auto& box : mailboxes) {
    std::lock_guard lock(box->mutex);
    box->ready.notify_all();
  }
  {
    std::lock_guard lock(barrier_mutex);
    barrier_cv.notify_all();
  }
  {
    std::lock_guard lock(reduce_mutex);
    reduce_cv.notify_all();
  }
  {
    std::lock_guard lock(slot_mutex);
    slot_cv.notify_all();
  }
  {
    std::lock_guard lock(shrink_mutex);
    shrink_cv.notify_all();
  }
}

void SharedState::mark_dead(int rank, const std::string& reason) {
  if (!dead[rank].exchange(true, std::memory_order_acq_rel))
    alive_count.fetch_sub(1, std::memory_order_acq_rel);
  poison(rank, reason);
}

std::string SharedState::poison_cause() const {
  std::lock_guard lock(poison_mutex);
  if (poison_rank < 0 && !last_death.empty())
    return "world previously shrunk after: " + last_death;
  return "rank " + std::to_string(poison_rank) + " failed: " + poison_reason;
}

}  // namespace detail

void Communicator::fail_peer(const char* op) const {
  const std::string msg =
      "rank " + std::to_string(rank_) + ": peer failure detected in " + op +
      " — " + state_->poison_cause() + " [" +
      std::to_string(outstanding_requests()) +
      " outstanding nonblocking request(s)]";
  log::error(msg);
  throw PeerFailure(msg);
}

void Communicator::fail_dead_peer(const char* op, int peer) const {
  std::string last;
  {
    std::lock_guard lock(state_->poison_mutex);
    last = state_->last_death;
  }
  const std::string msg =
      "rank " + std::to_string(rank_) + ": " + op + " targets dead rank " +
      std::to_string(peer) +
      (last.empty() ? std::string() : " (world shrunk after: " + last + ")") +
      " [" + std::to_string(outstanding_requests()) +
      " outstanding nonblocking request(s)]";
  log::error(msg);
  throw PeerFailure(msg);
}

void Communicator::fail_timeout(const char* op, int peer, int tag) const {
  std::string msg = "rank " + std::to_string(rank_) + ": " + op;
  if (peer >= 0) msg += " from rank " + std::to_string(peer);
  if (tag >= 0) msg += " (tag " + std::to_string(tag) + ")";
  msg += " exceeded the " +
         std::to_string(state_->options.deadline.count()) + " ms deadline [" +
         std::to_string(outstanding_requests()) +
         " outstanding nonblocking request(s)]";
  log::error(msg);
  throw CommTimeout(msg);
}

void Communicator::send(int dest, int tag, const void* data,
                        std::size_t bytes) {
  require(dest >= 0 && dest < size(), "send: destination rank out of range");
  if (state_->poisoned.load(std::memory_order_acquire)) fail_peer("send");
  if (is_dead(dest)) fail_dead_peer("send", dest);
  fault::point("comm.send", rank_);
  telemetry::TraceSpan span("comm/send", "comm", rank_, -1, "bytes",
                            static_cast<std::int64_t>(bytes));
  if (telemetry::on()) {
    auto& m = telemetry::metrics();
    m.counter("comm.bytes_sent").add(bytes);
    m.counter(telemetry::label("comm.bytes_sent", "rank", rank_)).add(bytes);
    m.counter(telemetry::label("comm.messages_sent", "rank", rank_)).add(1);
  }
  detail::Message msg;
  msg.source = rank_;
  msg.tag = tag;
  msg.payload.resize(bytes);
  std::memcpy(msg.payload.data(), data, bytes);

  auto& box = *state_->mailboxes[dest];
  {
    std::lock_guard lock(box.mutex);
    box.queue.push_back(std::move(msg));
  }
  state_->bytes_sent[rank_].fetch_add(bytes, std::memory_order_relaxed);
  state_->messages_sent[rank_].fetch_add(1, std::memory_order_relaxed);
  box.ready.notify_all();
}

detail::Message Communicator::match(int source, int tag) {
  require(source >= 0 && source < size(), "recv: source rank out of range");
  fault::point("comm.recv", rank_);
  telemetry::TraceSpan span("comm/recv", "comm", rank_, -1, "tag", tag);
  telemetry::ScopedWait wait("comm.wait_us", rank_);
  auto& box = *state_->mailboxes[rank_];
  const auto deadline = state_->options.deadline;
  const auto give_up = std::chrono::steady_clock::now() + deadline;
  std::unique_lock lock(box.mutex);
  for (;;) {
    auto it = std::find_if(box.queue.begin(), box.queue.end(),
                           [&](const detail::Message& m) {
                             return m.source == source && m.tag == tag;
                           });
    if (it != box.queue.end()) {
      detail::Message msg = std::move(*it);
      box.queue.erase(it);
      return msg;
    }
    if (state_->poisoned.load(std::memory_order_acquire)) {
      lock.unlock();
      fail_peer("recv");
    }
    // In a repaired (shrunk) world the source may be long dead with no
    // poison pending; fail fast instead of sitting out the deadline.
    if (is_dead(source)) {
      lock.unlock();
      fail_dead_peer("recv", source);
    }
    if (deadline.count() > 0) {
      if (box.ready.wait_until(lock, give_up) == std::cv_status::timeout) {
        // One last sweep for a message that raced the timeout.
        it = std::find_if(box.queue.begin(), box.queue.end(),
                          [&](const detail::Message& m) {
                            return m.source == source && m.tag == tag;
                          });
        if (it != box.queue.end()) {
          detail::Message msg = std::move(*it);
          box.queue.erase(it);
          return msg;
        }
        lock.unlock();
        if (state_->poisoned.load(std::memory_order_acquire))
          fail_peer("recv");
        fail_timeout("recv", source, tag);
      }
    } else {
      box.ready.wait(lock);
    }
  }
}

Request Communicator::isend(int dest, int tag, const void* data,
                            std::size_t bytes) {
  fault::point("comm.isend", rank_);
  // Buffered semantics: the copy into the destination mailbox happens now
  // (inside send(), with its byte counting and poison check), so the
  // request is born complete.
  send(dest, tag, data, bytes);
  auto state = std::make_shared<detail::RequestState>();
  state->kind = detail::RequestState::Kind::kSend;
  state->peer = dest;
  state->tag = tag;
  state->complete = true;
  state->bytes = bytes;
  return Request(std::move(state));
}

Request Communicator::post_recv(
    int source, int tag,
    std::function<void(std::vector<std::byte>&&)> deliver) {
  require(source >= 0 && source < size(),
          "irecv: source rank out of range");
  if (state_->poisoned.load(std::memory_order_acquire)) fail_peer("irecv");
  fault::point("comm.irecv", rank_);
  auto state = std::make_shared<detail::RequestState>();
  state->kind = detail::RequestState::Kind::kRecv;
  state->peer = source;
  state->tag = tag;
  state->deliver = std::move(deliver);
  state->outstanding = &state_->outstanding[rank_];
  state->outstanding->fetch_add(1, std::memory_order_relaxed);
  return Request(std::move(state));
}

Request Communicator::irecv(int source, int tag, void* data,
                            std::size_t bytes) {
  const int self = rank_;
  return post_recv(source, tag, [data, bytes, self, source, tag](
                                    std::vector<std::byte>&& payload) {
    require(payload.size() == bytes,
            "irecv: rank " + std::to_string(self) +
                " matched a message from rank " + std::to_string(source) +
                " (tag " + std::to_string(tag) + ") of " +
                std::to_string(payload.size()) + " B but posted a " +
                std::to_string(bytes) + "-byte buffer");
    std::memcpy(data, payload.data(), payload.size());
  });
}

bool Communicator::try_complete_locked(detail::RequestState& rs,
                                       detail::Mailbox& box) {
  auto it = std::find_if(box.queue.begin(), box.queue.end(),
                         [&](const detail::Message& m) {
                           return m.source == rs.peer && m.tag == rs.tag;
                         });
  if (it == box.queue.end()) return false;
  detail::Message msg = std::move(*it);
  box.queue.erase(it);
  rs.bytes = msg.payload.size();
  rs.complete = true;
  if (rs.outstanding != nullptr)
    rs.outstanding->fetch_sub(1, std::memory_order_relaxed);
  auto deliver = std::move(rs.deliver);
  rs.deliver = nullptr;
  if (deliver) deliver(std::move(msg.payload));
  return true;
}

bool Communicator::test(Request& r) {
  if (r.done()) return true;
  if (state_->poisoned.load(std::memory_order_acquire)) fail_peer("test");
  auto& rs = *r.state_;
  auto& box = *state_->mailboxes[rank_];
  {
    std::lock_guard lock(box.mutex);
    if (!try_complete_locked(rs, box)) return false;
  }
  record_recv(rs.bytes);
  return true;
}

int Communicator::wait_any(std::vector<Request>& reqs) {
  bool pending = false;
  for (const Request& r : reqs) pending = pending || !r.done();
  if (!pending) return -1;

  fault::point("comm.wait", rank_);
  telemetry::TraceSpan span("comm/wait_any", "comm", rank_, -1, "requests",
                            static_cast<std::int64_t>(reqs.size()));
  telemetry::ScopedWait waiting("comm.wait_us", rank_);
  auto& box = *state_->mailboxes[rank_];
  const auto deadline = state_->options.deadline;
  const auto give_up = std::chrono::steady_clock::now() + deadline;
  std::unique_lock lock(box.mutex);
  for (;;) {
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      Request& r = reqs[i];
      if (r.done()) continue;
      if (try_complete_locked(*r.state_, box)) {
        lock.unlock();
        record_recv(r.state_->bytes);
        return static_cast<int>(i);
      }
    }
    if (state_->poisoned.load(std::memory_order_acquire)) {
      lock.unlock();
      fail_peer("wait_any");
    }
    // A pending receive from a dead rank can never complete (its queued
    // messages were just tried above): fail fast in a repaired world.
    for (const Request& r : reqs) {
      if (r.done()) continue;
      if (is_dead(r.state_->peer)) {
        const int peer = r.state_->peer;
        lock.unlock();
        fail_dead_peer("wait_any", peer);
      }
    }
    if (deadline.count() > 0) {
      if (box.ready.wait_until(lock, give_up) == std::cv_status::timeout) {
        // One last sweep for a message that raced the timeout.
        for (std::size_t i = 0; i < reqs.size(); ++i) {
          Request& r = reqs[i];
          if (r.done()) continue;
          if (try_complete_locked(*r.state_, box)) {
            lock.unlock();
            record_recv(r.state_->bytes);
            return static_cast<int>(i);
          }
        }
        lock.unlock();
        if (state_->poisoned.load(std::memory_order_acquire))
          fail_peer("wait_any");
        fail_timeout("wait_any", -1, -1);
      }
    } else {
      box.ready.wait(lock);
    }
  }
}

void Communicator::wait(Request& r) {
  std::vector<Request> one{r};
  wait_any(one);
  r = one[0];
}

void Communicator::wait_all(std::vector<Request>& reqs) {
  while (wait_any(reqs) >= 0) {
  }
}

void Communicator::recv(int source, int tag, void* data, std::size_t bytes) {
  const detail::Message msg = match(source, tag);
  require(msg.payload.size() == bytes,
          "recv: message size mismatch (expected " + std::to_string(bytes) +
              ", got " + std::to_string(msg.payload.size()) + ")");
  record_recv(msg.payload.size());
  std::memcpy(data, msg.payload.data(), bytes);
}

std::vector<std::byte> Communicator::recv_bytes(int source, int tag) {
  detail::Message msg = match(source, tag);
  record_recv(msg.payload.size());
  return std::move(msg.payload);
}

void Communicator::record_recv(std::size_t bytes) const {
  if (!telemetry::on()) return;
  auto& m = telemetry::metrics();
  m.counter("comm.bytes_recv").add(bytes);
  m.counter(telemetry::label("comm.bytes_recv", "rank", rank_)).add(bytes);
}

void Communicator::barrier() {
  fault::point("comm.barrier", rank_);
  telemetry::TraceSpan span("comm/barrier", "comm", rank_);
  telemetry::ScopedWait wait("comm.wait_us", rank_);
  auto& s = *state_;
  const auto deadline = s.options.deadline;
  const auto give_up = std::chrono::steady_clock::now() + deadline;
  std::unique_lock lock(s.barrier_mutex);
  if (s.poisoned.load(std::memory_order_acquire)) {
    lock.unlock();
    fail_peer("barrier");
  }
  const std::uint64_t generation = s.barrier_generation;
  if (++s.barrier_arrived >= s.alive_count.load(std::memory_order_acquire)) {
    s.barrier_arrived = 0;
    ++s.barrier_generation;
    s.barrier_cv.notify_all();
    return;
  }
  const auto done = [&] {
    return s.barrier_generation != generation ||
           s.poisoned.load(std::memory_order_acquire);
  };
  if (deadline.count() > 0) {
    if (!s.barrier_cv.wait_until(lock, give_up, done)) {
      --s.barrier_arrived;  // abandon the barrier before failing
      lock.unlock();
      fail_timeout("barrier", -1, -1);
    }
  } else {
    s.barrier_cv.wait(lock, done);
  }
  if (s.barrier_generation == generation) {
    // Woken by poison, not completion.
    --s.barrier_arrived;
    lock.unlock();
    fail_peer("barrier");
  }
}

void Communicator::allreduce(std::vector<double>& values, ReduceOp op) {
  fault::point("comm.allreduce", rank_);
  telemetry::TraceSpan span("comm/allreduce", "comm", rank_, -1, "values",
                            static_cast<std::int64_t>(values.size()));
  telemetry::ScopedWait wait("comm.wait_us", rank_);
  auto& s = *state_;
  const auto deadline = s.options.deadline;
  const auto give_up = std::chrono::steady_clock::now() + deadline;
  std::unique_lock lock(s.reduce_mutex);
  if (s.poisoned.load(std::memory_order_acquire)) {
    lock.unlock();
    fail_peer("allreduce");
  }
  const std::uint64_t generation = s.reduce_generation;

  // Park this rank's contribution; the last arriver reduces the slots in
  // fixed rank order so the floating-point result never depends on which
  // rank got here first (bit-reproducibility, DESIGN.md §8). Dead ranks'
  // slots hold stale data and are skipped.
  s.reduce_slots[rank_] = values;

  if (++s.reduce_arrived >= s.alive_count.load(std::memory_order_acquire)) {
    bool seeded = false;
    for (int r = 0; r < s.nranks; ++r) {
      if (s.dead[r].load(std::memory_order_acquire)) continue;
      const auto& slot = s.reduce_slots[r];
      require(slot.size() == values.size(),
              "allreduce: ranks passed different value counts");
      if (!seeded) {
        s.reduce_result = slot;
        seeded = true;
        continue;
      }
      for (std::size_t i = 0; i < slot.size(); ++i) {
        switch (op) {
          case ReduceOp::kSum:
            s.reduce_result[i] += slot[i];
            break;
          case ReduceOp::kMax:
            s.reduce_result[i] = std::max(s.reduce_result[i], slot[i]);
            break;
          case ReduceOp::kMin:
            s.reduce_result[i] = std::min(s.reduce_result[i], slot[i]);
            break;
        }
      }
    }
    s.reduce_arrived = 0;
    ++s.reduce_generation;
    values = s.reduce_result;
    s.reduce_cv.notify_all();
    return;
  }
  const auto done = [&] {
    return s.reduce_generation != generation ||
           s.poisoned.load(std::memory_order_acquire);
  };
  if (deadline.count() > 0) {
    if (!s.reduce_cv.wait_until(lock, give_up, done)) {
      --s.reduce_arrived;  // withdraw the contribution before failing
      lock.unlock();
      fail_timeout("allreduce", -1, -1);
    }
  } else {
    s.reduce_cv.wait(lock, done);
  }
  if (s.reduce_generation == generation) {
    --s.reduce_arrived;
    lock.unlock();
    fail_peer("allreduce");
  }
  values = s.reduce_result;
}

void Communicator::allreduce_slots(
    const std::vector<std::pair<int, std::vector<double>*>>& contribs,
    ReduceOp op) {
  fault::point("comm.allreduce", rank_);
  telemetry::TraceSpan span("comm/allreduce_slots", "comm", rank_, -1,
                            "slots",
                            static_cast<std::int64_t>(contribs.size()));
  telemetry::ScopedWait wait("comm.wait_us", rank_);
  auto& s = *state_;
  const auto deadline = s.options.deadline;
  const auto give_up = std::chrono::steady_clock::now() + deadline;
  std::unique_lock lock(s.slot_mutex);
  if (s.poisoned.load(std::memory_order_acquire)) {
    lock.unlock();
    fail_peer("allreduce_slots");
  }
  const std::uint64_t generation = s.slot_generation;

  for (const auto& [id, values] : contribs) {
    require(values != nullptr, "allreduce_slots: null contribution");
    require(s.slot_contribs.emplace(id, values).second,
            "allreduce_slots: slot " + std::to_string(id) +
                " contributed twice");
  }

  const auto publish = [&] {
    for (const auto& [id, values] : contribs) *values = s.slot_result;
  };

  if (++s.slot_arrived >= s.alive_count.load(std::memory_order_acquire)) {
    // Reduce in ascending slot order (std::map iteration), independent of
    // which rank hosts which slot — the takeover-invariant combination.
    s.slot_result.clear();
    bool seeded = false;
    for (const auto& [id, values] : s.slot_contribs) {
      if (!seeded) {
        s.slot_result = *values;
        seeded = true;
        continue;
      }
      require(values->size() == s.slot_result.size(),
              "allreduce_slots: slots contributed different value counts");
      for (std::size_t i = 0; i < values->size(); ++i) {
        switch (op) {
          case ReduceOp::kSum:
            s.slot_result[i] += (*values)[i];
            break;
          case ReduceOp::kMax:
            s.slot_result[i] = std::max(s.slot_result[i], (*values)[i]);
            break;
          case ReduceOp::kMin:
            s.slot_result[i] = std::min(s.slot_result[i], (*values)[i]);
            break;
        }
      }
    }
    s.slot_contribs.clear();
    s.slot_arrived = 0;
    ++s.slot_generation;
    publish();
    s.slot_cv.notify_all();
    return;
  }
  const auto done = [&] {
    return s.slot_generation != generation ||
           s.poisoned.load(std::memory_order_acquire);
  };
  const auto withdraw = [&] {
    --s.slot_arrived;
    for (const auto& [id, values] : contribs) s.slot_contribs.erase(id);
  };
  if (deadline.count() > 0) {
    if (!s.slot_cv.wait_until(lock, give_up, done)) {
      withdraw();
      lock.unlock();
      fail_timeout("allreduce_slots", -1, -1);
    }
  } else {
    s.slot_cv.wait(lock, done);
  }
  if (s.slot_generation == generation) {
    withdraw();
    lock.unlock();
    fail_peer("allreduce_slots");
  }
  publish();
}

std::vector<int> Communicator::shrink() {
  fault::point("comm.shrink", rank_);
  telemetry::TraceSpan span("comm/shrink", "comm", rank_);
  telemetry::ScopedWait waiting("comm.wait_us", rank_);
  auto& s = *state_;
  const auto deadline = s.options.deadline;
  const auto give_up = std::chrono::steady_clock::now() + deadline;

  const auto complete_locked = [&] {
    // The shrink_mutex is held; every other mutex below is taken and
    // released one at a time, so no lock cycle with poison()/mark_dead().
    for (auto& box : s.mailboxes) {
      std::lock_guard l(box->mutex);
      box->queue.clear();
    }
    {
      std::lock_guard l(s.barrier_mutex);
      s.barrier_arrived = 0;
    }
    {
      std::lock_guard l(s.reduce_mutex);
      s.reduce_arrived = 0;
    }
    {
      std::lock_guard l(s.slot_mutex);
      s.slot_arrived = 0;
      s.slot_contribs.clear();
    }
    {
      std::lock_guard l(s.poison_mutex);
      for (int r = 0; r < s.nranks; ++r)
        if (s.dead[r].load(std::memory_order_acquire)) s.handled[r] = 1;
      if (s.poisoned.load(std::memory_order_relaxed) && s.poison_rank >= 0)
        s.last_death = "rank " + std::to_string(s.poison_rank) +
                       " failed: " + s.poison_reason;
      s.poison_rank = -1;
      s.poison_reason.clear();
      s.poisoned.store(false, std::memory_order_release);
    }
    s.shrink_arrived = 0;
    ++s.shrink_generation;
    s.shrink_cv.notify_all();
  };

  {
    std::unique_lock lock(s.shrink_mutex);
    const std::uint64_t generation = s.shrink_generation;
    ++s.shrink_arrived;
    for (;;) {
      if (s.shrink_generation != generation) break;  // repaired by a peer
      // The quorum is the *current* alive count: ranks that die while we
      // wait (their mark_dead notifies shrink_cv) shrink the quorum
      // instead of wedging it.
      if (s.shrink_arrived >= s.alive_count.load(std::memory_order_acquire)) {
        complete_locked();
        break;
      }
      if (deadline.count() > 0) {
        if (s.shrink_cv.wait_until(lock, give_up) ==
            std::cv_status::timeout) {
          if (s.shrink_generation != generation) break;
          if (s.shrink_arrived >=
              s.alive_count.load(std::memory_order_acquire)) {
            complete_locked();
            break;
          }
          --s.shrink_arrived;
          lock.unlock();
          fail_timeout("shrink", -1, -1);
        }
      } else {
        s.shrink_cv.wait(lock);
      }
    }
  }

  std::vector<int> dead;
  for (int r = 0; r < s.nranks; ++r)
    if (s.dead[r].load(std::memory_order_acquire)) dead.push_back(r);
  return dead;
}

void Communicator::broadcast(void* data, std::size_t bytes, int root) {
  constexpr int kTag = 900;
  if (rank_ == root) {
    for (int r = 0; r < size(); ++r)
      if (r != root && !is_dead(r)) send(r, kTag, data, bytes);
  } else {
    recv(root, kTag, data, bytes);
  }
}

double Communicator::allreduce(double value, ReduceOp op) {
  std::vector<double> v{value};
  allreduce(v, op);
  return v[0];
}

std::uint64_t Communicator::bytes_sent() const {
  return state_->bytes_sent[rank_].load(std::memory_order_relaxed);
}

std::uint64_t Communicator::messages_sent() const {
  return state_->messages_sent[rank_].load(std::memory_order_relaxed);
}

std::uint64_t Communicator::total_bytes_sent() const {
  std::uint64_t total = 0;
  for (int r = 0; r < size(); ++r)
    total += state_->bytes_sent[r].load(std::memory_order_relaxed);
  return total;
}

}  // namespace antmoc::comm
