#include "material/library_io.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/config.h"
#include "util/error.h"

namespace antmoc::material_io {
namespace {

std::vector<double> parse_list(const std::string& raw,
                               const std::string& what, int expected) {
  // Reuse the config list parser by round-tripping one key.
  const auto cfg = Config::parse("v: " + raw + "\n");
  const auto values = cfg.get_double_list("v");
  require(static_cast<int>(values.size()) == expected,
          what + ": expected " + std::to_string(expected) +
              " entries, got " + std::to_string(values.size()));
  return values;
}

std::string strip(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

}  // namespace

std::vector<Material> parse_library(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  int groups = 0;
  std::vector<Material> materials;
  Material* current = nullptr;
  bool has_chi = false;

  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = strip(line);
    if (line.empty()) continue;

    const auto colon = line.find(':');
    require(colon != std::string::npos,
            "library line " + std::to_string(lineno) + " has no ':'");
    const std::string key = strip(line.substr(0, colon));
    const std::string value = strip(line.substr(colon + 1));

    if (key == "groups") {
      require(groups == 0, "duplicate 'groups' directive");
      groups = static_cast<int>(std::strtol(value.c_str(), nullptr, 10));
      require(groups >= 1, "'groups' must be a positive integer");
    } else if (key == "material") {
      require(groups > 0, "'groups' must precede the first material");
      require(!value.empty(), "material needs a name");
      if (current != nullptr && !has_chi && current->is_fissile())
        fail<Error>("fissile material '" + current->name() +
                    "' has no chi spectrum");
      materials.emplace_back(value, groups);
      current = &materials.back();
      has_chi = false;
    } else {
      require(current != nullptr,
              "datum '" + key + "' outside a material block");
      if (key == "sigma_t")
        current->set_sigma_t(parse_list(value, key, groups));
      else if (key == "sigma_s")
        current->set_sigma_s(parse_list(value, key, groups * groups));
      else if (key == "sigma_f")
        current->set_sigma_f(parse_list(value, key, groups));
      else if (key == "nu_sigma_f")
        current->set_nu_sigma_f(parse_list(value, key, groups));
      else if (key == "chi") {
        current->set_chi(parse_list(value, key, groups));
        has_chi = true;
      } else {
        fail<Error>("unknown library key '" + key + "' at line " +
                    std::to_string(lineno));
      }
    }
  }
  require(!materials.empty(), "library defines no materials");
  for (const auto& m : materials) m.validate();
  return materials;
}

std::vector<Material> load_library(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail<Error>("cannot open material library: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse_library(ss.str());
}

std::string format_library(const std::vector<Material>& materials) {
  require(!materials.empty(), "cannot format an empty library");
  const int groups = materials.front().num_groups();
  std::ostringstream out;
  out << "groups: " << groups << "\n";
  auto list = [&](const char* key, auto getter, int count) {
    out << "  " << key << ": [";
    for (int i = 0; i < count; ++i) {
      if (i) out << ", ";
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.9g", getter(i));
      out << buf;
    }
    out << "]\n";
  };
  for (const auto& m : materials) {
    out << "material: " << m.name() << "\n";
    list("sigma_t", [&](int g) { return m.sigma_t(g); }, groups);
    list("sigma_s",
         [&](int i) { return m.sigma_s(i / groups, i % groups); },
         groups * groups);
    list("sigma_f", [&](int g) { return m.sigma_f(g); }, groups);
    list("nu_sigma_f", [&](int g) { return m.nu_sigma_f(g); }, groups);
    list("chi", [&](int g) { return m.chi(g); }, groups);
  }
  return out.str();
}

}  // namespace antmoc::material_io
