#include "material/material.h"

#include <cmath>
#include <numeric>

#include "util/error.h"

namespace antmoc {

Material::Material(std::string name, int num_groups)
    : name_(std::move(name)), num_groups_(num_groups) {
  require(num_groups >= 1, "material needs at least one energy group");
  sigma_t_.assign(num_groups, 0.0);
  sigma_f_.assign(num_groups, 0.0);
  nu_sigma_f_.assign(num_groups, 0.0);
  chi_.assign(num_groups, 0.0);
  sigma_s_.assign(static_cast<std::size_t>(num_groups) * num_groups, 0.0);
}

namespace {
void check_size(const std::vector<double>& v, int expected,
                const char* what) {
  require(static_cast<int>(v.size()) == expected,
          std::string(what) + ": expected " + std::to_string(expected) +
              " entries, got " + std::to_string(v.size()));
}
}  // namespace

void Material::set_sigma_t(std::vector<double> v) {
  check_size(v, num_groups_, "sigma_t");
  sigma_t_ = std::move(v);
}
void Material::set_sigma_f(std::vector<double> v) {
  check_size(v, num_groups_, "sigma_f");
  sigma_f_ = std::move(v);
}
void Material::set_nu_sigma_f(std::vector<double> v) {
  check_size(v, num_groups_, "nu_sigma_f");
  nu_sigma_f_ = std::move(v);
}
void Material::set_chi(std::vector<double> v) {
  check_size(v, num_groups_, "chi");
  chi_ = std::move(v);
}
void Material::set_sigma_s(std::vector<double> flat) {
  check_size(flat, num_groups_ * num_groups_, "sigma_s");
  sigma_s_ = std::move(flat);
}

double Material::sigma_a(int g) const {
  double out_scatter = 0.0;
  for (int gp = 0; gp < num_groups_; ++gp) out_scatter += sigma_s(g, gp);
  return sigma_t_[g] - out_scatter;
}

bool Material::is_fissile() const {
  for (double v : nu_sigma_f_)
    if (v > 0.0) return true;
  return false;
}

void Material::validate() const {
  for (int g = 0; g < num_groups_; ++g) {
    require(sigma_t_[g] > 0.0,
            name_ + ": sigma_t must be positive in group " +
                std::to_string(g));
    require(sigma_f_[g] >= 0.0 && nu_sigma_f_[g] >= 0.0 && chi_[g] >= 0.0,
            name_ + ": negative cross-section datum in group " +
                std::to_string(g));
    for (int gp = 0; gp < num_groups_; ++gp)
      require(sigma_s(g, gp) >= 0.0,
              name_ + ": negative scattering entry " + std::to_string(g) +
                  "->" + std::to_string(gp));
    // Allow a small tolerance: transport-corrected data can make Σa tiny.
    require(sigma_a(g) > -1e-8,
            name_ + ": total out-scatter exceeds sigma_t in group " +
                std::to_string(g));
  }
  const double chi_sum =
      std::accumulate(chi_.begin(), chi_.end(), 0.0);
  if (is_fissile())
    require(std::abs(chi_sum - 1.0) < 1e-4,
            name_ + ": chi must sum to 1 for fissile materials (got " +
                std::to_string(chi_sum) + ")");
}

double infinite_medium_k(const Material& m, double tolerance) {
  if (!m.is_fissile()) return 0.0;
  const int G = m.num_groups();
  std::vector<double> phi(G, 1.0), next(G, 0.0);
  double k = 1.0;

  for (int iter = 0; iter < 100000; ++iter) {
    double fission = 0.0;
    for (int g = 0; g < G; ++g) fission += m.nu_sigma_f(g) * phi[g];

    // Solve Σt φ' = S^T φ' + χ (fission / k), sweeping groups with a
    // Gauss-Seidel pass on the (nearly lower-triangular) scatter matrix.
    next = phi;
    for (int sweep = 0; sweep < 200; ++sweep) {
      double delta = 0.0;
      for (int g = 0; g < G; ++g) {
        double in_scatter = 0.0;
        for (int gp = 0; gp < G; ++gp)
          if (gp != g) in_scatter += m.sigma_s(gp, g) * next[gp];
        const double removal = m.sigma_t(g) - m.sigma_s(g, g);
        const double updated =
            (in_scatter + m.chi(g) * fission / k) / removal;
        delta = std::max(delta, std::abs(updated - next[g]));
        next[g] = updated;
      }
      if (delta < tolerance * 1e-2) break;
    }

    double new_fission = 0.0;
    for (int g = 0; g < G; ++g) new_fission += m.nu_sigma_f(g) * next[g];
    const double k_new = k * new_fission / fission;

    // L1-normalize to avoid drift.
    double norm = 0.0;
    for (double v : next) norm += std::abs(v);
    for (auto& v : next) v /= norm;
    phi = next;

    if (std::abs(k_new - k) < tolerance) return k_new;
    k = k_new;
  }
  fail<SolverError>("infinite_medium_k failed to converge for material " +
                    m.name());
}

std::vector<double> infinite_medium_flux(const Material& m,
                                         double tolerance) {
  require(m.is_fissile(), "infinite_medium_flux requires a fissile material");
  const int G = m.num_groups();
  const double k = infinite_medium_k(m, tolerance);
  std::vector<double> phi(G, 1.0);
  // One more converged flux solve at the final k.
  for (int sweep = 0; sweep < 2000; ++sweep) {
    double fission = 0.0;
    for (int g = 0; g < G; ++g) fission += m.nu_sigma_f(g) * phi[g];
    double delta = 0.0;
    for (int g = 0; g < G; ++g) {
      double in_scatter = 0.0;
      for (int gp = 0; gp < G; ++gp)
        if (gp != g) in_scatter += m.sigma_s(gp, g) * phi[gp];
      const double removal = m.sigma_t(g) - m.sigma_s(g, g);
      const double updated = (in_scatter + m.chi(g) * fission / k) / removal;
      delta = std::max(delta, std::abs(updated - phi[g]));
      phi[g] = updated;
    }
    double norm = 0.0;
    for (double v : phi) norm += std::abs(v);
    for (auto& v : phi) v /= norm;
    if (delta < tolerance) break;
  }
  return phi;
}

}  // namespace antmoc
