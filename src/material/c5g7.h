#pragma once

/// \file c5g7.h
/// The OECD/NEA C5G7 benchmark 7-group cross-section set — the problem the
/// paper uses for all correctness, performance, and scalability runs (§5).
/// Values transcribed from the benchmark specification (NEA/NSC/DOC(2003)16)
/// as distributed with OpenMOC; see DESIGN.md §5 for the transcription
/// caveat.

#include <vector>

#include "material/material.h"

namespace antmoc::c5g7 {

/// Material ids in the vector returned by materials(): stable and dense, so
/// they double as geometry material ids.
enum Id : int {
  kUO2 = 0,
  kMOX43 = 1,
  kMOX70 = 2,
  kMOX87 = 3,
  kFissionChamber = 4,
  kGuideTube = 5,
  kModerator = 6,
  kControlRod = 7,
};

inline constexpr int kNumGroups = 7;
inline constexpr int kNumMaterials = 8;

/// All eight benchmark materials, indexed by Id. Each is validate()d.
std::vector<Material> materials();

}  // namespace antmoc::c5g7
