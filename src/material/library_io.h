#pragma once

/// \file library_io.h
/// Text-format multigroup cross-section libraries, so downstream users can
/// solve with their own data instead of the built-in C5G7 set.
///
/// Format (parsed with the project config reader; '#' comments allowed):
///
///     groups: 2
///     material: fuel          # starts a material block
///       sigma_t:    [1.0, 2.0]
///       sigma_s:    [0.3, 0.2,  0.0, 1.5]   # row-major, from->to
///       sigma_f:    [0.05, 0.3]             # optional (default 0)
///       nu_sigma_f: [0.12, 0.75]            # optional (default 0)
///       chi:        [1.0, 0.0]              # optional (default 0)
///     material: water
///       ...
///
/// Materials are returned in file order and validate()d; ids are their
/// positions, ready for GeometryBuilder.

#include <string>
#include <vector>

#include "material/material.h"

namespace antmoc::material_io {

/// Parses a library from text; throws ConfigError/Error on malformed data.
std::vector<Material> parse_library(const std::string& text);

/// Loads a library file from disk.
std::vector<Material> load_library(const std::string& path);

/// Writes materials in the same format (round-trips through parse).
std::string format_library(const std::vector<Material>& materials);

}  // namespace antmoc::material_io
