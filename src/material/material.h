#pragma once

/// \file material.h
/// Multigroup macroscopic cross sections. ANT-MOC solves the multigroup
/// NTE; each flat source region references one Material.

#include <string>
#include <vector>

namespace antmoc {

class Material {
 public:
  Material() = default;
  Material(std::string name, int num_groups);

  const std::string& name() const { return name_; }
  int num_groups() const { return num_groups_; }

  // --- setters (used by cross-section libraries) -----------------------------
  void set_sigma_t(std::vector<double> v);
  void set_sigma_f(std::vector<double> v);
  void set_nu_sigma_f(std::vector<double> v);
  void set_chi(std::vector<double> v);
  /// Row-major scattering matrix: element [g*G + g'] is Σs(g -> g').
  void set_sigma_s(std::vector<double> flat);

  // --- accessors -------------------------------------------------------------
  double sigma_t(int g) const { return sigma_t_[g]; }
  double sigma_f(int g) const { return sigma_f_[g]; }
  double nu_sigma_f(int g) const { return nu_sigma_f_[g]; }
  double chi(int g) const { return chi_[g]; }
  double sigma_s(int from, int to) const {
    return sigma_s_[from * num_groups_ + to];
  }

  /// Absorption: Σt minus total out-scatter (includes within-group term
  /// cancellation; Σa(g) = Σt(g) - Σ_{g'} Σs(g -> g')).
  double sigma_a(int g) const;

  /// True if any group has νΣf > 0.
  bool is_fissile() const;

  /// Checks physical sanity: non-negative data, χ sums to ~1 for fissile
  /// materials, Σt >= total out-scatter in every group. Throws
  /// antmoc::Error with a description of the first violation.
  void validate() const;

 private:
  std::string name_;
  int num_groups_ = 0;
  std::vector<double> sigma_t_, sigma_f_, nu_sigma_f_, chi_, sigma_s_;
};

/// k-infinity of a homogeneous infinite medium of this material, computed
/// by direct power iteration on the G x G multigroup balance
///   Σt φ = S^T φ + (χ/k) F^T φ.
/// Returns 0 for non-fissile materials. Used as an analytic oracle by the
/// solver property tests (an infinite-medium MOC solve must match this).
double infinite_medium_k(const Material& m, double tolerance = 1e-10);

/// The accompanying infinite-medium group flux (L1-normalized).
std::vector<double> infinite_medium_flux(const Material& m,
                                         double tolerance = 1e-10);

}  // namespace antmoc
