#pragma once

/// \file device.h
/// A simulated GPU: a CU array with cycle accounting, a capacity-enforced
/// memory arena, and kernel launches executed by a host thread pool.
///
/// The kernel body is called once per item (per 3D track, matching the
/// paper's Algorithm 1 grid-stride loop) and returns the simulated cost of
/// that item in cycles. Costs accumulate per CU, so MAX/AVG across CUs
/// measures intra-GPU load imbalance exactly as per-CU busy time would on
/// real hardware.

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <type_traits>

#include "gpusim/device_memory.h"
#include "gpusim/device_spec.h"
#include "gpusim/kernel.h"
#include "gpusim/thread_pool.h"
#include "util/timer.h"

namespace antmoc::gpusim {

class Device {
 public:
  explicit Device(DeviceSpec spec = {});

  const DeviceSpec& spec() const { return spec_; }
  DeviceMemory& memory() { return memory_; }
  const DeviceMemory& memory() const { return memory_; }

  /// Allocates a typed buffer charged against this device's memory.
  template <class T>
  DeviceBuffer<T> alloc(const std::string& label, std::size_t count) {
    return DeviceBuffer<T>(memory_, label, count);
  }

  /// Launches a kernel over `num_items` items.
  /// `body(item)` — or `body(item, cu)` for kernels that keep per-CU
  /// private state, e.g. privatized tallies — performs the item's work and
  /// returns its simulated cost in cycles. Items are mapped to CUs per
  /// `assign`; each CU's items are processed sequentially by the worker
  /// owning that CU, so two items on the same CU never race, while items
  /// on different CUs may run concurrently (use device_atomic_add for
  /// shared accumulators, or index private state by `cu`).
  template <class Body>
  KernelStats launch(const std::string& name, std::size_t num_items,
                     Assignment assign, Body&& body) {
    if constexpr (std::is_invocable_v<Body&, std::size_t, int>) {
      return launch_impl(name, num_items, assign,
                         std::function<double(std::size_t, int)>(body));
    } else {
      return launch_impl(
          name, num_items, assign,
          std::function<double(std::size_t, int)>(
              [&body](std::size_t i, int) { return body(i); }));
    }
  }

  /// Records a device-to-device copy: byte accounting plus modeled time.
  /// Returns modeled seconds for the transfer.
  double dma_copy_to(Device& dst, std::size_t bytes);

  std::uint64_t dma_bytes_out() const { return dma_bytes_out_; }
  std::uint64_t dma_bytes_in() const { return dma_bytes_in_; }

  /// Cumulative stats per kernel name since construction.
  std::map<std::string, KernelAccum> kernel_accum() const;

  /// Total modeled seconds across all launches.
  double modeled_seconds_total() const;

 private:
  KernelStats launch_impl(
      const std::string& name, std::size_t num_items, Assignment assign,
      const std::function<double(std::size_t, int)>& body);

  DeviceSpec spec_;
  DeviceMemory memory_;
  ThreadPool pool_;
  mutable std::mutex stats_mutex_;
  std::map<std::string, KernelAccum> accum_;
  std::uint64_t dma_bytes_out_ = 0;
  std::uint64_t dma_bytes_in_ = 0;
};

}  // namespace antmoc::gpusim
