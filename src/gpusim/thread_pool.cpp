#include "gpusim/thread_pool.h"

#include <algorithm>

namespace antmoc::gpusim {

ThreadPool::ThreadPool(unsigned workers) {
  if (workers == 0)
    workers = std::max(1u, std::thread::hardware_concurrency());
  // Worker 0 is the caller's thread; spawn the rest.
  for (unsigned i = 1; i < workers; ++i)
    threads_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::run(const std::function<void(unsigned)>& fn) {
  if (threads_.empty()) {
    fn(0);  // single-worker pool: no synchronization needed
    return;
  }
  {
    std::lock_guard lock(mutex_);
    job_ = &fn;
    error_ = nullptr;
    remaining_ = static_cast<unsigned>(threads_.size());
    ++generation_;
  }
  start_cv_.notify_all();

  try {
    fn(0);
  } catch (...) {
    std::lock_guard lock(mutex_);
    if (!error_) error_ = std::current_exception();
  }

  std::unique_lock lock(mutex_);
  done_cv_.wait(lock, [this] { return remaining_ == 0; });
  job_ = nullptr;
  if (error_) std::rethrow_exception(error_);
}

void ThreadPool::worker_loop(unsigned index) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(unsigned)>* job = nullptr;
    {
      std::unique_lock lock(mutex_);
      start_cv_.wait(
          lock, [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
      job = job_;
    }
    try {
      (*job)(index);
    } catch (...) {
      std::lock_guard lock(mutex_);
      if (!error_) error_ = std::current_exception();
    }
    {
      std::lock_guard lock(mutex_);
      if (--remaining_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace antmoc::gpusim
