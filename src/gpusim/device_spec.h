#pragma once

/// \file device_spec.h
/// Static description of a simulated GPU. Defaults model the AMD Instinct
/// MI60 used in the paper's evaluation: 64 CUs and 16 GB of global memory.

#include <cstddef>
#include <string>

namespace antmoc::gpusim {

struct DeviceSpec {
  std::string name = "SIM-MI60";

  /// Number of compute units (SM-equivalents); L3 load mapping targets these.
  int num_cus = 64;

  /// Global memory capacity enforced by the DeviceMemory arena.
  std::size_t memory_bytes = std::size_t{16} << 30;

  /// Core clock used to convert simulated busy cycles into modeled seconds.
  double clock_ghz = 1.8;

  /// Device-to-device DMA bandwidth (bytes/s) for modeled transfer times.
  double dma_bytes_per_second = 64.0e9;

  /// An MI60-like spec scaled down so in-process tests exercise the memory
  /// capacity wall without allocating gigabytes of host RAM.
  static DeviceSpec scaled(std::size_t memory_bytes, int num_cus = 64) {
    DeviceSpec spec;
    spec.memory_bytes = memory_bytes;
    spec.num_cus = num_cus;
    return spec;
  }
};

}  // namespace antmoc::gpusim
