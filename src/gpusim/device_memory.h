#pragma once

/// \file device_memory.h
/// Byte-accurate device-memory arena. Allocation is *accounting-enforced*:
/// buffers are host-backed, but every allocation is charged against the
/// device capacity and throws DeviceOutOfMemory beyond it — reproducing the
/// 16 GB wall that forces the paper's OTF/Manager track policies. Per-label
/// charges regenerate the paper's Table 3 memory breakdown.

#include <cstddef>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "util/error.h"

namespace antmoc::gpusim {

class DeviceMemory {
 public:
  explicit DeviceMemory(std::size_t capacity) : capacity_(capacity) {}

  /// Charges `bytes` under `label`; throws DeviceOutOfMemory if the arena
  /// would exceed capacity. Returns an opaque charge id used by release().
  void charge(const std::string& label, std::size_t bytes);

  /// Releases a previous charge (partial releases allowed).
  void release(const std::string& label, std::size_t bytes);

  std::size_t capacity() const { return capacity_; }
  std::size_t used() const;
  std::size_t peak_used() const;
  std::size_t available() const;

  /// Current bytes charged to one label (0 if unknown).
  std::size_t used_by(const std::string& label) const;

  /// Snapshot of all labels -> bytes, for the Table 3 breakdown.
  std::map<std::string, std::size_t> breakdown() const;

 private:
  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::size_t used_ = 0;
  std::size_t peak_ = 0;
  std::map<std::string, std::size_t> by_label_;
};

/// RAII accounting-only charge against a device arena: models structures
/// whose bytes live on the device but whose host mirror is shared (e.g. a
/// decoded-track cache used by several solvers). Move-only.
class ScopedCharge {
 public:
  ScopedCharge() = default;
  ScopedCharge(DeviceMemory& arena, std::string label, std::size_t bytes)
      : arena_(&arena), label_(std::move(label)), bytes_(bytes) {
    arena_->charge(label_, bytes_);
  }
  ~ScopedCharge() { release(); }

  ScopedCharge(ScopedCharge&& o) noexcept
      : arena_(o.arena_), label_(std::move(o.label_)), bytes_(o.bytes_) {
    o.arena_ = nullptr;
  }
  ScopedCharge& operator=(ScopedCharge&& o) noexcept {
    if (this != &o) {
      release();
      arena_ = o.arena_;
      label_ = std::move(o.label_);
      bytes_ = o.bytes_;
      o.arena_ = nullptr;
    }
    return *this;
  }
  ScopedCharge(const ScopedCharge&) = delete;
  ScopedCharge& operator=(const ScopedCharge&) = delete;

  void release() {
    if (arena_ != nullptr && bytes_ > 0) arena_->release(label_, bytes_);
    arena_ = nullptr;
  }

 private:
  DeviceMemory* arena_ = nullptr;
  std::string label_;
  std::size_t bytes_ = 0;
};

/// RAII typed device buffer: host-backed storage plus an arena charge held
/// for the buffer's lifetime.
template <class T>
class DeviceBuffer {
 public:
  DeviceBuffer() = default;

  DeviceBuffer(DeviceMemory& arena, std::string label, std::size_t count)
      : arena_(&arena), label_(std::move(label)) {
    arena_->charge(label_, count * sizeof(T));
    storage_.resize(count);
  }

  ~DeviceBuffer() { reset(); }

  DeviceBuffer(DeviceBuffer&& other) noexcept { *this = std::move(other); }
  DeviceBuffer& operator=(DeviceBuffer&& other) noexcept {
    if (this != &other) {
      reset();
      arena_ = other.arena_;
      label_ = std::move(other.label_);
      storage_ = std::move(other.storage_);
      other.arena_ = nullptr;
    }
    return *this;
  }
  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;

  void reset() {
    if (arena_) arena_->release(label_, storage_.size() * sizeof(T));
    arena_ = nullptr;
    storage_.clear();
    storage_.shrink_to_fit();
  }

  T* data() { return storage_.data(); }
  const T* data() const { return storage_.data(); }
  std::size_t size() const { return storage_.size(); }
  bool empty() const { return storage_.empty(); }
  T& operator[](std::size_t i) { return storage_[i]; }
  const T& operator[](std::size_t i) const { return storage_[i]; }
  const std::string& label() const { return label_; }

  auto begin() { return storage_.begin(); }
  auto end() { return storage_.end(); }
  auto begin() const { return storage_.begin(); }
  auto end() const { return storage_.end(); }

 private:
  DeviceMemory* arena_ = nullptr;
  std::string label_;
  std::vector<T> storage_;
};

}  // namespace antmoc::gpusim
