#pragma once

/// \file thread_pool.h
/// Persistent worker pool used by Device to execute kernel launches.
/// Workers are created once per Device so repeated launches (thousands of
/// transport-sweep kernels) pay no thread-spawn cost.

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace antmoc::gpusim {

class ThreadPool {
 public:
  /// `workers == 0` selects std::thread::hardware_concurrency().
  explicit ThreadPool(unsigned workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(threads_.size() + 1); }

  /// Runs fn(worker_index) for worker_index in [0, size()) and blocks until
  /// all invocations return. Worker 0 runs on the calling thread.
  /// Exceptions from workers are rethrown on the caller (first one wins).
  void run(const std::function<void(unsigned)>& fn);

 private:
  void worker_loop(unsigned index);

  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(unsigned)>* job_ = nullptr;
  std::uint64_t generation_ = 0;
  unsigned remaining_ = 0;
  bool shutdown_ = false;
  std::exception_ptr error_;
};

}  // namespace antmoc::gpusim
