#include "gpusim/device_memory.h"

#include <algorithm>

#include "fault/fault.h"

namespace antmoc::gpusim {

void DeviceMemory::charge(const std::string& label, std::size_t bytes) {
  // Scriptable failure point: plans like "gpusim.alloc throw oom nth=3"
  // make the Nth device allocation fail deterministically.
  fault::point("gpusim.alloc");
  std::lock_guard lock(mutex_);
  if (used_ + bytes > capacity_)
    fail<DeviceOutOfMemory>(
        "device memory exhausted: requested " + std::to_string(bytes) +
        " B for '" + label + "', used " + std::to_string(used_) + " of " +
        std::to_string(capacity_) + " B");
  used_ += bytes;
  peak_ = std::max(peak_, used_);
  by_label_[label] += bytes;
}

void DeviceMemory::release(const std::string& label, std::size_t bytes) {
  std::lock_guard lock(mutex_);
  auto it = by_label_.find(label);
  require(it != by_label_.end() && it->second >= bytes && used_ >= bytes,
          "release of bytes never charged under label '" + label + "'");
  it->second -= bytes;
  if (it->second == 0) by_label_.erase(it);
  used_ -= bytes;
}

std::size_t DeviceMemory::used() const {
  std::lock_guard lock(mutex_);
  return used_;
}

std::size_t DeviceMemory::peak_used() const {
  std::lock_guard lock(mutex_);
  return peak_;
}

std::size_t DeviceMemory::available() const {
  std::lock_guard lock(mutex_);
  return capacity_ - used_;
}

std::size_t DeviceMemory::used_by(const std::string& label) const {
  std::lock_guard lock(mutex_);
  auto it = by_label_.find(label);
  return it == by_label_.end() ? 0 : it->second;
}

std::map<std::string, std::size_t> DeviceMemory::breakdown() const {
  std::lock_guard lock(mutex_);
  return by_label_;
}

}  // namespace antmoc::gpusim
