#include "gpusim/device.h"

#include <algorithm>
#include <cmath>

#include "telemetry/telemetry.h"

namespace antmoc::gpusim {

Device::Device(DeviceSpec spec)
    : spec_(std::move(spec)), memory_(spec_.memory_bytes) {}

KernelStats Device::launch_impl(
    const std::string& name, std::size_t num_items, Assignment assign,
    const std::function<double(std::size_t, int)>& body) {
  telemetry::TraceSpan span("kernel/" + name, "gpusim", -1, -1, "items",
                            static_cast<std::int64_t>(num_items));
  const int ncus = spec_.num_cus;
  KernelStats stats;
  stats.name = name;
  stats.num_items = num_items;
  stats.cu_cycles.assign(ncus, 0.0);

  Timer wall;
  wall.start();

  // Items for CU c under each assignment:
  //   kRoundRobin: i with i % ncus == c          (paper L3 after sorting)
  //   kBlocked:    i in [c*chunk, (c+1)*chunk)   (natural-order baseline)
  const std::size_t chunk = (num_items + ncus - 1) / ncus;
  const unsigned workers = pool_.size();

  pool_.run([&](unsigned w) {
    // Worker w owns CUs {c : c % workers == w}; a CU's items run in order
    // on exactly one worker, so per-CU accumulation is race-free.
    for (int c = static_cast<int>(w); c < ncus;
         c += static_cast<int>(workers)) {
      double cycles = 0.0;
      if (assign == Assignment::kRoundRobin) {
        for (std::size_t i = c; i < num_items; i += ncus)
          cycles += body(i, c);
      } else {
        const std::size_t begin = c * chunk;
        const std::size_t end = std::min(num_items, begin + chunk);
        for (std::size_t i = begin; i < end; ++i) cycles += body(i, c);
      }
      stats.cu_cycles[c] = cycles;
    }
  });

  wall.stop();
  stats.wall_seconds = wall.seconds();
  for (double c : stats.cu_cycles) {
    stats.total_cycles += c;
    stats.max_cycles = std::max(stats.max_cycles, c);
  }
  stats.modeled_seconds = stats.max_cycles / (spec_.clock_ghz * 1e9);

  {
    std::lock_guard lock(stats_mutex_);
    auto& acc = accum_[name];
    ++acc.launches;
    acc.items += num_items;
    acc.total_cycles += stats.total_cycles;
    acc.modeled_seconds += stats.modeled_seconds;
    acc.wall_seconds += stats.wall_seconds;
  }

  // Per-CU busy/idle accounting: utilization of CU c over this launch is
  // its busy cycles against the critical-path CU, the same MAX/AVG signal
  // the paper's load-uniformity index (§5.4) is built from.
  if (telemetry::on() && stats.max_cycles > 0.0) {
    auto& m = telemetry::metrics();
    m.counter("gpusim.kernel.launches").add(1);
    m.counter("gpusim.kernel.items").add(num_items);
    auto& util = m.histogram("gpusim.cu_utilization");
    for (int c = 0; c < ncus; ++c) {
      const double busy = stats.cu_cycles[c];
      util.observe(busy / stats.max_cycles);
      m.counter(telemetry::label("gpusim.cu_busy_cycles", "cu", c))
          .add(static_cast<std::uint64_t>(std::llround(busy)));
      m.counter(telemetry::label("gpusim.cu_idle_cycles", "cu", c))
          .add(static_cast<std::uint64_t>(
              std::llround(stats.max_cycles - busy)));
    }
    m.gauge("gpusim.load_uniformity").set(stats.load_uniformity());
  }
  return stats;
}

double Device::dma_copy_to(Device& dst, std::size_t bytes) {
  if (telemetry::on())
    telemetry::metrics().counter("gpusim.dma_bytes").add(bytes);
  {
    std::lock_guard lock(stats_mutex_);
    dma_bytes_out_ += bytes;
  }
  {
    std::lock_guard lock(dst.stats_mutex_);
    dst.dma_bytes_in_ += bytes;
  }
  return static_cast<double>(bytes) / spec_.dma_bytes_per_second;
}

std::map<std::string, KernelAccum> Device::kernel_accum() const {
  std::lock_guard lock(stats_mutex_);
  return accum_;
}

double Device::modeled_seconds_total() const {
  std::lock_guard lock(stats_mutex_);
  double total = 0.0;
  for (const auto& [_, acc] : accum_) total += acc.modeled_seconds;
  return total;
}

}  // namespace antmoc::gpusim
