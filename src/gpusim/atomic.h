#pragma once

/// \file atomic.h
/// Device-atomic helpers. Kernel bodies that accumulate into FSR scalar
/// fluxes (a one-to-many track->FSR relationship, paper §3.2.3) must use
/// these: items on different CUs may execute concurrently.

#include <atomic>

namespace antmoc::gpusim {

/// Equivalent of CUDA atomicAdd on a float/double in global memory.
template <class T>
inline void device_atomic_add(T& target, T value) {
  std::atomic_ref<T> ref(target);
  ref.fetch_add(value, std::memory_order_relaxed);
}

}  // namespace antmoc::gpusim
