#pragma once

/// \file kernel.h
/// Kernel-launch result types for the simulated GPU.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace antmoc::gpusim {

/// How launch items (tracks) are mapped onto CUs.
///
/// kRoundRobin reproduces the paper's L3 strategy: after tracks are sorted
/// by descending segment count, item i goes to CU i % num_cus, dealing the
/// heaviest tracks out like cards. kBlocked is the unbalanced baseline:
/// contiguous chunks of the natural track order.
enum class Assignment { kRoundRobin, kBlocked };

/// Result of one kernel launch, with per-CU simulated busy cycles.
struct KernelStats {
  std::string name;
  std::size_t num_items = 0;

  /// Simulated busy cycles accumulated by each CU.
  std::vector<double> cu_cycles;

  double total_cycles = 0.0;  ///< sum over CUs
  double max_cycles = 0.0;    ///< critical-path CU

  /// Modeled kernel time: critical-path cycles at the device clock.
  double modeled_seconds = 0.0;

  /// Host wall-clock spent executing the launch (not the modeled time).
  double wall_seconds = 0.0;

  /// Load-uniformity index (paper §5.4): MAX over CUs / AVG over CUs, >= 1.
  double load_uniformity() const {
    if (cu_cycles.empty() || total_cycles <= 0.0) return 1.0;
    const double avg = total_cycles / static_cast<double>(cu_cycles.size());
    return avg > 0.0 ? max_cycles / avg : 1.0;
  }
};

/// Cumulative per-kernel-name accounting (for the kernel-breakdown bench:
/// the paper states track generation + ray tracing + source computation are
/// ~70 % of the workload).
struct KernelAccum {
  std::uint64_t launches = 0;
  std::uint64_t items = 0;
  double total_cycles = 0.0;
  double modeled_seconds = 0.0;
  double wall_seconds = 0.0;
};

}  // namespace antmoc::gpusim
