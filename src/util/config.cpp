#include "util/config.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/error.h"

namespace antmoc {
namespace {

std::string strip(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

/// Removes an unquoted trailing comment.
std::string strip_comment(const std::string& line) {
  bool in_quote = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    if (line[i] == '"') in_quote = !in_quote;
    if (line[i] == '#' && !in_quote) return line.substr(0, i);
  }
  return line;
}

std::string unquote(std::string v) {
  if (v.size() >= 2 && v.front() == '"' && v.back() == '"')
    return v.substr(1, v.size() - 2);
  return v;
}

std::vector<std::string> split_list(const std::string& v,
                                    const std::string& key) {
  if (v.size() < 2 || v.front() != '[' || v.back() != ']')
    fail<ConfigError>("config key '" + key + "' is not a [list]: " + v);
  std::vector<std::string> items;
  std::string body = v.substr(1, v.size() - 2);
  std::istringstream is(body);
  std::string item;
  while (std::getline(is, item, ',')) {
    item = strip(item);
    if (!item.empty()) items.push_back(item);
  }
  return items;
}

long to_int(const std::string& v, const std::string& key) {
  char* end = nullptr;
  long value = std::strtol(v.c_str(), &end, 10);
  if (end == v.c_str() || *end != '\0')
    fail<ConfigError>("config key '" + key + "' is not an integer: " + v);
  return value;
}

double to_double(const std::string& v, const std::string& key) {
  char* end = nullptr;
  double value = std::strtod(v.c_str(), &end);
  if (end == v.c_str() || *end != '\0')
    fail<ConfigError>("config key '" + key + "' is not a number: " + v);
  return value;
}

bool to_bool(const std::string& v, const std::string& key) {
  if (v == "true" || v == "yes" || v == "on" || v == "1") return true;
  if (v == "false" || v == "no" || v == "off" || v == "0") return false;
  fail<ConfigError>("config key '" + key + "' is not a boolean: " + v);
}

}  // namespace

Config Config::parse(const std::string& text) {
  Config cfg;
  std::istringstream is(text);
  std::string line;
  std::string section;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    line = strip_comment(line);
    const std::string trimmed = strip(line);
    if (trimmed.empty()) continue;

    const bool indented =
        !line.empty() && std::isspace(static_cast<unsigned char>(line[0]));
    const auto colon = trimmed.find(':');
    if (colon == std::string::npos)
      fail<ConfigError>("config line " + std::to_string(lineno) +
                        " has no ':' separator: " + trimmed);

    const std::string key = strip(trimmed.substr(0, colon));
    const std::string value = strip(trimmed.substr(colon + 1));
    if (key.empty())
      fail<ConfigError>("config line " + std::to_string(lineno) +
                        " has an empty key");

    if (value.empty()) {
      // A section header; subsequent indented keys are nested under it.
      section = key;
      continue;
    }
    const std::string full =
        (indented && !section.empty()) ? section + "." + key : key;
    if (!indented) section.clear();
    cfg.values_[full] = unquote(value);
  }
  return cfg;
}

Config Config::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail<ConfigError>("cannot open config file: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse(ss.str());
}

bool Config::contains(const std::string& key) const {
  return values_.count(key) != 0;
}

std::optional<std::string> Config::raw(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Config::get_string(const std::string& key) const {
  auto v = raw(key);
  if (!v) fail<ConfigError>("missing config key: " + key);
  return *v;
}

long Config::get_int(const std::string& key) const {
  return to_int(get_string(key), key);
}

double Config::get_double(const std::string& key) const {
  return to_double(get_string(key), key);
}

bool Config::get_bool(const std::string& key) const {
  return to_bool(get_string(key), key);
}

std::vector<long> Config::get_int_list(const std::string& key) const {
  std::vector<long> out;
  for (const auto& item : split_list(get_string(key), key))
    out.push_back(to_int(item, key));
  return out;
}

std::vector<double> Config::get_double_list(const std::string& key) const {
  std::vector<double> out;
  for (const auto& item : split_list(get_string(key), key))
    out.push_back(to_double(item, key));
  return out;
}

std::string Config::get_string(const std::string& key,
                               std::string fallback) const {
  auto v = raw(key);
  return v ? *v : std::move(fallback);
}

long Config::get_int(const std::string& key, long fallback) const {
  auto v = raw(key);
  return v ? to_int(*v, key) : fallback;
}

double Config::get_double(const std::string& key, double fallback) const {
  auto v = raw(key);
  return v ? to_double(*v, key) : fallback;
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  auto v = raw(key);
  return v ? to_bool(*v, key) : fallback;
}

void Config::set(const std::string& key, const std::string& value) {
  values_[key] = value;
}

std::vector<std::string> Config::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, _] : values_) out.push_back(k);
  return out;
}

}  // namespace antmoc
