#include "util/timer.h"

#include <algorithm>
#include <cstdio>
#include <vector>

namespace antmoc {

TimerRegistry& TimerRegistry::instance() {
  static TimerRegistry registry;
  return registry;
}

void TimerRegistry::add(const std::string& name, double seconds) {
  std::lock_guard lock(mutex_);
  totals_[name] += seconds;
}

double TimerRegistry::seconds(const std::string& name) const {
  std::lock_guard lock(mutex_);
  auto it = totals_.find(name);
  return it == totals_.end() ? 0.0 : it->second;
}

std::string TimerRegistry::report() const {
  std::lock_guard lock(mutex_);
  std::vector<std::pair<std::string, double>> rows(totals_.begin(),
                                                   totals_.end());
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  std::string out;
  for (const auto& [name, secs] : rows) {
    char line[160];
    std::snprintf(line, sizeof line, "%-40s %12.6f s\n", name.c_str(), secs);
    out += line;
  }
  return out;
}

void TimerRegistry::clear() {
  std::lock_guard lock(mutex_);
  totals_.clear();
}

}  // namespace antmoc
