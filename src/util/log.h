#pragma once

/// \file log.h
/// Minimal leveled logger. Thread-safe; writes to stderr by default so
/// result tables printed by benches stay clean on stdout.

#include <mutex>
#include <sstream>
#include <string>

namespace antmoc::log {

enum class Level { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold: messages below this level are dropped.
void set_level(Level level);
Level level();

/// Redirect log output to a file (empty path restores stderr).
void set_file(const std::string& path);

void write(Level level, const std::string& msg);

namespace detail {
template <class... Args>
std::string format(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace detail

template <class... Args>
void debug(Args&&... args) {
  if (level() <= Level::kDebug)
    write(Level::kDebug, detail::format(std::forward<Args>(args)...));
}
template <class... Args>
void info(Args&&... args) {
  if (level() <= Level::kInfo)
    write(Level::kInfo, detail::format(std::forward<Args>(args)...));
}
template <class... Args>
void warn(Args&&... args) {
  if (level() <= Level::kWarn)
    write(Level::kWarn, detail::format(std::forward<Args>(args)...));
}
template <class... Args>
void error(Args&&... args) {
  if (level() <= Level::kError)
    write(Level::kError, detail::format(std::forward<Args>(args)...));
}

}  // namespace antmoc::log
