#include "util/cli.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "fault/fault.h"
#include "util/error.h"

namespace antmoc {

namespace {

/// `--fault-list`: enumerate every compiled-in injection point with the
/// plan grammar, then exit — tooling (and humans) discover where faults
/// can be scripted without reading the source.
[[noreturn]] void print_fault_points() {
  std::printf("fault injection points:\n");
  for (const auto& p : fault::known_points())
    std::printf("  %-20s %s\n", p.name, p.description);
  std::printf(
      "\nplan grammar (fault.plans, ';' between plans):\n"
      "  <point> [throw|delay] [oom|solver|comm|generic] [nth=N]\n"
      "          [rank=R] [ms=X] [repeat]\n");
  std::exit(0);
}

}  // namespace

Config parse_cli(int argc, const char* const* argv) {
  // First pass: find --config so file values can be overridden by flags.
  Config cfg;
  auto canonical = [](std::string arg) {
    // Accept both --key and the paper artifact's single-dash -key form.
    if (arg.rfind("--", 0) == 0) return arg.substr(2);
    if (arg.rfind('-', 0) == 0) return arg.substr(1);
    return std::string();
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = canonical(argv[i]);
    if (arg.rfind("config=", 0) == 0)
      cfg = Config::load(arg.substr(std::strlen("config=")));
    else if (arg == "config" && i + 1 < argc)
      cfg = Config::load(argv[i + 1]);
  }

  for (int i = 1; i < argc; ++i) {
    std::string arg = canonical(argv[i]);
    if (arg == "fault-list") print_fault_points();
    if (arg.empty())
      fail<ConfigError>(std::string("unexpected positional argument: ") +
                        argv[i]);
    if (arg.rfind("config", 0) == 0) {
      if (arg == "config") ++i;  // skip the separate path argument
      continue;
    }
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      cfg.set(arg.substr(0, eq), arg.substr(eq + 1));
    } else if (i + 1 < argc && argv[i + 1][0] != '-') {
      cfg.set(arg, argv[++i]);
    } else {
      cfg.set(arg, "true");
    }
  }
  return cfg;
}

}  // namespace antmoc
