#pragma once

/// \file rng.h
/// xoshiro256** PRNG (Blackman & Vigna). Deterministic, fast, and
/// reproducible across platforms — used for synthetic workloads and
/// failure-injection tests, never for physics.

#include <cstdint>

namespace antmoc {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // SplitMix64 expansion of the seed into the 256-bit state.
    std::uint64_t z = seed;
    for (auto& word : state_) {
      z += 0x9e3779b97f4a7c15ull;
      std::uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
      word = x ^ (x >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// Uniform integer in [0, n).
  std::uint64_t next_below(std::uint64_t n) { return next_u64() % n; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

}  // namespace antmoc
