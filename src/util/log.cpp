#include "util/log.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>

namespace antmoc::log {
namespace {

std::atomic<Level> g_level{Level::kInfo};

// Sink swapping is shared_ptr based: set_file() publishes a new sink under
// g_sink_mutex while any in-flight writer still holds a reference to the
// old one, so a failure cascade logging from every rank can never race a
// concurrent sink swap into a closed stream. Writes to the active sink are
// serialized by g_write_mutex so lines from concurrent ranks interleave
// whole, never mid-line.
std::mutex g_sink_mutex;
std::mutex g_write_mutex;
std::shared_ptr<std::ofstream> g_file;  // null = stderr

std::shared_ptr<std::ofstream> current_sink() {
  std::lock_guard lock(g_sink_mutex);
  return g_file;
}

const char* tag(Level level) {
  switch (level) {
    case Level::kDebug:
      return "DEBUG";
    case Level::kInfo:
      return "INFO ";
    case Level::kWarn:
      return "WARN ";
    case Level::kError:
      return "ERROR";
    default:
      return "?????";
  }
}

}  // namespace

void set_level(Level level) { g_level.store(level, std::memory_order_relaxed); }

Level level() { return g_level.load(std::memory_order_relaxed); }

void set_file(const std::string& path) {
  std::shared_ptr<std::ofstream> next;
  if (!path.empty())
    next = std::make_shared<std::ofstream>(path, std::ios::app);
  std::lock_guard lock(g_sink_mutex);
  g_file = std::move(next);  // old stream closes once its last writer drops it
}

void write(Level level, const std::string& msg) {
  using clock = std::chrono::steady_clock;
  static const auto t0 = clock::now();
  const double secs =
      std::chrono::duration<double>(clock::now() - t0).count();
  char prefix[64];
  std::snprintf(prefix, sizeof prefix, "[%9.3f] %s ", secs, tag(level));

  const auto file = current_sink();
  std::lock_guard lock(g_write_mutex);
  if (file != nullptr && file->is_open()) {
    *file << prefix << msg << '\n';
    if (level >= Level::kError) file->flush();
  } else {
    std::cerr << prefix << msg << '\n';
  }
}

}  // namespace antmoc::log
