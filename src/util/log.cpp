#include "util/log.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>

namespace antmoc::log {
namespace {

std::atomic<Level> g_level{Level::kInfo};
std::mutex g_mutex;
std::ofstream g_file;

const char* tag(Level level) {
  switch (level) {
    case Level::kDebug:
      return "DEBUG";
    case Level::kInfo:
      return "INFO ";
    case Level::kWarn:
      return "WARN ";
    case Level::kError:
      return "ERROR";
    default:
      return "?????";
  }
}

}  // namespace

void set_level(Level level) { g_level.store(level, std::memory_order_relaxed); }

Level level() { return g_level.load(std::memory_order_relaxed); }

void set_file(const std::string& path) {
  std::lock_guard lock(g_mutex);
  if (g_file.is_open()) g_file.close();
  if (!path.empty()) g_file.open(path, std::ios::app);
}

void write(Level level, const std::string& msg) {
  using clock = std::chrono::steady_clock;
  static const auto t0 = clock::now();
  const double secs =
      std::chrono::duration<double>(clock::now() - t0).count();
  char prefix[64];
  std::snprintf(prefix, sizeof prefix, "[%9.3f] %s ", secs, tag(level));

  std::lock_guard lock(g_mutex);
  if (g_file.is_open())
    g_file << prefix << msg << '\n';
  else
    std::cerr << prefix << msg << '\n';
}

}  // namespace antmoc::log
