#pragma once

/// \file timer.h
/// Wall-clock timers and a process-wide named-timer registry used by the
/// run-log tables (the paper's artifact reports per-stage execution times
/// from the run log; TimerRegistry::report() regenerates that table).

#include <chrono>
#include <map>
#include <mutex>
#include <string>

namespace antmoc {

/// Simple restartable stopwatch.
class Timer {
 public:
  /// Starts (or restarts) the watch. Calling start() while already running
  /// banks the in-flight interval into the total first, so no measured
  /// time is ever silently discarded.
  void start() {
    const auto now = clock::now();
    if (running_)
      total_ += std::chrono::duration<double>(now - start_).count();
    start_ = now;
    running_ = true;
  }

  /// Stops the watch and adds the elapsed interval to the accumulated total.
  void stop() {
    if (!running_) return;
    total_ += std::chrono::duration<double>(clock::now() - start_).count();
    running_ = false;
  }

  void reset() { total_ = 0.0; running_ = false; }

  /// Accumulated seconds (includes the live interval if still running).
  double seconds() const {
    double t = total_;
    if (running_)
      t += std::chrono::duration<double>(clock::now() - start_).count();
    return t;
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_{};
  double total_ = 0.0;
  bool running_ = false;
};

/// Process-wide registry of named accumulating timers. Thread-safe.
class TimerRegistry {
 public:
  static TimerRegistry& instance();

  /// Adds `seconds` to the named bucket.
  void add(const std::string& name, double seconds);

  double seconds(const std::string& name) const;

  /// Formats "name: seconds" lines sorted by descending time.
  std::string report() const;

  void clear();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, double> totals_;
};

/// RAII probe: accumulates its lifetime into TimerRegistry under `name`.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::string name) : name_(std::move(name)) {
    timer_.start();
  }
  ~ScopedTimer() {
    timer_.stop();
    TimerRegistry::instance().add(name_, timer_.seconds());
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  std::string name_;
  Timer timer_;
};

}  // namespace antmoc
