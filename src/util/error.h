#pragma once

/// \file error.h
/// Error types and invariant-checking helpers used across ANT-MOC.

#include <source_location>
#include <stdexcept>
#include <string>

namespace antmoc {

/// Base class for all ANT-MOC errors.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A configuration file or parameter was malformed or out of range.
class ConfigError : public Error {
 public:
  using Error::Error;
};

/// A geometric query failed (point outside geometry, unbounded cell, ...).
class GeometryError : public Error {
 public:
  using Error::Error;
};

/// A device-memory allocation exceeded the arena capacity.
class DeviceOutOfMemory : public Error {
 public:
  using Error::Error;
};

/// The transport solve failed to converge or produced non-physical values.
class SolverError : public Error {
 public:
  using Error::Error;
};

/// A blocking communication call exceeded its configured deadline.
class CommTimeout : public Error {
 public:
  using Error::Error;
};

/// Another rank failed while this rank was blocked in communication; the
/// world was poisoned so the blocked call could terminate with a
/// diagnostic instead of hanging.
class PeerFailure : public Error {
 public:
  using Error::Error;
};

/// Throw `E` with `msg` decorated with the call site.
template <class E = Error>
[[noreturn]] inline void fail(
    const std::string& msg,
    std::source_location loc = std::source_location::current()) {
  throw E(std::string(loc.file_name()) + ":" + std::to_string(loc.line()) +
          ": " + msg);
}

/// Check a runtime invariant; throws antmoc::Error on failure.
/// Unlike assert(), stays active in release builds: transport solves are
/// long-running and silent corruption is worse than an aborted run.
inline void require(
    bool cond, const std::string& msg,
    std::source_location loc = std::source_location::current()) {
  if (!cond) fail<Error>(msg, loc);
}

}  // namespace antmoc
