#pragma once

/// \file crc32.h
/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) used to frame
/// checkpoint files and shards (DESIGN.md §11): a truncated or bit-flipped
/// checkpoint must be rejected with a diagnostic, never loaded as garbage
/// into a long-running solve.

#include <array>
#include <cstddef>
#include <cstdint>

namespace antmoc::util {

namespace detail {
inline const std::array<std::uint32_t, 256>& crc32_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  return table;
}
}  // namespace detail

/// Incremental update: feed `crc32_init()` through one or more
/// `crc32_update()` calls, then finalize with `crc32_final()`.
inline std::uint32_t crc32_init() { return 0xFFFFFFFFu; }

inline std::uint32_t crc32_update(std::uint32_t crc, const void* data,
                                  std::size_t bytes) {
  const auto& table = detail::crc32_table();
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i)
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  return crc;
}

inline std::uint32_t crc32_final(std::uint32_t crc) { return crc ^ 0xFFFFFFFFu; }

/// One-shot CRC-32 of a buffer.
inline std::uint32_t crc32(const void* data, std::size_t bytes) {
  return crc32_final(crc32_update(crc32_init(), data, bytes));
}

}  // namespace antmoc::util
