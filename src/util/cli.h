#pragma once

/// \file cli.h
/// Tiny command-line parser for examples and benches.
/// Accepts `--key=value`, `--key value`, bare `--flag` (-> "true"), and
/// the paper artifact's single-dash forms (`-config=...`).

#include <string>

#include "util/config.h"

namespace antmoc {

/// Parses argv into a Config. A `--config=path` option loads that file
/// first; remaining options override file values (dotted keys allowed).
Config parse_cli(int argc, const char* const* argv);

}  // namespace antmoc
