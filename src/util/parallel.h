#pragma once

/// \file parallel.h
/// Shared fork-join parallelism for host-side hot loops.
///
/// `Parallel` wraps the persistent `gpusim::ThreadPool` (workers are
/// spawned once, so per-iteration loops pay no thread-start cost) and adds
/// the two primitives the solvers need:
///
///  * deterministic blocked partitions of an index space — worker w always
///    owns the same contiguous chunk for a fixed worker count, so
///    per-worker private accumulation is reproducible run to run;
///  * a deterministic pairwise tree reduction over per-worker buffers —
///    the summation tree depends only on the buffer count, never on thread
///    scheduling, so merged floating-point tallies are bit-identical
///    across runs with the same worker count.
///
/// Each Parallel instance owns its pool; concurrent fork-joins from
/// different instances (e.g. one per comm rank in a decomposed solve) are
/// safe. A single instance must not be re-entered from its own workers.

#include <algorithm>
#include <cstdlib>
#include <thread>
#include <vector>

#include "gpusim/thread_pool.h"

namespace antmoc::util {

/// Worker count used when a knob is left at 0 ("auto"): the
/// ANTMOC_SWEEP_WORKERS environment variable if set, else the hardware
/// concurrency.
inline unsigned default_workers() {
  if (const char* env = std::getenv("ANTMOC_SWEEP_WORKERS")) {
    const long v = std::atol(env);
    if (v >= 1) return static_cast<unsigned>(v);
  }
  return std::max(1u, std::thread::hardware_concurrency());
}

class Parallel {
 public:
  /// `workers == 0` selects default_workers().
  explicit Parallel(unsigned workers = 0)
      : pool_(workers == 0 ? default_workers() : workers) {}

  unsigned workers() const { return pool_.size(); }

  /// First index of worker w's chunk in a blocked partition of [0, n).
  /// Depends only on (n, workers()) — the determinism anchor.
  long chunk_begin(unsigned w, long n) const {
    const long per = (n + workers() - 1) / workers();
    return std::min<long>(n, static_cast<long>(w) * per);
  }
  long chunk_end(unsigned w, long n) const {
    return std::min<long>(n, chunk_begin(w, n) +
                                 (n + workers() - 1) / workers());
  }

  /// Fork-join: f(worker, begin, end) over the blocked partition of
  /// [0, n). Workers with an empty chunk are not called.
  template <class F>
  void for_chunks(long n, F&& f) {
    if (n <= 0) return;
    if (workers() == 1) {
      f(0u, 0L, n);
      return;
    }
    const std::function<void(unsigned)> job = [&](unsigned w) {
      const long b = chunk_begin(w, n), e = chunk_end(w, n);
      if (b < e) f(w, b, e);
    };
    pool_.run(job);
  }

  /// Elementwise parallel loop: f(i) for i in [0, n), blocked chunks.
  template <class F>
  void for_each(long n, F&& f) {
    for_chunks(n, [&](unsigned, long b, long e) {
      for (long i = b; i < e; ++i) f(i);
    });
  }

  /// Deterministic tree reduction: folds bufs[1..W) into bufs[0] with a
  /// stride-doubling pairwise tree (bufs[w] += bufs[w + stride]), then
  /// adds bufs[0] elementwise into `dest`. The summation order for any
  /// element depends only on bufs.size(), so results are bit-reproducible
  /// for a fixed worker count. All buffers must have `len` elements.
  template <class T>
  void reduce_into(std::vector<std::vector<T>>& bufs, T* dest, long len) {
    const std::size_t W = bufs.size();
    for (std::size_t stride = 1; stride < W; stride *= 2) {
      for_chunks(len, [&](unsigned, long b, long e) {
        for (std::size_t w = 0; w + stride < W; w += 2 * stride) {
          const T* src = bufs[w + stride].data();
          T* dst = bufs[w].data();
          for (long i = b; i < e; ++i) dst[i] += src[i];
        }
      });
    }
    if (W == 0) return;
    for_chunks(len, [&](unsigned, long b, long e) {
      const T* src = bufs[0].data();
      for (long i = b; i < e; ++i) dest[i] += src[i];
    });
  }

  /// Parallel max-reduction of f(i) over [0, n). Exact (max is order
  /// independent), so it is safe for the residual test.
  template <class F>
  double max_over(long n, double init, F&& f) {
    if (n <= 0) return init;
    std::vector<double> partial(workers(), init);
    for_chunks(n, [&](unsigned w, long b, long e) {
      double m = init;
      for (long i = b; i < e; ++i) m = std::max(m, f(i));
      partial[w] = m;
    });
    double m = init;
    for (double p : partial) m = std::max(m, p);
    return m;
  }

 private:
  gpusim::ThreadPool pool_;
};

}  // namespace antmoc::util
