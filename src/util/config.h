#pragma once

/// \file config.h
/// Run configuration. ANT-MOC reads a YAML-like configuration file holding
/// spatial-decomposition and track-generation parameters (paper §3.1 step 1,
/// artifact's `config.yaml`). This parser supports the subset those files
/// use: `key: value` pairs, one level of `section:` nesting by indentation,
/// flow lists `[a, b, c]`, comments with `#`, and blank lines. Nested keys
/// are addressed as "section.key".

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace antmoc {

class Config {
 public:
  Config() = default;

  /// Parse from file contents; throws ConfigError on malformed input.
  static Config parse(const std::string& text);

  /// Parse from a file on disk; throws ConfigError if unreadable.
  static Config load(const std::string& path);

  bool contains(const std::string& key) const;

  /// Typed getters; throw ConfigError on missing key or bad conversion.
  std::string get_string(const std::string& key) const;
  long get_int(const std::string& key) const;
  double get_double(const std::string& key) const;
  bool get_bool(const std::string& key) const;
  std::vector<long> get_int_list(const std::string& key) const;
  std::vector<double> get_double_list(const std::string& key) const;

  /// Getters with defaults; never throw on missing key (still throw on a
  /// present-but-malformed value so typos are not silently ignored).
  std::string get_string(const std::string& key, std::string fallback) const;
  long get_int(const std::string& key, long fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  /// Insert or overwrite a value programmatically.
  void set(const std::string& key, const std::string& value);

  /// All keys, sorted (for diagnostics and round-trip tests).
  std::vector<std::string> keys() const;

 private:
  std::optional<std::string> raw(const std::string& key) const;
  std::map<std::string, std::string> values_;
};

}  // namespace antmoc
