#pragma once

/// \file surface.h
/// Radial (2D) CSG surfaces. ANT-MOC geometry is axially extruded (the
/// chord-classification / OTF approach of the paper requires it): the
/// radial plane is described by planes and circles (z-cylinders in 3D),
/// and the axial direction by a mesh of z-planes handled separately.

#include <limits>

#include "geometry/point.h"

namespace antmoc {

inline constexpr double kInfDistance = std::numeric_limits<double>::max();

/// Minimum ray-advance used to step off a surface after a crossing; also
/// the tolerance for "on surface" tests during tracing.
inline constexpr double kRayEpsilon = 1e-10;

enum class SurfaceKind { kXPlane, kYPlane, kCircle, kLine };

/// A 2D surface in the local frame of its universe.
///   kXPlane: x = p0
///   kYPlane: y = p0
///   kCircle: (x-p0)^2 + (y-p1)^2 = r^2
///   kLine:   p0*x + p1*y + radius = 0   (general line; unit normal (p0,p1))
struct Surface2D {
  SurfaceKind kind = SurfaceKind::kXPlane;
  double p0 = 0.0;
  double p1 = 0.0;
  double radius = 0.0;

  static Surface2D x_plane(double x0) {
    return {SurfaceKind::kXPlane, x0, 0.0, 0.0};
  }
  static Surface2D y_plane(double y0) {
    return {SurfaceKind::kYPlane, y0, 0.0, 0.0};
  }
  static Surface2D circle(double cx, double cy, double r) {
    return {SurfaceKind::kCircle, cx, cy, r};
  }
  /// Line a*x + b*y + c = 0; (a, b) is normalized internally.
  static Surface2D line(double a, double b, double c);

  /// Signed evaluation: negative strictly inside the negative halfspace
  /// (inside a circle / below a plane), positive outside.
  double evaluate(Point2 p) const;

  /// Distance along the ray p + t*(ux, uy) to the nearest crossing with
  /// t > kRayEpsilon, or kInfDistance if the ray never crosses.
  double ray_distance(Point2 p, double ux, double uy) const;
};

/// One side of a surface: sign < 0 selects evaluate() < 0.
struct Halfspace {
  int surface = -1;
  int sign = -1;
};

}  // namespace antmoc
