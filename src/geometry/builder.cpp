#include "geometry/builder.h"

#include <cmath>

#include "util/error.h"

namespace antmoc {

int GeometryBuilder::add_x_plane(double x0) {
  surfaces_.push_back(Surface2D::x_plane(x0));
  return static_cast<int>(surfaces_.size()) - 1;
}

int GeometryBuilder::add_y_plane(double y0) {
  surfaces_.push_back(Surface2D::y_plane(y0));
  return static_cast<int>(surfaces_.size()) - 1;
}

int GeometryBuilder::add_circle(double cx, double cy, double r) {
  require(r > 0.0, "circle radius must be positive");
  surfaces_.push_back(Surface2D::circle(cx, cy, r));
  return static_cast<int>(surfaces_.size()) - 1;
}

int GeometryBuilder::add_line(double a, double b, double c) {
  require(a != 0.0 || b != 0.0, "line normal must be non-zero");
  surfaces_.push_back(Surface2D::line(a, b, c));
  return static_cast<int>(surfaces_.size()) - 1;
}

int GeometryBuilder::add_universe(const std::string& name) {
  Universe u;
  u.name = name;
  universes_.push_back(std::move(u));
  return static_cast<int>(universes_.size()) - 1;
}

int GeometryBuilder::add_cell(int universe, const std::string& name,
                              int material, std::vector<Halfspace> region) {
  require(universe >= 0 && universe < static_cast<int>(universes_.size()),
          "add_cell: unknown universe id");
  require(!universes_[universe].is_lattice,
          "add_cell: cannot add cells to a lattice universe");
  require(material >= 0, "add_cell: material id must be >= 0");
  Cell cell;
  cell.name = name;
  cell.material = material;
  cell.region = std::move(region);
  cells_.push_back(std::move(cell));
  const int id = static_cast<int>(cells_.size()) - 1;
  universes_[universe].cells.push_back(id);
  return id;
}

int GeometryBuilder::add_fill_cell(int universe, const std::string& name,
                                   int fill_universe,
                                   std::vector<Halfspace> region) {
  require(universe >= 0 && universe < static_cast<int>(universes_.size()),
          "add_fill_cell: unknown universe id");
  require(fill_universe >= 0 &&
              fill_universe < static_cast<int>(universes_.size()),
          "add_fill_cell: unknown fill universe id");
  Cell cell;
  cell.name = name;
  cell.fill = fill_universe;
  cell.region = std::move(region);
  cells_.push_back(std::move(cell));
  const int id = static_cast<int>(cells_.size()) - 1;
  universes_[universe].cells.push_back(id);
  return id;
}

int GeometryBuilder::add_pin_universe(const std::string& name,
                                      int fuel_material,
                                      int moderator_material, double radius,
                                      const PinSubdivision& sub) {
  require(sub.fuel_rings >= 1 && sub.fuel_sectors >= 1 &&
              sub.moderator_sectors >= 1,
          "pin subdivision counts must be >= 1");
  const int u = add_universe(name);

  // Equal-area ring radii: r_i = R * sqrt((i+1)/rings).
  std::vector<int> ring_circles(sub.fuel_rings);
  for (int i = 0; i < sub.fuel_rings; ++i)
    ring_circles[i] = add_circle(
        0.0, 0.0,
        radius * std::sqrt(double(i + 1) / sub.fuel_rings));

  // Sector planes through the pin center: line_j has normal
  // (-sin t_j, cos t_j), so a point at polar angle a evaluates to
  // r*sin(a - t_j); the wedge [t_j, t_j+1] is (>= 0 on line_j, <= 0 on
  // line_{j+1}), valid while the wedge spans at most pi (sectors >= 2).
  auto sector_lines = [&](int sectors) {
    std::vector<int> lines;
    if (sectors < 2) return lines;  // unsectorized: no planes needed
    for (int j = 0; j < sectors; ++j) {
      const double t =
          sub.sector_offset + 2.0 * 3.14159265358979323846 * j / sectors;
      lines.push_back(add_line(-std::sin(t), std::cos(t), 0.0));
    }
    return lines;
  };
  auto sector_region = [&](const std::vector<int>& lines, int j) {
    std::vector<Halfspace> region;
    if (lines.size() < 2) return region;
    region.push_back(outside(lines[j]));
    region.push_back(inside(lines[(j + 1) % lines.size()]));
    return region;
  };

  const auto fuel_lines = sector_lines(sub.fuel_sectors);
  for (int i = 0; i < sub.fuel_rings; ++i)
    for (int j = 0; j < sub.fuel_sectors; ++j) {
      auto region = sector_region(fuel_lines, j);
      region.push_back(inside(ring_circles[i]));
      if (i > 0) region.push_back(outside(ring_circles[i - 1]));
      add_cell(u,
               "fuel_r" + std::to_string(i) + "s" + std::to_string(j),
               fuel_material, std::move(region));
    }

  const auto mod_lines = sector_lines(sub.moderator_sectors);
  for (int j = 0; j < sub.moderator_sectors; ++j) {
    auto region = sector_region(mod_lines, j);
    region.push_back(outside(ring_circles.back()));
    add_cell(u, "mod_s" + std::to_string(j), moderator_material,
             std::move(region));
  }
  return u;
}

int GeometryBuilder::add_lattice(const std::string& name, int nx, int ny,
                                 double pitch_x, double pitch_y, double x0,
                                 double y0, std::vector<int> universes) {
  require(nx > 0 && ny > 0, "lattice dimensions must be positive");
  require(pitch_x > 0.0 && pitch_y > 0.0, "lattice pitch must be positive");
  require(static_cast<int>(universes.size()) == nx * ny,
          "lattice universe array must have nx*ny entries");
  for (int id : universes)
    require(id >= 0 && id < static_cast<int>(universes_.size()),
            "lattice references unknown universe id");
  Universe u;
  u.name = name;
  u.is_lattice = true;
  u.nx = nx;
  u.ny = ny;
  u.pitch_x = pitch_x;
  u.pitch_y = pitch_y;
  u.x0 = x0;
  u.y0 = y0;
  u.lattice_universes = std::move(universes);
  universes_.push_back(std::move(u));
  return static_cast<int>(universes_.size()) - 1;
}

int GeometryBuilder::add_centered_lattice(const std::string& name, int nx,
                                          int ny, double pitch_x,
                                          double pitch_y,
                                          std::vector<int> universes) {
  return add_lattice(name, nx, ny, pitch_x, pitch_y, -0.5 * nx * pitch_x,
                     -0.5 * ny * pitch_y, std::move(universes));
}

void GeometryBuilder::set_root(int universe) { root_ = universe; }

void GeometryBuilder::set_bounds(const Bounds& bounds) {
  require(bounds.width_x() > 0 && bounds.width_y() > 0,
          "bounds must have positive radial extent");
  bounds_ = bounds;
  bounds_set_ = true;
}

void GeometryBuilder::set_boundary(Face f, BoundaryType bc) {
  boundaries_[static_cast<int>(f)] = bc;
}

void GeometryBuilder::set_all_radial_boundaries(BoundaryType bc) {
  for (Face f : {Face::kXMin, Face::kXMax, Face::kYMin, Face::kYMax})
    set_boundary(f, bc);
}

void GeometryBuilder::add_axial_zone(double z_lo, double z_hi, int num_layers,
                                     std::vector<int> material_override) {
  require(z_hi > z_lo, "axial zone must have positive thickness");
  require(num_layers >= 1, "axial zone needs at least one layer");
  if (!zones_.empty())
    require(std::abs(zones_.back().z_hi - z_lo) < 1e-9,
            "axial zones must be contiguous and added bottom-up");
  AxialZone zone;
  zone.z_lo = z_lo;
  zone.z_hi = z_hi;
  zone.num_layers = num_layers;
  zone.material_override = std::move(material_override);
  zones_.push_back(std::move(zone));
}

void GeometryBuilder::override_zone_material(int zone_index, int from,
                                             int to) {
  require(zone_index >= 0 && zone_index < static_cast<int>(zones_.size()),
          "override_zone_material: unknown zone");
  override_rules_.push_back({zone_index, from, to});
}

int GeometryBuilder::enumerate(Geometry& g, int universe,
                               const std::string& path,
                               std::vector<int>& next_region) const {
  Geometry::InstNode node;
  node.universe = universe;
  const Universe& u = universes_[universe];

  // Reserve this node's slot before recursing so ids are stable.
  const int node_id = static_cast<int>(g.nodes_.size());
  g.nodes_.push_back(node);

  if (u.is_lattice) {
    std::vector<int> child(u.lattice_universes.size());
    for (int j = 0; j < u.ny; ++j)
      for (int i = 0; i < u.nx; ++i) {
        const int k = j * u.nx + i;
        child[k] = enumerate(g, u.lattice_universes[k],
                             path + "[" + std::to_string(i) + "," +
                                 std::to_string(j) + "]",
                             next_region);
      }
    g.nodes_[node_id].child = std::move(child);
  } else {
    require(!u.cells.empty(),
            "universe '" + u.name + "' has no cells; cannot be traced");
    std::vector<int> child(u.cells.size(), -1);
    std::vector<int> region(u.cells.size(), -1);
    for (std::size_t k = 0; k < u.cells.size(); ++k) {
      const Cell& cell = cells_[u.cells[k]];
      if (cell.material >= 0) {
        region[k] = next_region[0]++;
        g.region_base_material_.push_back(cell.material);
        g.region_names_.push_back(path + "/" + cell.name);
      } else {
        child[k] = enumerate(g, cell.fill, path + "/" + cell.name,
                             next_region);
      }
    }
    g.nodes_[node_id].child = std::move(child);
    g.nodes_[node_id].region = std::move(region);
  }
  return node_id;
}

Geometry GeometryBuilder::build() const {
  require(root_ >= 0, "geometry has no root universe");
  require(bounds_set_, "geometry bounds were not set");
  require(!zones_.empty(), "geometry needs at least one axial zone");

  Geometry g;
  g.surfaces_ = surfaces_;
  g.cells_ = cells_;
  g.universes_ = universes_;
  g.root_universe_ = root_;
  g.bounds_ = bounds_;
  g.bounds_.z_min = zones_.front().z_lo;
  g.bounds_.z_max = zones_.back().z_hi;
  for (int f = 0; f < 6; ++f) g.boundaries_[f] = boundaries_[f];

  std::vector<int> next_region{0};
  g.root_node_ = enumerate(g, root_, "", next_region);

  int max_material = -1;
  for (int m : g.region_base_material_) max_material = std::max(max_material, m);

  // Axial zones & layers.
  g.zones_ = zones_;
  for (auto& zone : g.zones_)
    if (!zone.material_override.empty())
      require(static_cast<int>(zone.material_override.size()) ==
                  g.num_radial_regions(),
              "zone material_override must have one entry per radial region");
  for (const auto& rule : override_rules_) {
    auto& zone = g.zones_[rule.zone];
    if (zone.material_override.empty())
      zone.material_override.assign(g.num_radial_regions(), -1);
    for (int r = 0; r < g.num_radial_regions(); ++r)
      if (g.region_base_material_[r] == rule.from)
        zone.material_override[r] = rule.to;
    max_material = std::max(max_material, rule.to);
  }
  g.num_materials_ = max_material + 1;

  for (std::size_t zi = 0; zi < g.zones_.size(); ++zi) {
    const auto& zone = g.zones_[zi];
    const double dz = (zone.z_hi - zone.z_lo) / zone.num_layers;
    for (int l = 0; l < zone.num_layers; ++l) {
      g.layer_z_lo_.push_back(zone.z_lo + l * dz);
      g.layer_z_hi_.push_back(zone.z_lo + (l + 1) * dz);
      g.layer_zone_.push_back(static_cast<int>(zi));
    }
  }
  return g;
}

}  // namespace antmoc
