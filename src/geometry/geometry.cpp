#include "geometry/geometry.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace antmoc {

int Geometry::fsr_material(long fsr) const {
  const int region = fsr_radial_region(fsr);
  const int zone = layer_zone_[fsr_layer(fsr)];
  const auto& override = zones_[zone].material_override;
  if (!override.empty() && override[region] >= 0) return override[region];
  return region_base_material_[region];
}

int Geometry::layer_at(double z) const {
  const int n = num_axial_layers();
  // Layers are contiguous and sorted; binary search the lower bound.
  int lo = 0, hi = n - 1;
  if (z <= layer_z_lo_[0]) return 0;
  if (z >= layer_z_hi_[n - 1]) return n - 1;
  while (lo < hi) {
    const int mid = (lo + hi) / 2;
    if (z < layer_z_hi_[mid])
      hi = mid;
    else
      lo = mid + 1;
  }
  return lo;
}

namespace {

/// (gx, gy) of the pin grid rooted at `universe`: lattices multiply their
/// dimensions by the finest grid among their children; cell universes
/// take the finest grid among their fill universes; material-only
/// universes are a single pin. Depth-capped against fill cycles.
std::pair<int, int> grid_of(const std::vector<Universe>& universes,
                            const std::vector<Cell>& cells, int uid,
                            int depth) {
  if (uid < 0 || depth > 64) return {1, 1};
  const Universe& u = universes[uid];
  int gx = 1, gy = 1;
  if (u.is_lattice) {
    for (int child : u.lattice_universes) {
      const auto [cx, cy] = grid_of(universes, cells, child, depth + 1);
      gx = std::max(gx, cx);
      gy = std::max(gy, cy);
    }
    return {u.nx * gx, u.ny * gy};
  }
  for (int cid : u.cells) {
    const auto [cx, cy] =
        grid_of(universes, cells, cells[cid].fill, depth + 1);
    gx = std::max(gx, cx);
    gy = std::max(gy, cy);
  }
  return {gx, gy};
}

}  // namespace

std::pair<int, int> Geometry::pin_grid() const {
  return grid_of(universes_, cells_, root_universe_, 0);
}

std::pair<int, int> Geometry::assembly_grid() const {
  if (root_universe_ < 0 || !universes_[root_universe_].is_lattice)
    return {1, 1};
  const Universe& root = universes_[root_universe_];
  return {root.nx, root.ny};
}

bool Geometry::cell_contains(const Cell& cell, Point2 local) const {
  for (const Halfspace& hs : cell.region) {
    const double v = surfaces_[hs.surface].evaluate(local);
    if (hs.sign < 0 ? v > 0.0 : v < 0.0) return false;
  }
  return true;
}

RadialFind Geometry::find_radial(Point2 p) const {
  if (!bounds_.contains_xy(p, kRayEpsilon))
    fail<GeometryError>("point (" + std::to_string(p.x) + ", " +
                        std::to_string(p.y) + ") outside geometry bounds");

  int node = root_node_;
  Point2 local = p;
  for (int depth = 0; depth < 64; ++depth) {
    const InstNode& inst = nodes_[node];
    const Universe& u = universes_[inst.universe];
    if (u.is_lattice) {
      int i = static_cast<int>(std::floor((local.x - u.x0) / u.pitch_x));
      int j = static_cast<int>(std::floor((local.y - u.y0) / u.pitch_y));
      i = std::clamp(i, 0, u.nx - 1);
      j = std::clamp(j, 0, u.ny - 1);
      const int k = j * u.nx + i;
      // Child coordinates are relative to the lattice element center.
      local.x -= u.x0 + (i + 0.5) * u.pitch_x;
      local.y -= u.y0 + (j + 0.5) * u.pitch_y;
      node = inst.child[k];
      continue;
    }
    for (std::size_t k = 0; k < u.cells.size(); ++k) {
      const Cell& cell = cells_[u.cells[k]];
      if (!cell_contains(cell, local)) continue;
      if (cell.material >= 0)
        return {inst.region[k], cell.material};
      node = inst.child[k];
      goto next_level;  // descend into the fill universe (same frame)
    }
    fail<GeometryError>("point in universe '" + u.name +
                        "' not contained in any cell (gap in CSG model)");
  next_level:;
  }
  fail<GeometryError>("universe nesting deeper than 64 levels (cycle?)");
}

double Geometry::distance_to_boundary(Point2 p, double ux, double uy) const {
  double best = kInfDistance;

  // Outer boundary planes.
  if (ux > 0.0) best = std::min(best, (bounds_.x_max - p.x) / ux);
  if (ux < 0.0) best = std::min(best, (bounds_.x_min - p.x) / ux);
  if (uy > 0.0) best = std::min(best, (bounds_.y_max - p.y) / uy);
  if (uy < 0.0) best = std::min(best, (bounds_.y_min - p.y) / uy);

  int node = root_node_;
  Point2 local = p;
  for (int depth = 0; depth < 64; ++depth) {
    const InstNode& inst = nodes_[node];
    const Universe& u = universes_[inst.universe];
    if (u.is_lattice) {
      int i = static_cast<int>(std::floor((local.x - u.x0) / u.pitch_x));
      int j = static_cast<int>(std::floor((local.y - u.y0) / u.pitch_y));
      i = std::clamp(i, 0, u.nx - 1);
      j = std::clamp(j, 0, u.ny - 1);
      // Lattice element walls in the current local frame.
      const double cx_lo = u.x0 + i * u.pitch_x;
      const double cy_lo = u.y0 + j * u.pitch_y;
      if (ux > 0.0)
        best = std::min(best, (cx_lo + u.pitch_x - local.x) / ux);
      if (ux < 0.0) best = std::min(best, (cx_lo - local.x) / ux);
      if (uy > 0.0)
        best = std::min(best, (cy_lo + u.pitch_y - local.y) / uy);
      if (uy < 0.0) best = std::min(best, (cy_lo - local.y) / uy);

      local.x -= u.x0 + (i + 0.5) * u.pitch_x;
      local.y -= u.y0 + (j + 0.5) * u.pitch_y;
      node = inst.child[j * u.nx + i];
      continue;
    }
    for (std::size_t k = 0; k < u.cells.size(); ++k) {
      const Cell& cell = cells_[u.cells[k]];
      if (!cell_contains(cell, local)) continue;
      for (const Halfspace& hs : cell.region)
        best = std::min(best,
                        surfaces_[hs.surface].ray_distance(local, ux, uy));
      if (cell.material >= 0) return best;
      node = inst.child[k];
      goto next_level;
    }
    fail<GeometryError>("point in universe '" + u.name +
                        "' not contained in any cell (gap in CSG model)");
  next_level:;
  }
  fail<GeometryError>("universe nesting deeper than 64 levels (cycle?)");
}

}  // namespace antmoc
