#include "geometry/surface.h"

#include <cmath>

namespace antmoc {

Surface2D Surface2D::line(double a, double b, double c) {
  const double norm = std::sqrt(a * a + b * b);
  return {SurfaceKind::kLine, a / norm, b / norm, c / norm};
}

double Surface2D::evaluate(Point2 p) const {
  switch (kind) {
    case SurfaceKind::kXPlane:
      return p.x - p0;
    case SurfaceKind::kYPlane:
      return p.y - p0;
    case SurfaceKind::kCircle: {
      const double dx = p.x - p0;
      const double dy = p.y - p1;
      return dx * dx + dy * dy - radius * radius;
    }
    case SurfaceKind::kLine:
      return p0 * p.x + p1 * p.y + radius;
  }
  return 0.0;
}

double Surface2D::ray_distance(Point2 p, double ux, double uy) const {
  switch (kind) {
    case SurfaceKind::kXPlane: {
      if (ux == 0.0) return kInfDistance;
      const double t = (p0 - p.x) / ux;
      return t > kRayEpsilon ? t : kInfDistance;
    }
    case SurfaceKind::kYPlane: {
      if (uy == 0.0) return kInfDistance;
      const double t = (p0 - p.y) / uy;
      return t > kRayEpsilon ? t : kInfDistance;
    }
    case SurfaceKind::kCircle: {
      // |p + t u - c|^2 = r^2 with |u| = 1:
      //   t^2 + 2 t b + c0 = 0,  b = (p-c).u,  c0 = |p-c|^2 - r^2
      const double dx = p.x - p0;
      const double dy = p.y - p1;
      const double b = dx * ux + dy * uy;
      const double c0 = dx * dx + dy * dy - radius * radius;
      const double disc = b * b - c0;
      if (disc < 0.0) return kInfDistance;
      const double sq = std::sqrt(disc);
      const double t1 = -b - sq;
      if (t1 > kRayEpsilon) return t1;
      const double t2 = -b + sq;
      if (t2 > kRayEpsilon) return t2;
      return kInfDistance;
    }
    case SurfaceKind::kLine: {
      // (p + t u) . n + c = 0  ->  t = -(p . n + c) / (u . n)
      const double denom = p0 * ux + p1 * uy;
      if (denom == 0.0) return kInfDistance;
      const double t = -(p0 * p.x + p1 * p.y + radius) / denom;
      return t > kRayEpsilon ? t : kInfDistance;
    }
  }
  return kInfDistance;
}

}  // namespace antmoc
