#pragma once

/// \file point.h
/// Plain geometric value types shared by the geometry and track modules.

#include <cmath>

namespace antmoc {

struct Point2 {
  double x = 0.0;
  double y = 0.0;

  Point2 operator+(Point2 o) const { return {x + o.x, y + o.y}; }
  Point2 operator-(Point2 o) const { return {x - o.x, y - o.y}; }
  Point2 operator*(double s) const { return {x * s, y * s}; }

  double dot(Point2 o) const { return x * o.x + y * o.y; }
  double norm() const { return std::sqrt(x * x + y * y); }
  double distance(Point2 o) const { return (*this - o).norm(); }
};

struct Point3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  Point2 xy() const { return {x, y}; }
};

/// Faces of the rectangular-cuboid geometry boundary, used to attach
/// boundary conditions and to link tracks across domain interfaces.
enum class Face : int {
  kXMin = 0,
  kXMax = 1,
  kYMin = 2,
  kYMax = 3,
  kZMin = 4,
  kZMax = 5,
};

enum class BoundaryType { kVacuum, kReflective, kPeriodic, kInterface };

/// Axis-aligned bounding cuboid of a geometry or sub-geometry.
struct Bounds {
  double x_min = 0.0, x_max = 0.0;
  double y_min = 0.0, y_max = 0.0;
  double z_min = 0.0, z_max = 0.0;

  double width_x() const { return x_max - x_min; }
  double width_y() const { return y_max - y_min; }
  double width_z() const { return z_max - z_min; }

  bool contains_xy(Point2 p, double tol = 0.0) const {
    return p.x >= x_min - tol && p.x <= x_max + tol && p.y >= y_min - tol &&
           p.y <= y_max + tol;
  }
};

}  // namespace antmoc
