#pragma once

/// \file geometry.h
/// Axially extruded CSG geometry with flat-source-region (FSR) enumeration.
///
/// A Geometry is a radial CSG description (universes of cells, rectangular
/// lattices of universes, arbitrarily nested) extruded along z through a
/// stack of *axial zones*. All zones share the same radial mesh — the
/// property the paper's OTF/chord-classification axial tracking depends on
/// (§2.2, [26]) — but each zone may override the material of any radial
/// region (how C5G7's top reflector and inserted control rods are modeled).
///
/// FSR numbering: fsr = radial_region * num_axial_layers + layer.

#include <string>
#include <utility>
#include <vector>

#include "geometry/point.h"
#include "geometry/surface.h"

namespace antmoc {

/// A homogeneous-material or universe-filled region of a universe.
struct Cell {
  std::string name;
  /// Material id (>= 0) for leaf cells; -1 when filled by a universe.
  int material = -1;
  /// Fill universe id (>= 0), or -1 for material cells.
  int fill = -1;
  /// Intersection of halfspaces defining the cell in local coordinates.
  std::vector<Halfspace> region;
};

/// Either a set of cells tiling local space or a rectangular lattice.
struct Universe {
  std::string name;
  bool is_lattice = false;

  /// Cell ids (cell universes only).
  std::vector<int> cells;

  // Lattice fields (is_lattice == true). Element (i, j) spans
  //   x in [x0 + i*pitch_x, x0 + (i+1)*pitch_x), similarly y,
  // with universes stored row-major, j*nx + i, j increasing with y.
  int nx = 0, ny = 0;
  double pitch_x = 0.0, pitch_y = 0.0;
  double x0 = 0.0, y0 = 0.0;
  std::vector<int> lattice_universes;
};

/// One axial slab of the extrusion.
struct AxialZone {
  double z_lo = 0.0;
  double z_hi = 0.0;
  /// Equal-thickness layers this zone is subdivided into (>= 1).
  int num_layers = 1;
  /// Per-radial-region material override; empty = use the radial materials.
  std::vector<int> material_override;
};

/// Result of locating a point in the radial plane.
struct RadialFind {
  int region = -1;    ///< radial region id
  int material = -1;  ///< base material (before axial-zone override)
};

class GeometryBuilder;

class Geometry {
 public:
  // --- shape -------------------------------------------------------------
  const Bounds& bounds() const { return bounds_; }
  BoundaryType boundary(Face f) const {
    return boundaries_[static_cast<int>(f)];
  }

  int num_radial_regions() const {
    return static_cast<int>(region_base_material_.size());
  }
  int num_axial_layers() const { return static_cast<int>(layer_z_lo_.size()); }
  long num_fsrs() const {
    return static_cast<long>(num_radial_regions()) * num_axial_layers();
  }
  int num_materials() const { return num_materials_; }

  long fsr_id(int radial_region, int layer) const {
    return static_cast<long>(radial_region) * num_axial_layers() + layer;
  }
  int fsr_radial_region(long fsr) const {
    return static_cast<int>(fsr / num_axial_layers());
  }
  int fsr_layer(long fsr) const {
    return static_cast<int>(fsr % num_axial_layers());
  }

  /// Material of an FSR (axial-zone override applied).
  int fsr_material(long fsr) const;

  /// Base (zone-independent) material of a radial region.
  int region_material(int radial_region) const {
    return region_base_material_[radial_region];
  }

  /// Human-readable label of a radial region (cell path), for diagnostics.
  const std::string& region_name(int radial_region) const {
    return region_names_[radial_region];
  }

  // --- axial mesh ----------------------------------------------------------
  double layer_z_lo(int layer) const { return layer_z_lo_[layer]; }
  double layer_z_hi(int layer) const { return layer_z_hi_[layer]; }
  int layer_zone(int layer) const { return layer_zone_[layer]; }
  int num_zones() const { return static_cast<int>(zones_.size()); }
  const AxialZone& zone(int i) const { return zones_[i]; }

  /// Layer containing z (clamped to the valid range).
  int layer_at(double z) const;

  // --- lattice structure ---------------------------------------------------
  /// Radial pin-cell grid: the product of lattice dimensions down the
  /// deepest nesting chain (e.g. a 3x3 assembly lattice of 5x5 pin
  /// lattices -> 15x15). (1, 1) when the root is not a lattice.
  std::pair<int, int> pin_grid() const;

  /// Root lattice dimensions only ((1, 1) when the root is not a lattice).
  std::pair<int, int> assembly_grid() const;

  // --- point queries -------------------------------------------------------
  /// Locates the radial region containing p; throws GeometryError if p is
  /// outside the geometry or falls in a gap between cells.
  RadialFind find_radial(Point2 p) const;

  /// Distance along (ux, uy) from p to the nearest surface bounding the
  /// radial region containing p (cell surfaces, lattice walls, and the
  /// outer boundary all count). Never returns 0; may return kInfDistance
  /// if p heads to infinity inside an unbounded region (a modeling error).
  double distance_to_boundary(Point2 p, double ux, double uy) const;

 private:
  friend class GeometryBuilder;

  /// Node of the pre-built universe-instance tree: region ids become O(1)
  /// lookups during the (hot) find/trace walks.
  struct InstNode {
    int universe = -1;
    /// child[k]: for lattices, node of lattice element k; for cell
    /// universes, node of cell k's fill universe (-1 for material cells).
    std::vector<int> child;
    /// region[k]: radial region id of material cell k (-1 otherwise).
    std::vector<int> region;
  };

  std::vector<Surface2D> surfaces_;
  std::vector<Cell> cells_;
  std::vector<Universe> universes_;
  int root_universe_ = -1;
  int num_materials_ = 0;

  std::vector<InstNode> nodes_;
  int root_node_ = -1;

  std::vector<int> region_base_material_;
  std::vector<std::string> region_names_;

  Bounds bounds_;
  BoundaryType boundaries_[6] = {
      BoundaryType::kVacuum, BoundaryType::kVacuum, BoundaryType::kVacuum,
      BoundaryType::kVacuum, BoundaryType::kVacuum, BoundaryType::kVacuum};

  std::vector<AxialZone> zones_;
  std::vector<double> layer_z_lo_, layer_z_hi_;
  std::vector<int> layer_zone_;

  bool cell_contains(const Cell& cell, Point2 local) const;
};

}  // namespace antmoc
