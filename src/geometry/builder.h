#pragma once

/// \file builder.h
/// Fluent construction of Geometry objects (paper §3.1 stage 2,
/// "Geometry Construction" with the CSG method).
///
/// Usage sketch (a pin lattice):
///   GeometryBuilder b;
///   int circ = b.add_circle(0, 0, 0.54);
///   int pin  = b.add_universe("uo2_pin");
///   b.add_cell(pin, "fuel", kUO2, {b.inside(circ)});
///   b.add_cell(pin, "mod",  kModerator, {b.outside(circ)});
///   int lat  = b.add_lattice("assembly", 17, 17, 1.26, 1.26, uids);
///   b.set_root(lat);
///   b.set_bounds({...});
///   b.add_axial_zone(0.0, 42.84, 3);
///   Geometry g = b.build();

#include <string>
#include <vector>

#include "geometry/geometry.h"

namespace antmoc {

/// FSR refinement of a pin cell (the "fine meshes" of §2.2 / [33]):
/// equal-area fuel rings plus angular sectors in fuel and moderator.
struct PinSubdivision {
  int fuel_rings = 1;
  int fuel_sectors = 1;
  int moderator_sectors = 1;
  /// Rotates the sector planes off the coordinate axes (radians) so track
  /// angles do not ride along FSR boundaries.
  double sector_offset = 0.125;
};

class GeometryBuilder {
 public:
  // --- surfaces ------------------------------------------------------------
  int add_x_plane(double x0);
  int add_y_plane(double y0);
  int add_circle(double cx, double cy, double r);
  /// General line a*x + b*y + c = 0 (normal is normalized).
  int add_line(double a, double b, double c);

  Halfspace inside(int surface) const { return {surface, -1}; }
  Halfspace outside(int surface) const { return {surface, +1}; }

  // --- cells & universes -----------------------------------------------------
  /// Creates an empty (non-lattice) universe and returns its id.
  int add_universe(const std::string& name);

  /// Adds a material cell to a universe.
  int add_cell(int universe, const std::string& name, int material,
               std::vector<Halfspace> region);

  /// Adds a universe-filled cell to a universe.
  int add_fill_cell(int universe, const std::string& name, int fill_universe,
                    std::vector<Halfspace> region);

  /// Builds a complete pin universe — a fuel circle of `radius` centered
  /// on the local origin inside an unbounded moderator — optionally
  /// subdivided into equal-area rings and angular sectors. Returns the
  /// universe id. Region count:
  /// fuel_rings*fuel_sectors + moderator_sectors.
  int add_pin_universe(const std::string& name, int fuel_material,
                       int moderator_material, double radius,
                       const PinSubdivision& subdivision = {});

  /// Creates a rectangular lattice universe. `universes` is row-major
  /// (j*nx + i) with j increasing with y; the lattice spans
  /// [x0, x0+nx*pitch_x) x [y0, y0+ny*pitch_y) in its local frame.
  /// For a root lattice the local frame is the global frame.
  int add_lattice(const std::string& name, int nx, int ny, double pitch_x,
                  double pitch_y, double x0, double y0,
                  std::vector<int> universes);

  /// Convenience: lattice whose local frame is centered on the origin
  /// (typical for pin lattices nested inside assembly cells).
  int add_centered_lattice(const std::string& name, int nx, int ny,
                           double pitch_x, double pitch_y,
                           std::vector<int> universes);

  void set_root(int universe);
  void set_bounds(const Bounds& bounds);
  void set_boundary(Face f, BoundaryType bc);
  void set_all_radial_boundaries(BoundaryType bc);

  /// Appends an axial zone on top of the previous one; zones must be added
  /// bottom-up and contiguous. `material_override` maps radial region ->
  /// material (empty or -1 entries mean "keep the radial material").
  /// Overrides are resolved by region id after enumeration; use
  /// override_material_everywhere for the common "flood a zone" case.
  void add_axial_zone(double z_lo, double z_hi, int num_layers,
                      std::vector<int> material_override = {});

  /// In zone `zone_index`, replaces every region whose base material is
  /// `from` with `to` (applied at build() time, after enumeration).
  void override_zone_material(int zone_index, int from, int to);

  /// Validates and assembles the Geometry (enumerates radial regions by
  /// building the universe-instance tree). Throws GeometryError on
  /// malformed input (dangling ids, zone gaps, missing root, ...).
  Geometry build() const;

 private:
  struct ZoneOverrideRule {
    int zone = -1;
    int from = -1;
    int to = -1;
  };

  int enumerate(Geometry& g, int universe, const std::string& path,
                std::vector<int>& next_region) const;

  std::vector<Surface2D> surfaces_;
  std::vector<Cell> cells_;
  std::vector<Universe> universes_;
  int root_ = -1;
  Bounds bounds_;
  bool bounds_set_ = false;
  BoundaryType boundaries_[6] = {
      BoundaryType::kVacuum, BoundaryType::kVacuum, BoundaryType::kVacuum,
      BoundaryType::kVacuum, BoundaryType::kVacuum, BoundaryType::kVacuum};
  std::vector<AxialZone> zones_;
  std::vector<ZoneOverrideRule> override_rules_;
};

}  // namespace antmoc
