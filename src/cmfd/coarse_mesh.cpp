#include "cmfd/coarse_mesh.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <climits>
#include <cstdlib>
#include <map>
#include <string>
#include <utility>

#include "util/config.h"
#include "util/error.h"

namespace antmoc::cmfd {
namespace {

/// Hard cap on coarse cells: CMFD is a *coarse* mesh, and the dense
/// per-cell group-coupling tables scale as cells * groups^2.
constexpr long kMaxCells = 1L << 22;

/// Radial sample-grid resolutions for locating regions: doubled until
/// every radial region has been hit at least once.
constexpr int kFirstSampleGrid = 128;
constexpr int kLastSampleGrid = 4096;

[[noreturn]] void bad_mesh(const std::string& text, const std::string& why) {
  throw ConfigError("cmfd.mesh: invalid mesh spec '" + text + "': " + why +
                    " (expected pin | assembly | NxMxK with positive "
                    "integer dims)");
}

/// One dimension token of "NxMxK"; rejects junk, non-positives, overflow.
int parse_dim(const std::string& text, const std::string& token) {
  if (token.empty()) bad_mesh(text, "empty dimension");
  for (char c : token) {
    if (!std::isdigit(static_cast<unsigned char>(c)) && c != '-' && c != '+')
      bad_mesh(text, "dimension '" + token + "' is not an integer");
  }
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(token.c_str(), &end, 10);
  if (end == token.c_str() || *end != '\0')
    bad_mesh(text, "dimension '" + token + "' is not an integer");
  if (errno == ERANGE || v > INT_MAX)
    bad_mesh(text, "dimension '" + token + "' overflows");
  if (v <= 0) bad_mesh(text, "dimension '" + token + "' must be positive");
  return static_cast<int>(v);
}

}  // namespace

MeshSpec parse_mesh_spec(const std::string& text) {
  MeshSpec spec;
  if (text == "pin") {
    spec.kind = MeshSpec::Kind::kPin;
    return spec;
  }
  if (text == "assembly") {
    spec.kind = MeshSpec::Kind::kAssembly;
    return spec;
  }
  // NxMxK
  std::vector<std::string> tokens;
  std::string cur;
  for (char c : text) {
    if (c == 'x' || c == 'X') {
      tokens.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  tokens.push_back(cur);
  if (tokens.size() != 3)
    bad_mesh(text, "expected three 'x'-separated dimensions");
  spec.kind = MeshSpec::Kind::kExplicit;
  spec.nx = parse_dim(text, tokens[0]);
  spec.ny = parse_dim(text, tokens[1]);
  spec.nz = parse_dim(text, tokens[2]);
  const long cells = static_cast<long>(spec.nx) * spec.ny;
  if (cells > kMaxCells || cells * spec.nz > kMaxCells)
    bad_mesh(text, "grid exceeds the supported coarse-cell count");
  return spec;
}

std::string mesh_spec_name(const MeshSpec& spec) {
  switch (spec.kind) {
    case MeshSpec::Kind::kPin:
      return "pin";
    case MeshSpec::Kind::kAssembly:
      return "assembly";
    case MeshSpec::Kind::kExplicit:
      return std::to_string(spec.nx) + "x" + std::to_string(spec.ny) + "x" +
             std::to_string(spec.nz);
  }
  return "pin";
}

CmfdOptions default_cmfd_options() {
  CmfdOptions opts;
  const char* env = std::getenv("ANTMOC_CMFD");
  if (env == nullptr) return opts;
  const std::string v(env);
  if (v.empty() || v == "0" || v == "off" || v == "false") return opts;
  opts.enable = true;
  if (v != "1" && v != "on" && v != "true") opts.mesh = parse_mesh_spec(v);
  return opts;
}

CmfdOptions options_from(const Config& config) {
  CmfdOptions opts = default_cmfd_options();
  opts.enable = config.get_bool("cmfd.enable", opts.enable);
  if (config.contains("cmfd.mesh"))
    opts.mesh = parse_mesh_spec(config.get_string("cmfd.mesh"));
  opts.tolerance = config.get_double("cmfd.tolerance", opts.tolerance);
  opts.max_outer =
      static_cast<int>(config.get_int("cmfd.max_outer", opts.max_outer));
  opts.inner_sweeps = static_cast<int>(
      config.get_int("cmfd.inner_sweeps", opts.inner_sweeps));
  opts.ratio_clamp = config.get_double("cmfd.ratio_clamp", opts.ratio_clamp);
  opts.relax = config.get_double("cmfd.relax", opts.relax);
  opts.start_iteration =
      static_cast<int>(config.get_int("cmfd.start", opts.start_iteration));
  return opts;
}

CoarseMesh::CoarseMesh(const Geometry& geometry, const MeshSpec& spec)
    : geometry_(&geometry), grid_(true) {
  const Bounds& b = geometry.bounds();
  const int layers = geometry.num_axial_layers();

  if (spec.kind == MeshSpec::Kind::kPin) {
    const auto [gx, gy] = geometry.pin_grid();
    nx_ = gx;
    ny_ = gy;
  } else if (spec.kind == MeshSpec::Kind::kAssembly) {
    const auto [gx, gy] = geometry.assembly_grid();
    nx_ = gx;
    ny_ = gy;
  } else {
    nx_ = spec.nx;
    ny_ = spec.ny;
  }
  x0_ = b.x_min;
  y0_ = b.y_min;
  pitch_x_ = b.width_x() / nx_;
  pitch_y_ = b.width_y() / ny_;

  // Axial planes: the geometry's own layer planes for pin/assembly meshes
  // (so axial domain interfaces always fall on coarse-cell boundaries),
  // uniform slabs for explicit grids.
  if (spec.kind == MeshSpec::Kind::kExplicit) {
    nz_ = spec.nz;
    zs_.resize(nz_ + 1);
    for (int i = 0; i <= nz_; ++i)
      zs_[i] = b.z_min + b.width_z() * i / nz_;
  } else {
    nz_ = layers;
    zs_.resize(nz_ + 1);
    for (int i = 0; i < nz_; ++i) zs_[i] = geometry.layer_z_lo(i);
    zs_[nz_] = geometry.layer_z_hi(nz_ - 1);
  }
  num_cells_ = nx_ * ny_ * nz_;
  require(static_cast<long>(nx_) * ny_ * nz_ <= kMaxCells,
          "cmfd: coarse mesh exceeds the supported cell count");

  // Locate every radial region by deterministic centroid sampling: walk a
  // doubling sample grid over the bounds until every region has been hit,
  // then use the finest pass's per-region centroid to pick its column.
  const int regions = geometry.num_radial_regions();
  std::vector<double> sx(regions), sy(regions);
  std::vector<long> hits(regions);
  for (int grid = kFirstSampleGrid;; grid *= 2) {
    std::fill(sx.begin(), sx.end(), 0.0);
    std::fill(sy.begin(), sy.end(), 0.0);
    std::fill(hits.begin(), hits.end(), 0L);
    for (int j = 0; j < grid; ++j) {
      for (int i = 0; i < grid; ++i) {
        const Point2 p{b.x_min + b.width_x() * (i + 0.5) / grid,
                       b.y_min + b.width_y() * (j + 0.5) / grid};
        try {
          const RadialFind f = geometry.find_radial(p);
          sx[f.region] += p.x;
          sy[f.region] += p.y;
          ++hits[f.region];
        } catch (const GeometryError&) {
          // gaps / outside the radial CSG: skip the sample
        }
      }
    }
    const auto miss = std::find(hits.begin(), hits.end(), 0L);
    if (miss == hits.end()) break;
    if (grid >= kLastSampleGrid) {
      const int r = static_cast<int>(miss - hits.begin());
      fail("cmfd: could not locate radial region " + std::to_string(r) +
           " ('" + geometry.region_name(r) + "') on a " +
           std::to_string(grid) + "^2 sample grid");
    }
  }

  std::vector<int> region_col(regions);
  for (int r = 0; r < regions; ++r) {
    const double cx = sx[r] / hits[r];
    const double cy = sy[r] / hits[r];
    const int ix = std::clamp(
        static_cast<int>((cx - x0_) / pitch_x_), 0, nx_ - 1);
    const int iy = std::clamp(
        static_cast<int>((cy - y0_) / pitch_y_), 0, ny_ - 1);
    region_col[r] = iy * nx_ + ix;
  }

  // Footprint merge: a column whose center lies inside a region homed to
  // a different column is covered by an FSR wider than the grid pitch
  // (e.g. a single-region reflector assembly under a pin mesh), so the
  // two columns must act as one coarse cell. Union-find with the smallest
  // column index as class representative keeps the merge deterministic.
  const int ncol = nx_ * ny_;
  std::vector<int> uf(ncol);
  for (int c = 0; c < ncol; ++c) uf[c] = c;
  const auto find = [&](int c) {
    while (uf[c] != c) c = uf[c] = uf[uf[c]];
    return c;
  };
  for (int col = 0; col < ncol; ++col) {
    const int ix = col % nx_;
    const int iy = col / nx_;
    const Point2 p{x0_ + (ix + 0.5) * pitch_x_, y0_ + (iy + 0.5) * pitch_y_};
    try {
      const RadialFind f = geometry.find_radial(p);
      const int a = find(col);
      const int bcol = find(region_col[f.region]);
      if (a != bcol) uf[std::max(a, bcol)] = std::min(a, bcol);
    } catch (const GeometryError&) {
      // column center in a gap / outside the radial CSG: leave it alone
    }
  }
  std::vector<int> col_merged(ncol, -1);
  int ncol_merged = 0;
  for (int col = 0; col < ncol; ++col)
    if (find(col) == col) col_merged[col] = ncol_merged++;
  for (int col = 0; col < ncol; ++col) col_merged[col] = col_merged[find(col)];

  num_cells_ = ncol_merged * nz_;
  cell_map_.resize(static_cast<std::size_t>(ncol) * nz_);
  rep_grid_.assign(num_cells_, -1);
  for (int iz = 0; iz < nz_; ++iz) {
    for (int col = 0; col < ncol; ++col) {
      const int grid_cell = iz * ncol + col;
      const int merged = iz * ncol_merged + col_merged[col];
      cell_map_[grid_cell] = merged;
      if (rep_grid_[merged] < 0) rep_grid_[merged] = grid_cell;
    }
  }

  // Layer -> z-slab table (identity for pin/assembly meshes).
  std::vector<int> layer_slab(layers);
  for (int l = 0; l < layers; ++l) {
    if (spec.kind != MeshSpec::Kind::kExplicit) {
      layer_slab[l] = l;
    } else {
      const double mid =
          0.5 * (geometry.layer_z_lo(l) + geometry.layer_z_hi(l));
      layer_slab[l] = std::clamp(
          static_cast<int>((mid - b.z_min) / (b.width_z() / nz_)), 0,
          nz_ - 1);
    }
  }

  fsr_to_cell_.resize(geometry.num_fsrs());
  for (long fsr = 0; fsr < geometry.num_fsrs(); ++fsr) {
    const int col = col_merged[region_col[geometry.fsr_radial_region(fsr)]];
    fsr_to_cell_[fsr] =
        layer_slab[geometry.fsr_layer(fsr)] * ncol_merged + col;
  }

  build_faces();
}

CoarseMesh::CoarseMesh(const Geometry& geometry, int num_cells,
                       std::vector<int> fsr_to_cell)
    : geometry_(&geometry),
      grid_(false),
      nx_(num_cells),
      ny_(1),
      nz_(1),
      num_cells_(num_cells),
      fsr_to_cell_(std::move(fsr_to_cell)) {
  require(static_cast<long>(fsr_to_cell_.size()) == geometry.num_fsrs(),
          "cmfd: FSR -> cell map size mismatch");
  for (int c : fsr_to_cell_)
    require(c >= 0 && c < num_cells_, "cmfd: FSR -> cell map out of range");
  // No faces: every crossing lands on the per-cell boundary slots.
}

void CoarseMesh::build_faces() {
  // Walk every grid-adjacent cell pair, map both ends through the merge,
  // and accumulate one FaceInfo per merged pair (grid faces interior to a
  // merged cell vanish; several grid faces between the same two merged
  // cells sum their areas). The std::map keeps faces ordered by (a, b),
  // so enumeration — and everything downstream — is deterministic.
  faces_.clear();
  face_key_.clear();
  std::map<std::pair<int, int>, FaceInfo> merged;
  const auto dz = [&](int iz) { return zs_[iz + 1] - zs_[iz]; };
  const auto add = [&](int ca, int cb, int axis, double area, double ha,
                       double hb) {
    const int ma = cell_map_[ca];
    const int mb = cell_map_[cb];
    if (ma == mb) return;
    const auto key = std::minmax(ma, mb);
    auto [it, fresh] = merged.try_emplace({key.first, key.second});
    FaceInfo& f = it->second;
    if (fresh) {
      f.a = key.first;
      f.b = key.second;
      f.axis = axis;
      f.ha = ha;
      f.hb = hb;
    }
    f.area += area;
  };
  for (int iz = 0; iz < nz_; ++iz) {
    for (int iy = 0; iy < ny_; ++iy) {
      for (int ix = 0; ix < nx_; ++ix) {
        const int c = cell_index(ix, iy, iz);
        if (ix + 1 < nx_)
          add(c, cell_index(ix + 1, iy, iz), 0, pitch_y_ * dz(iz), pitch_x_,
              pitch_x_);
        if (iy + 1 < ny_)
          add(c, cell_index(ix, iy + 1, iz), 1, pitch_x_ * dz(iz), pitch_y_,
              pitch_y_);
        if (iz + 1 < nz_)
          add(c, cell_index(ix, iy, iz + 1), 2, pitch_x_ * pitch_y_, dz(iz),
              dz(iz + 1));
      }
    }
  }
  faces_.reserve(merged.size());
  face_key_.reserve(merged.size());
  for (const auto& [key, f] : merged) {
    face_key_.push_back(static_cast<long>(key.first) * num_cells_ +
                        key.second);
    faces_.push_back(f);
  }
}

long CoarseMesh::slot_between(int from, int to) const {
  if (!grid_ || from == to) return -1;
  const long key =
      static_cast<long>(std::min(from, to)) * num_cells_ + std::max(from, to);
  const auto it = std::lower_bound(face_key_.begin(), face_key_.end(), key);
  if (it == face_key_.end() || *it != key) return -1;
  const long face = it - face_key_.begin();
  return face * 2 + (from == faces_[face].a ? 0 : 1);
}

std::vector<int> CoarseMesh::path_between(int from, int to) const {
  std::vector<int> path;
  if (!grid_ || from == to) return path;
  const int gf = rep_grid_[from], gt = rep_grid_[to];
  const int fi = gf % nx_, fj = (gf / nx_) % ny_, fk = gf / (nx_ * ny_);
  const int ti = gt % nx_, tj = (gt / nx_) % ny_, tk = gt / (nx_ * ny_);
  if (std::abs(ti - fi) > 1 || std::abs(tj - fj) > 1 || std::abs(tk - fk) > 1)
    return path;
  int ci = fi, cj = fj, ck = fk;
  int prev = from;
  const auto step = [&] {
    const int m = cell_map_[cell_index(ci, cj, ck)];
    if (m != prev) {
      path.push_back(m);
      prev = m;
    }
  };
  while (ci != ti) {
    ci += ti > ci ? 1 : -1;
    step();
  }
  while (cj != tj) {
    cj += tj > cj ? 1 : -1;
    step();
  }
  while (ck != tk) {
    ck += tk > ck ? 1 : -1;
    step();
  }
  return path;
}

}  // namespace antmoc::cmfd
