#pragma once

/// \file cmfd.h
/// CMFD acceleration of the MOC power iteration (DESIGN.md §14).
///
/// Between transport sweeps the accelerator
///   1. restricts: homogenizes the (already normalized) FSR scalar flux
///      onto the coarse mesh — flux-volume-weighted Σt / scattering /
///      νΣf / χ plus the cell-summed sweep accumulator;
///   2. solves a coarse multigroup diffusion eigenvalue problem whose
///      face couplings are D-hat (finite-difference) plus the D-tilde
///      nonlinear correction fitted so every face closure reproduces the
///      tallied net current exactly at the restricted flux, and whose
///      removal includes a per-cell residual term folding in boundary
///      leakage and any current the face tallies could not attribute;
///   3. prolongs: rescales FSR scalar fluxes and incoming angular fluxes
///      by the per-(cell, group) flux ratios and replaces k with the
///      coarse eigenvalue.
///
/// Determinism contract: tallies are accumulated into per-worker (host)
/// or per-CU (device) private buffers merged in ascending index order;
/// restriction, operator assembly, the Gauss–Seidel sweeps, and
/// prolongation all traverse cells/groups/FSRs in ascending order — so a
/// fixed configuration is bit-reproducible, and a CMFD-off or degraded
/// (diverged) run is bitwise identical to the unaccelerated solver: the
/// sweep-side instrumentation only *reads* the angular flux.
///
/// Crossing plan: every (track, direction) gets a precomputed sorted list
/// of (ordinal, slot) records — ordinal = number of segments attenuated
/// before the crossing (entry 0, exit = segment count) — so the sweep
/// kernels tally w * psi_g at exactly the right points without any
/// geometry lookups. Track entries and exits — reflective wraps, vacuum
/// ends, and domain-interface ends alike — tally the per-cell boundary
/// slots: the interface exchange is Jacobi-lagged, so per-cell boundary
/// tallies are the only attribution consistent with the angular fluxes
/// each domain's sweep actually used.

#include <cstdint>
#include <memory>
#include <vector>

#include "cmfd/coarse_mesh.h"
#include "track/track2d.h"
#include "track/track3d.h"

namespace antmoc {
class FsrData;
namespace util {
class Parallel;
}
}  // namespace antmoc

namespace antmoc::cmfd {

/// One surface crossing of a (track, direction): tally w * psi into
/// `slot` after `ordinal` segments have been attenuated.
struct Crossing {
  std::int32_t ordinal = 0;
  std::int32_t slot = 0;
};

/// Per-(track, direction) crossing records in CSR form, built once per
/// solver from the track stacks and the coarse mesh (direction index 0 =
/// forward, matching the psi_in slot layout).
class CrossingPlan {
 public:
  CrossingPlan(const TrackStacks& stacks, const CoarseMesh& mesh,
               LinkKind z_min_kind, LinkKind z_max_kind,
               util::Parallel* par = nullptr);

  void records(long id, int dir, const Crossing*& begin,
               const Crossing*& end) const {
    const std::size_t i = static_cast<std::size_t>(id) * 2 + dir;
    begin = rec_.data() + offset_[i];
    end = rec_.data() + offset_[i + 1];
  }

  /// Coarse cell of the first segment of (id, dir); -1 for empty tracks.
  int first_cell(long id, int dir) const {
    return first_cell_[static_cast<std::size_t>(id) * 2 + dir];
  }

  long num_records() const { return static_cast<long>(rec_.size()); }

 private:
  std::vector<long> offset_;  ///< 2 * num_tracks + 1
  std::vector<Crossing> rec_;
  std::vector<std::int32_t> first_cell_;  ///< 2 * num_tracks
};

/// Scenario-independent CMFD state an engine Session shares across jobs:
/// the coarse-mesh overlay and the crossing plan (both depend only on
/// geometry + tracks, never on materials or fluxes).
struct CmfdContext {
  CoarseMesh mesh;
  CrossingPlan plan;

  CmfdContext(const Geometry& geometry, const MeshSpec& spec,
              const TrackStacks& stacks, LinkKind z_min_kind,
              LinkKind z_max_kind, util::Parallel* par = nullptr)
      : mesh(geometry, spec),
        plan(stacks, mesh, z_min_kind, z_max_kind, par) {}

  /// Wraps an existing mesh (e.g. the arbitrary-map test constructor) and
  /// builds the crossing plan for it.
  CmfdContext(CoarseMesh m, const TrackStacks& stacks, LinkKind z_min_kind,
              LinkKind z_max_kind, util::Parallel* par = nullptr)
      : mesh(std::move(m)),
        plan(stacks, mesh, z_min_kind, z_max_kind, par) {}
};

class CmfdAccelerator {
 public:
  explicit CmfdAccelerator(CmfdOptions options);
  ~CmfdAccelerator();

  const CmfdOptions& options() const { return options_; }

  /// Builds (or borrows) the mesh + crossing plan. Idempotent; `shared`
  /// (may be nullptr) is an engine-session context reused instead of
  /// building an owned one.
  void attach(const TrackStacks& stacks, LinkKind z_min_kind,
              LinkKind z_max_kind, util::Parallel* par,
              const CmfdContext* shared);
  bool attached() const { return ctx_ != nullptr; }

  const CoarseMesh& mesh() const { return ctx_->mesh; }
  const CrossingPlan& plan() const { return ctx_->plan; }

  /// Rank used for fault injection / telemetry (-1 single-process).
  void set_rank(int rank) { rank_ = rank; }

  // --- sweep-side tally buffers -------------------------------------------
  /// Marks the start of a transport iteration: the next begin_sweep()
  /// zeroes the private buffers. Called once per iteration (sweep_step),
  /// so phased sweeps (boundary groups then interior) accumulate into the
  /// same buffers instead of re-zeroing mid-iteration.
  void begin_iteration() { fresh_ = true; }
  /// Ensures `buffers` private current buffers exist, zeroing them only on
  /// the first call after begin_iteration().
  void begin_sweep(int buffers, int groups);
  double* currents(int buffer) {
    return bufs_[buffer].data();
  }
  /// Sums the private buffers into merged_currents() in ascending buffer
  /// order (deterministic for a fixed buffer count).
  void merge_currents();
  /// Merged per-slot currents; the decomposed driver allreduces this
  /// across ranks (fixed rank order) before close_step.
  std::vector<double>& merged_currents() { return merged_; }

  // --- acceleration --------------------------------------------------------
  /// Runs restriction -> coarse eigenvalue solve -> prolongation on the
  /// *normalized* flux (call after the power-iteration renormalization).
  /// `scale` is the normalization factor of this iteration, applied to
  /// the raw accumulator and currents so everything lives in the same
  /// units as the flux. Returns true when prolongation was applied;
  /// returns false — leaving flux, psi and k untouched, bit for bit —
  /// before `start_iteration`, after divergence degraded the accelerator,
  /// or when a fault is injected at "cmfd.solve".
  bool accelerate(FsrData& fsr, std::vector<float>& psi_in, double& k,
                  double scale, util::Parallel& par);

  /// Permanently degraded to unaccelerated iteration (non-finite values
  /// in the coarse solve or a cmfd.solve fault fired)?
  bool degraded() const { return degraded_; }
  int last_outer_iterations() const { return last_outers_; }
  /// Number of accelerate() calls that applied a prolongation.
  int accelerations() const { return accelerations_; }
  /// Iterations skipped for conditioning — non-positive diagonal,
  /// vanished fission source, out-of-range or stalled coarse eigenvalue,
  /// all symptoms of an operator fitted to a still-transient iterate —
  /// without degrading: the next iteration refits and retries.
  int skips() const { return skips_; }

 private:
  bool solve_and_prolong(FsrData& fsr, std::vector<float>& psi_in,
                         double& k, double scale, util::Parallel& par);

  CmfdOptions options_;
  const CmfdContext* ctx_ = nullptr;
  std::unique_ptr<CmfdContext> owned_;
  int rank_ = -1;

  std::vector<std::vector<double>> bufs_;
  std::vector<double> merged_;
  bool fresh_ = true;

  int iteration_ = 0;
  bool degraded_ = false;
  int last_outers_ = 0;
  int accelerations_ = 0;
  int skips_ = 0;
};

}  // namespace antmoc::cmfd
