#pragma once

/// \file coarse_mesh.h
/// Coarse-mesh overlay for CMFD acceleration (DESIGN.md §14).
///
/// A CoarseMesh is a regular nx x ny x nz grid laid over the geometry's
/// bounds, with every FSR assigned to exactly one coarse cell. The grid —
/// not the tracks — defines the face tables, so every domain of a
/// decomposed run (all built on the same global geometry) enumerates
/// bitwise-identical faces and slots without any communication. Face
/// areas and pitches are geometric (mesh pitches and axial planes), again
/// identical everywhere by construction.
///
/// Surface-current slot layout (per energy group, group-major buffers are
/// indexed slot * G + g):
///   * interior faces: slot = face * 2 + orient, orient 0 = a crossing
///     from the lo cell into the hi cell along the face axis;
///   * per-cell boundary tallies: slot = num_faces()*2 + cell*2 + {in,out}
///     for crossings entering/leaving a cell through anything that is not
///     an interior grid face (the geometry boundary, domain-decomposition
///     seams, and — for the arbitrary-map test constructor — everything).
///
/// The mesh resolution comes from `cmfd.mesh`: "pin" (the product of
/// lattice dimensions down the nesting chain x axial layers), "assembly"
/// (the root lattice only), or an explicit "NxMxK". Pin and assembly
/// meshes keep the geometry's axial layers as z planes, so axial domain
/// interfaces always coincide with coarse-cell boundaries; explicit
/// meshes slice z uniformly.

#include <string>
#include <utility>
#include <vector>

#include "geometry/geometry.h"

namespace antmoc {
class Config;
}

namespace antmoc::cmfd {

/// Parsed `cmfd.mesh` value.
struct MeshSpec {
  enum class Kind { kPin, kAssembly, kExplicit };
  Kind kind = Kind::kPin;
  int nx = 0, ny = 0, nz = 0;  ///< explicit grids only
};

/// Parses "pin" | "assembly" | "NxMxK"; throws ConfigError naming the
/// `cmfd.mesh` key on anything else (zero/negative dims, overflow, typos).
MeshSpec parse_mesh_spec(const std::string& text);

/// Canonical text form ("pin", "assembly", "4x4x3").
std::string mesh_spec_name(const MeshSpec& spec);

/// CMFD knobs (`cmfd.*` config keys; ANTMOC_CMFD env default).
struct CmfdOptions {
  bool enable = false;          ///< cmfd.enable
  MeshSpec mesh;                ///< cmfd.mesh (default pin)
  double tolerance = 1e-8;      ///< cmfd.tolerance — coarse eigenvalue tol
  int max_outer = 200;          ///< cmfd.max_outer — coarse power iterations
  int inner_sweeps = 4;         ///< cmfd.inner_sweeps — GS passes per outer
  double ratio_clamp = 5.0;     ///< cmfd.ratio_clamp — prolongation bound
  /// cmfd.relax — geometric damping of the prolongation (ratios and the
  /// eigenvalue jump are raised to this power). 1 = undamped; the coupled
  /// MOC+CMFD map can limit-cycle undamped, so the default under-relaxes.
  double relax = 0.7;
  int start_iteration = 1;      ///< cmfd.start — first accelerated iteration
};

/// Reads `cmfd.*` keys with ANTMOC_CMFD as the enable/mesh default
/// (ANTMOC_CMFD=1/on enables the pin mesh; any other non-empty, non-0/off
/// value is parsed as a mesh spec and enables). Explicit config keys win.
CmfdOptions options_from(const Config& config);

/// The ANTMOC_CMFD environment default alone (no config).
CmfdOptions default_cmfd_options();

class CoarseMesh {
 public:
  /// Grid overlay over `geometry` at the requested resolution. Radial
  /// regions are located by deterministic centroid sampling of
  /// Geometry::find_radial on a doubling sample grid; throws if a region
  /// cannot be located at the finest resolution.
  ///
  /// Grid columns whose space belongs to a radial region homed to a
  /// *different* column are merged with that column (union-find, smallest
  /// column index as the representative), so the coarse mesh is never
  /// finer than the FSR structure: pin resolution where the geometry has
  /// pins, one merged cell per slab over e.g. a single-region reflector
  /// assembly. Without the merge, every crossing into such a region would
  /// tally against one centroid cell's boundary slots as unattributable
  /// inflow, driving its removal correction negative. num_cells() is
  /// therefore at most nx()*ny()*nz().
  CoarseMesh(const Geometry& geometry, const MeshSpec& spec);

  /// Test constructor: an arbitrary FSR -> cell map with no grid
  /// structure. Every crossing tallies to the cells' boundary in/out
  /// slots (slot_between always returns -1), which keeps the per-cell
  /// current-conservation identity exact for any map — the property the
  /// fuzz tests exercise.
  CoarseMesh(const Geometry& geometry, int num_cells,
             std::vector<int> fsr_to_cell);

  int num_cells() const { return num_cells_; }
  int nx() const { return nx_; }
  int ny() const { return ny_; }
  int nz() const { return nz_; }
  bool grid() const { return grid_; }

  int cell_of(long fsr) const { return fsr_to_cell_[fsr]; }
  const std::vector<int>& fsr_to_cell() const { return fsr_to_cell_; }

  /// One interior grid face between cells a (lo) and b (hi) along `axis`
  /// (0 = x, 1 = y, 2 = z). `area` is the geometric face area; `ha`/`hb`
  /// are the cell pitches normal to the face on either side.
  struct FaceInfo {
    int a = -1, b = -1;
    int axis = 0;
    double area = 0.0;
    double ha = 0.0, hb = 0.0;
  };

  long num_faces() const { return static_cast<long>(faces_.size()); }
  const std::vector<FaceInfo>& faces() const { return faces_; }

  /// Total current slots: interior faces x 2 orientations plus the
  /// per-cell boundary in/out pairs.
  long num_slots() const { return num_faces() * 2 + num_cells_ * 2L; }

  /// Slot of a crossing from cell `from` into cell `to`; -1 unless the
  /// two cells share an interior face.
  long slot_between(int from, int to) const;

  /// Path from `from` to `to` stepping the grid one axis at a time (x,
  /// then y, then z, between the cells' representative grid columns), so
  /// a corner crossing can be attributed to real interior faces instead
  /// of the boundary slots (where its unattributed inflow would fold into
  /// the removal correction and destabilize low-flux cells). Returns the
  /// visited cells excluding `from` and including `to`; empty when the
  /// representatives are more than one grid cell apart on any axis or the
  /// mesh has no grid structure.
  std::vector<int> path_between(int from, int to) const;

  long boundary_in_slot(int cell) const {
    return num_faces() * 2 + cell * 2L;
  }
  long boundary_out_slot(int cell) const {
    return num_faces() * 2 + cell * 2L + 1;
  }

  /// Net current through interior face f in the lo -> hi sense, read from
  /// a slot-major currents buffer.
  static double net_current(const double* currents, long face, int g,
                            int groups) {
    return currents[(face * 2 + 0) * groups + g] -
           currents[(face * 2 + 1) * groups + g];
  }

 private:
  void build_faces();
  int cell_index(int ix, int iy, int iz) const {
    return (iz * ny_ + iy) * nx_ + ix;
  }

  const Geometry* geometry_;
  bool grid_ = false;
  int nx_ = 1, ny_ = 1, nz_ = 1;
  int num_cells_ = 0;
  double x0_ = 0.0, y0_ = 0.0;
  double pitch_x_ = 0.0, pitch_y_ = 0.0;
  std::vector<double> zs_;  ///< nz + 1 axial planes (grid mode)
  std::vector<int> fsr_to_cell_;
  std::vector<FaceInfo> faces_;
  std::vector<int> cell_map_;   ///< grid cell -> merged cell (grid mode)
  std::vector<int> rep_grid_;   ///< merged cell -> representative grid cell
  std::vector<long> face_key_;  ///< a * num_cells_ + b per face, sorted
};

}  // namespace antmoc::cmfd
