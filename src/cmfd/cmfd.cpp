#include "cmfd/cmfd.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "fault/fault.h"
#include "perfmodel/perfmodel.h"
#include "solver/fsr_data.h"
#include "telemetry/telemetry.h"
#include "util/error.h"
#include "util/log.h"
#include "util/parallel.h"

namespace antmoc::cmfd {

// ---------------------------------------------------------------------------
// CrossingPlan
// ---------------------------------------------------------------------------

namespace {

/// Builds the crossing records of one (track, direction).
void build_track_dir(const TrackStacks& stacks, const CoarseMesh& mesh,
                     LinkKind z_min, LinkKind z_max, long id, bool forward,
                     std::vector<Crossing>& recs, std::int32_t& first_cell) {
  recs.clear();
  first_cell = -1;
  long ord = 0;
  int prev_cell = -1;
  long last_fsr = -1;
  const auto push = [&](long ordinal, long slot) {
    recs.push_back({static_cast<std::int32_t>(ordinal),
                    static_cast<std::int32_t>(slot)});
  };
  // A corner crossing (cell change on more than one grid axis at once) is
  // walked one axis at a time through the intermediate cells, so the full
  // current lands on interior faces (netting to zero for the intermediate
  // cells). Tallied on the boundary slots instead, its inflow would be
  // unattributable to any face and fold into the removal correction,
  // which destabilizes low-flux cells (negative diagonals).
  const auto push_change = [&](long ordinal, int from, int to) {
    const long slot = mesh.slot_between(from, to);
    if (slot >= 0) {
      push(ordinal, slot);
      return;
    }
    const std::vector<int> path = mesh.path_between(from, to);
    if (!path.empty()) {
      int pc = from;
      for (const int nc : path) {
        push(ordinal, mesh.slot_between(pc, nc));
        pc = nc;
      }
    } else {
      push(ordinal, mesh.boundary_out_slot(from));
      push(ordinal, mesh.boundary_in_slot(to));
    }
  };
  stacks.for_each_segment(id, forward, [&](long fsr, double) {
    const int c = mesh.cell_of(fsr);
    if (ord == 0) {
      first_cell = c;
    } else if (c != prev_cell) {
      push_change(ord, prev_cell, c);
    }
    prev_cell = c;
    last_fsr = fsr;
    ++ord;
  });
  if (ord == 0) return;  // empty track: nothing enters or leaves

  // Entry (ordinal 0) and exit (ordinal = segment count) always tally the
  // per-cell boundary slots — including domain-interface ends. The
  // interface exchange is Jacobi-lagged (a neighbor sweeps this track's
  // exit flux only next iteration), so attributing an interface exit to
  // the shared interior face would pair this iteration's exit with the
  // neighbor's *previous* entry and break the per-cell telescoping
  // identity mid-transient (the mismatch folds into the removal
  // correction and can drive it negative). Boundary in/out tallies keep
  // every cell's currents consistent with exactly the angular fluxes its
  // own sweep used; the true interface current simply rides in the
  // removal term instead of a face closure.
  (void)z_min;
  (void)z_max;
  (void)last_fsr;
  recs.insert(recs.begin(), {0, static_cast<std::int32_t>(
                                    mesh.boundary_in_slot(first_cell))});
  push(ord, mesh.boundary_out_slot(prev_cell));
}

}  // namespace

CrossingPlan::CrossingPlan(const TrackStacks& stacks, const CoarseMesh& mesh,
                           LinkKind z_min_kind, LinkKind z_max_kind,
                           util::Parallel* par) {
  const long n = stacks.num_tracks();
  std::vector<std::vector<Crossing>> all(static_cast<std::size_t>(n) * 2);
  first_cell_.assign(static_cast<std::size_t>(n) * 2, -1);
  const auto build = [&](long i) {
    build_track_dir(stacks, mesh, z_min_kind, z_max_kind, i / 2,
                    /*forward=*/i % 2 == 0, all[i], first_cell_[i]);
  };
  if (par != nullptr && par->workers() > 1) {
    par->for_each(n * 2, build);
  } else {
    for (long i = 0; i < n * 2; ++i) build(i);
  }
  offset_.resize(static_cast<std::size_t>(n) * 2 + 1);
  offset_[0] = 0;
  for (std::size_t i = 0; i < all.size(); ++i)
    offset_[i + 1] = offset_[i] + static_cast<long>(all[i].size());
  rec_.resize(offset_.back());
  for (std::size_t i = 0; i < all.size(); ++i)
    std::copy(all[i].begin(), all[i].end(), rec_.begin() + offset_[i]);
}

// ---------------------------------------------------------------------------
// CmfdAccelerator
// ---------------------------------------------------------------------------

CmfdAccelerator::CmfdAccelerator(CmfdOptions options)
    : options_(options) {}

CmfdAccelerator::~CmfdAccelerator() = default;

void CmfdAccelerator::attach(const TrackStacks& stacks, LinkKind z_min_kind,
                             LinkKind z_max_kind, util::Parallel* par,
                             const CmfdContext* shared) {
  if (ctx_ != nullptr) return;
  if (shared != nullptr) {
    ctx_ = shared;
    return;
  }
  owned_ = std::make_unique<CmfdContext>(stacks.geometry(), options_.mesh,
                                         stacks, z_min_kind, z_max_kind, par);
  ctx_ = owned_.get();
}

void CmfdAccelerator::begin_sweep(int buffers, int groups) {
  const std::size_t len =
      static_cast<std::size_t>(ctx_->mesh.num_slots()) * groups;
  if (static_cast<int>(bufs_.size()) != buffers ||
      (buffers > 0 && bufs_[0].size() != len)) {
    bufs_.assign(buffers, std::vector<double>(len, 0.0));
  } else if (fresh_) {
    for (auto& b : bufs_) std::fill(b.begin(), b.end(), 0.0);
  }
  fresh_ = false;
}

void CmfdAccelerator::merge_currents() {
  if (bufs_.empty()) return;
  merged_.assign(bufs_[0].size(), 0.0);
  for (const auto& b : bufs_)  // ascending buffer order: deterministic
    for (std::size_t i = 0; i < b.size(); ++i) merged_[i] += b[i];
}

bool CmfdAccelerator::accelerate(FsrData& fsr, std::vector<float>& psi_in,
                                 double& k, double scale,
                                 util::Parallel& par) {
  ++iteration_;
  if (degraded_ || iteration_ < options_.start_iteration) return false;
  try {
    fault::point("cmfd.solve", rank_);
    return solve_and_prolong(fsr, psi_in, k, scale, par);
  } catch (const Error& e) {
    // Injected fault or divergence guard: degrade permanently to plain
    // power iteration. Nothing has been mutated, so the remainder of the
    // solve is bitwise identical to an unaccelerated run.
    degraded_ = true;
    log::warn("cmfd: degrading to unaccelerated iteration at iteration ",
              iteration_, ": ", e.what());
    if (telemetry::on())
      telemetry::metrics().counter("solver.cmfd_degraded").add(1);
    return false;
  }
}

bool CmfdAccelerator::solve_and_prolong(FsrData& fsr,
                                        std::vector<float>& psi_in,
                                        double& k, double scale,
                                        util::Parallel& par) {
  telemetry::TraceSpan span("solver/cmfd_solve", "solver", rank_);
  const CoarseMesh& mesh = ctx_->mesh;
  const int C = mesh.num_cells();
  const int G = fsr.num_groups();
  const long CG = static_cast<long>(C) * G;
  const auto& flux = fsr.scalar_flux();
  const auto& sigma_t = fsr.sigma_t_flat();
  const auto& volumes = fsr.volumes();
  const auto& accum = fsr.accumulator();

  // --- restriction: flux-volume-weighted homogenization (FSRs ascending) --
  std::vector<double> vol(C, 0.0);
  std::vector<double> vphi(CG, 0.0), sigtw(CG, 0.0), asum(CG, 0.0);
  std::vector<double> nusfw(CG, 0.0), chiw(CG, 0.0);
  std::vector<double> scatw(CG * G, 0.0);  // [c*G*G + gfrom*G + gto]
  for (long r = 0; r < fsr.num_fsrs(); ++r) {
    const double V = volumes[r];
    if (V <= 0.0) continue;
    const int c = mesh.cell_of(r);
    const long base = r * static_cast<long>(G);
    const long cb = static_cast<long>(c) * G;
    const Material& m = fsr.material(r);
    vol[c] += V;
    double fis = 0.0;
    for (int g = 0; g < G; ++g) {
      const double vp = V * flux[base + g];
      vphi[cb + g] += vp;
      sigtw[cb + g] += sigma_t[base + g] * vp;
      asum[cb + g] += accum[base + g] * scale;
      nusfw[cb + g] += m.nu_sigma_f(g) * vp;
      fis += m.nu_sigma_f(g) * vp;
      double* sw = scatw.data() + (cb + g) * G;
      for (int gto = 0; gto < G; ++gto) sw[gto] += m.sigma_s(g, gto) * vp;
    }
    for (int g = 0; g < G; ++g) chiw[cb + g] += m.chi(g) * fis;
  }

  // Volume-averaged restricted flux; a (cell, group) with no flux or no
  // tracked volume is frozen out of the operator entirely.
  std::vector<double> phi0(CG, 0.0);
  std::vector<char> valid(CG, 0);
  for (long i = 0; i < CG; ++i) {
    const int c = static_cast<int>(i / G);
    if (vol[c] > 0.0 && vphi[i] > 0.0) {
      phi0[i] = vphi[i] / vol[c];
      valid[i] = 1;
    }
  }

  // --- face couplings: D-hat + D-tilde fitted to the tallied currents ---
  const auto& faces = mesh.faces();
  const long F = mesh.num_faces();
  std::vector<double> dhat(F * G, 0.0), dtil(F * G, 0.0), jnet(F * G, 0.0);
  std::vector<char> fvalid(F * G, 0);
  require(static_cast<long>(merged_.size()) >=
              mesh.num_slots() * static_cast<long>(G),
          "cmfd: no merged currents for this sweep");
  for (long f = 0; f < F; ++f) {
    const CoarseMesh::FaceInfo& fc = faces[f];
    const long ab = static_cast<long>(fc.a) * G;
    const long bb = static_cast<long>(fc.b) * G;
    for (int g = 0; g < G; ++g) {
      if (!valid[ab + g] || !valid[bb + g]) continue;
      const double st_a = sigtw[ab + g] / vphi[ab + g];
      const double st_b = sigtw[bb + g] / vphi[bb + g];
      if (st_a <= 0.0 || st_b <= 0.0) continue;
      const double da = 1.0 / (3.0 * st_a);
      const double db = 1.0 / (3.0 * st_b);
      const double pa = phi0[ab + g];
      const double pb = phi0[bb + g];
      double dh = fc.area * 2.0 * da * db / (fc.ha * db + fc.hb * da);
      const double j =
          scale * CoarseMesh::net_current(merged_.data(), f, g, G);
      double dt = (j - dh * (pa - pb)) / (pa + pb);
      if (std::abs(dt) > dh) {
        // Classical D-tilde clamp: collapse to a one-sided closure that
        // still reproduces j at phi0 but keeps off-diagonals negative-free.
        if (j > 0.0) {
          dh = dt = j / (2.0 * pa);
        } else {
          dh = -j / (2.0 * pb);
          dt = -dh;
        }
      }
      const long i = f * G + g;
      dhat[i] = dh;
      dtil[i] = dt;
      jnet[i] = j;
      fvalid[i] = 1;
    }
  }

  // --- removal correction: exact minus face-attributed leakage ----------
  // The transport telescoping identity makes -sum(accum) the exact net
  // leakage a cell saw this sweep (per tallied psi); subtracting the part
  // the interior-face closure will reproduce leaves boundary leakage plus
  // anything a frozen face could not carry, folded into removal.
  std::vector<double> rterm(CG, 0.0);
  for (long f = 0; f < F; ++f) {
    const CoarseMesh::FaceInfo& fc = faces[f];
    for (int g = 0; g < G; ++g) {
      if (!fvalid[f * G + g]) continue;
      const double j = jnet[f * G + g];
      rterm[static_cast<long>(fc.a) * G + g] += j;  // leaves a through f
      rterm[static_cast<long>(fc.b) * G + g] -= j;  // enters b through f
    }
  }
  for (long i = 0; i < CG; ++i) {
    if (!valid[i]) continue;
    const double l_exact = -asum[i];
    rterm[i] = (l_exact - rterm[i]) / phi0[i];
  }

  // --- operator assembly (volume-integrated coefficients) ---------------
  // Unknown x is the volume-averaged coarse flux; every coefficient is
  // scaled by phi0 so the coarse balance holds exactly at x = phi0 with
  // this iteration's (lagged) source — the coarse solve then jumps to the
  // eigenpair of the *updated* homogenized operator.
  std::vector<double> diag(CG, 0.0), chihom(CG, 0.0), fcoef(CG, 0.0);
  std::vector<double> fsrc_cell(C, 0.0);
  for (int c = 0; c < C; ++c) {
    const long cb = static_cast<long>(c) * G;
    double fis = 0.0;
    for (int g = 0; g < G; ++g) fis += nusfw[cb + g];
    if (fis > 0.0)
      for (int g = 0; g < G; ++g) chihom[cb + g] = chiw[cb + g] / fis;
    for (int g = 0; g < G; ++g) {
      if (!valid[cb + g]) continue;
      fcoef[cb + g] = nusfw[cb + g] / phi0[cb + g];
      diag[cb + g] = sigtw[cb + g] / phi0[cb + g] -
                     scatw[(cb + g) * G + g] / phi0[cb + g] + rterm[cb + g];
    }
  }
  for (long f = 0; f < F; ++f) {
    const CoarseMesh::FaceInfo& fc = faces[f];
    for (int g = 0; g < G; ++g) {
      const long i = f * G + g;
      if (!fvalid[i]) continue;
      diag[static_cast<long>(fc.a) * G + g] += dhat[i] + dtil[i];
      diag[static_cast<long>(fc.b) * G + g] += dhat[i] - dtil[i];
    }
  }
  // Unattributed currents (corner crossings, frozen faces) fold into the
  // removal term, which can transiently go negative for low-removal
  // moderator cells while the MOC flux is still far from converged. That
  // is a conditioning problem, not a divergence: skip this iteration and
  // try again once the flux has settled.
  for (long i = 0; i < CG; ++i) {
    if (valid[i] && !(diag[i] > 0.0)) {
      ++skips_;
      if (telemetry::on())
        telemetry::metrics().counter("solver.cmfd_skipped").add(1);
      return false;
    }
  }

  // Per-cell face adjacency (faces ascending -> deterministic traversal).
  std::vector<std::vector<std::pair<long, bool>>> cell_faces(C);
  for (long f = 0; f < F; ++f) {
    cell_faces[faces[f].a].push_back({f, true});
    cell_faces[faces[f].b].push_back({f, false});
  }

  // --- coarse eigenvalue solve: power iteration over Gauss-Seidel -------
  std::vector<double> x = phi0;
  double lambda = k;
  double fsum = 0.0;
  for (long i = 0; i < CG; ++i) fsum += fcoef[i] * x[i];
  const double fsum0 = fsum;
  if (!(fsum > 0.0)) {
    ++skips_;  // nothing to normalize against yet — not a divergence
    return false;
  }

  int outers = 0;
  double lambda_hist[3] = {lambda, lambda, lambda};
  bool converged = false;
  for (; outers < options_.max_outer; ++outers) {
    // Fixed fission source for this outer.
    for (int c = 0; c < C; ++c) {
      const long cb = static_cast<long>(c) * G;
      double s = 0.0;
      for (int g = 0; g < G; ++g) s += fcoef[cb + g] * x[cb + g];
      fsrc_cell[c] = s;
    }
    for (int pass = 0; pass < options_.inner_sweeps; ++pass) {
      for (int c = 0; c < C; ++c) {
        const long cb = static_cast<long>(c) * G;
        for (int g = 0; g < G; ++g) {
          if (!valid[cb + g]) continue;
          double rhs = chihom[cb + g] * fsrc_cell[c] / lambda;
          const double* sw = scatw.data() + cb * G;  // [gfrom*G + gto]
          for (int gf = 0; gf < G; ++gf) {
            if (gf == g || !valid[cb + gf]) continue;
            rhs += sw[gf * G + g] / phi0[cb + gf] * x[cb + gf];
          }
          for (const auto& [f, is_a] : cell_faces[c]) {
            const long i = f * G + g;
            if (!fvalid[i]) continue;
            const int other = is_a ? faces[f].b : faces[f].a;
            const double coeff =
                is_a ? dhat[i] - dtil[i] : dhat[i] + dtil[i];
            rhs += coeff * x[static_cast<long>(other) * G + g];
          }
          x[cb + g] = rhs / diag[cb + g];
        }
      }
    }
    double fsum_new = 0.0;
    for (long i = 0; i < CG; ++i) fsum_new += fcoef[i] * x[i];
    if (!std::isfinite(fsum_new) || fsum_new <= 0.0)
      fail<SolverError>("cmfd: coarse fission source diverged");
    const double lambda_new = lambda * fsum_new / fsum;
    // An out-of-range eigenvalue is almost always the removal correction
    // dwarfing the physical removal while the MOC iterate is still far
    // from converged (the lag it carries decays with the transport
    // transient) — same conditioning class as a non-positive diagonal.
    // Skip and refit next iteration; non-finite values stay fatal.
    if (!std::isfinite(lambda_new))
      fail<SolverError>("cmfd: coarse eigenvalue diverged");
    if (lambda_new <= 1e-2 || lambda_new >= 1e2) {
      ++skips_;
      if (telemetry::on())
        telemetry::metrics().counter("solver.cmfd_skipped").add(1);
      return false;
    }
    // Convergence is judged on the per-cell fission source normalized by
    // the *global* source, not pointwise flux or per-cell relative
    // change: components outside the dominant eigenspace — near-zero
    // (cell, group) modes, or whole near-degenerate cells when the mesh
    // has little or no face coupling — decay geometrically forever, so
    // their own relative change never shrinks even though their
    // amplitude (and relevance to the eigenpair) vanishes.
    double dx = 0.0;
    for (int c = 0; c < C; ++c) {
      const long cb = static_cast<long>(c) * G;
      double s = 0.0;
      for (int g = 0; g < G; ++g) s += fcoef[cb + g] * x[cb + g];
      const double rel = (s - fsrc_cell[c]) / fsum;
      dx += rel * rel;
    }
    dx = std::sqrt(dx / static_cast<double>(C));
    const double dl = std::abs(lambda_new - lambda) / lambda_new;
    lambda_hist[2] = lambda_hist[1];
    lambda_hist[1] = lambda;
    lambda = lambda_new;
    lambda_hist[0] = lambda;
    fsum = fsum_new;
    if (dl < options_.tolerance && dx < std::sqrt(options_.tolerance)) {
      converged = true;
      ++outers;
      break;
    }
  }
  if (!converged) {
    // A stalled coarse solve on a transient-fitted operator is retried
    // with next iteration's fit, like the other conditioning skips; a
    // persistently stalling operator just leaves the solve unaccelerated
    // (visible through skips() and solver.cmfd_skipped).
    ++skips_;
    if (telemetry::on())
      telemetry::metrics().counter("solver.cmfd_skipped").add(1);
    return false;
  }
  last_outers_ = outers;

  // --- prolongation ------------------------------------------------------
  // Normalize so the homogenized fission production is preserved, then
  // rescale every FSR flux (and the incoming angular fluxes, keyed by the
  // coarse cell each track direction first enters) by the coarse ratio.
  const double s_norm = fsum0 / fsum;
  std::vector<double> ratio(CG, 1.0);
  const double rc = options_.ratio_clamp;
  const double th = options_.relax;
  for (long i = 0; i < CG; ++i) {
    if (!valid[i]) continue;
    ratio[i] = std::clamp(std::pow(x[i] * s_norm / phi0[i], th), 1.0 / rc,
                          rc);
  }
  const std::vector<int>& cell_of = mesh.fsr_to_cell();
  double* flux_mut = fsr.scalar_flux_mut().data();
  par.for_each(fsr.num_fsrs(), [&](long r) {
    const double* rr = ratio.data() + static_cast<long>(cell_of[r]) * G;
    double* fl = flux_mut + r * static_cast<long>(G);
    for (int g = 0; g < G; ++g) fl[g] *= rr[g];
  });
  const CrossingPlan& plan = ctx_->plan;
  par.for_each(static_cast<long>(psi_in.size()) / G, [&](long i) {
    const int c = plan.first_cell(i / 2, static_cast<int>(i % 2));
    if (c < 0) return;
    const double* rr = ratio.data() + static_cast<long>(c) * G;
    float* p = psi_in.data() + i * static_cast<long>(G);
    for (int g = 0; g < G; ++g)
      p[g] = static_cast<float>(p[g] * rr[g]);
  });
  // Same damping on the eigenvalue jump (k and the flux must move
  // consistently, and lambda = k at the accelerator's fixed point).
  k = k * std::pow(lambda / k, th);
  ++accelerations_;

  if (telemetry::on()) {
    telemetry::metrics().counter("solver.cmfd_iterations").add(outers);
    // Model-predicted outer-sweep reduction, with the coarse power
    // iteration's own contraction rate standing in for the transport
    // dominance ratio.
    const double d1 = std::abs(lambda_hist[0] - lambda_hist[1]);
    const double d2 = std::abs(lambda_hist[1] - lambda_hist[2]);
    const double rho =
        d2 > 0.0 ? std::clamp(d1 / d2, 1e-3, 0.999) : 0.5;
    telemetry::metrics()
        .gauge("solver.cmfd_acceleration_ratio")
        .set(perf::predict_cmfd_outer_reduction(rho));
  }
  span.set_arg("outers", outers);
  return true;
}

}  // namespace antmoc::cmfd
