#pragma once

/// \file graph.h
/// Weighted undirected graph of sub-geometries: vertex weights are
/// predicted computational loads (Eq. 4 segment counts), edge weights the
/// interface communication volume (paper §4.2.1, Fig. 5(1)).

#include <utility>
#include <vector>

#include "util/error.h"

namespace antmoc::partition {

class Graph {
 public:
  explicit Graph(int num_vertices)
      : weights_(num_vertices, 0.0), adj_(num_vertices) {}

  int num_vertices() const { return static_cast<int>(weights_.size()); }

  void set_weight(int v, double w) { weights_[v] = w; }
  double weight(int v) const { return weights_[v]; }
  const std::vector<double>& weights() const { return weights_; }

  /// Adds an undirected edge (accumulates if it already exists).
  void add_edge(int u, int v, double w);

  const std::vector<std::pair<int, double>>& neighbors(int v) const {
    return adj_[v];
  }

  double total_weight() const;

 private:
  std::vector<double> weights_;
  std::vector<std::vector<std::pair<int, double>>> adj_;
};

}  // namespace antmoc::partition
