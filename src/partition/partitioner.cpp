#include "partition/partitioner.h"

#include <algorithm>
#include <limits>
#include <numeric>

namespace antmoc::partition {

std::vector<int> partition_blocks(int num_vertices, int k) {
  require(k >= 1, "need at least one part");
  std::vector<int> part(num_vertices);
  const int chunk = (num_vertices + k - 1) / std::max(1, k);
  for (int v = 0; v < num_vertices; ++v)
    part[v] = std::min(v / std::max(1, chunk), k - 1);
  return part;
}

std::vector<int> partition_kway(const Graph& graph, int k,
                                const PartitionOptions& options) {
  require(k >= 1, "need at least one part");
  const int n = graph.num_vertices();
  std::vector<int> part(n, -1);
  if (k == 1 || n == 0) {
    std::fill(part.begin(), part.end(), 0);
    return part;
  }

  const double mean_weight =
      graph.total_weight() / std::max(1, n);
  const double affinity = options.affinity * std::max(mean_weight, 1e-30);

  // --- seeding: heaviest vertices first onto the best part ---------------
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return graph.weight(a) > graph.weight(b);
  });

  std::vector<double> load(k, 0.0);
  std::vector<double> adj_to_part(k, 0.0);
  for (int v : order) {
    std::fill(adj_to_part.begin(), adj_to_part.end(), 0.0);
    double adj_norm = 0.0;
    for (const auto& [u, w] : graph.neighbors(v)) {
      if (part[u] >= 0) adj_to_part[part[u]] += w;
      adj_norm += w;
    }
    int best = 0;
    double best_score = std::numeric_limits<double>::max();
    for (int p = 0; p < k; ++p) {
      // Lower load is better; adjacency to the part earns a bonus.
      const double score =
          load[p] -
          (adj_norm > 0 ? affinity * adj_to_part[p] / adj_norm : 0.0);
      if (score < best_score) {
        best_score = score;
        best = p;
      }
    }
    part[v] = best;
    load[best] += graph.weight(v);
  }

  // --- refinement: single moves that reduce the maximum part load --------
  for (int pass = 0; pass < options.refine_passes; ++pass) {
    const int heaviest = static_cast<int>(
        std::max_element(load.begin(), load.end()) - load.begin());
    // Among the heaviest part's vertices, pick the move that minimizes
    // the new pairwise peak the most.
    int best_v = -1, best_p = -1;
    double best_peak = load[heaviest];
    for (int v = 0; v < n; ++v) {
      if (part[v] != heaviest) continue;
      const double w = graph.weight(v);
      for (int p = 0; p < k; ++p) {
        if (p == heaviest) continue;
        const double peak = std::max(load[heaviest] - w, load[p] + w);
        if (peak < best_peak - 1e-12) {
          best_peak = peak;
          best_v = v;
          best_p = p;
        }
      }
    }
    if (best_v < 0) break;
    load[heaviest] -= graph.weight(best_v);
    load[best_p] += graph.weight(best_v);
    part[best_v] = best_p;
  }
  return part;
}

std::vector<double> part_loads(const std::vector<double>& weights,
                               const std::vector<int>& part, int k) {
  std::vector<double> load(k, 0.0);
  for (std::size_t v = 0; v < weights.size(); ++v) load[part[v]] += weights[v];
  return load;
}

double load_uniformity(const std::vector<double>& weights,
                       const std::vector<int>& part, int k) {
  const auto load = part_loads(weights, part, k);
  const double total = std::accumulate(load.begin(), load.end(), 0.0);
  if (total <= 0.0) return 1.0;
  const double avg = total / k;
  return *std::max_element(load.begin(), load.end()) / avg;
}

double edge_cut(const Graph& graph, const std::vector<int>& part) {
  double cut = 0.0;
  for (int v = 0; v < graph.num_vertices(); ++v)
    for (const auto& [u, w] : graph.neighbors(v))
      if (u > v && part[u] != part[v]) cut += w;
  return cut;
}

}  // namespace antmoc::partition
