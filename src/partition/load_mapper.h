#pragma once

/// \file load_mapper.h
/// The three-level load-mapping strategy (paper §4.2, Fig. 5):
///   L1 — sub-geometries onto nodes via weighted graph partitioning;
///   L2 — a fused node's tracks onto its GPUs by azimuthal angle;
///   L3 — a GPU's 3D tracks onto CUs, sorted by segment count and dealt
///        round-robin.
/// Each level exposes both the balanced strategy and the "No balance"
/// baseline so §5.4's Fig. 10 (load uniformity vs. GPU count) can be
/// regenerated.

#include <vector>

#include "partition/graph.h"
#include "partition/partitioner.h"
#include "solver/decomposition.h"
#include "solver/event_sweep.h"

namespace antmoc::partition {

/// Per-domain/per-angle loads measured from an actual decomposed track
/// laydown (loads are predicted 3D-segment counts, the Eq. 4/6 proxy for
/// sweep cost).
struct DecompositionLoads {
  std::vector<double> domain_load;             ///< [domain]
  std::vector<std::vector<double>> azim_load;  ///< [domain][scalar azim]
  Graph graph{0};                              ///< L1 input graph
  long total_tracks_3d = 0;
  int num_azim_2 = 0;
  /// Per-segment cost factor applied to every load above, chosen by the
  /// sweep backend the decomposed ranks will run: the measured
  /// perf::otf_cost_ratio() for history (6.0 — the paper's hardcoded
  /// model — until a TrackManager calibration or a `track.otf_cost`
  /// override replaces it), perf::event_cost_ratio() for event (the flat
  /// event-array scan pays no per-sweep regeneration). Uniform across
  /// domains, so balance decisions are unchanged; absolute loads track
  /// reality.
  double cost_per_segment = 1.0;
};

/// Lays tracks in every domain of `decomp` and measures loads. `backend`
/// must match the `sweep.backend` the ranks will solve with, or absolute
/// loads carry the wrong per-segment price (see cost_per_segment).
DecompositionLoads measure_loads(const Geometry& geometry,
                                 const Decomposition& decomp, int num_azim,
                                 double azim_spacing, int num_polar,
                                 double z_spacing,
                                 SweepBackend backend = SweepBackend::kHistory);

/// L1: domains -> nodes. `balance` = graph partitioning; otherwise the
/// natural contiguous baseline.
std::vector<int> map_domains_to_nodes(const DecompositionLoads& loads,
                                      int num_nodes, bool balance);

/// L2: fuse each node's domains and split their tracks across the node's
/// GPUs by azimuthal angle (heaviest-angle-first onto the lightest GPU).
/// The `balance = false` baseline is the paper's OpenMOC-style mapping:
/// no fusion, each GPU takes a contiguous block of whole sub-geometries.
/// Returns per-GPU loads, flattened [node * gpus_per_node + g].
std::vector<double> map_azim_to_gpus(const DecompositionLoads& loads,
                                     const std::vector<int>& node_of_domain,
                                     int num_nodes, int gpus_per_node,
                                     bool balance);

/// Deterministic adopter election for survivor takeover (DESIGN.md §11).
/// `domain_load[d]` is the measured sweep cost of domain d, `host[d]` its
/// current host rank, `alive[r]` whether rank r survives, and
/// `capacity[r]` a relative speed factor (1.0 = nominal; loads are divided
/// by capacity when comparing). Orphaned domains (hosted by dead ranks)
/// are assigned heaviest-first (ties: lower domain id) onto the survivor
/// with the least effective load (ties: lower rank). Pure function of its
/// arguments, so every survivor computes the identical assignment from the
/// agreed dead set without further communication. Returns (domain,
/// adopter) pairs sorted by domain id.
std::vector<std::pair<int, int>> elect_adopters(
    const std::vector<double>& domain_load, const std::vector<int>& host,
    const std::vector<char>& alive, const std::vector<double>& capacity);

/// L3: CU-level load uniformity (MAX/AVG) for a set of per-track costs
/// mapped onto `num_cus` CUs: sorted + round-robin when `balance`,
/// natural order in contiguous blocks otherwise.
double cu_uniformity(std::vector<double> track_costs, int num_cus,
                     bool balance);

}  // namespace antmoc::partition
