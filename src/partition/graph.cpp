#include "partition/graph.h"

namespace antmoc::partition {

void Graph::add_edge(int u, int v, double w) {
  require(u >= 0 && u < num_vertices() && v >= 0 && v < num_vertices(),
          "edge endpoint out of range");
  require(u != v, "self-loops are not allowed");
  for (auto& [n, weight] : adj_[u])
    if (n == v) {
      weight += w;
      for (auto& [m, weight2] : adj_[v])
        if (m == u) weight2 += w;
      return;
    }
  adj_[u].emplace_back(v, w);
  adj_[v].emplace_back(u, w);
}

double Graph::total_weight() const {
  double total = 0.0;
  for (double w : weights_) total += w;
  return total;
}

}  // namespace antmoc::partition
