#include "partition/load_mapper.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "perfmodel/perfmodel.h"
#include "perfmodel/sweep_costs.h"
#include "track/generator2d.h"
#include "util/error.h"

namespace antmoc::partition {

DecompositionLoads measure_loads(const Geometry& geometry,
                                 const Decomposition& decomp, int num_azim,
                                 double azim_spacing, int num_polar,
                                 double z_spacing, SweepBackend backend) {
  const int d_count = decomp.num_domains();
  DecompositionLoads loads;
  loads.domain_load.assign(d_count, 0.0);
  loads.azim_load.assign(d_count, {});
  loads.graph = Graph(d_count);
  loads.num_azim_2 = num_azim / 2;
  // Decomposed sweeps run their tracks temporary (OTF/Managed at scale),
  // so each predicted segment is priced at the measured regeneration
  // ratio instead of the paper's hardcoded 6.0 — unless the ranks sweep
  // event-based, where the flatten pre-pays regeneration and every
  // segment costs the uniform flat-array scan.
  loads.cost_per_segment = backend == SweepBackend::kEvent
                               ? perf::event_cost_ratio()
                               : perf::otf_cost_ratio();

  for (int d = 0; d < d_count; ++d) {
    const Bounds b = decomp.domain_bounds(geometry.bounds(), d);
    const Quadrature quad(num_azim, azim_spacing, b.width_x(), b.width_y(),
                          num_polar);
    TrackGenerator2D gen(quad, b, decomp.radial_kinds(geometry, d));
    gen.trace(geometry);

    // Every point of a 2D track is covered by exactly wz/dz up-going and
    // wz/dz down-going 3D tracks per polar angle, so the 3D segment count
    // of the domain is ~ 2 * (wz/dz) * num_polar * (2D segments) — the
    // Eq. 4 proxy this level balances on.
    const double wz = b.width_z();
    const long n = std::max(1L, std::lround(wz / z_spacing));
    const double stack_factor = 2.0 * static_cast<double>(n) * num_polar;

    auto& per_azim = loads.azim_load[d];
    per_azim.assign(quad.num_azim_2(), 0.0);
    for (const auto& track : gen.tracks())
      per_azim[track.azim] += loads.cost_per_segment * stack_factor *
                              static_cast<double>(track.segments.size());
    loads.domain_load[d] =
        std::accumulate(per_azim.begin(), per_azim.end(), 0.0);
    loads.graph.set_weight(d, loads.domain_load[d]);
    loads.total_tracks_3d +=
        perf::predict_num_tracks_3d(gen, b.z_min, b.z_max, z_spacing);
  }

  // Edges: interface area between neighboring domains (proportional to
  // the crossing-flux communication volume).
  for (int d = 0; d < d_count; ++d) {
    const Bounds b = decomp.domain_bounds(geometry.bounds(), d);
    for (Face f : {Face::kXMax, Face::kYMax, Face::kZMax}) {
      const int nbr = decomp.neighbor(d, f);
      if (nbr < 0) continue;
      double area = 0.0;
      switch (f) {
        case Face::kXMax: area = b.width_y() * b.width_z(); break;
        case Face::kYMax: area = b.width_x() * b.width_z(); break;
        default: area = b.width_x() * b.width_y(); break;
      }
      loads.graph.add_edge(d, nbr, area);
    }
  }
  return loads;
}

std::vector<int> map_domains_to_nodes(const DecompositionLoads& loads,
                                      int num_nodes, bool balance) {
  if (!balance)
    return partition_blocks(
        static_cast<int>(loads.domain_load.size()), num_nodes);
  return partition_kway(loads.graph, num_nodes);
}

std::vector<double> map_azim_to_gpus(const DecompositionLoads& loads,
                                     const std::vector<int>& node_of_domain,
                                     int num_nodes, int gpus_per_node,
                                     bool balance) {
  require(gpus_per_node >= 1, "need at least one GPU per node");
  const int n_azim = loads.num_azim_2;
  std::vector<double> gpu_load(
      static_cast<std::size_t>(num_nodes) * gpus_per_node, 0.0);

  std::vector<double> node_azim(n_azim);
  for (int node = 0; node < num_nodes; ++node) {
    std::fill(node_azim.begin(), node_azim.end(), 0.0);
    for (std::size_t d = 0; d < node_of_domain.size(); ++d)
      if (node_of_domain[d] == node)
        for (int a = 0; a < n_azim; ++a)
          node_azim[a] += loads.azim_load[d][a];

    double* gpus = gpu_load.data() +
                   static_cast<std::size_t>(node) * gpus_per_node;
    if (balance) {
      // Heaviest angle first onto the currently lightest GPU.
      std::vector<int> order(n_azim);
      std::iota(order.begin(), order.end(), 0);
      std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
        return node_azim[a] > node_azim[b];
      });
      for (int a : order) {
        int lightest = 0;
        for (int g = 1; g < gpus_per_node; ++g)
          if (gpus[g] < gpus[lightest]) lightest = g;
        gpus[lightest] += node_azim[a];
      }
    } else {
      // Baseline (the paper's "No balance" / OpenMOC-style mapping): no
      // geometry fusion — each GPU takes a contiguous block of whole
      // sub-geometries, so granularity is one domain.
      std::vector<int> mine;
      for (std::size_t d = 0; d < node_of_domain.size(); ++d)
        if (node_of_domain[d] == node) mine.push_back(static_cast<int>(d));
      const int per = (static_cast<int>(mine.size()) + gpus_per_node - 1) /
                      gpus_per_node;
      for (std::size_t i = 0; i < mine.size(); ++i) {
        const int g = std::min(static_cast<int>(i) / std::max(1, per),
                               gpus_per_node - 1);
        gpus[g] += loads.domain_load[mine[i]];
      }
      (void)node_azim;
    }
  }
  return gpu_load;
}

std::vector<std::pair<int, int>> elect_adopters(
    const std::vector<double>& domain_load, const std::vector<int>& host,
    const std::vector<char>& alive, const std::vector<double>& capacity) {
  const int nd = static_cast<int>(domain_load.size());
  const int nr = static_cast<int>(alive.size());
  require(static_cast<int>(host.size()) == nd,
          "elect_adopters: host table size mismatch");
  require(static_cast<int>(capacity.size()) == nr,
          "elect_adopters: capacity table size mismatch");

  // Effective load carried by each survivor, counting domains it already
  // hosts; capacity scales how much a unit of load costs on that rank.
  std::vector<double> effective(nr, 0.0);
  std::vector<int> orphans;
  for (int d = 0; d < nd; ++d) {
    const int h = host[d];
    require(h >= 0 && h < nr, "elect_adopters: host rank out of range");
    if (alive[h]) {
      effective[h] += domain_load[d] / std::max(capacity[h], 1e-12);
    } else {
      orphans.push_back(d);
    }
  }

  // Heaviest orphan first; ties broken by lower domain id for determinism.
  std::stable_sort(orphans.begin(), orphans.end(), [&](int a, int b) {
    return domain_load[a] > domain_load[b];
  });

  std::vector<std::pair<int, int>> assignment;
  assignment.reserve(orphans.size());
  for (int d : orphans) {
    int best = -1;
    for (int r = 0; r < nr; ++r) {
      if (!alive[r]) continue;
      if (best < 0 || effective[r] < effective[best]) best = r;
    }
    require(best >= 0, "elect_adopters: no surviving ranks");
    effective[best] += domain_load[d] / std::max(capacity[best], 1e-12);
    assignment.emplace_back(d, best);
  }
  std::sort(assignment.begin(), assignment.end());
  return assignment;
}

double cu_uniformity(std::vector<double> track_costs, int num_cus,
                     bool balance) {
  require(num_cus >= 1, "need at least one CU");
  std::vector<double> cu(num_cus, 0.0);
  if (balance) {
    std::stable_sort(track_costs.begin(), track_costs.end(),
                     std::greater<double>());
    for (std::size_t i = 0; i < track_costs.size(); ++i)
      cu[i % num_cus] += track_costs[i];
  } else {
    const std::size_t chunk =
        (track_costs.size() + num_cus - 1) / num_cus;
    for (std::size_t i = 0; i < track_costs.size(); ++i)
      cu[std::min(i / chunk, static_cast<std::size_t>(num_cus) - 1)] +=
          track_costs[i];
  }
  const double total = std::accumulate(cu.begin(), cu.end(), 0.0);
  if (total <= 0.0) return 1.0;
  return *std::max_element(cu.begin(), cu.end()) / (total / num_cus);
}

}  // namespace antmoc::partition
