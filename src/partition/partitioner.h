#pragma once

/// \file partitioner.h
/// Balanced k-way graph partitioning — the ParMETIS role in the paper's
/// L1 mapping (§4.2.1): sub-geometries (vertices weighted by predicted
/// load) are grouped onto compute nodes so that per-node loads even out
/// while cut communication stays low.
///
/// Algorithm: greedy heaviest-first seeding onto the least-loaded part
/// (with an affinity bonus toward parts already holding neighbors),
/// followed by Kernighan–Lin-style single-vertex refinement moves that
/// reduce the maximum part load, tie-broken by edge cut.

#include <vector>

#include "partition/graph.h"

namespace antmoc::partition {

struct PartitionOptions {
  int refine_passes = 256;
  /// Edge-affinity bonus weight during seeding, relative to the mean
  /// vertex weight.
  double affinity = 0.25;
};

/// Returns part[v] in [0, k). Deterministic.
std::vector<int> partition_kway(const Graph& graph, int k,
                                const PartitionOptions& options = {});

/// Contiguous block assignment (the "No balance" baseline of §5.4:
/// domains in natural grid order, equal counts per part).
std::vector<int> partition_blocks(int num_vertices, int k);

/// MAX/AVG of per-part loads (paper's load uniformity index, >= 1).
double load_uniformity(const std::vector<double>& weights,
                       const std::vector<int>& part, int k);

/// Sum of edge weights crossing parts.
double edge_cut(const Graph& graph, const std::vector<int>& part);

/// Per-part total loads.
std::vector<double> part_loads(const std::vector<double>& weights,
                               const std::vector<int>& part, int k);

}  // namespace antmoc::partition
