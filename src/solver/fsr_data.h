#pragma once

/// \file fsr_data.h
/// Per-flat-source-region state of the transport solve: cross sections
/// expanded per FSR, scalar fluxes, reduced sources, and the sweep
/// accumulators (paper §3.2.3 source computation).

#include <vector>

#include "geometry/geometry.h"
#include "material/material.h"

namespace antmoc::util {
class Parallel;
}

namespace antmoc {

class FsrData {
 public:
  FsrData(const Geometry& geometry, const std::vector<Material>& materials);

  long num_fsrs() const { return num_fsrs_; }
  int num_groups() const { return num_groups_; }

  /// Track-based FSR volumes (must be set before the first closure).
  void set_volumes(std::vector<double> volumes);
  const std::vector<double>& volumes() const { return volumes_; }

  const std::vector<double>& scalar_flux() const { return flux_; }
  double flux(long fsr, int g) const { return flux_[fsr * num_groups_ + g]; }

  /// Mutable flux access for in-place rescaling (CMFD prolongation).
  std::vector<double>& scalar_flux_mut() { return flux_; }

  int material_id(long fsr) const { return material_of_[fsr]; }
  const Material& material(long fsr) const {
    return (*materials_)[material_of_[fsr]];
  }

  /// Replaces the scalar flux wholesale (checkpoint restore).
  void set_scalar_flux(std::vector<double> flux);

  double sigma_t(long fsr, int g) const {
    return sigma_t_[fsr * num_groups_ + g];
  }
  const std::vector<double>& sigma_t_flat() const { return sigma_t_; }

  /// Reduced source divided by sigma_t: the quantity the sweep kernel
  /// subtracts from the angular flux, qos = q/(sigma_t), with
  /// q = (1/4pi) * [scatter + chi * fission / k].
  const std::vector<double>& q_over_sigma_t() const { return qos_; }

  /// The sweep accumulator Sum_k w_k * A_k * dpsi_k per (fsr, group).
  std::vector<double>& accumulator() { return accum_; }
  const std::vector<double>& accumulator() const { return accum_; }
  void zero_accumulator();

  /// Recomputes the reduced source from the current flux and k
  /// (eigenvalue mode: scatter + chi*fission/k).
  void update_source(double k);

  /// Recomputes the reduced source for a fixed-source problem:
  /// scatter + chi*fission (at k=1) + the external isotropic source
  /// (per cm^3 s; empty disables). Used by the fixed-source solve mode.
  void update_source_fixed(const std::vector<double>& external);

  /// Closes the scalar flux from the sweep accumulator:
  ///   phi = 4pi * qos + accum / (sigma_t * V).
  /// FSRs with no tracked volume keep the source-only term.
  void close_scalar_flux();

  /// Total fission production Sum_r V_r * Sum_g nuSigmaF phi.
  double fission_production() const;

  /// Per-FSR fission rate density Sum_g SigmaF * phi (for output and the
  /// §5.1 pin-power comparison).
  std::vector<double> fission_rate() const;

  /// RMS relative change of the per-FSR fission source since the last call
  /// (first call returns a large number). Matches the paper's "flux
  /// residual below a threshold" convergence test.
  double fission_source_residual();

  /// Scales flux by `factor` (used with boundary fluxes to normalize the
  /// eigenvector each power iteration).
  void scale_flux(double factor);

  /// Sets all fluxes to `value` (initial guess).
  void fill_flux(double value);

  /// Attaches a fork-join pool used to parallelize the per-FSR loops
  /// (source update, flux closure, scaling). All of them are elementwise
  /// per FSR, so the parallel results are bitwise identical to serial.
  /// nullptr (the default) keeps the loops serial. The pool must outlive
  /// this object's use of it.
  void set_parallel(util::Parallel* par) { par_ = par; }

 private:
  /// Runs f(r) over all FSRs, parallel when a pool is attached.
  template <class F>
  void for_fsrs(F&& f) const;

  util::Parallel* par_ = nullptr;

  const Geometry* geometry_;
  const std::vector<Material>* materials_;
  long num_fsrs_;
  int num_groups_;

  std::vector<int> material_of_;  ///< material id per FSR
  std::vector<double> sigma_t_;   ///< [fsr*G]
  std::vector<double> volumes_;
  std::vector<double> flux_, qos_, accum_;
  std::vector<double> old_fission_;
};

}  // namespace antmoc
