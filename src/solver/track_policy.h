#pragma once

/// \file track_policy.h
/// The paper's track management strategy (§4.1): how 3D segments are kept.
///
///  * kExplicit (EXP): every 3D segment is materialized and stored —
///    fastest sweeps, but memory grows with the track count until it hits
///    the device capacity (Fig. 9's EXP series dies at scale).
///  * kOnTheFly (OTF): nothing stored; every sweep regenerates segments by
///    axial ray tracing — minimal memory, ~6x the kernel work (the paper
///    measures the regeneration kernel at 5x the source kernel). With a
///    ChordTemplateCache attached, template-eligible tracks expand from
///    precomputed per-stack chord templates at a fraction of that cost.
///  * kManaged (Manager): tracks are ranked by the regeneration work their
///    storage would save, and the most expensive tracks' segments are
///    stored up to a memory threshold; the rest stay OTF. With templates,
///    "store heaviest" becomes "store heaviest *non-templated*": a
///    template-covered track saves little by being stored, so the budget
///    goes to the tracks that still pay the full generic-walk tax.
///
/// Per-segment cost ratios come from perf::sweep_costs() — the paper's
/// {1, 6} model by default, replaced once per process by a startup
/// micro-calibration (timed on a sample of this geometry's real tracks)
/// unless pinned by the `track.otf_cost` knob or perf::set_sweep_costs().

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "gpusim/device.h"
#include "perfmodel/layout.h"
#include "perfmodel/sweep_costs.h"
#include "track/chord_template.h"
#include "track/track3d.h"

namespace antmoc {

enum class TrackPolicy { kExplicit, kOnTheFly, kManaged };

/// `track.storage` knob (DESIGN.md §15): exact keeps the AoS Segment3D
/// resident store (16 B/segment, bitwise-reproducible); compact keeps a
/// SoA int32-FSR + fp32-chord pair (8 B/segment) and rounds every chord
/// once to fp32 while all attenuation and tally arithmetic stays fp64.
using TrackStorage = perf::TrackStorage;

/// Parses "exact" / "compact"; throws antmoc::Error on anything else.
TrackStorage parse_track_storage(const std::string& name);

/// "exact" / "compact".
const char* track_storage_name(TrackStorage storage);

/// Process-wide default: ANTMOC_TRACK_STORAGE env var when set (and
/// valid), else kExact.
TrackStorage default_track_storage();

/// Compact storage routes every temporary track through the fp32-rounded
/// generic walk and deactivates chord-template dispatch (one rounding
/// point per chord); `track.templates = force` demands templates, so the
/// combination is a contradiction. Throws antmoc::Error naming both keys.
void require_compact_storage_compatible(TrackStorage storage,
                                        TemplateMode templates);

class TrackManager {
 public:
  /// \param stacks  the 3D track index.
  /// \param policy  storage policy.
  /// \param device  when non-null, resident segment storage is charged to
  ///        the device memory arena under "3d_segments" (kExplicit throws
  ///        DeviceOutOfMemory if the device cannot hold all segments —
  ///        exactly the paper's EXP failure mode).
  /// \param resident_budget_bytes  memory threshold for kManaged (the
  ///        paper uses 6.144 GB on a 16 GB MI60); ignored by other
  ///        policies.
  /// \param templates  optional chord-template cache (not owned; must
  ///        outlive the manager). Segment counts are reused from it, the
  ///        Managed ranking treats covered tracks as cheap, and
  ///        track_cost() prices them at the template ratio. Compact
  ///        storage deactivates template dispatch (counts are still
  ///        reused); kForce callers must reject the combination first
  ///        via require_compact_storage_compatible().
  /// \param storage  resident-store layout (`track.storage`): kExact is
  ///        the 16 B/segment AoS store, kCompact the 8 B/segment SoA
  ///        int32+fp32 store (charged at perf::kSegment3DCompactBytes, so
  ///        the Managed budget packs ~2x the segments).
  TrackManager(const TrackStacks& stacks, TrackPolicy policy,
               gpusim::Device* device, std::size_t resident_budget_bytes,
               const ChordTemplateCache* templates = nullptr,
               TrackStorage storage = TrackStorage::kExact);
  ~TrackManager();

  TrackManager(const TrackManager&) = delete;
  TrackManager& operator=(const TrackManager&) = delete;

  TrackPolicy policy() const { return policy_; }
  TrackStorage storage() const { return storage_mode_; }

  bool resident(long id) const { return offset_[id] >= 0; }

  /// True when `id` is temporary but expands from a chord template.
  bool templated(long id) const {
    return templates_active_ && offset_[id] < 0 && templates_->eligible(id);
  }

  /// Stored segments of a resident track (nullptr for temporary tracks).
  /// Exact storage only: the compact SoA store has no Segment3D records,
  /// so this returns nullptr there — replay through
  /// for_each_resident_segment() instead.
  const Segment3D* segments(long id, long& count) const {
    if (storage_mode_ != TrackStorage::kExact || offset_[id] < 0) {
      count = 0;
      return nullptr;
    }
    count = counts_[id];
    return storage_.data() + offset_[id];
  }

  /// Replays the stored segments of a resident track through
  /// `f(fsr, length)` — reversed when `forward` is false, exactly like
  /// the device sweep's backward replay — dispatching on the storage
  /// mode (compact chords widen fp32 -> fp64 losslessly). Returns false
  /// for temporary tracks: the caller falls back to template expansion
  /// or the generic OTF walk.
  template <class F>
  bool for_each_resident_segment(long id, bool forward, F&& f) const {
    const long off = offset_[id];
    if (off < 0) return false;
    const long count = counts_[id];
    if (storage_mode_ == TrackStorage::kCompact) {
      const std::int32_t* fsr = fsr32_.data() + off;
      const float* len = len32_.data() + off;
      if (forward)
        for (long s = 0; s < count; ++s)
          f(static_cast<long>(fsr[s]), static_cast<double>(len[s]));
      else
        for (long s = count - 1; s >= 0; --s)
          f(static_cast<long>(fsr[s]), static_cast<double>(len[s]));
    } else {
      const Segment3D* segs = storage_.data() + off;
      if (forward)
        for (long s = 0; s < count; ++s) f(segs[s].fsr, segs[s].length);
      else
        for (long s = count - 1; s >= 0; --s) f(segs[s].fsr, segs[s].length);
    }
    return true;
  }

  /// 3D segment count per track (computed for every track regardless of
  /// residency; also feeds the L3 sort and the performance model).
  const std::vector<long>& segment_counts() const { return counts_; }

  long num_resident() const { return num_resident_; }
  double resident_fraction() const {
    return counts_.empty() ? 0.0
                           : static_cast<double>(num_resident_) /
                                 static_cast<double>(counts_.size());
  }
  /// Resident segments stored (either layout).
  long resident_segments() const { return resident_segments_; }
  std::size_t resident_bytes() const {
    return static_cast<std::size_t>(resident_segments_) *
           perf::segment3d_bytes(storage_mode_);
  }
  long total_segments() const { return total_segments_; }

  /// Segment-weighted fraction of temporary tracks covered by templates
  /// (0 when templates are absent or deactivated) — the perf model's
  /// `templated_fraction` input.
  double templated_fraction() const {
    return templates_active_ && total_segments_ > 0
               ? static_cast<double>(templated_segments_) /
                     static_cast<double>(total_segments_)
               : 0.0;
  }

  /// The template cache the sweep should dispatch through, or nullptr
  /// when none is attached / it was deactivated (arena OOM fallback).
  const ChordTemplateCache* templates() const {
    return templates_active_ ? templates_ : nullptr;
  }
  /// Arena-OOM fallback hook: deactivating keeps the cache alive but
  /// routes every temporary track through the generic walk again (and
  /// reprices track_cost accordingly).
  void set_templates_active(bool active) {
    templates_active_ = active && templates_ != nullptr;
  }
  bool templates_active() const { return templates_active_; }

  /// Cost ratios snapshot taken at construction (post-calibration).
  const perf::SweepCosts& costs() const { return costs_; }

  /// Relative sweep cost of one track under this policy (for the device
  /// cycle model and the cluster simulator).
  double track_cost(long id) const {
    const double per_segment = offset_[id] >= 0 ? costs_.resident
                               : templated(id)  ? costs_.templated
                                                : costs_.otf;
    return static_cast<double>(counts_[id]) * per_segment;
  }

 private:
  TrackPolicy policy_;
  TrackStorage storage_mode_ = TrackStorage::kExact;
  gpusim::Device* device_;
  const ChordTemplateCache* templates_;
  bool templates_active_ = false;
  perf::SweepCosts costs_;
  std::vector<long> counts_;
  std::vector<long> offset_;  ///< -1 for temporary tracks
  std::vector<Segment3D> storage_;          ///< exact resident store (AoS)
  std::vector<std::int32_t> fsr32_;         ///< compact resident FSR lane
  std::vector<float> len32_;                ///< compact resident chord lane
  long num_resident_ = 0;
  long resident_segments_ = 0;
  long total_segments_ = 0;
  long templated_segments_ = 0;
};

}  // namespace antmoc
