#pragma once

/// \file track_policy.h
/// The paper's track management strategy (§4.1): how 3D segments are kept.
///
///  * kExplicit (EXP): every 3D segment is materialized and stored —
///    fastest sweeps, but memory grows with the track count until it hits
///    the device capacity (Fig. 9's EXP series dies at scale).
///  * kOnTheFly (OTF): nothing stored; every sweep regenerates segments by
///    axial ray tracing — minimal memory, ~6x the kernel work (the paper
///    measures the regeneration kernel at 5x the source kernel).
///  * kManaged (Manager): tracks are ranked by segment count, and the
///    heaviest tracks' segments are stored up to a memory threshold;
///    the rest stay OTF. This is the paper's contribution: it recovers
///    ~30% of the OTF overhead at bounded memory.

#include <cstddef>
#include <vector>

#include "gpusim/device.h"
#include "track/track3d.h"

namespace antmoc {

enum class TrackPolicy { kExplicit, kOnTheFly, kManaged };

/// Relative kernel cost of sweeping one stored segment (baseline 1.0) vs
/// regenerating + sweeping one OTF segment. The paper reports the OTF
/// track-generation kernel is ~5x the source-computation kernel, so a
/// temporary segment costs 1 (sweep) + 5 (regeneration) = 6 units.
inline constexpr double kSweepCostPerSegment = 1.0;
inline constexpr double kOtfCostPerSegment = 6.0;

class TrackManager {
 public:
  /// \param stacks  the 3D track index.
  /// \param policy  storage policy.
  /// \param device  when non-null, resident segment storage is charged to
  ///        the device memory arena under "3d_segments" (kExplicit throws
  ///        DeviceOutOfMemory if the device cannot hold all segments —
  ///        exactly the paper's EXP failure mode).
  /// \param resident_budget_bytes  memory threshold for kManaged (the
  ///        paper uses 6.144 GB on a 16 GB MI60); ignored by other
  ///        policies.
  TrackManager(const TrackStacks& stacks, TrackPolicy policy,
               gpusim::Device* device, std::size_t resident_budget_bytes);
  ~TrackManager();

  TrackManager(const TrackManager&) = delete;
  TrackManager& operator=(const TrackManager&) = delete;

  TrackPolicy policy() const { return policy_; }

  bool resident(long id) const { return offset_[id] >= 0; }

  /// Stored segments of a resident track (nullptr for temporary tracks).
  const Segment3D* segments(long id, long& count) const {
    if (offset_[id] < 0) {
      count = 0;
      return nullptr;
    }
    count = counts_[id];
    return storage_.data() + offset_[id];
  }

  /// 3D segment count per track (computed for every track regardless of
  /// residency; also feeds the L3 sort and the performance model).
  const std::vector<long>& segment_counts() const { return counts_; }

  long num_resident() const { return num_resident_; }
  double resident_fraction() const {
    return storage_.empty() && counts_.empty()
               ? 0.0
               : static_cast<double>(num_resident_) /
                     static_cast<double>(counts_.size());
  }
  std::size_t resident_bytes() const {
    return storage_.size() * sizeof(Segment3D);
  }
  long total_segments() const { return total_segments_; }

  /// Relative sweep cost of one track under this policy (for the device
  /// cycle model and the cluster simulator).
  double track_cost(long id) const {
    return static_cast<double>(counts_[id]) *
           (resident(id) ? kSweepCostPerSegment : kOtfCostPerSegment);
  }

 private:
  TrackPolicy policy_;
  gpusim::Device* device_;
  std::vector<long> counts_;
  std::vector<long> offset_;  ///< -1 for temporary tracks
  std::vector<Segment3D> storage_;
  long num_resident_ = 0;
  long total_segments_ = 0;
};

}  // namespace antmoc
