#include "solver/tallies.h"

#include <algorithm>

#include "util/error.h"

namespace antmoc::tallies {
namespace {

double micro_rate(const Material& m, const double* phi, Reaction reaction) {
  double rate = 0.0;
  for (int g = 0; g < m.num_groups(); ++g) {
    double sigma = 0.0;
    switch (reaction) {
      case Reaction::kFission: sigma = m.sigma_f(g); break;
      case Reaction::kNuFission: sigma = m.nu_sigma_f(g); break;
      case Reaction::kAbsorption: sigma = m.sigma_a(g); break;
      case Reaction::kTotal: sigma = m.sigma_t(g); break;
    }
    rate += sigma * phi[g];
  }
  return rate;
}

void check_sizes(const Geometry& g, const std::vector<double>& flux,
                 const std::vector<double>& volumes, int num_groups) {
  require(static_cast<long>(volumes.size()) == g.num_fsrs(),
          "tallies: volume array size mismatch");
  require(static_cast<long>(flux.size()) == g.num_fsrs() * num_groups,
          "tallies: flux array size mismatch");
}

}  // namespace

std::vector<double> rate_by_material(const Geometry& geometry,
                                     const std::vector<Material>& materials,
                                     const std::vector<double>& flux,
                                     const std::vector<double>& volumes,
                                     Reaction reaction) {
  const int G = materials.front().num_groups();
  check_sizes(geometry, flux, volumes, G);
  std::vector<double> rate(materials.size(), 0.0);
  for (long r = 0; r < geometry.num_fsrs(); ++r) {
    const int m = geometry.fsr_material(r);
    rate[m] += volumes[r] *
               micro_rate(materials[m], &flux[r * G], reaction);
  }
  return rate;
}

double total_rate(const Geometry& geometry,
                  const std::vector<Material>& materials,
                  const std::vector<double>& flux,
                  const std::vector<double>& volumes, Reaction reaction) {
  double total = 0.0;
  for (double v :
       rate_by_material(geometry, materials, flux, volumes, reaction))
    total += v;
  return total;
}

std::vector<double> axial_power_profile(
    const Geometry& geometry, const std::vector<double>& fission_rate,
    const std::vector<double>& volumes) {
  require(static_cast<long>(fission_rate.size()) == geometry.num_fsrs(),
          "tallies: fission_rate size mismatch");
  const int layers = geometry.num_axial_layers();
  std::vector<double> power(layers, 0.0);
  for (long r = 0; r < geometry.num_fsrs(); ++r)
    power[geometry.fsr_layer(r)] += fission_rate[r] * volumes[r];

  double fueled_sum = 0.0;
  int fueled = 0;
  for (double p : power)
    if (p > 0.0) {
      fueled_sum += p;
      ++fueled;
    }
  if (fueled > 0) {
    const double mean = fueled_sum / fueled;
    for (auto& p : power) p /= mean;
  }
  return power;
}

std::vector<double> radial_power_map(const Geometry& geometry,
                                     const std::vector<double>& fission_rate,
                                     const std::vector<double>& volumes,
                                     int nx, int ny) {
  require(nx >= 1 && ny >= 1, "tallies: power map needs a positive grid");
  require(static_cast<long>(fission_rate.size()) == geometry.num_fsrs(),
          "tallies: fission_rate size mismatch");
  const Bounds& b = geometry.bounds();
  const double px = b.width_x() / nx;
  const double py = b.width_y() / ny;

  // Tile power via sampled fuel columns: every radial region is sampled
  // on a sub-pin grid so a tile accumulates all its regions.
  std::vector<double> power(static_cast<std::size_t>(nx) * ny, 0.0);
  std::vector<char> seen(geometry.num_radial_regions(), 0);
  const int samples = 8;
  for (int j = 0; j < ny; ++j)
    for (int i = 0; i < nx; ++i)
      for (int sj = 0; sj < samples; ++sj)
        for (int si = 0; si < samples; ++si) {
          const Point2 p{b.x_min + (i + (si + 0.5) / samples) * px,
                         b.y_min + (j + (sj + 0.5) / samples) * py};
          const int region = geometry.find_radial(p).region;
          if (seen[region]) continue;
          seen[region] = 1;
          double column = 0.0;
          for (int l = 0; l < geometry.num_axial_layers(); ++l) {
            const long fsr = geometry.fsr_id(region, l);
            column += fission_rate[fsr] * volumes[fsr];
          }
          power[static_cast<std::size_t>(j) * nx + i] += column;
        }
  return power;
}

double peaking_factor(const std::vector<double>& power) {
  double sum = 0.0, peak = 0.0;
  int count = 0;
  for (double p : power)
    if (p > 0.0) {
      sum += p;
      peak = std::max(peak, p);
      ++count;
    }
  if (count == 0 || sum <= 0.0) return 0.0;
  return peak / (sum / count);
}

}  // namespace antmoc::tallies
