#pragma once

/// \file event_sweep.h
/// Event-based transport-sweep backend (`sweep.backend = event`).
///
/// The history backend walks each 3D track segment by segment through a
/// per-segment lambda (OTF regeneration or chord-template expansion),
/// which defeats vectorization and interleaves index arithmetic with the
/// attenuation math. The event backend — the MC/DC-style event-processing
/// idea applied to MOC — flattens every sweep into contiguous per-sweep
/// event arrays built ONCE per solve:
///
///   per event (= one 3D segment in sweep order):
///     base[e]   : fsr * num_groups, the precomputed index into the
///                 group-major sigma_t / q_over_sigma_t tables (and the
///                 ExpTable argument precursor: tau_g = sigma_t[base+g]*len)
///     length[e] : true 3D chord length (double — bitwise identity)
///
/// with a per-(track, direction) [first, count) range table. Both sweep
/// directions are materialized in their own sweep order, so the kernel is
/// always an ascending scan over flat SoA arrays.
///
/// The kernel processes events in fixed batches of kEventBatch. Each batch
/// runs two stages:
///   1. tau + attenuation factors for all (event, group) lanes of the
///      batch — branch-free, independent lanes, `#pragma omp simd`
///      vectorized over the interleaved (value, slope) ExpTable fma pairs;
///   2. the serial angular-flux recurrence per event, with the 7-group
///      inner loop SIMD-vectorized (groups are independent lanes).
///
/// Because the attenuation factor does not depend on psi, splitting it out
/// changes no per-(segment, group) floating-point operation or operand:
/// the backend is bitwise identical to the history sweep for a fixed
/// worker count (conformance-tested in tests/event_sweep_test.cpp). The
/// per-worker private-tally / staged-deposit discipline of the parallel
/// sweep is reused unchanged.
///
/// Device solvers charge `EventArrays::bytes()` to their arena under
/// "event_arrays"; on DeviceOutOfMemory the solver silently falls back to
/// the history backend (mirroring the `track.templates` kAuto fallback).

#include <cstdint>
#include <string>
#include <vector>

#include "perfmodel/layout.h"
#include "solver/exponential.h"
#include "track/chord_template.h"
#include "track/track3d.h"

namespace antmoc {

class TrackManager;

/// See solver/track_policy.h for the knob plumbing; the enum itself lives
/// in perf/layout.h so the memory model prices both lane widths.
using TrackStorage = perf::TrackStorage;

namespace util {
class Parallel;
}

/// `sweep.backend` knob (CpuSolver and GpuSolver).
enum class SweepBackend { kHistory, kEvent };

/// Parses "history" / "event"; throws antmoc::Error on anything else.
SweepBackend parse_sweep_backend(const std::string& name);

/// "history" / "event".
const char* sweep_backend_name(SweepBackend backend);

/// Process-wide default: ANTMOC_SWEEP_BACKEND env var when set (and
/// valid), else kHistory.
SweepBackend default_sweep_backend();

/// Fixed event-batch size of the two-stage kernel. 64 events x 7 groups
/// keeps both stage buffers (tau, ex) inside L1 while amortizing the
/// batch loop overhead.
inline constexpr int kEventBatch = 64;

/// Flat per-sweep event arrays — one entry per (3D segment, direction),
/// both directions materialized in sweep order.
///
/// Built from the same dispatch the history sweep uses (resident-segment
/// replay when a TrackManager is supplied and holds the track, else
/// chord-template expansion when a cache is supplied and the track is
/// eligible, else the generic OTF walk), so the stored (fsr, length)
/// stream is bitwise identical to what the history backend would apply
/// per sweep. Residency matters for the backward direction: the history
/// device sweep replays a resident track backward as the REVERSED stored
/// forward walk, which differs in final bits from the backward OTF walk
/// (the scan runs from the other end), so a device flatten must mirror
/// the manager's per-track choice to stay bitwise.
///
/// Immutability contract: fully built by the constructor, const-only
/// afterwards — shareable across sweep workers, devices, and concurrent
/// engine jobs without synchronization (like TrackInfoCache).
class EventArrays {
 public:
  /// \param par      optional fork-join pool for the fill pass (each track
  ///                 writes a disjoint range, so the build is race-free and
  ///                 its output independent of the worker count).
  /// \param manager  optional device track manager: resident tracks replay
  ///                 their stored segments (reversed when backward),
  ///                 matching the history device sweep bit for bit.
  /// \param storage  chord-lane width (`track.storage`): kExact keeps the
  ///                 fp64 lane, kCompact a parallel fp32 lane (half the
  ///                 per-event chord bytes); stage-2 psi recurrence and
  ///                 all FSR tallies stay fp64 accumulation either way.
  EventArrays(const TrackStacks& stacks, const TrackInfoCache& info,
              const ChordTemplateCache* templates, int groups,
              util::Parallel* par = nullptr,
              const TrackManager* manager = nullptr,
              TrackStorage storage = TrackStorage::kExact);

  TrackStorage storage() const { return storage_; }

  long num_tracks() const {
    return static_cast<long>(first_.size() - 1) / 2;
  }
  /// Total events across all tracks and both directions.
  long num_events() const { return static_cast<long>(lengths_.size()); }

  /// First event of (track, direction) — dir 0 = forward, 1 = backward.
  long first(long id, int dir) const { return first_[id * 2 + dir]; }
  long count(long id, int dir) const {
    return first_[id * 2 + dir + 1] - first_[id * 2 + dir];
  }

  const std::int32_t* base() const { return base_.data(); }
  /// Exact (fp64) chord lane; empty under compact storage.
  const double* length() const { return lengths_.data(); }
  /// Compact (fp32) chord lane; empty under exact storage.
  const float* length32() const { return lengths32_.data(); }

  /// Stage-1 batches one full sweep issues (both directions) — the
  /// denominator of the solver.event_batch_fill occupancy gauge.
  long batches_per_sweep() const { return batches_per_sweep_; }

  /// Device-arena charge ("event_arrays") for a laydown over
  /// `total_segments` 3D segments of `num_tracks` tracks (both directions
  /// are materialized): perf::event_bytes(storage) per segment plus the
  /// per-(track, direction) range table. bytes() == bytes_for(...) for
  /// the built arrays.
  static std::size_t bytes_for(long total_segments, long num_tracks,
                               TrackStorage storage = TrackStorage::kExact) {
    return static_cast<std::size_t>(total_segments) *
               perf::event_bytes(storage) +
           static_cast<std::size_t>(2 * num_tracks + 1) * sizeof(long);
  }
  std::size_t bytes() const {
    return base_.size() * sizeof(std::int32_t) +
           lengths_.size() * sizeof(double) +
           lengths32_.size() * sizeof(float) + first_.size() * sizeof(long);
  }

 private:
  TrackStorage storage_ = TrackStorage::kExact;
  std::vector<long> first_;  ///< per (track, dir) cumulative event start
  std::vector<std::int32_t> base_;  ///< fsr * groups per event
  std::vector<double> lengths_;     ///< fp64 chord per event (exact)
  std::vector<float> lengths32_;    ///< fp32 chord per event (compact)
  long batches_per_sweep_ = 0;
};

/// Per-worker scratch of the two-stage kernel plus batch-occupancy
/// counters for the solver.event_batch_fill gauge.
struct EventSweepScratch {
  std::vector<double> tau;  ///< [kEventBatch * groups] stage-1 arguments
  std::vector<double> ex;   ///< [kEventBatch * groups] attenuation factors
  long events = 0;          ///< events processed since the last reset
  long batches = 0;         ///< stage-1 batches issued since the last reset

  void ensure(int groups) {
    const std::size_t len =
        static_cast<std::size_t>(kEventBatch) * static_cast<std::size_t>(groups);
    if (tau.size() < len) {
      tau.resize(len);
      ex.resize(len);
    }
  }
  void reset_counters() {
    events = 0;
    batches = 0;
  }
};

/// Two-stage event kernel over events [0, n) of one (track, direction):
/// updates the G-element angular flux `psi` in place and accumulates
/// w*delta into the private tally `acc` (indexed by base[e] + g).
/// `table == nullptr` evaluates the exact expm1 attenuation instead.
/// Bitwise identical to the history per-segment loop over the same
/// (fsr, length) stream.
void sweep_events(const std::int32_t* base, const double* length, long n,
                  const double* sigma_t, const double* qos, double w,
                  const ExpTable* table, int groups, double* psi,
                  double* acc, EventSweepScratch& scratch);

/// Compact-lane overload: stage 1 reads fp32 chords and widens each to
/// fp64 before the tau product, so every arithmetic operation — tau,
/// attenuation, psi recurrence, tallies — is still fp64; only the stored
/// chord is narrower (the NuDEAL-style single-precision-storage /
/// double-accumulation split).
void sweep_events(const std::int32_t* base, const float* length, long n,
                  const double* sigma_t, const double* qos, double w,
                  const ExpTable* table, int groups, double* psi,
                  double* acc, EventSweepScratch& scratch);

/// Atomic-tally variant for the device solver's non-privatized fallback:
/// tallies w*delta into the shared accumulator with device atomics.
void sweep_events_atomic(const std::int32_t* base, const double* length,
                         long n, const double* sigma_t, const double* qos,
                         double w, const ExpTable* table, int groups,
                         double* psi, double* accum,
                         EventSweepScratch& scratch);

/// Compact-lane overload of sweep_events_atomic.
void sweep_events_atomic(const std::int32_t* base, const float* length,
                         long n, const double* sigma_t, const double* qos,
                         double w, const ExpTable* table, int groups,
                         double* psi, double* accum,
                         EventSweepScratch& scratch);

}  // namespace antmoc
