#pragma once

/// \file gpu_solver.h
/// The device transport solver (paper §3.2): 3D tracks map to GPU threads
/// (Algorithm 1), FSR flux accumulation uses device atomics (§3.2.3), and
/// segment storage follows the track-management policy (§4.1). Device
/// memory for every major vector of Table 3 is charged to the device
/// arena, so `device.memory().breakdown()` regenerates that table and an
/// over-capacity EXP configuration fails exactly like the paper's.

#include "gpusim/device.h"
#include "solver/exponential.h"
#include "solver/track_policy.h"
#include "solver/transport_solver.h"

namespace antmoc {

struct GpuSolverOptions {
  TrackPolicy policy = TrackPolicy::kManaged;
  /// Resident-segment memory threshold for kManaged (paper: 6.144 GB).
  std::size_t resident_budget_bytes = std::size_t{6442450944};
  /// L3 load mapping (paper §4.2.3): sort tracks by descending segment
  /// count and deal them round-robin onto CUs. Off = natural order in
  /// contiguous blocks (the unbalanced baseline).
  bool l3_sort = true;
};

class GpuSolver : public TransportSolver {
 public:
  GpuSolver(const TrackStacks& stacks,
            const std::vector<Material>& materials, gpusim::Device& device,
            const GpuSolverOptions& options = {});
  ~GpuSolver() override;

  const TrackManager& manager() const { return manager_; }
  gpusim::Device& device() { return device_; }

  /// Per-CU statistics of the most recent transport-sweep launch; its
  /// load_uniformity() is the paper's MAX/AVG metric at the CU level.
  const gpusim::KernelStats& last_sweep_stats() const { return last_stats_; }

 protected:
  void sweep() override;

 private:
  /// RAII accounting charge against the device arena. Move-only: the
  /// moved-from charge must forget its arena or vector reallocation would
  /// double-release.
  struct Charge {
    gpusim::DeviceMemory* arena = nullptr;
    std::string label;
    std::size_t bytes = 0;

    Charge() = default;
    Charge(gpusim::DeviceMemory* a, std::string l, std::size_t b)
        : arena(a), label(std::move(l)), bytes(b) {}
    Charge(Charge&& o) noexcept
        : arena(o.arena), label(std::move(o.label)), bytes(o.bytes) {
      o.arena = nullptr;
    }
    Charge& operator=(Charge&& o) noexcept {
      if (this != &o) {
        release();
        arena = o.arena;
        label = std::move(o.label);
        bytes = o.bytes;
        o.arena = nullptr;
      }
      return *this;
    }
    Charge(const Charge&) = delete;
    Charge& operator=(const Charge&) = delete;
    ~Charge() { release(); }

    void release() {
      if (arena != nullptr && bytes > 0) arena->release(label, bytes);
      arena = nullptr;
    }
  };

  void charge(const std::string& label, std::size_t bytes);

  gpusim::Device& device_;
  GpuSolverOptions options_;
  TrackManager manager_;
  std::vector<long> order_;
  gpusim::KernelStats last_stats_;
  std::vector<Charge> charges_;
};

}  // namespace antmoc
