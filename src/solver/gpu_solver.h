#pragma once

/// \file gpu_solver.h
/// The device transport solver (paper §3.2): 3D tracks map to GPU threads
/// (Algorithm 1), FSR flux accumulation uses device atomics (§3.2.3), and
/// segment storage follows the track-management policy (§4.1). Device
/// memory for every major vector of Table 3 is charged to the device
/// arena, so `device.memory().breakdown()` regenerates that table and an
/// over-capacity EXP configuration fails exactly like the paper's.

#include "gpusim/device.h"
#include "solver/exponential.h"
#include "solver/track_policy.h"
#include "solver/transport_solver.h"

namespace antmoc {

/// FSR-tally strategy of the device sweep (the one-to-many track->FSR
/// hazard of paper §3.2.3).
enum class PrivatizeMode {
  /// Privatize per-CU tally scratch when the arena can afford it, else
  /// fall back to per-segment device atomics.
  kAuto,
  /// Always per-segment device atomics (the original behavior).
  kOff,
  /// Privatize or throw DeviceOutOfMemory (feeds the degradation ladder).
  kForce,
};

struct GpuSolverOptions {
  TrackPolicy policy = TrackPolicy::kManaged;
  /// Resident-segment memory threshold for kManaged (paper: 6.144 GB).
  std::size_t resident_budget_bytes = std::size_t{6442450944};
  /// L3 load mapping (paper §4.2.3): sort tracks by descending segment
  /// count and deal them round-robin onto CUs. Off = natural order in
  /// contiguous blocks (the unbalanced baseline).
  bool l3_sort = true;
  /// `sweep.privatize` knob: per-CU privatized FSR tallies merged by a
  /// deterministic reduction kernel, versus shared-accumulator atomics.
  PrivatizeMode privatize = PrivatizeMode::kAuto;
  /// `track.templates` knob: chord-template expansion for temporary
  /// tracks. kAuto charges the cache to the arena under
  /// "chord_templates" and falls back to the generic walk when it does
  /// not fit; kOff never builds it; kForce throws DeviceOutOfMemory on
  /// OOM (feeds the degradation ladder). Ignored under kExplicit (no
  /// temporary tracks to serve).
  TemplateMode templates = TemplateMode::kAuto;
};

class GpuSolver : public TransportSolver {
 public:
  GpuSolver(const TrackStacks& stacks,
            const std::vector<Material>& materials, gpusim::Device& device,
            const GpuSolverOptions& options = {});
  ~GpuSolver() override;

  const TrackManager& manager() const { return manager_; }
  gpusim::Device& device() { return device_; }

  /// Per-CU statistics of the most recent transport-sweep launch; its
  /// load_uniformity() is the paper's MAX/AVG metric at the CU level.
  const gpusim::KernelStats& last_sweep_stats() const { return last_stats_; }

  /// True when the sweep runs with per-CU privatized tallies (scratch
  /// charged to the arena); false means the atomic fallback is active.
  bool privatized() const { return privatized_; }

  /// True when the decoded track-info cache fit in the arena; false means
  /// the sweep decodes per item like the seed.
  bool info_cached() const { return cache_ != nullptr; }

  /// True when temporary tracks dispatch through the chord-template
  /// cache (charged to the arena); false after the OOM auto-fallback or
  /// under kOff/kExplicit.
  bool templates_active() const { return manager_.templates_active(); }

 protected:
  void sweep() override;
  void sweep_subset(const std::vector<long>& ids) override;

 private:
  void charge(const std::string& label, std::size_t bytes);

  /// One 3D track's transport kernel: attenuate both directions, tallying
  /// w*delta into `acc` (nullptr = atomics into the shared accumulator)
  /// and staging (stage = true) or atomically depositing the outgoing
  /// flux. Returns the modeled device cost of the track.
  double sweep_track(long id, double* acc, bool stage);

  /// Merges the per-CU privatized tally scratch into the shared
  /// accumulator in fixed CU order (and re-zeroes the scratch).
  void reduce_tallies();

  /// Charges and binds the optional hot-path buffers (info cache, per-CU
  /// tally scratch, deposit staging) per the privatize mode; called at the
  /// end of construction so it never perturbs the policy/budget charges.
  void setup_hot_path();

  gpusim::Device& device_;
  GpuSolverOptions options_;
  TrackManager manager_;
  std::vector<long> order_;
  gpusim::KernelStats last_stats_;
  std::vector<gpusim::ScopedCharge> charges_;
  gpusim::DeviceBuffer<double> tally_scratch_;  ///< [cu][fsr*G], privatized
  const TrackInfoCache* cache_ = nullptr;
  bool privatized_ = false;
  long segments_per_sweep_ = 0;  ///< both directions

  /// Per-full-sweep template-dispatch statistics (both directions),
  /// precomputed once residency and template activation are final.
  void compute_template_stats();
  long template_hits_per_sweep_ = 0;
  long template_fallbacks_per_sweep_ = 0;
  long template_segments_per_sweep_ = 0;
  long resident_segments_per_sweep_ = 0;
};

}  // namespace antmoc
