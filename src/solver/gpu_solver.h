#pragma once

/// \file gpu_solver.h
/// The device transport solver (paper §3.2): 3D tracks map to GPU threads
/// (Algorithm 1), FSR flux accumulation uses device atomics (§3.2.3), and
/// segment storage follows the track-management policy (§4.1). Device
/// memory for every major vector of Table 3 is charged to the device
/// arena, so `device.memory().breakdown()` regenerates that table and an
/// over-capacity EXP configuration fails exactly like the paper's.

#include <memory>
#include <vector>

#include "gpusim/device.h"
#include "solver/exponential.h"
#include "solver/track_policy.h"
#include "solver/transport_solver.h"

namespace antmoc {

/// Scenario-independent per-device state built once by an engine Session
/// and shared read-only by every concurrent job solver on that device
/// (DESIGN.md §12). Non-owning: everything must outlive the solver, and
/// nothing here is mutated after session warm-up — the manager's one
/// mutation hook (set_templates_active, the arena-OOM fallback) fires
/// during warm-up, before any job can observe it.
struct SharedDeviceState {
  const TrackManager* manager = nullptr;
  /// Decoded track-info cache already charged to the device arena by the
  /// session; nullptr = per-item decode (the seed behavior).
  const TrackInfoCache* info_cache = nullptr;
  /// L3 sweep order (sorted + round-robin dealt when l3_sort).
  const std::vector<long>* order = nullptr;
  /// Flat event arrays already charged to the arena ("event_arrays") by
  /// the session; nullptr = this device runs the history backend.
  const EventArrays* events = nullptr;
};

/// FSR-tally strategy of the device sweep (the one-to-many track->FSR
/// hazard of paper §3.2.3).
enum class PrivatizeMode {
  /// Privatize per-CU tally scratch when the arena can afford it, else
  /// fall back to per-segment device atomics.
  kAuto,
  /// Always per-segment device atomics (the original behavior).
  kOff,
  /// Privatize or throw DeviceOutOfMemory (feeds the degradation ladder).
  kForce,
};

struct GpuSolverOptions {
  TrackPolicy policy = TrackPolicy::kManaged;
  /// Resident-segment memory threshold for kManaged (paper: 6.144 GB).
  std::size_t resident_budget_bytes = std::size_t{6442450944};
  /// L3 load mapping (paper §4.2.3): sort tracks by descending segment
  /// count and deal them round-robin onto CUs. Off = natural order in
  /// contiguous blocks (the unbalanced baseline).
  bool l3_sort = true;
  /// `sweep.privatize` knob: per-CU privatized FSR tallies merged by a
  /// deterministic reduction kernel, versus shared-accumulator atomics.
  PrivatizeMode privatize = PrivatizeMode::kAuto;
  /// `track.templates` knob: chord-template expansion for temporary
  /// tracks. kAuto charges the cache to the arena under
  /// "chord_templates" and falls back to the generic walk when it does
  /// not fit; kOff never builds it; kForce throws DeviceOutOfMemory on
  /// OOM (feeds the degradation ladder). Ignored under kExplicit (no
  /// temporary tracks to serve).
  TemplateMode templates = TemplateMode::kAuto;
  /// `track.storage` knob (DESIGN.md §15): kCompact stores resident
  /// segments as an int32-FSR + fp32-chord SoA pair (8 B/segment instead
  /// of 16) and gives the event backend an fp32 chord lane; every chord
  /// rounds once to fp32 while all attenuation and tally arithmetic stays
  /// fp64. kExact (the default) is bitwise identical to the seed.
  /// Incompatible with templates = kForce (compact deactivates template
  /// dispatch). Ignored in shared mode: the session's manager owns the
  /// storage mode.
  TrackStorage storage = default_track_storage();
  /// `sweep.backend` knob: kEvent lays the flat event arrays down on the
  /// device (charged to the arena under "event_arrays") and sweeps them
  /// with the two-stage batch kernel; on arena OOM the solver silently
  /// falls back to the history backend, mirroring the `track.templates`
  /// kAuto fallback. Bitwise identical to history either way.
  SweepBackend backend = default_sweep_backend();
  /// Engine job mode: when set, the solver borrows the session's
  /// scenario-independent state instead of building its own — no track
  /// manager, L3 order, info-cache or template construction, none of
  /// their arena charges, and no setup kernels. Only the job-private
  /// physics state is charged ("track_fluxs", "others", plus the optional
  /// privatized buffers) — exactly the headroom the session's per-device
  /// admission check reserves. `policy`, `resident_budget_bytes`, and
  /// `templates` are then properties of the shared manager and ignored
  /// here.
  const SharedDeviceState* shared = nullptr;
};

class GpuSolver : public TransportSolver {
 public:
  GpuSolver(const TrackStacks& stacks,
            const std::vector<Material>& materials, gpusim::Device& device,
            const GpuSolverOptions& options = {});
  ~GpuSolver() override;

  const TrackManager& manager() const { return *manager_; }
  gpusim::Device& device() { return device_; }

  /// Per-CU statistics of the most recent transport-sweep launch; its
  /// load_uniformity() is the paper's MAX/AVG metric at the CU level.
  const gpusim::KernelStats& last_sweep_stats() const { return last_stats_; }

  /// True when the sweep runs with per-CU privatized tallies (scratch
  /// charged to the arena); false means the atomic fallback is active.
  bool privatized() const { return privatized_; }

  /// True when the decoded track-info cache fit in the arena; false means
  /// the sweep decodes per item like the seed.
  bool info_cached() const { return cache_ != nullptr; }

  /// True when temporary tracks dispatch through the chord-template
  /// cache (charged to the arena); false after the OOM auto-fallback or
  /// under kOff/kExplicit.
  bool templates_active() const { return manager_->templates_active(); }

  /// True when the event backend's flat arrays fit the arena and sweeps
  /// run event-based; false under sweep.backend=history or after the
  /// "event_arrays" OOM fallback.
  bool event_active() const { return events_ != nullptr; }

  /// Storage mode actually in force (the shared manager's in job mode).
  TrackStorage storage_mode() const override { return manager_->storage(); }

 protected:
  void sweep() override;
  void sweep_subset(const std::vector<long>& ids) override;

 private:
  void charge(const std::string& label, std::size_t bytes);

  /// One 3D track's transport kernel: attenuate both directions, tallying
  /// w*delta into `acc` (nullptr = atomics into the shared accumulator)
  /// and staging (stage = true) or atomically depositing the outgoing
  /// flux. `cur`, when non-null, is a CMFD surface-current buffer (per-CU
  /// private when privatized, the shared buffer 0 — tallied with device
  /// atomics — on the atomic fallback, keyed off acc == nullptr); the
  /// tallies are pure reads of psi, so the attenuation arithmetic is
  /// bitwise unchanged. Returns the modeled device cost of the track.
  double sweep_track(long id, double* acc, bool stage, double* cur);

  /// Merges the per-CU privatized tally scratch into the shared
  /// accumulator in fixed CU order (and re-zeroes the scratch).
  void reduce_tallies();

  /// Charges and binds the optional hot-path buffers (info cache, per-CU
  /// tally scratch, deposit staging) per the privatize mode; called at the
  /// end of construction so it never perturbs the policy/budget charges.
  void setup_hot_path();

  gpusim::Device& device_;
  GpuSolverOptions options_;
  /// Owned in the one-shot path, borrowed (const, session-owned) in
  /// shared mode; `manager_` is the read path either way and is never
  /// used to mutate — the OOM template fallback goes through
  /// `owned_manager_`, which shared mode does not have.
  std::unique_ptr<TrackManager> owned_manager_;
  const TrackManager* manager_ = nullptr;
  std::vector<long> owned_order_;
  const std::vector<long>* order_ = nullptr;
  gpusim::KernelStats last_stats_;
  std::vector<gpusim::ScopedCharge> charges_;
  gpusim::DeviceBuffer<double> tally_scratch_;  ///< [cu][fsr*G], privatized
  const TrackInfoCache* cache_ = nullptr;
  bool privatized_ = false;
  long segments_per_sweep_ = 0;  ///< both directions

  /// Event backend: owned in the one-shot path (arena-charged under
  /// "event_arrays"), borrowed from the session in shared mode; nullptr
  /// after the OOM fallback (or under sweep.backend=history).
  std::unique_ptr<EventArrays> owned_events_;
  const EventArrays* events_ = nullptr;
  long event_batches_per_sweep_ = 0;  ///< stage-1 batches, both directions

  /// Per-full-sweep template-dispatch statistics (both directions),
  /// precomputed once residency and template activation are final.
  void compute_template_stats();
  long template_hits_per_sweep_ = 0;
  long template_fallbacks_per_sweep_ = 0;
  long template_segments_per_sweep_ = 0;
  long resident_segments_per_sweep_ = 0;
};

}  // namespace antmoc
