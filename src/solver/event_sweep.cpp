#include "solver/event_sweep.h"

#include <algorithm>
#include <cstdlib>
#include <limits>

#include "gpusim/atomic.h"
#include "solver/track_policy.h"
#include "util/error.h"
#include "util/parallel.h"

namespace antmoc {

SweepBackend parse_sweep_backend(const std::string& name) {
  if (name == "history") return SweepBackend::kHistory;
  if (name == "event") return SweepBackend::kEvent;
  throw Error("unknown sweep.backend '" + name + "' (history|event)");
}

const char* sweep_backend_name(SweepBackend backend) {
  return backend == SweepBackend::kEvent ? "event" : "history";
}

SweepBackend default_sweep_backend() {
  if (const char* env = std::getenv("ANTMOC_SWEEP_BACKEND")) {
    if (env[0] != '\0') return parse_sweep_backend(env);
  }
  return SweepBackend::kHistory;
}

EventArrays::EventArrays(const TrackStacks& stacks, const TrackInfoCache& info,
                         const ChordTemplateCache* templates, int groups,
                         util::Parallel* par, const TrackManager* manager,
                         TrackStorage storage)
    : storage_(storage) {
  const long n = info.size();
  require(groups > 0, "event arrays need at least one energy group");
  require(stacks.geometry().num_fsrs() * static_cast<long>(groups) <=
              std::numeric_limits<std::int32_t>::max(),
          "event-array base index exceeds 32 bits");

  // Pass 1: per-(track, direction) event ranges. Both directions of a
  // track traverse the same segments, so one count serves both slots.
  const std::vector<long>* counts =
      templates != nullptr ? &templates->segment_counts() : nullptr;
  first_.resize(2 * n + 1);
  first_[0] = 0;
  for (long id = 0; id < n; ++id) {
    const long c =
        counts != nullptr ? (*counts)[id] : stacks.count_segments(info[id]);
    first_[2 * id + 1] = first_[2 * id] + c;
    first_[2 * id + 2] = first_[2 * id + 1] + c;
    batches_per_sweep_ += 2 * ((c + kEventBatch - 1) / kEventBatch);
  }
  base_.resize(first_.back());
  if (storage_ == TrackStorage::kCompact)
    lengths32_.resize(first_.back());
  else
    lengths_.resize(first_.back());

  // Pass 2: materialize both sweep directions through the same dispatch
  // the history backend uses per sweep. Resident tracks replay the
  // manager's stored segments — reversed for the backward direction,
  // exactly like the history device sweep (the backward OTF walk scans
  // from the other end and differs in final bits, so it must NOT be
  // substituted here). Temporary tracks use template expansion when
  // eligible, else the generic OTF walk (bitwise-identical streams either
  // way; the template cache is validated against the walk at
  // construction). Under compact storage the chord lands in the fp32
  // lane — the same single rounding point the compact history walk
  // applies, so the two backends still agree on every chord.
  const bool compact = storage_ == TrackStorage::kCompact;
  auto fill = [&](long id) {
    for (int dir = 0; dir < 2; ++dir) {
      long pos = first_[2 * id + dir];
      auto emit = [&](long fsr, double len) {
        base_[pos] = static_cast<std::int32_t>(fsr * groups);
        if (compact)
          lengths32_[pos] = static_cast<float>(len);
        else
          lengths_[pos] = len;
        ++pos;
      };
      const bool forward = dir == 0;
      if (manager == nullptr ||
          !manager->for_each_resident_segment(id, forward, emit)) {
        if (templates == nullptr ||
            !templates->for_each_segment(id, forward, emit))
          stacks.for_each_segment(info[id], forward, emit);
      }
    }
  };
  if (par != nullptr) {
    // Each track owns a disjoint event range, so the parallel fill is
    // race-free and its output independent of the worker count.
    par->for_chunks(n, [&](unsigned, long b, long e) {
      for (long id = b; id < e; ++id) fill(id);
    });
  } else {
    for (long id = 0; id < n; ++id) fill(id);
  }
}

namespace {

/// Stage 1 of one batch: tau and attenuation factors for all
/// (event, group) lanes — branch-free, vectorizable, psi-independent.
/// `LenT` is the stored chord width (double exact, float compact); the
/// chord widens to fp64 before the tau product, so all arithmetic is
/// fp64 either way.
template <class LenT>
inline void batch_attenuation(const std::int32_t* base, const LenT* length,
                              int m, const double* sigma_t,
                              const ExpTable* table, int G, double* tau,
                              double* ex) {
  for (int e = 0; e < m; ++e) {
    const double len = static_cast<double>(length[e]);
    const double* st = sigma_t + base[e];
    double* t = tau + e * G;
#pragma omp simd
    for (int g = 0; g < G; ++g) t[g] = st[g] * len;
  }
  const long lanes = static_cast<long>(m) * G;
  if (table != nullptr) {
    table->evaluate(tau, ex, lanes);
  } else {
    // Exact evaluator: one correctly-rounded libm call per lane, same
    // call the history backend makes per (segment, group).
    for (long k = 0; k < lanes; ++k) ex[k] = exp_f1(tau[k]);
  }
}

template <class LenT>
void sweep_events_impl(const std::int32_t* base, const LenT* length, long n,
                       const double* sigma_t, const double* qos, double w,
                       const ExpTable* table, int G, double* psi, double* acc,
                       EventSweepScratch& ws) {
  ws.ensure(G);
  double* tau = ws.tau.data();
  double* ex = ws.ex.data();
  for (long b0 = 0; b0 < n; b0 += kEventBatch) {
    const int m = static_cast<int>(std::min<long>(kEventBatch, n - b0));
    batch_attenuation(base + b0, length + b0, m, sigma_t, table, G, tau, ex);

    // Stage 2: the serial angular-flux recurrence. Events chain through
    // psi in sweep order; groups are independent lanes.
    for (int e = 0; e < m; ++e) {
      const std::int32_t idx = base[b0 + e];
      const double* q = qos + idx;
      double* a = acc + idx;
      const double* x = ex + e * G;
#pragma omp simd
      for (int g = 0; g < G; ++g) {
        const double delta = (psi[g] - q[g]) * x[g];
        psi[g] -= delta;
        a[g] += w * delta;
      }
    }
  }
  ws.events += n;
  ws.batches += (n + kEventBatch - 1) / kEventBatch;
}

template <class LenT>
void sweep_events_atomic_impl(const std::int32_t* base, const LenT* length,
                              long n, const double* sigma_t,
                              const double* qos, double w,
                              const ExpTable* table, int G, double* psi,
                              double* accum, EventSweepScratch& ws) {
  ws.ensure(G);
  double* tau = ws.tau.data();
  double* ex = ws.ex.data();
  for (long b0 = 0; b0 < n; b0 += kEventBatch) {
    const int m = static_cast<int>(std::min<long>(kEventBatch, n - b0));
    batch_attenuation(base + b0, length + b0, m, sigma_t, table, G, tau, ex);
    for (int e = 0; e < m; ++e) {
      const std::int32_t idx = base[b0 + e];
      const double* q = qos + idx;
      const double* x = ex + e * G;
      for (int g = 0; g < G; ++g) {
        const double delta = (psi[g] - q[g]) * x[g];
        psi[g] -= delta;
        gpusim::device_atomic_add(accum[idx + g], w * delta);
      }
    }
  }
  ws.events += n;
  ws.batches += (n + kEventBatch - 1) / kEventBatch;
}

}  // namespace

void sweep_events(const std::int32_t* base, const double* length, long n,
                  const double* sigma_t, const double* qos, double w,
                  const ExpTable* table, int G, double* psi, double* acc,
                  EventSweepScratch& ws) {
  sweep_events_impl(base, length, n, sigma_t, qos, w, table, G, psi, acc, ws);
}

void sweep_events(const std::int32_t* base, const float* length, long n,
                  const double* sigma_t, const double* qos, double w,
                  const ExpTable* table, int G, double* psi, double* acc,
                  EventSweepScratch& ws) {
  sweep_events_impl(base, length, n, sigma_t, qos, w, table, G, psi, acc, ws);
}

void sweep_events_atomic(const std::int32_t* base, const double* length,
                         long n, const double* sigma_t, const double* qos,
                         double w, const ExpTable* table, int G, double* psi,
                         double* accum, EventSweepScratch& ws) {
  sweep_events_atomic_impl(base, length, n, sigma_t, qos, w, table, G, psi,
                           accum, ws);
}

void sweep_events_atomic(const std::int32_t* base, const float* length,
                         long n, const double* sigma_t, const double* qos,
                         double w, const ExpTable* table, int G, double* psi,
                         double* accum, EventSweepScratch& ws) {
  sweep_events_atomic_impl(base, length, n, sigma_t, qos, w, table, G, psi,
                           accum, ws);
}

}  // namespace antmoc
