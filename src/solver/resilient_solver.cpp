#include "solver/resilient_solver.h"

#include <fstream>

#include "telemetry/telemetry.h"
#include "util/error.h"
#include "util/log.h"

namespace antmoc {

const char* policy_name(TrackPolicy policy) {
  switch (policy) {
    case TrackPolicy::kExplicit:
      return "EXP";
    case TrackPolicy::kManaged:
      return "Managed";
    case TrackPolicy::kOnTheFly:
      return "OTF";
  }
  return "?";
}

std::string ResilientSolveReport::summary() const {
  std::string text = std::string(policy_name(requested_policy));
  for (const auto& step : downgrades) {
    text += " -> ";
    text += policy_name(step.to);
    if (step.to == TrackPolicy::kManaged)
      text += "(" + std::to_string(step.budget_bytes >> 10) + " KiB)";
  }
  text += "; ran ";
  text += policy_name(actual_policy);
  text += ", k_eff=" + std::to_string(result.k_eff) + " in " +
          std::to_string(result.iterations) + " iterations";
  if (restarts > 0)
    text += ", " + std::to_string(restarts) + " checkpoint restart(s)";
  return text;
}

namespace {

/// Next rung down the ladder for a configuration that just OOMed.
/// Returns false when there is nowhere left to degrade to.
bool downgrade(GpuSolverOptions& gpu, const ResilientSolveOptions& options,
               int& shrinks_used, const std::string& reason,
               std::vector<DowngradeStep>& steps) {
  DowngradeStep step;
  step.from = gpu.policy;
  step.reason = reason;
  switch (gpu.policy) {
    case TrackPolicy::kExplicit:
      gpu.policy = TrackPolicy::kManaged;
      break;
    case TrackPolicy::kManaged: {
      const auto next = static_cast<std::size_t>(
          static_cast<double>(gpu.resident_budget_bytes) *
          options.budget_shrink);
      if (shrinks_used < options.max_budget_shrinks &&
          next >= options.min_budget_bytes) {
        gpu.resident_budget_bytes = next;
        ++shrinks_used;
      } else {
        gpu.policy = TrackPolicy::kOnTheFly;
      }
      break;
    }
    case TrackPolicy::kOnTheFly:
      return false;  // already at the bottom of the ladder
  }
  step.to = gpu.policy;
  step.budget_bytes = gpu.resident_budget_bytes;
  steps.push_back(step);
  // Ladder steps land in the trace as instants so the timeline shows *when*
  // the solve shed capability, next to the kernel and comm spans.
  telemetry::Telemetry::instance().instant(
      "fault/downgrade", "fault", -1, "budget_bytes",
      static_cast<std::int64_t>(step.budget_bytes));
  if (telemetry::on())
    telemetry::metrics().counter("resilient.downgrades").add(1);
  log::warn("resilient solve: device OOM with policy ", policy_name(step.from),
            " — downgrading to ", policy_name(step.to),
            step.to == TrackPolicy::kManaged
                ? " (budget " + std::to_string(step.budget_bytes) + " B)"
                : std::string(),
            "; cause: ", reason);
  return true;
}

bool file_exists(const std::string& path) {
  return std::ifstream(path).good();
}

}  // namespace

ResilientSolveReport solve_resilient(const TrackStacks& stacks,
                                     const std::vector<Material>& materials,
                                     gpusim::Device& device,
                                     const ResilientSolveOptions& options) {
  ResilientSolveReport report;
  report.requested_policy = options.gpu.policy;

  GpuSolverOptions gpu = options.gpu;
  int shrinks_used = 0;
  std::unique_ptr<GpuSolver> solver;

  // Setup ladder: construction charges every Table 3 vector against the
  // device arena, so an over-capacity configuration fails here.
  for (;;) {
    try {
      solver = std::make_unique<GpuSolver>(stacks, materials, device, gpu);
      break;
    } catch (const DeviceOutOfMemory& oom) {
      if (!downgrade(gpu, options, shrinks_used, oom.what(),
                     report.downgrades))
        throw;  // OTF itself does not fit: nothing left to shed
    }
  }
  report.actual_policy = gpu.policy;
  report.resident_budget_bytes = gpu.resident_budget_bytes;

  SolveOptions solve_opts = options.solve;
  const bool checkpointing =
      options.checkpoint_every > 0 && !options.checkpoint_path.empty();
  if (checkpointing) {
    const auto inner = options.solve.on_iteration;
    solve_opts.on_iteration = [&, inner](int iter, double k) {
      if (iter % options.checkpoint_every == 0)
        solver->save_state(options.checkpoint_path);
      if (inner) inner(iter, k);
    };
  }

  for (;;) {
    try {
      report.result = solver->solve(solve_opts);
      break;
    } catch (const DeviceOutOfMemory&) {
      throw;  // mid-solve OOM cannot be fixed by resuming
    } catch (const Error& e) {
      if (!checkpointing || report.restarts >= options.max_restarts ||
          !file_exists(options.checkpoint_path))
        throw;
      ++report.restarts;
      telemetry::Telemetry::instance().instant("fault/restart", "fault", -1,
                                               "restart", report.restarts);
      if (telemetry::on())
        telemetry::metrics().counter("resilient.restarts").add(1);
      log::warn("resilient solve: iteration failed (", e.what(),
                ") — resuming from checkpoint ", options.checkpoint_path,
                " (restart ", report.restarts, "/", options.max_restarts,
                ")");
      // Rebuild the solver to discard half-updated iteration state, then
      // continue from the last checkpoint instead of from scratch.
      solver.reset();
      solver = std::make_unique<GpuSolver>(stacks, materials, device, gpu);
      solver->load_state(options.checkpoint_path);
      solve_opts.resume = true;
      report.resumed_from_checkpoint = true;
    }
  }

  log::info("resilient solve: ", report.summary());
  return report;
}

}  // namespace antmoc
