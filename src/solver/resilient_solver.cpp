#include "solver/resilient_solver.h"

#include <fstream>

#include "cmfd/cmfd.h"
#include "telemetry/telemetry.h"
#include "util/error.h"
#include "util/log.h"

namespace antmoc {

const char* policy_name(TrackPolicy policy) {
  switch (policy) {
    case TrackPolicy::kExplicit:
      return "EXP";
    case TrackPolicy::kManaged:
      return "Managed";
    case TrackPolicy::kOnTheFly:
      return "OTF";
  }
  return "?";
}

std::string ResilientSolveReport::summary() const {
  std::string text = std::string(policy_name(requested_policy));
  if (requested_storage == TrackStorage::kCompact) text += "[compact]";
  for (const auto& step : downgrades) {
    text += " -> ";
    text += policy_name(step.to);
    if (step.to_storage == TrackStorage::kCompact) text += "[compact]";
    if (step.to == TrackPolicy::kManaged)
      text += "(" + std::to_string(step.budget_bytes >> 10) + " KiB)";
  }
  text += "; ran ";
  text += policy_name(actual_policy);
  if (actual_storage == TrackStorage::kCompact) text += "[compact]";
  text += ", k_eff=" + std::to_string(result.k_eff) + " in " +
          std::to_string(result.iterations) + " iterations";
  if (restarts > 0)
    text += ", " + std::to_string(restarts) + " checkpoint restart(s)";
  return text;
}

namespace {

/// Next rung down the ladder for a configuration that just OOMed.
/// Returns false when there is nowhere left to degrade to.
bool downgrade(GpuSolverOptions& gpu, const ResilientSolveOptions& options,
               int& shrinks_used, const std::string& reason,
               std::vector<DowngradeStep>& steps) {
  DowngradeStep step;
  step.from = gpu.policy;
  step.from_storage = gpu.storage;
  step.reason = reason;
  if (gpu.policy == TrackPolicy::kExplicit &&
      gpu.storage == TrackStorage::kExact &&
      gpu.templates != TemplateMode::kForce) {
    // First rung (DESIGN.md §15): halve the per-segment footprint before
    // shedding any residency. Skipped under track.templates = force,
    // which compact storage is incompatible with.
    gpu.storage = TrackStorage::kCompact;
  } else {
    switch (gpu.policy) {
      case TrackPolicy::kExplicit:
        gpu.policy = TrackPolicy::kManaged;
        break;
      case TrackPolicy::kManaged: {
        const auto next = static_cast<std::size_t>(
            static_cast<double>(gpu.resident_budget_bytes) *
            options.budget_shrink);
        if (shrinks_used < options.max_budget_shrinks &&
            next >= options.min_budget_bytes) {
          gpu.resident_budget_bytes = next;
          ++shrinks_used;
        } else {
          gpu.policy = TrackPolicy::kOnTheFly;
        }
        break;
      }
      case TrackPolicy::kOnTheFly:
        return false;  // already at the bottom of the ladder
    }
  }
  step.to = gpu.policy;
  step.to_storage = gpu.storage;
  step.budget_bytes = gpu.resident_budget_bytes;
  steps.push_back(step);
  // Ladder steps land in the trace as instants so the timeline shows *when*
  // the solve shed capability, next to the kernel and comm spans.
  telemetry::Telemetry::instance().instant(
      "fault/downgrade", "fault", -1, "budget_bytes",
      static_cast<std::int64_t>(step.budget_bytes));
  if (telemetry::on())
    telemetry::metrics().counter("resilient.downgrades").add(1);
  log::warn("resilient solve: device OOM with policy ", policy_name(step.from),
            " — downgrading to ", policy_name(step.to),
            step.to_storage == TrackStorage::kCompact &&
                    step.from_storage == TrackStorage::kExact
                ? " [compact storage]"
                : "",
            step.to == TrackPolicy::kManaged
                ? " (budget " + std::to_string(step.budget_bytes) + " B)"
                : std::string(),
            "; cause: ", reason);
  return true;
}

bool file_exists(const std::string& path) {
  return std::ifstream(path).good();
}

}  // namespace

ResilientSolveReport solve_resilient(const TrackStacks& stacks,
                                     const std::vector<Material>& materials,
                                     gpusim::Device& device,
                                     const ResilientSolveOptions& options) {
  ResilientSolveReport report;
  report.requested_policy = options.gpu.policy;
  report.requested_storage = options.gpu.storage;

  GpuSolverOptions gpu = options.gpu;
  int shrinks_used = 0;
  std::unique_ptr<GpuSolver> solver;

  // Setup ladder: construction charges every Table 3 vector against the
  // device arena, so an over-capacity configuration fails here.
  for (;;) {
    try {
      solver = std::make_unique<GpuSolver>(stacks, materials, device, gpu);
      break;
    } catch (const DeviceOutOfMemory& oom) {
      if (!downgrade(gpu, options, shrinks_used, oom.what(),
                     report.downgrades))
        throw;  // OTF itself does not fit: nothing left to shed
    }
  }
  if (options.cmfd.enable) solver->enable_cmfd(options.cmfd);
  report.actual_policy = gpu.policy;
  report.actual_storage = gpu.storage;
  report.resident_budget_bytes = gpu.resident_budget_bytes;

  SolveOptions solve_opts = options.solve;
  const bool checkpointing =
      options.checkpoint_every > 0 && !options.checkpoint_path.empty();
  if (checkpointing) {
    const auto inner = options.solve.on_iteration;
    solve_opts.on_iteration = [&, inner](int iter, double k) {
      if (iter % options.checkpoint_every == 0)
        solver->save_state(options.checkpoint_path, iter);
      if (inner) inner(iter, k);
    };
  }

  for (;;) {
    try {
      report.result = solver->solve(solve_opts);
      break;
    } catch (const DeviceOutOfMemory&) {
      throw;  // mid-solve OOM cannot be fixed by resuming
    } catch (const Error& e) {
      if (!checkpointing || report.restarts >= options.max_restarts ||
          !file_exists(options.checkpoint_path))
        throw;
      ++report.restarts;
      telemetry::Telemetry::instance().instant("fault/restart", "fault", -1,
                                               "restart", report.restarts);
      if (telemetry::on())
        telemetry::metrics().counter("resilient.restarts").add(1);
      log::warn("resilient solve: iteration failed (", e.what(),
                ") — resuming from checkpoint ", options.checkpoint_path,
                " (restart ", report.restarts, "/", options.max_restarts,
                ")");
      // Rebuild the solver to discard half-updated iteration state, then
      // continue from the last checkpoint instead of from scratch.
      solver.reset();
      solver = std::make_unique<GpuSolver>(stacks, materials, device, gpu);
      if (options.cmfd.enable) solver->enable_cmfd(options.cmfd);
      solver->load_state(options.checkpoint_path);
      solve_opts.resume = true;
      report.resumed_from_checkpoint = true;
    }
  }

  report.cmfd_degraded = solver->cmfd_accel() != nullptr &&
                         solver->cmfd_accel()->degraded();
  log::info("resilient solve: ", report.summary());
  return report;
}

const char* rung_name(RecoveryRung rung) {
  switch (rung) {
    case RecoveryRung::kNone:
      return "none";
    case RecoveryRung::kMigrate:
      return "migrate";
    case RecoveryRung::kRestart:
      return "restart";
  }
  return "?";
}

DecomposedResilientReport solve_decomposed_resilient(
    const Geometry& geometry, const std::vector<Material>& materials,
    const Decomposition& decomp,
    const DecomposedResilientOptions& options) {
  DecomposedResilientReport report;
  DomainRunParams params = options.params;
  for (;;) {
    try {
      report.summary =
          solve_decomposed(geometry, materials, decomp, params,
                           options.solve);
      if (report.summary.takeovers > 0 &&
          report.rung == RecoveryRung::kNone)
        report.rung = RecoveryRung::kMigrate;
      break;
    } catch (const Error& e) {
      // The in-world takeover could not absorb this failure (no shards,
      // rebalance off, or takeovers exhausted): the deeper rung re-runs
      // the whole decomposed solve, resumed from the newest complete
      // shard line when one exists.
      if (report.restarts >= options.max_restarts) throw;
      ++report.restarts;
      report.rung = RecoveryRung::kRestart;
      report.diagnostic = e.what();
      params.resume_from_checkpoint =
          params.checkpoint_every > 0 && !params.checkpoint_dir.empty();
      telemetry::Telemetry::instance().instant("fault/restart", "fault",
                                               -1, "restart",
                                               report.restarts);
      if (telemetry::on())
        telemetry::metrics().counter("resilient.restarts").add(1);
      log::warn("decomposed resilient solve: takeover unavailable (",
                e.what(), ") — restart ", report.restarts, "/",
                options.max_restarts,
                params.resume_from_checkpoint
                    ? " resuming from the shard line"
                    : " from scratch");
    }
  }
  if (report.rung == RecoveryRung::kMigrate)
    report.diagnostic = "absorbed " +
                        std::to_string(report.summary.takeovers) +
                        " takeover(s) in-world";
  log::info("decomposed resilient solve: rung=", rung_name(report.rung),
            ", takeovers=", report.summary.takeovers,
            ", restarts=", report.restarts,
            ", k_eff=", report.summary.result.k_eff);
  return report;
}

}  // namespace antmoc
