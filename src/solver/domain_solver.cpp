#include "solver/domain_solver.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <filesystem>
#include <memory>
#include <mutex>
#include <numeric>

#include "cmfd/cmfd.h"
#include "fault/fault.h"
#include "partition/load_mapper.h"
#include "solver/cpu_solver.h"
#include "telemetry/telemetry.h"
#include "util/error.h"
#include "util/log.h"
#include "util/timer.h"

namespace antmoc {
namespace {

// Tags carry the *sender's domain* id (not its rank) so one rank hosting
// several domains after a takeover can disambiguate streams:
//   tag = base + sender_domain * 6 + sender_face.
constexpr int kListTagBase = 100000;  ///< one-time interface target lists
constexpr int kSizeTagBase = 200000;  ///< list sizes
constexpr int kFluxTagBase = 300000;  ///< per-iteration flux payloads

/// One interface crossing: the receiving track slot in the neighbor.
struct IfaceSlot {
  long track;
  int forward;
};

/// Driver-facing face-exchange interface of one hosted domain, engine-
/// agnostic (DomainImpl<CpuSolver> and DomainImpl<GpuSolver> both
/// implement it). The rank driver interleaves these calls across all its
/// hosted domains so self-adjacent domains on one rank cannot deadlock:
/// every post_* completes for every domain before any collect_* blocks.
class DomainHost {
 public:
  virtual ~DomainHost() = default;
  virtual TransportSolver& solver() = 0;
  /// Sends this domain's interface target lists (sizes + lists) toward
  /// the current hosts of its neighbors. Re-runnable: a takeover or
  /// migration re-wires the exchange by re-running the full handshake.
  virtual void post_lists() = 0;
  /// Receives the neighbors' lists posted by post_lists().
  virtual void collect_lists() = 0;
  /// Synchronous-mode flux sends (no-op in overlapped mode, where the
  /// sweep already posted them as isends).
  virtual void post_exports() = 0;
  /// Blocks for the neighbors' flux payloads and applies them to
  /// psi_next in fixed face order.
  virtual void collect_imports() = 0;
  /// Computes this domain's partial track-based volumes (no reduction).
  virtual std::vector<double> local_volumes() = 0;
  virtual std::uint64_t flux_bytes_per_iter() const = 0;
  virtual long crossing_track_ends() const = 0;
  virtual double mean_overlap_ratio() const = 0;
};

/// Adds neighbor flux exchange to a sweep engine (CpuSolver or GpuSolver).
///
/// The sweep is *boundary-first* (DESIGN.md §8): interface-crossing tracks
/// are swept in per-face phases before the interior, so each face's
/// coalesced flux payload can be posted the moment its last exporting
/// track is done. In overlapped mode (`comm.overlap`, the default) the
/// payloads go out as nonblocking isends, imports are posted as irecvs
/// before the sweep starts, and the interior sweep runs while neighbor
/// fluxes are in flight; the synchronous mode keeps the paper's §3.3
/// dead-stop pattern (post everything after the sweep, then collect).
/// Both modes execute the identical phase partition, flush order, and
/// fixed-face-order import application, so for a fixed worker count the
/// overlapped solve is bit-identical to the synchronous one.
///
/// Message destinations go through the DomainRouter: neighbors are
/// *domains*, and the router maps a domain to whichever rank currently
/// hosts it — the indirection that lets a survivor adopt a dead rank's
/// domain without its neighbors rebuilding anything (they re-run the
/// list handshake and keep sweeping).
template <class Base>
class DomainImpl : public Base, public DomainHost {
 public:
  template <class... Extra>
  DomainImpl(const TrackStacks& stacks, const std::vector<Material>& mats,
             const Decomposition& decomp, int domain,
             const cluster::DomainRouter* router, comm::Communicator& comm,
             bool overlap, Extra&&... extra)
      : Base(stacks, mats, std::forward<Extra>(extra)...),
        decomp_(decomp),
        domain_(domain),
        router_(router),
        comm_(&comm),
        overlap_(overlap) {
    const Geometry& g = stacks.geometry();
    this->set_z_kinds(decomp.z_kind(g, domain_, Face::kZMin),
                      decomp.z_kind(g, domain_, Face::kZMax));
    this->build_links();
    index_interfaces();
    build_phases();
  }

  TransportSolver& solver() override { return *this; }

  std::uint64_t flux_bytes_per_iter() const override {
    std::uint64_t bytes = 0;
    for (const auto& buf : out_flux_) bytes += buf.size() * sizeof(float);
    return bytes;
  }

  /// Interface-crossing track ends exported by this domain (Eq. 7's N).
  long crossing_track_ends() const override {
    const int G = this->fsr().num_groups();
    long ends = 0;
    for (const auto& buf : out_flux_)
      ends += static_cast<long>(buf.size()) / G;
    return ends;
  }

  double mean_overlap_ratio() const override {
    return overlap_count_ > 0 ? overlap_sum_ / overlap_count_ : 0.0;
  }

  std::vector<double> local_volumes() override {
    Base::compute_volumes();
    return this->fsr().volumes();
  }

  void post_lists() override {
    const int G = this->fsr().num_groups();
    (void)G;
    for (int f = 0; f < 6; ++f) {
      const int nbr = decomp_.neighbor(domain_, static_cast<Face>(f));
      if (nbr < 0) continue;
      const int dest = router_->host(nbr);
      // Ship the target count once (the receiver cannot derive emptiness
      // from its own laydown); faces with no crossing tracks send nothing
      // further — neither a target list here nor flux payloads later.
      const long count = static_cast<long>(exports_[f].size());
      comm_->send(dest, kSizeTagBase + domain_ * 6 + f, &count,
                  sizeof(count));
      if (count > 0)
        comm_->send(dest, kListTagBase + domain_ * 6 + f, exports_[f]);
    }
  }

  void collect_lists() override {
    const int G = this->fsr().num_groups();
    for (int f = 0; f < 6; ++f) {
      const int nbr = decomp_.neighbor(domain_, static_cast<Face>(f));
      if (nbr < 0) continue;
      const int src = router_->host(nbr);
      const int sender_face =
          static_cast<int>(opposite_face(static_cast<Face>(f)));
      long count = 0;
      comm_->recv(src, kSizeTagBase + nbr * 6 + sender_face, &count,
                  sizeof(count));
      import_slots_[f].clear();
      in_flux_[f].clear();
      if (count == 0) continue;
      comm_->recv(src, kListTagBase + nbr * 6 + sender_face,
                  import_slots_[f]);
      require(static_cast<long>(import_slots_[f].size()) == count,
              "face " + std::to_string(f) + ": neighbor announced " +
                  std::to_string(count) + " crossing tracks but sent " +
                  std::to_string(import_slots_[f].size()));
      in_flux_[f].assign(count * G, 0.0f);
      for (const auto& slot : import_slots_[f])
        require(slot.track >= 0 && slot.track < this->stacks().num_tracks(),
                "neighbor sent an out-of-range interface target");
    }
  }

  void post_exports() override {
    if (overlap_ || !has_interfaces_) return;
    // Buffered-synchronous flux exchange (paper §3.3): post all sends,
    // then collect — the dead stop the overlapped mode removes. Empty
    // faces exchange nothing.
    for (int f = 0; f < 6; ++f) {
      if (out_flux_[f].empty()) continue;
      telemetry::TraceSpan span("comm/face_flux_post", "comm",
                                comm_->rank(), -1, "face", f);
      const int nbr = decomp_.neighbor(domain_, static_cast<Face>(f));
      comm_->send(router_->host(nbr), kFluxTagBase + domain_ * 6 + f,
                  out_flux_[f]);
    }
  }

  void collect_imports() override {
    if (!has_interfaces_) return;
    const int G = this->fsr().num_groups();

    if (overlap_) {
      Timer drain;
      drain.start();
      std::vector<comm::Request> pending;
      for (int f = 0; f < 6; ++f)
        if (recv_reqs_[f].valid()) pending.push_back(recv_reqs_[f]);
      comm_->wait_all(pending);
      drain.stop();
      const double hidden = interior_seconds_;
      const double waited = drain.seconds();
      const double ratio =
          hidden + waited > 0.0 ? hidden / (hidden + waited) : 1.0;
      overlap_sum_ += ratio;
      ++overlap_count_;
      if (telemetry::on())
        telemetry::metrics().gauge("comm.overlap_ratio").set(ratio);
    } else {
      for (int f = 0; f < 6; ++f) {
        if (import_slots_[f].empty()) continue;
        const int nbr = decomp_.neighbor(domain_, static_cast<Face>(f));
        const int sender_face =
            static_cast<int>(opposite_face(static_cast<Face>(f)));
        comm_->recv(router_->host(nbr),
                    kFluxTagBase + nbr * 6 + sender_face, in_flux_[f]);
      }
    }

    // Imports are applied in fixed face order regardless of arrival
    // order — the exchange-ordering analogue of the staged-deposit
    // discipline — so results never depend on message timing.
    for (int f = 0; f < 6; ++f) {
      const auto& imports = import_slots_[f];
      if (imports.empty()) continue;
      require(in_flux_[f].size() == imports.size() * G,
              "face " + std::to_string(f) + ": neighbor sent " +
                  std::to_string(in_flux_[f].size() / G) +
                  " flux entries but the setup target list has " +
                  std::to_string(imports.size()));
      telemetry::TraceSpan span("comm/face_flux_apply", "comm",
                                comm_->rank(), -1, "face", f);
      for (std::size_t i = 0; i < imports.size(); ++i) {
        float* slot = this->psi_next().data() +
                      (imports[i].track * 2 + (imports[i].forward ? 0 : 1)) *
                          G;
        const float* in = in_flux_[f].data() + i * G;
        for (int g = 0; g < G; ++g) slot[g] += in[g];
      }
    }
  }

 protected:
  void handle_interface(long id, bool forward, const Link3D& link,
                        const double* psi) override {
    const int G = this->fsr().num_groups();
    const int f = static_cast<int>(link.face);
    const long slot = slot_index_[id * 2 + (forward ? 0 : 1)];
    float* out = out_flux_[f].data() + slot * G;
    for (int g = 0; g < G; ++g) out[g] = static_cast<float>(psi[g]);
  }

  void sweep() override {
    if (!has_interfaces_) {
      Base::sweep();
      return;
    }
    this->last_sweep_segments_ = 0;
    this->last_template_hits_ = 0;
    this->last_template_fallbacks_ = 0;
    this->last_template_segments_ = 0;
    this->last_resident_segments_ = 0;
    this->ensure_staging();

    // Imports are posted before any computation so neighbor payloads land
    // the moment they are sent, not when this rank stops to collect.
    if (overlap_) {
      for (int f = 0; f < 6; ++f) {
        recv_reqs_[f] = comm::Request();
        if (import_slots_[f].empty()) continue;
        const int nbr = decomp_.neighbor(domain_, static_cast<Face>(f));
        const int sender_face =
            static_cast<int>(opposite_face(static_cast<Face>(f)));
        recv_reqs_[f] =
            comm_->irecv(router_->host(nbr),
                         kFluxTagBase + nbr * 6 + sender_face, in_flux_[f]);
      }
    }

    // Boundary phases: group g holds every interface-crossing track whose
    // lowest export face is g, so after phase g all faces f with
    // face_last_group_[f] == g have their full payload staged.
    for (int g = 0; g < 6; ++g) {
      if (!face_groups_[g].empty()) {
        this->sweep_subset(face_groups_[g]);
        this->flush_staged_deposits(face_groups_[g]);
      }
      if (!overlap_) continue;
      for (int f = 0; f < 6; ++f) {
        if (face_last_group_[f] != g || out_flux_[f].empty()) continue;
        telemetry::TraceSpan span("comm/face_flux_post", "comm",
                                  comm_->rank(), -1, "face", f);
        const int nbr = decomp_.neighbor(domain_, static_cast<Face>(f));
        comm_->isend(router_->host(nbr), kFluxTagBase + domain_ * 6 + f,
                     out_flux_[f]);
      }
    }

    // Interior sweep: the computation that hides the exchange.
    Timer interior;
    interior.start();
    this->sweep_subset(interior_);
    this->flush_staged_deposits(interior_);
    interior.stop();
    interior_seconds_ = interior.seconds();
  }

 private:
  /// Indexes interface links into per-face export lists + staging buffers.
  void index_interfaces() {
    const int G = this->fsr().num_groups();
    const auto& links = this->links();
    slot_index_.assign(links.size(), -1);
    for (std::size_t i = 0; i < links.size(); ++i) {
      if (links[i].kind != Link3D::Kind::kInterface) continue;
      const int f = static_cast<int>(links[i].face);
      slot_index_[i] = static_cast<long>(exports_[f].size());
      exports_[f].push_back({links[i].track, links[i].forward ? 1 : 0});
    }
    for (int f = 0; f < 6; ++f) {
      const int nbr = decomp_.neighbor(domain_, static_cast<Face>(f));
      if (nbr < 0) {
        require(exports_[f].empty(),
                "interface link on a face with no neighbor");
        continue;
      }
      out_flux_[f].assign(exports_[f].size() * G, 0.0f);
    }
  }

  /// Partitions tracks into per-face boundary groups plus the interior,
  /// and records the phase after which each face's exports are complete.
  void build_phases() {
    const auto& links = this->links();
    const long n = this->stacks().num_tracks();
    face_last_group_.fill(-1);
    for (long id = 0; id < n; ++id) {
      int group = -1;
      for (int dir = 0; dir < 2; ++dir) {
        const Link3D& link = links[id * 2 + dir];
        if (link.kind != Link3D::Kind::kInterface) continue;
        const int f = static_cast<int>(link.face);
        group = group < 0 ? f : std::min(group, f);
      }
      if (group < 0) {
        interior_.push_back(id);
        continue;
      }
      face_groups_[group].push_back(id);
      for (int dir = 0; dir < 2; ++dir) {
        const Link3D& link = links[id * 2 + dir];
        if (link.kind != Link3D::Kind::kInterface) continue;
        const int f = static_cast<int>(link.face);
        face_last_group_[f] = std::max(face_last_group_[f], group);
      }
      has_interfaces_ = true;
    }
  }

  const Decomposition& decomp_;
  int domain_;
  const cluster::DomainRouter* router_;
  comm::Communicator* comm_;
  bool overlap_;
  std::vector<long> slot_index_;
  std::array<std::vector<IfaceSlot>, 6> exports_;
  std::array<std::vector<float>, 6> out_flux_, in_flux_;
  std::array<std::vector<IfaceSlot>, 6> import_slots_;

  // Phased-sweep state (build_phases).
  std::array<std::vector<long>, 6> face_groups_;
  std::vector<long> interior_;
  std::array<int, 6> face_last_group_{};
  bool has_interfaces_ = false;

  // Overlapped-exchange state.
  std::array<comm::Request, 6> recv_reqs_;
  double interior_seconds_ = 0.0;
  double overlap_sum_ = 0.0;
  long overlap_count_ = 0;
};

/// One domain owned (hosted) by this rank: the full local stack from
/// quadrature to solver. Members are declared in dependency order — the
/// solver holds references into stacks, stacks into gen, gen into quad —
/// so reverse destruction is safe.
struct OwnedDomain {
  int domain = -1;
  std::unique_ptr<Quadrature> quad;
  std::unique_ptr<TrackGenerator2D> gen;
  std::unique_ptr<TrackStacks> stacks;
  std::unique_ptr<gpusim::Device> device;
  std::unique_ptr<TransportSolver> owner;  ///< the DomainImpl
  DomainHost* host = nullptr;              ///< exchange view of `owner`
};

/// Cross-rank shared bookkeeping for one solve_decomposed() call.
struct SharedRun {
  explicit SharedRun(int num_domains, int nranks)
      : domain_segments(num_domains, 0),
        domain_tracks(num_domains, 0),
        domain_flux_bytes(num_domains, 0),
        domain_crossings(num_domains, 0),
        done(nranks) {}

  std::mutex mutex;
  // Per-domain static accounting, written once by the first builder.
  std::vector<long> domain_segments;
  std::vector<long> domain_tracks;
  std::vector<std::uint64_t> domain_flux_bytes;
  std::vector<long> domain_crossings;
  double overlap_sum = 0.0;
  long overlap_domains = 0;
  std::atomic<int> takeovers{0};
  std::atomic<int> voluntary{0};

  struct Completion {
    bool done = false;
    bool has_data = false;
    SolveResult result;
    std::vector<double> fission, flux;
    std::vector<int> final_host;
    std::int64_t resumed = -1;
  };
  std::vector<Completion> done;  ///< [rank], guarded by mutex
};

/// Per-rank driver: hosts one or more domains, advances them in lockstep,
/// and runs the takeover / voluntary-migration protocols (DESIGN.md §11).
class RankDriver {
 public:
  RankDriver(comm::Communicator& comm, const Geometry& geometry,
             const std::vector<Material>& materials,
             const Decomposition& decomp, const DomainRunParams& params,
             const SolveOptions& options, SharedRun& shared)
      : comm_(comm),
        geometry_(geometry),
        materials_(materials),
        decomp_(decomp),
        params_(params),
        options_(options),
        shared_(shared),
        rank_(comm.rank()),
        nranks_(comm.size()),
        nd_(decomp.num_domains()),
        router_(identity_table(decomp.num_domains())),
        capacity_(params.rank_capacity.empty()
                      ? std::vector<double>(comm.size(), 1.0)
                      : params.rank_capacity) {
    require(static_cast<int>(capacity_.size()) == nranks_,
            "rank_capacity must have one entry per rank");
    local_ = options_;
    local_.on_iteration = nullptr;
    local_.verbose = false;  // the driver logs once per rank, not per domain
  }

  void run() {
    setup();
    iterate();
    complete();
  }

 private:
  static std::vector<int> identity_table(int nd) {
    std::vector<int> t(nd);
    std::iota(t.begin(), t.end(), 0);
    return t;
  }

  const std::string& ckpt_dir() const { return params_.checkpoint_dir; }
  bool checkpointing() const {
    return params_.checkpoint_every > 0 && !ckpt_dir().empty();
  }

  OwnedDomain build_domain(int d) const {
    OwnedDomain od;
    od.domain = d;
    const Bounds bounds = decomp_.domain_bounds(geometry_.bounds(), d);
    od.quad = std::make_unique<Quadrature>(
        params_.num_azim, params_.azim_spacing, bounds.width_x(),
        bounds.width_y(), params_.num_polar);
    od.gen = std::make_unique<TrackGenerator2D>(
        *od.quad, bounds, decomp_.radial_kinds(geometry_, d));
    od.gen->trace(geometry_);
    od.stacks = std::make_unique<TrackStacks>(
        *od.gen, geometry_, bounds.z_min, bounds.z_max, params_.z_spacing);
    if (params_.use_device) {
      od.device = std::make_unique<gpusim::Device>(params_.device_spec);
      auto impl = std::make_unique<DomainImpl<GpuSolver>>(
          *od.stacks, materials_, decomp_, d, &router_, comm_,
          params_.overlap, *od.device, params_.gpu_options);
      od.host = impl.get();
      od.owner = std::move(impl);
    } else {
      auto impl = std::make_unique<DomainImpl<CpuSolver>>(
          *od.stacks, materials_, decomp_, d, &router_, comm_,
          params_.overlap, params_.sweep_workers, TemplateMode::kAuto,
          params_.sweep_backend, params_.gpu_options.storage);
      od.host = impl.get();
      od.owner = std::move(impl);
    }
    if (params_.cmfd.enable) {
      od.owner->enable_cmfd(params_.cmfd);
      od.owner->cmfd_accel()->set_rank(rank_);
    }
    {
      std::lock_guard lock(shared_.mutex);
      if (shared_.domain_segments[d] == 0) {
        shared_.domain_segments[d] = od.stacks->total_segments();
        shared_.domain_tracks[d] = od.stacks->num_tracks();
        shared_.domain_flux_bytes[d] = od.host->flux_bytes_per_iter();
        shared_.domain_crossings[d] = od.host->crossing_track_ends();
      }
    }
    return od;
  }

  void setup() {
    for (int d : router_.domains_hosted_by(rank_))
      owned_.push_back(build_domain(d));

    // Static per-domain sweep costs, known globally: the adopter-election
    // input and the drift gauge's denominator.
    domain_load_.assign(nd_, 0.0);
    for (const auto& od : owned_)
      domain_load_[od.domain] =
          static_cast<double>(od.stacks->total_segments());
    comm_.allreduce(domain_load_, comm::ReduceOp::kSum);

    // Global FSR volumes, reduced once in *domain* order and cached so
    // adopted domains can be rehydrated without re-running the collective.
    std::vector<std::vector<double>> vols;
    vols.reserve(owned_.size());
    for (auto& od : owned_) vols.push_back(od.host->local_volumes());
    std::vector<std::pair<int, std::vector<double>*>> contribs;
    for (std::size_t i = 0; i < owned_.size(); ++i)
      contribs.emplace_back(owned_[i].domain, &vols[i]);
    comm_.allreduce_slots(contribs, comm::ReduceOp::kSum);
    require(!vols.empty(), "setup: rank hosts no domains");
    global_volumes_ = vols[0];
    for (auto& od : owned_)
      od.owner->set_global_volumes(global_volumes_);

    // Interface target-list handshake, split into post/collect phases so
    // self-adjacent domains hosted by one rank cannot deadlock.
    for (auto& od : owned_) od.host->post_lists();
    for (auto& od : owned_) od.host->collect_lists();

    // Initial state: fresh, or the restart rung's resume-from-shards.
    start_iter_ = 0;
    bool resume = false;
    if (params_.resume_from_checkpoint && !ckpt_dir().empty()) {
      const auto line = cluster::scan_recovery_line(ckpt_dir(), nd_);
      if (line.iteration >= 0) {
        for (auto& od : owned_)
          od.owner->load_state(line.path[od.domain]);
        start_iter_ = line.iteration;
        resumed_from_ = line.iteration;
        resume = true;
        if (rank_ == 0)
          log::info("decomposed solve resuming all ", nd_,
                    " domains from the shard line at iteration ",
                    line.iteration);
      }
    }
    SolveOptions popt = local_;
    popt.resume = resume;
    for (auto& od : owned_) od.owner->prepare_solve(popt);
  }

  void iterate() {
    const int max_iter = options_.fixed_iterations > 0
                             ? options_.fixed_iterations
                             : options_.max_iterations;
    std::int64_t iter = start_iter_ + 1;
    while (iter <= static_cast<std::int64_t>(max_iter)) {
      try {
        run_iteration(static_cast<int>(iter));
        if (converged_) break;
        ++iter;
      } catch (const PeerFailure& e) {
        iter = absorb_failure(e.what()) + 1;
      } catch (const CommTimeout& e) {
        iter = absorb_failure(e.what()) + 1;
      }
    }
    if (options_.fixed_iterations > 0) result_.converged = true;
  }

  void run_iteration(int iter) {
    telemetry::TraceSpan iter_span("solver/iteration", "solver", rank_, -1,
                                   "iteration", iter);
    // Scriptable failure point: a plan like
    // "solver.iteration throw solver nth=5 rank=1" kills rank 1 at its
    // 5th iteration — the takeover tests' murder weapon.
    fault::point("solver.iteration", rank_);

    Timer sweep_timer;
    sweep_timer.start();
    for (auto& od : owned_) {
      fault::point("domain.sweep", rank_);
      od.owner->sweep_step();
    }
    sweep_timer.stop();
    rank_sweep_seconds_ = sweep_timer.seconds();

    {
      telemetry::TraceSpan exchange_span("solver/exchange", "solver");
      // Global FSR accumulators, keyed by domain: every rank then closes
      // identical fluxes, and because the reduction order follows domain
      // ids (not ranks) the sum is bitwise the same after any re-hosting.
      std::vector<std::pair<int, std::vector<double>*>> contribs;
      for (auto& od : owned_)
        contribs.emplace_back(od.domain, &od.owner->fsr().accumulator());
      comm_.allreduce_slots(contribs, comm::ReduceOp::kSum);
      if (params_.cmfd.enable) {
        // Global coarse surface currents, keyed by domain like the FSR
        // accumulators above: every rank then holds the identical tally
        // vector, solves the identical coarse diffusion system in
        // close_step, and applies the identical prolongation — bitwise,
        // takeover-stable.
        std::vector<std::pair<int, std::vector<double>*>> currents;
        for (auto& od : owned_)
          currents.emplace_back(od.domain,
                                &od.owner->cmfd_accel()->merged_currents());
        comm_.allreduce_slots(currents, comm::ReduceOp::kSum);
      }
      for (auto& od : owned_) od.host->post_exports();
      for (auto& od : owned_) od.host->collect_imports();
    }

    TransportSolver::IterationStats stats;
    for (auto& od : owned_) stats = od.owner->close_step(iter, local_);

    // Ranks emptied by voluntary migration still drive convergence and
    // collectives; they learn the (identical-everywhere) closure numbers
    // from the hosting ranks. Skipped entirely while every rank hosts.
    if (any_empty_alive_rank()) {
      std::vector<double> pack = {stats.k_eff, stats.residual,
                                  stats.production};
      comm_.allreduce(pack, comm::ReduceOp::kMax);
      stats.k_eff = pack[0];
      stats.residual = pack[1];
      stats.production = pack[2];
    }

    result_.k_eff = stats.k_eff;
    result_.residual = stats.residual;
    result_.iterations = iter;
    if (options_.on_iteration) options_.on_iteration(iter, stats.k_eff);
    if (options_.verbose)
      log::info("iter ", iter, "  k_eff=", stats.k_eff,
                "  residual=", stats.residual);

    if (checkpointing() && iter % params_.checkpoint_every == 0)
      write_shards(iter);

    // Converged when both the fission-source *shape* (residual) and the
    // eigenvalue (successive production ratio) are stable.
    if (options_.fixed_iterations <= 0 && iter >= 3 &&
        stats.residual < options_.tolerance &&
        std::abs(stats.production - 1.0) < options_.tolerance) {
      result_.converged = true;
      converged_ = true;
      return;
    }

    if (params_.rebalance == cluster::RebalanceMode::kOnDrift &&
        !ckpt_dir().empty() && params_.drift_check_every > 0 &&
        iter % params_.drift_check_every == 0)
      maybe_migrate(iter);
  }

  void write_shards(int iter) {
    fault::point("checkpoint.write", rank_);
    std::error_code ec;
    std::filesystem::create_directories(ckpt_dir(), ec);
    // Generations alternate (slot 0/1) so the previous complete shard
    // line survives a death mid-write: scan_recovery_line falls back to
    // it when this line ends up partial.
    const int slot =
        static_cast<int>(iter / params_.checkpoint_every) % 2;
    for (auto& od : owned_)
      od.owner->save_state(cluster::shard_path(ckpt_dir(), od.domain, slot),
                           iter);
  }

  bool any_empty_alive_rank() const {
    std::vector<char> hosts(nranks_, 0);
    for (int d = 0; d < nd_; ++d) hosts[router_.host(d)] = 1;
    for (int r = 0; r < nranks_; ++r)
      if (!hosts[r] && !comm_.is_dead(r)) return true;
    return false;
  }

  int lowest_alive() const {
    for (int r = 0; r < nranks_; ++r)
      if (!comm_.is_dead(r)) return r;
    return 0;
  }

  /// The survivor-takeover protocol (DESIGN.md §11). Returns the shard-
  /// line iteration every domain was rewound to; the caller resumes at
  /// the next one. Retries on nested deaths until max_takeovers attempts
  /// are spent, then rethrows — the restart ladder's cue.
  std::int64_t absorb_failure(const std::string& cause) {
    if (params_.rebalance == cluster::RebalanceMode::kOff)
      fail<PeerFailure>("rank " + std::to_string(rank_) +
                        ": peer failed and cluster.rebalance=off — no "
                        "takeover attempted: " + cause);
    std::string last = cause;
    while (true) {
      if (takeover_attempts_ >= params_.max_takeovers)
        fail<PeerFailure>(
            "rank " + std::to_string(rank_) + ": " +
            std::to_string(takeover_attempts_) +
            " takeover attempt(s) exhausted (cluster.max_takeovers); "
            "last failure: " + last);
      ++takeover_attempts_;
      try {
        return takeover(last);
      } catch (const PeerFailure& e) {
        last = e.what();
      } catch (const CommTimeout& e) {
        last = e.what();
      }
    }
  }

  std::int64_t takeover(const std::string& cause) {
    telemetry::TraceSpan span("solver/takeover", "solver", rank_);
    log::info("rank ", rank_, ": starting survivor takeover after: ",
              cause);

    // Phase 1 — agree: survivors shrink the world (purging every mailbox
    // and clearing the poison) and confirm the dead set with a fixed-
    // order reduction — a cheap post-repair health check.
    fault::point("migrate.agree", rank_);
    const std::vector<int> dead = comm_.shrink();
    std::vector<double> mask(nranks_, 0.0);
    for (int r : dead) mask[r] = 1.0;
    std::vector<double> check = mask;
    comm_.allreduce(check, comm::ReduceOp::kMax);
    require(check == mask,
            "takeover: survivors disagree on the dead set");
    require(static_cast<int>(dead.size()) < nranks_,
            "takeover: no survivors");

    // Phase 2 — elect: recompute the router *from scratch* as a pure
    // function of the agreed dead set (identity layout + measured loads
    // + capacities), so every survivor — regardless of where the failure
    // interrupted it — derives the identical table with no messages.
    // Voluntary migrations are deliberately reset by this: the drift
    // trigger simply re-fires later if the imbalance persists.
    fault::point("migrate.elect", rank_);
    std::vector<char> alive(nranks_, 1);
    for (int r : dead) alive[r] = 0;
    const std::vector<int> identity = identity_table(nd_);
    const auto assignment =
        partition::elect_adopters(domain_load_, identity, alive, capacity_);
    router_ = cluster::DomainRouter(identity);
    for (const auto& [d, adopter] : assignment)
      router_.set_host(d, adopter);

    // Phase 3 — rehydrate: find the newest iteration with an intact CRC-
    // checked shard for *every* domain, rebuild adopted domains' tracks
    // locally (the modular laydown is deterministic), and rewind every
    // hosted domain to that line. Exact-state resume makes the rest of
    // the solve bitwise identical to the failure-free run.
    fault::point("migrate.rehydrate", rank_);
    if (!checkpointing())
      fail<SolverError>(
          "takeover: checkpoint shards disabled (checkpoint.shards=0 or "
          "no checkpoint.dir) — cannot rehydrate; falling back to the "
          "restart ladder");
    const auto line = cluster::scan_recovery_line(ckpt_dir(), nd_);
    if (line.iteration < 0)
      fail<SolverError>(
          "takeover: no complete shard recovery line in '" + ckpt_dir() +
          "' — cannot rehydrate; falling back to the restart ladder");

    reconcile_owned();
    for (auto& od : owned_) od.owner->load_state(line.path[od.domain]);
    SolveOptions ropt = local_;
    ropt.resume = true;
    for (auto& od : owned_) od.owner->prepare_solve(ropt);

    // Phase 4 — rewire: re-run the full interface-list handshake so
    // every exchange routes to the adopters (stale traffic cannot leak
    // in — shrink purged all mailboxes), then resume in lockstep.
    fault::point("migrate.rewire", rank_);
    for (auto& od : owned_) od.host->post_lists();
    for (auto& od : owned_) od.host->collect_lists();
    comm_.barrier();

    if (rank_ == lowest_alive())
      shared_.takeovers.fetch_add(1, std::memory_order_relaxed);
    resumed_from_ = line.iteration;
    {
      std::string deads;
      for (int r : dead) deads += (deads.empty() ? "" : ",") +
                                  std::to_string(r);
      log::info("rank ", rank_, ": takeover complete — dead {", deads,
                "}, now hosting ", owned_.size(),
                " domain(s), resuming from iteration ", line.iteration);
    }
    return line.iteration;
  }

  /// Aligns the owned-domain set with the (just recomputed) router:
  /// drops domains this rank no longer hosts, builds newly adopted ones.
  void reconcile_owned() {
    const std::vector<int> mine = router_.domains_hosted_by(rank_);
    std::vector<OwnedDomain> next;
    for (int d : mine) {
      auto it = std::find_if(owned_.begin(), owned_.end(),
                             [d](const OwnedDomain& od) {
                               return od.domain == d;
                             });
      if (it != owned_.end()) {
        next.push_back(std::move(*it));
      } else {
        OwnedDomain od = build_domain(d);
        od.owner->set_global_volumes(global_volumes_);
        next.push_back(std::move(od));
      }
    }
    owned_ = std::move(next);
  }

  /// Drift-triggered voluntary migration: when the per-rank sweep-time
  /// MAX/AVG gauge exceeds the threshold, move the straggler's heaviest
  /// domain to the fastest rank through a migration shard. All ranks
  /// derive the identical (donor, domain, recipient) decision from the
  /// same reduced timings, so no extra agreement round is needed.
  void maybe_migrate(int iter) {
    std::vector<double> times(nranks_, 0.0);
    times[rank_] = rank_sweep_seconds_;
    comm_.allreduce(times, comm::ReduceOp::kSum);

    double max_t = 0.0, sum_t = 0.0;
    int hosting = 0, donor = -1;
    for (int r = 0; r < nranks_; ++r) {
      if (comm_.is_dead(r) || router_.domains_hosted_by(r).empty())
        continue;
      sum_t += times[r];
      ++hosting;
      if (times[r] > max_t) {
        max_t = times[r];
        donor = r;
      }
    }
    if (hosting < 2 || donor < 0 || sum_t <= 0.0) return;
    const double avg_t = sum_t / hosting;
    const double gauge = max_t / avg_t;
    if (telemetry::on())
      telemetry::metrics().gauge("cluster.sweep_uniformity").set(gauge);
    if (gauge < params_.drift_threshold) return;

    fault::point("migrate.voluntary", rank_);
    // Recipient: fastest alive rank (empty ranks count — their time is
    // ~0); ties to the lower rank. Domain: the donor's heaviest.
    int recipient = -1;
    for (int r = 0; r < nranks_; ++r) {
      if (comm_.is_dead(r) || r == donor) continue;
      if (recipient < 0 || times[r] < times[recipient]) recipient = r;
    }
    if (recipient < 0) return;
    int dom = -1;
    for (int d : router_.domains_hosted_by(donor))
      if (dom < 0 || domain_load_[d] > domain_load_[dom]) dom = d;
    if (dom < 0) return;

    const std::string path = cluster::migrate_shard_path(ckpt_dir(), dom);
    if (rank_ == donor) {
      std::error_code ec;
      std::filesystem::create_directories(ckpt_dir(), ec);
      auto it = std::find_if(owned_.begin(), owned_.end(),
                             [dom](const OwnedDomain& od) {
                               return od.domain == dom;
                             });
      require(it != owned_.end(), "migration donor does not host domain");
      it->owner->save_state(path, iter);
    }
    comm_.barrier();  // the shard is published

    router_.set_host(dom, recipient);
    if (rank_ == donor) {
      owned_.erase(std::find_if(owned_.begin(), owned_.end(),
                                [dom](const OwnedDomain& od) {
                                  return od.domain == dom;
                                }));
    } else if (rank_ == recipient) {
      OwnedDomain od = build_domain(dom);
      od.owner->set_global_volumes(global_volumes_);
      od.owner->load_state(path);
      SolveOptions ropt = local_;
      ropt.resume = true;
      od.owner->prepare_solve(ropt);
      owned_.push_back(std::move(od));
      std::sort(owned_.begin(), owned_.end(),
                [](const OwnedDomain& a, const OwnedDomain& b) {
                  return a.domain < b.domain;
                });
    }

    // Re-wire the exchange around the moved domain. Unlike a takeover
    // nothing was purged, but at an iteration boundary no flux traffic
    // is in flight and list tags are distinct, so a full re-handshake is
    // safe and keeps one code path.
    for (auto& od : owned_) od.host->post_lists();
    for (auto& od : owned_) od.host->collect_lists();
    comm_.barrier();

    if (rank_ == lowest_alive())
      shared_.voluntary.fetch_add(1, std::memory_order_relaxed);
    log::info("rank ", rank_, ": voluntary migration — domain ", dom,
              " moved rank ", donor, " -> rank ", recipient,
              " (sweep-time MAX/AVG ", gauge, ")");
  }

  void complete() {
    std::lock_guard lock(shared_.mutex);
    auto& c = shared_.done[rank_];
    c.done = true;
    c.result = result_;
    c.final_host = router_.table();
    c.resumed = resumed_from_;
    if (!owned_.empty()) {
      c.has_data = true;
      c.fission = owned_.front().owner->fsr().fission_rate();
      c.flux = owned_.front().owner->fsr().scalar_flux();
    }
    for (auto& od : owned_) {
      shared_.overlap_sum += od.host->mean_overlap_ratio();
      ++shared_.overlap_domains;
    }
  }

  comm::Communicator& comm_;
  const Geometry& geometry_;
  const std::vector<Material>& materials_;
  const Decomposition& decomp_;
  const DomainRunParams& params_;
  const SolveOptions& options_;
  SharedRun& shared_;
  const int rank_;
  const int nranks_;
  const int nd_;

  cluster::DomainRouter router_;
  std::vector<double> capacity_;
  std::vector<OwnedDomain> owned_;
  std::vector<double> domain_load_;     ///< [domain] static sweep cost
  std::vector<double> global_volumes_;  ///< cached reduced FSR volumes
  SolveOptions local_;                  ///< per-domain options (hooks off)

  std::int64_t start_iter_ = 0;
  std::int64_t resumed_from_ = -1;
  int takeover_attempts_ = 0;
  double rank_sweep_seconds_ = 0.0;
  SolveResult result_;
  bool converged_ = false;
};

}  // namespace

DomainRunSummary solve_decomposed(const Geometry& geometry,
                                  const std::vector<Material>& materials,
                                  const Decomposition& decomp,
                                  const DomainRunParams& params,
                                  const SolveOptions& options) {
  DomainRunSummary summary;
  const int nd = decomp.num_domains();
  SharedRun shared(nd, nd);

  comm::CommOptions comm_options;
  comm_options.deadline = params.comm_deadline;
  const std::uint64_t total_bytes = comm::Runtime::run(
      nd,
      [&](comm::Communicator& comm) {
        RankDriver driver(comm, geometry, materials, decomp, params,
                          options, shared);
        driver.run();
      },
      comm_options);

  summary.total_bytes_sent = total_bytes;
  summary.takeovers = shared.takeovers.load(std::memory_order_relaxed);
  summary.voluntary_migrations =
      shared.voluntary.load(std::memory_order_relaxed);

  // The lowest completing rank with hosted domains carries the (globally
  // identical) result — rank 0 unless it died and survivors finished.
  bool found = false;
  for (int r = 0; r < nd && !found; ++r) {
    auto& c = shared.done[r];
    if (!c.done || !c.has_data) continue;
    summary.result = c.result;
    summary.fission_rate = std::move(c.fission);
    summary.scalar_flux = std::move(c.flux);
    summary.final_host = std::move(c.final_host);
    summary.resumed_from_iteration = c.resumed;
    found = true;
  }
  require(found, "decomposed solve finished with no completed rank");

  for (int d = 0; d < nd; ++d) {
    summary.total_tracks_3d += shared.domain_tracks[d];
    summary.total_segments_3d += shared.domain_segments[d];
    summary.flux_bytes_per_iter += shared.domain_flux_bytes[d];
    summary.crossing_track_ends += shared.domain_crossings[d];
  }
  summary.comm_overlap_ratio =
      shared.overlap_domains > 0
          ? shared.overlap_sum / shared.overlap_domains
          : 0.0;
  const long max_seg = *std::max_element(shared.domain_segments.begin(),
                                         shared.domain_segments.end());
  const double avg_seg =
      static_cast<double>(summary.total_segments_3d) / nd;
  summary.domain_load_uniformity =
      avg_seg > 0 ? static_cast<double>(max_seg) / avg_seg : 1.0;
  return summary;
}

}  // namespace antmoc
