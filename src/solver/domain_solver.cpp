#include "solver/domain_solver.h"

#include <algorithm>
#include <memory>
#include <mutex>

#include "solver/cpu_solver.h"
#include "telemetry/telemetry.h"
#include "util/error.h"
#include "util/timer.h"

namespace antmoc {
namespace {

constexpr int kListTagBase = 1000;  ///< one-time interface target lists
constexpr int kSizeTagBase = 2000;  ///< list sizes
constexpr int kFluxTagBase = 3000;  ///< per-iteration flux payloads

/// One interface crossing: the receiving track slot in the neighbor.
struct IfaceSlot {
  long track;
  int forward;
};

/// Adds neighbor flux exchange and global reductions to a sweep engine
/// (CpuSolver or GpuSolver).
///
/// The sweep is *boundary-first* (DESIGN.md §8): interface-crossing tracks
/// are swept in per-face phases before the interior, so each face's
/// coalesced flux payload can be posted the moment its last exporting
/// track is done. In overlapped mode (`comm.overlap`, the default) the
/// payloads go out as nonblocking isends, imports are posted as irecvs
/// before the sweep starts, and the interior sweep runs while neighbor
/// fluxes are in flight; the synchronous mode keeps the paper's §3.3
/// dead-stop pattern (post everything after the sweep, then collect).
/// Both modes execute the identical phase partition, flush order, and
/// fixed-face-order import application, so for a fixed worker count the
/// overlapped solve is bit-identical to the synchronous one.
template <class Base>
class DomainImpl : public Base {
 public:
  template <class... Extra>
  DomainImpl(const TrackStacks& stacks, const std::vector<Material>& mats,
             const Decomposition& decomp, comm::Communicator& comm,
             bool overlap, Extra&&... extra)
      : Base(stacks, mats, std::forward<Extra>(extra)...),
        decomp_(decomp),
        comm_(&comm),
        rank_(comm.rank()),
        overlap_(overlap) {
    const Geometry& g = stacks.geometry();
    this->set_z_kinds(decomp.z_kind(g, rank_, Face::kZMin),
                      decomp.z_kind(g, rank_, Face::kZMax));
    this->build_links();
    setup_interfaces();
    build_phases();
  }

  std::uint64_t flux_bytes_per_iter() const {
    std::uint64_t bytes = 0;
    for (const auto& buf : out_flux_) bytes += buf.size() * sizeof(float);
    return bytes;
  }

  /// Interface-crossing track ends exported by this rank (Eq. 7's N).
  long crossing_track_ends() const {
    const int G = this->fsr().num_groups();
    long ends = 0;
    for (const auto& buf : out_flux_)
      ends += static_cast<long>(buf.size()) / G;
    return ends;
  }

  /// Mean fraction of the exchange window hidden behind the interior
  /// sweep (0 in synchronous mode or without interfaces).
  double mean_overlap_ratio() const {
    return overlap_count_ > 0 ? overlap_sum_ / overlap_count_ : 0.0;
  }

 protected:
  void compute_volumes() override {
    Base::compute_volumes();
    auto vols = this->fsr().volumes();
    comm_->allreduce(vols, comm::ReduceOp::kSum);
    this->fsr().set_volumes(std::move(vols));
  }

  void handle_interface(long id, bool forward, const Link3D& link,
                        const double* psi) override {
    const int G = this->fsr().num_groups();
    const int f = static_cast<int>(link.face);
    const long slot = slot_index_[id * 2 + (forward ? 0 : 1)];
    float* out = out_flux_[f].data() + slot * G;
    for (int g = 0; g < G; ++g) out[g] = static_cast<float>(psi[g]);
  }

  void sweep() override {
    if (!has_interfaces_) {
      Base::sweep();
      return;
    }
    this->last_sweep_segments_ = 0;
    this->last_template_hits_ = 0;
    this->last_template_fallbacks_ = 0;
    this->last_template_segments_ = 0;
    this->last_resident_segments_ = 0;
    this->ensure_staging();

    // Imports are posted before any computation so neighbor payloads land
    // the moment they are sent, not when this rank stops to collect.
    if (overlap_) {
      for (int f = 0; f < 6; ++f) {
        recv_reqs_[f] = comm::Request();
        if (import_slots_[f].empty()) continue;
        const int nbr = decomp_.neighbor(rank_, static_cast<Face>(f));
        const int sender_face =
            static_cast<int>(opposite_face(static_cast<Face>(f)));
        recv_reqs_[f] =
            comm_->irecv(nbr, kFluxTagBase + sender_face, in_flux_[f]);
      }
    }

    // Boundary phases: group g holds every interface-crossing track whose
    // lowest export face is g, so after phase g all faces f with
    // face_last_group_[f] == g have their full payload staged.
    for (int g = 0; g < 6; ++g) {
      if (!face_groups_[g].empty()) {
        this->sweep_subset(face_groups_[g]);
        this->flush_staged_deposits(face_groups_[g]);
      }
      if (!overlap_) continue;
      for (int f = 0; f < 6; ++f) {
        if (face_last_group_[f] != g || out_flux_[f].empty()) continue;
        telemetry::TraceSpan span("comm/face_flux_post", "comm", rank_, -1,
                                  "face", f);
        comm_->isend(decomp_.neighbor(rank_, static_cast<Face>(f)),
                     kFluxTagBase + f, out_flux_[f]);
      }
    }

    // Interior sweep: the computation that hides the exchange.
    Timer interior;
    interior.start();
    this->sweep_subset(interior_);
    this->flush_staged_deposits(interior_);
    interior.stop();
    interior_seconds_ = interior.seconds();
  }

  void exchange() override {
    const int G = this->fsr().num_groups();
    // Global FSR accumulators: every rank then closes identical fluxes,
    // so k, normalization, and convergence stay consistent with no
    // further communication. In overlapped mode the flux payloads are
    // already in flight, so this reduction overlaps with their arrival.
    comm_->allreduce(this->fsr().accumulator(), comm::ReduceOp::kSum);
    if (!has_interfaces_) return;

    if (overlap_) {
      Timer drain;
      drain.start();
      std::vector<comm::Request> pending;
      for (int f = 0; f < 6; ++f)
        if (recv_reqs_[f].valid()) pending.push_back(recv_reqs_[f]);
      comm_->wait_all(pending);
      drain.stop();
      const double hidden = interior_seconds_;
      const double waited = drain.seconds();
      const double ratio =
          hidden + waited > 0.0 ? hidden / (hidden + waited) : 1.0;
      overlap_sum_ += ratio;
      ++overlap_count_;
      if (telemetry::on())
        telemetry::metrics().gauge("comm.overlap_ratio").set(ratio);
    } else {
      // Buffered-synchronous flux exchange (paper §3.3): post all sends,
      // then collect — the dead stop the overlapped mode removes. Empty
      // faces exchange nothing.
      for (int f = 0; f < 6; ++f) {
        if (out_flux_[f].empty()) continue;
        telemetry::TraceSpan span("comm/face_flux_post", "comm", rank_, -1,
                                  "face", f);
        comm_->send(decomp_.neighbor(rank_, static_cast<Face>(f)),
                    kFluxTagBase + f, out_flux_[f]);
      }
      for (int f = 0; f < 6; ++f) {
        if (import_slots_[f].empty()) continue;
        const int nbr = decomp_.neighbor(rank_, static_cast<Face>(f));
        const int sender_face =
            static_cast<int>(opposite_face(static_cast<Face>(f)));
        comm_->recv(nbr, kFluxTagBase + sender_face, in_flux_[f]);
      }
    }

    // Imports are applied in fixed face order regardless of arrival
    // order — the exchange-ordering analogue of the staged-deposit
    // discipline — so results never depend on message timing.
    for (int f = 0; f < 6; ++f) {
      const auto& imports = import_slots_[f];
      if (imports.empty()) continue;
      require(in_flux_[f].size() == imports.size() * G,
              "face " + std::to_string(f) + ": neighbor sent " +
                  std::to_string(in_flux_[f].size() / G) +
                  " flux entries but the setup target list has " +
                  std::to_string(imports.size()));
      telemetry::TraceSpan span("comm/face_flux_apply", "comm", rank_, -1,
                                "face", f);
      for (std::size_t i = 0; i < imports.size(); ++i) {
        float* slot = this->psi_next().data() +
                      (imports[i].track * 2 + (imports[i].forward ? 0 : 1)) *
                          G;
        const float* in = in_flux_[f].data() + i * G;
        for (int g = 0; g < G; ++g) slot[g] += in[g];
      }
    }
  }

 private:
  void setup_interfaces() {
    const int G = this->fsr().num_groups();
    const auto& links = this->links();
    slot_index_.assign(links.size(), -1);
    std::array<std::vector<IfaceSlot>, 6> exports;
    for (std::size_t i = 0; i < links.size(); ++i) {
      if (links[i].kind != Link3D::Kind::kInterface) continue;
      const int f = static_cast<int>(links[i].face);
      slot_index_[i] = static_cast<long>(exports[f].size());
      exports[f].push_back({links[i].track, links[i].forward ? 1 : 0});
    }
    for (int f = 0; f < 6; ++f) {
      const int nbr = decomp_.neighbor(rank_, static_cast<Face>(f));
      if (nbr < 0) {
        require(exports[f].empty(),
                "interface link on a face with no neighbor");
        continue;
      }
      out_flux_[f].assign(exports[f].size() * G, 0.0f);
      // Ship the target count once (the receiver cannot derive emptiness
      // from its own laydown); faces with no crossing tracks send nothing
      // further — neither a target list here nor flux payloads later.
      const long count = static_cast<long>(exports[f].size());
      comm_->send(nbr, kSizeTagBase + f, &count, sizeof(count));
      if (count > 0) comm_->send(nbr, kListTagBase + f, exports[f]);
    }
    for (int f = 0; f < 6; ++f) {
      const int nbr = decomp_.neighbor(rank_, static_cast<Face>(f));
      if (nbr < 0) continue;
      const int sender_face =
          static_cast<int>(opposite_face(static_cast<Face>(f)));
      long count = 0;
      comm_->recv(nbr, kSizeTagBase + sender_face, &count, sizeof(count));
      import_slots_[f].clear();
      in_flux_[f].clear();
      if (count == 0) continue;
      comm_->recv(nbr, kListTagBase + sender_face, import_slots_[f]);
      require(static_cast<long>(import_slots_[f].size()) == count,
              "face " + std::to_string(f) + ": neighbor announced " +
                  std::to_string(count) + " crossing tracks but sent " +
                  std::to_string(import_slots_[f].size()));
      in_flux_[f].assign(count * G, 0.0f);
      for (const auto& slot : import_slots_[f])
        require(slot.track >= 0 && slot.track < this->stacks().num_tracks(),
                "neighbor sent an out-of-range interface target");
    }
  }

  /// Partitions tracks into per-face boundary groups plus the interior,
  /// and records the phase after which each face's exports are complete.
  void build_phases() {
    const auto& links = this->links();
    const long n = this->stacks().num_tracks();
    face_last_group_.fill(-1);
    for (long id = 0; id < n; ++id) {
      int group = -1;
      for (int dir = 0; dir < 2; ++dir) {
        const Link3D& link = links[id * 2 + dir];
        if (link.kind != Link3D::Kind::kInterface) continue;
        const int f = static_cast<int>(link.face);
        group = group < 0 ? f : std::min(group, f);
      }
      if (group < 0) {
        interior_.push_back(id);
        continue;
      }
      face_groups_[group].push_back(id);
      for (int dir = 0; dir < 2; ++dir) {
        const Link3D& link = links[id * 2 + dir];
        if (link.kind != Link3D::Kind::kInterface) continue;
        const int f = static_cast<int>(link.face);
        face_last_group_[f] = std::max(face_last_group_[f], group);
      }
      has_interfaces_ = true;
    }
  }

  const Decomposition& decomp_;
  comm::Communicator* comm_;
  int rank_;
  bool overlap_;
  std::vector<long> slot_index_;
  std::array<std::vector<float>, 6> out_flux_, in_flux_;
  std::array<std::vector<IfaceSlot>, 6> import_slots_;

  // Phased-sweep state (build_phases).
  std::array<std::vector<long>, 6> face_groups_;
  std::vector<long> interior_;
  std::array<int, 6> face_last_group_{};
  bool has_interfaces_ = false;

  // Overlapped-exchange state.
  std::array<comm::Request, 6> recv_reqs_;
  double interior_seconds_ = 0.0;
  double overlap_sum_ = 0.0;
  long overlap_count_ = 0;
};

}  // namespace

DomainRunSummary solve_decomposed(const Geometry& geometry,
                                  const std::vector<Material>& materials,
                                  const Decomposition& decomp,
                                  const DomainRunParams& params,
                                  const SolveOptions& options) {
  DomainRunSummary summary;
  std::mutex mutex;
  std::vector<long> domain_segments(decomp.num_domains(), 0);
  double overlap_sum = 0.0;

  const std::uint64_t total_bytes = comm::Runtime::run(
      decomp.num_domains(), [&](comm::Communicator& comm) {
        const int rank = comm.rank();
        const Bounds bounds =
            decomp.domain_bounds(geometry.bounds(), rank);
        const Quadrature quad(params.num_azim, params.azim_spacing,
                              bounds.width_x(), bounds.width_y(),
                              params.num_polar);
        TrackGenerator2D gen(quad, bounds,
                             decomp.radial_kinds(geometry, rank));
        gen.trace(geometry);
        const TrackStacks stacks(gen, geometry, bounds.z_min, bounds.z_max,
                                 params.z_spacing);

        SolveResult result;
        std::uint64_t flux_bytes = 0;
        long crossing_ends = 0;
        double overlap_ratio = 0.0;
        std::vector<double> fission, flux;
        std::unique_ptr<gpusim::Device> device;

        if (params.use_device) {
          device = std::make_unique<gpusim::Device>(params.device_spec);
          DomainImpl<GpuSolver> solver(stacks, materials, decomp, comm,
                                       params.overlap, *device,
                                       params.gpu_options);
          result = solver.solve(options);
          flux_bytes = solver.flux_bytes_per_iter();
          crossing_ends = solver.crossing_track_ends();
          overlap_ratio = solver.mean_overlap_ratio();
          fission = solver.fsr().fission_rate();
          flux = solver.fsr().scalar_flux();
        } else {
          DomainImpl<CpuSolver> solver(stacks, materials, decomp, comm,
                                       params.overlap,
                                       params.sweep_workers);
          result = solver.solve(options);
          flux_bytes = solver.flux_bytes_per_iter();
          crossing_ends = solver.crossing_track_ends();
          overlap_ratio = solver.mean_overlap_ratio();
          fission = solver.fsr().fission_rate();
          flux = solver.fsr().scalar_flux();
        }

        const long segments = stacks.total_segments();
        std::lock_guard lock(mutex);
        domain_segments[rank] = segments;
        summary.total_tracks_3d += stacks.num_tracks();
        summary.total_segments_3d += segments;
        summary.flux_bytes_per_iter += flux_bytes;
        summary.crossing_track_ends += crossing_ends;
        overlap_sum += overlap_ratio;
        if (rank == 0) {
          summary.result = result;
          summary.fission_rate = std::move(fission);
          summary.scalar_flux = std::move(flux);
        }
      });

  summary.total_bytes_sent = total_bytes;
  summary.comm_overlap_ratio = overlap_sum / decomp.num_domains();
  const long max_seg =
      *std::max_element(domain_segments.begin(), domain_segments.end());
  const double avg_seg =
      static_cast<double>(summary.total_segments_3d) / decomp.num_domains();
  summary.domain_load_uniformity =
      avg_seg > 0 ? static_cast<double>(max_seg) / avg_seg : 1.0;
  return summary;
}

}  // namespace antmoc
