#include "solver/domain_solver.h"

#include <algorithm>
#include <memory>
#include <mutex>

#include "solver/cpu_solver.h"
#include "util/error.h"

namespace antmoc {
namespace {

constexpr int kListTagBase = 1000;  ///< one-time interface target lists
constexpr int kSizeTagBase = 2000;  ///< list sizes
constexpr int kFluxTagBase = 3000;  ///< per-iteration flux payloads

/// One interface crossing: the receiving track slot in the neighbor.
struct IfaceSlot {
  long track;
  int forward;
};

/// Adds neighbor flux exchange and global reductions to a sweep engine
/// (CpuSolver or GpuSolver).
template <class Base>
class DomainImpl : public Base {
 public:
  template <class... Extra>
  DomainImpl(const TrackStacks& stacks, const std::vector<Material>& mats,
             const Decomposition& decomp, comm::Communicator& comm,
             Extra&&... extra)
      : Base(stacks, mats, std::forward<Extra>(extra)...),
        decomp_(decomp),
        comm_(&comm),
        rank_(comm.rank()) {
    const Geometry& g = stacks.geometry();
    this->set_z_kinds(decomp.z_kind(g, rank_, Face::kZMin),
                      decomp.z_kind(g, rank_, Face::kZMax));
    this->build_links();
    setup_interfaces();
  }

  std::uint64_t flux_bytes_per_iter() const {
    std::uint64_t bytes = 0;
    for (const auto& buf : out_flux_) bytes += buf.size() * sizeof(float);
    return bytes;
  }

 protected:
  void compute_volumes() override {
    Base::compute_volumes();
    auto vols = this->fsr().volumes();
    comm_->allreduce(vols, comm::ReduceOp::kSum);
    this->fsr().set_volumes(std::move(vols));
  }

  void handle_interface(long id, bool forward, const Link3D& link,
                        const double* psi) override {
    const int G = this->fsr().num_groups();
    const int f = static_cast<int>(link.face);
    const long slot = slot_index_[id * 2 + (forward ? 0 : 1)];
    float* out = out_flux_[f].data() + slot * G;
    for (int g = 0; g < G; ++g) out[g] = static_cast<float>(psi[g]);
  }

  void exchange() override {
    const int G = this->fsr().num_groups();
    // Global FSR accumulators: every rank then closes identical fluxes,
    // so k, normalization, and convergence stay consistent with no
    // further communication.
    comm_->allreduce(this->fsr().accumulator(), comm::ReduceOp::kSum);

    // Buffered-synchronous flux exchange: post all sends, then collect.
    for (int f = 0; f < 6; ++f) {
      const int nbr = decomp_.neighbor(rank_, static_cast<Face>(f));
      if (nbr < 0) continue;
      comm_->send(nbr, kFluxTagBase + f, out_flux_[f]);
    }
    for (int f = 0; f < 6; ++f) {
      const int nbr = decomp_.neighbor(rank_, static_cast<Face>(f));
      if (nbr < 0) continue;
      const int sender_face =
          static_cast<int>(opposite_face(static_cast<Face>(f)));
      comm_->recv(nbr, kFluxTagBase + sender_face, in_flux_[f]);
      const auto& imports = import_slots_[f];
      for (std::size_t i = 0; i < imports.size(); ++i) {
        float* slot = this->psi_next().data() +
                      (imports[i].track * 2 + (imports[i].forward ? 0 : 1)) *
                          G;
        const float* in = in_flux_[f].data() + i * G;
        for (int g = 0; g < G; ++g) slot[g] += in[g];
      }
    }
  }

 private:
  void setup_interfaces() {
    const int G = this->fsr().num_groups();
    const auto& links = this->links();
    slot_index_.assign(links.size(), -1);
    std::array<std::vector<IfaceSlot>, 6> exports;
    for (std::size_t i = 0; i < links.size(); ++i) {
      if (links[i].kind != Link3D::Kind::kInterface) continue;
      const int f = static_cast<int>(links[i].face);
      slot_index_[i] = static_cast<long>(exports[f].size());
      exports[f].push_back({links[i].track, links[i].forward ? 1 : 0});
    }
    for (int f = 0; f < 6; ++f) {
      const int nbr = decomp_.neighbor(rank_, static_cast<Face>(f));
      if (nbr < 0) {
        require(exports[f].empty(),
                "interface link on a face with no neighbor");
        continue;
      }
      out_flux_[f].assign(exports[f].size() * G, 0.0f);
      // Ship the target list once; per-iteration messages carry only flux.
      const long count = static_cast<long>(exports[f].size());
      comm_->send(nbr, kSizeTagBase + f, &count, sizeof(count));
      comm_->send(nbr, kListTagBase + f, exports[f]);
    }
    for (int f = 0; f < 6; ++f) {
      const int nbr = decomp_.neighbor(rank_, static_cast<Face>(f));
      if (nbr < 0) continue;
      const int sender_face =
          static_cast<int>(opposite_face(static_cast<Face>(f)));
      long count = 0;
      comm_->recv(nbr, kSizeTagBase + sender_face, &count, sizeof(count));
      import_slots_[f].resize(count);
      comm_->recv(nbr, kListTagBase + sender_face, import_slots_[f]);
      in_flux_[f].assign(count * G, 0.0f);
      for (const auto& slot : import_slots_[f])
        require(slot.track >= 0 && slot.track < this->stacks().num_tracks(),
                "neighbor sent an out-of-range interface target");
    }
  }

  const Decomposition& decomp_;
  comm::Communicator* comm_;
  int rank_;
  std::vector<long> slot_index_;
  std::array<std::vector<float>, 6> out_flux_, in_flux_;
  std::array<std::vector<IfaceSlot>, 6> import_slots_;
};

}  // namespace

DomainRunSummary solve_decomposed(const Geometry& geometry,
                                  const std::vector<Material>& materials,
                                  const Decomposition& decomp,
                                  const DomainRunParams& params,
                                  const SolveOptions& options) {
  DomainRunSummary summary;
  std::mutex mutex;
  std::vector<long> domain_segments(decomp.num_domains(), 0);

  const std::uint64_t total_bytes = comm::Runtime::run(
      decomp.num_domains(), [&](comm::Communicator& comm) {
        const int rank = comm.rank();
        const Bounds bounds =
            decomp.domain_bounds(geometry.bounds(), rank);
        const Quadrature quad(params.num_azim, params.azim_spacing,
                              bounds.width_x(), bounds.width_y(),
                              params.num_polar);
        TrackGenerator2D gen(quad, bounds,
                             decomp.radial_kinds(geometry, rank));
        gen.trace(geometry);
        const TrackStacks stacks(gen, geometry, bounds.z_min, bounds.z_max,
                                 params.z_spacing);

        SolveResult result;
        std::uint64_t flux_bytes = 0;
        std::vector<double> fission, flux;
        std::unique_ptr<gpusim::Device> device;

        if (params.use_device) {
          device = std::make_unique<gpusim::Device>(params.device_spec);
          DomainImpl<GpuSolver> solver(stacks, materials, decomp, comm,
                                       *device, params.gpu_options);
          result = solver.solve(options);
          flux_bytes = solver.flux_bytes_per_iter();
          fission = solver.fsr().fission_rate();
          flux = solver.fsr().scalar_flux();
        } else {
          DomainImpl<CpuSolver> solver(stacks, materials, decomp, comm,
                                       params.sweep_workers);
          result = solver.solve(options);
          flux_bytes = solver.flux_bytes_per_iter();
          fission = solver.fsr().fission_rate();
          flux = solver.fsr().scalar_flux();
        }

        const long segments = stacks.total_segments();
        std::lock_guard lock(mutex);
        domain_segments[rank] = segments;
        summary.total_tracks_3d += stacks.num_tracks();
        summary.total_segments_3d += segments;
        summary.flux_bytes_per_iter += flux_bytes;
        if (rank == 0) {
          summary.result = result;
          summary.fission_rate = std::move(fission);
          summary.scalar_flux = std::move(flux);
        }
      });

  summary.total_bytes_sent = total_bytes;
  const long max_seg =
      *std::max_element(domain_segments.begin(), domain_segments.end());
  const double avg_seg =
      static_cast<double>(summary.total_segments_3d) / decomp.num_domains();
  summary.domain_load_uniformity =
      avg_seg > 0 ? static_cast<double>(max_seg) / avg_seg : 1.0;
  return summary;
}

}  // namespace antmoc
