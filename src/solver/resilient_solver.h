#pragma once

/// \file resilient_solver.h
/// Fault-tolerant wrapper around the device transport solve (DESIGN.md §5).
///
/// The paper's EXP track policy dies when 3D segments overflow the device
/// (Fig. 9); the Manager and OTF policies exist precisely to avoid that.
/// solve_resilient() automates the fallback: DeviceOutOfMemory during
/// solver setup walks a degradation ladder —
///
///   EXP  ->  EXP[compact] (8 B/segment stores, DESIGN.md §15)
///        ->  Managed (resident budget shrunk geometrically per retry)
///        ->  OTF
///
/// — the compact rung halves the resident-segment footprint before any
/// residency is shed (skipped when track.templates = force, which compact
/// storage is incompatible with, or when the request was already
/// compact) — logging each downgrade and recording it in the report, so a solve
/// configured optimistically for a large device still completes on a small
/// one, and the report says which policy actually ran and why.
///
/// Optionally, a periodic per-iteration checkpoint (scalar flux + k_eff +
/// boundary angular flux) lets the solve resume after a mid-iteration
/// fault instead of restarting from scratch.

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "solver/domain_solver.h"
#include "solver/gpu_solver.h"
#include "solver/track_policy.h"
#include "solver/transport_solver.h"

namespace antmoc {

struct ResilientSolveOptions {
  GpuSolverOptions gpu;    ///< requested policy / budget / mapping knobs
  SolveOptions solve;
  /// CMFD acceleration (`cmfd.*`). Its own degradation is internal — a
  /// diverged coarse solve (or an injected cmfd.solve fault) permanently
  /// drops back to plain power iteration without failing the solve; the
  /// report records that it happened.
  cmfd::CmfdOptions cmfd;

  /// Geometric factor applied to resident_budget_bytes on each Managed
  /// retry after an out-of-memory failure.
  double budget_shrink = 0.5;
  /// Managed budget shrinks attempted before degrading to OTF.
  int max_budget_shrinks = 4;
  /// Budgets below this go straight to OTF (shrinking further would store
  /// almost nothing anyway).
  std::size_t min_budget_bytes = std::size_t{1} << 20;

  /// Iterations between checkpoints (0 disables checkpointing).
  int checkpoint_every = 0;
  std::string checkpoint_path;
  /// Mid-solve failures survived by resuming from the last checkpoint.
  int max_restarts = 1;
};

/// One rung taken on the degradation ladder.
struct DowngradeStep {
  TrackPolicy from = TrackPolicy::kExplicit;
  TrackPolicy to = TrackPolicy::kExplicit;
  /// Segment storage before/after the step: the compact rung flips
  /// kExact -> kCompact without touching the policy.
  TrackStorage from_storage = TrackStorage::kExact;
  TrackStorage to_storage = TrackStorage::kExact;
  /// Resident budget in force after this step (meaningful for kManaged).
  std::size_t budget_bytes = 0;
  /// The failure that forced the step (the OOM diagnostic).
  std::string reason;
};

struct ResilientSolveReport {
  SolveResult result;
  TrackPolicy requested_policy = TrackPolicy::kExplicit;
  TrackPolicy actual_policy = TrackPolicy::kExplicit;
  /// Segment storage requested / actually run with (the compact ladder
  /// rung can flip the latter to kCompact).
  TrackStorage requested_storage = TrackStorage::kExact;
  TrackStorage actual_storage = TrackStorage::kExact;
  /// Resident budget the successful configuration ran with.
  std::size_t resident_budget_bytes = 0;
  std::vector<DowngradeStep> downgrades;
  int restarts = 0;
  bool resumed_from_checkpoint = false;
  /// CMFD was enabled but degraded to unaccelerated iteration mid-run.
  bool cmfd_degraded = false;

  /// One-line human-readable account ("EXP -> Managed(3 GiB) -> OTF ...").
  std::string summary() const;
};

const char* policy_name(TrackPolicy policy);

/// Runs a device eigenvalue solve that survives out-of-memory setup
/// failures by walking the policy ladder, and (when checkpointing is
/// configured) mid-iteration faults by resuming from the last checkpoint.
/// Failures with nowhere left to degrade to are rethrown.
ResilientSolveReport solve_resilient(const TrackStacks& stacks,
                                     const std::vector<Material>& materials,
                                     gpusim::Device& device,
                                     const ResilientSolveOptions& options);

// --- decomposed recovery ladder (DESIGN.md §11) ------------------------------

/// How a decomposed solve ultimately recovered from rank failures.
enum class RecoveryRung {
  kNone,     ///< failure-free (or nothing to recover from)
  kMigrate,  ///< in-world survivor takeover absorbed every death
  kRestart,  ///< takeover impossible/failed; re-ran from shards or scratch
};

const char* rung_name(RecoveryRung rung);

struct DecomposedResilientOptions {
  DomainRunParams params;
  SolveOptions solve;
  /// Full re-runs attempted after an unabsorbed failure (each resumes
  /// from the newest complete shard line when one exists).
  int max_restarts = 1;
};

struct DecomposedResilientReport {
  DomainRunSummary summary;
  RecoveryRung rung = RecoveryRung::kNone;
  int restarts = 0;
  /// The failure that forced the deepest rung taken (empty when kNone).
  std::string diagnostic;
};

/// Decomposed solve with the two-rung recovery ladder: first let the
/// in-world takeover absorb rank deaths (rung kMigrate, no restart); only
/// when that is impossible — no shards, rebalance off, takeovers
/// exhausted — fall back to re-running the whole solve, resumed from the
/// newest complete shard line (rung kRestart). Rethrows when restarts are
/// also exhausted. Never hangs: with DomainRunParams::comm_deadline set,
/// every blocked phase terminates in PeerFailure or CommTimeout.
DecomposedResilientReport solve_decomposed_resilient(
    const Geometry& geometry, const std::vector<Material>& materials,
    const Decomposition& decomp, const DecomposedResilientOptions& options);

}  // namespace antmoc
