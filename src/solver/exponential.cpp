/// \file exponential.cpp
/// Out-of-line home for ExpTable's batch kernel. This TU is compiled with
/// the same gated SIMD flags as event_sweep.cpp (-fopenmp-simd and, when
/// the build host executes AVX2+FMA, -mavx2 -mfma -ffp-contract=off) so
/// the `#pragma omp simd` below is always live here — keeping it in the
/// header would make it an ignored unknown pragma in every other TU.

#include "solver/exponential.h"

namespace antmoc {

void ExpTable::evaluate(const double* tau, double* out, long n) const {
  const double* p = pairs_.data();
  const double dx = dx_;
  const double max_tau = max_tau_;
#pragma omp simd
  for (long k = 0; k < n; ++k) {
    const double t = tau[k];
    const bool hi = t >= max_tau;
    const bool lo = t <= 0.0;
    const double x = t / dx;
    const double xc = (hi || lo) ? 0.0 : x;
    const std::size_t i = static_cast<std::size_t>(xc);
    const double f = xc - static_cast<double>(i);
    const double v = std::fma(f, p[2 * i + 1], p[2 * i]);
    out[k] = hi ? 1.0 : (lo ? 0.0 : v);
  }
}

}  // namespace antmoc
