#pragma once

/// \file exponential.h
/// Evaluation of the MOC attenuation factor F(tau) = 1 - exp(-tau)
/// (paper Eq. 1, the escape probability term).
///
/// Two evaluators are provided:
///  * exact — expm1-based, used by default by both the host and the
///    simulated-device solvers so their results are bit-comparable;
///  * tabulated — linear interpolation on a uniform grid, the classic GPU
///    optimization; max interpolation error is (dx^2)/8 * max|F''| <=
///    dx^2/8, selectable for performance studies.

#include <cmath>
#include <vector>

#include "util/error.h"

namespace antmoc {

/// F(tau) = 1 - exp(-tau), accurate for small tau.
inline double exp_f1(double tau) { return -std::expm1(-tau); }

/// Tabulated linear-interpolation evaluator for F(tau).
///
/// Storage is interleaved (value, slope) pairs per knot — pairs_[2i] is
/// F(i*dx) and pairs_[2i+1] is F((i+1)*dx) - F(i*dx) — so evaluation is
/// one adjacent load pair and a single fma, instead of the two scattered
/// loads plus three multiplies of the classic v[i]*(1-f) + v[i+1]*f form.
/// Algebraically identical interpolant; the error bound is unchanged.
///
/// Immutability contract: the table is fully built by the constructor and
/// never mutated afterwards — every member function is const. A single
/// instance may therefore be shared by any number of solvers and sweep
/// threads without synchronization (the engine's Session relies on this).
class ExpTable {
 public:
  /// \param max_tau  largest optical length the table covers; larger
  ///                 arguments saturate to 1 (correct to ~exp(-max_tau)).
  /// \param max_error  target absolute interpolation error.
  explicit ExpTable(double max_tau = 40.0, double max_error = 1e-6) {
    require(max_tau > 0 && max_error > 0, "bad ExpTable parameters");
    // Linear interpolation error bound: dx^2/8 * max|F''| with |F''| <= 1.
    dx_ = std::sqrt(8.0 * max_error);
    const std::size_t n = static_cast<std::size_t>(max_tau / dx_) + 2;
    pairs_.resize(2 * n);
    for (std::size_t i = 0; i < n; ++i) pairs_[2 * i] = exp_f1(i * dx_);
    for (std::size_t i = 0; i + 1 < n; ++i)
      pairs_[2 * i + 1] = pairs_[2 * (i + 1)] - pairs_[2 * i];
    pairs_[2 * (n - 1) + 1] = 0.0;  // saturation knot, never interpolated past
    max_tau_ = (n - 1) * dx_;
  }

  double operator()(double tau) const {
    if (tau >= max_tau_) return 1.0;
    if (tau <= 0.0) return 0.0;
    const double x = tau / dx_;
    const std::size_t i = static_cast<std::size_t>(x);
    const double f = x - static_cast<double>(i);
    const double* p = &pairs_[2 * i];
    return std::fma(f, p[1], p[0]);
  }

  /// Batch evaluation for the event sweep's stage 1: out[k] must equal
  /// operator()(tau[k]) bitwise for every lane. The body (exponential.cpp,
  /// compiled with the event backend's SIMD flags) is the branchless
  /// rewrite of operator() — out-of-range lanes clamp the interpolation
  /// argument to 0 (any in-table index works; the lane's fma result is
  /// discarded by the select) and the in-range lanes perform the exact
  /// same divide / truncate / fma sequence, so vectorizing the loop
  /// (`#pragma omp simd`, correctly rounded lane ops) cannot change a bit.
  void evaluate(const double* tau, double* out, long n) const;

  double table_spacing() const { return dx_; }
  /// Number of knots (not stored doubles; see pair accessors below).
  std::size_t size() const { return pairs_.size() / 2; }

  /// Layout accessors for the regression test: knot value and forward
  /// difference to the next knot.
  double knot_value(std::size_t i) const { return pairs_[2 * i]; }
  double knot_slope(std::size_t i) const { return pairs_[2 * i + 1]; }

 private:
  double dx_;
  double max_tau_;
  std::vector<double> pairs_;  ///< interleaved (value, slope) per knot
};

}  // namespace antmoc
