#include "solver/track_policy.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <numeric>
#include <utility>

#include "telemetry/telemetry.h"
#include "util/error.h"

namespace antmoc {

// The Eq. 5 layout constants (perf/layout.h) must match the structs they
// model, or arena charges and memory predictions silently drift apart.
// layout.h cannot include the track headers (dependency direction), so the
// contract is pinned here, where both sides are visible.
static_assert(sizeof(Segment3D) == perf::kSegment3DBytes,
              "perf::kSegment3DBytes must match sizeof(Segment3D)");
static_assert(sizeof(Segment2D) == perf::kSegment2DBytes,
              "perf::kSegment2DBytes must match sizeof(Segment2D)");
static_assert(sizeof(std::int32_t) + sizeof(float) ==
                  perf::kSegment3DCompactBytes,
              "perf::kSegment3DCompactBytes must match the compact SoA pair");

TrackStorage parse_track_storage(const std::string& name) {
  if (name == "exact") return TrackStorage::kExact;
  if (name == "compact") return TrackStorage::kCompact;
  throw Error("unknown track.storage '" + name + "' (exact|compact)");
}

const char* track_storage_name(TrackStorage storage) {
  return storage == TrackStorage::kCompact ? "compact" : "exact";
}

TrackStorage default_track_storage() {
  if (const char* env = std::getenv("ANTMOC_TRACK_STORAGE")) {
    if (env[0] != '\0') return parse_track_storage(env);
  }
  return TrackStorage::kExact;
}

void require_compact_storage_compatible(TrackStorage storage,
                                        TemplateMode templates) {
  if (storage == TrackStorage::kCompact && templates == TemplateMode::kForce)
    throw Error(
        "track.storage 'compact' deactivates chord-template dispatch and "
        "conflicts with track.templates 'force' (use auto or off)");
}

namespace {

/// Startup micro-calibration (once per process): times the three segment
/// expansion paths — resident linear scan, generic OTF walk, chord-template
/// expansion — on a sample of this geometry's real tracks and records the
/// measured ratios as perf::sweep_costs(). Skipped entirely when the costs
/// are already pinned (user `track.otf_cost` override, an explicit
/// perf::set_sweep_costs(), or an earlier calibration).
void calibrate_sweep_costs(const TrackStacks& stacks,
                           const ChordTemplateCache* templates) {
  if (perf::sweep_costs_pinned()) return;
  const long n = stacks.num_tracks();
  if (n == 0) return;

  constexpr long kSampleTracks = 64;
  std::vector<long> sample;
  const long stride = std::max<long>(1, n / kSampleTracks);
  for (long id = 0; id < n && static_cast<long>(sample.size()) < kSampleTracks;
       id += stride)
    sample.push_back(id);

  // Materialize the sample once so the resident path times a pure scan.
  std::vector<Segment3D> stored;
  std::vector<std::pair<long, long>> spans;  // (offset, count) per track
  for (long id : sample) {
    const long off = static_cast<long>(stored.size());
    stacks.for_each_segment(id, /*forward=*/true, [&](long fsr, double len) {
      stored.push_back({fsr, len});
    });
    spans.emplace_back(off, static_cast<long>(stored.size()) - off);
  }
  const long sample_segments = static_cast<long>(stored.size());
  if (sample_segments == 0) return;

  // Template sample: eligible tracks only (they are the only ones the
  // template path ever serves).
  std::vector<long> tmpl_sample;
  long tmpl_segments = 0;
  if (templates != nullptr) {
    for (long id = 0;
         id < n && static_cast<long>(tmpl_sample.size()) < kSampleTracks;
         ++id) {
      if (!templates->eligible(id)) continue;
      tmpl_sample.push_back(id);
      tmpl_segments += templates->segment_counts()[id];
    }
  }

  double sink = 0.0;
  long fsr_sink = 0;
  // Seconds per segment for one expansion body, repeated until the
  // measurement is long enough to be meaningful.
  const auto per_segment = [](long segs_per_rep, auto&& body) {
    using clock = std::chrono::steady_clock;
    const auto t0 = clock::now();
    long segs = 0;
    int reps = 0;
    do {
      body();
      segs += segs_per_rep;
      ++reps;
    } while (clock::now() - t0 < std::chrono::milliseconds(2) && reps < 1024);
    const double sec = std::chrono::duration<double>(clock::now() - t0).count();
    return segs > 0 ? sec / static_cast<double>(segs) : 0.0;
  };

  const double t_resident = per_segment(sample_segments, [&] {
    for (const auto& [off, count] : spans) {
      const Segment3D* s = stored.data() + off;
      for (long i = 0; i < count; ++i) {
        sink += s[i].length;
        fsr_sink += s[i].fsr;
      }
    }
  });
  const double t_otf = per_segment(sample_segments, [&] {
    for (long id : sample)
      stacks.for_each_segment(id, /*forward=*/true, [&](long fsr, double len) {
        sink += len;
        fsr_sink += fsr;
      });
  });
  double t_tmpl = 0.0;
  if (tmpl_segments > 0) {
    t_tmpl = per_segment(tmpl_segments, [&] {
      for (long id : tmpl_sample)
        templates->for_each_segment(id, /*forward=*/true,
                                    [&](long fsr, double len) {
                                      sink += len;
                                      fsr_sink += fsr;
                                    });
    });
  }
  volatile double guard = sink + static_cast<double>(fsr_sink);
  (void)guard;
  if (!(t_resident > 0.0) || !(t_otf > 0.0)) return;

  const perf::SweepCosts defaults{};
  perf::SweepCosts measured;
  measured.resident = 1.0;
  measured.otf = std::clamp(t_otf / t_resident, 1.25, 64.0);
  measured.templated =
      tmpl_segments > 0
          ? std::clamp(t_tmpl / t_resident, 1.0, measured.otf)
          : std::min(defaults.templated, measured.otf);
  perf::record_calibration(measured);
}

}  // namespace

TrackManager::TrackManager(const TrackStacks& stacks, TrackPolicy policy,
                           gpusim::Device* device,
                           std::size_t resident_budget_bytes,
                           const ChordTemplateCache* templates,
                           TrackStorage storage)
    : policy_(policy),
      storage_mode_(storage),
      device_(device),
      templates_(templates),
      // Compact storage routes every chord through one fp32 rounding
      // point (store or rounded walk) — the fp64 template fast-path is
      // deactivated, though its validated segment counts are still
      // reused below.
      templates_active_(templates != nullptr &&
                        storage != TrackStorage::kCompact) {
  const long n = stacks.num_tracks();
  if (storage_mode_ == TrackStorage::kCompact)
    require(stacks.geometry().num_fsrs() <=
                std::numeric_limits<std::int32_t>::max(),
            "compact track storage: FSR count exceeds 32 bits");
  offset_.assign(n, -1);
  if (templates_ != nullptr && templates_->num_tracks() == n) {
    // Validated construction byproduct — skip the counting pass.
    counts_ = templates_->segment_counts();
  } else {
    counts_.resize(n);
    for (long id = 0; id < n; ++id) counts_[id] = stacks.count_segments(id);
  }
  for (long id = 0; id < n; ++id) total_segments_ += counts_[id];

  perf::calibrate_once([&] { calibrate_sweep_costs(stacks, templates_); });
  costs_ = perf::sweep_costs();

  if (policy != TrackPolicy::kOnTheFly) {
    // Rank tracks by the regeneration work their storage saves (paper
    // §4.1: prefer storing tracks with more segments to save the most
    // regeneration work per byte). Template-covered tracks regenerate at
    // the cheap template ratio, so the budget flows to heavy tracks that
    // still pay the full generic-walk tax.
    const auto regen_cost = [&](long id) {
      return templates_active_ && templates_->eligible(id)
                 ? costs_.templated
                 : costs_.otf;
    };
    std::vector<long> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](long a, long b) {
      return static_cast<double>(counts_[a]) *
                 (regen_cost(a) - costs_.resident) >
             static_cast<double>(counts_[b]) *
                 (regen_cost(b) - costs_.resident);
    });

    const std::size_t budget = policy == TrackPolicy::kExplicit
                                   ? static_cast<std::size_t>(-1)
                                   : resident_budget_bytes;

    // The per-segment byte cost is the storage mode's: the compact SoA
    // pair halves it, so the same Managed budget packs ~2x the segments
    // (exactly how compact mode raises the resident fraction).
    const std::size_t seg_bytes = perf::segment3d_bytes(storage_mode_);
    long resident_segments = 0;
    std::vector<long> chosen;
    std::size_t bytes = 0;
    for (long id : order) {
      const std::size_t need =
          static_cast<std::size_t>(counts_[id]) * seg_bytes;
      if (policy == TrackPolicy::kManaged && bytes + need > budget) continue;
      bytes += need;
      chosen.push_back(id);
      resident_segments += counts_[id];
    }
    if (policy == TrackPolicy::kExplicit)
      require(static_cast<long>(chosen.size()) == n,
              "explicit policy must store every track");

    // Charge the device arena before materializing: an over-capacity EXP
    // run must fail here, not after host allocation.
    if (device_ != nullptr)
      device_->memory().charge("3d_segments", resident_segments * seg_bytes);
    resident_segments_ = resident_segments;

    if (storage_mode_ == TrackStorage::kCompact) {
      fsr32_.reserve(resident_segments);
      len32_.reserve(resident_segments);
      for (long id : chosen) {
        offset_[id] = static_cast<long>(fsr32_.size());
        stacks.for_each_segment(
            id, /*forward=*/true, [&](long fsr, double len) {
              const float len32 = static_cast<float>(len);
              // One rounding point per chord; a chord the fp32 range
              // cannot represent (overflow, or a nonzero length
              // underflowing to zero) would silently corrupt the sweep.
              require(std::isfinite(len32) && (len32 > 0.0f || len == 0.0),
                      "compact track storage: chord length outside the "
                      "fp32 range");
              fsr32_.push_back(static_cast<std::int32_t>(fsr));
              len32_.push_back(len32);
            });
        require(
            static_cast<long>(fsr32_.size()) - offset_[id] == counts_[id],
            "segment expansion count mismatch");
      }
    } else {
      storage_.reserve(resident_segments);
      for (long id : chosen) {
        offset_[id] = static_cast<long>(storage_.size());
        stacks.for_each_segment(id, /*forward=*/true,
                                [&](long fsr, double len) {
                                  storage_.push_back({fsr, len});
                                });
        require(
            static_cast<long>(storage_.size()) - offset_[id] == counts_[id],
            "segment expansion count mismatch");
      }
    }
    num_resident_ = static_cast<long>(chosen.size());
  }

  if (templates_active_ && templates_->num_tracks() == n) {
    for (long id = 0; id < n; ++id)
      if (offset_[id] < 0 && templates_->eligible(id))
        templated_segments_ += counts_[id];
  }

  // `track.storage` telemetry: the BENCH_memory gate and the engine's
  // admission accounting read the same numbers the arena was charged.
  if (telemetry::on()) {
    auto& m = telemetry::metrics();
    const int mode = storage_mode_ == TrackStorage::kCompact ? 1 : 0;
    m.gauge("track.storage_mode").set(static_cast<double>(mode));
    m.gauge(telemetry::label("track.resident_bytes", "mode", mode))
        .set(static_cast<double>(resident_bytes()));
    m.gauge(telemetry::label("track.resident_fraction", "mode", mode))
        .set(resident_fraction());
  }
}

TrackManager::~TrackManager() {
  if (device_ != nullptr && resident_segments_ > 0)
    device_->memory().release(
        "3d_segments", static_cast<std::size_t>(resident_segments_) *
                           perf::segment3d_bytes(storage_mode_));
}

}  // namespace antmoc
