#include "solver/track_policy.h"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <utility>

#include "util/error.h"

namespace antmoc {
namespace {

/// Startup micro-calibration (once per process): times the three segment
/// expansion paths — resident linear scan, generic OTF walk, chord-template
/// expansion — on a sample of this geometry's real tracks and records the
/// measured ratios as perf::sweep_costs(). Skipped entirely when the costs
/// are already pinned (user `track.otf_cost` override, an explicit
/// perf::set_sweep_costs(), or an earlier calibration).
void calibrate_sweep_costs(const TrackStacks& stacks,
                           const ChordTemplateCache* templates) {
  if (perf::sweep_costs_pinned()) return;
  const long n = stacks.num_tracks();
  if (n == 0) return;

  constexpr long kSampleTracks = 64;
  std::vector<long> sample;
  const long stride = std::max<long>(1, n / kSampleTracks);
  for (long id = 0; id < n && static_cast<long>(sample.size()) < kSampleTracks;
       id += stride)
    sample.push_back(id);

  // Materialize the sample once so the resident path times a pure scan.
  std::vector<Segment3D> stored;
  std::vector<std::pair<long, long>> spans;  // (offset, count) per track
  for (long id : sample) {
    const long off = static_cast<long>(stored.size());
    stacks.for_each_segment(id, /*forward=*/true, [&](long fsr, double len) {
      stored.push_back({fsr, len});
    });
    spans.emplace_back(off, static_cast<long>(stored.size()) - off);
  }
  const long sample_segments = static_cast<long>(stored.size());
  if (sample_segments == 0) return;

  // Template sample: eligible tracks only (they are the only ones the
  // template path ever serves).
  std::vector<long> tmpl_sample;
  long tmpl_segments = 0;
  if (templates != nullptr) {
    for (long id = 0;
         id < n && static_cast<long>(tmpl_sample.size()) < kSampleTracks;
         ++id) {
      if (!templates->eligible(id)) continue;
      tmpl_sample.push_back(id);
      tmpl_segments += templates->segment_counts()[id];
    }
  }

  double sink = 0.0;
  long fsr_sink = 0;
  // Seconds per segment for one expansion body, repeated until the
  // measurement is long enough to be meaningful.
  const auto per_segment = [](long segs_per_rep, auto&& body) {
    using clock = std::chrono::steady_clock;
    const auto t0 = clock::now();
    long segs = 0;
    int reps = 0;
    do {
      body();
      segs += segs_per_rep;
      ++reps;
    } while (clock::now() - t0 < std::chrono::milliseconds(2) && reps < 1024);
    const double sec = std::chrono::duration<double>(clock::now() - t0).count();
    return segs > 0 ? sec / static_cast<double>(segs) : 0.0;
  };

  const double t_resident = per_segment(sample_segments, [&] {
    for (const auto& [off, count] : spans) {
      const Segment3D* s = stored.data() + off;
      for (long i = 0; i < count; ++i) {
        sink += s[i].length;
        fsr_sink += s[i].fsr;
      }
    }
  });
  const double t_otf = per_segment(sample_segments, [&] {
    for (long id : sample)
      stacks.for_each_segment(id, /*forward=*/true, [&](long fsr, double len) {
        sink += len;
        fsr_sink += fsr;
      });
  });
  double t_tmpl = 0.0;
  if (tmpl_segments > 0) {
    t_tmpl = per_segment(tmpl_segments, [&] {
      for (long id : tmpl_sample)
        templates->for_each_segment(id, /*forward=*/true,
                                    [&](long fsr, double len) {
                                      sink += len;
                                      fsr_sink += fsr;
                                    });
    });
  }
  volatile double guard = sink + static_cast<double>(fsr_sink);
  (void)guard;
  if (!(t_resident > 0.0) || !(t_otf > 0.0)) return;

  const perf::SweepCosts defaults{};
  perf::SweepCosts measured;
  measured.resident = 1.0;
  measured.otf = std::clamp(t_otf / t_resident, 1.25, 64.0);
  measured.templated =
      tmpl_segments > 0
          ? std::clamp(t_tmpl / t_resident, 1.0, measured.otf)
          : std::min(defaults.templated, measured.otf);
  perf::record_calibration(measured);
}

}  // namespace

TrackManager::TrackManager(const TrackStacks& stacks, TrackPolicy policy,
                           gpusim::Device* device,
                           std::size_t resident_budget_bytes,
                           const ChordTemplateCache* templates)
    : policy_(policy),
      device_(device),
      templates_(templates),
      templates_active_(templates != nullptr) {
  const long n = stacks.num_tracks();
  offset_.assign(n, -1);
  if (templates_ != nullptr && templates_->num_tracks() == n) {
    // Validated construction byproduct — skip the counting pass.
    counts_ = templates_->segment_counts();
  } else {
    counts_.resize(n);
    for (long id = 0; id < n; ++id) counts_[id] = stacks.count_segments(id);
  }
  for (long id = 0; id < n; ++id) total_segments_ += counts_[id];

  perf::calibrate_once([&] { calibrate_sweep_costs(stacks, templates_); });
  costs_ = perf::sweep_costs();

  if (policy != TrackPolicy::kOnTheFly) {
    // Rank tracks by the regeneration work their storage saves (paper
    // §4.1: prefer storing tracks with more segments to save the most
    // regeneration work per byte). Template-covered tracks regenerate at
    // the cheap template ratio, so the budget flows to heavy tracks that
    // still pay the full generic-walk tax.
    const auto regen_cost = [&](long id) {
      return templates_active_ && templates_->eligible(id)
                 ? costs_.templated
                 : costs_.otf;
    };
    std::vector<long> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](long a, long b) {
      return static_cast<double>(counts_[a]) *
                 (regen_cost(a) - costs_.resident) >
             static_cast<double>(counts_[b]) *
                 (regen_cost(b) - costs_.resident);
    });

    const std::size_t budget = policy == TrackPolicy::kExplicit
                                   ? static_cast<std::size_t>(-1)
                                   : resident_budget_bytes;

    long resident_segments = 0;
    std::vector<long> chosen;
    std::size_t bytes = 0;
    for (long id : order) {
      const std::size_t need =
          static_cast<std::size_t>(counts_[id]) * sizeof(Segment3D);
      if (policy == TrackPolicy::kManaged && bytes + need > budget) continue;
      bytes += need;
      chosen.push_back(id);
      resident_segments += counts_[id];
    }
    if (policy == TrackPolicy::kExplicit)
      require(static_cast<long>(chosen.size()) == n,
              "explicit policy must store every track");

    // Charge the device arena before materializing: an over-capacity EXP
    // run must fail here, not after host allocation.
    if (device_ != nullptr)
      device_->memory().charge("3d_segments",
                               resident_segments * sizeof(Segment3D));

    storage_.reserve(resident_segments);
    for (long id : chosen) {
      offset_[id] = static_cast<long>(storage_.size());
      stacks.for_each_segment(id, /*forward=*/true,
                              [&](long fsr, double len) {
                                storage_.push_back({fsr, len});
                              });
      require(
          static_cast<long>(storage_.size()) - offset_[id] == counts_[id],
          "segment expansion count mismatch");
    }
    num_resident_ = static_cast<long>(chosen.size());
  }

  if (templates_ != nullptr && templates_->num_tracks() == n) {
    for (long id = 0; id < n; ++id)
      if (offset_[id] < 0 && templates_->eligible(id))
        templated_segments_ += counts_[id];
  }
}

TrackManager::~TrackManager() {
  if (device_ != nullptr && !storage_.empty())
    device_->memory().release("3d_segments",
                              storage_.size() * sizeof(Segment3D));
}

}  // namespace antmoc
