#include "solver/track_policy.h"

#include <algorithm>
#include <numeric>

#include "util/error.h"

namespace antmoc {

TrackManager::TrackManager(const TrackStacks& stacks, TrackPolicy policy,
                           gpusim::Device* device,
                           std::size_t resident_budget_bytes)
    : policy_(policy), device_(device) {
  const long n = stacks.num_tracks();
  counts_.resize(n);
  offset_.assign(n, -1);
  for (long id = 0; id < n; ++id) {
    counts_[id] = stacks.count_segments(id);
    total_segments_ += counts_[id];
  }
  if (policy == TrackPolicy::kOnTheFly) return;

  // Rank tracks by descending segment count (paper §4.1: prefer storing
  // tracks with more segments to save the most regeneration work per byte).
  std::vector<long> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](long a, long b) {
    return counts_[a] > counts_[b];
  });

  const std::size_t budget = policy == TrackPolicy::kExplicit
                                 ? static_cast<std::size_t>(-1)
                                 : resident_budget_bytes;

  long resident_segments = 0;
  std::vector<long> chosen;
  std::size_t bytes = 0;
  for (long id : order) {
    const std::size_t need =
        static_cast<std::size_t>(counts_[id]) * sizeof(Segment3D);
    if (policy == TrackPolicy::kManaged && bytes + need > budget) continue;
    bytes += need;
    chosen.push_back(id);
    resident_segments += counts_[id];
  }
  if (policy == TrackPolicy::kExplicit)
    require(static_cast<long>(chosen.size()) == n,
            "explicit policy must store every track");

  // Charge the device arena before materializing: an over-capacity EXP run
  // must fail here, not after host allocation.
  if (device_ != nullptr)
    device_->memory().charge("3d_segments",
                             resident_segments * sizeof(Segment3D));

  storage_.reserve(resident_segments);
  for (long id : chosen) {
    offset_[id] = static_cast<long>(storage_.size());
    stacks.for_each_segment(id, /*forward=*/true,
                            [&](long fsr, double len) {
                              storage_.push_back({fsr, len});
                            });
    require(static_cast<long>(storage_.size()) - offset_[id] == counts_[id],
            "segment expansion count mismatch");
  }
  num_resident_ = static_cast<long>(chosen.size());
}

TrackManager::~TrackManager() {
  if (device_ != nullptr && !storage_.empty())
    device_->memory().release("3d_segments",
                              storage_.size() * sizeof(Segment3D));
}

}  // namespace antmoc
