#include "solver/transport_solver.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>

#include "cmfd/cmfd.h"
#include "fault/fault.h"
#include "gpusim/atomic.h"
#include "io/writers.h"
#include "perfmodel/sweep_costs.h"
#include "solver/track_policy.h"
#include "telemetry/telemetry.h"
#include "util/error.h"
#include "util/log.h"
#include "util/timer.h"

namespace antmoc {

namespace {
constexpr double k4Pi = 4.0 * 3.14159265358979323846;
}

LinkKind to_link_kind(BoundaryType bc) {
  switch (bc) {
    case BoundaryType::kVacuum:
      return LinkKind::kVacuum;
    case BoundaryType::kReflective:
      return LinkKind::kReflective;
    case BoundaryType::kPeriodic:
      return LinkKind::kPeriodic;
    case BoundaryType::kInterface:
      return LinkKind::kInterface;
  }
  return LinkKind::kVacuum;
}

TransportSolver::TransportSolver(const TrackStacks& stacks,
                                 const std::vector<Material>& materials)
    : stacks_(stacks),
      fsr_(stacks.geometry(), materials),
      z_min_kind_(to_link_kind(stacks.geometry().boundary(Face::kZMin))),
      z_max_kind_(to_link_kind(stacks.geometry().boundary(Face::kZMax))) {
  const long slots = stacks.num_tracks() * 2 * fsr_.num_groups();
  psi_in_.assign(slots, 0.0f);
  psi_next_.assign(slots, 0.0f);
}

TransportSolver::~TransportSolver() = default;

void TransportSolver::enable_cmfd(const cmfd::CmfdOptions& options) {
  if (!options.enable) return;
  cmfd_ = std::make_unique<cmfd::CmfdAccelerator>(options);
}

bool TransportSolver::cmfd_active() const {
  return cmfd_ != nullptr && cmfd_->attached();
}

void TransportSolver::set_z_kinds(LinkKind z_min, LinkKind z_max) {
  require(!links_built_, "z-face kinds must be set before links are built");
  z_min_kind_ = z_min;
  z_max_kind_ = z_max;
}

void TransportSolver::build_links() {
  if (links_built_) return;
  links_.resize(stacks_.num_tracks() * 2);
  for (long id = 0; id < stacks_.num_tracks(); ++id) {
    links_[id * 2 + 0] = stacks_.link(id, true, z_min_kind_, z_max_kind_);
    links_[id * 2 + 1] = stacks_.link(id, false, z_min_kind_, z_max_kind_);
  }
  links_built_ = true;
}

void TransportSolver::deposit(long id, bool forward, const double* psi,
                              bool atomic) {
  const int G = fsr_.num_groups();
  const Link3D& link = links_[id * 2 + (forward ? 0 : 1)];
  switch (link.kind) {
    case Link3D::Kind::kVacuum:
      return;
    case Link3D::Kind::kLocal: {
      float* slot =
          psi_next_.data() + (link.track * 2 + (link.forward ? 0 : 1)) * G;
      if (atomic) {
        for (int g = 0; g < G; ++g)
          gpusim::device_atomic_add(slot[g], static_cast<float>(psi[g]));
      } else {
        for (int g = 0; g < G; ++g) slot[g] += static_cast<float>(psi[g]);
      }
      return;
    }
    case Link3D::Kind::kInterface:
      handle_interface(id, forward, link, psi);
      return;
  }
}

util::Parallel& TransportSolver::par() {
  if (!par_) par_ = std::make_unique<util::Parallel>(workers_knob_);
  return *par_;
}

const TrackInfoCache& TransportSolver::info_cache() {
  if (shared_info_cache_ != nullptr) return *shared_info_cache_;
  if (!host_info_cache_)
    host_info_cache_ = std::make_unique<TrackInfoCache>(stacks_);
  return *host_info_cache_;
}

const ChordTemplateCache& TransportSolver::chord_templates() {
  if (shared_templates_ != nullptr) return *shared_templates_;
  if (!chord_templates_)
    chord_templates_ = std::make_unique<ChordTemplateCache>(stacks_);
  return *chord_templates_;
}

void TransportSolver::install_links(const std::vector<Link3D>& links) {
  require(static_cast<long>(links.size()) == stacks_.num_tracks() * 2,
          "installed link table has the wrong shape for these stacks");
  links_ = links;
  links_built_ = true;
}

void TransportSolver::ensure_staging() {
  const std::size_t n =
      static_cast<std::size_t>(stacks_.num_tracks()) * 2 * fsr_.num_groups();
  if (psi_out_.size() != n) psi_out_.assign(n, 0.0);
}

void TransportSolver::flush_staged_deposits() {
  const int G = fsr_.num_groups();
  for (long id = 0; id < stacks_.num_tracks(); ++id) {
    deposit(id, true, psi_out_.data() + (id * 2 + 0) * G, /*atomic=*/false);
    deposit(id, false, psi_out_.data() + (id * 2 + 1) * G, /*atomic=*/false);
  }
}

void TransportSolver::sweep_subset(const std::vector<long>&) {
  fail<Error>("this sweep engine does not support phased (subset) sweeps");
}

void TransportSolver::flush_staged_deposits(const std::vector<long>& ids) {
  const int G = fsr_.num_groups();
  for (long id : ids) {
    deposit(id, true, psi_out_.data() + (id * 2 + 0) * G, /*atomic=*/false);
    deposit(id, false, psi_out_.data() + (id * 2 + 1) * G, /*atomic=*/false);
  }
}

void TransportSolver::record_sweep_throughput(telemetry::TraceSpan& span,
                                              double seconds) {
  if (last_sweep_segments_ <= 0) return;
  span.set_arg("segments", last_sweep_segments_);
  if (!telemetry::on()) return;
  const bool event = active_backend_ == SweepBackend::kEvent;
  auto& m = telemetry::metrics();
  m.counter("solver.sweep_segments")
      .add(static_cast<std::uint64_t>(last_sweep_segments_));
  if (seconds > 0.0) {
    const double rate = static_cast<double>(last_sweep_segments_) / seconds;
    m.gauge("solver.segments_per_second").set(rate);
    // Backend-tagged rate: traces comparing history vs event runs read
    // the split without correlating gauge history against config.
    m.gauge(telemetry::label("solver.segments_per_second", "backend",
                             event ? 1 : 0))
        .set(rate);
  }
  // Backend tag on the sweep span stream: spans carry one (name, value)
  // arg slot — reserved for the segment count — so the backend rides as
  // a paired instant event plus a steady gauge.
  m.gauge("solver.sweep_backend").set(event ? 1.0 : 0.0);
  telemetry::Telemetry::instance().instant(
      "sweep.backend", "solver", /*rank=*/-1, "event", event ? 1 : 0);
  if (event && last_event_batches_ > 0) {
    // Mean occupancy of the stage-1 event batches (1.0 = every batch
    // full); short tracks drag it down via their partial tail batches.
    m.gauge("solver.event_batch_fill")
        .set(static_cast<double>(last_sweep_segments_) /
             (static_cast<double>(last_event_batches_) * kEventBatch));
  }
  if (template_dispatch_) {
    m.counter("track.template_hits")
        .add(static_cast<std::uint64_t>(last_template_hits_));
    m.counter("track.template_fallbacks")
        .add(static_cast<std::uint64_t>(last_template_fallbacks_));
    m.gauge("track.template_coverage")
        .set(static_cast<double>(last_template_segments_) /
             static_cast<double>(last_sweep_segments_));
    // Modeled regeneration-time split for this sweep: apportion the wall
    // time by the calibrated per-segment cost of each expansion path,
    // then count only the regeneration excess (cost above a resident
    // scan) as "regeneration". Traces show this tax shrink as template
    // coverage grows.
    const perf::SweepCosts c = perf::sweep_costs();
    const double resident = static_cast<double>(last_resident_segments_);
    const double templated = static_cast<double>(last_template_segments_);
    const double generic = static_cast<double>(
        last_sweep_segments_ - last_resident_segments_ -
        last_template_segments_);
    const double weighted = resident * c.resident + templated * c.templated +
                            generic * c.otf;
    if (seconds > 0.0 && weighted > 0.0) {
      const double per_unit = seconds / weighted;
      m.gauge("solver.regen_generic_seconds")
          .set(generic * (c.otf - c.resident) * per_unit);
      m.gauge("solver.regen_template_seconds")
          .set(templated * (c.templated - c.resident) * per_unit);
    }
    telemetry::Telemetry::instance().instant(
        "sweep.template_split", "solver", /*rank=*/-1, "template_segments",
        last_template_segments_);
  }
}

void TransportSolver::compute_volumes() {
  ScopedTimer probe("solver/volumes");
  const TrackInfoCache& cache = info_cache();
  util::Parallel& P = par();
  const long n = stacks_.num_tracks();
  const long num_fsrs = fsr_.num_fsrs();
  // Per-worker private volumes merged by the deterministic tree reduction:
  // no atomics on the one-to-many track->FSR deposit, reproducible for a
  // fixed worker count.
  std::vector<std::vector<double>> partial(
      P.workers(), std::vector<double>(num_fsrs, 0.0));
  P.for_chunks(n, [&](unsigned w, long b, long e) {
    auto& vol = partial[w];
    for (long id = b; id < e; ++id) {
      // Both sweep directions traverse the same segments.
      const double wgt = 2.0 * cache.weight(id) / k4Pi;
      stacks_.for_each_segment(cache[id], true, [&](long fsr_id, double len) {
        vol[fsr_id] += wgt * len;
      });
    }
  });
  std::vector<double> vol(num_fsrs, 0.0);
  P.reduce_into(partial, vol.data(), num_fsrs);
  fsr_.set_volumes(std::move(vol));
}

SolveResult TransportSolver::solve_fixed_source(
    const std::vector<double>& external, const SolveOptions& options) {
  ScopedTimer probe("solver/solve_fixed_source");
  build_links();
  fsr_.set_parallel(&par());
  if (!volumes_ready_) {
    compute_volumes();
    volumes_ready_ = true;
  }

  fsr_.fill_flux(0.0);
  std::fill(psi_in_.begin(), psi_in_.end(), 0.0f);
  std::vector<double> prev_flux;

  SolveResult result;
  const int max_iter = options.fixed_iterations > 0
                           ? options.fixed_iterations
                           : options.max_iterations;
  for (int iter = 1; iter <= max_iter; ++iter) {
    telemetry::TraceSpan iter_span("solver/iteration", "solver", -1, -1,
                                   "iteration", iter);
    fsr_.update_source_fixed(external);
    fsr_.zero_accumulator();
    std::fill(psi_next_.begin(), psi_next_.end(), 0.0f);
    {
      ScopedTimer sweep_probe("solver/transport_sweep");
      telemetry::TraceSpan sweep_span("solver/transport_sweep", "solver");
      Timer sweep_timer;
      sweep_timer.start();
      sweep();
      sweep_timer.stop();
      record_sweep_throughput(sweep_span, sweep_timer.seconds());
    }
    exchange();
    std::swap(psi_in_, psi_next_);
    fsr_.close_scalar_flux();

    // Max relative change of the scalar flux since the last iteration
    // (max is order independent, so the parallel reduction is exact).
    const auto& flux = fsr_.scalar_flux();
    double residual = 1.0;
    if (!prev_flux.empty()) {
      const double* f = flux.data();
      const double* p = prev_flux.data();
      residual = par().max_over(
          static_cast<long>(flux.size()), 0.0, [&](long i) {
            return f[i] > 0.0 ? std::abs(f[i] - p[i]) / f[i] : 0.0;
          });
    }
    prev_flux.assign(flux.begin(), flux.end());

    result.iterations = iter;
    result.residual = residual;
    if (telemetry::on()) telemetry::metrics().gauge("solver.residual").set(residual);
    if (options.verbose)
      log::info("fixed-source iter ", iter, "  residual=", residual);
    if (options.fixed_iterations <= 0 && iter >= 2 &&
        residual < options.tolerance) {
      result.converged = true;
      break;
    }
  }
  if (options.fixed_iterations > 0) result.converged = true;
  return result;
}

namespace {

/// Checkpoint payload (inside the io CRC frame): iteration first so shard
/// recovery can read the line marker without knowing solver shapes, then
/// the shape header, then the state.
void append_bytes(std::vector<std::byte>& out, const void* data,
                  std::size_t bytes) {
  const auto* p = static_cast<const std::byte*>(data);
  out.insert(out.end(), p, p + bytes);
}

void extract_bytes(const std::vector<std::byte>& in, std::size_t& offset,
                   void* data, std::size_t bytes, const std::string& path) {
  require(offset + bytes <= in.size(),
          "checkpoint payload too short for its shape header: " + path);
  std::memcpy(data, in.data() + offset, bytes);
  offset += bytes;
}

}  // namespace

void TransportSolver::save_state(const std::string& path,
                                 std::int64_t iteration) const {
  const std::int64_t num_fsrs = fsr_.num_fsrs();
  const std::int32_t groups = fsr_.num_groups();
  const std::int64_t psi_size = static_cast<std::int64_t>(psi_in_.size());
  // Storage mode rides in the shape header: a compact-mode flux history
  // is pcm-level different from an exact one, so a resume must not mix
  // them. Iteration stays the FIRST payload field — the cluster's shard
  // recovery reads just those 8 bytes (read_shard_iteration).
  const std::int32_t storage =
      storage_mode() == TrackStorage::kCompact ? 1 : 0;
  const auto& flux = fsr_.scalar_flux();
  std::vector<std::byte> payload;
  payload.reserve(sizeof iteration + sizeof num_fsrs + sizeof groups +
                  sizeof psi_size + sizeof storage + sizeof k_ +
                  flux.size() * sizeof(double) +
                  psi_in_.size() * sizeof(float));
  append_bytes(payload, &iteration, sizeof iteration);
  append_bytes(payload, &num_fsrs, sizeof num_fsrs);
  append_bytes(payload, &groups, sizeof groups);
  append_bytes(payload, &psi_size, sizeof psi_size);
  append_bytes(payload, &storage, sizeof storage);
  append_bytes(payload, &k_, sizeof k_);
  append_bytes(payload, flux.data(), flux.size() * sizeof(double));
  append_bytes(payload, psi_in_.data(), psi_in_.size() * sizeof(float));
  io::write_checked_blob(path, payload);
}

std::int64_t TransportSolver::load_state(const std::string& path) {
  const std::vector<std::byte> payload = io::read_checked_blob(path);
  std::size_t offset = 0;
  std::int64_t iteration = 0, num_fsrs = 0, psi_size = 0;
  std::int32_t groups = 0, storage = 0;
  extract_bytes(payload, offset, &iteration, sizeof iteration, path);
  extract_bytes(payload, offset, &num_fsrs, sizeof num_fsrs, path);
  extract_bytes(payload, offset, &groups, sizeof groups, path);
  extract_bytes(payload, offset, &psi_size, sizeof psi_size, path);
  extract_bytes(payload, offset, &storage, sizeof storage, path);
  require(num_fsrs == fsr_.num_fsrs() && groups == fsr_.num_groups() &&
              psi_size == static_cast<std::int64_t>(psi_in_.size()),
          "checkpoint shape does not match this solver: " + path);
  const TrackStorage recorded =
      storage == 1 ? TrackStorage::kCompact : TrackStorage::kExact;
  require(recorded == storage_mode(),
          "checkpoint track.storage '" +
              std::string(track_storage_name(recorded)) +
              "' does not match this solver's '" +
              std::string(track_storage_name(storage_mode())) +
              "': " + path);
  extract_bytes(payload, offset, &k_, sizeof k_, path);
  std::vector<double> flux(num_fsrs * groups);
  extract_bytes(payload, offset, flux.data(), flux.size() * sizeof(double),
                path);
  extract_bytes(payload, offset, psi_in_.data(),
                psi_in_.size() * sizeof(float), path);
  // Restore the flux through the public surface.
  for (long r = 0; r < fsr_.num_fsrs(); ++r)
    for (int g = 0; g < groups; ++g)
      fsr_.accumulator()[r * groups + g] = 0.0;
  fsr_.set_scalar_flux(std::move(flux));
  state_loaded_ = true;
  return iteration;
}

void TransportSolver::prepare_solve(const SolveOptions& options) {
  build_links();
  fsr_.set_parallel(&par());
  if (cmfd_ != nullptr)
    cmfd_->attach(stacks_, z_min_kind_, z_max_kind_, &par(), shared_cmfd_);
  if (!volumes_ready_) {
    compute_volumes();
    volumes_ready_ = true;
  }

  if (options.resume) {
    require(state_loaded_, "resume requested but no checkpoint was loaded");
    // Exact-state resume: checkpoints are written *after* the iteration's
    // normalization, so the restored eigenvector is already scaled.
    // Renormalizing here would multiply by a production ratio ≈ 1 but not
    // exactly 1 in floating point, breaking the bitwise identity between
    // a resumed and an uninterrupted solve (DESIGN.md §11).
    require(fsr_.fission_production() > 0.0,
            "restored state has no fission production");
    fsr_.update_source(k_);
    fsr_.fission_source_residual();  // seed the residual history
  } else {
    // Initial guess: flat flux normalized to unit fission production.
    fsr_.fill_flux(1.0);
    std::fill(psi_in_.begin(), psi_in_.end(), 0.0f);
    k_ = 1.0;
    const double p0 = fsr_.fission_production();
    require(p0 > 0.0,
            "eigenvalue solve needs fissile material with tracked volume");
    fsr_.scale_flux(1.0 / p0);
    fsr_.update_source(k_);
    fsr_.fission_source_residual();  // seed the residual history
  }
}

void TransportSolver::sweep_step() {
  fsr_.zero_accumulator();
  std::fill(psi_next_.begin(), psi_next_.end(), 0.0f);
  if (cmfd_active()) cmfd_->begin_iteration();
  ScopedTimer sweep_probe("solver/transport_sweep");
  telemetry::TraceSpan sweep_span("solver/transport_sweep", "solver");
  Timer sweep_timer;
  sweep_timer.start();
  sweep();
  sweep_timer.stop();
  // Merged here — inside the per-iteration step — so the decomposed
  // driver can allreduce merged_currents() before close_step.
  if (cmfd_active()) cmfd_->merge_currents();
  last_sweep_seconds_ = sweep_timer.seconds();
  record_sweep_throughput(sweep_span, sweep_timer.seconds());
}

TransportSolver::IterationStats TransportSolver::close_step(
    int iteration, const SolveOptions& options) {
  std::swap(psi_in_, psi_next_);
  fsr_.close_scalar_flux();

  // Power iteration: previous production was normalized to 1.
  const double production = fsr_.fission_production();
  require(production > 0.0, "fission production vanished mid-solve");
  k_ *= production;
  const double scale = 1.0 / production;
  fsr_.scale_flux(scale);
  float* pin = psi_in_.data();
  par().for_each(static_cast<long>(psi_in_.size()), [&](long i) {
    pin[i] = static_cast<float>(pin[i] * scale);
  });

  IterationStats stats;
  stats.production = production;
  if (cmfd_active() &&
      cmfd_->accelerate(fsr_, psi_in_, k_, scale, par())) {
    // Re-normalize the prolonged eigenvector. The coarse ratios preserve
    // the homogenized fission production, so this is a ~1 correction —
    // and it runs only when prolongation was applied, keeping the
    // degraded/fault path bitwise identical to plain power iteration.
    const double p2 = fsr_.fission_production();
    require(p2 > 0.0, "fission production vanished after CMFD");
    const double s2 = 1.0 / p2;
    fsr_.scale_flux(s2);
    par().for_each(static_cast<long>(psi_in_.size()), [&](long i) {
      pin[i] = static_cast<float>(pin[i] * s2);
    });
  }
  stats.residual = fsr_.fission_source_residual();
  stats.k_eff = k_;
  fsr_.update_source(k_);
  if (telemetry::on()) {
    auto& m = telemetry::metrics();
    m.gauge("solver.k_eff").set(k_);
    m.gauge("solver.residual").set(stats.residual);
    m.counter("solver.iterations").add(1);
  }
  if (options.on_iteration) options.on_iteration(iteration, k_);
  if (options.verbose)
    log::info("iter ", iteration, "  k_eff=", k_, "  residual=",
              stats.residual);
  return stats;
}

void TransportSolver::set_global_volumes(std::vector<double> volumes) {
  fsr_.set_volumes(std::move(volumes));
  volumes_ready_ = true;
}

SolveResult TransportSolver::solve(const SolveOptions& options) {
  ScopedTimer probe("solver/solve");
  prepare_solve(options);

  SolveResult result;
  const int max_iter = options.fixed_iterations > 0
                           ? options.fixed_iterations
                           : options.max_iterations;
  for (int iter = 1; iter <= max_iter; ++iter) {
    telemetry::TraceSpan iter_span("solver/iteration", "solver", -1, -1,
                                   "iteration", iter);
    // Scriptable failure point for checkpoint/resume tests: a plan like
    // "solver.iteration throw solver nth=5" kills the 5th iteration.
    fault::point("solver.iteration");
    sweep_step();
    {
      telemetry::TraceSpan exchange_span("solver/exchange", "solver");
      exchange();
    }
    const IterationStats stats = close_step(iter, options);
    result.residual = stats.residual;
    result.iterations = iter;
    result.k_eff = stats.k_eff;

    // Converged when both the fission-source *shape* (residual) and the
    // eigenvalue (successive production ratio, = k_n/k_{n-1}) are stable:
    // a flat source converges in shape immediately while k still drifts.
    if (options.fixed_iterations <= 0 && iter >= 3 &&
        result.residual < options.tolerance &&
        std::abs(stats.production - 1.0) < options.tolerance) {
      result.converged = true;
      break;
    }
  }
  if (options.fixed_iterations > 0) result.converged = true;
  return result;
}

}  // namespace antmoc
