#pragma once

/// \file cpu_solver.h
/// Sequential host reference solver ("OpenMOC-3D-like"). Identical physics
/// to GpuSolver — same segments, same double-buffered flux hand-off — so
/// the §5.1 cross-code comparison (pin fission rates, k_eff) can be
/// reproduced by comparing the two within this repository.

#include "solver/exponential.h"
#include "solver/transport_solver.h"

namespace antmoc {

class CpuSolver : public TransportSolver {
 public:
  CpuSolver(const TrackStacks& stacks,
            const std::vector<Material>& materials)
      : TransportSolver(stacks, materials) {}

 protected:
  void sweep() override;
};

}  // namespace antmoc
