#pragma once

/// \file cpu_solver.h
/// Host reference solver ("OpenMOC-3D-like"). Identical physics to
/// GpuSolver — same segments, same double-buffered flux hand-off — so the
/// §5.1 cross-code comparison (pin fission rates, k_eff) can be reproduced
/// by comparing the two within this repository.
///
/// The sweep is fork-join parallel over tracks: each worker owns a fixed
/// contiguous track range, tallies into a private FSR accumulator, and
/// stages its outgoing boundary fluxes; the privates are merged by a
/// deterministic tree reduction and the deposits flushed in serial track
/// order. No atomics anywhere, and results are bit-reproducible for a
/// fixed worker count (`sweep.workers`, or ANTMOC_SWEEP_WORKERS).
///
/// Segment expansion dispatches through the chord-template cache
/// (`track.templates`, default auto): template-eligible tracks expand
/// from precomputed per-stack (fsr, length) entries, the rest run the
/// generic OTF walk — bitwise-identical output either way (the cache is
/// validated at construction; see track/chord_template.h).

#include "solver/exponential.h"
#include "solver/transport_solver.h"
#include "track/chord_template.h"

namespace antmoc {

class CpuSolver : public TransportSolver {
 public:
  /// \param workers    sweep worker threads; 0 = auto (see
  ///                   TransportSolver::set_sweep_workers).
  /// \param templates  chord-template dispatch; kAuto and kForce both
  ///                   build the cache (no arena to overflow on the
  ///                   host), kOff always runs the generic walk.
  CpuSolver(const TrackStacks& stacks,
            const std::vector<Material>& materials, unsigned workers = 0,
            TemplateMode templates = TemplateMode::kAuto)
      : TransportSolver(stacks, materials), template_mode_(templates) {
    set_sweep_workers(workers);
  }

 protected:
  void sweep() override;
  void sweep_subset(const std::vector<long>& ids) override;

 private:
  /// Attenuates both directions of track `id`, tallying w*delta into `acc`
  /// and staging (stage = true) or depositing (stage = false) the outgoing
  /// flux. `psi` is a caller-owned G-element scratch buffer. Returns the
  /// number of 3D segments traversed.
  long sweep_one(long id, double* acc, double* psi, bool stage);

  /// Builds the template cache on first use (unless kOff).
  void ensure_templates();

  /// Persistent parallel-sweep scratch: the W x (num_fsrs * G) private
  /// tallies, per-worker psi buffers, and per-worker segment counters
  /// survive across sweeps (zero-filled instead of reallocated — the
  /// tree reduction consumes the privates, so a fill is required anyway).
  void ensure_sweep_scratch(unsigned workers, long tally_len, int groups);

  TemplateMode template_mode_;
  const ChordTemplateCache* tmpl_ = nullptr;  ///< owned by the base class

  std::vector<std::vector<double>> priv_;  ///< per-worker FSR tallies
  std::vector<double> psi_scratch_;        ///< per-worker G-element psi
  std::vector<long> worker_segments_;
};

}  // namespace antmoc
