#pragma once

/// \file cpu_solver.h
/// Host reference solver ("OpenMOC-3D-like"). Identical physics to
/// GpuSolver — same segments, same double-buffered flux hand-off — so the
/// §5.1 cross-code comparison (pin fission rates, k_eff) can be reproduced
/// by comparing the two within this repository.
///
/// The sweep is fork-join parallel over tracks: each worker owns a fixed
/// contiguous track range, tallies into a private FSR accumulator, and
/// stages its outgoing boundary fluxes; the privates are merged by a
/// deterministic tree reduction and the deposits flushed in serial track
/// order. No atomics anywhere, and results are bit-reproducible for a
/// fixed worker count (`sweep.workers`, or ANTMOC_SWEEP_WORKERS).
///
/// Segment expansion dispatches through the chord-template cache
/// (`track.templates`, default auto): template-eligible tracks expand
/// from precomputed per-stack (fsr, length) entries, the rest run the
/// generic OTF walk — bitwise-identical output either way (the cache is
/// validated at construction; see track/chord_template.h).
///
/// `sweep.backend = event` (or ANTMOC_SWEEP_BACKEND=event) swaps the
/// per-track expansion for the flat event-array kernel of
/// solver/event_sweep.h: segments are flattened once per solve and every
/// sweep scans contiguous SoA arrays with an explicitly vectorized
/// 7-group attenuation loop — bitwise identical to the history backend
/// for a fixed worker count.

#include "solver/event_sweep.h"
#include "solver/exponential.h"
#include "solver/track_policy.h"
#include "solver/transport_solver.h"
#include "track/chord_template.h"

namespace antmoc {

class CpuSolver : public TransportSolver {
 public:
  /// \param workers    sweep worker threads; 0 = auto (see
  ///                   TransportSolver::set_sweep_workers).
  /// \param templates  chord-template dispatch; kAuto and kForce both
  ///                   build the cache (no arena to overflow on the
  ///                   host), kOff always runs the generic walk.
  /// \param backend    sweep kernel organization (`sweep.backend`);
  ///                   defaults to the ANTMOC_SWEEP_BACKEND env var, else
  ///                   history. Both backends are bitwise identical for a
  ///                   fixed worker count.
  /// \param storage    chord precision policy (`track.storage`); kCompact
  ///                   rounds every chord once to fp32 (and gives the
  ///                   event arrays the fp32 lane) while all attenuation
  ///                   arithmetic stays fp64, matching the device solvers'
  ///                   compact mode. Deactivates template dispatch;
  ///                   incompatible with templates = kForce.
  CpuSolver(const TrackStacks& stacks,
            const std::vector<Material>& materials, unsigned workers = 0,
            TemplateMode templates = TemplateMode::kAuto,
            SweepBackend backend = default_sweep_backend(),
            TrackStorage storage = default_track_storage())
      : TransportSolver(stacks, materials),
        template_mode_(templates),
        backend_(backend),
        storage_(storage) {
    require_compact_storage_compatible(storage, templates);
    set_sweep_workers(workers);
  }

  SweepBackend sweep_backend() const { return backend_; }

  /// Chord precision policy in force.
  TrackStorage storage_mode() const override { return storage_; }

  /// Points the event backend at session-shared event arrays instead of
  /// building a private copy (not owned; must outlive the solver; must
  /// describe these stacks). Immutable after construction, so concurrent
  /// solvers may read them freely. Call before the first solve.
  void set_shared_events(const EventArrays* events) {
    shared_events_ = events;
  }

 protected:
  void sweep() override;
  void sweep_subset(const std::vector<long>& ids) override;

 private:
  /// Attenuates both directions of track `id`, tallying w*delta into `acc`
  /// and staging (stage = true) or depositing (stage = false) the outgoing
  /// flux. `psi` is a caller-owned G-element scratch buffer. `cur`, when
  /// non-null, is a CMFD surface-current buffer: w*psi is added at every
  /// crossing the plan recorded for this track — a pure read of psi, so
  /// the attenuation arithmetic (and hence all fluxes) is bitwise
  /// unchanged by tallying. Returns the number of 3D segments traversed.
  long sweep_one(long id, double* acc, double* psi, bool stage, double* cur);

  /// Event-backend variant of sweep_one: scans the flat event ranges of
  /// both directions with the two-stage batch kernel, splitting each range
  /// at the recorded crossing ordinals when `cur` is non-null (the batch
  /// kernel is sequential in psi, so sub-range calls are bitwise identical
  /// to one call). Bitwise identical to sweep_one for the same track.
  long sweep_one_event(long id, double* acc, double* psi, bool stage,
                       EventSweepScratch& ws, double* cur);

  /// Builds the template cache on first use (unless kOff).
  void ensure_templates();

  /// Builds (or adopts) the flat event arrays on first use of the event
  /// backend — the once-per-solve flatten, traced as "solver/event_build".
  void ensure_events();

  /// Persistent parallel-sweep scratch: the W x (num_fsrs * G) private
  /// tallies, per-worker psi buffers, and per-worker segment counters
  /// survive across sweeps (zero-filled instead of reallocated — the
  /// tree reduction consumes the privates, so a fill is required anyway).
  void ensure_sweep_scratch(unsigned workers, long tally_len, int groups);

  /// Sums the per-worker event/batch counters into the telemetry members
  /// and resets them.
  void collect_event_counters();

  TemplateMode template_mode_;
  const ChordTemplateCache* tmpl_ = nullptr;  ///< owned by the base class

  SweepBackend backend_;
  TrackStorage storage_ = TrackStorage::kExact;
  const EventArrays* events_ = nullptr;  ///< active event arrays
  std::unique_ptr<EventArrays> owned_events_;
  const EventArrays* shared_events_ = nullptr;  ///< session-provided
  std::vector<EventSweepScratch> event_scratch_;  ///< per worker

  std::vector<std::vector<double>> priv_;  ///< per-worker FSR tallies
  std::vector<double> psi_scratch_;        ///< per-worker G-element psi
  std::vector<long> worker_segments_;
};

}  // namespace antmoc
