#pragma once

/// \file cpu_solver.h
/// Host reference solver ("OpenMOC-3D-like"). Identical physics to
/// GpuSolver — same segments, same double-buffered flux hand-off — so the
/// §5.1 cross-code comparison (pin fission rates, k_eff) can be reproduced
/// by comparing the two within this repository.
///
/// The sweep is fork-join parallel over tracks: each worker owns a fixed
/// contiguous track range, tallies into a private FSR accumulator, and
/// stages its outgoing boundary fluxes; the privates are merged by a
/// deterministic tree reduction and the deposits flushed in serial track
/// order. No atomics anywhere, and results are bit-reproducible for a
/// fixed worker count (`sweep.workers`, or ANTMOC_SWEEP_WORKERS).

#include "solver/exponential.h"
#include "solver/transport_solver.h"

namespace antmoc {

class CpuSolver : public TransportSolver {
 public:
  /// \param workers  sweep worker threads; 0 = auto (see
  ///                 TransportSolver::set_sweep_workers).
  CpuSolver(const TrackStacks& stacks,
            const std::vector<Material>& materials, unsigned workers = 0)
      : TransportSolver(stacks, materials) {
    set_sweep_workers(workers);
  }

 protected:
  void sweep() override;
  void sweep_subset(const std::vector<long>& ids) override;

 private:
  /// Attenuates both directions of track `id`, tallying w*delta into `acc`
  /// and staging (stage = true) or depositing (stage = false) the outgoing
  /// flux. `psi` is a caller-owned G-element scratch buffer. Returns the
  /// number of 3D segments traversed.
  long sweep_one(long id, double* acc, double* psi, bool stage);
};

}  // namespace antmoc
