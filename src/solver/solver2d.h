#pragma once

/// \file solver2d.h
/// 2D MOC solver — the "OpenMOC-2D" class of codes in the paper's Table 1.
/// Solves the axially infinite problem directly on the 2D track laydown,
/// folding the polar quadrature into the optical length (s / sin(theta))
/// instead of stacking 3D tracks. Serves two purposes:
///  * a fast solver for axially uniform problems;
///  * a cross-validation oracle: a 3D solve of an axially uniform,
///    z-reflective problem must match the 2D answer, because the exact
///    axial reflective links make the 3D solution z-independent.

#include <vector>

#include "material/material.h"
#include "solver/exponential.h"
#include "solver/fsr_data.h"
#include "solver/transport_solver.h"
#include "track/generator2d.h"

namespace antmoc {

class Solver2D {
 public:
  /// `geometry` must have exactly one axial layer so FSR ids coincide
  /// with radial region ids; it must be the geometry `gen` was traced on.
  Solver2D(const TrackGenerator2D& gen, const Geometry& geometry,
           const std::vector<Material>& materials);

  SolveResult solve(const SolveOptions& options = {});

  FsrData& fsr() { return fsr_; }
  const FsrData& fsr() const { return fsr_; }
  double k_eff() const { return k_; }

 private:
  void sweep();
  void compute_areas();

  const TrackGenerator2D& gen_;
  FsrData fsr_;
  int num_polar_;
  double k_ = 1.0;
  /// Boundary angular flux [track * 2 + dir][polar][group], flattened.
  std::vector<float> psi_in_, psi_next_;

  long slot(long track, int dir, int polar) const {
    return ((track * 2 + dir) * num_polar_ + polar) *
           fsr_.num_groups();
  }
};

}  // namespace antmoc
