#pragma once

/// \file transport_solver.h
/// The k-eigenvalue transport solve (paper §3.1 stage 4).
///
/// Shared power-iteration driver over a virtual transport sweep:
///   1. update the reduced source from the current flux and k,
///   2. sweep every 3D track in both directions, attenuating the angular
///      flux segment by segment (Eq. 1) and accumulating dpsi into FSRs,
///   3. hand outgoing boundary fluxes to linked tracks (double-buffered —
///      the Point-Jacobi update of §2.1 — so parallel sweeps are
///      deterministic and domain decomposition needs no ordering),
///   4. close the scalar flux, update k from the fission production ratio,
///      normalize, and test the fission-source residual.

#include <functional>
#include <string>
#include <vector>

#include "material/material.h"
#include "solver/exponential.h"
#include "solver/fsr_data.h"
#include "track/track3d.h"

namespace antmoc {

struct SolveOptions {
  double tolerance = 1e-5;
  int max_iterations = 2000;
  /// Continue from state previously restored with load_state() instead of
  /// re-initializing the flux guess.
  bool resume = false;
  /// Run exactly this many iterations, ignoring convergence (benchmarking
  /// mode; <= 0 disables).
  int fixed_iterations = 0;
  bool verbose = false;
  /// Invoked after every completed power iteration with the iteration
  /// number and current k_eff — the hook the resilient solve path uses for
  /// periodic checkpoints. Exceptions it throws propagate out of solve().
  std::function<void(int iteration, double k_eff)> on_iteration;
};

struct SolveResult {
  double k_eff = 0.0;
  int iterations = 0;
  bool converged = false;
  double residual = 0.0;
};

class TransportSolver {
 public:
  /// z-face link kinds default to the geometry's boundary conditions;
  /// domain-decomposed solvers override them with kInterface.
  TransportSolver(const TrackStacks& stacks,
                  const std::vector<Material>& materials);
  virtual ~TransportSolver() = default;

  TransportSolver(const TransportSolver&) = delete;
  TransportSolver& operator=(const TransportSolver&) = delete;

  SolveResult solve(const SolveOptions& options = {});

  /// Fixed-source mode: solves the subcritical transport problem with an
  /// external isotropic source `external` [(fsr, group), neutrons/cm^3 s]
  /// instead of the eigenvalue problem. Scattering and fission (at k=1)
  /// remain in the source; the configuration must be subcritical or the
  /// iteration diverges. Returns k_eff = 0 in the result; convergence is
  /// on the max relative scalar-flux change.
  SolveResult solve_fixed_source(const std::vector<double>& external,
                                 const SolveOptions& options = {});

  /// Writes the full iteration state (k, scalar flux, boundary angular
  /// fluxes) to a binary checkpoint. A later solve with
  /// SolveOptions::resume = true continues from it — long production runs
  /// survive interruption.
  void save_state(const std::string& path) const;

  /// Restores a checkpoint written by save_state on an identically
  /// configured solver (same geometry, tracks, groups); throws
  /// antmoc::Error on any mismatch.
  void load_state(const std::string& path);

  FsrData& fsr() { return fsr_; }
  const FsrData& fsr() const { return fsr_; }
  const TrackStacks& stacks() const { return stacks_; }
  double k_eff() const { return k_; }

  /// Switches the attenuation factor 1-exp(-tau) to linear table
  /// interpolation (the classic GPU optimization; §3.2). Pass nullptr to
  /// restore the exact evaluator. The table must outlive the solver.
  void set_exp_table(const ExpTable* table) { exp_table_ = table; }

  /// Evaluates 1 - exp(-tau) with the active evaluator.
  double attenuation(double tau) const {
    return exp_table_ != nullptr ? (*exp_table_)(tau) : exp_f1(tau);
  }

  /// Boundary angular-flux slot of (track, direction): [id*2 + dir]*G.
  /// Exposed for tests and the interface exchanger.
  std::vector<float>& psi_in() { return psi_in_; }
  std::vector<float>& psi_next() { return psi_next_; }

  const std::vector<Link3D>& links() const { return links_; }

 protected:
  /// One full transport sweep: reads psi_in_, writes fsr().accumulator()
  /// and psi_next_. Must call deposit() (or equivalent) for every
  /// outgoing track end.
  virtual void sweep() = 0;

  /// Hook between sweep and flux closure (domain solvers exchange
  /// interface fluxes and reduce accumulators here).
  virtual void exchange() {}

  /// Hook for interface links (default: flux is dropped; domain solvers
  /// buffer it for their neighbor).
  virtual void handle_interface(long source_id, bool source_forward,
                                const Link3D& link, const double* psi) {
    (void)source_id;
    (void)source_forward;
    (void)link;
    (void)psi;
  }

  /// Routes an outgoing flux according to the cached link. Thread-safe for
  /// concurrent distinct (id, dir) pairs when `atomic` is true.
  void deposit(long id, bool forward, const double* psi, bool atomic);

  /// Computes track-based FSR volumes and stores them in fsr().
  /// Virtual so domain solvers can reduce partial volumes globally.
  virtual void compute_volumes();

  /// Allows subclasses (domain decomposition) to override z-face semantics
  /// before links are cached; call once, before solve().
  void set_z_kinds(LinkKind z_min, LinkKind z_max);

  /// Caches per-(track, direction) links; invoked lazily by solve().
  void build_links();

  const TrackStacks& stacks_;
  FsrData fsr_;
  LinkKind z_min_kind_;
  LinkKind z_max_kind_;
  std::vector<float> psi_in_, psi_next_;
  std::vector<Link3D> links_;
  double k_ = 1.0;
  const ExpTable* exp_table_ = nullptr;
  bool links_built_ = false;
  bool state_loaded_ = false;
  bool volumes_ready_ = false;
};

/// Maps a geometry boundary condition to the link semantics of that face.
LinkKind to_link_kind(BoundaryType bc);

}  // namespace antmoc
