#pragma once

/// \file transport_solver.h
/// The k-eigenvalue transport solve (paper §3.1 stage 4).
///
/// Shared power-iteration driver over a virtual transport sweep:
///   1. update the reduced source from the current flux and k,
///   2. sweep every 3D track in both directions, attenuating the angular
///      flux segment by segment (Eq. 1) and accumulating dpsi into FSRs,
///   3. hand outgoing boundary fluxes to linked tracks (double-buffered —
///      the Point-Jacobi update of §2.1 — so parallel sweeps are
///      deterministic and domain decomposition needs no ordering),
///   4. close the scalar flux, update k from the fission production ratio,
///      normalize, and test the fission-source residual.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "material/material.h"
#include "solver/event_sweep.h"
#include "solver/exponential.h"
#include "solver/fsr_data.h"
#include "telemetry/telemetry.h"
#include "track/chord_template.h"
#include "track/track3d.h"
#include "util/parallel.h"

namespace antmoc {

namespace cmfd {
class CmfdAccelerator;
struct CmfdContext;
struct CmfdOptions;
}  // namespace cmfd

struct SolveOptions {
  double tolerance = 1e-5;
  int max_iterations = 2000;
  /// Continue from state previously restored with load_state() instead of
  /// re-initializing the flux guess.
  bool resume = false;
  /// Run exactly this many iterations, ignoring convergence (benchmarking
  /// mode; <= 0 disables).
  int fixed_iterations = 0;
  bool verbose = false;
  /// Invoked after every completed power iteration with the iteration
  /// number and current k_eff — the hook the resilient solve path uses for
  /// periodic checkpoints. Exceptions it throws propagate out of solve().
  std::function<void(int iteration, double k_eff)> on_iteration;
};

struct SolveResult {
  double k_eff = 0.0;
  int iterations = 0;
  bool converged = false;
  double residual = 0.0;
};

class TransportSolver {
 public:
  /// z-face link kinds default to the geometry's boundary conditions;
  /// domain-decomposed solvers override them with kInterface.
  TransportSolver(const TrackStacks& stacks,
                  const std::vector<Material>& materials);
  virtual ~TransportSolver();  // out of line: cmfd_ is incomplete here

  TransportSolver(const TransportSolver&) = delete;
  TransportSolver& operator=(const TransportSolver&) = delete;

  SolveResult solve(const SolveOptions& options = {});

  /// Fixed-source mode: solves the subcritical transport problem with an
  /// external isotropic source `external` [(fsr, group), neutrons/cm^3 s]
  /// instead of the eigenvalue problem. Scattering and fission (at k=1)
  /// remain in the source; the configuration must be subcritical or the
  /// iteration diverges. Returns k_eff = 0 in the result; convergence is
  /// on the max relative scalar-flux change.
  SolveResult solve_fixed_source(const std::vector<double>& external,
                                 const SolveOptions& options = {});

  /// Writes the full iteration state (k, scalar flux, boundary angular
  /// fluxes) to a CRC-framed binary checkpoint (io::write_checked_blob).
  /// A later solve with SolveOptions::resume = true continues from it —
  /// long production runs survive interruption. `iteration` records the
  /// power iteration the state belongs to; per-domain shard recovery
  /// (DESIGN.md §11) uses it to find a consistent cross-domain line.
  void save_state(const std::string& path, std::int64_t iteration = 0) const;

  /// Restores a checkpoint written by save_state on an identically
  /// configured solver (same geometry, tracks, groups); throws
  /// antmoc::Error on any mismatch, truncation, or CRC failure. Returns
  /// the iteration recorded at save time.
  std::int64_t load_state(const std::string& path);

  // --- stepwise iteration API (multi-domain hosting, DESIGN.md §11) --------
  // solve() is this sequence per iteration; the decomposed rank driver
  // calls the pieces directly so one rank can advance several hosted
  // domains in lockstep and reduce their accumulators in one keyed
  // collective. The split introduces no behavior change: solve() itself
  // is implemented on top of it.

  /// Per-iteration closure numbers every hosted domain reports identically
  /// (the FSR data is global after the accumulator reduction).
  struct IterationStats {
    double k_eff = 0.0;
    double residual = 0.0;
    double production = 0.0;
  };

  /// Builds links, computes volumes (once), and initializes or resumes the
  /// flux state. Re-runnable: a takeover calls load_state() and then
  /// prepare_solve() again with resume = true to rewind to the shard.
  void prepare_solve(const SolveOptions& options);

  /// Zeroes the accumulator and psi_next, then runs one timed transport
  /// sweep (with throughput telemetry). The caller performs the exchange.
  void sweep_step();

  /// Everything after the exchange: flux closure, k update, normalization,
  /// residual, source update, telemetry, and the on_iteration hook.
  IterationStats close_step(int iteration, const SolveOptions& options);

  /// Installs already-reduced global FSR volumes and marks them ready, so
  /// an adopted domain's solver skips the compute_volumes() collective it
  /// cannot rerun alone mid-solve.
  void set_global_volumes(std::vector<double> volumes);

  /// Wall seconds of the most recent sweep_step() — the per-rank signal
  /// behind the voluntary-migration drift gauge.
  double last_sweep_seconds() const { return last_sweep_seconds_; }

  FsrData& fsr() { return fsr_; }
  const FsrData& fsr() const { return fsr_; }
  const TrackStacks& stacks() const { return stacks_; }
  double k_eff() const { return k_; }

  /// Switches the attenuation factor 1-exp(-tau) to linear table
  /// interpolation (the classic GPU optimization; §3.2). Pass nullptr to
  /// restore the exact evaluator. The table must outlive the solver.
  void set_exp_table(const ExpTable* table) { exp_table_ = table; }

  /// Evaluates 1 - exp(-tau) with the active evaluator.
  double attenuation(double tau) const {
    return exp_table_ != nullptr ? (*exp_table_)(tau) : exp_f1(tau);
  }

  /// Boundary angular-flux slot of (track, direction): [id*2 + dir]*G.
  /// Exposed for tests and the interface exchanger.
  std::vector<float>& psi_in() { return psi_in_; }
  std::vector<float>& psi_next() { return psi_next_; }

  const std::vector<Link3D>& links() const { return links_; }

  /// Installs a prebuilt per-(track, direction) link table — engine
  /// sessions compute it once at warm-up and share it across jobs. Must
  /// equal what build_links() would produce for this solver's stacks and
  /// z-face kinds (links are a pure function of both), so installing it
  /// changes nothing but the setup cost.
  void install_links(const std::vector<Link3D>& links);

  /// Points the lazily built host-side caches at session-shared instances
  /// instead of constructing private copies (not owned; must outlive the
  /// solver). Both cache types are immutable after construction, so any
  /// number of concurrent solvers may read them freely; call before the
  /// first solve.
  void set_shared_caches(const TrackInfoCache* info,
                         const ChordTemplateCache* templates) {
    shared_info_cache_ = info;
    shared_templates_ = templates;
  }

  /// Host fork-join worker count for the parallel per-iteration loops
  /// (and the CpuSolver sweep). 0 = auto (ANTMOC_SWEEP_WORKERS env or
  /// hardware concurrency). Must be set before solve(); results are
  /// bit-reproducible for a fixed worker count.
  void set_sweep_workers(unsigned workers) {
    if (par_ && workers != workers_knob_) par_.reset();
    workers_knob_ = workers;
  }
  unsigned sweep_workers() { return par().workers(); }

  /// 3D segments traversed by the most recent sweep (both directions).
  long last_sweep_segments() const { return last_sweep_segments_; }

  // --- CMFD acceleration (DESIGN.md §14) -----------------------------------
  /// Enables CMFD acceleration with the given knobs. Call before
  /// prepare_solve()/solve(); the accelerator attaches its coarse mesh +
  /// crossing plan there (or borrows a session-shared context installed
  /// via set_shared_cmfd_context). With acceleration off — or degraded by
  /// a divergence/fault — the solve is bitwise identical to an
  /// unaccelerated run: the sweep tallies only read the angular flux.
  void enable_cmfd(const cmfd::CmfdOptions& options);

  /// Session-shared coarse-mesh context (mesh + crossing plan); must
  /// outlive the solver and match its stacks and z-face kinds.
  void set_shared_cmfd_context(const cmfd::CmfdContext* context) {
    shared_cmfd_ = context;
  }

  /// The attached accelerator, nullptr when CMFD is off. (Named to avoid
  /// shadowing the antmoc::cmfd namespace in solver class scopes.)
  cmfd::CmfdAccelerator* cmfd_accel() { return cmfd_.get(); }
  const cmfd::CmfdAccelerator* cmfd_accel() const { return cmfd_.get(); }

  /// Backend the sweep engine actually runs ("history" unless an event
  /// backend activated — a requested event backend may have fallen back,
  /// e.g. after the device-arena OOM on "event_arrays").
  SweepBackend active_sweep_backend() const { return active_backend_; }

  /// Storage mode of the hot per-segment state (`track.storage`).
  /// Recorded in checkpoints: a compact-mode flux history is pcm-level
  /// different from an exact one, so resume/migration must round-trip
  /// the mode instead of silently mixing the two.
  virtual TrackStorage storage_mode() const { return TrackStorage::kExact; }

 protected:
  /// One full transport sweep: reads psi_in_, writes fsr().accumulator()
  /// and psi_next_. Must call deposit() (or equivalent) for every
  /// outgoing track end.
  virtual void sweep() = 0;

  /// Phased sweep support (DESIGN.md §8): sweeps only the given tracks,
  /// adding their tallies into fsr().accumulator() and staging every
  /// outgoing flux (never depositing inline) so the caller can flush a
  /// phase's deposits — and post its interface payloads — before the next
  /// phase runs. Adds the traversed segments to last_sweep_segments_;
  /// callers zero it before the first phase. A fixed worker count and a
  /// fixed phase partition give bit-reproducible tallies. Engines without
  /// phased support keep the default, which throws.
  virtual void sweep_subset(const std::vector<long>& ids);

  /// Flushes staged deposits for exactly the given tracks, in the order
  /// listed (both directions per track, forward first) — the subset
  /// analogue of flush_staged_deposits().
  void flush_staged_deposits(const std::vector<long>& ids);

  /// Hook between sweep and flux closure (domain solvers exchange
  /// interface fluxes and reduce accumulators here).
  virtual void exchange() {}

  /// Hook for interface links (default: flux is dropped; domain solvers
  /// buffer it for their neighbor).
  virtual void handle_interface(long source_id, bool source_forward,
                                const Link3D& link, const double* psi) {
    (void)source_id;
    (void)source_forward;
    (void)link;
    (void)psi;
  }

  /// Routes an outgoing flux according to the cached link. Thread-safe for
  /// concurrent distinct (id, dir) pairs when `atomic` is true.
  void deposit(long id, bool forward, const double* psi, bool atomic);

  /// Staged deposits: parallel sweeps write each (track, direction)'s
  /// outgoing flux into its unique staging slot (race-free), then
  /// flush_staged_deposits() routes them serially in ascending (id, dir)
  /// order — the exact deposit order of the serial reference sweep, so
  /// boundary fluxes are bitwise identical to it even when two links
  /// target the same psi_next_ slot (axial lattice clamp collisions).
  void ensure_staging();
  double* stage_slot(long id, int dir) {
    return psi_out_.data() + (id * 2 + dir) * fsr_.num_groups();
  }
  void flush_staged_deposits();

  /// Lazily constructed fork-join pool honoring the workers knob.
  util::Parallel& par();

  /// Publishes sweep-throughput telemetry (solver.sweep_segments counter,
  /// solver.segments_per_second gauge, span arg) for the sweep that just
  /// ran. Declared here so both solve modes share it.
  void record_sweep_throughput(telemetry::TraceSpan& span, double seconds);

  /// Lazily decoded per-track info + combined weights (host-side; device
  /// solvers charge their own copy against the arena).
  const TrackInfoCache& info_cache();

  /// Lazily built chord-template cache (host-side tables; device solvers
  /// charge "chord_templates" against their arena separately). Built at
  /// most once per solver; construction cost ~2 generic walks per track.
  const ChordTemplateCache& chord_templates();

  /// Computes track-based FSR volumes and stores them in fsr().
  /// Virtual so domain solvers can reduce partial volumes globally.
  virtual void compute_volumes();

  /// Allows subclasses (domain decomposition) to override z-face semantics
  /// before links are cached; call once, before solve().
  void set_z_kinds(LinkKind z_min, LinkKind z_max);

  /// Caches per-(track, direction) links; invoked lazily by solve().
  void build_links();

  const TrackStacks& stacks_;
  FsrData fsr_;
  LinkKind z_min_kind_;
  LinkKind z_max_kind_;
  std::vector<float> psi_in_, psi_next_;
  std::vector<Link3D> links_;
  double k_ = 1.0;
  const ExpTable* exp_table_ = nullptr;
  bool links_built_ = false;
  bool state_loaded_ = false;
  bool volumes_ready_ = false;
  long last_sweep_segments_ = 0;  ///< set by sweep() implementations
  double last_sweep_seconds_ = 0.0;  ///< set by sweep_step()

  /// Template-dispatch accounting for the most recent sweep, filled by
  /// sweep engines that dispatch through a ChordTemplateCache and
  /// published by record_sweep_throughput(). A "hit"/"fallback" is one
  /// (track, direction) expansion; segments split the per-sweep total by
  /// expansion path so traces show the regeneration tax shrinking.
  bool template_dispatch_ = false;   ///< engine dispatched via templates
  long last_template_hits_ = 0;
  long last_template_fallbacks_ = 0;
  long last_template_segments_ = 0;  ///< segments expanded from templates
  long last_resident_segments_ = 0;  ///< segments read from stored arrays

  /// Active sweep backend + event-batch accounting, published by
  /// record_sweep_throughput (the solver.sweep_backend tag and the
  /// solver.event_batch_fill occupancy gauge). Engines running the event
  /// backend set both; history engines leave the defaults.
  SweepBackend active_backend_ = SweepBackend::kHistory;
  long last_event_batches_ = 0;  ///< stage-1 batches of the last sweep

  std::vector<double> psi_out_;  ///< staged outgoing flux per (id, dir)

  /// CMFD accelerator (owned; nullptr = off). Sweep engines consult it
  /// for per-worker current buffers; close_step runs the coarse solve.
  std::unique_ptr<cmfd::CmfdAccelerator> cmfd_;
  const cmfd::CmfdContext* shared_cmfd_ = nullptr;

  /// True when the accelerator is attached and tallying this solve.
  bool cmfd_active() const;

 private:
  unsigned workers_knob_ = 0;
  std::unique_ptr<util::Parallel> par_;
  /// Lazy host caches (built at most once per solver). The lazy build is
  /// single-threaded by contract — a solver is driven by one thread — so
  /// the only way two threads share these objects is through
  /// set_shared_caches(), where they are const and already built.
  std::unique_ptr<TrackInfoCache> host_info_cache_;
  std::unique_ptr<ChordTemplateCache> chord_templates_;
  const TrackInfoCache* shared_info_cache_ = nullptr;
  const ChordTemplateCache* shared_templates_ = nullptr;
};

/// Maps a geometry boundary condition to the link semantics of that face.
LinkKind to_link_kind(BoundaryType bc);

}  // namespace antmoc
