#pragma once

/// \file domain_solver.h
/// Domain-decomposed transport solve over the in-process message-passing
/// runtime (paper §3.1-3.2): each rank owns one cuboid sub-geometry, lays
/// its own (modular, identical) tracks, sweeps locally, and exchanges tail
/// angular fluxes with its up-to-six neighbors every iteration. Interface
/// target lists are exchanged once at setup, so each iteration transmits
/// only flux payloads — 2 directions * num_groups * 4 bytes per crossing
/// track end, the quantity of the paper's communication model (Eq. 7).
///
/// By default the exchange is *overlapped* (DESIGN.md §8): each rank
/// sweeps its interface-crossing tracks first, posts every face's
/// coalesced payload as a nonblocking isend the moment that face's tracks
/// are done, and sweeps the interior while neighbor fluxes are in flight.
/// `DomainRunParams::overlap = false` restores the buffered-synchronous
/// pattern; both modes are bit-identical for a fixed worker count.
///
/// Survivor takeover (DESIGN.md §11): a rank may host *several* domains.
/// When a peer dies mid-solve the survivors shrink the world, elect
/// adopters for the orphaned domains (partition::elect_adopters over the
/// measured per-domain sweep costs), rehydrate them from per-domain
/// checkpoint shards, rewire the face-neighbor exchange through the
/// domain router, and resume — the solve completes without a restart and,
/// because collectives reduce in domain (not rank) order and resume is
/// exact-state, with the bitwise-identical k_eff of the failure-free run.
/// The same machinery handles voluntary migration off stragglers when
/// `cluster.rebalance = on_drift`.

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/migration.h"
#include "cmfd/coarse_mesh.h"
#include "comm/runtime.h"
#include "solver/decomposition.h"
#include "solver/event_sweep.h"
#include "solver/gpu_solver.h"
#include "solver/transport_solver.h"

namespace antmoc {

struct DomainRunParams {
  int num_azim = 4;
  double azim_spacing = 0.5;
  int num_polar = 2;
  double z_spacing = 0.5;

  /// Sweep engine: host (CpuSolver-equivalent) or simulated device.
  bool use_device = false;
  gpusim::DeviceSpec device_spec;
  GpuSolverOptions gpu_options;
  /// Host sweep fork-join width per rank (`sweep.workers`; 0 = auto).
  unsigned sweep_workers = 0;
  /// Host sweep kernel organization (`sweep.backend`); bitwise identical
  /// either way for a fixed worker count. Device sweeps configure theirs
  /// through `gpu_options.backend`.
  SweepBackend sweep_backend = default_sweep_backend();
  /// CMFD acceleration (`cmfd.*`). Every domain tallies its local coarse
  /// surface currents; the driver allreduces them keyed by domain (fixed
  /// order) so all ranks solve the identical global coarse system and
  /// prolong identically.
  cmfd::CmfdOptions cmfd;
  /// Overlap communication with computation (`comm.overlap`): nonblocking
  /// flux exchange hidden behind the interior sweep. Off = the paper's
  /// buffered-synchronous exchange. Results are identical either way.
  bool overlap = true;

  // --- resilience / migration (DESIGN.md §11) ------------------------------
  /// Iterations between per-domain checkpoint shards (`checkpoint.shards`;
  /// 0 disables). Shards alternate between two generations per domain so a
  /// death mid-write never destroys the only recoverable state.
  int checkpoint_every = 0;
  /// Directory receiving shard files; created on demand. Required when
  /// checkpoint_every > 0 or rebalance = on_drift.
  std::string checkpoint_dir;
  /// When the migration machinery engages (`cluster.rebalance`).
  cluster::RebalanceMode rebalance = cluster::RebalanceMode::kOnFailure;
  /// Voluntary migration fires when per-rank sweep-time MAX/AVG exceeds
  /// this (on_drift only).
  double drift_threshold = 1.5;
  /// Iterations between drift checks (on_drift only).
  int drift_check_every = 4;
  /// Survivor takeovers attempted before giving up (PeerFailure then
  /// propagates to the caller — the restart ladder's rung).
  int max_takeovers = 3;
  /// Relative speed factor per rank for adopter election (empty = all 1.0).
  std::vector<double> rank_capacity;
  /// Start by scanning checkpoint_dir for the newest complete shard line
  /// and resuming every domain from it (the restart rung after a failed
  /// takeover). Falls back to a fresh start when no line exists.
  bool resume_from_checkpoint = false;
  /// Deadline for blocking communication (0 = none). A takeover under
  /// injected faults should always set one: it bounds every phase of the
  /// protocol, so a wedged survivor turns into CommTimeout, not a hang.
  std::chrono::milliseconds comm_deadline{0};
};

struct DomainRunSummary {
  SolveResult result;
  /// Global per-FSR fission-rate density (identical on every rank).
  std::vector<double> fission_rate;
  /// Global per-FSR scalar flux by group, flattened [fsr * G + g].
  std::vector<double> scalar_flux;

  // --- accounting ----------------------------------------------------------
  std::uint64_t total_bytes_sent = 0;      ///< all point-to-point traffic
  std::uint64_t flux_bytes_per_iter = 0;   ///< interface flux payload/iter
  /// Boundary-crossing track ends summed over ranks and faces — the N in
  /// the paper's Eq. 7; flux_bytes_per_iter equals
  /// perf::interface_flux_bytes(crossing_track_ends, num_groups).
  long crossing_track_ends = 0;
  long total_tracks_3d = 0;
  long total_segments_3d = 0;
  /// MAX/AVG of per-domain segment counts: the domain-level load
  /// uniformity the three-level mapping attacks.
  double domain_load_uniformity = 1.0;
  /// Mean fraction of the per-iteration exchange window hidden behind the
  /// interior sweep, averaged over ranks and iterations (0 when the
  /// synchronous mode runs or no rank has interfaces).
  double comm_overlap_ratio = 0.0;

  // --- resilience (DESIGN.md §11) ------------------------------------------
  /// Completed survivor-takeover events (rank deaths absorbed in-world).
  int takeovers = 0;
  /// Completed drift-triggered migrations (on_drift only).
  int voluntary_migrations = 0;
  /// Final domain -> host-rank table (identity when nothing moved).
  std::vector<int> final_host;
  /// Shard-line iteration the solve last rewound to (initial resume or
  /// takeover); -1 when it never resumed.
  std::int64_t resumed_from_iteration = -1;
};

/// Runs a decomposed eigenvalue solve with one rank (thread) per domain.
/// With decomp = {1,1,1} this reduces to the plain single-domain solver.
/// Throws (first primary failure) when a death cannot be absorbed: no
/// checkpoint shards, rebalance = off, or max_takeovers exhausted.
DomainRunSummary solve_decomposed(const Geometry& geometry,
                                  const std::vector<Material>& materials,
                                  const Decomposition& decomp,
                                  const DomainRunParams& params,
                                  const SolveOptions& options);

}  // namespace antmoc
