#include "solver/solver2d.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"
#include "util/timer.h"

namespace antmoc {
namespace {
constexpr double k4Pi = 4.0 * 3.14159265358979323846;
}

Solver2D::Solver2D(const TrackGenerator2D& gen, const Geometry& geometry,
                   const std::vector<Material>& materials)
    : gen_(gen),
      fsr_(geometry, materials),
      num_polar_(gen.quadrature().num_polar()) {
  require(geometry.num_axial_layers() == 1,
          "Solver2D requires a single-layer (2D) geometry");
  require(gen.num_segments() > 0, "Solver2D requires traced tracks");
  const long slots = static_cast<long>(gen.num_tracks()) * 2 * num_polar_ *
                     fsr_.num_groups();
  psi_in_.assign(slots, 0.0f);
  psi_next_.assign(slots, 0.0f);
}

void Solver2D::compute_areas() {
  // Track-based area estimate, identical in form to the 3D volume
  // estimate: every (angle, polar, sign) direction tiles the plane.
  const auto& quad = gen_.quadrature();
  std::vector<double> area(fsr_.num_fsrs(), 0.0);
  for (const auto& track : gen_.tracks()) {
    const double w = quad.azim_frac(track.azim) *
                     quad.spacing_eff(track.azim);
    for (const auto& seg : track.segments)
      area[seg.region] += w * seg.length;
  }
  fsr_.set_volumes(std::move(area));
}

void Solver2D::sweep() {
  const auto& quad = gen_.quadrature();
  const int G = fsr_.num_groups();
  const double* sigma_t = fsr_.sigma_t_flat().data();
  const double* qos = fsr_.q_over_sigma_t().data();
  auto& accum = fsr_.accumulator();
  std::vector<double> psi(G);

  for (long t = 0; t < gen_.num_tracks(); ++t) {
    const Track2D& track = gen_.track(t);
    for (int dir = 0; dir < 2; ++dir) {
      const bool forward = dir == 0;
      for (int p = 0; p < num_polar_; ++p) {
        // 2 polar sign images are folded into this sweep: the axially
        // uniform problem makes up- and down-going fluxes identical, so
        // each (dir, p) slot carries both with doubled weight.
        const double w = 2.0 * quad.direction_weight(track.azim, p) *
                         quad.spacing_eff(track.azim) *
                         quad.sin_theta(p);
        const double inv_sin = 1.0 / quad.sin_theta(p);
        const float* in = psi_in_.data() + slot(t, dir, p);
        for (int g = 0; g < G; ++g) psi[g] = in[g];

        auto apply = [&](const Segment2D& seg) {
          const long base = static_cast<long>(seg.region) * G;
          for (int g = 0; g < G; ++g) {
            const double tau = sigma_t[base + g] * seg.length * inv_sin;
            const double delta = (psi[g] - qos[base + g]) * exp_f1(tau);
            psi[g] -= delta;
            accum[base + g] += w * delta;
          }
        };
        if (forward)
          for (const auto& seg : track.segments) apply(seg);
        else
          for (auto it = track.segments.rbegin();
               it != track.segments.rend(); ++it)
            apply(*it);

        const TrackLink& link = forward ? track.fwd_link : track.bwd_link;
        if (link.kind == LinkKind::kVacuum) continue;
        require(link.kind != LinkKind::kInterface,
                "Solver2D does not support domain interfaces");
        float* out =
            psi_next_.data() + slot(link.track, link.forward ? 0 : 1, p);
        for (int g = 0; g < G; ++g) out[g] += static_cast<float>(psi[g]);
      }
    }
  }
}

SolveResult Solver2D::solve(const SolveOptions& options) {
  ScopedTimer probe("solver2d/solve");
  compute_areas();

  fsr_.fill_flux(1.0);
  std::fill(psi_in_.begin(), psi_in_.end(), 0.0f);
  k_ = 1.0;
  const double p0 = fsr_.fission_production();
  require(p0 > 0.0, "2D eigenvalue solve needs fissile material");
  fsr_.scale_flux(1.0 / p0);
  fsr_.update_source(k_);
  fsr_.fission_source_residual();

  SolveResult result;
  const int max_iter = options.fixed_iterations > 0
                           ? options.fixed_iterations
                           : options.max_iterations;
  for (int iter = 1; iter <= max_iter; ++iter) {
    fsr_.zero_accumulator();
    std::fill(psi_next_.begin(), psi_next_.end(), 0.0f);
    sweep();
    std::swap(psi_in_, psi_next_);
    fsr_.close_scalar_flux();

    const double production = fsr_.fission_production();
    require(production > 0.0, "fission production vanished mid-solve");
    k_ *= production;
    const double scale = 1.0 / production;
    fsr_.scale_flux(scale);
    for (auto& v : psi_in_) v = static_cast<float>(v * scale);

    result.residual = fsr_.fission_source_residual();
    result.iterations = iter;
    result.k_eff = k_;
    fsr_.update_source(k_);
    if (options.fixed_iterations <= 0 && iter >= 3 &&
        result.residual < options.tolerance &&
        std::abs(production - 1.0) < options.tolerance) {
      result.converged = true;
      break;
    }
  }
  if (options.fixed_iterations > 0) result.converged = true;
  return result;
}

}  // namespace antmoc
