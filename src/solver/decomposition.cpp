#include "solver/decomposition.h"

#include "solver/transport_solver.h"
#include "util/error.h"

namespace antmoc {

Face opposite_face(Face f) {
  switch (f) {
    case Face::kXMin: return Face::kXMax;
    case Face::kXMax: return Face::kXMin;
    case Face::kYMin: return Face::kYMax;
    case Face::kYMax: return Face::kYMin;
    case Face::kZMin: return Face::kZMax;
    case Face::kZMax: return Face::kZMin;
  }
  return f;
}

int Decomposition::neighbor(int rank, Face f) const {
  auto [i, j, k] = coords(rank);
  switch (f) {
    case Face::kXMin: i -= 1; break;
    case Face::kXMax: i += 1; break;
    case Face::kYMin: j -= 1; break;
    case Face::kYMax: j += 1; break;
    case Face::kZMin: k -= 1; break;
    case Face::kZMax: k += 1; break;
  }
  if (i < 0 || i >= nx || j < 0 || j >= ny || k < 0 || k >= nz) return -1;
  return rank_of(i, j, k);
}

int Decomposition::num_neighbors(int rank) const {
  int count = 0;
  for (int f = 0; f < 6; ++f)
    if (neighbor(rank, static_cast<Face>(f)) >= 0) ++count;
  return count;
}

Bounds Decomposition::domain_bounds(const Bounds& global, int rank) const {
  require(nx >= 1 && ny >= 1 && nz >= 1, "invalid decomposition grid");
  const auto [i, j, k] = coords(rank);
  const double wx = global.width_x() / nx;
  const double wy = global.width_y() / ny;
  const double wz = global.width_z() / nz;
  Bounds b;
  b.x_min = global.x_min + i * wx;
  b.x_max = global.x_min + (i + 1) * wx;
  b.y_min = global.y_min + j * wy;
  b.y_max = global.y_min + (j + 1) * wy;
  b.z_min = global.z_min + k * wz;
  b.z_max = global.z_min + (k + 1) * wz;
  return b;
}

std::array<LinkKind, 4> Decomposition::radial_kinds(const Geometry& g,
                                                    int rank) const {
  std::array<LinkKind, 4> kinds;
  for (Face f : {Face::kXMin, Face::kXMax, Face::kYMin, Face::kYMax}) {
    const int idx = static_cast<int>(f);
    kinds[idx] = neighbor(rank, f) >= 0 ? LinkKind::kInterface
                                        : to_link_kind(g.boundary(f));
  }
  return kinds;
}

LinkKind Decomposition::z_kind(const Geometry& g, int rank, Face f) const {
  require(f == Face::kZMin || f == Face::kZMax,
          "z_kind expects an axial face");
  return neighbor(rank, f) >= 0 ? LinkKind::kInterface
                                : to_link_kind(g.boundary(f));
}

}  // namespace antmoc
