#pragma once

/// \file multi_gpu_solver.h
/// In-process realization of the L2 mapping (paper §3.2 and §4.2.2): one
/// node's fused geometry solved across several simulated GPUs, with the
/// track population split by azimuthal angle. Tracks whose boundary link
/// crosses into an angle group owned by another device hand their flux
/// over via device-to-device DMA — "track fluxes are transferred between
/// GPUs via DMA within the same node" — and the transfer volume is
/// accounted per device pair.

#include <memory>

#include "solver/gpu_solver.h"
#include "solver/track_policy.h"
#include "solver/transport_solver.h"

namespace antmoc {

struct MultiGpuOptions {
  int num_devices = 2;
  gpusim::DeviceSpec device_spec;
  TrackPolicy policy = TrackPolicy::kOnTheFly;
  std::size_t resident_budget_bytes = std::size_t{6442450944};
  /// L2 balancing: heaviest azimuthal angle onto the lightest device;
  /// off = contiguous angle blocks (the unbalanced baseline).
  bool balance_angles = true;
  /// L3 within each device.
  bool l3_sort = true;
  /// `sweep.privatize` knob: per-CU privatized FSR tallies on every
  /// device (scratch charged to each device's arena), merged by
  /// serialized per-device reduction kernels — deterministic. kAuto falls
  /// back to atomics if any device cannot afford its scratch.
  PrivatizeMode privatize = PrivatizeMode::kAuto;
  /// `track.templates` knob: chord-template expansion for temporary
  /// tracks. Each device is charged its tracks' share of the template
  /// tables under "chord_templates"; kAuto falls back to the generic
  /// walk on every device if any arena cannot afford its share, kForce
  /// throws instead. Ignored under kExplicit.
  TemplateMode templates = TemplateMode::kAuto;
  /// `track.storage` knob (DESIGN.md §15): kCompact keeps the node's
  /// resident segments in the int32-FSR + fp32-chord SoA store (8
  /// B/segment) and rounds every temporary-track chord once to fp32 so
  /// the whole node shares one precision policy. Incompatible with
  /// templates = kForce.
  TrackStorage storage = default_track_storage();
};

class MultiGpuSolver : public TransportSolver {
 public:
  MultiGpuSolver(const TrackStacks& stacks,
                 const std::vector<Material>& materials,
                 const MultiGpuOptions& options);

  int num_devices() const { return static_cast<int>(devices_.size()); }
  gpusim::Device& device(int d) { return *devices_[d]; }

  /// Device owning a scalar azimuthal angle.
  int device_of_azim(int azim) const { return device_of_azim_[azim]; }

  /// Bytes of boundary flux DMA-transferred between devices in the last
  /// sweep (total over all ordered pairs).
  std::uint64_t last_sweep_dma_bytes() const { return last_dma_bytes_; }

  /// Per-device simulated busy cycles of the last sweep; MAX/AVG across
  /// devices is the node-level L2 uniformity.
  const std::vector<double>& last_device_cycles() const {
    return last_cycles_;
  }
  double device_load_uniformity() const;

  /// True when every device sweeps with privatized tallies.
  bool privatized() const { return privatized_; }

  /// True when temporary tracks dispatch through the chord-template
  /// cache on every device.
  bool templates_active() const { return manager_.templates_active(); }

  /// Storage mode in force on every device of the node.
  TrackStorage storage_mode() const override { return manager_.storage(); }

 protected:
  void sweep() override;

 private:
  /// Charges the optional hot-path buffers (per-device info-cache share,
  /// tally scratch, deposit staging) per the privatize mode.
  void setup_hot_path();

  MultiGpuOptions options_;
  TrackManager manager_;
  std::vector<std::unique_ptr<gpusim::Device>> devices_;
  std::vector<int> device_of_azim_;
  std::vector<int> device_of_track_;          ///< per 3D track
  std::vector<std::vector<long>> device_order_;  ///< sweep order per device
  std::vector<double> last_cycles_;
  std::uint64_t last_dma_bytes_ = 0;
  util::Parallel device_par_;  ///< one worker per device: concurrent launches
  std::vector<gpusim::DeviceBuffer<double>> scratch_;  ///< per device
  std::vector<gpusim::ScopedCharge> hot_charges_;
  const TrackInfoCache* cache_ = nullptr;
  bool privatized_ = false;
  long segments_per_sweep_ = 0;

  /// Per-sweep template-dispatch statistics (both directions),
  /// precomputed once residency and template activation are final.
  void compute_template_stats();
  long template_hits_per_sweep_ = 0;
  long template_fallbacks_per_sweep_ = 0;
  long template_segments_per_sweep_ = 0;
  long resident_segments_per_sweep_ = 0;
};

}  // namespace antmoc
