#include "solver/gpu_solver.h"

#include <algorithm>
#include <numeric>

#include "gpusim/atomic.h"
#include "perfmodel/layout.h"
#include "util/error.h"

namespace antmoc {
namespace {

using perf::kSegment2DBytes;
using perf::kTrack2DBytes;
using perf::kTrack3DBytes;

/// Upper bound on energy groups for the kernel's stack-local flux buffer.
constexpr int kMaxGroups = 64;

/// Modeled cost (cycles) of computing one 3D track's indexing info in the
/// track-generation kernel.
constexpr double kTrackGenCost = 2.0;
/// Modeled regeneration cost per segment in the setup ray-tracing kernel
/// (and per OTF segment during fused sweeps): the paper measures the OTF
/// generation kernel at ~5x the source kernel.
constexpr double kTraceCostPerSegment = 5.0;

}  // namespace

GpuSolver::GpuSolver(const TrackStacks& stacks,
                     const std::vector<Material>& materials,
                     gpusim::Device& device,
                     const GpuSolverOptions& options)
    : TransportSolver(stacks, materials),
      device_(device),
      options_(options),
      manager_(stacks, options.policy, &device,
               options.resident_budget_bytes) {
  require(fsr_.num_groups() <= kMaxGroups,
          "GpuSolver supports at most 64 energy groups");

  const auto& gen = stacks.generator();
  charge("2d_tracks", gen.num_tracks() * kTrack2DBytes);
  charge("2d_segments", gen.num_segments() * kSegment2DBytes);
  charge("3d_tracks", stacks.num_tracks() * kTrack3DBytes);
  charge("track_fluxs",
         psi_in_.size() * sizeof(float) * 2);  // in + next buffers
  charge("others", fsr_.num_fsrs() * fsr_.num_groups() * 4 * sizeof(double));

  // Sweep order: L3 sorts by descending segment count so the round-robin
  // deal hands every CU the same cost spectrum (paper §4.2.3, Fig. 5(3)).
  order_.resize(stacks.num_tracks());
  std::iota(order_.begin(), order_.end(), 0);
  if (options_.l3_sort) {
    const auto& counts = manager_.segment_counts();
    std::stable_sort(order_.begin(), order_.end(), [&](long a, long b) {
      return counts[a] > counts[b];
    });
  }

  // Accounting launches for the paper's kernel breakdown (§3.2): 3D track
  // generation and the setup ray tracing of resident tracks.
  device_.launch("track_generation", stacks.num_tracks(),
                 gpusim::Assignment::kRoundRobin,
                 [](std::size_t) { return kTrackGenCost; });
  const auto& counts = manager_.segment_counts();
  device_.launch("ray_tracing", stacks.num_tracks(),
                 gpusim::Assignment::kRoundRobin, [&](std::size_t id) {
                   return manager_.resident(static_cast<long>(id))
                              ? kTraceCostPerSegment * counts[id]
                              : 0.0;
                 });
}

GpuSolver::~GpuSolver() = default;

void GpuSolver::charge(const std::string& label, std::size_t bytes) {
  device_.memory().charge(label, bytes);
  charges_.emplace_back(&device_.memory(), label, bytes);
}

void GpuSolver::sweep() {
  const int G = fsr_.num_groups();
  const double* sigma_t = fsr_.sigma_t_flat().data();
  const double* qos = fsr_.q_over_sigma_t().data();
  double* accum = fsr_.accumulator().data();

  const auto assignment = options_.l3_sort
                              ? gpusim::Assignment::kRoundRobin
                              : gpusim::Assignment::kBlocked;

  last_stats_ = device_.launch(
      "transport_sweep", order_.size(), assignment, [&](std::size_t item) {
        const long id = order_[item];
        const Track3DInfo info = stacks_.info(id);
        const double w =
            stacks_.direction_weight(id) * stacks_.track_area(id);
        double psi[kMaxGroups];

        long seg_count = 0;
        const Segment3D* segs = manager_.segments(id, seg_count);

        for (int dir = 0; dir < 2; ++dir) {
          const bool forward = dir == 0;
          const float* in = psi_in_.data() + (id * 2 + dir) * G;
          for (int g = 0; g < G; ++g) psi[g] = in[g];

          auto apply = [&](long fsr_id, double len) {
            const long base = fsr_id * G;
            for (int g = 0; g < G; ++g) {
              const double ex = attenuation(sigma_t[base + g] * len);
              const double delta = (psi[g] - qos[base + g]) * ex;
              psi[g] -= delta;
              gpusim::device_atomic_add(accum[base + g], w * delta);
            }
          };

          if (segs != nullptr) {
            // Resident: sweep the stored segments (reversed when backward).
            if (forward)
              for (long s = 0; s < seg_count; ++s)
                apply(segs[s].fsr, segs[s].length);
            else
              for (long s = seg_count - 1; s >= 0; --s)
                apply(segs[s].fsr, segs[s].length);
          } else {
            // Temporary: fused OTF regeneration + sweep (paper §4.1).
            stacks_.for_each_segment(info, forward, apply);
          }

          deposit(id, forward, psi, /*atomic=*/true);
        }
        return manager_.track_cost(id);
      });
}

}  // namespace antmoc
