#include "solver/gpu_solver.h"

#include <algorithm>
#include <numeric>

#include "cmfd/cmfd.h"
#include "gpusim/atomic.h"
#include "perfmodel/layout.h"
#include "util/error.h"

namespace antmoc {
namespace {

using perf::kSegment2DBytes;
using perf::kTrack2DBytes;
using perf::kTrack3DBytes;

/// Upper bound on energy groups for the kernel's stack-local flux buffer.
constexpr int kMaxGroups = 64;

/// Modeled cost (cycles) of computing one 3D track's indexing info in the
/// track-generation kernel.
constexpr double kTrackGenCost = 2.0;
/// Modeled regeneration cost per segment in the setup ray-tracing kernel
/// (and per OTF segment during fused sweeps): the paper measures the OTF
/// generation kernel at ~5x the source kernel.
constexpr double kTraceCostPerSegment = 5.0;

/// Modeled cost (cycles) per per-CU partial read in the tally-reduction
/// kernel — one load + add per CU for each (fsr, group) element.
constexpr double kTallyReduceCostPerTerm = 1.0;

}  // namespace

GpuSolver::GpuSolver(const TrackStacks& stacks,
                     const std::vector<Material>& materials,
                     gpusim::Device& device,
                     const GpuSolverOptions& options)
    : TransportSolver(stacks, materials), device_(device), options_(options) {
  require(fsr_.num_groups() <= kMaxGroups,
          "GpuSolver supports at most 64 energy groups");

  if (options_.shared != nullptr) {
    // Engine job mode (DESIGN.md §12): the session owns the
    // scenario-independent state; only the job-private physics buffers
    // are charged below.
    require(options_.shared->manager != nullptr &&
                options_.shared->order != nullptr,
            "shared device state needs a track manager and a sweep order");
    manager_ = options_.shared->manager;
    order_ = options_.shared->order;
    options_.storage = manager_->storage();  // the session owns the mode
  } else {
    require_compact_storage_compatible(options.storage, options.templates);
    owned_manager_ = std::make_unique<TrackManager>(
        stacks, options.policy, &device, options.resident_budget_bytes,
        options.policy != TrackPolicy::kExplicit &&
                options.templates != TemplateMode::kOff &&
                options.storage != TrackStorage::kCompact
            ? &chord_templates()
            : nullptr,
        options.storage);
    manager_ = owned_manager_.get();

    const auto& gen = stacks.generator();
    charge("2d_tracks", gen.num_tracks() * kTrack2DBytes);
    charge("2d_segments", gen.num_segments() * kSegment2DBytes);
    charge("3d_tracks", stacks.num_tracks() * kTrack3DBytes);
  }
  charge("track_fluxs",
         psi_in_.size() * sizeof(float) * 2);  // in + next buffers
  charge("others", fsr_.num_fsrs() * fsr_.num_groups() * 4 * sizeof(double));

  const auto& counts = manager_->segment_counts();
  if (options_.shared == nullptr) {
    // Sweep order: L3 sorts by descending segment count so the round-robin
    // deal hands every CU the same cost spectrum (paper §4.2.3, Fig. 5(3)).
    owned_order_.resize(stacks.num_tracks());
    std::iota(owned_order_.begin(), owned_order_.end(), 0);
    if (options_.l3_sort) {
      std::stable_sort(owned_order_.begin(), owned_order_.end(),
                       [&](long a, long b) { return counts[a] > counts[b]; });
    }
    order_ = &owned_order_;

    // Accounting launches for the paper's kernel breakdown (§3.2): 3D
    // track generation and the setup ray tracing of resident tracks. A
    // session runs these once per device at warm-up, not per job.
    device_.launch("track_generation", stacks.num_tracks(),
                   gpusim::Assignment::kRoundRobin,
                   [](std::size_t) { return kTrackGenCost; });
    device_.launch("ray_tracing", stacks.num_tracks(),
                   gpusim::Assignment::kRoundRobin, [&](std::size_t id) {
                     return manager_->resident(static_cast<long>(id))
                                ? kTraceCostPerSegment * counts[id]
                                : 0.0;
                   });
  }
  for (long c : counts) segments_per_sweep_ += 2 * c;

  setup_hot_path();
  compute_template_stats();
}

void GpuSolver::compute_template_stats() {
  if (events_ != nullptr) {
    // Event backend: the flatten subsumed template dispatch; per-sweep
    // expansion statistics would describe the build, not the sweeps.
    template_dispatch_ = false;
    return;
  }
  template_dispatch_ = manager_->templates() != nullptr;
  if (!template_dispatch_) return;
  const auto& counts = manager_->segment_counts();
  for (long id = 0; id < stacks_.num_tracks(); ++id) {
    if (manager_->resident(id)) {
      resident_segments_per_sweep_ += 2 * counts[id];
    } else if (manager_->templated(id)) {
      template_hits_per_sweep_ += 2;
      template_segments_per_sweep_ += 2 * counts[id];
    } else {
      template_fallbacks_per_sweep_ += 2;
    }
  }
}

void GpuSolver::setup_hot_path() {
  if (options_.shared != nullptr) {
    // Session-owned hot path: the info cache, chord templates, and event
    // arrays were charged (and, on OOM, dropped) once at warm-up; jobs
    // borrow them and only charge their private privatized buffers below.
    cache_ = options_.shared->info_cache;
    if (options_.backend == SweepBackend::kEvent)
      events_ = options_.shared->events;
  } else {
    // Optional fast-path buffers are charged last so they never change
    // whether a track policy/budget fits the arena: if the remaining
    // capacity cannot afford them, the solver silently keeps the seed
    // behavior (per-item decode, atomic tallies) instead of escalating.
    try {
      charge("track_info_cache",
             TrackInfoCache::bytes_for(stacks_.num_tracks()));
      cache_ = &info_cache();
    } catch (const DeviceOutOfMemory&) {
      cache_ = nullptr;
    }

    // After the info cache: that one speeds up every track, the templates
    // only the temporary ones, so when the arena affords just one optional
    // buffer it should be the cache.
    if (manager_->templates() != nullptr) {
      try {
        charge("chord_templates", manager_->templates()->bytes());
      } catch (const DeviceOutOfMemory&) {
        if (options_.templates == TemplateMode::kForce) throw;
        // kAuto: generic-walk fallback
        owned_manager_->set_templates_active(false);
      }
    }

    if (options_.backend == SweepBackend::kEvent) {
      // Event-array laydown, charged before it is built so an arena that
      // cannot afford it never pays the flatten. OOM falls back to the
      // history backend silently — same kAuto semantics as the chord
      // templates above (there is no kForce for the backend knob; the
      // degradation ladder keys off memory policy, not kernel shape).
      try {
        charge("event_arrays",
               EventArrays::bytes_for(segments_per_sweep_ / 2,
                                      stacks_.num_tracks(),
                                      options_.storage));
        telemetry::TraceSpan span("solver/event_build", "solver");
        owned_events_ = std::make_unique<EventArrays>(
            stacks_, info_cache(), manager_->templates(), fsr_.num_groups(),
            nullptr, manager_, options_.storage);
        events_ = owned_events_.get();
        span.set_arg("events", events_->num_events());
      } catch (const DeviceOutOfMemory&) {
        events_ = nullptr;
      }
    }
  }
  if (events_ != nullptr) {
    active_backend_ = SweepBackend::kEvent;
    event_batches_per_sweep_ = events_->batches_per_sweep();
  }

  if (options_.privatize == PrivatizeMode::kOff) return;
  const std::size_t len =
      static_cast<std::size_t>(fsr_.num_fsrs()) * fsr_.num_groups();
  const std::size_t staging_bytes =
      static_cast<std::size_t>(stacks_.num_tracks()) * 2 *
      fsr_.num_groups() * sizeof(double);
  try {
    tally_scratch_ = device_.alloc<double>(
        "tally_scratch", static_cast<std::size_t>(device_.spec().num_cus) * len);
    charge("staged_fluxs", staging_bytes);
    ensure_staging();
    privatized_ = true;
  } catch (const DeviceOutOfMemory&) {
    tally_scratch_.reset();
    if (options_.privatize == PrivatizeMode::kForce) throw;
    privatized_ = false;  // kAuto: atomic fallback
  }
}

GpuSolver::~GpuSolver() = default;

void GpuSolver::charge(const std::string& label, std::size_t bytes) {
  charges_.emplace_back(device_.memory(), label, bytes);
}

double GpuSolver::sweep_track(long id, double* acc, bool stage, double* cur) {
  const int G = fsr_.num_groups();
  const double* sigma_t = fsr_.sigma_t_flat().data();
  const double* qos = fsr_.q_over_sigma_t().data();
  double* accum = fsr_.accumulator().data();

  Track3DInfo decoded;
  const Track3DInfo* info;
  double w;
  if (cache_ != nullptr) {
    info = &(*cache_)[id];
    w = cache_->weight(id);
  } else {
    decoded = stacks_.info(id);
    info = &decoded;
    w = stacks_.direction_weight(id) * stacks_.track_area(id);
  }
  double psi[kMaxGroups];

  // CMFD crossing tally: private per-CU buffer when privatized (acc !=
  // nullptr), device atomics into the shared buffer otherwise — the same
  // strategy split as the FSR tallies.
  const auto tally_crossing = [&](const cmfd::Crossing* c) {
    double* slot = cur + static_cast<long>(c->slot) * G;
    if (acc != nullptr)
      for (int g = 0; g < G; ++g) slot[g] += w * psi[g];
    else
      for (int g = 0; g < G; ++g)
        gpusim::device_atomic_add(slot[g], w * psi[g]);
  };

  if (events_ != nullptr) {
    // Event backend: both directions scan the flat per-(track, direction)
    // event ranges with the two-stage batch kernel — no residency or
    // template dispatch (the flatten already resolved it). Bitwise
    // identical to the history paths below. When tallying currents the
    // range is split at the crossing ordinals; stage 2 of the batch
    // kernel is a sequential psi recurrence, so sub-range calls are
    // bitwise identical to one full-range call.
    static thread_local EventSweepScratch ws;
    for (int dir = 0; dir < 2; ++dir) {
      const float* in = psi_in_.data() + (id * 2 + dir) * G;
      for (int g = 0; g < G; ++g) psi[g] = in[g];
      const long first = events_->first(id, dir);
      const long count = events_->count(id, dir);
      const auto run = [&](long off, long n) {
        if (events_->storage() == TrackStorage::kCompact) {
          if (acc != nullptr)
            sweep_events(events_->base() + first + off,
                         events_->length32() + first + off, n, sigma_t, qos,
                         w, exp_table_, G, psi, acc, ws);
          else
            sweep_events_atomic(events_->base() + first + off,
                                events_->length32() + first + off, n,
                                sigma_t, qos, w, exp_table_, G, psi, accum,
                                ws);
        } else if (acc != nullptr) {
          sweep_events(events_->base() + first + off,
                       events_->length() + first + off, n, sigma_t, qos, w,
                       exp_table_, G, psi, acc, ws);
        } else {
          sweep_events_atomic(events_->base() + first + off,
                              events_->length() + first + off, n, sigma_t,
                              qos, w, exp_table_, G, psi, accum, ws);
        }
      };
      if (cur == nullptr) {
        run(0, count);
      } else {
        const cmfd::Crossing* cp = nullptr;
        const cmfd::Crossing* ce = nullptr;
        cmfd_->plan().records(id, dir, cp, ce);
        long done = 0;
        while (cp != ce) {
          const long ord = cp->ordinal;
          if (ord > done) {
            run(done, ord - done);
            done = ord;
          }
          while (cp != ce && cp->ordinal == ord) {
            tally_crossing(cp);
            ++cp;
          }
        }
        if (count > done) run(done, count - done);
      }
      if (stage) {
        double* out = stage_slot(id, dir);
        for (int g = 0; g < G; ++g) out[g] = psi[g];
      } else {
        deposit(id, dir == 0, psi, /*atomic=*/true);
      }
    }
    // Flat-array reads price at the calibrated event cost regardless of
    // the track's residency class.
    return static_cast<double>(2 * events_->count(id, 0)) *
           manager_->costs().event;
  }

  const bool compact = manager_->storage() == TrackStorage::kCompact;

  for (int dir = 0; dir < 2; ++dir) {
    const bool forward = dir == 0;
    const float* in = psi_in_.data() + (id * 2 + dir) * G;
    for (int g = 0; g < G; ++g) psi[g] = in[g];

    const cmfd::Crossing* cp = nullptr;
    const cmfd::Crossing* ce = nullptr;
    if (cur != nullptr) cmfd_->plan().records(id, dir, cp, ce);
    long ord = 0;

    auto apply = [&](long fsr_id, double len) {
      while (cp != ce && cp->ordinal == ord) {
        tally_crossing(cp);
        ++cp;
      }
      ++ord;
      const long base = fsr_id * G;
      for (int g = 0; g < G; ++g) {
        const double ex = attenuation(sigma_t[base + g] * len);
        const double delta = (psi[g] - qos[base + g]) * ex;
        psi[g] -= delta;
        if (acc != nullptr)
          acc[base + g] += w * delta;
        else
          gpusim::device_atomic_add(accum[base + g], w * delta);
      }
    };

    // Resident: replay the stored segments (reversed when backward). The
    // manager widens compact fp32 chords back to fp64 before `apply`.
    if (!manager_->for_each_resident_segment(id, forward, apply)) {
      // Temporary: template expansion when eligible, else the fused OTF
      // regeneration + sweep (paper §4.1). Bitwise-identical either way.
      // Compact mode applies the same one-rounding-point chord policy to
      // the regenerated walk so temporary and resident tracks agree.
      if (compact) {
        auto rounded = [&](long fsr_id, double len) {
          apply(fsr_id, static_cast<double>(static_cast<float>(len)));
        };
        stacks_.for_each_segment(*info, forward, rounded);
      } else {
        const ChordTemplateCache* t = manager_->templates();
        if (t == nullptr || !t->for_each_segment(id, forward, apply))
          stacks_.for_each_segment(*info, forward, apply);
      }
    }
    while (cp != ce) {  // exit crossings (ordinal == segment count)
      tally_crossing(cp);
      ++cp;
    }

    if (stage) {
      double* out = stage_slot(id, dir);
      for (int g = 0; g < G; ++g) out[g] = psi[g];
    } else {
      deposit(id, forward, psi, /*atomic=*/true);
    }
  }
  return manager_->track_cost(id);
}

void GpuSolver::reduce_tallies() {
  // The per-CU partials are merged in fixed CU order by the reduction
  // kernel, so the result is independent of host thread scheduling and
  // worker count — bit-reproducible run to run.
  const std::size_t len =
      static_cast<std::size_t>(fsr_.num_fsrs()) * fsr_.num_groups();
  double* scratch = tally_scratch_.data();
  double* accum = fsr_.accumulator().data();
  const int ncus = device_.spec().num_cus;
  device_.launch(
      "tally_reduction", len, gpusim::Assignment::kBlocked,
      [&](std::size_t i) {
        double sum = 0.0;
        for (int c = 0; c < ncus; ++c) {
          double& s = scratch[static_cast<std::size_t>(c) * len + i];
          sum += s;
          s = 0.0;  // scratch comes back zeroed for the next sweep
        }
        accum[i] += sum;
        return kTallyReduceCostPerTerm * ncus;
      });
}

void GpuSolver::sweep() {
  const auto assignment = options_.l3_sort
                              ? gpusim::Assignment::kRoundRobin
                              : gpusim::Assignment::kBlocked;
  const bool tally = cmfd_active();
  if (tally)
    cmfd_->begin_sweep(privatized_ ? device_.spec().num_cus : 1,
                       fsr_.num_groups());

  if (privatized_) {
    // Each CU tallies into its private slice of the scratch buffer;
    // outgoing fluxes go to the staging buffer (flushed serially after
    // the launch — deterministic).
    const std::size_t len =
        static_cast<std::size_t>(fsr_.num_fsrs()) * fsr_.num_groups();
    double* scratch = tally_scratch_.data();
    last_stats_ = device_.launch(
        "transport_sweep", order_->size(), assignment,
        [&](std::size_t item, int cu) {
          return sweep_track((*order_)[item], scratch + cu * len,
                             /*stage=*/true,
                             tally ? cmfd_->currents(cu) : nullptr);
        });
    flush_staged_deposits();
    reduce_tallies();
  } else {
    double* cur = tally ? cmfd_->currents(0) : nullptr;
    last_stats_ = device_.launch(
        "transport_sweep", order_->size(), assignment, [&](std::size_t item) {
          return sweep_track((*order_)[item], nullptr, /*stage=*/false, cur);
        });
  }
  last_sweep_segments_ = segments_per_sweep_;
  last_template_hits_ = template_hits_per_sweep_;
  last_template_fallbacks_ = template_fallbacks_per_sweep_;
  last_template_segments_ = template_segments_per_sweep_;
  last_resident_segments_ = resident_segments_per_sweep_;
  last_event_batches_ = event_batches_per_sweep_;
}

void GpuSolver::sweep_subset(const std::vector<long>& ids) {
  if (ids.empty()) return;
  // The phased sweep always stages outgoing fluxes (the caller flushes
  // each phase before posting its interface payloads), so staging is
  // ensured here even on the atomic-tally fallback. The host-side staging
  // buffer is only charged to the arena when privatization is on — the
  // fallback keeps the seed memory profile.
  ensure_staging();
  const auto assignment = options_.l3_sort
                              ? gpusim::Assignment::kRoundRobin
                              : gpusim::Assignment::kBlocked;
  const bool tally = cmfd_active();
  if (tally)
    cmfd_->begin_sweep(privatized_ ? device_.spec().num_cus : 1,
                       fsr_.num_groups());
  if (privatized_) {
    const std::size_t len =
        static_cast<std::size_t>(fsr_.num_fsrs()) * fsr_.num_groups();
    double* scratch = tally_scratch_.data();
    last_stats_ = device_.launch(
        "transport_sweep", ids.size(), assignment,
        [&](std::size_t item, int cu) {
          return sweep_track(ids[item], scratch + cu * len,
                             /*stage=*/true,
                             tally ? cmfd_->currents(cu) : nullptr);
        });
    reduce_tallies();
  } else {
    double* cur = tally ? cmfd_->currents(0) : nullptr;
    last_stats_ = device_.launch(
        "transport_sweep", ids.size(), assignment, [&](std::size_t item) {
          return sweep_track(ids[item], nullptr, /*stage=*/true, cur);
        });
  }
  const auto& counts = manager_->segment_counts();
  for (long id : ids) {
    last_sweep_segments_ += 2 * counts[id];
    if (events_ != nullptr)
      last_event_batches_ += 2 * ((counts[id] + kEventBatch - 1) / kEventBatch);
    if (!template_dispatch_) continue;
    if (manager_->resident(id)) {
      last_resident_segments_ += 2 * counts[id];
    } else if (manager_->templated(id)) {
      last_template_hits_ += 2;
      last_template_segments_ += 2 * counts[id];
    } else {
      last_template_fallbacks_ += 2;
    }
  }
}

}  // namespace antmoc
