#pragma once

/// \file tallies.h
/// Post-solve reaction-rate tallies: the quantities a reactor analyst
/// extracts from a converged flux — per-material reaction rates, axial
/// power profiles, assembly powers. These back the paper's §5.1 output
/// ("FSR fission rate data") and the Fig. 7 visualization pipeline.

#include <vector>

#include "geometry/geometry.h"
#include "material/material.h"

namespace antmoc::tallies {

enum class Reaction { kFission, kNuFission, kAbsorption, kTotal };

/// Volume-integrated reaction rate per material id:
///   R_m = sum over FSRs of material m of V_r * sum_g sigma_x phi_{r,g}.
std::vector<double> rate_by_material(const Geometry& geometry,
                                     const std::vector<Material>& materials,
                                     const std::vector<double>& flux,
                                     const std::vector<double>& volumes,
                                     Reaction reaction);

/// Volume-integrated reaction rate over the whole geometry.
double total_rate(const Geometry& geometry,
                  const std::vector<Material>& materials,
                  const std::vector<double>& flux,
                  const std::vector<double>& volumes, Reaction reaction);

/// Fission power per axial layer (normalized so the mean fueled layer is
/// 1; zero-power layers stay 0). The classic axial power shape.
std::vector<double> axial_power_profile(const Geometry& geometry,
                                        const std::vector<double>& fission_rate,
                                        const std::vector<double>& volumes);

/// Fission power per (nx x ny) radial tile (assembly powers when the tile
/// grid matches the assembly lattice), row-major with j increasing in y.
std::vector<double> radial_power_map(const Geometry& geometry,
                                     const std::vector<double>& fission_rate,
                                     const std::vector<double>& volumes,
                                     int nx, int ny);

/// Peak-to-average of the positive entries of a power map (the pin/assembly
/// peaking factor used in core design).
double peaking_factor(const std::vector<double>& power);

}  // namespace antmoc::tallies
