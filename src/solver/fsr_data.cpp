#include "solver/fsr_data.h"

#include <cmath>

#include "util/error.h"
#include "util/parallel.h"

namespace antmoc {

namespace {
constexpr double k4Pi = 4.0 * 3.14159265358979323846;
constexpr double kInv4Pi = 1.0 / k4Pi;
}  // namespace

template <class F>
void FsrData::for_fsrs(F&& f) const {
  if (par_ != nullptr) {
    par_->for_each(num_fsrs_, f);
  } else {
    for (long r = 0; r < num_fsrs_; ++r) f(r);
  }
}

FsrData::FsrData(const Geometry& geometry,
                 const std::vector<Material>& materials)
    : geometry_(&geometry),
      materials_(&materials),
      num_fsrs_(geometry.num_fsrs()),
      num_groups_(materials.empty() ? 0 : materials.front().num_groups()) {
  require(!materials.empty(), "FsrData needs at least one material");
  require(geometry.num_materials() <= static_cast<int>(materials.size()),
          "geometry references materials beyond the provided set");
  for (const auto& m : materials)
    require(m.num_groups() == num_groups_,
            "all materials must share the group structure");

  material_of_.resize(num_fsrs_);
  sigma_t_.resize(num_fsrs_ * num_groups_);
  for (long r = 0; r < num_fsrs_; ++r) {
    const int m = geometry.fsr_material(r);
    material_of_[r] = m;
    for (int g = 0; g < num_groups_; ++g)
      sigma_t_[r * num_groups_ + g] = materials[m].sigma_t(g);
  }
  volumes_.assign(num_fsrs_, 0.0);
  flux_.assign(num_fsrs_ * num_groups_, 1.0);
  qos_.assign(num_fsrs_ * num_groups_, 0.0);
  accum_.assign(num_fsrs_ * num_groups_, 0.0);
  old_fission_.assign(num_fsrs_, 0.0);
}

void FsrData::set_volumes(std::vector<double> volumes) {
  require(static_cast<long>(volumes.size()) == num_fsrs_,
          "volume array size mismatch");
  volumes_ = std::move(volumes);
}

void FsrData::set_scalar_flux(std::vector<double> flux) {
  require(flux.size() == flux_.size(), "scalar flux size mismatch");
  flux_ = std::move(flux);
}

void FsrData::zero_accumulator() {
  std::fill(accum_.begin(), accum_.end(), 0.0);
}

void FsrData::update_source(double k) {
  require(k > 0.0, "update_source needs a positive k");
  const auto& mats = *materials_;
  for_fsrs([&](long r) {
    const Material& m = mats[material_of_[r]];
    const double* phi = &flux_[r * num_groups_];
    double fission = 0.0;
    for (int g = 0; g < num_groups_; ++g) fission += m.nu_sigma_f(g) * phi[g];
    fission /= k;
    for (int g = 0; g < num_groups_; ++g) {
      double scatter = 0.0;
      for (int gp = 0; gp < num_groups_; ++gp)
        scatter += m.sigma_s(gp, g) * phi[gp];
      const double q = kInv4Pi * (scatter + m.chi(g) * fission);
      qos_[r * num_groups_ + g] = q / sigma_t_[r * num_groups_ + g];
    }
  });
}

void FsrData::update_source_fixed(const std::vector<double>& external) {
  require(external.empty() ||
              static_cast<long>(external.size()) ==
                  num_fsrs_ * num_groups_,
          "external source must have one entry per (fsr, group)");
  const auto& mats = *materials_;
  for_fsrs([&](long r) {
    const Material& m = mats[material_of_[r]];
    const double* phi = &flux_[r * num_groups_];
    double fission = 0.0;
    for (int g = 0; g < num_groups_; ++g) fission += m.nu_sigma_f(g) * phi[g];
    for (int g = 0; g < num_groups_; ++g) {
      double scatter = 0.0;
      for (int gp = 0; gp < num_groups_; ++gp)
        scatter += m.sigma_s(gp, g) * phi[gp];
      double q = kInv4Pi * (scatter + m.chi(g) * fission);
      if (!external.empty())
        q += kInv4Pi * external[r * num_groups_ + g];
      qos_[r * num_groups_ + g] = q / sigma_t_[r * num_groups_ + g];
    }
  });
}

void FsrData::close_scalar_flux() {
  for_fsrs([&](long r) {
    const double v = volumes_[r];
    for (int g = 0; g < num_groups_; ++g) {
      const long i = r * num_groups_ + g;
      flux_[i] = k4Pi * qos_[i];
      if (v > 0.0) flux_[i] += accum_[i] / (sigma_t_[i] * v);
    }
  });
}

double FsrData::fission_production() const {
  const auto& mats = *materials_;
  double total = 0.0;
  for (long r = 0; r < num_fsrs_; ++r) {
    const Material& m = mats[material_of_[r]];
    if (!m.is_fissile()) continue;
    double f = 0.0;
    for (int g = 0; g < num_groups_; ++g)
      f += m.nu_sigma_f(g) * flux_[r * num_groups_ + g];
    total += volumes_[r] * f;
  }
  return total;
}

std::vector<double> FsrData::fission_rate() const {
  const auto& mats = *materials_;
  std::vector<double> rate(num_fsrs_, 0.0);
  for (long r = 0; r < num_fsrs_; ++r) {
    const Material& m = mats[material_of_[r]];
    for (int g = 0; g < num_groups_; ++g)
      rate[r] += m.sigma_f(g) * flux_[r * num_groups_ + g];
  }
  return rate;
}

double FsrData::fission_source_residual() {
  const auto& mats = *materials_;
  double sum_sq = 0.0;
  long count = 0;
  for (long r = 0; r < num_fsrs_; ++r) {
    const Material& m = mats[material_of_[r]];
    if (!m.is_fissile() || volumes_[r] <= 0.0) continue;
    double f = 0.0;
    for (int g = 0; g < num_groups_; ++g)
      f += m.nu_sigma_f(g) * flux_[r * num_groups_ + g];
    if (f > 0.0 && old_fission_[r] > 0.0) {
      const double rel = (f - old_fission_[r]) / f;
      sum_sq += rel * rel;
      ++count;
    } else if (f != old_fission_[r]) {
      sum_sq += 1.0;
      ++count;
    }
    old_fission_[r] = f;
  }
  if (count == 0) return 0.0;
  return std::sqrt(sum_sq / static_cast<double>(count));
}

void FsrData::scale_flux(double factor) {
  for_fsrs([&](long r) {
    for (int g = 0; g < num_groups_; ++g) flux_[r * num_groups_ + g] *= factor;
  });
}

void FsrData::fill_flux(double value) {
  std::fill(flux_.begin(), flux_.end(), value);
}

}  // namespace antmoc
