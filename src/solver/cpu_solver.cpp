#include "solver/cpu_solver.h"

#include <numeric>

#include "util/parallel.h"

namespace antmoc {

void CpuSolver::sweep() {
  const int G = fsr_.num_groups();
  const auto& sigma_t = fsr_.sigma_t_flat();
  const auto& qos = fsr_.q_over_sigma_t();
  auto& accum = fsr_.accumulator();
  const long n = stacks_.num_tracks();
  const TrackInfoCache& cache = info_cache();
  util::Parallel& P = par();
  const unsigned W = P.workers();

  // Per-item transport kernel: attenuate both directions of track `id`,
  // tallying w*delta into `acc` and staging (or depositing) the outgoing
  // flux. Returns the number of 3D segments traversed.
  auto sweep_track = [&](long id, double* acc, double* psi,
                         bool stage) -> long {
    const Track3DInfo& info = cache[id];
    const double w = cache.weight(id);
    long segments = 0;
    for (int dir = 0; dir < 2; ++dir) {
      const bool forward = dir == 0;
      const float* in = psi_in_.data() + (id * 2 + dir) * G;
      for (int g = 0; g < G; ++g) psi[g] = in[g];

      stacks_.for_each_segment(info, forward, [&](long fsr_id, double len) {
        ++segments;
        const long base = fsr_id * G;
        for (int g = 0; g < G; ++g) {
          const double ex = attenuation(sigma_t[base + g] * len);
          const double delta = (psi[g] - qos[base + g]) * ex;
          psi[g] -= delta;
          acc[base + g] += w * delta;
        }
      });

      if (stage) {
        double* out = stage_slot(id, dir);
        for (int g = 0; g < G; ++g) out[g] = psi[g];
      } else {
        deposit(id, forward, psi, /*atomic=*/false);
      }
    }
    return segments;
  };

  if (W == 1) {
    // Serial reference path: accumulate straight into the shared tallies
    // and deposit inline, exactly the seed sweep (minus the per-item
    // binary searches, replaced by the info cache).
    std::vector<double> psi(G);
    long segments = 0;
    for (long id = 0; id < n; ++id)
      segments += sweep_track(id, accum.data(), psi.data(), /*stage=*/false);
    last_sweep_segments_ = segments;
    return;
  }

  // Parallel path: per-worker private FSR tallies (no atomics on the
  // one-to-many track->FSR hazard) merged by the deterministic tree
  // reduction, and staged boundary deposits flushed in serial id order —
  // bit-reproducible for a fixed worker count.
  ensure_staging();
  const long len = fsr_.num_fsrs() * G;
  std::vector<std::vector<double>> priv(W, std::vector<double>(len, 0.0));
  std::vector<long> segments(W, 0);
  P.for_chunks(n, [&](unsigned w, long b, long e) {
    std::vector<double> psi(G);
    double* acc = priv[w].data();
    long count = 0;
    for (long id = b; id < e; ++id)
      count += sweep_track(id, acc, psi.data(), /*stage=*/true);
    segments[w] = count;
  });
  P.reduce_into(priv, accum.data(), len);
  flush_staged_deposits();
  last_sweep_segments_ =
      std::accumulate(segments.begin(), segments.end(), 0L);
}

}  // namespace antmoc
