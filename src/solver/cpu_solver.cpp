#include "solver/cpu_solver.h"

#include <algorithm>
#include <numeric>

#include "cmfd/cmfd.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace antmoc {

long CpuSolver::sweep_one(long id, double* acc, double* psi, bool stage,
                          double* cur) {
  const int G = fsr_.num_groups();
  const auto& sigma_t = fsr_.sigma_t_flat();
  const auto& qos = fsr_.q_over_sigma_t();
  const TrackInfoCache& cache = info_cache();
  const Track3DInfo& info = cache[id];
  const double w = cache.weight(id);
  long segments = 0;
  for (int dir = 0; dir < 2; ++dir) {
    const bool forward = dir == 0;
    const float* in = psi_in_.data() + (id * 2 + dir) * G;
    for (int g = 0; g < G; ++g) psi[g] = in[g];

    // CMFD crossing records of this (track, direction): tally w*psi into
    // the recorded slot whenever the segment ordinal reaches a record.
    const cmfd::Crossing* cp = nullptr;
    const cmfd::Crossing* ce = nullptr;
    if (cur != nullptr) cmfd_->plan().records(id, dir, cp, ce);
    long ord = 0;

    const auto attenuate = [&](long fsr_id, double len) {
      while (cp != ce && cp->ordinal == ord) {
        double* slot = cur + static_cast<long>(cp->slot) * G;
        for (int g = 0; g < G; ++g) slot[g] += w * psi[g];
        ++cp;
      }
      ++ord;
      ++segments;
      const long base = fsr_id * G;
      for (int g = 0; g < G; ++g) {
        const double ex = attenuation(sigma_t[base + g] * len);
        const double delta = (psi[g] - qos[base + g]) * ex;
        psi[g] -= delta;
        acc[base + g] += w * delta;
      }
    };
    // Template expansion when the track is eligible, generic OTF walk
    // otherwise — bitwise-identical output either way. Compact storage
    // rounds every chord once to fp32, matching the device solvers'
    // compact stores, so the host reference reproduces their fluxes.
    if (storage_ == TrackStorage::kCompact) {
      auto rounded = [&](long fsr_id, double len) {
        attenuate(fsr_id, static_cast<double>(static_cast<float>(len)));
      };
      stacks_.for_each_segment(info, forward, rounded);
    } else if (tmpl_ == nullptr ||
               !tmpl_->for_each_segment(id, forward, attenuate)) {
      stacks_.for_each_segment(info, forward, attenuate);
    }
    while (cp != ce) {  // exit crossings (ordinal == segment count)
      double* slot = cur + static_cast<long>(cp->slot) * G;
      for (int g = 0; g < G; ++g) slot[g] += w * psi[g];
      ++cp;
    }

    if (stage) {
      double* out = stage_slot(id, dir);
      for (int g = 0; g < G; ++g) out[g] = psi[g];
    } else {
      deposit(id, forward, psi, /*atomic=*/false);
    }
  }
  return segments;
}

long CpuSolver::sweep_one_event(long id, double* acc, double* psi, bool stage,
                                EventSweepScratch& ws, double* cur) {
  const int G = fsr_.num_groups();
  const double* sigma_t = fsr_.sigma_t_flat().data();
  const double* qos = fsr_.q_over_sigma_t().data();
  const double w = info_cache().weight(id);
  long segments = 0;
  for (int dir = 0; dir < 2; ++dir) {
    const float* in = psi_in_.data() + (id * 2 + dir) * G;
    for (int g = 0; g < G; ++g) psi[g] = in[g];

    const long first = events_->first(id, dir);
    const long count = events_->count(id, dir);
    // Dispatch onto the chord lane the arrays were built with: the fp32
    // lane under compact storage, fp64 otherwise.
    const auto run = [&](long off, long n) {
      if (events_->storage() == TrackStorage::kCompact)
        sweep_events(events_->base() + first + off,
                     events_->length32() + first + off, n, sigma_t, qos, w,
                     exp_table_, G, psi, acc, ws);
      else
        sweep_events(events_->base() + first + off,
                     events_->length() + first + off, n, sigma_t, qos, w,
                     exp_table_, G, psi, acc, ws);
    };
    if (cur == nullptr) {
      run(0, count);
    } else {
      // Split the flat range at the recorded crossing ordinals: stage 1 of
      // the batch kernel is per-event independent and stage 2 is a
      // sequential psi recurrence, so sub-range calls are bitwise
      // identical to one full-range call.
      const cmfd::Crossing* cp = nullptr;
      const cmfd::Crossing* ce = nullptr;
      cmfd_->plan().records(id, dir, cp, ce);
      long done = 0;
      while (cp != ce) {
        const long ord = cp->ordinal;
        if (ord > done) {
          run(done, ord - done);
          done = ord;
        }
        while (cp != ce && cp->ordinal == ord) {
          double* slot = cur + static_cast<long>(cp->slot) * G;
          for (int g = 0; g < G; ++g) slot[g] += w * psi[g];
          ++cp;
        }
      }
      if (count > done) run(done, count - done);
    }
    segments += count;

    if (stage) {
      double* out = stage_slot(id, dir);
      for (int g = 0; g < G; ++g) out[g] = psi[g];
    } else {
      deposit(id, dir == 0, psi, /*atomic=*/false);
    }
  }
  return segments;
}

void CpuSolver::ensure_templates() {
  // Compact storage deactivates template dispatch: the cache stores exact
  // fp64 chords and would bypass the one-rounding-point policy.
  if (storage_ == TrackStorage::kCompact) return;
  if (template_mode_ == TemplateMode::kOff || tmpl_ != nullptr) return;
  tmpl_ = &chord_templates();
  template_dispatch_ = true;
}

void CpuSolver::ensure_events() {
  if (backend_ != SweepBackend::kEvent || events_ != nullptr) return;
  if (shared_events_ != nullptr) {
    events_ = shared_events_;
  } else {
    // The once-per-solve flatten — traced separately so the one-time cost
    // is visible against the per-iteration sweep wins.
    telemetry::TraceSpan span("solver/event_build", "solver");
    Timer timer;
    timer.start();
    owned_events_ = std::make_unique<EventArrays>(
        stacks_, info_cache(), tmpl_, fsr_.num_groups(), &par(), nullptr,
        storage_);
    timer.stop();
    events_ = owned_events_.get();
    span.set_arg("events", events_->num_events());
    if (telemetry::on())
      telemetry::metrics()
          .gauge("solver.event_build_seconds")
          .set(timer.seconds());
  }
  active_backend_ = SweepBackend::kEvent;
}

void CpuSolver::ensure_sweep_scratch(unsigned workers, long tally_len,
                                     int groups) {
  if (priv_.size() != workers ||
      (workers > 0 && static_cast<long>(priv_[0].size()) != tally_len)) {
    priv_.assign(workers, std::vector<double>(tally_len, 0.0));
  } else {
    for (auto& p : priv_) std::fill(p.begin(), p.end(), 0.0);
  }
  const std::size_t psi_len =
      static_cast<std::size_t>(workers) * static_cast<std::size_t>(groups);
  if (psi_scratch_.size() < psi_len) psi_scratch_.resize(psi_len);
  worker_segments_.assign(workers, 0);
}

void CpuSolver::collect_event_counters() {
  for (auto& ws : event_scratch_) {
    last_event_batches_ += ws.batches;
    ws.reset_counters();
  }
}

void CpuSolver::sweep() {
  const int G = fsr_.num_groups();
  auto& accum = fsr_.accumulator();
  const long n = stacks_.num_tracks();
  util::Parallel& P = par();
  const unsigned W = P.workers();
  ensure_templates();
  ensure_events();
  const bool event = events_ != nullptr;
  const bool tally = cmfd_active();
  if (tally) cmfd_->begin_sweep(static_cast<int>(std::max(W, 1u)), G);

  if (event) {
    // The flatten subsumed per-sweep template dispatch; expansion stats
    // describe the build, not the sweeps, so none are published here.
    template_dispatch_ = false;
    last_template_hits_ = last_template_fallbacks_ = 0;
    last_template_segments_ = last_resident_segments_ = 0;
    last_event_batches_ = 0;
    if (event_scratch_.size() < std::max(W, 1u))
      event_scratch_.resize(std::max(W, 1u));
  } else if (tmpl_ != nullptr) {
    // Dispatch statistics are known up front: every eligible track hits
    // the template path in both directions, the rest fall back.
    last_template_hits_ = 2 * tmpl_->num_eligible();
    last_template_fallbacks_ = 2 * (n - tmpl_->num_eligible());
    last_template_segments_ = 2 * tmpl_->eligible_segments();
    last_resident_segments_ = 0;
  }

  if (W == 1) {
    // Serial reference path: accumulate straight into the shared tallies
    // and deposit inline, exactly the seed sweep (minus the per-item
    // binary searches, replaced by the info cache).
    if (psi_scratch_.size() < static_cast<std::size_t>(G))
      psi_scratch_.resize(G);
    double* cur = tally ? cmfd_->currents(0) : nullptr;
    long segments = 0;
    if (event) {
      for (long id = 0; id < n; ++id)
        segments += sweep_one_event(id, accum.data(), psi_scratch_.data(),
                                    /*stage=*/false, event_scratch_[0], cur);
      collect_event_counters();
    } else {
      for (long id = 0; id < n; ++id)
        segments += sweep_one(id, accum.data(), psi_scratch_.data(),
                              /*stage=*/false, cur);
    }
    last_sweep_segments_ = segments;
    return;
  }

  // Parallel path: per-worker private FSR tallies (no atomics on the
  // one-to-many track->FSR hazard) merged by the deterministic tree
  // reduction, and staged boundary deposits flushed in serial id order —
  // bit-reproducible for a fixed worker count. Scratch persists across
  // sweeps (zero-filled, not reallocated). The event backend shares the
  // partition, privates, and flush discipline — only the per-track kernel
  // differs — so its parallel results match history bitwise as well.
  ensure_staging();
  const long len = fsr_.num_fsrs() * G;
  ensure_sweep_scratch(W, len, G);
  P.for_chunks(n, [&](unsigned w, long b, long e) {
    double* psi = psi_scratch_.data() + static_cast<std::size_t>(w) * G;
    double* acc = priv_[w].data();
    double* cur = tally ? cmfd_->currents(static_cast<int>(w)) : nullptr;
    long count = 0;
    if (event) {
      EventSweepScratch& ws = event_scratch_[w];
      for (long id = b; id < e; ++id)
        count += sweep_one_event(id, acc, psi, /*stage=*/true, ws, cur);
    } else {
      for (long id = b; id < e; ++id)
        count += sweep_one(id, acc, psi, /*stage=*/true, cur);
    }
    worker_segments_[w] = count;
  });
  P.reduce_into(priv_, accum.data(), len);
  flush_staged_deposits();
  last_sweep_segments_ =
      std::accumulate(worker_segments_.begin(), worker_segments_.end(), 0L);
  if (event) collect_event_counters();
}

void CpuSolver::sweep_subset(const std::vector<long>& ids) {
  const int G = fsr_.num_groups();
  auto& accum = fsr_.accumulator();
  const long m = static_cast<long>(ids.size());
  if (m == 0) return;
  ensure_staging();
  util::Parallel& P = par();
  const unsigned W = P.workers();
  ensure_templates();
  ensure_events();
  const bool event = events_ != nullptr;
  const bool tally = cmfd_active();
  if (tally) cmfd_->begin_sweep(static_cast<int>(std::max(W, 1u)), G);

  if (event) {
    template_dispatch_ = false;
    if (event_scratch_.size() < std::max(W, 1u))
      event_scratch_.resize(std::max(W, 1u));
  } else if (tmpl_ != nullptr) {
    const auto& counts = tmpl_->segment_counts();
    for (long id : ids) {
      if (tmpl_->eligible(id)) {
        last_template_hits_ += 2;
        last_template_segments_ += 2 * counts[id];
      } else {
        last_template_fallbacks_ += 2;
      }
    }
  }

  if (W == 1) {
    if (psi_scratch_.size() < static_cast<std::size_t>(G))
      psi_scratch_.resize(G);
    double* cur = tally ? cmfd_->currents(0) : nullptr;
    long segments = 0;
    if (event) {
      for (long id : ids)
        segments += sweep_one_event(id, accum.data(), psi_scratch_.data(),
                                    /*stage=*/true, event_scratch_[0], cur);
      collect_event_counters();
    } else {
      for (long id : ids)
        segments += sweep_one(id, accum.data(), psi_scratch_.data(),
                              /*stage=*/true, cur);
    }
    last_sweep_segments_ += segments;
    return;
  }

  // Same discipline as the full parallel sweep, over the subset's index
  // space: the chunking depends only on (subset size, worker count), so a
  // fixed phase partition reproduces bit-identical tallies.
  const long len = fsr_.num_fsrs() * G;
  ensure_sweep_scratch(W, len, G);
  P.for_chunks(m, [&](unsigned w, long b, long e) {
    double* psi = psi_scratch_.data() + static_cast<std::size_t>(w) * G;
    double* acc = priv_[w].data();
    double* cur = tally ? cmfd_->currents(static_cast<int>(w)) : nullptr;
    long count = 0;
    if (event) {
      EventSweepScratch& ws = event_scratch_[w];
      for (long i = b; i < e; ++i)
        count += sweep_one_event(ids[i], acc, psi, /*stage=*/true, ws, cur);
    } else {
      for (long i = b; i < e; ++i)
        count += sweep_one(ids[i], acc, psi, /*stage=*/true, cur);
    }
    worker_segments_[w] = count;
  });
  P.reduce_into(priv_, accum.data(), len);
  last_sweep_segments_ +=
      std::accumulate(worker_segments_.begin(), worker_segments_.end(), 0L);
  if (event) collect_event_counters();
}

}  // namespace antmoc
