#include "solver/cpu_solver.h"

#include <numeric>

#include "util/parallel.h"

namespace antmoc {

long CpuSolver::sweep_one(long id, double* acc, double* psi, bool stage) {
  const int G = fsr_.num_groups();
  const auto& sigma_t = fsr_.sigma_t_flat();
  const auto& qos = fsr_.q_over_sigma_t();
  const TrackInfoCache& cache = info_cache();
  const Track3DInfo& info = cache[id];
  const double w = cache.weight(id);
  long segments = 0;
  for (int dir = 0; dir < 2; ++dir) {
    const bool forward = dir == 0;
    const float* in = psi_in_.data() + (id * 2 + dir) * G;
    for (int g = 0; g < G; ++g) psi[g] = in[g];

    stacks_.for_each_segment(info, forward, [&](long fsr_id, double len) {
      ++segments;
      const long base = fsr_id * G;
      for (int g = 0; g < G; ++g) {
        const double ex = attenuation(sigma_t[base + g] * len);
        const double delta = (psi[g] - qos[base + g]) * ex;
        psi[g] -= delta;
        acc[base + g] += w * delta;
      }
    });

    if (stage) {
      double* out = stage_slot(id, dir);
      for (int g = 0; g < G; ++g) out[g] = psi[g];
    } else {
      deposit(id, forward, psi, /*atomic=*/false);
    }
  }
  return segments;
}

void CpuSolver::sweep() {
  const int G = fsr_.num_groups();
  auto& accum = fsr_.accumulator();
  const long n = stacks_.num_tracks();
  util::Parallel& P = par();
  const unsigned W = P.workers();

  if (W == 1) {
    // Serial reference path: accumulate straight into the shared tallies
    // and deposit inline, exactly the seed sweep (minus the per-item
    // binary searches, replaced by the info cache).
    std::vector<double> psi(G);
    long segments = 0;
    for (long id = 0; id < n; ++id)
      segments += sweep_one(id, accum.data(), psi.data(), /*stage=*/false);
    last_sweep_segments_ = segments;
    return;
  }

  // Parallel path: per-worker private FSR tallies (no atomics on the
  // one-to-many track->FSR hazard) merged by the deterministic tree
  // reduction, and staged boundary deposits flushed in serial id order —
  // bit-reproducible for a fixed worker count.
  ensure_staging();
  const long len = fsr_.num_fsrs() * G;
  std::vector<std::vector<double>> priv(W, std::vector<double>(len, 0.0));
  std::vector<long> segments(W, 0);
  P.for_chunks(n, [&](unsigned w, long b, long e) {
    std::vector<double> psi(G);
    double* acc = priv[w].data();
    long count = 0;
    for (long id = b; id < e; ++id)
      count += sweep_one(id, acc, psi.data(), /*stage=*/true);
    segments[w] = count;
  });
  P.reduce_into(priv, accum.data(), len);
  flush_staged_deposits();
  last_sweep_segments_ =
      std::accumulate(segments.begin(), segments.end(), 0L);
}

void CpuSolver::sweep_subset(const std::vector<long>& ids) {
  const int G = fsr_.num_groups();
  auto& accum = fsr_.accumulator();
  const long m = static_cast<long>(ids.size());
  if (m == 0) return;
  ensure_staging();
  util::Parallel& P = par();
  const unsigned W = P.workers();

  if (W == 1) {
    std::vector<double> psi(G);
    long segments = 0;
    for (long id : ids)
      segments += sweep_one(id, accum.data(), psi.data(), /*stage=*/true);
    last_sweep_segments_ += segments;
    return;
  }

  // Same discipline as the full parallel sweep, over the subset's index
  // space: the chunking depends only on (subset size, worker count), so a
  // fixed phase partition reproduces bit-identical tallies.
  const long len = fsr_.num_fsrs() * G;
  std::vector<std::vector<double>> priv(W, std::vector<double>(len, 0.0));
  std::vector<long> segments(W, 0);
  P.for_chunks(m, [&](unsigned w, long b, long e) {
    std::vector<double> psi(G);
    double* acc = priv[w].data();
    long count = 0;
    for (long i = b; i < e; ++i)
      count += sweep_one(ids[i], acc, psi.data(), /*stage=*/true);
    segments[w] = count;
  });
  P.reduce_into(priv, accum.data(), len);
  last_sweep_segments_ +=
      std::accumulate(segments.begin(), segments.end(), 0L);
}

}  // namespace antmoc
