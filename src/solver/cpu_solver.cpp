#include "solver/cpu_solver.h"

namespace antmoc {

void CpuSolver::sweep() {
  const int G = fsr_.num_groups();
  const auto& sigma_t = fsr_.sigma_t_flat();
  const auto& qos = fsr_.q_over_sigma_t();
  auto& accum = fsr_.accumulator();
  std::vector<double> psi(G);

  for (long id = 0; id < stacks_.num_tracks(); ++id) {
    const Track3DInfo info = stacks_.info(id);
    const double w =
        stacks_.direction_weight(id) * stacks_.track_area(id);
    for (int dir = 0; dir < 2; ++dir) {
      const bool forward = dir == 0;
      const float* in = psi_in_.data() + (id * 2 + dir) * G;
      for (int g = 0; g < G; ++g) psi[g] = in[g];

      stacks_.for_each_segment(info, forward, [&](long fsr_id, double len) {
        const long base = fsr_id * G;
        for (int g = 0; g < G; ++g) {
          const double ex = attenuation(sigma_t[base + g] * len);
          const double delta = (psi[g] - qos[base + g]) * ex;
          psi[g] -= delta;
          accum[base + g] += w * delta;
        }
      });

      deposit(id, forward, psi.data(), /*atomic=*/false);
    }
  }
}

}  // namespace antmoc
