#include "solver/multi_gpu_solver.h"

#include <algorithm>
#include <numeric>

#include "gpusim/atomic.h"
#include "telemetry/telemetry.h"
#include "util/error.h"

namespace antmoc {
namespace {
constexpr int kMaxGroups = 64;
}

MultiGpuSolver::MultiGpuSolver(const TrackStacks& stacks,
                               const std::vector<Material>& materials,
                               const MultiGpuOptions& options)
    : TransportSolver(stacks, materials),
      options_(options),
      // Residency is tracked host-side here; per-device arena charging of
      // a distributed resident set is modeled by the cluster simulator.
      manager_(stacks, options.policy, nullptr,
               options.resident_budget_bytes) {
  require(options.num_devices >= 1, "need at least one device");
  require(fsr_.num_groups() <= kMaxGroups,
          "MultiGpuSolver supports at most 64 energy groups");

  for (int d = 0; d < options.num_devices; ++d)
    devices_.push_back(std::make_unique<gpusim::Device>(options.device_spec));

  // --- L2: azimuthal angles -> devices ------------------------------------
  const auto& gen = stacks.generator();
  const auto& quad = gen.quadrature();
  const auto& counts = manager_.segment_counts();
  const int n_azim = quad.num_azim_2();

  std::vector<double> azim_load(n_azim, 0.0);
  for (long id = 0; id < stacks.num_tracks(); ++id) {
    const Track3DInfo t = stacks.info(id);
    azim_load[gen.track(t.track2d).azim] += double(counts[id]);
  }

  device_of_azim_.assign(n_azim, 0);
  if (options.balance_angles) {
    // Heaviest angle onto the lightest device (Fig. 5(2)).
    std::vector<int> order(n_azim);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
      return azim_load[a] > azim_load[b];
    });
    std::vector<double> dev_load(options.num_devices, 0.0);
    for (int a : order) {
      const int lightest = static_cast<int>(
          std::min_element(dev_load.begin(), dev_load.end()) -
          dev_load.begin());
      device_of_azim_[a] = lightest;
      dev_load[lightest] += azim_load[a];
    }
  } else {
    const int chunk = (n_azim + options.num_devices - 1) /
                      options.num_devices;
    for (int a = 0; a < n_azim; ++a)
      device_of_azim_[a] = std::min(a / chunk, options.num_devices - 1);
  }

  device_of_track_.resize(stacks.num_tracks());
  device_order_.resize(options.num_devices);
  for (long id = 0; id < stacks.num_tracks(); ++id) {
    const Track3DInfo t = stacks.info(id);
    const int d = device_of_azim_[gen.track(t.track2d).azim];
    device_of_track_[id] = d;
    device_order_[d].push_back(id);
  }
  if (options.l3_sort)
    for (auto& order : device_order_)
      std::stable_sort(order.begin(), order.end(), [&](long a, long b) {
        return counts[a] > counts[b];
      });
}

double MultiGpuSolver::device_load_uniformity() const {
  const double total =
      std::accumulate(last_cycles_.begin(), last_cycles_.end(), 0.0);
  if (total <= 0.0 || last_cycles_.empty()) return 1.0;
  return *std::max_element(last_cycles_.begin(), last_cycles_.end()) /
         (total / last_cycles_.size());
}

void MultiGpuSolver::sweep() {
  const int G = fsr_.num_groups();
  const double* sigma_t = fsr_.sigma_t_flat().data();
  const double* qos = fsr_.q_over_sigma_t().data();
  double* accum = fsr_.accumulator().data();

  last_cycles_.assign(devices_.size(), 0.0);
  last_dma_bytes_ = 0;

  const auto assignment = options_.l3_sort
                              ? gpusim::Assignment::kRoundRobin
                              : gpusim::Assignment::kBlocked;

  for (int d = 0; d < num_devices(); ++d) {
    const auto& order = device_order_[d];
    if (order.empty()) continue;
    const auto stats = devices_[d]->launch(
        "transport_sweep", order.size(), assignment,
        [&](std::size_t item) {
          const long id = order[item];
          const Track3DInfo info = stacks_.info(id);
          const double w =
              stacks_.direction_weight(id) * stacks_.track_area(id);
          double psi[kMaxGroups];

          long seg_count = 0;
          const Segment3D* segs = manager_.segments(id, seg_count);

          for (int dir = 0; dir < 2; ++dir) {
            const bool forward = dir == 0;
            const float* in = psi_in_.data() + (id * 2 + dir) * G;
            for (int g = 0; g < G; ++g) psi[g] = in[g];

            auto apply = [&](long fsr_id, double len) {
              const long base = fsr_id * G;
              for (int g = 0; g < G; ++g) {
                const double ex = attenuation(sigma_t[base + g] * len);
                const double delta = (psi[g] - qos[base + g]) * ex;
                psi[g] -= delta;
                gpusim::device_atomic_add(accum[base + g], w * delta);
              }
            };

            if (segs != nullptr) {
              if (forward)
                for (long s = 0; s < seg_count; ++s)
                  apply(segs[s].fsr, segs[s].length);
              else
                for (long s = seg_count - 1; s >= 0; --s)
                  apply(segs[s].fsr, segs[s].length);
            } else {
              stacks_.for_each_segment(info, forward, apply);
            }

            // Cross-device hand-off goes over the node's DMA fabric
            // before landing in the target device's incoming flux.
            const Link3D& link = links_[id * 2 + dir];
            if (link.kind == Link3D::Kind::kLocal) {
              const int target = device_of_track_[link.track];
              if (target != d) {
                devices_[d]->dma_copy_to(*devices_[target],
                                         std::size_t(G) * sizeof(float));
                gpusim::device_atomic_add(
                    last_dma_bytes_, std::uint64_t(G) * sizeof(float));
              }
            }
            deposit(id, forward, psi, /*atomic=*/true);
          }
          return manager_.track_cost(id);
        });
    last_cycles_[d] = stats.max_cycles;
  }

  // Node-level (L2) balance of this sweep: per-device busy cycles plus the
  // cross-device DMA volume, the pair of signals §4.2.2 trades off.
  if (telemetry::on()) {
    auto& m = telemetry::metrics();
    for (int d = 0; d < num_devices(); ++d)
      m.gauge(telemetry::label("multigpu.device_cycles", "device", d))
          .set(last_cycles_[d]);
    m.gauge("multigpu.load_uniformity").set(device_load_uniformity());
    m.counter("multigpu.sweep_dma_bytes").add(last_dma_bytes_);
  }
}

}  // namespace antmoc
