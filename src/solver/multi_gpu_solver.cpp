#include "solver/multi_gpu_solver.h"

#include <algorithm>
#include <numeric>

#include "gpusim/atomic.h"
#include "telemetry/telemetry.h"
#include "util/error.h"

namespace antmoc {
namespace {
constexpr int kMaxGroups = 64;
}

MultiGpuSolver::MultiGpuSolver(const TrackStacks& stacks,
                               const std::vector<Material>& materials,
                               const MultiGpuOptions& options)
    : TransportSolver(stacks, materials),
      options_(options),
      // Residency is tracked host-side here; per-device arena charging of
      // a distributed resident set is modeled by the cluster simulator.
      manager_(stacks, options.policy, nullptr, options.resident_budget_bytes,
               options.policy != TrackPolicy::kExplicit &&
                       options.templates != TemplateMode::kOff &&
                       options.storage != TrackStorage::kCompact
                   ? &chord_templates()
                   : nullptr,
               options.storage),
      device_par_(static_cast<unsigned>(std::max(1, options.num_devices))) {
  require(options.num_devices >= 1, "need at least one device");
  require_compact_storage_compatible(options.storage, options.templates);
  require(fsr_.num_groups() <= kMaxGroups,
          "MultiGpuSolver supports at most 64 energy groups");

  for (int d = 0; d < options.num_devices; ++d)
    devices_.push_back(std::make_unique<gpusim::Device>(options.device_spec));

  // --- L2: azimuthal angles -> devices ------------------------------------
  // One pass over the cached per-track info records each track's azimuthal
  // angle and accumulates the per-angle load (the seed decoded every track
  // twice: once for the load pass, once for the assignment pass).
  const auto& gen = stacks.generator();
  const auto& quad = gen.quadrature();
  const auto& counts = manager_.segment_counts();
  const int n_azim = quad.num_azim_2();
  const TrackInfoCache& cache = info_cache();

  std::vector<int> azim_of(stacks.num_tracks());
  std::vector<double> azim_load(n_azim, 0.0);
  for (long id = 0; id < stacks.num_tracks(); ++id) {
    const int azim = gen.track(cache[id].track2d).azim;
    azim_of[id] = azim;
    azim_load[azim] += double(counts[id]);
    segments_per_sweep_ += 2 * counts[id];
  }

  device_of_azim_.assign(n_azim, 0);
  if (options.balance_angles) {
    // Heaviest angle onto the lightest device (Fig. 5(2)).
    std::vector<int> order(n_azim);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
      return azim_load[a] > azim_load[b];
    });
    std::vector<double> dev_load(options.num_devices, 0.0);
    for (int a : order) {
      const int lightest = static_cast<int>(
          std::min_element(dev_load.begin(), dev_load.end()) -
          dev_load.begin());
      device_of_azim_[a] = lightest;
      dev_load[lightest] += azim_load[a];
    }
  } else {
    const int chunk = (n_azim + options.num_devices - 1) /
                      options.num_devices;
    for (int a = 0; a < n_azim; ++a)
      device_of_azim_[a] = std::min(a / chunk, options.num_devices - 1);
  }

  device_of_track_.resize(stacks.num_tracks());
  device_order_.resize(options.num_devices);
  for (long id = 0; id < stacks.num_tracks(); ++id) {
    const int d = device_of_azim_[azim_of[id]];
    device_of_track_[id] = d;
    device_order_[d].push_back(id);
  }
  if (options.l3_sort)
    for (auto& order : device_order_)
      std::stable_sort(order.begin(), order.end(), [&](long a, long b) {
        return counts[a] > counts[b];
      });

  setup_hot_path();
  compute_template_stats();
}

void MultiGpuSolver::compute_template_stats() {
  template_dispatch_ = manager_.templates() != nullptr;
  if (!template_dispatch_) return;
  const auto& counts = manager_.segment_counts();
  for (long id = 0; id < stacks_.num_tracks(); ++id) {
    if (manager_.resident(id)) {
      resident_segments_per_sweep_ += 2 * counts[id];
    } else if (manager_.templated(id)) {
      template_hits_per_sweep_ += 2;
      template_segments_per_sweep_ += 2 * counts[id];
    } else {
      template_fallbacks_per_sweep_ += 2;
    }
  }
}

void MultiGpuSolver::setup_hot_path() {
  // Each device is charged its own tracks' share of the decoded-info
  // cache; if any arena cannot afford it, all devices fall back to
  // per-item decode so the sweep kernels stay uniform.
  try {
    for (int d = 0; d < num_devices(); ++d)
      hot_charges_.emplace_back(
          devices_[d]->memory(), "track_info_cache",
          TrackInfoCache::bytes_for(
              static_cast<long>(device_order_[d].size())));
    cache_ = &info_cache();
  } catch (const DeviceOutOfMemory&) {
    hot_charges_.clear();
    cache_ = nullptr;
  }

  // Each device is charged its tracks' share of the chord-template
  // tables (stacks belong to one azimuthal angle, so the split by track
  // count matches the stack ownership). Any device OOM deactivates
  // template dispatch on all of them — uniform kernels, like the
  // info-cache fallback above.
  if (manager_.templates() != nullptr) {
    const std::size_t total = manager_.templates()->bytes();
    const long n = std::max(1L, stacks_.num_tracks());
    std::vector<gpusim::ScopedCharge> tcharges;
    try {
      for (int d = 0; d < num_devices(); ++d)
        tcharges.emplace_back(
            devices_[d]->memory(), "chord_templates",
            total * device_order_[d].size() / static_cast<std::size_t>(n));
      for (auto& c : tcharges) hot_charges_.push_back(std::move(c));
    } catch (const DeviceOutOfMemory&) {
      tcharges.clear();
      if (options_.templates == TemplateMode::kForce) throw;
      manager_.set_templates_active(false);  // kAuto: generic-walk fallback
    }
  }

  if (options_.privatize == PrivatizeMode::kOff) return;
  const std::size_t len =
      static_cast<std::size_t>(fsr_.num_fsrs()) * fsr_.num_groups();
  const std::size_t ncus =
      static_cast<std::size_t>(options_.device_spec.num_cus);
  std::vector<gpusim::ScopedCharge> staging;
  try {
    for (int d = 0; d < num_devices(); ++d) {
      scratch_.push_back(
          devices_[d]->alloc<double>("tally_scratch", ncus * len));
      staging.emplace_back(devices_[d]->memory(), "staged_fluxs",
                           device_order_[d].size() * 2 *
                               fsr_.num_groups() * sizeof(double));
    }
    ensure_staging();
    privatized_ = true;
    for (auto& c : staging) hot_charges_.push_back(std::move(c));
  } catch (const DeviceOutOfMemory&) {
    scratch_.clear();
    staging.clear();
    if (options_.privatize == PrivatizeMode::kForce) throw;
    privatized_ = false;  // kAuto: atomic fallback on every device
  }
}

double MultiGpuSolver::device_load_uniformity() const {
  const double total =
      std::accumulate(last_cycles_.begin(), last_cycles_.end(), 0.0);
  if (total <= 0.0 || last_cycles_.empty()) return 1.0;
  return *std::max_element(last_cycles_.begin(), last_cycles_.end()) /
         (total / last_cycles_.size());
}

void MultiGpuSolver::sweep() {
  const int G = fsr_.num_groups();
  const double* sigma_t = fsr_.sigma_t_flat().data();
  const double* qos = fsr_.q_over_sigma_t().data();
  double* accum = fsr_.accumulator().data();

  last_cycles_.assign(devices_.size(), 0.0);
  last_dma_bytes_ = 0;

  const auto assignment = options_.l3_sort
                              ? gpusim::Assignment::kRoundRobin
                              : gpusim::Assignment::kBlocked;

  // One track's transport kernel on device `d`. With a non-null `acc` the
  // tallies go to that private buffer and the outgoing flux is staged
  // (privatized mode); with acc == nullptr tallies are atomic and the
  // deposit + DMA accounting happen in-kernel (the fallback path).
  auto sweep_track = [&](long id, int d, double* acc) {
    Track3DInfo decoded;
    const Track3DInfo* info;
    double w;
    if (cache_ != nullptr) {
      info = &(*cache_)[id];
      w = cache_->weight(id);
    } else {
      decoded = stacks_.info(id);
      info = &decoded;
      w = stacks_.direction_weight(id) * stacks_.track_area(id);
    }
    double psi[kMaxGroups];

    const bool compact = manager_.storage() == TrackStorage::kCompact;

    for (int dir = 0; dir < 2; ++dir) {
      const bool forward = dir == 0;
      const float* in = psi_in_.data() + (id * 2 + dir) * G;
      for (int g = 0; g < G; ++g) psi[g] = in[g];

      auto apply = [&](long fsr_id, double len) {
        const long base = fsr_id * G;
        for (int g = 0; g < G; ++g) {
          const double ex = attenuation(sigma_t[base + g] * len);
          const double delta = (psi[g] - qos[base + g]) * ex;
          psi[g] -= delta;
          if (acc != nullptr)
            acc[base + g] += w * delta;
          else
            gpusim::device_atomic_add(accum[base + g], w * delta);
        }
      };

      if (!manager_.for_each_resident_segment(id, forward, apply)) {
        // Compact mode rounds regenerated chords once to fp32 — the same
        // single rounding point the compact resident store applies.
        if (compact) {
          auto rounded = [&](long fsr_id, double len) {
            apply(fsr_id, static_cast<double>(static_cast<float>(len)));
          };
          stacks_.for_each_segment(*info, forward, rounded);
        } else {
          const ChordTemplateCache* t = manager_.templates();
          if (t == nullptr || !t->for_each_segment(id, forward, apply))
            stacks_.for_each_segment(*info, forward, apply);
        }
      }

      if (acc != nullptr) {
        double* out = stage_slot(id, dir);
        for (int g = 0; g < G; ++g) out[g] = psi[g];
      } else {
        // Cross-device hand-off goes over the node's DMA fabric
        // before landing in the target device's incoming flux.
        const Link3D& link = links_[id * 2 + dir];
        if (link.kind == Link3D::Kind::kLocal) {
          const int target = device_of_track_[link.track];
          if (target != d) {
            devices_[d]->dma_copy_to(*devices_[target],
                                     std::size_t(G) * sizeof(float));
            gpusim::device_atomic_add(
                last_dma_bytes_, std::uint64_t(G) * sizeof(float));
          }
        }
        deposit(id, forward, psi, /*atomic=*/true);
      }
    }
    return manager_.track_cost(id);
  };

  // All devices launch concurrently — one host worker per device — so the
  // node's wall-clock sweep time reflects real overlap, as on hardware.
  const std::size_t len = static_cast<std::size_t>(fsr_.num_fsrs()) * G;
  device_par_.for_chunks(num_devices(), [&](unsigned, long b, long e) {
    for (long d = b; d < e; ++d) {
      const auto& order = device_order_[d];
      if (order.empty()) continue;
      double* scratch = privatized_ ? scratch_[d].data() : nullptr;
      const int dev = static_cast<int>(d);
      const auto stats =
          privatized_
              ? devices_[d]->launch(
                    "transport_sweep", order.size(), assignment,
                    [&, dev, scratch](std::size_t item, int cu) {
                      return sweep_track(order[item], dev,
                                         scratch + cu * len);
                    })
              : devices_[d]->launch(
                    "transport_sweep", order.size(), assignment,
                    [&, dev](std::size_t item) {
                      return sweep_track(order[item], dev, nullptr);
                    });
      last_cycles_[d] = stats.max_cycles;
    }
  });

  if (privatized_) {
    // Deterministic epilogue, serial in fixed order: flush the staged
    // boundary deposits in ascending (id, dir) order — accounting the
    // cross-device DMA as each flux crosses — then merge every device's
    // per-CU partials in device order.
    for (long id = 0; id < stacks_.num_tracks(); ++id) {
      const int src = device_of_track_[id];
      for (int dir = 0; dir < 2; ++dir) {
        const Link3D& link = links_[id * 2 + dir];
        if (link.kind == Link3D::Kind::kLocal) {
          const int target = device_of_track_[link.track];
          if (target != src) {
            devices_[src]->dma_copy_to(*devices_[target],
                                       std::size_t(G) * sizeof(float));
            last_dma_bytes_ += std::uint64_t(G) * sizeof(float);
          }
        }
        deposit(id, dir == 0, stage_slot(id, dir), /*atomic=*/false);
      }
    }
    const int ncus = options_.device_spec.num_cus;
    for (int d = 0; d < num_devices(); ++d) {
      if (device_order_[d].empty()) continue;
      double* scratch = scratch_[d].data();
      devices_[d]->launch(
          "tally_reduction", len, gpusim::Assignment::kBlocked,
          [&](std::size_t i) {
            double sum = 0.0;
            for (int c = 0; c < ncus; ++c) {
              double& s = scratch[static_cast<std::size_t>(c) * len + i];
              sum += s;
              s = 0.0;
            }
            accum[i] += sum;
            return static_cast<double>(ncus);
          });
    }
  }
  last_sweep_segments_ = segments_per_sweep_;
  last_template_hits_ = template_hits_per_sweep_;
  last_template_fallbacks_ = template_fallbacks_per_sweep_;
  last_template_segments_ = template_segments_per_sweep_;
  last_resident_segments_ = resident_segments_per_sweep_;

  // Node-level (L2) balance of this sweep: per-device busy cycles plus the
  // cross-device DMA volume, the pair of signals §4.2.2 trades off.
  if (telemetry::on()) {
    auto& m = telemetry::metrics();
    for (int d = 0; d < num_devices(); ++d)
      m.gauge(telemetry::label("multigpu.device_cycles", "device", d))
          .set(last_cycles_[d]);
    m.gauge("multigpu.load_uniformity").set(device_load_uniformity());
    m.counter("multigpu.sweep_dma_bytes").add(last_dma_bytes_);
  }
}

}  // namespace antmoc
