#pragma once

/// \file decomposition.h
/// Spatial decomposition of the geometry into an nx x ny x nz grid of
/// equal cuboid sub-geometries (paper §3.2: "evenly divided into multiple
/// cuboid sub-geometries arranged in 3D space"). Faces between domains
/// become kInterface; outer faces inherit the geometry's boundary
/// conditions.

#include <array>

#include "geometry/geometry.h"
#include "track/track2d.h"

namespace antmoc {

struct Decomposition {
  int nx = 1, ny = 1, nz = 1;

  int num_domains() const { return nx * ny * nz; }

  /// rank = i + nx * (j + ny * k)
  int rank_of(int i, int j, int k) const { return i + nx * (j + ny * k); }

  std::array<int, 3> coords(int rank) const {
    return {rank % nx, (rank / nx) % ny, rank / (nx * ny)};
  }

  /// Neighboring rank across face f, or -1 at the outer boundary.
  int neighbor(int rank, Face f) const;

  /// Number of interface faces of domain `rank` (0..6): the count of
  /// per-iteration flux-exchange partners.
  int num_neighbors(int rank) const;

  /// Sub-cuboid of domain `rank` within `global`.
  Bounds domain_bounds(const Bounds& global, int rank) const;

  /// Radial face link kinds of domain `rank`: kInterface toward neighbors,
  /// otherwise the geometry boundary condition.
  std::array<LinkKind, 4> radial_kinds(const Geometry& g, int rank) const;

  /// z-face link kind (Face::kZMin or kZMax).
  LinkKind z_kind(const Geometry& g, int rank, Face f) const;
};

/// The face seen from the other side of an interface.
Face opposite_face(Face f);

}  // namespace antmoc
