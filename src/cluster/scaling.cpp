#include "cluster/scaling.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "partition/load_mapper.h"
#include "track/track3d.h"
#include "partition/partitioner.h"
#include "util/error.h"
#include "util/rng.h"

namespace antmoc::cluster {
namespace {

/// Synthetic per-domain loads reproducing the C5G7 core's heterogeneity:
/// a reflector subset at a fraction of the fuel load, multiplicative
/// jitter elsewhere. Deterministic in the seed.
std::vector<double> domain_loads(int num_domains, const WorkloadSpec& w,
                                 double total_segments) {
  Rng rng(w.seed);
  // Scale-dependent contrast: coarse domains blend fuel and reflector,
  // fine domains are purely one or the other (see WorkloadSpec).
  const double contrast =
      std::min(1.0, num_domains / w.heterogeneity_scale_domains);
  std::vector<double> load(num_domains);
  for (int d = 0; d < num_domains; ++d) {
    const bool reflector = rng.next_double() < w.reflector_fraction;
    const double base =
        reflector ? 1.0 - contrast * (1.0 - w.reflector_load_ratio) : 1.0;
    load[d] = base * (1.0 + contrast * w.load_noise *
                                (2.0 * rng.next_double() - 1.0));
  }
  const double sum = std::accumulate(load.begin(), load.end(), 0.0);
  for (auto& v : load) v *= total_segments / sum;
  return load;
}

/// 3D grid graph over the domains (edge weight ~ interface area, i.e. the
/// 2/3 power of the neighboring loads).
partition::Graph domain_graph(const std::vector<double>& load) {
  const int n = static_cast<int>(load.size());
  const int nx = std::max(1, static_cast<int>(std::cbrt(double(n))));
  const int ny = nx;
  partition::Graph g(n);
  for (int d = 0; d < n; ++d) g.set_weight(d, load[d]);
  auto idx = [&](int i, int j, int k) { return i + nx * (j + ny * k); };
  const int nz = (n + nx * ny - 1) / (nx * ny);
  for (int k = 0; k < nz; ++k)
    for (int j = 0; j < ny; ++j)
      for (int i = 0; i < nx; ++i) {
        const int d = idx(i, j, k);
        if (d >= n) continue;
        for (int axis = 0; axis < 3; ++axis) {
          const int ni = i + (axis == 0);
          const int nj = j + (axis == 1);
          const int nk = k + (axis == 2);
          if (ni >= nx || nj >= ny) continue;
          const int nd = idx(ni, nj, nk);
          if (nd >= n) continue;
          g.add_edge(d, nd,
                     std::pow(0.5 * (load[d] + load[nd]), 2.0 / 3.0));
        }
      }
  return g;
}

/// L3 factor: per-track cost spectrum sampled once, mapped to CUs sorted
/// round-robin (balanced) or naturally blocked.
double l3_factor(const MachineSpec& m, const WorkloadSpec& w, bool l3) {
  Rng rng(w.seed ^ 0x5bd1e995u);
  // Track costs ~ segment counts: a broad right-skewed spectrum (corner
  // tracks are short, central tracks long).
  std::vector<double> costs(20000);
  for (auto& c : costs) {
    const double u = rng.next_double();
    c = 1.0 + 40.0 * u * u;  // quadratic ramp: heavy tail of long tracks
  }
  return partition::cu_uniformity(std::move(costs), m.cus_per_gpu, l3);
}

}  // namespace

ScalingPoint ScalingSimulator::evaluate(int num_gpus,
                                        const MappingConfig& mapping) const {
  const MachineSpec& m = machine_;
  const WorkloadSpec& w = workload_;
  require(num_gpus >= m.gpus_per_node, "need at least one full node");

  ScalingPoint pt;
  pt.gpus = num_gpus;
  const int nodes = num_gpus / m.gpus_per_node;
  const int domains =
      std::max(nodes, static_cast<int>(w.domains_per_node * nodes));

  pt.total_tracks = w.strong
                        ? w.tracks_per_gpu_base * w.base_gpus
                        : w.tracks_per_gpu_base * num_gpus;

  // Spatial decomposition adds boundary grids as domains shrink (§5.5).
  const int base_domains = std::max(
      1, static_cast<int>(w.domains_per_node * w.base_gpus /
                          m.gpus_per_node));
  const double growth =
      1.0 + w.grid_growth_per_doubling *
                std::log2(std::max(1.0, double(domains) / base_domains));
  const double total_segments =
      static_cast<double>(pt.total_tracks) * w.segments_per_track * growth;
  pt.directed_tracks = 2.0 * static_cast<double>(pt.total_tracks) * growth;

  // --- L1: domains -> nodes -------------------------------------------------
  const auto load = domain_loads(domains, w, total_segments);
  std::vector<int> node_of_domain;
  if (mapping.l1) {
    const auto graph = domain_graph(load);
    node_of_domain = partition::partition_kway(graph, nodes);
  } else {
    node_of_domain = partition::partition_blocks(domains, nodes);
  }

  // --- L2: fused node load -> GPUs -------------------------------------------
  std::vector<double> gpu_load(static_cast<std::size_t>(num_gpus), 0.0);
  if (mapping.l2) {
    // Fused geometry split by azimuthal angle: per-angle loads are nearly
    // symmetric, so the node's total divides almost evenly; the residual
    // angle-granularity error is 1/(2*num_azim_2) of a GPU share.
    Rng rng(w.seed ^ 0x9e3779b9u);
    for (int node = 0; node < nodes; ++node) {
      double node_load = 0.0;
      for (int d = 0; d < domains; ++d)
        if (node_of_domain[d] == node) node_load += load[d];
      std::vector<double> azim(w.num_azim_2);
      double sum = 0.0;
      for (auto& a : azim) {
        a = 1.0 + 0.10 * (2.0 * rng.next_double() - 1.0);
        sum += a;
      }
      std::vector<double> gpus(m.gpus_per_node, 0.0);
      // Heaviest angle onto the lightest GPU.
      std::sort(azim.begin(), azim.end(), std::greater<double>());
      for (double a : azim) {
        auto it = std::min_element(gpus.begin(), gpus.end());
        *it += node_load * a / sum;
      }
      for (int g = 0; g < m.gpus_per_node; ++g)
        gpu_load[static_cast<std::size_t>(node) * m.gpus_per_node + g] =
            gpus[g];
    }
  } else {
    // Baseline: each GPU takes a contiguous block of the node's domains
    // (coarse granularity — the dominant imbalance the paper measures).
    for (int node = 0; node < nodes; ++node) {
      std::vector<int> mine;
      for (int d = 0; d < domains; ++d)
        if (node_of_domain[d] == node) mine.push_back(d);
      const int per =
          (static_cast<int>(mine.size()) + m.gpus_per_node - 1) /
          std::max(1, m.gpus_per_node);
      for (std::size_t i = 0; i < mine.size(); ++i) {
        const int g = std::min(static_cast<int>(i) / std::max(1, per),
                               m.gpus_per_node - 1);
        gpu_load[static_cast<std::size_t>(node) * m.gpus_per_node + g] +=
            load[mine[i]];
      }
    }
  }

  const double total_gpu_load =
      std::accumulate(gpu_load.begin(), gpu_load.end(), 0.0);
  const double avg_gpu_load = total_gpu_load / num_gpus;
  const double max_gpu_load =
      *std::max_element(gpu_load.begin(), gpu_load.end());
  pt.gpu_load_uniformity = avg_gpu_load > 0 ? max_gpu_load / avg_gpu_load
                                            : 1.0;

  // --- residency: Manager budget vs per-GPU segment storage ------------------
  const double seg_bytes =
      max_gpu_load * static_cast<double>(sizeof(Segment3D));
  const double budget = static_cast<double>(m.gpu_memory_bytes) *
                        m.resident_budget_fraction;
  pt.resident_fraction = std::min(1.0, budget / std::max(seg_bytes, 1.0));
  const double cost_factor =
      pt.resident_fraction +
      (1.0 - pt.resident_fraction) * w.otf_cost_factor;

  // --- compute time ----------------------------------------------------------
  pt.cu_uniformity = l3_factor(m, w, mapping.l3);
  const double gpu_throughput =
      m.cus_per_gpu * m.gpu_clock_ghz * 1e9;  // cycles/s
  pt.compute_s = max_gpu_load * w.num_groups * m.cycles_per_segment_group *
                 cost_factor * pt.cu_uniformity / gpu_throughput;

  // --- communication (Eq. 7 over boundary-crossing tracks) -------------------
  // Crossing track ends per domain scale with the domain surface, i.e.
  // (tracks per domain)^(2/3); each carries 2 * G * 4 bytes.
  const double tracks_per_domain =
      static_cast<double>(pt.total_tracks) / domains;
  const double crossing_per_domain =
      w.crossing_coefficient * std::pow(tracks_per_domain, 2.0 / 3.0);
  const double bytes_per_node = crossing_per_domain * w.domains_per_node *
                                2.0 * w.num_groups * 4.0;
  const double raw_comm_s =
      bytes_per_node / m.link_bandwidth_bytes_per_s +
      m.link_latency_s * 6.0 * w.domains_per_node;

  // Overlapped exchange (DESIGN.md §8): a fraction of the raw transfer
  // time hides behind the interior sweep, bounded by the compute time —
  // communication can never hide more than the computation that covers it.
  const double eff =
      std::clamp(m.comm_overlap_efficiency, 0.0, 1.0);
  pt.comm_hidden_s = eff * std::min(raw_comm_s, pt.compute_s);
  pt.comm_s = raw_comm_s - pt.comm_hidden_s;

  pt.time_per_iteration_s = pt.compute_s + pt.comm_s;
  return pt;
}

std::vector<ScalingPoint> ScalingSimulator::sweep(
    const std::vector<int>& gpu_counts, const MappingConfig& mapping) const {
  std::vector<ScalingPoint> points;
  points.reserve(gpu_counts.size());
  for (int n : gpu_counts) points.push_back(evaluate(n, mapping));
  if (points.empty()) return points;
  const double t0 = points.front().time_per_iteration_s;
  const double n0 = points.front().gpus;
  for (auto& pt : points) {
    if (workload_.strong) {
      pt.speedup = t0 / pt.time_per_iteration_s;
      pt.efficiency = pt.speedup * n0 / pt.gpus;
    } else {
      pt.speedup = static_cast<double>(pt.gpus) / n0;
      pt.efficiency = t0 / pt.time_per_iteration_s;
    }
  }
  return points;
}

}  // namespace antmoc::cluster
