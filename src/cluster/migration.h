#pragma once

/// \file migration.h
/// Survivor-takeover support (DESIGN.md §11): domain routing, rebalance
/// policy knobs, and per-domain checkpoint-shard management for live
/// migration. When a rank dies mid-solve, the survivors agree on the dead
/// set, elect adopters deterministically (partition::elect_adopters),
/// rehydrate the orphaned domains from their shards, rewire the
/// face-neighbor exchange tables through the router, and resume — no full
/// restart. The same machinery, triggered by the MAX/AVG load-uniformity
/// gauge, migrates domains off stragglers voluntarily.

#include <cstdint>
#include <string>
#include <vector>

namespace antmoc::cluster {

/// `cluster.rebalance` knob: when does the migration machinery engage?
///  * off        — never (failures fall through to the restart ladder);
///  * on_failure — takeover on peer death only (the default);
///  * on_drift   — takeover on death *and* voluntary migration when the
///                 measured sweep-time MAX/AVG drifts past the threshold.
enum class RebalanceMode { kOff, kOnFailure, kOnDrift };

/// Parses "off" / "on_failure" / "on_drift"; throws on anything else.
RebalanceMode parse_rebalance(const std::string& text);

const char* rebalance_name(RebalanceMode mode);

/// Maps each spatial domain to the rank currently hosting it. Every rank
/// keeps an identical copy; takeover and voluntary migration update all
/// copies with the same deterministic assignment, so the tables never
/// diverge without communication.
class DomainRouter {
 public:
  DomainRouter() = default;
  /// Captures the initial layout (the decomposed driver starts with the
  /// identity host[d] = d, one domain per rank).
  explicit DomainRouter(std::vector<int> host) : host_(std::move(host)) {}

  int num_domains() const { return static_cast<int>(host_.size()); }
  int host(int domain) const { return host_[domain]; }
  void set_host(int domain, int rank) { host_[domain] = rank; }

  /// Domains hosted by `rank`, ascending.
  std::vector<int> domains_hosted_by(int rank) const;

  const std::vector<int>& table() const { return host_; }

 private:
  std::vector<int> host_;
};

/// Shard file name for one domain's checkpoint generation. Two
/// generations ("a"/"b") alternate so a death during a write never
/// destroys the only recoverable state: the previous generation's CRC-
/// framed file is still intact.
std::string shard_path(const std::string& dir, int domain, int slot);

/// Transfer file for one voluntary (drift-triggered) migration of a live
/// domain; distinct from the periodic shards so a migration never clobbers
/// a recovery line.
std::string migrate_shard_path(const std::string& dir, int domain);

/// One domain's contribution to the recovery line.
struct ShardLine {
  std::int64_t iteration = -1;          ///< newest common iteration
  std::vector<std::string> path;        ///< [domain] shard at that line
};

/// Reads just the iteration marker (first 8 payload bytes, by the
/// save_state contract) of a shard; returns -1 if the file is missing or
/// fails its CRC/framing checks.
std::int64_t read_shard_iteration(const std::string& path);

/// Scans `dir` for the newest iteration at which *every* domain in
/// [0, num_domains) has an intact shard — the recovery line. A takeover
/// resumes all domains from one line so the restored global state is the
/// state the failure-free solve had at that iteration. iteration = -1
/// when no common line exists (fall back to the restart ladder).
ShardLine scan_recovery_line(const std::string& dir, int num_domains);

}  // namespace antmoc::cluster
