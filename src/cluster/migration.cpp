#include "cluster/migration.h"

#include <cstring>

#include "io/writers.h"
#include "util/error.h"

namespace antmoc::cluster {

RebalanceMode parse_rebalance(const std::string& text) {
  if (text == "off") return RebalanceMode::kOff;
  if (text == "on_failure") return RebalanceMode::kOnFailure;
  if (text == "on_drift") return RebalanceMode::kOnDrift;
  fail<ConfigError>("cluster.rebalance must be off, on_failure, or "
                    "on_drift (got '" + text + "')");
}

const char* rebalance_name(RebalanceMode mode) {
  switch (mode) {
    case RebalanceMode::kOff: return "off";
    case RebalanceMode::kOnFailure: return "on_failure";
    case RebalanceMode::kOnDrift: return "on_drift";
  }
  return "?";
}

std::vector<int> DomainRouter::domains_hosted_by(int rank) const {
  std::vector<int> mine;
  for (int d = 0; d < num_domains(); ++d)
    if (host_[d] == rank) mine.push_back(d);
  return mine;
}

std::string shard_path(const std::string& dir, int domain, int slot) {
  return dir + "/shard-d" + std::to_string(domain) +
         (slot % 2 == 0 ? ".a" : ".b") + ".ckpt";
}

std::string migrate_shard_path(const std::string& dir, int domain) {
  return dir + "/migrate-d" + std::to_string(domain) + ".ckpt";
}

std::int64_t read_shard_iteration(const std::string& path) {
  std::vector<std::byte> payload;
  try {
    payload = io::read_checked_blob(path);
  } catch (const std::exception&) {
    return -1;  // missing, truncated, or corrupt — not a recovery point
  }
  if (payload.size() < sizeof(std::int64_t)) return -1;
  std::int64_t iteration = 0;
  std::memcpy(&iteration, payload.data(), sizeof(iteration));
  return iteration;
}

ShardLine scan_recovery_line(const std::string& dir, int num_domains) {
  ShardLine line;
  line.path.assign(num_domains, "");
  if (num_domains <= 0) return line;

  // Each domain has at most two intact generations. The recovery line is
  // the largest iteration available for *all* domains; since generations
  // alternate, that is min over domains of each domain's best iteration,
  // provided the older generation covers any laggards. Collect both
  // generations per domain and intersect.
  std::vector<std::vector<std::pair<std::int64_t, std::string>>> gens(
      num_domains);
  std::int64_t best_common = -1;
  for (int d = 0; d < num_domains; ++d) {
    for (int slot = 0; slot < 2; ++slot) {
      const std::string p = shard_path(dir, d, slot);
      const std::int64_t it = read_shard_iteration(p);
      if (it >= 0) gens[d].emplace_back(it, p);
    }
    if (gens[d].empty()) return line;  // no common line possible
  }
  // Candidate iterations come from domain 0's generations (the line must
  // be one of them); pick the largest present everywhere.
  for (const auto& [it, p] : gens[0]) {
    if (it <= best_common) continue;
    bool everywhere = true;
    for (int d = 1; d < num_domains && everywhere; ++d) {
      bool found = false;
      for (const auto& [it2, p2] : gens[d]) found = found || it2 == it;
      everywhere = found;
    }
    if (everywhere) best_common = it;
  }
  if (best_common < 0) return line;
  line.iteration = best_common;
  for (int d = 0; d < num_domains; ++d)
    for (const auto& [it, p] : gens[d])
      if (it == best_common) line.path[d] = p;
  return line;
}

}  // namespace antmoc::cluster
