#pragma once

/// \file scaling.h
/// Trace-driven cluster simulator for the paper's scalability study
/// (§5.5, Figs. 11-12). In-process transport runs cannot span 16,000
/// GPUs, so the full machine is modeled analytically from the same
/// ingredients the real runs depend on:
///
///  * per-segment sweep cost and the OTF/Manager cost factor (§4.1,
///    matching solver/track_policy.h constants via perfmodel);
///  * the heterogeneous per-domain load spectrum of a C5G7-style core
///    (fuel vs. reflector domains) and the 10-domains-per-node rule;
///  * the three mapping levels, reusing partition/ (the actual L1 graph
///    partitioner and L2/L3 mapping code paths);
///  * residency: per-GPU segment storage against the Manager budget
///    (6.144 GB of a 16 GB MI60) — the cause of the paper's superlinear
///    strong-scaling bump once everything fits (>= 8000 GPUs);
///  * an HDR-InfiniBand-like link model (200 Gb/s, per-message latency)
///    fed by the Eq. 7 communication volume of boundary-crossing tracks.

#include <cstdint>
#include <vector>

#include "gpusim/device_spec.h"

namespace antmoc::cluster {

struct MachineSpec {
  int gpus_per_node = 4;
  int cus_per_gpu = 64;
  double gpu_clock_ghz = 1.8;
  std::uint64_t gpu_memory_bytes = std::uint64_t{16} << 30;
  /// Manager resident-track budget as a fraction of device memory
  /// (6.144 GB / 16 GB in the paper's setup).
  double resident_budget_fraction = 0.384;
  double link_bandwidth_bytes_per_s = 25.0e9;  ///< 200 Gb/s HDR
  double link_latency_s = 1.5e-6;
  /// Fraction of the raw exchange time hidden behind the interior sweep by
  /// the overlapped exchange (DESIGN.md §8), clamped to [0, 1]. The hidden
  /// share is additionally bounded by the compute time. 0 = the fully
  /// synchronous model (backward compatible).
  double comm_overlap_efficiency = 0.0;
  /// Device cycles to sweep one stored segment for one energy group.
  double cycles_per_segment_group = 1.0;
};

struct WorkloadSpec {
  /// Tracks per GPU at the baseline GPU count (paper: 54,581,544 strong,
  /// 5,124,596 weak).
  long tracks_per_gpu_base = 54581544;
  int base_gpus = 1000;
  bool strong = true;  ///< strong scaling (fixed problem) vs weak
  int num_groups = 7;
  /// Eq. 4 ratio: 3D segments per 3D track. The paper's own numbers
  /// bracket this (132.6 TB of segments over 100 B tracks implies ~80;
  /// "trillion segments" implies ~10); 45 places the strong-scaling
  /// residency knee at 8000 GPUs exactly as §5.5 describes.
  double segments_per_track = 45.0;
  /// Sub-geometries per node (paper §4.2.1: "usually about tenfold").
  double domains_per_node = 10.0;
  int num_azim_2 = 32;  ///< scalar azimuthal angles for the L2 split

  // C5G7 heterogeneity: a fraction of domains fall in reflector regions
  // and carry a fraction of the fuel-domain load; the rest jitters.
  // The contrast is scale-dependent: with few domains each cuboid spans
  // fuel *and* reflector and loads average out; as the decomposition
  // refines, domains become purely one or the other and the spread grows.
  // Full contrast is reached at `heterogeneity_scale_domains`.
  double reflector_fraction = 0.40;
  double reflector_load_ratio = 0.40;
  double load_noise = 0.20;
  double heterogeneity_scale_domains = 40000.0;

  /// Weak-scaling grid growth: extra segments per doubling of the domain
  /// count (the paper's "additional grids ... increase computational
  /// complexity").
  double grid_growth_per_doubling = 0.02;

  /// Effective slowdown of sweeping a temporary (OTF) segment relative to
  /// a resident one at cluster scale. The raw kernel ratio is 6x
  /// (track_policy.h), but regeneration overlaps with memory-bound sweep
  /// phases on real hardware; 1.15 is calibrated so the strong-scaling
  /// residency bump matches the modest effect in the paper's Fig. 11.
  double otf_cost_factor = 1.15;

  /// Boundary-crossing track ends per domain = chi * (tracks/domain)^(2/3).
  double crossing_coefficient = 34.0;

  std::uint64_t seed = 42;
};

struct MappingConfig {
  bool l1 = true;
  bool l2 = true;
  bool l3 = true;

  static MappingConfig none() { return {false, false, false}; }
  static MappingConfig all() { return {true, true, true}; }
};

struct ScalingPoint {
  int gpus = 0;
  double time_per_iteration_s = 0.0;
  double compute_s = 0.0;
  /// Exposed (unhidden) communication time per iteration.
  double comm_s = 0.0;
  /// Communication time hidden behind the interior sweep
  /// (comm_overlap_efficiency; 0 in the synchronous model).
  double comm_hidden_s = 0.0;
  double gpu_load_uniformity = 1.0;  ///< MAX/AVG across GPUs
  double cu_uniformity = 1.0;        ///< within-GPU L3 factor
  double resident_fraction = 1.0;
  long total_tracks = 0;
  /// Tracks in the paper's counting currency: both sweep directions, and
  /// including the decomposition grid growth (the paper's "100 billion
  /// tracks" strong case is 2 x 54.58M x 1000; its weak 174.66B is
  /// 2 x 5.12M x 16000 x growth).
  double directed_tracks = 0.0;
  /// Filled by sweep(): parallel efficiency relative to the first point.
  double efficiency = 1.0;
  double speedup = 1.0;
};

class ScalingSimulator {
 public:
  ScalingSimulator(MachineSpec machine, WorkloadSpec workload)
      : machine_(machine), workload_(workload) {}

  /// Models one configuration at `num_gpus` (deterministic for a seed).
  ScalingPoint evaluate(int num_gpus, const MappingConfig& mapping) const;

  /// Evaluates all counts and fills efficiency/speedup relative to the
  /// first entry (strong: E = T0*N0/(T*N); weak: E = T0/T).
  std::vector<ScalingPoint> sweep(const std::vector<int>& gpu_counts,
                                  const MappingConfig& mapping) const;

 private:
  MachineSpec machine_;
  WorkloadSpec workload_;
};

}  // namespace antmoc::cluster
