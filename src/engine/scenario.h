#pragma once

/// \file scenario.h
/// Scenario jobs for the engine (DESIGN.md §12): a scenario is a named
/// recipe of cross-section edits applied to a session's base material set
/// — XS perturbations, control-rod swaps, temperature branches — plus an
/// optional chain of depletion-style steps that progressively deplete the
/// fission cross sections. Scenarios never touch geometry or tracks, which
/// is exactly why one session can serve many of them from shared caches.

#include <string>
#include <vector>

#include "material/material.h"

namespace antmoc {
namespace engine {

/// One cross-section edit. Ops apply in file order; each op touches one
/// material (or all of them) and one group (or all groups).
struct MaterialOp {
  enum class Kind {
    kScale,        ///< multiply one XS family by `factor`
    kSwap,         ///< replace material `material` with a copy of `source`
    kTemperature,  ///< Doppler-style Σt broadening of fissile materials
  };
  enum class Xs { kTotal, kFission, kNuFission, kScatter, kChi };

  Kind kind = Kind::kScale;
  Xs xs = Xs::kTotal;
  int material = -1;  ///< target material id; -1 = every material
  int group = -1;     ///< energy group; -1 = every group
  double factor = 1.0;
  int source = -1;    ///< kSwap: material id copied over the target
  double delta_t = 0.0;  ///< kTemperature: temperature change in kelvin
};

/// A named job: the ops, and how many chained steps to run. With
/// `steps > 1` the job re-solves after scaling the fission production of
/// every fissile material by `burn` each step — a cheap stand-in for a
/// depletion chain that exercises the engine's step-loop plumbing.
struct Scenario {
  std::string name;
  std::vector<MaterialOp> ops;
  int steps = 1;
  double burn = 1.0;  ///< per-step multiplier on Σf and νΣf
};

/// Applies `scenario` to a copy of `base` for chained step `step`
/// (0-based): runs every op, then scales Σf/νΣf of fissile materials by
/// burn^step. Every touched material is re-validated; physically invalid
/// edits throw antmoc::Error (the engine turns that into a failed job,
/// never a poisoned session). Pure function of its inputs.
std::vector<Material> apply_scenario(const std::vector<Material>& base,
                                     const Scenario& scenario, int step = 0);

/// Parses the line-oriented scenario file format (README "Scenario
/// files"):
///
///     # comment
///     scenario <name> [steps=N] [burn=F]
///       scale material=<id|all> xs=<total|fission|nu_fission|scatter|chi>
///             [group=<g|all>] factor=<F>
///       swap material=<id> source=<id>
///       temp dT=<kelvin> [material=<id|all>]
///
/// Throws ConfigError on malformed input (unknown directive or key,
/// op before any `scenario` header, missing required key).
std::vector<Scenario> parse_scenarios(const std::string& text);

/// parse_scenarios() over the contents of `path`; throws ConfigError if
/// the file cannot be read.
std::vector<Scenario> load_scenarios(const std::string& path);

}  // namespace engine
}  // namespace antmoc
