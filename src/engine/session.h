#pragma once

/// \file session.h
/// The scenario engine (DESIGN.md §12): solver-as-a-service over one
/// geometry. A Session performs every scenario-independent setup exactly
/// once — 2D tracing, 3D stack laydown, chord templates, the decoded
/// track-info cache, link tables, FSR volumes, the exponential table, and
/// per-device track management with its arena charges — then serves many
/// Scenario jobs concurrently from that warm state. Each job gets a
/// private GpuSolver (its own flux buffers and FSR data) that borrows the
/// session's shared caches read-only, so jobs never see each other's
/// physics and a crashed job never poisons the session.
///
/// Scheduling: jobs queue FIFO; a pool of `max_concurrent` workers admits
/// a job onto the least-loaded device whose arena headroom (minus
/// reservations already promised to running jobs) covers the job's private
/// footprint. When nothing fits, the job stays queued — admission control
/// degrades throughput, never correctness.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cmfd/cmfd.h"
#include "engine/scenario.h"
#include "gpusim/device.h"
#include "models/c5g7_model.h"
#include "solver/exponential.h"
#include "solver/gpu_solver.h"
#include "track/generator2d.h"
#include "track/track3d.h"

namespace antmoc {
namespace engine {

struct SessionOptions {
  /// Device pool: `num_devices` simulated GPUs of spec `device`.
  int num_devices = 1;
  gpusim::DeviceSpec device;

  /// Track laydown (same knobs as the benches).
  int num_azim = 4;
  double azim_spacing = 0.3;
  int num_polar = 2;
  double z_spacing = 0.75;

  /// Per-job solver configuration. `gpu.shared` is managed by the session
  /// (any caller-set value is ignored).
  GpuSolverOptions gpu;
  SolveOptions solve;

  /// Shared exponential-table evaluator (one table serves all jobs).
  bool use_exp_table = true;
  double exp_max_tau = 40.0;
  double exp_tolerance = 1e-6;

  /// Host sweep workers per job solver (fixed => bit-reproducible).
  unsigned sweep_workers = 1;

  /// CMFD acceleration (`cmfd.*`) for every job solver. The coarse-mesh
  /// overlay and crossing plan are scenario-independent (geometry +
  /// tracks only), so the session builds them once at warm-up and every
  /// job borrows them; the per-job CMFD state (tally buffers, coarse
  /// solve) is private. A warm accelerated job stays bitwise identical to
  /// solve_one_shot with the same options.
  cmfd::CmfdOptions cmfd;

  /// Concurrent job executors; 0 = one per device.
  int max_concurrent = 0;
};

/// Everything a finished job reports. `step_k` has one entry per chained
/// step; the flux tallies describe the final step.
struct JobResult {
  long job = -1;
  std::string scenario;
  bool ok = false;
  std::string error;

  double k_eff = 0.0;
  int iterations = 0;
  bool converged = false;
  double residual = 0.0;
  std::vector<double> step_k;
  /// Volume-integrated scalar flux per energy group (final step).
  std::vector<double> group_flux;

  double solve_seconds = 0.0;  ///< execution wall time (all steps)
  double queue_seconds = 0.0;  ///< submit -> execution start
  int device = -1;             ///< device the job ran on
};

/// Scheduler counters (monotonic since construction).
struct SessionStats {
  long submitted = 0;
  long completed = 0;
  long failed = 0;
  /// Admission passes that found no device with enough headroom.
  long deferrals = 0;
  int peak_concurrent = 0;
};

class Session {
 public:
  /// Builds the shared state and starts the worker pool. Throws if even an
  /// idle device cannot hold the shared state plus one job's private
  /// footprint.
  Session(models::C5G7Model model, const SessionOptions& options);

  /// Drains the queue: remaining queued jobs fail with "session shutdown";
  /// running jobs finish first.
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Enqueues one job; the future resolves when it completes (ok or not —
  /// job failures are reported in JobResult::error, never thrown).
  std::future<JobResult> submit(Scenario scenario);

  /// Submits every scenario and waits; results come back in input order.
  std::vector<JobResult> run(const std::vector<Scenario>& scenarios);

  /// Cold reference: solves `scenario` from scratch — fresh tracing,
  /// caches, device, and solver per the session's options, sharing
  /// nothing. The engine's acceptance bar: a warm job must be bitwise
  /// identical to this, and much faster.
  JobResult solve_one_shot(const Scenario& scenario) const;

  SessionStats stats() const;

  // --- sizing introspection (tests and the admission gate bench) ----------
  int num_devices() const { return static_cast<int>(slots_.size()); }
  /// Arena bytes one job charges on admission (flux buffers + FSR data +
  /// reserve for the optional privatized buffers).
  std::size_t job_floor_bytes() const { return job_floor_; }
  /// Free arena bytes of `device` right now, not counting reservations.
  std::size_t idle_headroom(int device) const;

  const TrackStacks& stacks() const { return stacks_; }
  const models::C5G7Model& model() const { return model_; }

 private:
  struct DeviceSlot {
    gpusim::Device device;
    std::unique_ptr<TrackManager> manager;
    std::vector<long> order;
    std::vector<gpusim::ScopedCharge> charges;
    SharedDeviceState shared;
    /// gpusim::ThreadPool::run is not reentrant, so concurrent jobs on one
    /// device serialize their kernel launches here (they still interleave
    /// host-side closure work).
    std::mutex launch_mu;
    int active = 0;             ///< jobs currently running here
    std::size_t reserved = 0;   ///< bytes promised to running jobs

    explicit DeviceSlot(const gpusim::DeviceSpec& spec) : device(spec) {}
  };

  struct PendingJob {
    long id = 0;
    int attempts = 0;
    Scenario scenario;
    std::promise<JobResult> promise;
    std::chrono::steady_clock::time_point submitted;
  };

  void warm_up_device(DeviceSlot& slot);
  void worker_loop();
  /// Least-active device whose unreserved headroom covers a job floor;
  /// -1 when none. Caller holds mu_.
  int pick_device() const;
  /// Runs one job on `slot` (no scheduler lock held). Fills everything but
  /// the queue/bookkeeping fields of the result.
  JobResult execute(const PendingJob& job, DeviceSlot& slot);
  /// One scenario step chain on one device; appends to `result`.
  void run_scenario(const Scenario& scenario, DeviceSlot& slot,
                    JobResult& result) const;

  // Declaration order is construction order: quad/gen/stacks chain like
  // bench::Problem, then the shared caches they feed.
  models::C5G7Model model_;
  SessionOptions opts_;
  Quadrature quad_;
  TrackGenerator2D gen_;
  TrackStacks stacks_;
  std::unique_ptr<ExpTable> exp_table_;       ///< null = exact evaluator
  std::unique_ptr<ChordTemplateCache> templates_;  ///< null under kOff
  TrackInfoCache info_cache_;
  /// Flat event arrays shared by every job when gpu.backend = event
  /// (built once; charged per device under "event_arrays" with the same
  /// OOM-falls-back-to-history semantics as a one-shot solver).
  std::unique_ptr<EventArrays> events_;
  /// Session-shared CMFD geometry state (mesh + crossing plan), built at
  /// warm-up when cmfd.enable; null otherwise.
  std::unique_ptr<cmfd::CmfdContext> cmfd_ctx_;
  std::vector<double> volumes_;  ///< track-based FSR volumes, shared
  std::vector<Link3D> links_;    ///< per-(track, direction) link table
  std::size_t job_floor_ = 0;

  std::vector<std::unique_ptr<DeviceSlot>> slots_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<PendingJob> queue_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
  long next_job_id_ = 0;
  SessionStats stats_;
};

}  // namespace engine
}  // namespace antmoc
