#include "engine/scenario.h"

#include <cmath>
#include <fstream>
#include <sstream>

#include "util/error.h"

namespace antmoc {
namespace engine {
namespace {

/// Fractional Σt increase per kelvin for fissile materials — a crude
/// Doppler-broadening surrogate: resonance absorption grows with fuel
/// temperature, leakage and k drop.
constexpr double kDopplerPerKelvin = 2.0e-5;

std::vector<double> gather(const Material& m, MaterialOp::Xs xs) {
  const int G = m.num_groups();
  std::vector<double> v;
  switch (xs) {
    case MaterialOp::Xs::kScatter:
      v.resize(static_cast<std::size_t>(G) * G);
      for (int g = 0; g < G; ++g)
        for (int gp = 0; gp < G; ++gp) v[g * G + gp] = m.sigma_s(g, gp);
      return v;
    case MaterialOp::Xs::kTotal:
    case MaterialOp::Xs::kFission:
    case MaterialOp::Xs::kNuFission:
    case MaterialOp::Xs::kChi:
      v.resize(G);
      for (int g = 0; g < G; ++g) {
        switch (xs) {
          case MaterialOp::Xs::kTotal: v[g] = m.sigma_t(g); break;
          case MaterialOp::Xs::kFission: v[g] = m.sigma_f(g); break;
          case MaterialOp::Xs::kNuFission: v[g] = m.nu_sigma_f(g); break;
          default: v[g] = m.chi(g); break;
        }
      }
      return v;
  }
  return v;
}

void store(Material& m, MaterialOp::Xs xs, std::vector<double> v) {
  switch (xs) {
    case MaterialOp::Xs::kTotal: m.set_sigma_t(std::move(v)); break;
    case MaterialOp::Xs::kFission: m.set_sigma_f(std::move(v)); break;
    case MaterialOp::Xs::kNuFission: m.set_nu_sigma_f(std::move(v)); break;
    case MaterialOp::Xs::kChi: m.set_chi(std::move(v)); break;
    case MaterialOp::Xs::kScatter: m.set_sigma_s(std::move(v)); break;
  }
}

void scale_xs(Material& m, MaterialOp::Xs xs, int group, double factor) {
  std::vector<double> v = gather(m, xs);
  if (group < 0) {
    for (double& x : v) x *= factor;
  } else {
    const int G = m.num_groups();
    require(group < G, "scenario op group out of range");
    if (xs == MaterialOp::Xs::kScatter) {
      // group = source group: scale the whole outgoing row.
      for (int gp = 0; gp < G; ++gp) v[group * G + gp] *= factor;
    } else {
      v[group] *= factor;
    }
  }
  store(m, xs, std::move(v));
}

void apply_op(std::vector<Material>& mats, const MaterialOp& op,
              std::vector<char>& touched) {
  const int n = static_cast<int>(mats.size());
  switch (op.kind) {
    case MaterialOp::Kind::kSwap: {
      require(op.material >= 0 && op.material < n,
              "swap target material id out of range");
      require(op.source >= 0 && op.source < n,
              "swap source material id out of range");
      mats[op.material] = mats[op.source];
      touched[op.material] = 1;
      return;
    }
    case MaterialOp::Kind::kScale: {
      require(op.material < n, "scale material id out of range");
      for (int id = 0; id < n; ++id) {
        if (op.material >= 0 && id != op.material) continue;
        scale_xs(mats[id], op.xs, op.group, op.factor);
        touched[id] = 1;
      }
      return;
    }
    case MaterialOp::Kind::kTemperature: {
      require(op.material < n, "temp material id out of range");
      const double factor = 1.0 + kDopplerPerKelvin * op.delta_t;
      require(factor > 0.0, "temperature drop would negate Σt");
      for (int id = 0; id < n; ++id) {
        if (op.material >= 0 && id != op.material) continue;
        if (!mats[id].is_fissile()) continue;
        scale_xs(mats[id], MaterialOp::Xs::kTotal, -1, factor);
        touched[id] = 1;
      }
      return;
    }
  }
}

/// Splits "key=value"; throws ConfigError on missing '='.
std::pair<std::string, std::string> split_kv(const std::string& tok,
                                             const std::string& line) {
  const auto eq = tok.find('=');
  if (eq == std::string::npos)
    fail<ConfigError>("scenario file: expected key=value, got '" + tok +
                      "' in line: " + line);
  return {tok.substr(0, eq), tok.substr(eq + 1)};
}

int parse_id_or_all(const std::string& v, const std::string& line) {
  if (v == "all") return -1;
  try {
    return std::stoi(v);
  } catch (const std::exception&) {
    fail<ConfigError>("scenario file: bad id '" + v + "' in line: " + line);
  }
}

double parse_number(const std::string& v, const std::string& line) {
  try {
    return std::stod(v);
  } catch (const std::exception&) {
    fail<ConfigError>("scenario file: bad number '" + v +
                      "' in line: " + line);
  }
}

MaterialOp::Xs parse_xs(const std::string& v, const std::string& line) {
  if (v == "total") return MaterialOp::Xs::kTotal;
  if (v == "fission") return MaterialOp::Xs::kFission;
  if (v == "nu_fission") return MaterialOp::Xs::kNuFission;
  if (v == "scatter") return MaterialOp::Xs::kScatter;
  if (v == "chi") return MaterialOp::Xs::kChi;
  fail<ConfigError>("scenario file: unknown xs '" + v + "' in line: " + line);
}

}  // namespace

std::vector<Material> apply_scenario(const std::vector<Material>& base,
                                     const Scenario& scenario, int step) {
  std::vector<Material> mats = base;
  std::vector<char> touched(mats.size(), 0);
  for (const MaterialOp& op : scenario.ops) apply_op(mats, op, touched);

  if (step > 0 && scenario.burn != 1.0) {
    const double factor = std::pow(scenario.burn, step);
    require(factor > 0.0, "burn factor must stay positive");
    for (std::size_t id = 0; id < mats.size(); ++id) {
      if (!mats[id].is_fissile()) continue;
      scale_xs(mats[id], MaterialOp::Xs::kFission, -1, factor);
      scale_xs(mats[id], MaterialOp::Xs::kNuFission, -1, factor);
      touched[id] = 1;
    }
  }

  // Validate every edited material so a bad recipe fails loudly here
  // (inside the job) rather than as a non-physical solve.
  for (std::size_t id = 0; id < mats.size(); ++id)
    if (touched[id]) mats[id].validate();
  return mats;
}

std::vector<Scenario> parse_scenarios(const std::string& text) {
  std::vector<Scenario> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream toks(line);
    std::string head;
    if (!(toks >> head)) continue;  // blank line

    if (head == "scenario") {
      Scenario s;
      if (!(toks >> s.name))
        fail<ConfigError>("scenario file: header needs a name: " + line);
      std::string tok;
      while (toks >> tok) {
        const auto [k, v] = split_kv(tok, line);
        if (k == "steps")
          s.steps = parse_id_or_all(v, line);
        else if (k == "burn")
          s.burn = parse_number(v, line);
        else
          fail<ConfigError>("scenario file: unknown header key '" + k +
                            "' in line: " + line);
      }
      if (s.steps < 1)
        fail<ConfigError>("scenario file: steps must be >= 1: " + line);
      out.push_back(std::move(s));
      continue;
    }

    if (out.empty())
      fail<ConfigError>("scenario file: op before any 'scenario' header: " +
                        line);
    MaterialOp op;
    bool has_factor = false, has_source = false, has_dt = false;
    if (head == "scale")
      op.kind = MaterialOp::Kind::kScale;
    else if (head == "swap")
      op.kind = MaterialOp::Kind::kSwap;
    else if (head == "temp")
      op.kind = MaterialOp::Kind::kTemperature;
    else
      fail<ConfigError>("scenario file: unknown directive '" + head +
                        "' in line: " + line);
    std::string tok;
    while (toks >> tok) {
      const auto [k, v] = split_kv(tok, line);
      if (k == "material")
        op.material = parse_id_or_all(v, line);
      else if (k == "xs")
        op.xs = parse_xs(v, line);
      else if (k == "group")
        op.group = parse_id_or_all(v, line);
      else if (k == "factor") {
        op.factor = parse_number(v, line);
        has_factor = true;
      } else if (k == "source") {
        op.source = parse_id_or_all(v, line);
        has_source = true;
      } else if (k == "dT") {
        op.delta_t = parse_number(v, line);
        has_dt = true;
      } else
        fail<ConfigError>("scenario file: unknown op key '" + k +
                          "' in line: " + line);
    }
    if (op.kind == MaterialOp::Kind::kScale && !has_factor)
      fail<ConfigError>("scenario file: scale needs factor=: " + line);
    if (op.kind == MaterialOp::Kind::kSwap &&
        (!has_source || op.material < 0))
      fail<ConfigError>("scenario file: swap needs material= and source=: " +
                        line);
    if (op.kind == MaterialOp::Kind::kTemperature && !has_dt)
      fail<ConfigError>("scenario file: temp needs dT=: " + line);
    out.back().ops.push_back(op);
  }
  return out;
}

std::vector<Scenario> load_scenarios(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail<ConfigError>("cannot read scenario file: " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return parse_scenarios(text.str());
}

}  // namespace engine
}  // namespace antmoc
