#include "engine/session.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <numeric>
#include <utility>

#include "fault/fault.h"
#include "perfmodel/layout.h"
#include "solver/cpu_solver.h"
#include "telemetry/telemetry.h"
#include "util/error.h"
#include "util/timer.h"

namespace antmoc {
namespace engine {
namespace {

/// Modeled per-item kernel costs for the warm-up accounting launches —
/// the same constants the one-shot GpuSolver charges for its setup, so a
/// session's per-device kernel breakdown matches N one-shot solves minus
/// the repetition.
constexpr double kTrackGenCost = 2.0;
constexpr double kTraceCostPerSegment = 5.0;

/// Retries before a job that keeps hitting transient arena OOM (another
/// job's optional buffers racing it to the headroom) is failed for good.
constexpr int kMaxAttempts = 3;

std::array<LinkKind, 4> radial_kinds(const Geometry& g) {
  return {to_link_kind(g.boundary(Face::kXMin)),
          to_link_kind(g.boundary(Face::kXMax)),
          to_link_kind(g.boundary(Face::kYMin)),
          to_link_kind(g.boundary(Face::kYMax))};
}

/// The exact iteration loop of TransportSolver::solve(), with the sweep
/// launch serialized on the per-device mutex (gpusim's thread pool is not
/// reentrant). exchange() is omitted: it is a no-op for non-decomposed
/// solvers, so results are unchanged. Any drift between this loop and
/// solve() breaks the engine's bitwise-identity guarantee — the engine
/// test compares the two end to end.
SolveResult stepwise_solve(TransportSolver& solver, std::mutex& launch_mu,
                           const SolveOptions& options) {
  solver.prepare_solve(options);
  SolveResult result;
  const int max_iter = options.fixed_iterations > 0
                           ? options.fixed_iterations
                           : options.max_iterations;
  for (int iter = 1; iter <= max_iter; ++iter) {
    telemetry::TraceSpan iter_span("solver/iteration", "solver", -1, -1,
                                   "iteration", iter);
    fault::point("solver.iteration");
    {
      std::lock_guard<std::mutex> lk(launch_mu);
      solver.sweep_step();
    }
    const TransportSolver::IterationStats stats =
        solver.close_step(iter, options);
    result.residual = stats.residual;
    result.iterations = iter;
    result.k_eff = stats.k_eff;
    if (options.fixed_iterations <= 0 && iter >= 3 &&
        result.residual < options.tolerance &&
        std::abs(stats.production - 1.0) < options.tolerance) {
      result.converged = true;
      break;
    }
  }
  if (options.fixed_iterations > 0) result.converged = true;
  return result;
}

/// Volume-integrated scalar flux per group — the per-job tally shipped in
/// JobResult (serial, deterministic accumulation order).
std::vector<double> integrate_group_flux(const FsrData& fsr) {
  const int G = fsr.num_groups();
  std::vector<double> out(G, 0.0);
  const auto& flux = fsr.scalar_flux();
  const auto& vol = fsr.volumes();
  for (long r = 0; r < fsr.num_fsrs(); ++r)
    for (int g = 0; g < G; ++g) out[g] += vol[r] * flux[r * G + g];
  return out;
}

}  // namespace

Session::Session(models::C5G7Model model, const SessionOptions& options)
    : model_(std::move(model)),
      opts_(options),
      quad_(opts_.num_azim, opts_.azim_spacing,
            model_.geometry.bounds().width_x(),
            model_.geometry.bounds().width_y(), opts_.num_polar),
      gen_(quad_, model_.geometry.bounds(), radial_kinds(model_.geometry)),
      stacks_((gen_.trace(model_.geometry), gen_), model_.geometry,
              model_.geometry.bounds().z_min, model_.geometry.bounds().z_max,
              opts_.z_spacing),
      exp_table_(opts_.use_exp_table
                     ? std::make_unique<ExpTable>(opts_.exp_max_tau,
                                                  opts_.exp_tolerance)
                     : nullptr),
      templates_(opts_.gpu.policy != TrackPolicy::kExplicit &&
                         opts_.gpu.templates != TemplateMode::kOff &&
                         opts_.gpu.storage != TrackStorage::kCompact
                     ? std::make_unique<ChordTemplateCache>(stacks_)
                     : nullptr),
      info_cache_(stacks_) {
  opts_.gpu.shared = nullptr;  // managed per slot, never caller-provided
  if (opts_.max_concurrent <= 0) opts_.max_concurrent = opts_.num_devices;
  require(opts_.num_devices >= 1, "session needs at least one device");
  require_compact_storage_compatible(opts_.gpu.storage, opts_.gpu.templates);

  // Warm-up probe: one host-side prepare computes the link table and
  // track-based FSR volumes every job reuses. Template mode off — the
  // session's shared ChordTemplateCache is already built (or disabled).
  // History backend regardless of the knob: the probe only prepares.
  {
    CpuSolver probe(stacks_, model_.materials, opts_.sweep_workers,
                    TemplateMode::kOff, SweepBackend::kHistory);
    probe.set_shared_caches(&info_cache_, templates_.get());
    probe.prepare_solve({});
    volumes_ = probe.fsr().volumes();
    links_ = probe.links();

    // Private arena bytes one admitted job is guaranteed to charge: the
    // boundary flux double-buffer, the FSR vectors, and (when privatize
    // is on) the per-CU tally scratch + staging buffer. Reserving the
    // full floor at admission makes mid-job OOM impossible in steady
    // state — transient OOM can only come from one-shot solvers sharing
    // the device, which the engine never does.
    const long n = stacks_.num_tracks();
    const int G = probe.fsr().num_groups();
    const long fsrs = probe.fsr().num_fsrs();
    job_floor_ = static_cast<std::size_t>(n) * 2 * G * sizeof(float) * 2 +
                 static_cast<std::size_t>(fsrs) * G * 4 * sizeof(double);
    if (opts_.gpu.privatize != PrivatizeMode::kOff) {
      job_floor_ +=
          static_cast<std::size_t>(opts_.device.num_cus) * fsrs * G *
              sizeof(double) +
          static_cast<std::size_t>(n) * 2 * G * sizeof(double);
    }

  }

  if (opts_.cmfd.enable) {
    // Scenario-independent CMFD geometry, shared read-only by every job
    // (material swaps never change the FSR->cell map or the crossings).
    cmfd_ctx_ = std::make_unique<cmfd::CmfdContext>(
        model_.geometry, opts_.cmfd.mesh, stacks_,
        to_link_kind(model_.geometry.boundary(Face::kZMin)),
        to_link_kind(model_.geometry.boundary(Face::kZMax)));
  }

  slots_.reserve(opts_.num_devices);
  for (int d = 0; d < opts_.num_devices; ++d) {
    slots_.push_back(std::make_unique<DeviceSlot>(opts_.device));
    warm_up_device(*slots_.back());
    require(idle_headroom(d) >= job_floor_,
            "device too small for the session's shared state plus one job");
  }

  workers_.reserve(opts_.max_concurrent);
  for (int w = 0; w < opts_.max_concurrent; ++w)
    workers_.emplace_back([this] { worker_loop(); });
}

void Session::warm_up_device(DeviceSlot& slot) {
  // Same construction order — and the same arena labels — as a one-shot
  // GpuSolver, so memory().breakdown() stays comparable: 3d_segments
  // (manager ctor), 2d/3d track tables, then the optional hot-path caches.
  slot.manager = std::make_unique<TrackManager>(
      stacks_, opts_.gpu.policy, &slot.device, opts_.gpu.resident_budget_bytes,
      templates_.get(), opts_.gpu.storage);

  auto& arena = slot.device.memory();
  slot.charges.emplace_back(arena, "2d_tracks",
                            gen_.num_tracks() * perf::kTrack2DBytes);
  slot.charges.emplace_back(arena, "2d_segments",
                            gen_.num_segments() * perf::kSegment2DBytes);
  slot.charges.emplace_back(arena, "3d_tracks",
                            stacks_.num_tracks() * perf::kTrack3DBytes);

  slot.shared.manager = slot.manager.get();
  try {
    slot.charges.emplace_back(arena, "track_info_cache",
                              TrackInfoCache::bytes_for(stacks_.num_tracks()));
    slot.shared.info_cache = &info_cache_;
  } catch (const DeviceOutOfMemory&) {
    slot.shared.info_cache = nullptr;  // jobs decode per item, like the seed
  }
  if (slot.manager->templates() != nullptr) {
    try {
      slot.charges.emplace_back(arena, "chord_templates",
                                slot.manager->templates()->bytes());
    } catch (const DeviceOutOfMemory&) {
      if (opts_.gpu.templates == TemplateMode::kForce) throw;
      // Last warm-up mutation: after this the manager is read-only for
      // the session's whole lifetime, which is what makes sharing it
      // across concurrent jobs sound.
      slot.manager->set_templates_active(false);
    }
  }
  if (opts_.gpu.backend == SweepBackend::kEvent) {
    // Flatten once, on the first device's manager, and share across every
    // device and job: the arrays are immutable and scenario-independent
    // (material swaps change cross sections, never segment geometry), and
    // every slot's manager is constructed identically — same policy,
    // budget, and track order — so the residency split, and with it the
    // per-track (fsr, length) streams, are the same on every device.
    if (events_ == nullptr) {
      telemetry::TraceSpan span("solver/event_build", "engine");
      events_ = std::make_unique<EventArrays>(
          stacks_, info_cache_, templates_.get(),
          model_.materials.front().num_groups(), nullptr,
          slot.manager.get(), opts_.gpu.storage);
      span.set_arg("events", events_->num_events());
    }
    try {
      slot.charges.emplace_back(arena, "event_arrays", events_->bytes());
      slot.shared.events = events_.get();
    } catch (const DeviceOutOfMemory&) {
      // Same silent fallback a one-shot solver applies: this device's
      // jobs sweep history-based (bitwise identical results either way).
      slot.shared.events = nullptr;
    }
  }

  const auto& counts = slot.manager->segment_counts();
  slot.order.resize(stacks_.num_tracks());
  std::iota(slot.order.begin(), slot.order.end(), 0);
  if (opts_.gpu.l3_sort) {
    std::stable_sort(slot.order.begin(), slot.order.end(),
                     [&](long a, long b) { return counts[a] > counts[b]; });
  }
  slot.shared.order = &slot.order;

  slot.device.launch("track_generation", stacks_.num_tracks(),
                     gpusim::Assignment::kRoundRobin,
                     [](std::size_t) { return kTrackGenCost; });
  slot.device.launch("ray_tracing", stacks_.num_tracks(),
                     gpusim::Assignment::kRoundRobin, [&](std::size_t id) {
                       return slot.manager->resident(static_cast<long>(id))
                                  ? kTraceCostPerSegment * counts[id]
                                  : 0.0;
                     });
}

Session::~Session() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
  for (PendingJob& job : queue_) {
    JobResult r;
    r.job = job.id;
    r.scenario = job.scenario.name;
    r.error = "session shutdown before the job ran";
    job.promise.set_value(std::move(r));
  }
}

std::future<JobResult> Session::submit(Scenario scenario) {
  PendingJob job;
  job.scenario = std::move(scenario);
  job.submitted = std::chrono::steady_clock::now();
  std::future<JobResult> fut = job.promise.get_future();
  {
    std::lock_guard<std::mutex> lk(mu_);
    job.id = next_job_id_++;
    ++stats_.submitted;
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
  return fut;
}

std::vector<JobResult> Session::run(const std::vector<Scenario>& scenarios) {
  std::vector<std::future<JobResult>> futures;
  futures.reserve(scenarios.size());
  for (const Scenario& s : scenarios) futures.push_back(submit(s));
  std::vector<JobResult> results;
  results.reserve(futures.size());
  for (auto& f : futures) results.push_back(f.get());
  return results;
}

SessionStats Session::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

std::size_t Session::idle_headroom(int device) const {
  return slots_[device]->device.memory().available();
}

int Session::pick_device() const {
  int best = -1;
  for (int d = 0; d < static_cast<int>(slots_.size()); ++d) {
    const DeviceSlot& s = *slots_[d];
    // available() already excludes what running jobs have charged so far;
    // their reservations still count in full, so this is conservative —
    // a job can never be admitted into headroom another job will claim.
    if (s.device.memory().available() < s.reserved + job_floor_) continue;
    if (best < 0 || s.active < slots_[best]->active) best = d;
  }
  return best;
}

void Session::worker_loop() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    cv_.wait(lk, [&] { return stopping_ || !queue_.empty(); });
    if (stopping_) return;

    int d = pick_device();
    if (d < 0) {
      // Admission control: every device is at its memory limit. Count the
      // deferral and sleep until a job finishes (or the queue drains).
      ++stats_.deferrals;
      cv_.wait(lk, [&] {
        return stopping_ || queue_.empty() || pick_device() >= 0;
      });
      continue;
    }

    PendingJob job = std::move(queue_.front());
    queue_.pop_front();
    DeviceSlot& slot = *slots_[d];
    slot.reserved += job_floor_;
    ++slot.active;
    int concurrent = 0;
    for (const auto& s : slots_) concurrent += s->active;
    stats_.peak_concurrent = std::max(stats_.peak_concurrent, concurrent);
    const bool ran_alone = concurrent == 1;
    lk.unlock();

    JobResult result = execute(job, slot);
    result.device = d;
    result.queue_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      job.submitted)
            .count() -
        result.solve_seconds;

    lk.lock();
    --slot.active;
    slot.reserved -= job_floor_;
    const bool transient_oom = !result.ok && result.error.empty();
    if (transient_oom && !ran_alone && job.attempts + 1 < kMaxAttempts) {
      // Another job's optional buffers beat us to the headroom; once this
      // job runs alone the reservation arithmetic guarantees it fits, so
      // requeueing always terminates.
      ++job.attempts;
      queue_.push_back(std::move(job));
      lk.unlock();
      cv_.notify_all();
      lk.lock();
      continue;
    }
    if (transient_oom)
      result.error = "device out of memory after " +
                     std::to_string(job.attempts + 1) + " attempts";
    if (result.ok)
      ++stats_.completed;
    else
      ++stats_.failed;
    lk.unlock();

    telemetry::metrics()
        .counter(result.ok ? "engine.jobs_completed" : "engine.jobs_failed")
        .add();
    telemetry::metrics()
        .gauge(telemetry::label("engine.job_seconds", "job", result.job))
        .set(result.solve_seconds);
    job.promise.set_value(std::move(result));
    cv_.notify_all();
    lk.lock();
  }
}

JobResult Session::execute(const PendingJob& job, DeviceSlot& slot) {
  JobResult result;
  result.job = job.id;
  result.scenario = job.scenario.name;

  telemetry::TraceSpan span("engine/job", "engine", -1, -1, "job", job.id);
  Timer timer;
  timer.start();
  try {
    fault::point("engine.job");
    run_scenario(job.scenario, slot, result);
    result.ok = true;
  } catch (const DeviceOutOfMemory&) {
    // Leave error empty: the scheduler reads that as "transient OOM,
    // maybe requeue" and fills in a message if the job is failed for good.
    result.ok = false;
    result.error.clear();
    result.step_k.clear();
    result.group_flux.clear();
  } catch (const std::exception& e) {
    // Anything else — bad scenario physics, an injected fault — fails
    // this job only; the session's shared state is untouched because jobs
    // only ever read it.
    result.ok = false;
    result.error = e.what();
  }
  timer.stop();
  result.solve_seconds = timer.seconds();
  return result;
}

void Session::run_scenario(const Scenario& scenario, DeviceSlot& slot,
                           JobResult& result) const {
  for (int step = 0; step < scenario.steps; ++step) {
    // The perturbed set must outlive the solver: FsrData keeps a pointer
    // to it for the whole solve.
    const std::vector<Material> mats =
        apply_scenario(model_.materials, scenario, step);

    GpuSolverOptions gpu = opts_.gpu;
    gpu.shared = &slot.shared;
    GpuSolver solver(stacks_, mats, slot.device, gpu);
    solver.set_exp_table(exp_table_.get());
    solver.set_sweep_workers(opts_.sweep_workers);
    solver.set_shared_caches(&info_cache_, templates_.get());
    solver.install_links(links_);
    solver.set_global_volumes(volumes_);
    if (opts_.cmfd.enable) {
      solver.enable_cmfd(opts_.cmfd);
      solver.set_shared_cmfd_context(cmfd_ctx_.get());
    }

    const SolveResult sr = stepwise_solve(solver, slot.launch_mu, opts_.solve);
    result.step_k.push_back(sr.k_eff);
    if (step + 1 == scenario.steps) {
      result.k_eff = sr.k_eff;
      result.iterations = sr.iterations;
      result.converged = sr.converged;
      result.residual = sr.residual;
      result.group_flux = integrate_group_flux(solver.fsr());
    }
  }
}

JobResult Session::solve_one_shot(const Scenario& scenario) const {
  JobResult result;
  result.job = -1;
  result.scenario = scenario.name;

  Timer timer;
  timer.start();
  try {
    // Fully cold: fresh laydown, caches, and device per the same options,
    // sharing nothing with the session. Laydown is deterministic and the
    // sweep-cost calibration is pinned process-wide, so a warm engine job
    // must match this bitwise.
    Quadrature quad(opts_.num_azim, opts_.azim_spacing,
                    model_.geometry.bounds().width_x(),
                    model_.geometry.bounds().width_y(), opts_.num_polar);
    TrackGenerator2D gen(quad, model_.geometry.bounds(),
                         radial_kinds(model_.geometry));
    TrackStacks stacks((gen.trace(model_.geometry), gen), model_.geometry,
                       model_.geometry.bounds().z_min,
                       model_.geometry.bounds().z_max, opts_.z_spacing);
    std::unique_ptr<ExpTable> table;
    if (opts_.use_exp_table)
      table = std::make_unique<ExpTable>(opts_.exp_max_tau,
                                         opts_.exp_tolerance);
    gpusim::Device device(opts_.device);

    GpuSolverOptions gpu = opts_.gpu;
    gpu.shared = nullptr;
    for (int step = 0; step < scenario.steps; ++step) {
      const std::vector<Material> mats =
          apply_scenario(model_.materials, scenario, step);
      GpuSolver solver(stacks, mats, device, gpu);
      solver.set_exp_table(table.get());
      solver.set_sweep_workers(opts_.sweep_workers);
      // Cold CMFD builds its own mesh + plan; construction is
      // deterministic, so the warm borrowed-context job matches bitwise.
      if (opts_.cmfd.enable) solver.enable_cmfd(opts_.cmfd);
      const SolveResult sr = solver.solve(opts_.solve);
      result.step_k.push_back(sr.k_eff);
      if (step + 1 == scenario.steps) {
        result.k_eff = sr.k_eff;
        result.iterations = sr.iterations;
        result.converged = sr.converged;
        result.residual = sr.residual;
        result.group_flux = integrate_group_flux(solver.fsr());
      }
    }
    result.ok = true;
  } catch (const std::exception& e) {
    result.ok = false;
    result.error = e.what();
  }
  timer.stop();
  result.solve_seconds = timer.seconds();
  return result;
}

}  // namespace engine
}  // namespace antmoc
