#pragma once

/// \file exporters.h
/// Serializers for the telemetry subsystem (DESIGN.md §6):
///
///   * chrome_trace_json() — the recorded spans as Chrome `trace_events`
///     JSON (complete "X" and instant "i" events; load the file at
///     chrome://tracing or ui.perfetto.dev). pid lanes map to comm ranks.
///   * metrics_jsonl() — one JSON object per line for every counter,
///     gauge (with its sample series), and histogram; machine-diffable,
///     the format the bench harness records runs in.
///   * summary() — the human-readable run report: spans aggregated by
///     name, top counters/gauges, and the TimerRegistry stage table it
///     subsumes.
///   * export_all() — writes whatever the active telemetry::Config asks
///     for (trace_path / metrics_path); a no-op when telemetry is off.
///
/// In ANTMOC_TELEMETRY=OFF builds all of these exist but return empty
/// strings / write nothing.

#include <string>

namespace antmoc::telemetry {

std::string chrome_trace_json();
std::string metrics_jsonl();
std::string summary();

void write_chrome_trace(const std::string& path);
void write_metrics_jsonl(const std::string& path);

/// Exports to the paths in Telemetry::config(); returns true if anything
/// was written.
bool export_all();

}  // namespace antmoc::telemetry
