#include "telemetry/exporters.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <vector>

#include "telemetry/telemetry.h"
#include "util/error.h"
#include "util/timer.h"

namespace antmoc::telemetry {

#ifdef ANTMOC_TELEMETRY_DISABLED

std::string chrome_trace_json() { return {}; }
std::string metrics_jsonl() { return {}; }
std::string summary() { return {}; }
void write_chrome_trace(const std::string&) {}
void write_metrics_jsonl(const std::string&) {}
bool export_all() { return false; }

#else

namespace {

/// JSON string escaping for the small character set our names can contain.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

/// Shared args object: rank/cu attribution plus the optional payload.
std::string event_args(const TraceEvent& ev) {
  std::string args;
  auto append = [&](const std::string& piece) {
    if (!args.empty()) args += ",";
    args += piece;
  };
  if (ev.rank >= 0) append("\"rank\":" + std::to_string(ev.rank));
  if (ev.cu >= 0) append("\"cu\":" + std::to_string(ev.cu));
  if (ev.arg_name != nullptr) {
    std::string pair = "\"";
    pair += json_escape(ev.arg_name);
    pair += "\":";
    pair += std::to_string(ev.arg);
    append(pair);
  }
  return args;
}

}  // namespace

std::string chrome_trace_json() {
  const auto events = Telemetry::instance().events();
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& ev : events) {
    if (!first) out += ",\n";
    first = false;
    // Lanes: pid = rank (ranks render as separate "processes"), tid = the
    // recording thread's ring id.
    const int pid = ev.rank >= 0 ? ev.rank : 0;
    out += "{\"name\":\"" + json_escape(ev.name) + "\",\"cat\":\"" +
           json_escape(*ev.category ? ev.category : "default") + "\"";
    if (ev.instant) {
      out += ",\"ph\":\"i\",\"s\":\"t\"";
    } else {
      out += ",\"ph\":\"X\",\"dur\":" + std::to_string(ev.dur_us);
    }
    out += ",\"ts\":" + std::to_string(ev.ts_us) +
           ",\"pid\":" + std::to_string(pid) +
           ",\"tid\":" + std::to_string(ev.tid);
    const std::string args = event_args(ev);
    if (!args.empty()) out += ",\"args\":{" + args + "}";
    out += "}";
  }
  out += "],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

std::string metrics_jsonl() {
  auto& m = Telemetry::instance().metrics();
  std::string out;
  for (const std::string& name : m.counter_names()) {
    out += "{\"type\":\"counter\",\"name\":\"";
    out += json_escape(name);
    out += "\",\"value\":";
    out += std::to_string(m.counter(name).value());
    out += "}\n";
  }
  for (const std::string& name : m.gauge_names()) {
    const Gauge& g = m.gauge(name);
    out += "{\"type\":\"gauge\",\"name\":\"";
    out += json_escape(name);
    out += "\",\"value\":";
    out += fmt_double(g.value());
    out += ",\"samples\":[";
    bool first = true;
    for (const auto& [ts, v] : g.samples()) {
      if (!first) out += ",";
      first = false;
      out += "[";
      out += std::to_string(ts);
      out += ",";
      out += fmt_double(v);
      out += "]";
    }
    out += "]}\n";
  }
  for (const std::string& name : m.histogram_names()) {
    const Histogram& h = m.histogram(name);
    out += "{\"type\":\"histogram\",\"name\":\"";
    out += json_escape(name);
    out += "\",\"count\":";
    out += std::to_string(h.count());
    out += ",\"sum\":";
    out += fmt_double(h.sum());
    out += ",\"bounds\":[";
    bool first = true;
    for (double b : h.bounds()) {
      if (!first) out += ",";
      first = false;
      out += fmt_double(b);
    }
    out += "],\"counts\":[";
    first = true;
    for (std::uint64_t c : h.counts()) {
      if (!first) out += ",";
      first = false;
      out += std::to_string(c);
    }
    out += "]}\n";
  }
  return out;
}

std::string summary() {
  std::string out;
  char line[200];

  // Spans aggregated by name: the per-stage view the Chrome trace shows
  // zoomed out, as text.
  struct SpanAgg {
    std::uint64_t count = 0;
    std::uint64_t total_us = 0;
    std::uint64_t max_us = 0;
  };
  std::map<std::string, SpanAgg> spans;
  for (const TraceEvent& ev : Telemetry::instance().events()) {
    if (ev.instant) continue;
    auto& agg = spans[ev.name];
    ++agg.count;
    agg.total_us += ev.dur_us;
    agg.max_us = std::max(agg.max_us, ev.dur_us);
  }
  if (!spans.empty()) {
    out += "--- spans (count, total, max) ---\n";
    std::vector<std::pair<std::string, SpanAgg>> rows(spans.begin(),
                                                      spans.end());
    std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
      return a.second.total_us > b.second.total_us;
    });
    for (const auto& [name, agg] : rows) {
      std::snprintf(line, sizeof line, "%-40s %8llu %12.6f s %12.6f s\n",
                    name.c_str(),
                    static_cast<unsigned long long>(agg.count),
                    agg.total_us * 1e-6, agg.max_us * 1e-6);
      out += line;
    }
  }

  auto& m = Telemetry::instance().metrics();
  if (!m.counter_names().empty()) {
    out += "--- counters ---\n";
    for (const std::string& name : m.counter_names()) {
      std::snprintf(line, sizeof line, "%-40s %20llu\n", name.c_str(),
                    static_cast<unsigned long long>(m.counter(name).value()));
      out += line;
    }
  }
  if (!m.gauge_names().empty()) {
    out += "--- gauges (last value) ---\n";
    for (const std::string& name : m.gauge_names()) {
      std::snprintf(line, sizeof line, "%-40s %20.9g\n", name.c_str(),
                    m.gauge(name).value());
      out += line;
    }
  }
  if (!m.histogram_names().empty()) {
    out += "--- histograms (count, mean) ---\n";
    for (const std::string& name : m.histogram_names()) {
      const Histogram& h = m.histogram(name);
      const double mean = h.count() > 0 ? h.sum() / h.count() : 0.0;
      std::snprintf(line, sizeof line, "%-40s %12llu %16.6g\n", name.c_str(),
                    static_cast<unsigned long long>(h.count()), mean);
      out += line;
    }
  }

  // The wall-clock stage table this report subsumes.
  const std::string timers = TimerRegistry::instance().report();
  if (!timers.empty()) out += "--- stage timers ---\n" + timers;

  const std::uint64_t dropped = Telemetry::instance().dropped_events();
  if (dropped > 0) {
    std::snprintf(line, sizeof line,
                  "(%llu trace events dropped to ring wrap-around; raise "
                  "telemetry.span_capacity)\n",
                  static_cast<unsigned long long>(dropped));
    out += line;
  }
  return out;
}

namespace {
void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) fail<Error>("telemetry: cannot open for writing: " + path);
  out << content;
  require(static_cast<bool>(out), "telemetry: write failed: " + path);
}
}  // namespace

void write_chrome_trace(const std::string& path) {
  write_file(path, chrome_trace_json());
}

void write_metrics_jsonl(const std::string& path) {
  write_file(path, metrics_jsonl());
}

bool export_all() {
  if (!Telemetry::enabled()) return false;
  const Config cfg = Telemetry::instance().config();
  bool wrote = false;
  if (!cfg.trace_path.empty()) {
    write_chrome_trace(cfg.trace_path);
    wrote = true;
  }
  if (!cfg.metrics_path.empty()) {
    write_metrics_jsonl(cfg.metrics_path);
    wrote = true;
  }
  return wrote;
}

#endif  // ANTMOC_TELEMETRY_DISABLED

}  // namespace antmoc::telemetry
