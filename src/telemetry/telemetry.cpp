#include "telemetry/telemetry.h"

#ifndef ANTMOC_TELEMETRY_DISABLED

#include <algorithm>
#include <chrono>

#include "util/config.h"

namespace antmoc::telemetry {

std::uint64_t now_us() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point origin = clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(clock::now() -
                                                            origin)
          .count());
}

std::string label(const char* base, const char* key, long v) {
  return std::string(base) + "[" + key + "=" + std::to_string(v) + "]";
}

// ----------------------------------------------------------------- Gauge ---

void Gauge::set(double v) {
  const std::uint64_t ts = now_us();
  std::lock_guard lock(mutex_);
  last_ = v;
  if (samples_.size() < capacity_) samples_.emplace_back(ts, v);
}

double Gauge::value() const {
  std::lock_guard lock(mutex_);
  return last_;
}

std::vector<std::pair<std::uint64_t, double>> Gauge::samples() const {
  std::lock_guard lock(mutex_);
  return samples_;
}

// ------------------------------------------------------------- Histogram ---

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1) {}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  counts_[static_cast<std::size_t>(it - bounds_.begin())].fetch_add(
      1, std::memory_order_relaxed);
  total_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

std::uint64_t Histogram::count() const {
  return total_.load(std::memory_order_relaxed);
}

double Histogram::sum() const { return sum_.load(std::memory_order_relaxed); }

std::vector<std::uint64_t> Histogram::counts() const {
  std::vector<std::uint64_t> out(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i)
    out[i] = counts_[i].load(std::memory_order_relaxed);
  return out;
}

// ------------------------------------------------------- MetricsRegistry ---

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>(gauge_capacity_);
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  std::lock_guard lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) {
    if (bounds.empty())
      bounds = {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1.0};
    slot = std::make_unique<Histogram>(std::move(bounds));
  }
  return *slot;
}

namespace {
template <class Map>
std::vector<std::string> sorted_keys(const Map& map) {
  std::vector<std::string> out;
  out.reserve(map.size());
  for (const auto& [name, _] : map) out.push_back(name);
  return out;
}
}  // namespace

std::vector<std::string> MetricsRegistry::counter_names() const {
  std::lock_guard lock(mutex_);
  return sorted_keys(counters_);
}

std::vector<std::string> MetricsRegistry::gauge_names() const {
  std::lock_guard lock(mutex_);
  return sorted_keys(gauges_);
}

std::vector<std::string> MetricsRegistry::histogram_names() const {
  std::lock_guard lock(mutex_);
  return sorted_keys(histograms_);
}

void MetricsRegistry::set_gauge_capacity(std::size_t capacity) {
  std::lock_guard lock(mutex_);
  gauge_capacity_ = capacity;
}

void MetricsRegistry::clear() {
  std::lock_guard lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

// --------------------------------------------------------------- Telemetry ---

std::atomic<int> Telemetry::enabled_{0};

Telemetry& Telemetry::instance() {
  static Telemetry telemetry;
  return telemetry;
}

void Telemetry::set_enabled(bool on) {
  enabled_.store(on ? 1 : 0, std::memory_order_relaxed);
}

void Telemetry::configure(const antmoc::Config& run_config) {
  Config cfg;
  cfg.enabled = run_config.get_bool("telemetry", false) ||
                run_config.get_bool("telemetry.enabled", false);
  cfg.trace_path = run_config.get_string("telemetry.trace", std::string());
  cfg.metrics_path =
      run_config.get_string("telemetry.metrics", std::string());
  cfg.span_capacity = static_cast<std::size_t>(run_config.get_int(
      "telemetry.span_capacity", static_cast<long>(cfg.span_capacity)));
  cfg.gauge_capacity = static_cast<std::size_t>(run_config.get_int(
      "telemetry.gauge_capacity", static_cast<long>(cfg.gauge_capacity)));
  if (cfg.enabled && cfg.trace_path.empty())
    cfg.trace_path = "antmoc_trace.json";
  if (cfg.enabled && cfg.metrics_path.empty())
    cfg.metrics_path = "antmoc_metrics.jsonl";
  set_config(cfg);
}

void Telemetry::set_config(const Config& config) {
  {
    std::lock_guard lock(mutex_);
    config_ = config;
  }
  metrics_.clear();
  metrics_.set_gauge_capacity(config.gauge_capacity);
  set_enabled(config.enabled);
}

Config Telemetry::config() const {
  std::lock_guard lock(mutex_);
  return config_;
}

const char* Telemetry::intern(const std::string& s) {
  std::lock_guard lock(mutex_);
  for (const auto& owned : intern_)
    if (*owned == s) return owned->c_str();
  intern_.push_back(std::make_unique<std::string>(s));
  return intern_.back()->c_str();
}

detail::ThreadBuffer& Telemetry::local_buffer() {
  thread_local detail::ThreadBuffer* buffer = nullptr;
  thread_local const Telemetry* owner = nullptr;
  if (buffer == nullptr || owner != this) {
    std::lock_guard lock(mutex_);
    const auto tid = static_cast<std::uint32_t>(buffers_.size());
    buffers_.push_back(std::make_unique<detail::ThreadBuffer>(
        tid, std::max<std::size_t>(config_.span_capacity, 16)));
    buffer = buffers_.back().get();
    owner = this;
  }
  return *buffer;
}

void Telemetry::record(const TraceEvent& ev) { local_buffer().push(ev); }

void Telemetry::instant(const char* name, const char* category,
                        std::int32_t rank, const char* arg_name,
                        std::int64_t arg) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.name = name;
  ev.category = category;
  ev.instant = true;
  ev.ts_us = now_us();
  ev.rank = rank;
  ev.arg_name = arg_name;
  ev.arg = arg;
  record(ev);
}

std::vector<TraceEvent> Telemetry::events() const {
  std::vector<TraceEvent> out;
  {
    std::lock_guard lock(mutex_);
    for (const auto& buf : buffers_) {
      const std::uint64_t head = buf->head.load(std::memory_order_acquire);
      const std::uint64_t cap = buf->slots.size();
      const std::uint64_t n = std::min(head, cap);
      for (std::uint64_t i = head - n; i < head; ++i)
        out.push_back(buf->slots[i % cap]);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.ts_us < b.ts_us;
            });
  return out;
}

std::uint64_t Telemetry::dropped_events() const {
  std::lock_guard lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& buf : buffers_)
    total += buf->dropped.load(std::memory_order_relaxed);
  return total;
}

void Telemetry::reset() {
  {
    std::lock_guard lock(mutex_);
    // Rings stay registered (thread_local pointers into buffers_ must
    // remain valid) but forget their contents.
    for (auto& buf : buffers_) {
      buf->head.store(0, std::memory_order_relaxed);
      buf->dropped.store(0, std::memory_order_relaxed);
    }
  }
  metrics_.clear();
}

ScopedWait::~ScopedWait() {
  if (base_ == nullptr || !Telemetry::enabled()) return;
  const std::uint64_t waited = now_us() - t0_;
  auto& m = Telemetry::instance().metrics();
  m.counter(base_).add(waited);
  if (rank_ >= 0) m.counter(label(base_, "rank", rank_)).add(waited);
}

}  // namespace antmoc::telemetry

#endif  // ANTMOC_TELEMETRY_DISABLED
