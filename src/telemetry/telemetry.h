#pragma once

/// \file telemetry.h
/// Unified observability for the ANT-MOC reproduction (DESIGN.md §6).
///
/// The paper's central claims are measurements — per-kernel cycle shares
/// (§3.2), CU-level MAX/AVG load uniformity (§5.4), and neighbor-exchange
/// communication volume (Eq. 7). This subsystem collects those signals in
/// one place so they can be correlated per iteration and exported:
///
///   * MetricsRegistry — named counters, gauges (with a bounded time
///     series), and fixed-bucket histograms; all operations thread-safe.
///   * TraceSpan — RAII begin/end probes recorded into per-thread
///     lock-free ring buffers with rank/CU/iteration attribution; the
///     exporters turn them into Chrome `trace_events` JSON.
///   * Telemetry — the process-wide switchboard: a runtime on/off gate
///     (one relaxed atomic load when off, mirroring fault::point()), the
///     active telemetry::Config, buffer registration, and snapshots.
///
/// Off by default. Enable per run with `--telemetry` (or `telemetry.*`
/// config keys; see Config below), or compile every hook out with
/// `-DANTMOC_TELEMETRY=OFF` — the disabled header below replaces the whole
/// API with empty inlines so call sites vanish entirely.
///
/// Concurrency contract: each ring buffer has exactly one producer (its
/// owning thread); exporters snapshot after the producing threads have
/// quiesced (e.g. after Runtime::run() joins its ranks), matching how every
/// run-summary path in this repo already behaves.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace antmoc {
class Config;
}

namespace antmoc::telemetry {

/// Telemetry run configuration, filled from `telemetry.*` config keys.
struct Config {
  bool enabled = false;            ///< telemetry / telemetry.enabled
  std::string trace_path;          ///< telemetry.trace — Chrome JSON output
  std::string metrics_path;        ///< telemetry.metrics — JSONL output
  std::size_t span_capacity = 1 << 16;  ///< telemetry.span_capacity (events
                                        ///< per thread ring)
  std::size_t gauge_capacity = 4096;    ///< telemetry.gauge_capacity
                                        ///< (samples kept per gauge series)
};

#ifdef ANTMOC_TELEMETRY_DISABLED

// ---------------------------------------------------------------------------
// Compiled-out variant: the entire API as empty inlines. Call sites keep
// compiling; the optimizer erases them (telemetry::on() is constexpr false,
// so every `if (telemetry::on())` block is dead code).
// ---------------------------------------------------------------------------

constexpr bool compiled() { return false; }
constexpr bool on() { return false; }
inline std::uint64_t now_us() { return 0; }

struct TraceEvent {
  const char* name = "";
  const char* category = "";
  bool instant = false;
  std::uint64_t ts_us = 0;
  std::uint64_t dur_us = 0;
  std::uint32_t tid = 0;
  std::int32_t rank = -1;
  std::int32_t cu = -1;
  const char* arg_name = nullptr;
  std::int64_t arg = 0;
};

class Counter {
 public:
  void add(std::uint64_t = 1) {}
  std::uint64_t value() const { return 0; }
};

class Gauge {
 public:
  void set(double) {}
  double value() const { return 0.0; }
  std::vector<std::pair<std::uint64_t, double>> samples() const { return {}; }
};

class Histogram {
 public:
  void observe(double) {}
  std::uint64_t count() const { return 0; }
  double sum() const { return 0.0; }
  std::vector<double> bounds() const { return {}; }
  std::vector<std::uint64_t> counts() const { return {}; }
};

class MetricsRegistry {
 public:
  Counter& counter(const std::string&) { return counter_; }
  Gauge& gauge(const std::string&) { return gauge_; }
  Histogram& histogram(const std::string&, std::vector<double> = {}) {
    return histogram_;
  }
  std::vector<std::string> counter_names() const { return {}; }
  std::vector<std::string> gauge_names() const { return {}; }
  std::vector<std::string> histogram_names() const { return {}; }
  void set_gauge_capacity(std::size_t) {}
  void clear() {}

 private:
  Counter counter_;
  Gauge gauge_;
  Histogram histogram_;
};

class Telemetry {
 public:
  static Telemetry& instance() {
    static Telemetry t;
    return t;
  }
  static constexpr bool enabled() { return false; }
  void set_enabled(bool) {}
  void configure(const antmoc::Config&) {}
  void set_config(const Config&) {}
  Config config() const { return {}; }
  MetricsRegistry& metrics() { return metrics_; }
  const char* intern(const std::string&) { return ""; }
  void record(const TraceEvent&) {}
  void instant(const char*, const char*, std::int32_t = -1,
               const char* = nullptr, std::int64_t = 0) {}
  std::vector<TraceEvent> events() const { return {}; }
  std::uint64_t dropped_events() const { return 0; }
  void reset() {}

 private:
  MetricsRegistry metrics_;
};

class TraceSpan {
 public:
  explicit TraceSpan(const std::string&, const char* = "",
                     std::int32_t = -1, std::int32_t = -1,
                     const char* = nullptr, std::int64_t = 0) {}
  explicit TraceSpan(const char*, const char* = "", std::int32_t = -1,
                     std::int32_t = -1, const char* = nullptr,
                     std::int64_t = 0) {}
  void set_arg(const char*, std::int64_t) {}
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
};

class ScopedWait {
 public:
  ScopedWait(const char*, std::int32_t) {}
  ScopedWait(const ScopedWait&) = delete;
  ScopedWait& operator=(const ScopedWait&) = delete;
};

inline MetricsRegistry& metrics() { return Telemetry::instance().metrics(); }
inline std::string label(const char* base, const char* key, long v) {
  (void)base;
  (void)key;
  (void)v;
  return {};
}

#else  // telemetry compiled in

constexpr bool compiled() { return true; }

/// Microseconds since process start on the steady clock — the timestamp
/// base of every trace event, so ts + dur comparisons are always coherent.
std::uint64_t now_us();

/// One recorded probe. `name`/`category`/`arg_name` are interned pointers
/// (stable for the process lifetime) so events stay trivially copyable and
/// ring-buffer slots never allocate.
struct TraceEvent {
  const char* name = "";
  const char* category = "";
  bool instant = false;       ///< Chrome "i" event (no duration)
  std::uint64_t ts_us = 0;    ///< begin timestamp
  std::uint64_t dur_us = 0;   ///< duration (complete "X" events)
  std::uint32_t tid = 0;      ///< recording thread's buffer id
  std::int32_t rank = -1;     ///< comm rank attribution (-1 = none)
  std::int32_t cu = -1;       ///< CU attribution (-1 = none)
  const char* arg_name = nullptr;  ///< optional payload label
  std::int64_t arg = 0;            ///< optional payload value
};

/// Monotonic counter. add() is one relaxed atomic fetch_add.
class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-value gauge that also keeps a bounded (timestamp, value) series so
/// per-iteration signals (k_eff, residual) survive into the JSONL dump.
class Gauge {
 public:
  explicit Gauge(std::size_t capacity) : capacity_(capacity) {}

  void set(double v);
  double value() const;
  std::vector<std::pair<std::uint64_t, double>> samples() const;

 private:
  mutable std::mutex mutex_;
  double last_ = 0.0;
  std::size_t capacity_;
  std::vector<std::pair<std::uint64_t, double>> samples_;
};

/// Fixed-bucket histogram: counts_[i] tallies observations <= bounds_[i],
/// with one overflow bucket past the last bound. Lock-free observe().
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);
  std::uint64_t count() const;
  double sum() const;
  std::vector<double> bounds() const { return bounds_; }
  std::vector<std::uint64_t> counts() const;

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> counts_;
  std::atomic<std::uint64_t> total_{0};
  std::atomic<double> sum_{0.0};
};

/// Named metrics. Lookup takes a registry mutex; returned references stay
/// valid for the registry's lifetime, so hot paths may cache them.
class MetricsRegistry {
 public:
  explicit MetricsRegistry(std::size_t gauge_capacity = 4096)
      : gauge_capacity_(gauge_capacity) {}

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `bounds` applies only on first creation; the default is a utilization
  /// ladder suited to [0, 1]-ish observations.
  Histogram& histogram(const std::string& name,
                       std::vector<double> bounds = {});

  std::vector<std::string> counter_names() const;
  std::vector<std::string> gauge_names() const;
  std::vector<std::string> histogram_names() const;

  /// Applies to gauges created after the call (set_config installs it
  /// before any metric exists).
  void set_gauge_capacity(std::size_t capacity);

  void clear();

 private:
  mutable std::mutex mutex_;
  std::size_t gauge_capacity_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

namespace detail {

/// Single-producer ring of TraceEvents. The owning thread writes a slot
/// then publishes head with release; snapshots read head with acquire.
/// When full it wraps, overwriting the oldest events and counting drops.
struct ThreadBuffer {
  ThreadBuffer(std::uint32_t tid, std::size_t capacity)
      : tid(tid), slots(capacity) {}

  void push(TraceEvent ev) {
    const std::uint64_t h = head.load(std::memory_order_relaxed);
    if (h >= slots.size()) dropped.fetch_add(1, std::memory_order_relaxed);
    ev.tid = tid;
    slots[h % slots.size()] = ev;
    head.store(h + 1, std::memory_order_release);
  }

  std::uint32_t tid;
  std::vector<TraceEvent> slots;
  std::atomic<std::uint64_t> head{0};
  std::atomic<std::uint64_t> dropped{0};
};

}  // namespace detail

/// Process-wide telemetry switchboard.
class Telemetry {
 public:
  static Telemetry& instance();

  /// The whole cost of every hook in a telemetry-off run: one relaxed
  /// atomic load and a predicted branch.
  static bool enabled() {
    return enabled_.load(std::memory_order_relaxed) != 0;
  }

  void set_enabled(bool on);

  /// Applies `telemetry.*` keys from a run configuration: `telemetry` /
  /// `telemetry.enabled` (bool), `telemetry.trace`, `telemetry.metrics`,
  /// `telemetry.span_capacity`, `telemetry.gauge_capacity`. When enabled
  /// with no explicit paths, trace/metrics default to
  /// "antmoc_trace.json" / "antmoc_metrics.jsonl".
  void configure(const antmoc::Config& run_config);
  void set_config(const Config& config);
  Config config() const;

  MetricsRegistry& metrics() { return metrics_; }

  /// Returns a stable pointer for `s`, deduplicated process-wide. Span
  /// names are few (kernel and stage names), so the table stays tiny.
  const char* intern(const std::string& s);

  /// Appends `ev` to the calling thread's ring buffer.
  void record(const TraceEvent& ev);

  /// Records a zero-duration "i" event (degradation-ladder steps etc.).
  void instant(const char* name, const char* category,
               std::int32_t rank = -1, const char* arg_name = nullptr,
               std::int64_t arg = 0);

  /// Snapshot of all recorded events across threads, sorted by timestamp.
  std::vector<TraceEvent> events() const;

  /// Events lost to ring wrap-around since the last reset().
  std::uint64_t dropped_events() const;

  /// Clears rings and metrics (tests and multi-run binaries).
  void reset();

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

 private:
  Telemetry() = default;

  detail::ThreadBuffer& local_buffer();

  static std::atomic<int> enabled_;
  mutable std::mutex mutex_;  // guards config_, buffers_, intern_
  Config config_;
  std::vector<std::unique_ptr<detail::ThreadBuffer>> buffers_;
  std::vector<std::unique_ptr<std::string>> intern_;
  MetricsRegistry metrics_;
};

/// RAII span: records one complete ("X") trace event covering its
/// lifetime. Construction is a no-op when telemetry is off.
class TraceSpan {
 public:
  explicit TraceSpan(const std::string& name, const char* category = "",
                     std::int32_t rank = -1, std::int32_t cu = -1,
                     const char* arg_name = nullptr, std::int64_t arg = 0) {
    if (!Telemetry::enabled()) return;
    begin(Telemetry::instance().intern(name), category, rank, cu, arg_name,
          arg);
  }

  /// Literal-name overload: the pointer is stored as-is (no interning), so
  /// hot call sites pay no string construction even when enabled.
  explicit TraceSpan(const char* name, const char* category = "",
                     std::int32_t rank = -1, std::int32_t cu = -1,
                     const char* arg_name = nullptr, std::int64_t arg = 0) {
    if (!Telemetry::enabled()) return;
    begin(name, category, rank, cu, arg_name, arg);
  }

  ~TraceSpan() {
    if (!active_) return;
    ev_.dur_us = now_us() - ev_.ts_us;
    Telemetry::instance().record(ev_);
  }

  /// Attaches (or replaces) the payload after construction, e.g. once a
  /// received byte count is known.
  void set_arg(const char* name, std::int64_t value) {
    ev_.arg_name = name;
    ev_.arg = value;
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  void begin(const char* name, const char* category, std::int32_t rank,
             std::int32_t cu, const char* arg_name, std::int64_t arg) {
    active_ = true;
    ev_.name = name;
    ev_.category = category;
    ev_.rank = rank;
    ev_.cu = cu;
    ev_.arg_name = arg_name;
    ev_.arg = arg;
    ev_.ts_us = now_us();
  }

  bool active_ = false;
  TraceEvent ev_;
};

/// RAII wait-time probe: adds its lifetime in microseconds to the counter
/// "<base>[rank=R]" (plus the unlabeled "<base>" total). Used by blocking
/// comm calls so per-rank wait time lands in the metrics dump.
class ScopedWait {
 public:
  ScopedWait(const char* base, std::int32_t rank) {
    if (!Telemetry::enabled()) return;
    base_ = base;
    rank_ = rank;
    t0_ = now_us();
  }
  ~ScopedWait();

  ScopedWait(const ScopedWait&) = delete;
  ScopedWait& operator=(const ScopedWait&) = delete;

 private:
  const char* base_ = nullptr;
  std::int32_t rank_ = -1;
  std::uint64_t t0_ = 0;
};

/// True when telemetry is both compiled in and runtime-enabled. Hooks are
/// written as `if (telemetry::on()) { ... }`.
inline bool on() { return Telemetry::enabled(); }

inline MetricsRegistry& metrics() { return Telemetry::instance().metrics(); }

/// Canonical labeled-metric name: "base[key=v]".
std::string label(const char* base, const char* key, long v);

#endif  // ANTMOC_TELEMETRY_DISABLED

}  // namespace antmoc::telemetry
