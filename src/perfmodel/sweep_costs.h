#pragma once

/// \file sweep_costs.h
/// Process-wide per-segment sweep-cost ratios shared by the perf model
/// (Eq. 6), the three-level load mapper, and TrackManager's cost-aware
/// residency ranking.
///
/// The paper hardcodes the OTF regeneration tax at ~6x the resident
/// sweep (Fig. 9); this repo seeds the same default but lets
/// TrackManager replace it with a startup micro-calibration (timing
/// resident scan vs. generic OTF walk vs. chord-template expansion on a
/// sample of real tracks), and lets the user pin the OTF ratio with the
/// `track.otf_cost` knob. Benches that reproduce paper figures pin the
/// paper model explicitly with `set_sweep_costs({1.0, 6.0, 1.5})`.
///
/// Costs are ratios normalized to `resident = 1.0`. Thread-safe: reads
/// and writes go through one mutex; calibration runs once per process
/// through calibrate_once(), so concurrent solver (or engine-session)
/// constructions neither repeat nor race the measurement.

#include <functional>

namespace antmoc::perf {

/// Per-segment cost by expansion path, normalized to resident = 1.
struct SweepCosts {
  double resident = 1.0;   ///< stored Segment3D linear scan (EXP)
  double otf = 6.0;        ///< generic on-the-fly walk (paper Fig. 9)
  double templated = 1.5;  ///< chord-template expansion (ChordTemplateCache)
  /// Flat event-array scan (`sweep.backend=event`): every segment reads
  /// the prebuilt SoA arrays, so residency/template class stops mattering
  /// — one uniform per-segment cost, at worst a resident scan. Without
  /// this term the LoadMapper and Eq. 5/6 sizing would keep pricing
  /// temporary tracks at the OTF regeneration tax the event backend no
  /// longer pays, mis-ranking residency whenever the backend is event.
  double event = 1.0;
};

/// Current process-wide costs (paper defaults until calibrated/pinned).
SweepCosts sweep_costs();

/// Replaces the costs outright and blocks later calibration — used by
/// benches reproducing the paper's fixed 6.00x model, and by tests.
void set_sweep_costs(const SweepCosts& c);

/// Records a measured calibration (TrackManager startup). Dropped when a
/// user override or explicit set_sweep_costs() already pinned the costs;
/// otherwise applied once — later calibrations are ignored so a solve's
/// predictions stay consistent across solver constructions.
void record_calibration(const SweepCosts& c);

/// Runs `fn` exactly once per process (std::call_once semantics): the
/// shared entry point for the micro-calibration body, which should end in
/// record_calibration(). Every concurrent caller — TrackManager
/// constructions racing across engine jobs included — blocks until the
/// first caller's fn returns, then sees the recorded costs; later calls
/// are free. An fn that throws releases the slot for the next caller.
void calibrate_once(const std::function<void()>& fn);

/// `track.otf_cost` user override: pins otf = ratio * resident and
/// blocks any later calibration.
void set_otf_cost_ratio(double ratio);

/// otf / resident — the regeneration tax consumed by Eq. 6 and the load
/// mapper (6.0 until calibrated or overridden).
double otf_cost_ratio();

/// templated / resident.
double template_cost_ratio();

/// event / resident — the uniform per-segment price of the flat
/// event-array scan (1.0 until calibrated or overridden).
double event_cost_ratio();

/// True once a calibration, override, or explicit set was applied.
bool sweep_costs_pinned();

/// Restores defaults and clears the pinned flag (test isolation only).
void reset_sweep_costs_for_test();

}  // namespace antmoc::perf
