#pragma once

/// \file layout.h
/// Device memory footprints of the persistent per-object records
/// (paper Table 3's vector inventory). Shared by the GPU solver's arena
/// accounting and the performance model (Eq. 5) so predictions and charges
/// agree byte-for-byte.

#include <cstddef>

namespace antmoc::perf {

/// Compact device record of a 2D track: endpoints, angle, length, links.
inline constexpr std::size_t kTrack2DBytes = 64;
/// One 2D segment: region id + length.
inline constexpr std::size_t kSegment2DBytes = 16;
/// One 3D track: stack index, z-intercept bookkeeping, two links.
inline constexpr std::size_t kTrack3DBytes = 32;
/// One 3D segment: FSR id + length (matches sizeof(Segment3D)).
inline constexpr std::size_t kSegment3DBytes = 16;
/// One 3D segment in the compact store (`track.storage = compact`): SoA
/// int32 FSR id + float chord length. Chords round once to fp32 at store
/// time; all attenuation and tally arithmetic stays fp64.
inline constexpr std::size_t kSegment3DCompactBytes = 8;
/// Event-array bytes per 3D segment (`sweep.backend = event`): both sweep
/// directions materialized, each event an int32 base index + a chord
/// (fp64 exact, fp32 compact). The per-track range table is priced
/// separately (see EventArrays::bytes_for).
inline constexpr std::size_t kEventBytes = 2 * (4 + 8);
inline constexpr std::size_t kEventBytesCompact = 2 * (4 + 4);
/// Boundary angular flux per track: 2 directions, single precision
/// (paper §3.3), double-buffered.
inline constexpr std::size_t kFluxBytesPerTrackGroup = 2 * 4 * 2;

/// Storage mode of the hot per-segment state (the `track.storage` knob,
/// DESIGN.md §15). kExact keeps the bitwise-reproducible AoS Segment3D
/// store; kCompact halves it (and the event-array chord lane) at a
/// pcm-bounded accuracy cost.
enum class TrackStorage { kExact, kCompact };

constexpr std::size_t segment3d_bytes(TrackStorage storage) {
  return storage == TrackStorage::kCompact ? kSegment3DCompactBytes
                                           : kSegment3DBytes;
}
constexpr std::size_t event_bytes(TrackStorage storage) {
  return storage == TrackStorage::kCompact ? kEventBytesCompact : kEventBytes;
}

}  // namespace antmoc::perf
