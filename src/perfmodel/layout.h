#pragma once

/// \file layout.h
/// Device memory footprints of the persistent per-object records
/// (paper Table 3's vector inventory). Shared by the GPU solver's arena
/// accounting and the performance model (Eq. 5) so predictions and charges
/// agree byte-for-byte.

#include <cstddef>

namespace antmoc::perf {

/// Compact device record of a 2D track: endpoints, angle, length, links.
inline constexpr std::size_t kTrack2DBytes = 64;
/// One 2D segment: region id + length.
inline constexpr std::size_t kSegment2DBytes = 16;
/// One 3D track: stack index, z-intercept bookkeeping, two links.
inline constexpr std::size_t kTrack3DBytes = 32;
/// One 3D segment: FSR id + length (matches sizeof(Segment3D)).
inline constexpr std::size_t kSegment3DBytes = 16;
/// Boundary angular flux per track: 2 directions, single precision
/// (paper §3.3), double-buffered.
inline constexpr std::size_t kFluxBytesPerTrackGroup = 2 * 4 * 2;

}  // namespace antmoc::perf
