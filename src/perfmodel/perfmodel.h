#pragma once

/// \file perfmodel.h
/// The ANT-MOC performance model (paper §3.3, Eqs. 2-7): closed-form
/// predictors for track counts, segment counts (calibrated on a small
/// sample), memory footprint, computation, and communication traffic.
/// §4's track-management and load-mapping strategies consume these
/// predictions, and Fig. 8 validates the segment estimate against
/// measured values.

#include <cstdint>

#include "perfmodel/layout.h"
#include "track/generator2d.h"
#include "track/track3d.h"

namespace antmoc::perf {

/// Eq. 2: N_2D = sum over scalar angles of f(a), where f is the
/// track-laying rule (nx + ny for the cyclic laydown).
long predict_num_tracks_2d(const Quadrature& quadrature);

/// Eq. 3: N_3D = sum over (2D track, polar) of g(a, i, p) — the stack
/// sizes implied by the z-intercept lattice. Closed form; does not expand
/// any track.
long predict_num_tracks_3d(const TrackGenerator2D& gen, double z_lo,
                           double z_hi, double z_spacing);

/// Eq. 4 calibration: segment-per-track ratios B_seg/B measured on a
/// small traced sample, reused to predict segment counts for any track
/// density on the same geometry.
struct SegmentRatios {
  double per_track_2d = 0.0;  ///< B_2Dseg / B_2D
  double per_track_3d = 0.0;  ///< B_3Dseg / B_3D

  static SegmentRatios calibrate(const TrackGenerator2D& sample_gen,
                                 const TrackStacks& sample_stacks);

  long predict_segments_2d(long num_tracks_2d) const;
  long predict_segments_3d(long num_tracks_3d) const;
};

/// Eq. 5 terms: per-structure device memory. `resident_fraction` scales
/// the 3D segment storage (1 = EXP, 0 = OTF, in between = Manager), and
/// `storage` prices each resident segment at segment3d_bytes(storage) —
/// 16 B exact, 8 B compact.
struct MemoryModel {
  int num_groups = 7;
  std::size_t fixed_bytes = 0;  ///< F in Eq. 5 (constants, XS tables, ...)

  struct Breakdown {
    std::uint64_t tracks_2d = 0;
    std::uint64_t segments_2d = 0;
    std::uint64_t tracks_3d = 0;
    std::uint64_t segments_3d = 0;
    std::uint64_t track_fluxes = 0;
    std::uint64_t fixed = 0;

    std::uint64_t total() const {
      return tracks_2d + segments_2d + tracks_3d + segments_3d +
             track_fluxes + fixed;
    }
    /// Share of one item in the total (Table 3 percentages).
    double share(std::uint64_t item) const {
      return total() > 0 ? static_cast<double>(item) / total() : 0.0;
    }
  };

  Breakdown predict(long n2d, long n2dseg, long n3d, long n3dseg,
                    double resident_fraction = 1.0,
                    TrackStorage storage = TrackStorage::kExact) const;
};

/// Eq. 6: computation ~ N_3Dseg. Returns modeled device cycles for one
/// transport sweep given the policy's resident fraction (temporary
/// segments pay the OTF regeneration factor, template-covered segments
/// the cheaper template expansion). Factors come from perf::sweep_costs()
/// — paper defaults {1, 6, 1.5} until calibrated or pinned.
double predict_sweep_cycles(long n3dseg, double resident_fraction,
                            double templated_fraction = 0.0);

/// Eq. 6 under `sweep.backend=event`: the once-per-solve flatten pre-pays
/// all regeneration, so every segment prices at the uniform
/// perf::sweep_costs().event ratio and the residency/template fractions
/// drop out of the sweep term. Consumers sizing arenas (Eq. 5) or ranking
/// residency must use this instead of predict_sweep_cycles when the
/// backend is event, or they overvalue resident storage by the
/// regeneration tax the event backend no longer pays.
double predict_event_sweep_cycles(long n3dseg);

/// CMFD outer-iteration reduction model (DESIGN.md §14): unaccelerated
/// power iteration contracts the error by the dominance ratio per sweep,
/// an accelerated outer contracts it by `cmfd_error_reduction`, so the
/// predicted sweep-count ratio is ln(reduction) / ln(dominance_ratio),
/// clamped to >= 1 (CMFD never costs outer sweeps in this model).
double predict_cmfd_outer_reduction(double dominance_ratio,
                                    double cmfd_error_reduction = 0.1);

/// Eq. 7: communication = N_3D * 2 * num_groups * 4 bytes — the full
/// boundary-flux state exchanged by the buffered-synchronous scheme.
std::uint64_t communication_bytes(long n3d, int num_groups);

/// Eq. 7 restricted to the wire: interface flux payload per iteration for
/// `crossing_track_ends` boundary-crossing track ends (each a single
/// direction of one track hitting an interface face), num_groups floats
/// each. Matches DomainRunSummary::flux_bytes_per_iter exactly.
std::uint64_t interface_flux_bytes(long crossing_track_ends, int num_groups);

}  // namespace antmoc::perf
