#include "perfmodel/perfmodel.h"

#include <cmath>

#include "perfmodel/layout.h"
#include "perfmodel/sweep_costs.h"
#include "util/error.h"

namespace antmoc::perf {

long predict_num_tracks_2d(const Quadrature& quadrature) {
  long total = 0;
  for (int a = 0; a < quadrature.num_azim_2(); ++a)
    total += quadrature.num_tracks(a);
  return total;
}

long predict_num_tracks_3d(const TrackGenerator2D& gen, double z_lo,
                           double z_hi, double z_spacing) {
  // Mirrors TrackStacks' z-intercept lattice arithmetic without building
  // the stacks (usable before tracing).
  require(z_hi > z_lo && z_spacing > 0, "bad axial parameters");
  const double wz = z_hi - z_lo;
  const long n = std::max(1L, std::lround(wz / z_spacing));
  const double dz = wz / static_cast<double>(n);
  const auto& quad = gen.quadrature();

  long total = 0;
  for (int t = 0; t < gen.num_tracks(); ++t) {
    const double len = gen.track(t).length;
    for (int p = 0; p < quad.num_polar(); ++p) {
      const double lc = len * quad.cot_theta(p);
      const int m_lo_up =
          static_cast<int>(std::floor(-lc / dz - 0.5 + 1e-9)) + 1;
      const int m_hi_up = static_cast<int>(std::floor(wz / dz - 0.5 - 1e-9));
      const int m_hi_dn =
          static_cast<int>(std::floor((wz + lc) / dz - 0.5 - 1e-9));
      total += std::max(0, m_hi_up - m_lo_up + 1);  // up stack
      total += std::max(0, m_hi_dn + 1);            // down stack (m_lo = 0)
    }
  }
  return total;
}

SegmentRatios SegmentRatios::calibrate(const TrackGenerator2D& sample_gen,
                                       const TrackStacks& sample_stacks) {
  SegmentRatios r;
  const long n2d = sample_gen.num_tracks();
  const long n3d = sample_stacks.num_tracks();
  require(n2d > 0 && n3d > 0, "calibration sample has no tracks");
  require(sample_gen.num_segments() > 0,
          "calibration sample must be traced first");
  r.per_track_2d =
      static_cast<double>(sample_gen.num_segments()) / n2d;
  r.per_track_3d =
      static_cast<double>(sample_stacks.total_segments()) / n3d;
  return r;
}

long SegmentRatios::predict_segments_2d(long num_tracks_2d) const {
  return std::lround(per_track_2d * static_cast<double>(num_tracks_2d));
}

long SegmentRatios::predict_segments_3d(long num_tracks_3d) const {
  return std::lround(per_track_3d * static_cast<double>(num_tracks_3d));
}

MemoryModel::Breakdown MemoryModel::predict(long n2d, long n2dseg, long n3d,
                                            long n3dseg,
                                            double resident_fraction,
                                            TrackStorage storage) const {
  require(resident_fraction >= 0.0 && resident_fraction <= 1.0,
          "resident_fraction must be in [0, 1]");
  Breakdown b;
  b.tracks_2d = static_cast<std::uint64_t>(n2d) * kTrack2DBytes;
  b.segments_2d = static_cast<std::uint64_t>(n2dseg) * kSegment2DBytes;
  b.tracks_3d = static_cast<std::uint64_t>(n3d) * kTrack3DBytes;
  b.segments_3d = static_cast<std::uint64_t>(
      static_cast<double>(n3dseg) * resident_fraction *
      static_cast<double>(segment3d_bytes(storage)));
  b.track_fluxes = static_cast<std::uint64_t>(n3d) * num_groups *
                   kFluxBytesPerTrackGroup;
  b.fixed = fixed_bytes;
  return b;
}

double predict_sweep_cycles(long n3dseg, double resident_fraction,
                            double templated_fraction) {
  require(resident_fraction >= 0.0 && resident_fraction <= 1.0,
          "resident_fraction must be in [0, 1]");
  require(templated_fraction >= 0.0 && templated_fraction <= 1.0,
          "templated_fraction must be in [0, 1]");
  require(resident_fraction + templated_fraction <= 1.0 + 1e-12,
          "resident + templated fractions exceed 1");
  const SweepCosts c = sweep_costs();
  const double resident = static_cast<double>(n3dseg) * resident_fraction;
  const double templated =
      static_cast<double>(n3dseg) * templated_fraction;
  const double temporary =
      static_cast<double>(n3dseg) - resident - templated;
  return resident * c.resident + templated * c.templated +
         temporary * c.otf;
}

double predict_event_sweep_cycles(long n3dseg) {
  return static_cast<double>(n3dseg) * sweep_costs().event;
}

double predict_cmfd_outer_reduction(double dominance_ratio,
                                    double cmfd_error_reduction) {
  if (!(dominance_ratio > 0.0) || dominance_ratio >= 1.0) return 1.0;
  if (!(cmfd_error_reduction > 0.0) || cmfd_error_reduction >= 1.0)
    return 1.0;
  return std::max(1.0, std::log(cmfd_error_reduction) /
                           std::log(dominance_ratio));
}

std::uint64_t communication_bytes(long n3d, int num_groups) {
  return static_cast<std::uint64_t>(n3d) * 2u *
         static_cast<std::uint64_t>(num_groups) * 4u;
}

std::uint64_t interface_flux_bytes(long crossing_track_ends,
                                   int num_groups) {
  return static_cast<std::uint64_t>(crossing_track_ends) *
         static_cast<std::uint64_t>(num_groups) * sizeof(float);
}

}  // namespace antmoc::perf
