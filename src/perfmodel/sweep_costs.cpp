#include "perfmodel/sweep_costs.h"

#include <mutex>

#include "util/error.h"

namespace antmoc::perf {
namespace {

struct State {
  SweepCosts costs;
  bool pinned = false;
};

std::mutex& mtx() {
  static std::mutex m;
  return m;
}

State& state() {
  static State s;
  return s;
}

void check(const SweepCosts& c) {
  require(c.resident > 0.0 && c.otf > 0.0 && c.templated > 0.0 &&
              c.event > 0.0,
          "sweep costs must be positive");
}

}  // namespace

SweepCosts sweep_costs() {
  std::lock_guard<std::mutex> lock(mtx());
  return state().costs;
}

void set_sweep_costs(const SweepCosts& c) {
  check(c);
  std::lock_guard<std::mutex> lock(mtx());
  state().costs = c;
  state().pinned = true;
}

void record_calibration(const SweepCosts& c) {
  check(c);
  std::lock_guard<std::mutex> lock(mtx());
  if (state().pinned) return;
  state().costs = c;
  state().pinned = true;
}

void calibrate_once(const std::function<void()>& fn) {
  static std::once_flag flag;
  std::call_once(flag, fn);
}

void set_otf_cost_ratio(double ratio) {
  require(ratio > 0.0, "track.otf_cost must be positive");
  std::lock_guard<std::mutex> lock(mtx());
  state().costs.otf = ratio * state().costs.resident;
  state().pinned = true;
}

double otf_cost_ratio() {
  std::lock_guard<std::mutex> lock(mtx());
  return state().costs.otf / state().costs.resident;
}

double template_cost_ratio() {
  std::lock_guard<std::mutex> lock(mtx());
  return state().costs.templated / state().costs.resident;
}

double event_cost_ratio() {
  std::lock_guard<std::mutex> lock(mtx());
  return state().costs.event / state().costs.resident;
}

bool sweep_costs_pinned() {
  std::lock_guard<std::mutex> lock(mtx());
  return state().pinned;
}

void reset_sweep_costs_for_test() {
  std::lock_guard<std::mutex> lock(mtx());
  state().costs = SweepCosts{};
  state().pinned = false;
}

}  // namespace antmoc::perf
