#include "track/chord_template.h"

#include <cmath>
#include <map>

namespace antmoc {
namespace {

/// Largest class period considered: classes repeat every c lattice steps,
/// so c beyond the stack height buys nothing and the search stays O(1).
constexpr int kMaxPeriod = 64;

/// Smallest c >= 1 with c * dz = q * h for an integer q >= 1 (within a
/// relative slack that admits non-dyadic but exactly intended ratios —
/// bitwise validation rejects any nominee the FP grids do not honor).
int find_period(double dz, double h) {
  if (!(dz > 0.0) || !(h > 0.0)) return 0;
  for (int c = 1; c <= kMaxPeriod; ++c) {
    const double q = static_cast<double>(c) * dz / h;
    const double qr = std::nearbyint(q);
    if (qr >= 1.0 && std::abs(q - qr) <= 1e-9 * qr) return c;
  }
  return 0;
}

bool matches_reversed(const std::vector<ChordEntry>& fwd,
                      const std::vector<ChordEntry>& bwd) {
  if (fwd.size() != bwd.size()) return false;
  const std::size_t n = fwd.size();
  for (std::size_t i = 0; i < n; ++i) {
    const ChordEntry& a = fwd[i];
    const ChordEntry& b = bwd[n - 1 - i];
    if (a.fsr != b.fsr || a.length != b.length) return false;
  }
  return true;
}

bool matches_shifted(const std::vector<ChordEntry>& stream,
                     const ChordEntry* base, long count, long shift,
                     bool reversed) {
  if (static_cast<long>(stream.size()) != count) return false;
  for (long i = 0; i < count; ++i) {
    const ChordEntry& b = base[reversed ? count - 1 - i : i];
    if (stream[i].fsr != b.fsr + shift || stream[i].length != b.length)
      return false;
  }
  return true;
}

}  // namespace

ChordTemplateCache::ChordTemplateCache(const TrackStacks& stacks) {
  const long n = stacks.num_tracks();
  tmpl_.assign(n, -1);
  shift_.assign(n, 0);
  counts_.assign(n, 0);

  const Geometry& g = stacks.geometry();
  const TrackGenerator2D& gen = stacks.generator();
  const double dz = stacks.dz();
  const double z_lo = stacks.z_lo();

  // Per-zone layer thickness and class period; plus the global period when
  // every layer in the geometry has the same thickness (the common case).
  const int num_zones = g.num_zones();
  std::vector<double> zone_h(num_zones, 0.0);
  std::vector<int> zone_c(num_zones, 0);
  bool uniform = num_zones > 0;
  for (int zi = 0; zi < num_zones; ++zi) {
    const AxialZone& z = g.zone(zi);
    zone_h[zi] = (z.z_hi - z.z_lo) / static_cast<double>(z.num_layers);
    zone_c[zi] = find_period(dz, zone_h[zi]);
    if (zi > 0 && std::abs(zone_h[zi] - zone_h[0]) > 1e-9 * zone_h[0])
      uniform = false;
  }
  const int global_c = uniform && num_zones > 0 ? zone_c[0] : 0;
  const int num_layers = g.num_axial_layers();

  std::vector<ChordEntry> fwd, bwd;
  const int t2d_count = gen.num_tracks();
  const int num_polar = stacks.num_polar();

  for (int t2d = 0; t2d < t2d_count; ++t2d) {
    const double len2 = gen.track(t2d).length;
    for (int p = 0; p < num_polar; ++p) {
      for (int updn = 0; updn < 2; ++updn) {
        const bool up = updn == 0;
        const int nz = up ? stacks.nz_up(t2d, p) : stacks.nz_dn(t2d, p);
        // Phase classes of this sub-stack: key -> template index, or -2
        // for a class whose base failed its own bitwise validation.
        std::map<long, std::int32_t> class_of;
        for (int zi = 0; zi < nz; ++zi) {
          const long id = stacks.id(t2d, p, up, zi);
          const Track3DInfo info = stacks.info(id);

          auto walk_both = [&]() {
            fwd.clear();
            bwd.clear();
            stacks.for_each_segment(info, true, [&](long fsr, double l) {
              fwd.push_back({fsr, l});
            });
            stacks.for_each_segment(info, false, [&](long fsr, double l) {
              bwd.push_back({fsr, l});
            });
          };
          auto count_only = [&]() {
            long count = 0;
            stacks.for_each_segment(info, true,
                                    [&](long, double) { ++count; });
            counts_[id] = count;
          };

          // Candidates must traverse the full axial slab: clipped tracks
          // start or end mid-pattern and share no sequence with their
          // class (decode() produces exactly 0.0 / len2 when unclipped,
          // so the exact comparisons are safe).
          const bool unclipped =
              info.s_entry == 0.0 && info.s_exit == len2;
          int c = 0;
          long zone_tag = 0;
          if (unclipped && num_layers > 0) {
            if (global_c > 0) {
              c = global_c;
            } else {
              // Mixed thicknesses: a track confined to one commensurate
              // zone can still be classified within that zone.
              const double z_a = info.z_at(info.s_entry);
              const double z_b = info.z_at(info.s_exit);
              const double z_min = std::min(z_a, z_b);
              const double z_max = std::max(z_a, z_b);
              const int zone_lo = g.layer_zone(g.layer_at(z_min + 1e-9));
              const int zone_hi = g.layer_zone(g.layer_at(z_max - 1e-9));
              if (zone_lo == zone_hi && zone_c[zone_lo] > 0) {
                c = zone_c[zone_lo];
                zone_tag = zone_lo + 1;
              }
            }
          }
          if (c <= 0) {
            count_only();
            continue;
          }

          // Phase of this track on the intercept lattice.
          const long m =
              std::lround((info.z0 - z_lo) / dz - 0.5);
          const long key = zone_tag * (kMaxPeriod + 1) + (((m % c) + c) % c);

          const auto it = class_of.find(key);
          if (it == class_of.end()) {
            // First member: materialize the template from the generic
            // walk and certify the base itself (reversed-forward must be
            // bitwise identical to the generic backward walk).
            walk_both();
            counts_[id] = static_cast<long>(fwd.size());
            if (!matches_reversed(fwd, bwd)) {
              class_of[key] = -2;
              continue;
            }
            const std::int32_t tidx =
                static_cast<std::int32_t>(templates_.size());
            templates_.push_back(
                {static_cast<long>(entries_.size()),
                 static_cast<long>(fwd.size())});
            entries_.insert(entries_.end(), fwd.begin(), fwd.end());
            class_of[key] = tidx;
            tmpl_[id] = tidx;
            shift_[id] = 0;
          } else if (it->second >= 0) {
            const Template& t = templates_[it->second];
            const ChordEntry* base = entries_.data() + t.first;
            walk_both();
            counts_[id] = static_cast<long>(fwd.size());
            const long shift =
                fwd.empty() ? 0 : fwd.front().fsr - base[0].fsr;
            if (matches_shifted(fwd, base, t.count, shift, false) &&
                matches_shifted(bwd, base, t.count, shift, true)) {
              tmpl_[id] = it->second;
              shift_[id] = shift;
            }
          } else {
            count_only();
          }
        }
      }
    }
  }

  for (long id = 0; id < n; ++id) {
    total_segments_ += counts_[id];
    if (tmpl_[id] >= 0) {
      ++num_eligible_;
      eligible_segments_ += counts_[id];
    }
  }
}

}  // namespace antmoc
