#include "track/track3d.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace antmoc {
namespace {
constexpr double kSTol = 1e-12;
}

TrackStacks::TrackStacks(const TrackGenerator2D& gen, const Geometry& geometry,
                         double z_lo, double z_hi, double z_spacing)
    : gen_(gen),
      geometry_(&geometry),
      z_lo_(z_lo),
      z_hi_(z_hi),
      num_polar_(gen.quadrature().num_polar()) {
  require(z_hi > z_lo, "TrackStacks needs a positive axial extent");
  require(z_spacing > 0.0, "z spacing must be positive");
  require(gen.num_segments() > 0,
          "TrackStacks requires a traced 2D generator (call trace() first)");

  // Correct dz so wz/dz is an integer: mirror images about both z faces and
  // axial-interface lattice shifts then map the intercept lattice onto
  // itself (see the file comment in track3d.h).
  const double wz = z_hi - z_lo;
  const long n = std::max(1L, std::lround(wz / z_spacing));
  dz_ = wz / static_cast<double>(n);

  const auto& quad = gen.quadrature();
  const int t2d_count = gen.num_tracks();
  stacks_.resize(static_cast<std::size_t>(t2d_count) * num_polar_);
  base_.assign(static_cast<std::size_t>(t2d_count) * num_polar_ + 1, 0);

  seg_ends_.resize(t2d_count);
  for (int t = 0; t < t2d_count; ++t) {
    const auto& segs = gen.track(t).segments;
    auto& ends = seg_ends_[t];
    ends.reserve(segs.size());
    double s = 0.0;
    for (const auto& seg : segs) {
      s += seg.length;
      ends.push_back(s);
    }
  }

  long next = 0;
  for (int t = 0; t < t2d_count; ++t) {
    const double len = gen.track(t).length;
    for (int p = 0; p < num_polar_; ++p) {
      const double c = quad.cot_theta(p);
      const double lc = len * c;
      Stack& s = stacks_[static_cast<std::size_t>(t) * num_polar_ + p];
      // Up stack: intercepts z0 in (z_lo - L*cot, z_hi).
      s.m_lo_up = static_cast<int>(std::floor(-lc / dz_ - 0.5 + 1e-9)) + 1;
      const int m_hi_up =
          static_cast<int>(std::floor(wz / dz_ - 0.5 - 1e-9));
      s.nz_up = std::max(0, m_hi_up - s.m_lo_up + 1);
      // Down stack: intercepts in (z_lo, z_hi + L*cot).
      s.m_lo_dn = 0;
      const int m_hi_dn =
          static_cast<int>(std::floor((wz + lc) / dz_ - 0.5 - 1e-9));
      s.nz_dn = std::max(0, m_hi_dn - s.m_lo_dn + 1);

      s.base = next;
      base_[static_cast<std::size_t>(t) * num_polar_ + p] = next;
      next += s.nz_up + s.nz_dn;
    }
  }
  base_.back() = next;
}

long TrackStacks::id(int t2d, int p, bool up, int zindex) const {
  const Stack& s = stack(t2d, p);
  require(zindex >= 0 && zindex < (up ? s.nz_up : s.nz_dn),
          "3D track z-index out of range");
  return s.base + (up ? 0 : s.nz_up) + zindex;
}

int TrackStacks::lattice_index(double z0) const {
  return static_cast<int>(std::lround((z0 - z_lo_) / dz_ - 0.5));
}

Track3DInfo TrackStacks::decode(const Stack& s, int t2d, int p,
                                long id) const {
  Track3DInfo t;
  t.id = id;
  t.track2d = t2d;
  t.polar = p;
  long k = id - s.base;
  if (k < s.nz_up) {
    t.up = true;
    t.zindex = static_cast<int>(k);
    t.z0 = lattice_z(s.m_lo_up + t.zindex);
  } else {
    t.up = false;
    t.zindex = static_cast<int>(k - s.nz_up);
    t.z0 = lattice_z(s.m_lo_dn + t.zindex);
  }
  const auto& quad = gen_.quadrature();
  t.cot = quad.cot_theta(p);
  t.sin_theta = quad.sin_theta(p);
  const double len = gen_.track(t2d).length;
  if (t.up) {
    t.s_entry = std::max(0.0, (z_lo_ - t.z0) / t.cot);
    t.s_exit = std::min(len, (z_hi_ - t.z0) / t.cot);
  } else {
    t.s_entry = std::max(0.0, (t.z0 - z_hi_) / t.cot);
    t.s_exit = std::min(len, (t.z0 - z_lo_) / t.cot);
  }
  return t;
}

Track3DInfo TrackStacks::info(long id) const {
  require(id >= 0 && id < num_tracks(), "3D track id out of range");
  // Locate the stack by binary search over cumulative bases.
  const auto it = std::upper_bound(base_.begin(), base_.end(), id);
  const std::size_t stack_idx =
      static_cast<std::size_t>(it - base_.begin()) - 1;
  const int t2d = static_cast<int>(stack_idx) / num_polar_;
  const int p = static_cast<int>(stack_idx) % num_polar_;
  return decode(stacks_[stack_idx], t2d, p, id);
}

std::vector<Track3DInfo> TrackStacks::all_info() const {
  // Stacks were laid out in (t2d, p) order with contiguous id ranges, so a
  // sequential pass reproduces info(id) for every id with no binary search.
  std::vector<Track3DInfo> out;
  out.reserve(static_cast<std::size_t>(num_tracks()));
  const int t2d_count = gen_.num_tracks();
  for (int t2d = 0; t2d < t2d_count; ++t2d) {
    for (int p = 0; p < num_polar_; ++p) {
      const Stack& s = stack(t2d, p);
      const long count = s.nz_up + s.nz_dn;
      for (long k = 0; k < count; ++k)
        out.push_back(decode(s, t2d, p, s.base + k));
    }
  }
  return out;
}

long TrackStacks::id_for_intercept(int t2d, int p, bool up,
                                   double z0_target) const {
  const Stack& s = stack(t2d, p);
  const int m_lo = up ? s.m_lo_up : s.m_lo_dn;
  const int nz = up ? s.nz_up : s.nz_dn;
  require(nz > 0, "empty 3D track stack in link target");
  int m = lattice_index(z0_target);
  m = std::clamp(m, m_lo, m_lo + nz - 1);
  return s.base + (up ? 0 : s.nz_up) + (m - m_lo);
}

Link3D TrackStacks::link(long id, bool forward, LinkKind z_min_kind,
                         LinkKind z_max_kind) const {
  const Track3DInfo t = info(id);
  const Track2D& t2 = gen_.track(t.track2d);
  const Stack& s = stack(t.track2d, t.polar);
  const double len = t2.length;
  const long n = std::lround((z_hi_ - z_lo_) / dz_);

  // Radial continuation shared by all four sweep/stack cases.
  auto radial = [&](const TrackLink& l2, bool going_up,
                    double z_exit) -> Link3D {
    Link3D out;
    out.face = l2.face;
    if (l2.kind == LinkKind::kVacuum) return out;
    out.kind = l2.kind == LinkKind::kInterface ? Link3D::Kind::kInterface
                                               : Link3D::Kind::kLocal;
    if (l2.forward) {
      // Enter the target 2D track at s'=0 sweeping forward: forward sweep
      // of an up-stack is up-going, of a down-stack down-going.
      const bool target_up = going_up;
      out.track = id_for_intercept(l2.track, t.polar, target_up, z_exit);
      out.forward = true;
    } else {
      // Enter at the far end sweeping backward: backward of a down-stack
      // goes up, backward of an up-stack goes down.
      const bool target_up = !going_up;
      const double target_len = gen_.track(l2.track).length;
      const double z0_target = target_up ? z_exit - target_len * t.cot
                                         : z_exit + target_len * t.cot;
      out.track = id_for_intercept(l2.track, t.polar, target_up, z0_target);
      out.forward = false;
    }
    return out;
  };

  // Axial continuation (exit through a z face).
  auto axial = [&](Face face, LinkKind kind, bool sweep_forward) -> Link3D {
    Link3D out;
    out.face = face;
    if (kind == LinkKind::kVacuum) return out;
    const int m = (t.up ? s.m_lo_up : s.m_lo_dn) + t.zindex;
    if (kind == LinkKind::kReflective) {
      // Mirror the intercept about the face; stack direction flips,
      // sweep direction is preserved. Lattice-exact (see header).
      const double z_face = face == Face::kZMax ? z_hi_ : z_lo_;
      const double z0_target = 2.0 * z_face - t.z0;
      out.kind = Link3D::Kind::kLocal;
      out.track =
          id_for_intercept(t.track2d, t.polar, !t.up, z0_target);
      out.forward = sweep_forward;
      return out;
    }
    // Periodic wrap or axial interface: same stack direction and sweep
    // direction, intercept shifted by one domain height (m -/+ n).
    const long m_shift = face == Face::kZMax ? m - n : m + n;
    const int m_lo = t.up ? s.m_lo_up : s.m_lo_dn;
    const int nz = t.up ? s.nz_up : s.nz_dn;
    const long k = std::clamp(m_shift - m_lo, 0L, static_cast<long>(nz) - 1);
    out.kind = kind == LinkKind::kInterface ? Link3D::Kind::kInterface
                                            : Link3D::Kind::kLocal;
    out.track = s.base + (t.up ? 0 : s.nz_up) + k;
    out.forward = sweep_forward;
    return out;
  };

  if (forward) {
    const bool radial_exit = t.s_exit >= len - kSTol;
    if (radial_exit)
      return radial(t2.fwd_link, /*going_up=*/t.up, t.z_at(t.s_exit));
    // Up-stack forward exits the top; down-stack forward exits the bottom.
    return t.up ? axial(Face::kZMax, z_max_kind, true)
                : axial(Face::kZMin, z_min_kind, true);
  }
  const bool radial_exit = t.s_entry <= kSTol;
  if (radial_exit)
    return radial(t2.bwd_link, /*going_up=*/!t.up, t.z_at(t.s_entry));
  // Up-stack backward exits the bottom; down-stack backward exits the top.
  return t.up ? axial(Face::kZMin, z_min_kind, false)
              : axial(Face::kZMax, z_max_kind, false);
}

double TrackStacks::track_area(const Track3DInfo& t) const {
  const auto& quad = gen_.quadrature();
  return quad.spacing_eff(gen_.track(t.track2d).azim) * dz_ * t.sin_theta;
}

double TrackStacks::track_area(long id) const { return track_area(info(id)); }

double TrackStacks::direction_weight(const Track3DInfo& t) const {
  return gen_.quadrature().direction_weight(gen_.track(t.track2d).azim,
                                            t.polar);
}

double TrackStacks::direction_weight(long id) const {
  return direction_weight(info(id));
}

long TrackStacks::count_segments(const Track3DInfo& t) const {
  long count = 0;
  walk(t, /*forward=*/true, [&](long, double) { ++count; });
  return count;
}

long TrackStacks::count_segments(long id) const {
  return count_segments(info(id));
}

std::vector<Segment3D> TrackStacks::expand(long id) const {
  std::vector<Segment3D> out;
  walk(info(id), /*forward=*/true,
       [&](long fsr, double length) { out.push_back({fsr, length}); });
  return out;
}

long TrackStacks::total_segments() const {
  long total = 0;
  for (long id = 0; id < num_tracks(); ++id) total += count_segments(id);
  return total;
}

}  // namespace antmoc
