#pragma once

/// \file chord_template.h
/// Chord-classified OTF segmentation (paper §4.1 and the chord
/// classification of its ref. [26], OpenMOC-style axial extruded ray
/// tracing).
///
/// All 3D tracks of one (2D track, polar, up/down) stack are axial
/// translates of each other on the shared z-intercept lattice. When the
/// crossed axial layers have equal thickness h commensurate with the
/// lattice spacing dz — c * dz = q * h for small integers (c, q), the
/// common case built by geometry/builder.cpp — translating a track by
/// c lattice steps shifts its chord pattern by exactly q layers with
/// identical projected breakpoints. The segment sequence of every track in
/// a phase class is therefore derivable from ONE classified template: per
/// chord a (fsr, length) entry, expanded for class member k as
/// (fsr + shift_k, length) — a linear scan with one add per chord instead
/// of the per-chord divisions and layer bookkeeping of the generic walk.
///
/// ## Eligibility is certified, not assumed
///
/// Layer boundaries and z-intercepts are built by independently rounded
/// expressions (`zone.z_lo + l * dz_layer`, `z_lo + (m + 0.5) * dz`), so a
/// mathematically exact translation can still differ in the last ulp and
/// geometric pre-checks alone cannot guarantee bitwise identity with the
/// generic walk. The class analysis here only *nominates* candidates; at
/// construction every candidate's template expansion is stream-compared
/// bitwise against the generic `TrackStacks::walk()` in BOTH sweep
/// directions, and any mismatch routes the track through the generic walk
/// forever. `for_each_segment()` output is therefore bitwise identical to
/// the generic walk by construction, template or not.
///
/// Fallback (generic walk) applies to: boundary-clipped tracks (partial
/// axial traverse), tracks crossing non-commensurate or mixed-thickness
/// zones, and any candidate that fails the bitwise validation.
///
/// Segment counts for every track are a construction byproduct
/// (`segment_counts()`), so TrackManager can reuse them instead of its own
/// counting pass. The cache is immutable after construction and safe for
/// concurrent reads from sweep workers.

#include <cstdint>
#include <vector>

#include "track/track3d.h"

namespace antmoc {

/// `track.templates` knob shared by the device solvers: kAuto charges the
/// cache to the arena and falls back to the generic walk when it does not
/// fit; kOff never builds one; kForce throws DeviceOutOfMemory instead of
/// falling back (feeds the degradation ladder, like sweep.privatize).
enum class TemplateMode { kAuto, kOff, kForce };

/// One precomputed chord of a stack template.
struct ChordEntry {
  long fsr = -1;      ///< fsr of the class base track; member adds shift
  double length = 0.0;
};

class ChordTemplateCache {
 public:
  /// Builds, classifies, and bitwise-validates templates for every stack
  /// of `stacks`. Cost: ~2 generic walks per track, paid once.
  ///
  /// Immutability contract: construction is the only mutation; every
  /// member function is const. One cache may be shared by all sweep
  /// workers, devices, and concurrent engine jobs without locking.
  explicit ChordTemplateCache(const TrackStacks& stacks);

  long num_tracks() const { return static_cast<long>(tmpl_.size()); }
  /// True when `id` expands from a validated template.
  bool eligible(long id) const { return tmpl_[id] >= 0; }
  long num_eligible() const { return num_eligible_; }

  /// 3D segment count per track — all tracks, validated byproduct of
  /// construction (TrackManager consumes this instead of re-counting).
  const std::vector<long>& segment_counts() const { return counts_; }
  long total_segments() const { return total_segments_; }
  long eligible_segments() const { return eligible_segments_; }
  /// Fraction of per-sweep segments covered by template expansion.
  double coverage() const {
    return total_segments_ > 0
               ? static_cast<double>(eligible_segments_) /
                     static_cast<double>(total_segments_)
               : 0.0;
  }

  /// Device-arena charge for the template tables ("chord_templates").
  std::size_t bytes() const {
    return entries_.size() * sizeof(ChordEntry) +
           templates_.size() * sizeof(Template) +
           tmpl_.size() * (sizeof(std::int32_t) + sizeof(long));
  }

  /// Template expansion of track `id` in sweep order: calls
  /// f(fsr, length3d) per chord and returns true. Returns false without
  /// calling f when the track is not eligible — the caller then runs the
  /// generic `TrackStacks::for_each_segment`. Output is bitwise identical
  /// to the generic walk (validated at construction).
  template <class F>
  bool for_each_segment(long id, bool forward, F&& f) const {
    const std::int32_t ti = tmpl_[id];
    if (ti < 0) return false;
    const Template& t = templates_[ti];
    const ChordEntry* e = entries_.data() + t.first;
    const long shift = shift_[id];
    if (forward) {
      for (long i = 0; i < t.count; ++i) f(e[i].fsr + shift, e[i].length);
    } else {
      for (long i = t.count - 1; i >= 0; --i) f(e[i].fsr + shift, e[i].length);
    }
    return true;
  }

 private:
  struct Template {
    long first = 0;  ///< offset into entries_
    long count = 0;
  };

  std::vector<ChordEntry> entries_;
  std::vector<Template> templates_;
  std::vector<std::int32_t> tmpl_;  ///< per track; -1 = generic fallback
  std::vector<long> shift_;         ///< per track fsr shift vs class base
  std::vector<long> counts_;        ///< per track segment count
  long num_eligible_ = 0;
  long total_segments_ = 0;
  long eligible_segments_ = 0;
};

}  // namespace antmoc
