#pragma once

/// \file track2d.h
/// 2D base tracks and their segments. In the OTF scheme (paper §3.2.1-2),
/// 2D tracks and 2D segments are the persistent objects; 3D tracks are
/// z-stacked on them and 3D segments are expanded on demand.

#include <vector>

#include "geometry/point.h"

namespace antmoc {

/// What happens to angular flux leaving a track end.
enum class LinkKind {
  kVacuum,     ///< flux is lost
  kReflective, ///< flux re-enters a complementary-angle track here
  kPeriodic,   ///< flux re-enters the same-angle track on the opposite face
  kInterface,  ///< flux is sent to the neighboring spatial domain
};

/// Connection of one track end to its continuation.
struct TrackLink {
  LinkKind kind = LinkKind::kVacuum;
  /// Receiving track uid. For kInterface this indexes the *neighbor
  /// domain's* (identical, modular) track array.
  int track = -1;
  /// True if the continuation enters `track` in its forward direction.
  bool forward = true;
  /// Face of the bounding box this end lies on.
  Face face = Face::kXMin;
};

/// One 2D segment: a chord of a single radial region.
struct Segment2D {
  int region = -1;   ///< radial region id (geometry-wide)
  double length = 0; ///< chord length in the radial plane (cm)
};

struct Track2D {
  Point2 start;
  Point2 end;
  double phi = 0.0;    ///< direction of forward traversal, in [0, pi)
  double length = 0.0;
  int azim = -1;       ///< scalar azimuthal index
  int index_in_azim = -1;

  TrackLink fwd_link;  ///< continuation past `end`
  TrackLink bwd_link;  ///< continuation past `start` (traversed backward)

  std::vector<Segment2D> segments;

  double ux() const { return std::cos(phi); }
  double uy() const { return std::sin(phi); }
};

}  // namespace antmoc
