#include "track/quadrature.h"

#include <cmath>

#include "util/error.h"

namespace antmoc {
namespace {

constexpr double kPi = 3.14159265358979323846;

/// Tabuchi–Yamamoto optimized polar quadrature (sin(theta), weight) per
/// hemisphere, the standard choice in 2D/3D MOC codes.
struct TyRow {
  double sin_theta;
  double weight;
};

const TyRow kTy1[] = {{0.798184, 1.0}};
const TyRow kTy2[] = {{0.363900, 0.212854}, {0.899900, 0.787146}};
const TyRow kTy3[] = {{0.166648, 0.046233},
                      {0.537707, 0.283619},
                      {0.932954, 0.670148}};

/// Gauss–Legendre nodes/weights on mu = cos(theta) in (0, 1), for polar
/// counts beyond the tabulated TY sets. Uses Newton iteration on P_n over
/// (-1, 1) and keeps the positive-mu half of the symmetric rule.
void gauss_legendre_half(int n, std::vector<double>& mu,
                         std::vector<double>& w) {
  const int full = 2 * n;
  for (int i = 0; i < full; ++i) {
    // Initial guess (Abramowitz & Stegun 25.4.30 asymptotic root).
    double x = std::cos(kPi * (i + 0.75) / (full + 0.5));
    double pp = 0.0;
    for (int iter = 0; iter < 100; ++iter) {
      // Evaluate P_full(x) by recurrence.
      double p0 = 1.0, p1 = x;
      for (int k = 2; k <= full; ++k) {
        const double p2 = ((2 * k - 1) * x * p1 - (k - 1) * p0) / k;
        p0 = p1;
        p1 = p2;
      }
      pp = full * (x * p1 - p0) / (x * x - 1.0);
      const double dx = p1 / pp;
      x -= dx;
      if (std::abs(dx) < 1e-15) break;
    }
    if (x <= 0.0) continue;  // keep the mu > 0 half
    mu.push_back(x);
    // Re-evaluate derivative at the converged root for the weight.
    double p0 = 1.0, p1 = x;
    for (int k = 2; k <= full; ++k) {
      const double p2 = ((2 * k - 1) * x * p1 - (k - 1) * p0) / k;
      p0 = p1;
      p1 = p2;
    }
    pp = full * (x * p1 - p0) / (x * x - 1.0);
    w.push_back(2.0 / ((1.0 - x * x) * pp * pp));
  }
}

}  // namespace

Quadrature::Quadrature(int num_azim, double azim_spacing, double width_x,
                       double width_y, int num_polar)
    : num_azim_(num_azim) {
  require(num_azim >= 4 && num_azim % 4 == 0,
          "num_azim must be a positive multiple of 4");
  require(azim_spacing > 0.0, "azimuthal track spacing must be positive");
  require(width_x > 0.0 && width_y > 0.0,
          "quadrature needs a positive radial extent");
  require(num_polar >= 1, "need at least one polar angle");

  const int n2 = num_azim / 2;
  phi_.resize(n2);
  azim_frac_.resize(n2);
  spacing_eff_.resize(n2);
  nx_.resize(n2);
  ny_.resize(n2);

  for (int a = 0; a < n2; ++a) {
    const double phi_des = 2.0 * kPi / num_azim * (a + 0.5);
    // Work in the first quadrant, mirror back afterwards.
    const double phi_q =
        phi_des < kPi / 2.0 ? phi_des : kPi - phi_des;
    const int nx =
        static_cast<int>(width_x / azim_spacing * std::sin(phi_q)) + 1;
    const int ny =
        static_cast<int>(width_y / azim_spacing * std::cos(phi_q)) + 1;
    const double phi_eff = std::atan2(width_y * nx, width_x * ny);
    nx_[a] = nx;
    ny_[a] = ny;
    phi_[a] = phi_des < kPi / 2.0 ? phi_eff : kPi - phi_eff;
    spacing_eff_[a] = width_x / nx * std::sin(phi_eff);
  }

  // Azimuthal weights from the arcs between corrected angles; the scalar
  // set spans [0, pi).
  for (int a = 0; a < n2; ++a) {
    const double lo = (a == 0) ? 0.0 : 0.5 * (phi_[a - 1] + phi_[a]);
    const double hi = (a == n2 - 1) ? kPi : 0.5 * (phi_[a] + phi_[a + 1]);
    azim_frac_[a] = (hi - lo) / kPi;
  }

  // Polar set.
  const TyRow* table = nullptr;
  if (num_polar == 1) table = kTy1;
  if (num_polar == 2) table = kTy2;
  if (num_polar == 3) table = kTy3;
  if (table != nullptr) {
    for (int p = 0; p < num_polar; ++p) {
      sin_theta_.push_back(table[p].sin_theta);
      cos_theta_.push_back(
          std::sqrt(1.0 - table[p].sin_theta * table[p].sin_theta));
      polar_frac_.push_back(table[p].weight);
    }
  } else {
    std::vector<double> mu, w;
    gauss_legendre_half(num_polar, mu, w);
    require(static_cast<int>(mu.size()) == num_polar,
            "Gauss-Legendre generation failed");
    double wsum = 0.0;
    for (double v : w) wsum += v;
    for (int p = 0; p < num_polar; ++p) {
      cos_theta_.push_back(mu[p]);
      sin_theta_.push_back(std::sqrt(1.0 - mu[p] * mu[p]));
      polar_frac_.push_back(w[p] / wsum);
    }
  }
}

}  // namespace antmoc
