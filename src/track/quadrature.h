#pragma once

/// \file quadrature.h
/// Angular quadrature for 3D MOC (the S_N-style discretization of §2.1).
///
/// Azimuthal angles use *cyclic-track correction*: the requested angles and
/// spacing are adjusted so that tracks laid across a W x H box biject onto
/// boundary points — the property reflective/periodic linking and the
/// paper's modular ray tracing (identical track laydown per sub-geometry,
/// §3.2) depend on. Polar angles use the Tabuchi–Yamamoto optimized set for
/// 1-3 angles per hemisphere and Gauss–Legendre above that.
///
/// Weight conventions:
///   * azim_frac(a) sums to 1 over the scalar angles in [0, pi);
///   * polar_frac(p) sums to 1 over the hemisphere;
///   * each concrete direction (a, fwd/bwd, p, up/down) carries solid angle
///     pi * azim_frac(a) * polar_frac(p), so all 4 sign combinations add to
///     4*pi * azim_frac * polar_frac and the full sphere integrates to 4*pi.

#include <vector>

#include "geometry/point.h"

namespace antmoc {

class Quadrature {
 public:
  /// \param num_azim   azimuthal angle count over 2*pi; multiple of 4.
  /// \param azim_spacing  requested radial track spacing (cm).
  /// \param width_x,width_y  radial extent of the (sub-)geometry the tracks
  ///        will be laid on; the cyclic correction is box-specific.
  /// \param num_polar  polar angles per hemisphere (>= 1).
  Quadrature(int num_azim, double azim_spacing, double width_x,
             double width_y, int num_polar);

  // --- azimuthal -----------------------------------------------------------
  int num_azim() const { return num_azim_; }
  /// Scalar azimuthal angles (directions folded into [0, pi)).
  int num_azim_2() const { return num_azim_ / 2; }

  double phi(int a) const { return phi_[a]; }
  double azim_frac(int a) const { return azim_frac_[a]; }
  /// Corrected perpendicular spacing between tracks of angle a.
  double spacing_eff(int a) const { return spacing_eff_[a]; }
  /// Track counts crossing the x-extent (bottom/top) and y-extent edges.
  int nx(int a) const { return nx_[a]; }
  int ny(int a) const { return ny_[a]; }
  /// Total tracks of angle a: nx + ny.
  int num_tracks(int a) const { return nx_[a] + ny_[a]; }

  /// The complementary angle (pi - phi); reflective partners of angle a's
  /// tracks belong to angle complement(a).
  int complement(int a) const { return num_azim_2() - 1 - a; }

  // --- polar -----------------------------------------------------------------
  int num_polar() const { return static_cast<int>(sin_theta_.size()); }
  double sin_theta(int p) const { return sin_theta_[p]; }
  double cos_theta(int p) const { return cos_theta_[p]; }
  /// cot(theta) = dz/ds along the projected 2D arc-length for up-going rays.
  double cot_theta(int p) const { return cos_theta_[p] / sin_theta_[p]; }
  double polar_frac(int p) const { return polar_frac_[p]; }

  /// Solid angle carried by one concrete direction (a, p, one of the four
  /// sign combinations).
  double direction_weight(int a, int p) const {
    constexpr double kPi = 3.14159265358979323846;
    return kPi * azim_frac_[a] * polar_frac_[p];
  }

 private:
  int num_azim_;
  std::vector<double> phi_, azim_frac_, spacing_eff_;
  std::vector<int> nx_, ny_;
  std::vector<double> sin_theta_, cos_theta_, polar_frac_;
};

}  // namespace antmoc
