#pragma once

/// \file generator2d.h
/// Cyclic 2D track laydown, boundary linking, and ray tracing
/// (paper §3.1 stage 3, CPU part).
///
/// Tracks are generated for an arbitrary radial box (a whole geometry or
/// one sub-geometry of the spatial decomposition). Because the quadrature's
/// cyclic correction depends only on the box dimensions, every equally
/// sized sub-geometry gets an *identical* laydown — the paper's modular ray
/// tracing — so an interface link can name the receiving track in the
/// neighbor domain by local uid.

#include <array>
#include <vector>

#include "geometry/geometry.h"
#include "track/quadrature.h"
#include "track/track2d.h"

namespace antmoc {

class TrackGenerator2D {
 public:
  /// Lays tracks across the radial rectangle `box` using `quadrature`
  /// (which must have been built for exactly this box's dimensions).
  /// `face_kinds` gives the link semantics of the four radial faces,
  /// indexed by Face::kXMin..kYMax.
  TrackGenerator2D(const Quadrature& quadrature, const Bounds& box,
                   std::array<LinkKind, 4> face_kinds);

  const Quadrature& quadrature() const { return quadrature_; }
  const Bounds& box() const { return box_; }

  int num_tracks() const { return static_cast<int>(tracks_.size()); }
  const Track2D& track(int uid) const { return tracks_[uid]; }
  Track2D& track(int uid) { return tracks_[uid]; }
  const std::vector<Track2D>& tracks() const { return tracks_; }

  /// uid of track `i` of azimuthal angle `a` (i < quadrature.num_tracks(a)).
  int uid(int azim, int i) const { return azim_offset_[azim] + i; }

  /// Traces every track through `geometry`, filling segments. The geometry
  /// may extend beyond the box (sub-domain tracing against the global
  /// geometry); only the chord inside the box is segmented.
  void trace(const Geometry& geometry);

  /// Total number of 2D segments across all tracks (0 before trace()).
  long num_segments() const;

  /// Sum over tracks of spacing_eff * sum(segment lengths in region r):
  /// the track-based estimate of each radial region's area. Valid after
  /// trace(); used by volume/normalization logic and accuracy tests.
  std::vector<double> region_areas(int num_regions) const;

 private:
  void lay_tracks();
  void link_tracks(const std::array<LinkKind, 4>& face_kinds);

  const Quadrature& quadrature_;
  Bounds box_;
  std::vector<Track2D> tracks_;
  std::vector<int> azim_offset_;
};

}  // namespace antmoc
