#include "track/generator2d.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/error.h"

namespace antmoc {
namespace {

constexpr double kPi = 3.14159265358979323846;
constexpr double kLinkTol = 1e-6;   // endpoint coincidence tolerance (cm)
constexpr double kTraceNudge = 1e-9;

/// Quantized-point key for endpoint lookup.
struct PointKey {
  long long qx, qy;
  auto operator<=>(const PointKey&) const = default;
};

PointKey make_key(Point2 p) {
  // Cell size 4x the tolerance; neighbors are probed on lookup, so points
  // within kLinkTol always share at least one probed cell.
  constexpr double q = 4.0 * kLinkTol;
  return {static_cast<long long>(std::llround(p.x / q)),
          static_cast<long long>(std::llround(p.y / q))};
}

struct Endpoint {
  int uid;
  bool is_start;
};

}  // namespace

TrackGenerator2D::TrackGenerator2D(const Quadrature& quadrature,
                                   const Bounds& box,
                                   std::array<LinkKind, 4> face_kinds)
    : quadrature_(quadrature), box_(box) {
  require(box.width_x() > 0 && box.width_y() > 0,
          "track box must have positive extent");
  lay_tracks();
  link_tracks(face_kinds);
}

void TrackGenerator2D::lay_tracks() {
  const auto& q = quadrature_;
  const double wx = box_.width_x();
  const double wy = box_.width_y();

  azim_offset_.assign(q.num_azim_2() + 1, 0);
  for (int a = 0; a < q.num_azim_2(); ++a)
    azim_offset_[a + 1] = azim_offset_[a] + q.num_tracks(a);
  tracks_.reserve(azim_offset_.back());

  for (int a = 0; a < q.num_azim_2(); ++a) {
    const double phi = q.phi(a);
    const double ux = std::cos(phi);
    const double uy = std::sin(phi);
    const int nx = q.nx(a);
    const int ny = q.ny(a);
    const double dx = wx / nx;
    const double dy = wy / ny;

    std::vector<Point2> starts;
    starts.reserve(nx + ny);
    // All tracks move upward (phi in (0, pi)); nx of them enter through the
    // bottom edge, ny through the left (phi < pi/2) or right edge.
    for (int i = 0; i < nx; ++i)
      starts.push_back({box_.x_min + dx * (i + 0.5), box_.y_min});
    for (int j = 0; j < ny; ++j) {
      if (phi < kPi / 2.0)
        starts.push_back({box_.x_min, box_.y_min + dy * (j + 0.5)});
      else
        starts.push_back({box_.x_max, box_.y_min + dy * (j + 0.5)});
    }

    int index_in_azim = 0;
    for (const Point2 s : starts) {
      // Exit parameter through the box.
      double t = kInfDistance;
      if (ux > 0.0) t = std::min(t, (box_.x_max - s.x) / ux);
      if (ux < 0.0) t = std::min(t, (box_.x_min - s.x) / ux);
      if (uy > 0.0) t = std::min(t, (box_.y_max - s.y) / uy);
      require(t > 0.0 && t < kInfDistance, "degenerate track laydown");

      Point2 e{s.x + ux * t, s.y + uy * t};
      // Snap the exit coordinate exactly onto the face it crosses, so
      // cyclic endpoints coincide bit-for-bit as far as possible.
      if (std::abs(e.x - box_.x_min) < kLinkTol) e.x = box_.x_min;
      if (std::abs(e.x - box_.x_max) < kLinkTol) e.x = box_.x_max;
      if (std::abs(e.y - box_.y_max) < kLinkTol) e.y = box_.y_max;

      Track2D track;
      track.start = s;
      track.end = e;
      track.phi = phi;
      track.length = s.distance(e);
      track.azim = a;
      track.index_in_azim = index_in_azim++;
      tracks_.push_back(std::move(track));
    }
  }
}

void TrackGenerator2D::link_tracks(
    const std::array<LinkKind, 4>& face_kinds) {
  // Endpoint lookup: quantized point -> endpoints at that point.
  std::map<PointKey, std::vector<Endpoint>> lookup;
  for (int uid = 0; uid < num_tracks(); ++uid) {
    lookup[make_key(tracks_[uid].start)].push_back({uid, true});
    lookup[make_key(tracks_[uid].end)].push_back({uid, false});
  }

  auto face_of = [&](Point2 p, double ox, double oy) -> Face {
    // The face this outgoing direction leaves through. Corner points pick
    // the face the direction actually exits.
    if (std::abs(p.x - box_.x_min) < kLinkTol && ox < 0.0) return Face::kXMin;
    if (std::abs(p.x - box_.x_max) < kLinkTol && ox > 0.0) return Face::kXMax;
    if (std::abs(p.y - box_.y_min) < kLinkTol && oy < 0.0) return Face::kYMin;
    if (std::abs(p.y - box_.y_max) < kLinkTol && oy > 0.0) return Face::kYMax;
    fail<GeometryError>("track endpoint is not on the box boundary");
  };

  auto find_entry = [&](Point2 p, double dx, double dy,
                        TrackLink& out) -> bool {
    const PointKey base = make_key(p);
    for (long long ix = -1; ix <= 1; ++ix)
      for (long long iy = -1; iy <= 1; ++iy) {
        const auto it = lookup.find({base.qx + ix, base.qy + iy});
        if (it == lookup.end()) continue;
        for (const Endpoint ep : it->second) {
          const Track2D& cand = tracks_[ep.uid];
          const Point2 cp = ep.is_start ? cand.start : cand.end;
          if (std::abs(cp.x - p.x) > kLinkTol ||
              std::abs(cp.y - p.y) > kLinkTol)
            continue;
          // Incoming direction at this endpoint when traversing the
          // candidate forward (from start) or backward (from end).
          const double sgn = ep.is_start ? 1.0 : -1.0;
          const double cx = sgn * cand.ux();
          const double cy = sgn * cand.uy();
          if (cx * dx + cy * dy > 1.0 - 1e-9) {
            out.track = ep.uid;
            out.forward = ep.is_start;
            return true;
          }
        }
      }
    return false;
  };

  auto link_end = [&](Point2 p, double ox, double oy) -> TrackLink {
    TrackLink link;
    link.face = face_of(p, ox, oy);
    link.kind = face_kinds[static_cast<int>(link.face)];
    if (link.kind == LinkKind::kVacuum) return link;

    Point2 target = p;
    double dx = ox, dy = oy;
    switch (link.kind) {
      case LinkKind::kReflective:
        if (link.face == Face::kXMin || link.face == Face::kXMax)
          dx = -dx;
        else
          dy = -dy;
        break;
      case LinkKind::kPeriodic:
      case LinkKind::kInterface:
        // Shift to the opposite face: for periodic BCs the flux re-enters
        // this domain there; for interfaces the (modular, identical)
        // neighbor layout makes the local uid valid in the neighbor.
        switch (link.face) {
          case Face::kXMin: target.x += box_.width_x(); break;
          case Face::kXMax: target.x -= box_.width_x(); break;
          case Face::kYMin: target.y += box_.width_y(); break;
          case Face::kYMax: target.y -= box_.width_y(); break;
          default: break;
        }
        break;
      case LinkKind::kVacuum:
        break;
    }
    require(find_entry(target, dx, dy, link),
            "no matching track for a boundary link (cyclic laydown "
            "violated?) at (" +
                std::to_string(p.x) + ", " + std::to_string(p.y) + ")");
    return link;
  };

  for (auto& t : tracks_) {
    t.fwd_link = link_end(t.end, t.ux(), t.uy());
    t.bwd_link = link_end(t.start, -t.ux(), -t.uy());
  }
}

void TrackGenerator2D::trace(const Geometry& geometry) {
  for (auto& track : tracks_) {
    track.segments.clear();
    const double ux = track.ux();
    const double uy = track.uy();
    Point2 pos = track.start;
    double remaining = track.length;
    int guard = 0;

    while (remaining > 1e-9) {
      require(++guard < 1000000, "2D ray trace failed to make progress");
      const Point2 probe{pos.x + ux * kTraceNudge, pos.y + uy * kTraceNudge};
      const double d =
          geometry.distance_to_boundary(probe, ux, uy) + kTraceNudge;
      const double step = std::min(d, remaining);
      const Point2 mid{pos.x + ux * step * 0.5, pos.y + uy * step * 0.5};
      const int region = geometry.find_radial(mid).region;

      if (!track.segments.empty() && track.segments.back().region == region)
        track.segments.back().length += step;  // merge across formal walls
      else
        track.segments.push_back({region, step});

      pos.x += ux * step;
      pos.y += uy * step;
      remaining -= step;
    }
  }
}

long TrackGenerator2D::num_segments() const {
  long total = 0;
  for (const auto& t : tracks_) total += static_cast<long>(t.segments.size());
  return total;
}

std::vector<double> TrackGenerator2D::region_areas(int num_regions) const {
  // Each azimuthal angle independently tiles the plane; combine the
  // per-angle estimates with the azimuthal weights.
  std::vector<double> areas(num_regions, 0.0);
  for (const auto& t : tracks_) {
    const double w = quadrature_.azim_frac(t.azim) *
                     quadrature_.spacing_eff(t.azim);
    for (const auto& seg : t.segments) areas[seg.region] += w * seg.length;
  }
  return areas;
}

}  // namespace antmoc
