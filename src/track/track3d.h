#pragma once

/// \file track3d.h
/// 3D track stacks and on-the-fly (OTF) axial ray tracing (paper §3.2.1-2,
/// §4.1, and the chord-classification method of [26]).
///
/// A 3D track is never stored as coordinates. It is an *index*
/// (2D track, polar angle, up/down, z-index) from which its full geometry
/// — the z-intercept and the projected arc interval inside the axial slab
/// — is recomputed in O(1). 3D segments are expanded on demand by walking
/// the stored 2D segments and splitting them at axial-layer crossings;
/// this is exactly the paper's OTF design that makes the 100-billion-track
/// scale feasible on 16 GB devices.
///
/// ## Axial laydown and exact reflective linking
///
/// All stacks share one global z-intercept lattice
///     z0(m) = z_lo + (m + 0.5) * dz,   m in Z,
/// with dz corrected to wz / round(wz / dz_requested). Because wz/dz is an
/// integer, mirror images about *both* z faces map the lattice onto itself
/// (2*z_face - z0(m) is again a lattice point), so axial reflective links —
/// and axial domain-interface links — are exact: an exiting ray continues
/// on a track that starts at exactly the exit point. Radial links that
/// re-enter a track at its far end involve the target track's own length
/// and are matched to the nearest lattice intercept (quantization <= dz/2,
/// vanishing with dz; shared by every solver in this repo, so solver
/// cross-comparisons are unaffected).
///
/// Sweep-direction convention (covers all of 4*pi without double counting):
///   up-stack forward    : (+phi_2d, +mu)      up-stack backward  : (phi+pi, -mu)
///   down-stack forward  : (+phi_2d, -mu)      down-stack backward: (phi+pi, +mu)

#include <algorithm>
#include <vector>

#include "geometry/geometry.h"
#include "track/generator2d.h"

namespace antmoc {

/// Fully decoded geometry of one 3D track.
struct Track3DInfo {
  int track2d = -1;
  int polar = -1;
  bool up = true;     ///< mu > 0 on forward traversal
  int zindex = -1;    ///< index within its stack
  long id = -1;

  double z0 = 0.0;      ///< z at projected arc length s = 0
  double s_entry = 0.0; ///< first s inside [z_lo, z_hi]
  double s_exit = 0.0;  ///< last s inside [z_lo, z_hi]
  double cot = 0.0;     ///< cot(theta) > 0
  double sin_theta = 1.0;

  /// z at projected arc length s.
  double z_at(double s) const { return up ? z0 + s * cot : z0 - s * cot; }
  /// True 3D path length between entry and exit.
  double length3d() const { return (s_exit - s_entry) / sin_theta; }
};

/// Continuation of angular flux leaving one end of a 3D track.
struct Link3D {
  enum class Kind {
    kVacuum,    ///< flux lost
    kLocal,     ///< target is a 3D track in this domain
    kInterface, ///< target id is valid in the neighbor across `face`
  };
  Kind kind = Kind::kVacuum;
  long track = -1;
  /// Deposit into the target's forward-sweep incoming flux (else backward).
  bool forward = true;
  Face face = Face::kXMin;  ///< exit face (meaningful for kInterface)
};

/// One expanded 3D segment.
struct Segment3D {
  long fsr = -1;
  double length = 0.0;  ///< true 3D chord length
};

class TrackStacks {
 public:
  /// \param gen   traced 2D track generator (segments must exist).
  /// \param geometry  supplies axial layers for segment expansion.
  /// \param z_lo,z_hi axial extent of this (sub-)domain.
  /// \param z_spacing requested z-intercept spacing; corrected to divide wz.
  TrackStacks(const TrackGenerator2D& gen, const Geometry& geometry,
              double z_lo, double z_hi, double z_spacing);

  const TrackGenerator2D& generator() const { return gen_; }
  const Geometry& geometry() const { return *geometry_; }

  long num_tracks() const { return base_.back(); }
  double dz() const { return dz_; }
  double z_lo() const { return z_lo_; }
  double z_hi() const { return z_hi_; }
  int num_polar() const { return gen_.quadrature().num_polar(); }

  int nz_up(int t2d, int p) const { return stack(t2d, p).nz_up; }
  int nz_dn(int t2d, int p) const { return stack(t2d, p).nz_dn; }

  long id(int t2d, int p, bool up, int zindex) const;
  Track3DInfo info(long id) const;

  /// Decodes every track in one sequential pass over the stacks — no
  /// per-id binary search. out[id] == info(id) for all ids.
  std::vector<Track3DInfo> all_info() const;

  /// Flux continuation for the given sweep direction of track `id`.
  /// `z_min_kind` / `z_max_kind` give the axial boundary semantics
  /// (kVacuum, kReflective, kPeriodic, or kInterface for an axial
  /// decomposition neighbor).
  Link3D link(long id, bool forward, LinkKind z_min_kind,
              LinkKind z_max_kind) const;

  /// Cross-sectional area carried by this track: radial spacing times the
  /// perpendicular axial spacing dz * sin(theta).
  double track_area(long id) const;
  double track_area(const Track3DInfo& t) const;

  /// Quadrature weight (solid angle) of one sweep direction of this track.
  double direction_weight(long id) const;
  double direction_weight(const Track3DInfo& t) const;

  /// Expands 3D segments in sweep order and calls f(fsr, length3d) for
  /// each. `forward == false` walks the track in reverse (the backward
  /// sweep of the transport kernel).
  template <class F>
  void for_each_segment(long id, bool forward, F&& f) const {
    walk(info(id), forward, std::forward<F>(f));
  }
  template <class F>
  void for_each_segment(const Track3DInfo& t, bool forward, F&& f) const {
    walk(t, forward, std::forward<F>(f));
  }

  /// Number of 3D segments of this track (direction independent).
  long count_segments(long id) const;
  long count_segments(const Track3DInfo& t) const;

  /// Materializes the segments of one track in forward order.
  std::vector<Segment3D> expand(long id) const;

  /// Total 3D segments across all tracks (one expansion pass).
  long total_segments() const;

 private:
  struct Stack {
    long base = 0;  ///< first id of this stack's up tracks
    int nz_up = 0;
    int nz_dn = 0;
    int m_lo_up = 0;
    int m_lo_dn = 0;
  };

  const Stack& stack(int t2d, int p) const {
    return stacks_[static_cast<std::size_t>(t2d) * num_polar_ + p];
  }

  /// z-intercept of lattice index m.
  double lattice_z(int m) const { return z_lo_ + (m + 0.5) * dz_; }
  /// Nearest lattice index for an intercept.
  int lattice_index(double z0) const;

  long id_for_intercept(int t2d, int p, bool up, double z0_target) const;

  /// Decodes track `id` given its already-located stack (shared by the
  /// binary-search info() and the sequential all_info()).
  Track3DInfo decode(const Stack& s, int t2d, int p, long id) const;

  template <class F>
  void walk(const Track3DInfo& t, bool forward, F&& f) const;

  const TrackGenerator2D& gen_;
  const Geometry* geometry_;
  double z_lo_, z_hi_, dz_;
  int num_polar_;
  std::vector<Stack> stacks_;
  std::vector<long> base_;  ///< per-(t2d,p) cumulative first id, plus total
  /// Per 2D track: cumulative segment end positions (s at segment ends).
  std::vector<std::vector<double>> seg_ends_;
};

/// Precomputed per-track sweep-kernel inputs: the decoded Track3DInfo plus
/// the combined quadrature weight w = direction_weight * track_area. The
/// seed sweeps decoded every track on every item of every iteration (three
/// binary searches over the stack bases); this cache replaces all of that
/// with one indexed load. Device solvers charge bytes() against their
/// memory arena so the cache honestly competes with resident segments, and
/// they fall back to on-the-fly decode when the arena cannot afford it.
///
/// Immutability contract: filled entirely by the constructor, const-only
/// afterwards — safe to share across sweep threads and concurrent engine
/// jobs without synchronization.
class TrackInfoCache {
 public:
  explicit TrackInfoCache(const TrackStacks& stacks)
      : infos_(stacks.all_info()), weights_(infos_.size()) {
    for (std::size_t id = 0; id < infos_.size(); ++id)
      weights_[id] =
          stacks.direction_weight(infos_[id]) * stacks.track_area(infos_[id]);
  }

  long size() const { return static_cast<long>(infos_.size()); }
  const Track3DInfo& operator[](long id) const { return infos_[id]; }
  /// direction_weight(id) * track_area(id).
  double weight(long id) const { return weights_[id]; }

  /// Arena charge for a cache over n tracks.
  static std::size_t bytes_for(long n) {
    return static_cast<std::size_t>(n) *
           (sizeof(Track3DInfo) + sizeof(double));
  }
  std::size_t bytes() const { return bytes_for(size()); }

 private:
  std::vector<Track3DInfo> infos_;
  std::vector<double> weights_;
};

// ---------------------------------------------------------------------------
// Template implementation: the OTF axial walk.
// ---------------------------------------------------------------------------

template <class F>
void TrackStacks::walk(const Track3DInfo& t, bool forward, F&& f) const {
  const Track2D& t2 = gen_.track(t.track2d);
  const auto& ends = seg_ends_[t.track2d];
  const Geometry& g = *geometry_;
  const double sgn_z = t.up ? +1.0 : -1.0;  // dz/ds along forward param
  constexpr double kSTol = 1e-12;

  // The walk always proceeds over s in [s_entry, s_exit]; `forward` only
  // chooses the direction of travel.
  if (forward) {
    double s = t.s_entry;
    // First 2D segment overlapping s (ends[] is the cumulative end grid).
    std::size_t si = 0;
    while (si < ends.size() && ends[si] <= s + kSTol) ++si;
    int layer = g.layer_at(t.z_at(s) + sgn_z * 1e-9);
    while (s < t.s_exit - kSTol && si < ends.size()) {
      const double s_seg_end = std::min(ends[si], t.s_exit);
      const int region = t2.segments[si].region;
      while (s < s_seg_end - kSTol) {
        // Next axial-layer crossing along the travel direction.
        const double z_next =
            t.up ? g.layer_z_hi(layer) : g.layer_z_lo(layer);
        double s_cross = (t.up ? (z_next - t.z0) : (t.z0 - z_next)) / t.cot;
        if (s_cross <= s + kSTol) s_cross = s_seg_end;  // grazing guard
        const double s_next = std::min(s_seg_end, s_cross);
        f(g.fsr_id(region, layer), (s_next - s) / t.sin_theta);
        if (s_next >= s_cross - kSTol && s_next < t.s_exit - kSTol) {
          layer += t.up ? 1 : -1;
          layer = std::clamp(layer, 0, g.num_axial_layers() - 1);
        }
        s = s_next;
      }
      ++si;
    }
  } else {
    double s = t.s_exit;
    // Last 2D segment overlapping s.
    std::size_t si = ends.size();
    while (si > 0 && ends[si - 1] >= s - kSTol) --si;
    if (si == ends.size()) --si;
    int layer = g.layer_at(t.z_at(s) - sgn_z * 1e-9);
    while (s > t.s_entry + kSTol) {
      const double s_seg_begin =
          std::max(si == 0 ? 0.0 : ends[si - 1], t.s_entry);
      const int region = t2.segments[si].region;
      while (s > s_seg_begin + kSTol) {
        // Traveling backward: z moves opposite to the forward sense.
        const double z_next =
            t.up ? g.layer_z_lo(layer) : g.layer_z_hi(layer);
        double s_cross = (t.up ? (z_next - t.z0) : (t.z0 - z_next)) / t.cot;
        if (s_cross >= s - kSTol) s_cross = s_seg_begin;
        const double s_next = std::max(s_seg_begin, s_cross);
        f(g.fsr_id(region, layer), (s - s_next) / t.sin_theta);
        if (s_next <= s_cross + kSTol && s_next > t.s_entry + kSTol) {
          layer -= t.up ? 1 : -1;
          layer = std::clamp(layer, 0, g.num_axial_layers() - 1);
        }
        s = s_next;
      }
      if (si == 0) break;
      --si;
    }
  }
}

}  // namespace antmoc
