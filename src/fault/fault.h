#pragma once

/// \file fault.h
/// Deterministic fault injection for robustness tests and benchmarks.
///
/// Production code marks *injection points* — `fault::point("gpusim.alloc")`
/// — at places where real systems fail: device allocations, message sends,
/// solver iterations. A test or benchmark arms *plans* against those points
/// ("throw DeviceOutOfMemory on the 3rd allocation", "delay rank 1's sends
/// by 20 ms") so failure scenarios that only appear at 4,000-node scale can
/// be scripted on a laptop.
///
/// Disabled cost: with no plans armed, point() is a single relaxed atomic
/// load and a predicted branch — safe to leave in hot-ish paths (it is kept
/// out of per-segment loops regardless).
///
/// Plans can also be scripted from a run configuration (util/config):
///
///   fault:
///     plans: "gpusim.alloc throw oom nth=3; comm.send delay ms=20 rank=1"
///
/// Spec grammar (whitespace-separated tokens, ';' between plans):
///   <point> [throw|delay] [oom|solver|comm|generic] [nth=N] [rank=R]
///           [ms=X] [repeat]

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace antmoc {
class Config;
}

namespace antmoc::fault {

/// What an armed plan does when it triggers.
enum class Action { kThrow, kDelay };

/// Exception type thrown by Action::kThrow plans.
enum class ErrorKind { kGeneric, kDeviceOutOfMemory, kSolver, kComm };

struct Plan {
  std::string point;              ///< injection-point name, e.g. "gpusim.alloc"
  Action action = Action::kThrow;
  ErrorKind error = ErrorKind::kGeneric;
  std::uint64_t nth = 1;          ///< trigger on the Nth matching hit (1-based)
  bool repeat = false;            ///< keep triggering on every hit >= nth
  int rank = -1;                  ///< only hits from this rank (-1 = any)
  double delay_ms = 0.0;          ///< sleep duration for Action::kDelay
  std::string message;            ///< optional override for the thrown text
};

/// Parses one plan spec (grammar above); throws ConfigError on bad tokens.
Plan parse_plan(const std::string& spec);

/// One registered injection point: where production code calls
/// fault::point() and what failing there simulates.
struct PointInfo {
  const char* name;
  const char* description;
};

/// Every injection point compiled into the binary, sorted by name — the
/// table behind the `--fault-list` CLI mode. Kept by hand next to the
/// point() call sites; fault_test cross-checks it against the source.
const std::vector<PointInfo>& known_points();

/// Global plan registry. Thread-safe: ranks hit points concurrently.
class Injector {
 public:
  static Injector& instance();

  /// True when at least one plan is armed. One relaxed atomic load: the
  /// entire cost of every injection point in a fault-free run.
  static bool enabled() {
    return armed_count_.load(std::memory_order_relaxed) > 0;
  }

  void arm(Plan plan);

  /// Arms every plan in the config's "fault.plans" key (no-op if absent).
  void configure(const Config& config);

  void disarm_all();

  /// Total hits recorded at a point since the last disarm_all(). Hits are
  /// only counted while at least one plan is armed.
  std::uint64_t hits(const std::string& point) const;

  /// Called by point() when enabled: counts the hit and executes any
  /// matching plan (throws or sleeps).
  void fire(const char* point, int rank);

  Injector(const Injector&) = delete;
  Injector& operator=(const Injector&) = delete;

 private:
  Injector() = default;

  struct Armed {
    Plan plan;
    std::uint64_t hits = 0;   ///< hits matching this plan's point + rank
    bool spent = false;       ///< one-shot plan already triggered
  };

  static std::atomic<int> armed_count_;
  mutable std::mutex mutex_;
  std::vector<Armed> plans_;
  std::vector<std::pair<std::string, std::uint64_t>> hit_counts_;
};

/// Marks a named injection point. `rank` tags the hit for rank-filtered
/// plans (-1 when the caller has no rank identity).
inline void point(const char* name, int rank = -1) {
  if (!Injector::enabled()) return;
  Injector::instance().fire(name, rank);
}

/// RAII test helper: arms a plan on construction, disarms *all* plans on
/// destruction so a failed test cannot leak faults into the next one.
class ScopedPlan {
 public:
  explicit ScopedPlan(Plan plan) { Injector::instance().arm(std::move(plan)); }
  explicit ScopedPlan(const std::string& spec) {
    Injector::instance().arm(parse_plan(spec));
  }
  ~ScopedPlan() { Injector::instance().disarm_all(); }
  ScopedPlan(const ScopedPlan&) = delete;
  ScopedPlan& operator=(const ScopedPlan&) = delete;
};

}  // namespace antmoc::fault
