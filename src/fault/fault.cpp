#include "fault/fault.h"

#include <chrono>
#include <sstream>
#include <thread>

#include "util/config.h"
#include "util/error.h"
#include "util/log.h"

namespace antmoc::fault {

std::atomic<int> Injector::armed_count_{0};

Injector& Injector::instance() {
  static Injector injector;
  return injector;
}

namespace {

[[noreturn]] void throw_kind(ErrorKind kind, const std::string& msg) {
  switch (kind) {
    case ErrorKind::kDeviceOutOfMemory:
      throw DeviceOutOfMemory(msg);
    case ErrorKind::kSolver:
      throw SolverError(msg);
    case ErrorKind::kComm:
      throw CommTimeout(msg);
    case ErrorKind::kGeneric:
      break;
  }
  throw Error(msg);
}

const char* kind_name(ErrorKind kind) {
  switch (kind) {
    case ErrorKind::kDeviceOutOfMemory:
      return "DeviceOutOfMemory";
    case ErrorKind::kSolver:
      return "SolverError";
    case ErrorKind::kComm:
      return "CommTimeout";
    default:
      return "Error";
  }
}

}  // namespace

const std::vector<PointInfo>& known_points() {
  static const std::vector<PointInfo> points = {
      {"checkpoint.write",
       "before a rank writes its per-domain checkpoint shards"},
      {"cmfd.solve",
       "before each CMFD coarse solve (a throw degrades the solver to "
       "plain unaccelerated iteration for the rest of the run)"},
      {"comm.allreduce", "entry of allreduce / allreduce_slots"},
      {"comm.barrier", "entry of the barrier collective"},
      {"comm.irecv", "posting a nonblocking receive"},
      {"comm.isend", "posting a nonblocking send"},
      {"comm.recv", "entry of a blocking receive"},
      {"comm.send", "entry of a buffered send"},
      {"comm.shrink", "entry of the survivor-only shrink collective"},
      {"comm.wait", "entry of wait/wait_any/wait_all/test"},
      {"domain.sweep",
       "before each hosted domain's transport sweep (delay plans here "
       "fake a straggler for the drift gauge)"},
      {"engine.job",
       "start of each scenario job's execution on the engine"},
      {"gpusim.alloc", "device arena allocation"},
      {"migrate.agree", "takeover phase 1: agreeing the dead set"},
      {"migrate.elect", "takeover phase 2: electing domain adopters"},
      {"migrate.rehydrate",
       "takeover phase 3: rewinding domains to the shard recovery line"},
      {"migrate.rewire",
       "takeover phase 4: re-running the interface-list handshake"},
      {"migrate.voluntary", "start of a drift-triggered migration"},
      {"solver.iteration", "top of each power iteration on each rank"},
  };
  return points;
}

Plan parse_plan(const std::string& spec) {
  std::istringstream in(spec);
  Plan plan;
  if (!(in >> plan.point))
    fail<ConfigError>("fault plan spec is empty");
  std::string token;
  while (in >> token) {
    if (token == "throw") {
      plan.action = Action::kThrow;
    } else if (token == "delay") {
      plan.action = Action::kDelay;
    } else if (token == "oom") {
      plan.error = ErrorKind::kDeviceOutOfMemory;
    } else if (token == "solver") {
      plan.error = ErrorKind::kSolver;
    } else if (token == "comm") {
      plan.error = ErrorKind::kComm;
    } else if (token == "generic") {
      plan.error = ErrorKind::kGeneric;
    } else if (token == "repeat") {
      plan.repeat = true;
    } else if (token.rfind("nth=", 0) == 0) {
      plan.nth = std::stoull(token.substr(4));
      if (plan.nth == 0)
        fail<ConfigError>("fault plan nth must be >= 1: " + spec);
    } else if (token.rfind("rank=", 0) == 0) {
      plan.rank = std::stoi(token.substr(5));
    } else if (token.rfind("ms=", 0) == 0) {
      plan.delay_ms = std::stod(token.substr(3));
    } else {
      fail<ConfigError>("unknown fault plan token '" + token + "' in: " +
                        spec);
    }
  }
  return plan;
}

void Injector::arm(Plan plan) {
  std::lock_guard lock(mutex_);
  plans_.push_back({std::move(plan), 0, false});
  armed_count_.store(static_cast<int>(plans_.size()),
                     std::memory_order_relaxed);
}

void Injector::configure(const Config& config) {
  const std::string specs = config.get_string("fault.plans", "");
  std::size_t start = 0;
  while (start <= specs.size()) {
    const std::size_t end = specs.find(';', start);
    const std::string one =
        specs.substr(start, end == std::string::npos ? end : end - start);
    if (one.find_first_not_of(" \t") != std::string::npos)
      arm(parse_plan(one));
    if (end == std::string::npos) break;
    start = end + 1;
  }
}

void Injector::disarm_all() {
  std::lock_guard lock(mutex_);
  plans_.clear();
  hit_counts_.clear();
  armed_count_.store(0, std::memory_order_relaxed);
}

std::uint64_t Injector::hits(const std::string& point) const {
  std::lock_guard lock(mutex_);
  for (const auto& [name, count] : hit_counts_)
    if (name == point) return count;
  return 0;
}

void Injector::fire(const char* point, int rank) {
  // Decide under the lock, act (sleep/throw) outside it so a delayed rank
  // does not serialize every other rank's injection points behind it.
  double sleep_ms = 0.0;
  bool do_throw = false;
  ErrorKind kind = ErrorKind::kGeneric;
  std::string message;

  {
    std::lock_guard lock(mutex_);
    bool counted = false;
    for (auto& [name, count] : hit_counts_)
      if (name == point) {
        ++count;
        counted = true;
        break;
      }
    if (!counted) hit_counts_.emplace_back(point, 1);

    for (auto& armed : plans_) {
      const Plan& plan = armed.plan;
      if (plan.point != point) continue;
      if (plan.rank >= 0 && rank >= 0 && plan.rank != rank) continue;
      ++armed.hits;
      const bool due = plan.repeat ? armed.hits >= plan.nth
                                   : armed.hits == plan.nth && !armed.spent;
      if (!due) continue;
      armed.spent = true;
      if (plan.action == Action::kDelay) {
        sleep_ms += plan.delay_ms;
      } else {
        do_throw = true;
        kind = plan.error;
        message = plan.message.empty()
                      ? std::string("fault injected at '") + point +
                            "' (hit " + std::to_string(armed.hits) +
                            (rank >= 0 ? ", rank " + std::to_string(rank)
                                       : std::string()) +
                            "): " + kind_name(plan.error)
                      : plan.message;
      }
    }
  }

  if (sleep_ms > 0.0)
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(sleep_ms));
  if (do_throw) {
    log::error("fault: ", message);
    throw_kind(kind, message);
  }
}

}  // namespace antmoc::fault
