#!/bin/sh
# Regenerates the paper artifact for c5g7-track-management (see benchmarks/README.md).
# The artifact's cluster equivalent: sbatch slurm.job -> mpirun newmoc.
cd "$(dirname "$0")/../.."
exec ./build/bench/bench_track_management "$@"
