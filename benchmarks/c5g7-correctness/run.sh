#!/bin/sh
# Regenerates the paper artifact for c5g7-correctness (see benchmarks/README.md).
# The artifact's cluster equivalent: sbatch slurm.job -> mpirun newmoc.
cd "$(dirname "$0")/../.."
exec ./build/bench/bench_correctness "$@"
