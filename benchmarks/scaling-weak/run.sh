#!/bin/sh
# Regenerates the paper artifact for scaling-weak (see benchmarks/README.md).
# The artifact's cluster equivalent: sbatch slurm.job -> mpirun newmoc.
cd "$(dirname "$0")/../.."
exec ./build/bench/bench_weak_scaling "$@"
