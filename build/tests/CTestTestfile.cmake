# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/comm_test[1]_include.cmake")
include("/root/repo/build/tests/gpusim_test[1]_include.cmake")
include("/root/repo/build/tests/geometry_test[1]_include.cmake")
include("/root/repo/build/tests/material_test[1]_include.cmake")
include("/root/repo/build/tests/track_test[1]_include.cmake")
include("/root/repo/build/tests/solver_test[1]_include.cmake")
include("/root/repo/build/tests/domain_test[1]_include.cmake")
include("/root/repo/build/tests/perfmodel_test[1]_include.cmake")
include("/root/repo/build/tests/partition_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/models_test[1]_include.cmake")
include("/root/repo/build/tests/multi_gpu_test[1]_include.cmake")
include("/root/repo/build/tests/subdivision_test[1]_include.cmake")
include("/root/repo/build/tests/tallies_test[1]_include.cmake")
include("/root/repo/build/tests/physics_test[1]_include.cmake")
include("/root/repo/build/tests/param_test[1]_include.cmake")
include("/root/repo/build/tests/features_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/solver2d_test[1]_include.cmake")
include("/root/repo/build/tests/library_io_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/fault_test[1]_include.cmake")
