#!/usr/bin/env bash
# Verifies the telemetry subsystem in both build configurations
# (DESIGN.md §6, acceptance gate for the telemetry PR):
#
#   1. ANTMOC_TELEMETRY=ON  (default): full build + tests, then a c5g7
#      run with --telemetry must emit a structurally valid Chrome
#      trace_events JSON (kernel/comm/iteration spans, sane timestamps)
#      and a JSONL metrics dump carrying per-CU utilization, per-rank
#      comm bytes, and per-iteration residuals.
#   2. ANTMOC_TELEMETRY=OFF (notelemetry preset): everything still
#      builds and the full test suite passes with the hooks compiled out.
#   3. Overhead: with telemetry compiled in but disabled, the
#      bench_kernel_breakdown microbenches must stay within 5% of the
#      compiled-out build.
#
# Usage: bench/run_telemetry_check.sh   (from the repo root)
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=$(nproc)

echo "== [1/3] telemetry ON: build, tests, traced c5g7 run =="
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build -j"$JOBS" >/dev/null
ctest --test-dir build -j"$JOBS" --output-on-failure >/dev/null
ctest --test-dir build -L telemetry --output-on-failure >/dev/null
echo "   tests green (full suite + telemetry label)"

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT
(cd "$workdir" && "$OLDPWD/build/examples/c5g7_core" --telemetry \
    --max_iterations=60 >run.log)

trace="$workdir/antmoc_trace.json"
metrics="$workdir/antmoc_metrics.jsonl"
[ -s "$trace" ] || { echo "FAIL: no trace written"; exit 1; }
[ -s "$metrics" ] || { echo "FAIL: no metrics written"; exit 1; }

python3 - "$trace" "$metrics" <<'EOF'
import json, sys

trace = json.load(open(sys.argv[1]))
events = trace["traceEvents"]
assert events, "empty trace"
last_ts = None
names = set()
for ev in events:
    assert ev["ph"] in ("X", "i"), f"unexpected phase {ev['ph']}"
    assert ev["ts"] >= 0
    if ev["ph"] == "X":
        assert ev["dur"] >= 0
    if last_ts is not None:
        assert ev["ts"] >= last_ts, "timestamps not sorted"
    last_ts = ev["ts"]
    names.add(ev["name"])
for want in ("solver/iteration", "comm/send"):
    assert want in names, f"missing span {want}: {sorted(names)[:20]}"
assert any(n.startswith("kernel/") for n in names), "no kernel spans"

kinds = set()
metric_names = set()
for line in open(sys.argv[2]):
    obj = json.loads(line)
    kinds.add(obj["type"])
    metric_names.add(obj["name"])
assert kinds == {"counter", "gauge", "histogram"}, kinds
assert "gpusim.cu_utilization" in metric_names
assert "solver.residual" in metric_names
assert any(n.startswith("comm.bytes_sent[rank=") for n in metric_names)
print(f"   trace OK: {len(events)} events, {len(names)} span names")
print(f"   metrics OK: {len(metric_names)} metrics")
EOF

echo "== [2/3] telemetry OFF: notelemetry preset build + tests =="
cmake -B build-notelemetry -S . -DCMAKE_BUILD_TYPE=Release \
      -DANTMOC_TELEMETRY=OFF >/dev/null
cmake --build build-notelemetry -j"$JOBS" >/dev/null
ctest --test-dir build-notelemetry -j"$JOBS" --output-on-failure >/dev/null
echo "   compiled-out build green"

echo "== [3/3] disabled-telemetry overhead on bench_kernel_breakdown =="
run_bench() {  # binary -> best-of-2 wall seconds for the full bench
  local best t start end
  best=""
  for _ in 1 2; do
    start=$(date +%s.%N)
    "$1" >/dev/null 2>&1
    end=$(date +%s.%N)
    t=$(python3 -c "print($end - $start)")
    if [ -z "$best" ] || python3 -c "exit(0 if $t < $best else 1)"; then
      best=$t
    fi
  done
  echo "$best"
}
on=$(run_bench build/bench/bench_kernel_breakdown)
off=$(run_bench build-notelemetry/bench/bench_kernel_breakdown)
python3 - "$on" "$off" <<'EOF'
import sys
on, off = float(sys.argv[1]), float(sys.argv[2])
ratio = on / off if off > 0 else 1.0
print(f"   compiled-in-but-disabled vs compiled-out: {ratio:.3f}x")
assert ratio < 1.05, f"disabled-telemetry overhead {ratio:.3f}x exceeds 5%"
EOF

echo "telemetry check PASSED"
