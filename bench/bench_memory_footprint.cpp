/// \file bench_memory_footprint.cpp
/// Reproduces Table 3: memory-footprint share of the main device vectors.
/// In the paper's full-core configuration 3D segments dominate at 93.31%;
/// the share is a function of segments-per-track, so the scaled core
/// reproduces the ordering and the dominance, not the exact percentage
/// (EXPERIMENTS.md records both).

#include <benchmark/benchmark.h>

#include "bench/common.h"
#include "gpusim/device.h"
#include "perfmodel/perfmodel.h"
#include "solver/gpu_solver.h"

namespace {

using namespace antmoc;
using namespace antmoc::bench;

Problem make_problem() {
  // Segments-per-3D-track drives the Table 3 shares: the paper's full
  // 17x17 core at production spacings carries ~hundreds of segments per
  // track (93.31% of memory); this is the richest geometry that stays
  // laptop-sized. EXPERIMENTS.md discusses the remaining gap.
  models::C5G7Options opt;
  opt.pins_per_assembly = 9;
  opt.fuel_layers = 9;
  opt.reflector_layers = 3;
  opt.height_scale = 0.30;
  return Problem(models::build_core(opt), 4, 0.10, 2, 0.6);
}

void report_table3() {
  Problem p = make_problem();
  gpusim::Device device(gpusim::DeviceSpec::scaled(std::size_t{2} << 30, 8));
  GpuSolverOptions opts;
  opts.policy = TrackPolicy::kExplicit;
  GpuSolver solver(p.stacks, p.model.materials, device, opts);

  const auto breakdown = device.memory().breakdown();
  std::uint64_t total = 0;
  for (const auto& [_, bytes] : breakdown) total += bytes;

  // Paper Table 3 reference shares.
  const std::vector<std::pair<std::string, double>> paper = {
      {"2d_tracks", 0.02},   {"3d_tracks", 0.71},
      {"2d_segments", 3.41}, {"3d_segments", 93.31},
      {"track_fluxs", 1.85}, {"others", 0.69},
  };
  std::vector<std::vector<std::string>> rows;
  for (const auto& [label, paper_pct] : paper) {
    const auto it = breakdown.find(label);
    const double bytes = it == breakdown.end() ? 0.0 : double(it->second);
    rows.push_back({label, fmt(bytes / (1 << 20), "%.2f MiB"),
                    fmt(100.0 * bytes / total, "%.2f%%"),
                    fmt(paper_pct, "%.2f%%")});
  }
  rows.push_back({"All", fmt(double(total) / (1 << 20), "%.2f MiB"),
                  "100%", "100%"});
  print_table(
      "Table 3 — memory footprint of the main vectors "
      "(measured via the device arena vs the paper's shares)",
      {"item", "measured", "share", "paper share"}, rows);

  // The Eq. 5 model must agree with the arena byte-for-byte.
  perf::MemoryModel model;
  const auto predicted = model.predict(
      p.gen.num_tracks(), p.gen.num_segments(), p.stacks.num_tracks(),
      p.stacks.total_segments(), 1.0);
  std::printf("Eq.5 model total: %.2f MiB (arena-tracked structures: "
              "2d/3d tracks+segments+fluxes %.2f MiB)\n",
              double(predicted.total()) / (1 << 20),
              double(predicted.total() - predicted.fixed) / (1 << 20));
}

void bm_arena_charge_release(benchmark::State& state) {
  gpusim::DeviceMemory arena(std::size_t{1} << 30);
  for (auto _ : state) {
    arena.charge("3d_segments", 1 << 20);
    arena.release("3d_segments", 1 << 20);
  }
}
BENCHMARK(bm_arena_charge_release);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  report_table3();
  return 0;
}
