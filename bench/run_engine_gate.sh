#!/usr/bin/env bash
# Scenario-engine gate (DESIGN.md §12). Runs bench_scenario_throughput,
# validates the BENCH_engine.json it emits, and enforces the bars:
#
#   * JSON must be well-formed with every expected field, else FAIL.
#   * A warm engine job must be bitwise identical to the cold one-shot
#     solve of the same scenario (the shared caches are an amortization,
#     not an approximation).
#   * Warm-cache scenario latency must be <= 0.5x the cold one-shot
#     latency — the whole point of holding a session's state resident.
#   * The batch must sustain >= 2 concurrent jobs at the peak, with no
#     failed jobs.
#
# Usage: bench/run_engine_gate.sh [build-dir]   (from the repo root;
#        build-dir defaults to ./build and must already contain the bench)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
BIN="$BUILD/bench/bench_scenario_throughput"

if [ ! -x "$BIN" ]; then
  echo "FAIL: $BIN not built (cmake --build $BUILD --target" \
       "bench_scenario_throughput)"
  exit 1
fi

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT
json="$workdir/BENCH_engine.json"

echo "== engine gate: running bench_scenario_throughput =="
"$BIN" "$json"

[ -s "$json" ] || { echo "FAIL: bench wrote no BENCH_engine.json"; exit 1; }

python3 - "$json" <<'EOF'
import json, sys

try:
    data = json.load(open(sys.argv[1]))
except Exception as e:
    sys.exit(f"FAIL: BENCH_engine.json is malformed: {e}")

def need(obj, key):
    if key not in obj:
        sys.exit(f"FAIL: missing field {key}")
    return obj[key]

assert need(data, "bench") == "engine", "wrong bench tag"
jobs = need(data, "jobs")
devices = need(data, "devices")
assert jobs >= 8, f"FAIL: batch too small ({jobs} jobs)"
assert devices >= 2, f"FAIL: need a device pool, got {devices}"

cold = need(data, "cold_seconds")
warm = need(data, "warm_seconds")
ratio = need(data, "warm_over_cold")
assert cold > 0 and warm > 0, "non-positive latencies"

# Identity first: a fast wrong answer is worthless.
assert need(data, "bitwise_identical") is True, \
    "FAIL: warm engine job is not bitwise identical to the one-shot solve"

print(f"   warm latency: {warm:.4f}s vs cold {cold:.4f}s "
      f"({ratio:.3f}x, bar: <= 0.5)")
assert ratio <= 0.5, \
    f"FAIL: warm-cache latency {ratio:.3f}x of cold one-shot (bar 0.5)"

peak = need(data, "peak_concurrent")
failed = need(data, "failed")
jps = need(data, "jobs_per_second")
assert jps > 0, "non-positive throughput"
print(f"   batch: {jps:.2f} jobs/s, peak {peak} concurrent, "
      f"{failed} failed (bars: >= 2 concurrent, 0 failed)")
assert peak >= 2, f"FAIL: peak concurrency {peak} < 2"
assert failed == 0, f"FAIL: {failed} jobs failed"

print(f"   JSON OK: warm-up {need(data, 'warmup_seconds'):.3f}s, "
      f"{need(data, 'deferrals')} deferrals")
EOF

echo "engine gate PASSED"
