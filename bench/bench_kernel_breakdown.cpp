/// \file bench_kernel_breakdown.cpp
/// Ablation for §3.2's kernel accounting: "3D track generation, 3D ray
/// tracing, and source computation ... account for 70% of the
/// computational workload." Prints the per-kernel share of modeled device
/// cycles for each track policy, plus the communication model (Eq. 7)
/// against actually transferred interface bytes.

#include <benchmark/benchmark.h>

#include "bench/common.h"
#include "perfmodel/perfmodel.h"
#include "perfmodel/sweep_costs.h"
#include "solver/domain_solver.h"
#include "solver/gpu_solver.h"

namespace {

using namespace antmoc;
using namespace antmoc::bench;

void report_kernel_shares() {
  for (TrackPolicy policy : {TrackPolicy::kExplicit, TrackPolicy::kManaged,
                             TrackPolicy::kOnTheFly}) {
    Problem p(scaled_core(), 4, 0.3, 2, 1.5);
    gpusim::Device device(
        gpusim::DeviceSpec::scaled(std::size_t{1} << 30, 16));
    GpuSolverOptions opts;
    opts.policy = policy;
    opts.resident_budget_bytes = std::size_t{2} << 20;
    // The §3.2 ablation models the paper's template-free kernels.
    opts.templates = TemplateMode::kOff;
    GpuSolver solver(p.stacks, p.model.materials, device, opts);
    SolveOptions sopts;
    sopts.fixed_iterations = 5;
    solver.solve(sopts);

    const auto accum = device.kernel_accum();
    double total = 0.0;
    for (const auto& [_, a] : accum) total += a.total_cycles;

    std::vector<std::vector<std::string>> rows;
    for (const auto& [name, a] : accum)
      rows.push_back({name, std::to_string(a.launches),
                      fmt(a.total_cycles, "%.3g"),
                      fmt(100.0 * a.total_cycles / total, "%.1f%%")});
    const char* label = policy == TrackPolicy::kExplicit  ? "EXP"
                        : policy == TrackPolicy::kManaged ? "Manager"
                                                          : "OTF";
    print_table(std::string("Kernel cycle breakdown, policy = ") + label +
                    " (paper: the three GPU kernels are ~70% of the "
                    "workload)",
                {"kernel", "launches", "cycles", "share"}, rows);
  }
}

void report_eq7_vs_measured() {
  const auto model = scaled_core();
  SolveOptions opts;
  opts.fixed_iterations = 2;
  DomainRunParams params;
  params.num_azim = 4;
  params.azim_spacing = 0.4;
  params.num_polar = 2;
  params.z_spacing = 1.5;
  const auto run = solve_decomposed(model.geometry, model.materials,
                                    {2, 2, 2}, params, opts);
  const auto eq7 = perf::communication_bytes(run.total_tracks_3d, 7);
  print_table(
      "Eq. 7 — communication model vs measured interface flux traffic",
      {"quantity", "bytes"},
      {
          {"Eq. 7 bound (all boundary flux, N3D*2*G*4)",
           std::to_string(eq7)},
          {"measured interface payload per iteration",
           std::to_string(run.flux_bytes_per_iter)},
          {"measured fraction of the bound",
           fmt(100.0 * double(run.flux_bytes_per_iter) / double(eq7),
               "%.1f%%")},
      });
}

void bm_exp_f1_exact(benchmark::State& state) {
  double x = 0.001;
  for (auto _ : state) {
    benchmark::DoNotOptimize(antmoc::exp_f1(x));
    x += 1e-6;
  }
}
BENCHMARK(bm_exp_f1_exact);

void bm_exp_f1_table(benchmark::State& state) {
  static const antmoc::ExpTable table;
  double x = 0.001;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table(x));
    x += 1e-6;
  }
}
BENCHMARK(bm_exp_f1_table);

void bm_otf_segment_walk(benchmark::State& state) {
  Problem p(scaled_core(), 4, 0.3, 2, 1.5);
  long id = 0;
  for (auto _ : state) {
    double total = 0.0;
    p.stacks.for_each_segment(id % p.stacks.num_tracks(), true,
                              [&](long, double len) { total += len; });
    benchmark::DoNotOptimize(total);
    ++id;
  }
}
BENCHMARK(bm_otf_segment_walk);

}  // namespace

int main(int argc, char** argv) {
  // Pin the paper's cost model so the kernel shares reproduce the
  // published breakdown regardless of the host's calibration.
  antmoc::perf::set_sweep_costs({1.0, 6.0, 1.5});
  bench::TelemetryScope telemetry_scope("bench_kernel_breakdown");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  report_kernel_shares();
  report_eq7_vs_measured();
  return 0;
}
