/// \file bench_memory_gate.cpp
/// Compact segment-store gate bench (DESIGN.md §15): on the scaled C5G7
/// core, measures
///   1. the resident footprint — one EXP TrackManager per storage mode
///      over the same tracks; compact must hold the same segments in
///      <= 0.55x the bytes;
///   2. the accuracy bars — converged exact vs compact host solves;
///      |dk| must stay <= 2 pcm and the per-FSR flux RMS <= 1e-5
///      relative;
///   3. the capped-arena payoff — two Managed managers under one byte
///      budget sized below the exact footprint; compact must pack a
///      strictly higher resident segment fraction, and under the paper's
///      pinned sweep-cost model {1, 6, 1.5} its eligible-sweep
///      throughput (segments per modeled cycle) must be >= 1.15x the
///      exact manager's at the same cap.
/// Emits BENCH_memory.json (path = argv[1], default ./BENCH_memory.json);
/// bench/run_memory_gate.sh validates it and enforces the bars.

#include <cmath>
#include <cstdio>
#include <string>

#include "bench/common.h"
#include "perfmodel/layout.h"
#include "perfmodel/perfmodel.h"
#include "perfmodel/sweep_costs.h"
#include "solver/cpu_solver.h"
#include "solver/track_policy.h"
#include "util/timer.h"

namespace {

using namespace antmoc;
using namespace antmoc::bench;

constexpr int kWorkers = 2;

SolveOptions gate_options() {
  SolveOptions opts;
  opts.tolerance = 1e-7;
  opts.max_iterations = 2000;
  return opts;
}

struct Run {
  SolveResult result;
  double seconds = 0.0;
  std::vector<double> flux;
};

Run run_solver(const Problem& p, TrackStorage storage) {
  CpuSolver solver(p.stacks, p.model.materials, kWorkers,
                   TemplateMode::kAuto, SweepBackend::kHistory, storage);
  Timer t;
  t.start();
  Run r;
  r.result = solver.solve(gate_options());
  t.stop();
  r.seconds = t.seconds();
  r.flux = solver.fsr().scalar_flux();
  return r;
}

double relative_flux_rms(const std::vector<double>& exact,
                         const std::vector<double>& compact) {
  double sum = 0.0;
  long counted = 0;
  for (std::size_t i = 0; i < exact.size(); ++i) {
    if (exact[i] == 0.0) continue;
    const double rel = (compact[i] - exact[i]) / exact[i];
    sum += rel * rel;
    ++counted;
  }
  return counted > 0 ? std::sqrt(sum / static_cast<double>(counted)) : 0.0;
}

double segment_fraction(const TrackManager& m) {
  return m.total_segments() > 0
             ? static_cast<double>(m.resident_segments()) /
                   static_cast<double>(m.total_segments())
             : 0.0;
}

/// Modeled segments per cycle for a history sweep at the manager's
/// residency (Eq. 6 with the pinned paper costs) — the "eligible-sweep
/// segments/s" bar with the machine-speed constant divided out.
double model_throughput(const TrackManager& m) {
  const long segs = m.total_segments();
  return static_cast<double>(segs) /
         perf::predict_sweep_cycles(segs, segment_fraction(m),
                                    m.templated_fraction());
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_memory.json";
  TelemetryScope telemetry("BENCH_memory");

  // Deterministic throughput model: pin the paper's Fig. 9 cost ratios so
  // the capped-arena bar does not depend on this host's micro-calibration.
  perf::set_sweep_costs({1.0, 6.0, 1.5});

  // The C5G7 core at a laydown the converged accuracy solves finish in
  // seconds: full 3x3-assembly heterogeneity, shallow axial extent.
  Problem p(scaled_core(2, 1, 0.1), 4, 0.5, 2, 1.0);

  // 1. Resident footprint, same tracks fully resident in both layouts.
  TrackManager exact_exp(p.stacks, TrackPolicy::kExplicit, nullptr, 0);
  TrackManager compact_exp(p.stacks, TrackPolicy::kExplicit, nullptr, 0,
                           nullptr, TrackStorage::kCompact);
  const double bytes_ratio =
      static_cast<double>(compact_exp.resident_bytes()) /
      static_cast<double>(exact_exp.resident_bytes());

  // 2. Accuracy bars on converged solves.
  std::printf("== exact storage, converged ==\n");
  const Run exact = run_solver(p, TrackStorage::kExact);
  std::printf("== compact storage, converged ==\n");
  const Run compact = run_solver(p, TrackStorage::kCompact);
  const double pcm =
      std::abs(compact.result.k_eff - exact.result.k_eff) * 1e5;
  const double flux_rms = relative_flux_rms(exact.flux, compact.flux);

  // 3. Capped arena: one budget below the exact footprint, two Managed
  //    managers. Compact packs ~2x the segments per byte, so it keeps a
  //    higher fraction resident and pays the 6x OTF walk less often.
  const std::size_t budget = static_cast<std::size_t>(
      0.45 * static_cast<double>(exact_exp.resident_bytes()));
  TrackManager exact_cap(p.stacks, TrackPolicy::kManaged, nullptr, budget);
  TrackManager compact_cap(p.stacks, TrackPolicy::kManaged, nullptr, budget,
                           nullptr, TrackStorage::kCompact);
  const double exact_fraction = segment_fraction(exact_cap);
  const double compact_fraction = segment_fraction(compact_cap);
  const double throughput_ratio =
      model_throughput(compact_cap) / model_throughput(exact_cap);

  print_table(
      "Compact segment stores (scaled C5G7 core)",
      {"configuration", "k_eff", "resident bytes", "capped fraction"},
      {{"exact", fmt(exact.result.k_eff, "%.8f"),
        std::to_string(exact_exp.resident_bytes()),
        fmt(exact_fraction, "%.3f")},
       {"compact", fmt(compact.result.k_eff, "%.8f"),
        std::to_string(compact_exp.resident_bytes()),
        fmt(compact_fraction, "%.3f")},
       {"delta", fmt(pcm, "%.3f") + " pcm", fmt(bytes_ratio, "%.3f") + "x",
        fmt(throughput_ratio, "%.2f") + "x model"}});

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
    return 1;
  }
  std::fprintf(
      f,
      "{\n"
      "  \"bench\": \"memory_compact\",\n"
      "  \"tolerance\": %.3g,\n"
      "  \"workers\": %d,\n"
      "  \"segment_bytes\": {\"exact\": %zu, \"compact\": %zu},\n"
      "  \"exact\": {\"k_eff\": %.17g, \"iterations\": %d,\n"
      "            \"converged\": %s, \"seconds\": %.9g,\n"
      "            \"resident_bytes\": %zu},\n"
      "  \"compact\": {\"k_eff\": %.17g, \"iterations\": %d,\n"
      "              \"converged\": %s, \"seconds\": %.9g,\n"
      "              \"resident_bytes\": %zu},\n"
      "  \"bytes_ratio\": %.9g,\n"
      "  \"pcm\": %.9g,\n"
      "  \"flux_rms\": %.9g,\n"
      "  \"capped\": {\"budget_bytes\": %zu,\n"
      "             \"exact_fraction\": %.9g,\n"
      "             \"compact_fraction\": %.9g,\n"
      "             \"throughput_ratio\": %.9g}\n"
      "}\n",
      gate_options().tolerance, kWorkers, perf::kSegment3DBytes,
      perf::kSegment3DCompactBytes, exact.result.k_eff,
      exact.result.iterations, exact.result.converged ? "true" : "false",
      exact.seconds, exact_exp.resident_bytes(), compact.result.k_eff,
      compact.result.iterations,
      compact.result.converged ? "true" : "false", compact.seconds,
      compact_exp.resident_bytes(), bytes_ratio, pcm, flux_rms, budget,
      exact_fraction, compact_fraction, throughput_ratio);
  std::fclose(f);
  std::printf("\nwrote %s\n", json_path.c_str());
  return 0;
}
