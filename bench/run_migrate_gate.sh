#!/usr/bin/env bash
# Survivor-takeover gate (DESIGN.md §11). Runs bench_migration, validates
# the BENCH_migration.json it emits, and enforces the bars:
#
#   * JSON must be well-formed with every expected field, else FAIL.
#   * The takeover run's k_eff must be *bitwise identical* to the
#     failure-free run's — domain-keyed reductions plus exact-state
#     resume make re-hosting invisible to the physics.
#   * The restart run must land on the same eigenvalue (a deterministic
#     full re-run from iteration 0 — the PR 1 degrade-or-restart
#     baseline, which had no per-domain shard line).
#   * The death must actually be absorbed in-world (takeovers >= 1,
#     restarts == 0 on the takeover run) and the restart baseline must
#     actually restart (restarts >= 1).
#   * Wall clock: absorbing the death in-world must cost at most 0.8x the
#     PR 1 restart path, which re-lays every domain's tracks and re-runs
#     every iteration from scratch while the takeover rebuilds only the
#     orphan and redoes only the iterations past the shard line.
#
# Usage: bench/run_migrate_gate.sh [build-dir]   (from the repo root;
#        build-dir defaults to ./build and must already contain the bench)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
BIN="$BUILD/bench/bench_migration"

if [ ! -x "$BIN" ]; then
  echo "FAIL: $BIN not built (cmake --build $BUILD --target bench_migration)"
  exit 1
fi

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT
json="$workdir/BENCH_migration.json"

echo "== migrate gate: running bench_migration =="
"$BIN" "$json"

[ -s "$json" ] || { echo "FAIL: bench wrote no BENCH_migration.json"; exit 1; }

python3 - "$json" <<'EOF'
import json, sys

try:
    data = json.load(open(sys.argv[1]))
except Exception as e:
    sys.exit(f"FAIL: BENCH_migration.json is malformed: {e}")

def need(obj, key, ctx=""):
    if key not in obj:
        sys.exit(f"FAIL: missing field {ctx}.{key}")
    return obj[key]

assert need(data, "bench") == "migration", "wrong bench tag"
need(data, "fixed_iterations")
assert need(data, "checkpoint_every") >= 1
decomp = need(data, "decomposition")
assert len(decomp) == 3 and decomp[0] * decomp[1] * decomp[2] >= 4, \
    f"FAIL: takeover bench needs >= 4 ranks, got {decomp}"

clean = need(data, "failure_free")
take = need(data, "takeover")
rest = need(data, "restart")
for name, r in [("failure_free", clean), ("takeover", take),
                ("restart", rest)]:
    assert need(r, "seconds", name) > 0, f"{name}: non-positive seconds"
    assert need(r, "k_eff", name) > 0, f"{name}: non-positive k_eff"

# The death must be absorbed in-world, not by the restart ladder.
assert need(take, "takeovers", "takeover") >= 1, \
    "FAIL: takeover run absorbed no rank death"
assert need(take, "resumed_from_iteration", "takeover") >= 0, \
    "FAIL: takeover run never rewound to a shard line"
assert need(rest, "restarts", "restart") >= 1, \
    "FAIL: restart baseline never restarted"

# Physics identity: re-hosting a domain must not move a single bit.
assert need(data, "k_match_bitwise") is True, \
    (f"FAIL: takeover k_eff {take['k_eff']!r} differs from failure-free "
     f"{clean['k_eff']!r}")
assert rest["k_eff"] == clean["k_eff"], \
    (f"FAIL: restart k_eff {rest['k_eff']!r} differs from failure-free "
     f"{clean['k_eff']!r}")

ratio = take["seconds"] / rest["seconds"]
print(f"   takeover vs restart wall clock: {ratio:.3f}x (bar: <= 0.8)")
assert ratio <= 0.8, \
    f"FAIL: in-world takeover {ratio:.3f}x of the restart path (> 0.8)"

print(f"   JSON OK: takeover {take['seconds']:.3f}s vs restart "
      f"{rest['seconds']:.3f}s, k_eff bitwise-identical across all runs")
EOF

echo "migrate gate PASSED"
