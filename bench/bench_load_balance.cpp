/// \file bench_load_balance.cpp
/// Reproduces Fig. 10: load-uniformity index (MAX load / AVG load) of the
/// C5G7 core under the three-level mapping, across GPU counts.
/// Paper: L1 reduces imbalance ~5%, L2 ~53%, L3 ~8%, with L2 dominant
/// because the no-balance baseline maps whole sub-geometries to GPUs.

#include <benchmark/benchmark.h>

#include "bench/common.h"
#include "geometry/builder.h"
#include "partition/load_mapper.h"
#include "solver/decomposition.h"
#include "solver/multi_gpu_solver.h"
#include "util/rng.h"

namespace {

using namespace antmoc;
using namespace antmoc::bench;
using namespace antmoc::partition;

constexpr int kGpusPerNode = 4;

struct Case {
  int gpus;
  Decomposition decomp;  ///< ~10 domains per node (paper §4.2.1)
};

const std::vector<Case> kCases = {
    {8, {5, 2, 2}},    // 2 nodes, 20 domains
    {16, {5, 4, 2}},   // 4 nodes, 40 domains
    {32, {5, 4, 4}},   // 8 nodes, 80 domains
    {64, {8, 5, 4}},   // 16 nodes, 160 domains
};

double uniformity(const std::vector<double>& v) {
  double total = 0.0, peak = 0.0;
  for (double x : v) {
    total += x;
    peak = std::max(peak, x);
  }
  return total > 0 ? peak / (total / v.size()) : 1.0;
}

/// Machine-wide compute-unit uniformity: a GPU finishes in
/// (load * its CU imbalance) while the machine average is (avg load), so
/// the effective index composes the GPU-level MAX/AVG with the intra-GPU
/// CU factor.
double effective_uniformity(const std::vector<double>& gpu_loads,
                            double cu_factor) {
  return uniformity(gpu_loads) * cu_factor;
}

void report_fig10() {
  const auto model = scaled_core();

  // A per-track cost spectrum sampled from the real laydown drives the
  // CU-level (L3) factor.
  Problem p(scaled_core(), 4, 0.3, 2, 1.5);
  std::vector<double> costs;
  costs.reserve(p.stacks.num_tracks());
  for (long id = 0; id < p.stacks.num_tracks(); ++id)
    costs.push_back(double(p.stacks.count_segments(id)));
  const double cu_no_l3 = cu_uniformity(costs, 64, false);
  const double cu_l3 = cu_uniformity(costs, 64, true);

  std::vector<std::vector<std::string>> rows;
  for (const auto& c : kCases) {
    const int nodes = c.gpus / kGpusPerNode;
    const auto loads =
        measure_loads(model.geometry, c.decomp, 16, 0.4, 2, 2.0);

    const auto nodes_base = map_domains_to_nodes(loads, nodes, false);
    const auto nodes_l1 = map_domains_to_nodes(loads, nodes, true);

    const auto g_none =
        map_azim_to_gpus(loads, nodes_base, nodes, kGpusPerNode, false);
    const auto g_l1 =
        map_azim_to_gpus(loads, nodes_l1, nodes, kGpusPerNode, false);
    const auto g_l12 =
        map_azim_to_gpus(loads, nodes_l1, nodes, kGpusPerNode, true);

    const double u_none = effective_uniformity(g_none, cu_no_l3);
    const double u_l1 = effective_uniformity(g_l1, cu_no_l3);
    const double u_l12 = effective_uniformity(g_l12, cu_no_l3);
    const double u_l123 = effective_uniformity(g_l12, cu_l3);

    rows.push_back({std::to_string(c.gpus),
                    std::to_string(c.decomp.num_domains()),
                    fmt(u_none, "%.3f"), fmt(u_l1, "%.3f"),
                    fmt(u_l12, "%.3f"), fmt(u_l123, "%.3f")});
  }
  print_table(
      "Fig. 10 — load uniformity index (MAX/AVG, lower is better; "
      "paper: L1 -5%, L2 -53%, L3 -8%)",
      {"GPUs", "domains", "No balance", "+L1", "+L1+L2", "+L1+L2+L3"},
      rows);
  std::printf("CU-level factor: blocked %.3f vs sorted round-robin %.3f\n",
              cu_no_l3, cu_l3);

  // L1 operates at node granularity; its improvement is visible on the
  // per-node loads even when the within-node split (L2's job) dominates
  // the per-GPU index above.
  std::vector<std::vector<std::string>> node_rows;
  for (const auto& c : kCases) {
    const int nodes = c.gpus / kGpusPerNode;
    const auto loads =
        measure_loads(model.geometry, c.decomp, 16, 0.4, 2, 2.0);
    const auto base = map_domains_to_nodes(loads, nodes, false);
    const auto l1 = map_domains_to_nodes(loads, nodes, true);
    const double u_base = load_uniformity(loads.domain_load, base, nodes);
    const double u_l1 = load_uniformity(loads.domain_load, l1, nodes);
    node_rows.push_back({std::to_string(nodes), fmt(u_base, "%.3f"),
                         fmt(u_l1, "%.3f"),
                         fmt(100.0 * (u_base - u_l1) / u_base, "%.1f%%")});
  }
  print_table("Fig. 10 detail — node-level uniformity, the L1 target "
              "(paper: L1 reduces load ~5%)",
              {"nodes", "No balance", "+L1 (graph part.)", "gain"},
              node_rows);
}

void report_in_process_l2() {
  // The modeled L2 numbers above come from the mapping code; this runs
  // the real multi-device solver (azimuthal angles split across 4
  // simulated GPUs) and measures per-device busy cycles and the DMA
  // traffic of cross-device flux hand-off (paper §3.2). A rectangular
  // domain (1x4 pin row) makes the per-angle loads genuinely uneven, the
  // regime where the LPT angle deal earns its keep.
  GeometryBuilder b;
  const int pin = b.add_pin_universe("pin", 0, 6, 0.54);
  const int lat = b.add_lattice("row", 1, 4, 1.26, 1.26, 0.0, 0.0,
                                {pin, pin, pin, pin});
  b.set_root(lat);
  Bounds bounds;
  bounds.x_max = 1.26;
  bounds.y_max = 5.04;
  b.set_bounds(bounds);
  b.set_all_radial_boundaries(BoundaryType::kReflective);
  b.set_boundary(Face::kZMin, BoundaryType::kReflective);
  b.set_boundary(Face::kZMax, BoundaryType::kReflective);
  b.add_axial_zone(0.0, 2.0, 2);
  models::C5G7Model row_model{b.build(),
                              models::build_pin_cell(1, 1.0).materials};
  Problem p(std::move(row_model), 16, 0.15, 2, 0.5);
  std::vector<std::vector<std::string>> rows;
  for (bool balance : {false, true}) {
    MultiGpuOptions opts;
    opts.num_devices = 4;
    opts.device_spec = gpusim::DeviceSpec::scaled(std::size_t{1} << 30, 16);
    opts.balance_angles = balance;
    MultiGpuSolver solver(p.stacks, p.model.materials, opts);
    SolveOptions sopts;
    sopts.fixed_iterations = 2;
    solver.solve(sopts);
    rows.push_back({balance ? "L2 (angle LPT)" : "angle blocks",
                    fmt(solver.device_load_uniformity(), "%.4f"),
                    fmt(double(solver.last_sweep_dma_bytes()) / (1 << 10),
                        "%.1f KiB")});
  }
  print_table(
      "Fig. 10 detail — in-process L2: 4 simulated GPUs sharing one node, "
      "boundary flux crossing via DMA",
      {"angle mapping", "device uniformity", "DMA per sweep"}, rows);
  std::printf(
      "Both angle mappings sit at uniformity ~1.00: every azimuthal "
      "angle's tracks tile the same area at the same spacing, so angle "
      "loads are inherently even. That is exactly why the paper's L2 "
      "(fusion + angle split) beats whole-sub-geometry-per-GPU mapping "
      "(~1.9-4.2 above) by ~53%%.\n");
}

void bm_measure_loads(benchmark::State& state) {
  const auto model = scaled_core();
  const Decomposition decomp{3, 3, 2};
  for (auto _ : state)
    benchmark::DoNotOptimize(
        measure_loads(model.geometry, decomp, 8, 0.5, 2, 2.0));
}
BENCHMARK(bm_measure_loads);

void bm_partition_kway(benchmark::State& state) {
  Rng rng(3);
  Graph g(200);
  for (int v = 0; v < 200; ++v) g.set_weight(v, 1.0 + rng.next_double());
  for (int v = 0; v + 1 < 200; ++v) g.add_edge(v, v + 1, 1.0);
  for (auto _ : state)
    benchmark::DoNotOptimize(partition_kway(g, 16));
}
BENCHMARK(bm_partition_kway);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  report_fig10();
  report_in_process_l2();
  return 0;
}
