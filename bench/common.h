#pragma once

/// \file common.h
/// Shared scaffolding for the paper-reproduction benches: scaled C5G7
/// problems sized for a single host, laydown helpers, and table printing.
///
/// Every bench regenerates one table or figure of the paper's evaluation
/// (§5); EXPERIMENTS.md maps bench binaries to paper artifacts and records
/// paper-vs-measured values.

#include <array>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "io/writers.h"
#include "models/c5g7_model.h"
#include "solver/transport_solver.h"
#include "telemetry/exporters.h"
#include "telemetry/telemetry.h"
#include "track/generator2d.h"
#include "track/track3d.h"

namespace antmoc::bench {

/// One fully laid-down problem: geometry + materials + traced tracks.
struct Problem {
  models::C5G7Model model;
  Quadrature quad;
  TrackGenerator2D gen;
  TrackStacks stacks;

  Problem(models::C5G7Model m, int num_azim, double spacing, int num_polar,
          double z_spacing)
      : model(std::move(m)),
        quad(num_azim, spacing, model.geometry.bounds().width_x(),
             model.geometry.bounds().width_y(), num_polar),
        gen(quad, model.geometry.bounds(), radial_kinds(model.geometry)),
        stacks((gen.trace(model.geometry), gen), model.geometry,
               model.geometry.bounds().z_min,
               model.geometry.bounds().z_max, z_spacing) {}

  static std::array<LinkKind, 4> radial_kinds(const Geometry& g) {
    return {to_link_kind(g.boundary(Face::kXMin)),
            to_link_kind(g.boundary(Face::kXMax)),
            to_link_kind(g.boundary(Face::kYMin)),
            to_link_kind(g.boundary(Face::kYMax))};
  }
};

/// The scaled C5G7 core every bench uses: full 3x3-assembly heterogeneity
/// (two UO2, two MOX, five reflector assemblies, top axial reflector) with
/// 5x5-pin assemblies and a reduced axial extent so laptop-scale runs
/// finish in seconds.
inline models::C5G7Model scaled_core(int fuel_layers = 3,
                                     int reflector_layers = 1,
                                     double height_scale = 0.15) {
  models::C5G7Options opt;
  opt.pins_per_assembly = 5;
  opt.fuel_layers = fuel_layers;
  opt.reflector_layers = reflector_layers;
  opt.height_scale = height_scale;
  return models::build_core(opt);
}

/// Prints a paper-style table with a caption.
inline void print_table(const std::string& caption,
                        const std::vector<std::string>& headers,
                        const std::vector<std::vector<std::string>>& rows) {
  std::printf("\n=== %s ===\n%s", caption.c_str(),
              io::format_table(headers, rows).c_str());
  std::fflush(stdout);
}

inline std::string fmt(double v, const char* spec = "%.4g") {
  char buf[64];
  std::snprintf(buf, sizeof buf, spec, v);
  return buf;
}

/// Opt-in bench observability: set ANTMOC_TELEMETRY=1 (or to a file
/// prefix) in the environment and any bench holding a TelemetryScope
/// records spans/metrics and writes <prefix>_trace.json plus
/// <prefix>_metrics.jsonl on exit. Unset (the default), telemetry stays
/// off and the bench measures the production fast path.
class TelemetryScope {
 public:
  explicit TelemetryScope(const std::string& default_prefix) {
    const char* env = std::getenv("ANTMOC_TELEMETRY");
    if (env == nullptr || *env == '\0' || std::string(env) == "0") return;
    telemetry::Config cfg;
    cfg.enabled = true;
    const std::string prefix =
        std::string(env) == "1" ? default_prefix : std::string(env);
    cfg.trace_path = prefix + "_trace.json";
    cfg.metrics_path = prefix + "_metrics.jsonl";
    telemetry::Telemetry::instance().set_config(cfg);
  }

  ~TelemetryScope() {
    if (!telemetry::on()) return;
    const auto cfg = telemetry::Telemetry::instance().config();
    telemetry::export_all();
    std::printf("telemetry: wrote %s and %s\n", cfg.trace_path.c_str(),
                cfg.metrics_path.c_str());
  }

  TelemetryScope(const TelemetryScope&) = delete;
  TelemetryScope& operator=(const TelemetryScope&) = delete;
};

}  // namespace antmoc::bench
