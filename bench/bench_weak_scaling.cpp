/// \file bench_weak_scaling.cpp
/// Reproduces Fig. 12: weak scalability with 5,124,596 tracks per GPU,
/// 1000 -> 16000 GPUs (174.66 billion tracks at the top end). Paper
/// headline: 89.38% parallel efficiency at 16,000 GPUs with all
/// optimizations; without load mapping the spatial-decomposition grid
/// growth degrades efficiency visibly faster.

#include <benchmark/benchmark.h>

#include "bench/common.h"
#include "cluster/scaling.h"

namespace {

using namespace antmoc;
using namespace antmoc::bench;
using namespace antmoc::cluster;

const std::vector<int> kGpuCounts{1000, 2000, 4000, 8000, 16000};

WorkloadSpec workload() {
  WorkloadSpec w;
  w.strong = false;
  w.tracks_per_gpu_base = 5124596;  // paper §5.5 weak baseline
  w.base_gpus = 1000;
  return w;
}

void report_fig12() {
  const ScalingSimulator sim(MachineSpec{}, workload());
  const auto with = sim.sweep(kGpuCounts, MappingConfig::all());
  const auto without = sim.sweep(kGpuCounts, MappingConfig::none());

  std::vector<std::vector<std::string>> rows;
  for (std::size_t i = 0; i < with.size(); ++i) {
    rows.push_back({std::to_string(with[i].gpus),
                    fmt(with[i].directed_tracks / 1e9, "%.2fB"),
                    fmt(with[i].time_per_iteration_s, "%.4f"),
                    fmt(100 * with[i].efficiency, "%.1f%%"),
                    fmt(without[i].time_per_iteration_s, "%.4f"),
                    fmt(100 * without[i].efficiency, "%.1f%%"),
                    fmt(with[i].gpu_load_uniformity, "%.3f")});
  }
  print_table(
      "Fig. 12 — weak scalability, 5.12M tracks/GPU "
      "(paper: 89.38% efficiency at 16,000 GPUs / 174.66B tracks)",
      {"GPUs", "tracks", "t/iter (bal)", "eff (bal)", "t/iter (none)",
       "eff (none)", "GPU uniformity"},
      rows);

  std::printf("At 16000 GPUs: efficiency %.2f%% (paper 89.38%%), "
              "directed tracks %.2fB (paper 174.66B)\n",
              100 * with.back().efficiency,
              with.back().directed_tracks / 1e9);
}

void bm_weak_sweep(benchmark::State& state) {
  const ScalingSimulator sim(MachineSpec{}, workload());
  for (auto _ : state)
    benchmark::DoNotOptimize(
        sim.evaluate(2000, MappingConfig::all()));
}
BENCHMARK(bm_weak_sweep);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  report_fig12();
  return 0;
}
