/// \file bench_correctness.cpp
/// Reproduces §5.1 (Table 4 parameters, correctness validation):
/// ANT-MOC's device path vs the independent host reference solver
/// ("OpenMOC-3D-like") on the C5G7 core, 2x2x2 spatial decomposition.
/// Paper claims reproduced in shape:
///  * k_eff consistent between the two codes during convergence;
///  * assembly pin-wise fission-rate relative error ~ zero;
///  * device path much faster than the sequential host path (paper: one
///    MI60 vs 8 CPU cores = 428x; here we report the measured wall ratio
///    of the parallel device path vs the sequential reference plus the
///    modeled MI60-class ratio).

#include <benchmark/benchmark.h>

#include <cmath>

#include "bench/common.h"
#include "models/c5g7_model.h"
#include "solver/domain_solver.h"
#include "util/timer.h"

namespace {

using namespace antmoc;
using namespace antmoc::bench;

DomainRunParams params(bool device) {
  DomainRunParams p;
  p.num_azim = 4;       // Table 4: 4 azimuthal angles
  p.num_polar = 4;      // Table 4: 4 polar angles
  p.azim_spacing = 0.5; // Table 4: radial spacing 0.5
  p.z_spacing = 1.0;    // axial spacing scaled with the reduced height
  p.use_device = device;
  if (device) {
    p.device_spec = gpusim::DeviceSpec::scaled(std::size_t{1} << 30, 16);
    p.gpu_options.policy = TrackPolicy::kManaged;
    p.gpu_options.resident_budget_bytes = std::size_t{64} << 20;
  }
  return p;
}

void report_section_5_1() {
  const auto model = scaled_core();
  const Decomposition decomp{2, 2, 2};  // Table 4: 2x2x2 sub-geometries
  SolveOptions opts;
  opts.tolerance = 1e-5;
  opts.max_iterations = 20000;

  Timer t_cpu, t_gpu;
  t_cpu.start();
  const auto cpu = solve_decomposed(model.geometry, model.materials, decomp,
                                    params(false), opts);
  t_cpu.stop();
  t_gpu.start();
  const auto gpu = solve_decomposed(model.geometry, model.materials, decomp,
                                    params(true), opts);
  t_gpu.stop();

  double max_rel = 0.0;
  for (std::size_t i = 0; i < cpu.fission_rate.size(); ++i)
    if (cpu.fission_rate[i] > 0.0)
      max_rel = std::max(max_rel,
                         std::abs(gpu.fission_rate[i] / cpu.fission_rate[i] -
                                  1.0));

  print_table(
      "§5.1 — correctness: ANT-MOC (device path) vs reference host solver "
      "(C5G7 core, 2x2x2 decomposition)",
      {"quantity", "reference (CPU)", "ANT-MOC (device)", "paper"},
      {
          {"k_eff", fmt(cpu.result.k_eff, "%.6f"),
           fmt(gpu.result.k_eff, "%.6f"), "identical"},
          {"iterations", std::to_string(cpu.result.iterations),
           std::to_string(gpu.result.iterations), "-"},
          {"max pin fission-rate rel. error", "-", fmt(max_rel, "%.2e"),
           "~0"},
          {"wall time (s)", fmt(t_cpu.seconds(), "%.2f"),
           fmt(t_gpu.seconds(), "%.2f"), "-"},
      });

  // Speedup accounting: the paper's 428x (one MI60 vs 8 CPU cores running
  // OpenMOC-3D) needs real silicon; both of our engines share one host, so
  // the wall ratio only reflects engine overheads (the simulated device
  // pays atomics + cycle accounting). We report the wall ratio for the
  // record and note the claim is out of scope here (DESIGN.md §5).
  std::printf(
      "Wall ratio (sequential reference / simulated-device path): %.2fx. "
      "The paper's 428x GPU-vs-CPU speedup requires real hardware and is "
      "not reproducible on this substrate.\n",
      t_cpu.seconds() / std::max(t_gpu.seconds(), 1e-9));
}

void bm_reference_iteration(benchmark::State& state) {
  const auto model = scaled_core();
  SolveOptions opts;
  opts.fixed_iterations = 1;
  for (auto _ : state)
    solve_decomposed(model.geometry, model.materials, {1, 1, 1},
                     params(false), opts);
}
BENCHMARK(bm_reference_iteration)->Iterations(2)->Unit(benchmark::kMillisecond);

void bm_device_iteration(benchmark::State& state) {
  const auto model = scaled_core();
  SolveOptions opts;
  opts.fixed_iterations = 1;
  for (auto _ : state)
    solve_decomposed(model.geometry, model.materials, {1, 1, 1},
                     params(true), opts);
}
BENCHMARK(bm_device_iteration)->Iterations(2)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  report_section_5_1();
  return 0;
}
