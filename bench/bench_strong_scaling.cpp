/// \file bench_strong_scaling.cpp
/// Reproduces Fig. 11: strong scalability 1000 -> 16000 GPUs on the
/// simulated cluster (MI60-class nodes, HDR-IB-class links; see
/// DESIGN.md §1 for the substitution). Paper headline: 70.69% parallel
/// efficiency at 16,000 GPUs with all optimizations, a residency-driven
/// efficiency bump at 8000 GPUs, and >= 12% gain from load balancing at
/// the largest scale.

#include <benchmark/benchmark.h>

#include "bench/common.h"
#include "cluster/scaling.h"

namespace {

using namespace antmoc;
using namespace antmoc::bench;
using namespace antmoc::cluster;

const std::vector<int> kGpuCounts{1000, 2000, 4000, 8000, 16000};

WorkloadSpec workload() {
  WorkloadSpec w;
  w.strong = true;
  w.tracks_per_gpu_base = 54581544;  // paper §5.5 strong baseline
  w.base_gpus = 1000;
  return w;
}

void report_fig11() {
  const ScalingSimulator sim(MachineSpec{}, workload());
  const auto with = sim.sweep(kGpuCounts, MappingConfig::all());
  const auto without = sim.sweep(kGpuCounts, MappingConfig::none());

  std::vector<std::vector<std::string>> rows;
  for (std::size_t i = 0; i < with.size(); ++i) {
    rows.push_back({std::to_string(with[i].gpus),
                    fmt(with[i].time_per_iteration_s, "%.4f"),
                    fmt(100 * with[i].efficiency, "%.1f%%"),
                    fmt(without[i].time_per_iteration_s, "%.4f"),
                    fmt(100 * without[i].efficiency, "%.1f%%"),
                    fmt(with[i].resident_fraction, "%.2f"),
                    fmt(with[i].gpu_load_uniformity, "%.3f")});
  }
  print_table(
      "Fig. 11 — strong scalability, 100-billion-(directed-)track problem "
      "(paper: 70.69% efficiency at 16,000 GPUs; balancing worth >= 12%)",
      {"GPUs", "t/iter (bal)", "eff (bal)", "t/iter (none)", "eff (none)",
       "resident", "GPU uniformity"},
      rows);

  const auto& b = with.back();
  const auto& n = without.back();
  std::printf(
      "At 16000 GPUs: efficiency %.2f%% (paper 70.69%%); balancing gain "
      "%.1f%% (paper: up to 12%%)\n",
      100 * b.efficiency,
      100 * (n.time_per_iteration_s - b.time_per_iteration_s) /
          n.time_per_iteration_s);
}

void bm_evaluate_point(benchmark::State& state) {
  const ScalingSimulator sim(MachineSpec{}, workload());
  for (auto _ : state)
    benchmark::DoNotOptimize(
        sim.evaluate(int(state.range(0)), MappingConfig::all()));
}
BENCHMARK(bm_evaluate_point)->Arg(1000)->Arg(4000);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  report_fig11();
  return 0;
}
