/// \file bench_migration.cpp
/// Survivor takeover vs checkpoint-restart (DESIGN.md §11): the same
/// {2,2,1}-decomposed C5G7 core is run three ways — failure-free, with a
/// scripted mid-solve rank death absorbed by the in-world takeover, and
/// with the same death handled the pre-migration way (the PR 1
/// degrade-or-restart baseline: no per-domain shard line existed for
/// decomposed solves, so a rank death meant re-running the whole
/// decomposed solve from iteration 0). The takeover path instead pays the
/// 4-phase protocol plus a rewind to the per-iteration shard line, so it
/// redoes only the interrupted iteration. Reports wall seconds and
/// eigenvalues; the takeover must land on the failure-free k_eff bit for
/// bit and beat the restart path on end-to-end wall clock. Emits
/// BENCH_migration.json (path = argv[1], default ./BENCH_migration.json);
/// bench/run_migrate_gate.sh validates it and enforces the bars.

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>

#include "bench/common.h"
#include "fault/fault.h"
#include "solver/domain_solver.h"
#include "solver/resilient_solver.h"
#include "util/timer.h"

namespace {

using namespace antmoc;
using namespace antmoc::bench;

constexpr int kIterations = 6;
constexpr int kCheckpointEvery = 1;
// Rank 1 dies at the top of its 6th iteration. The takeover path rewinds
// to the iteration-5 shard line and redoes only the final sweep; the
// PR 1 baseline has no shard line and re-runs all six.
constexpr const char* kKillerPlan = "solver.iteration throw solver nth=6 rank=1";

DomainRunParams base_params(const std::string& ckpt_dir) {
  DomainRunParams p;
  p.num_azim = 4;
  p.azim_spacing = 0.15;
  p.num_polar = 2;
  p.z_spacing = 0.75;
  // Bitwise identity across the three runs needs a fixed worker count.
  p.sweep_workers = 2;
  p.checkpoint_every = kCheckpointEvery;
  p.checkpoint_dir = ckpt_dir;
  p.comm_deadline = std::chrono::seconds(120);
  return p;
}

struct RunResult {
  double seconds = 0.0;
  double k_eff = 0.0;
  int takeovers = 0;
  int restarts = 0;
  long resumed_from = -1;
};

/// pr1_baseline reproduces the pre-migration recovery path: decomposed
/// solves wrote no checkpoint shards, so the only answer to a rank death
/// was a full re-run from iteration 0 (and its failure-free portion pays
/// no shard-write cost either, which only flatters the baseline).
RunResult run_once(const models::C5G7Model& model, const std::string& dir,
                   const char* plan, bool pr1_baseline) {
  std::filesystem::remove_all(dir);
  const Decomposition decomp{2, 2, 1};
  SolveOptions opts;
  opts.fixed_iterations = kIterations;

  if (plan != nullptr)
    fault::Injector::instance().arm(fault::parse_plan(plan));

  DecomposedResilientOptions ropts;
  ropts.params = base_params(dir);
  ropts.params.rebalance = pr1_baseline ? cluster::RebalanceMode::kOff
                                        : cluster::RebalanceMode::kOnFailure;
  if (pr1_baseline) ropts.params.checkpoint_every = 0;
  ropts.solve = opts;
  ropts.max_restarts = 1;

  Timer t;
  t.start();
  const DecomposedResilientReport report = solve_decomposed_resilient(
      model.geometry, model.materials, decomp, ropts);
  t.stop();
  fault::Injector::instance().disarm_all();

  RunResult out;
  out.seconds = t.seconds();
  out.k_eff = report.summary.result.k_eff;
  out.takeovers = report.summary.takeovers;
  out.restarts = report.restarts;
  out.resumed_from =
      static_cast<long>(report.summary.resumed_from_iteration);
  return out;
}

/// Best-of-N wall clock: every run is deterministic in its results (the
/// eigenvalue must not vary bit for bit between repeats), but wall time
/// on a shared host is not — the minimum is the run least perturbed by
/// scheduler noise.
RunResult run_one(const models::C5G7Model& model, const std::string& dir,
                  const char* plan, bool pr1_baseline) {
  constexpr int kReps = 3;
  RunResult best = run_once(model, dir, plan, pr1_baseline);
  for (int rep = 1; rep < kReps; ++rep) {
    const RunResult r = run_once(model, dir, plan, pr1_baseline);
    if (r.k_eff != best.k_eff) {
      std::fprintf(stderr,
                   "FAIL: repeat %d of the same scenario moved k_eff "
                   "(%.17g -> %.17g)\n",
                   rep, best.k_eff, r.k_eff);
      std::exit(1);
    }
    if (r.seconds < best.seconds) best = r;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  TelemetryScope telemetry_scope("bench_migration");
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_migration.json";

  const models::C5G7Model model = scaled_core();
  const std::string scratch =
      (std::filesystem::temp_directory_path() / "antmoc_bench_migration")
          .string();

  const RunResult clean =
      run_one(model, scratch + "/clean", nullptr, /*pr1_baseline=*/false);
  const RunResult takeover = run_one(model, scratch + "/takeover",
                                     kKillerPlan, /*pr1_baseline=*/false);
  const RunResult restart = run_one(model, scratch + "/restart", kKillerPlan,
                                    /*pr1_baseline=*/true);
  std::filesystem::remove_all(scratch);

  print_table(
      "Mid-solve rank death: survivor takeover vs checkpoint restart (" +
          std::to_string(kIterations) + " fixed iterations)",
      {"recovery", "wall s", "k_eff", "takeovers", "restarts"},
      {{"none (failure-free)", fmt(clean.seconds, "%.3f"),
        fmt(clean.k_eff, "%.6f"), "0", "0"},
       {"survivor takeover", fmt(takeover.seconds, "%.3f"),
        fmt(takeover.k_eff, "%.6f"), std::to_string(takeover.takeovers),
        std::to_string(takeover.restarts)},
       {"restart from scratch", fmt(restart.seconds, "%.3f"),
        fmt(restart.k_eff, "%.6f"), std::to_string(restart.takeovers),
        std::to_string(restart.restarts)}});

  const bool k_match = takeover.k_eff == clean.k_eff;
  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
    return 1;
  }
  std::fprintf(
      f,
      "{\n"
      "  \"bench\": \"migration\",\n"
      "  \"hardware_threads\": %u,\n"
      "  \"fixed_iterations\": %d,\n"
      "  \"checkpoint_every\": %d,\n"
      "  \"decomposition\": [2, 2, 1],\n"
      "  \"failure_free\": {\"seconds\": %.9g, \"k_eff\": %.17g},\n"
      "  \"takeover\": {\"seconds\": %.9g, \"k_eff\": %.17g, "
      "\"takeovers\": %d, \"resumed_from_iteration\": %ld},\n"
      "  \"restart\": {\"seconds\": %.9g, \"k_eff\": %.17g, "
      "\"restarts\": %d},\n"
      "  \"k_match_bitwise\": %s,\n"
      "  \"takeover_vs_restart\": %.9g\n"
      "}\n",
      std::thread::hardware_concurrency(), kIterations, kCheckpointEvery,
      clean.seconds, clean.k_eff, takeover.seconds, takeover.k_eff,
      takeover.takeovers, takeover.resumed_from, restart.seconds,
      restart.k_eff, restart.restarts, k_match ? "true" : "false",
      takeover.seconds / restart.seconds);
  std::fclose(f);
  std::printf("\nwrote %s\n", json_path.c_str());
  return k_match ? 0 : 1;
}
