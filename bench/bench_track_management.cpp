/// \file bench_track_management.cpp
/// Reproduces Fig. 9: EXP vs OTF vs Manager across five track scales —
/// solver runtime (averaged transport iterations, as in §5.3) plus device
/// memory. Expected shape: EXP fastest but dies on memory at scale
/// (DeviceOutOfMemory, printed as OOM like the paper's missing bars); OTF
/// minimal memory but ~6x kernel work; Manager recovers ~30% of the OTF
/// overhead within a fixed resident budget.

#include <benchmark/benchmark.h>

#include "bench/common.h"
#include "perfmodel/sweep_costs.h"
#include "solver/gpu_solver.h"
#include "util/timer.h"

namespace {

using namespace antmoc;
using namespace antmoc::bench;

struct Scale {
  double spacing;
  double z_spacing;
};

const std::vector<Scale> kScales = {
    {0.40, 2.0}, {0.30, 1.5}, {0.22, 1.0}, {0.16, 0.8}, {0.12, 0.6},
};

/// Device memory scaled so the capacity wall bites inside the sweep,
/// like the MI60's 16 GB does at the paper's scales. The paper's Manager
/// budget is 6.144 GB of 16 GB (38.4%); the scaled geometry is relatively
/// flux-heavy (fewer segments per track than a production core), so the
/// budget fraction is reduced to 15% to place the residency knee inside
/// the five-scale sweep.
constexpr std::size_t kDeviceBytes = std::size_t{22} << 20;
constexpr std::size_t kResidentBudget =
    static_cast<std::size_t>(kDeviceBytes * 0.15);

struct Row {
  long tracks = 0;
  double time_s[3] = {-1, -1, -1};     // EXP, OTF, Manager
  double modeled_s[3] = {-1, -1, -1};
  double mem_mib[3] = {-1, -1, -1};
  double resident_frac = 0.0;
};

Row run_scale(const Scale& s) {
  Row row;
  Problem p(scaled_core(), 4, s.spacing, 2, s.z_spacing);
  row.tracks = p.stacks.num_tracks();

  const TrackPolicy policies[3] = {TrackPolicy::kExplicit,
                                   TrackPolicy::kOnTheFly,
                                   TrackPolicy::kManaged};
  for (int i = 0; i < 3; ++i) {
    gpusim::Device device(gpusim::DeviceSpec::scaled(kDeviceBytes, 16));
    GpuSolverOptions opts;
    opts.policy = policies[i];
    opts.resident_budget_bytes = kResidentBudget;
    // Fig. 9 models the paper's template-free OTF design; chord templates
    // (and their arena charge, visible at this 22 MiB scale) are a later
    // optimization benchmarked by bench_otf_template instead.
    opts.templates = TemplateMode::kOff;
    try {
      GpuSolver solver(p.stacks, p.model.materials, device, opts);
      SolveOptions sopts;
      sopts.fixed_iterations = 5;  // paper: averaged transport iterations
      Timer wall;
      wall.start();
      solver.solve(sopts);
      wall.stop();
      row.time_s[i] = wall.seconds() / sopts.fixed_iterations;
      row.modeled_s[i] =
          device.kernel_accum().at("transport_sweep").modeled_seconds *
          1e3 / sopts.fixed_iterations;  // milliseconds
      row.mem_mib[i] = double(device.memory().peak_used()) / (1 << 20);
      if (policies[i] == TrackPolicy::kManaged)
        row.resident_frac = solver.manager().resident_fraction();
    } catch (const DeviceOutOfMemory&) {
      // The paper's EXP bars disappear at scale for exactly this reason.
    }
  }
  return row;
}

void report_fig9() {
  std::vector<std::vector<std::string>> rows;
  for (const auto& s : kScales) {
    const Row r = run_scale(s);
    auto cell = [&](double v, const char* spec) {
      return v < 0 ? std::string("OOM") : fmt(v, spec);
    };
    rows.push_back({fmt(double(r.tracks), "%.3g"),
                    cell(r.time_s[0], "%.3f"), cell(r.time_s[1], "%.3f"),
                    cell(r.time_s[2], "%.3f"),
                    cell(r.modeled_s[0], "%.3f"),
                    cell(r.modeled_s[1], "%.3f"),
                    cell(r.modeled_s[2], "%.3f"),
                    cell(r.mem_mib[0], "%.1f"), cell(r.mem_mib[1], "%.1f"),
                    cell(r.mem_mib[2], "%.1f"),
                    fmt(100 * r.resident_frac, "%.0f%%")});
  }
  print_table(
      "Fig. 9 — EXP / OTF / Manager: per-iteration time and peak device "
      "memory (device scaled to 22 MiB, Manager budget 15% of capacity; "
      "the paper's MI60 uses 6.144 GB of 16 GB)",
      {"3D tracks", "t_EXP s", "t_OTF s", "t_MGR s", "model_EXP ms",
       "model_OTF ms", "model_MGR ms", "mem_EXP MiB", "mem_OTF MiB",
       "mem_MGR MiB", "resident"},
      rows);

  // Headline claims of §5.3: the Manager-vs-OTF gain at the largest
  // scale (where residency is partial, the regime the paper measures) and
  // the OTF kernel overhead at the largest scale EXP still fits.
  const Row top = run_scale(kScales.back());
  if (top.modeled_s[1] > 0 && top.modeled_s[2] > 0)
    std::printf(
        "Manager vs OTF modeled improvement at the largest scale: %.1f%% "
        "(paper: ~30%%)\n",
        100.0 * (top.modeled_s[1] - top.modeled_s[2]) / top.modeled_s[1]);
  for (auto it = kScales.rbegin(); it != kScales.rend(); ++it) {
    const Row r = run_scale(*it);
    if (r.modeled_s[0] < 0) continue;
    std::printf(
        "OTF vs EXP modeled overhead: %.2fx (paper kernel ratio: 6x)\n",
        r.modeled_s[1] / r.modeled_s[0]);
    break;
  }
}

void bm_sweep_otf(benchmark::State& state) {
  Problem p(scaled_core(), 4, 0.4, 2, 2.0);
  gpusim::Device device(gpusim::DeviceSpec::scaled(std::size_t{1} << 30, 16));
  GpuSolverOptions opts;
  opts.policy = TrackPolicy::kOnTheFly;
  GpuSolver solver(p.stacks, p.model.materials, device, opts);
  SolveOptions sopts;
  sopts.fixed_iterations = 1;
  for (auto _ : state) solver.solve(sopts);
}
BENCHMARK(bm_sweep_otf);

void bm_sweep_explicit(benchmark::State& state) {
  Problem p(scaled_core(), 4, 0.4, 2, 2.0);
  gpusim::Device device(gpusim::DeviceSpec::scaled(std::size_t{1} << 30, 16));
  GpuSolverOptions opts;
  opts.policy = TrackPolicy::kExplicit;
  GpuSolver solver(p.stacks, p.model.materials, device, opts);
  SolveOptions sopts;
  sopts.fixed_iterations = 1;
  for (auto _ : state) solver.solve(sopts);
}
BENCHMARK(bm_sweep_explicit);

}  // namespace

int main(int argc, char** argv) {
  // Pin the paper's cost model (Fig. 9's 6x regeneration tax) so the
  // modeled columns reproduce the published ratios regardless of what the
  // startup micro-calibration would measure on this host.
  antmoc::perf::set_sweep_costs({1.0, 6.0, 1.5});
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  report_fig9();
  return 0;
}
