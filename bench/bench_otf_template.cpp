/// \file bench_otf_template.cpp
/// Chord-template regeneration bench (DESIGN.md §9): on a C5G7 pin slice
/// with commensurate axial layering, measures
///   1. the template-eligible OTF sweep — full 7-group ExpTable
///      attenuation over every eligible track, both directions — expanded
///      from chord templates versus the generic axial walk (the
///      regeneration tax the templates cut), after verifying the two
///      streams are bitwise identical;
///   2. Managed-policy end-to-end iteration time with `track.templates`
///      auto versus off (the seed behavior) on the device solver.
/// Emits BENCH_otf.json (path = argv[1], default ./BENCH_otf.json);
/// bench/run_otf_gate.sh validates it and enforces the bars (>= 1.5x
/// sweep speedup, end-to-end no worse than seed, bitwise identity).

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.h"
#include "solver/exponential.h"
#include "solver/gpu_solver.h"
#include "track/chord_template.h"
#include "util/timer.h"

namespace {

using namespace antmoc;
using namespace antmoc::bench;

constexpr int kIterations = 20;
constexpr int kGroups = 7;

/// The "C5G7 slice": a UO2 pin cell tall enough that most tracks traverse
/// unclipped, with layer thickness h = 2 * dz (the commensurate case the
/// geometry builder produces by default).
Problem slice() {
  return Problem(models::build_pin_cell(8, 8.0), 8, 0.1, 2, 0.5);
}

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One template-eligible OTF sweep: 7-group ExpTable attenuation over the
/// eligible tracks in both directions, segments supplied by `walk`.
template <class Walk>
double eligible_sweep(const std::vector<long>& ids, const Material& mat,
                      const ExpTable& table, Walk&& walk) {
  double psi[kGroups];
  for (int g = 0; g < kGroups; ++g) psi[g] = 1.0;
  double acc = 0.0;
  for (long id : ids)
    for (bool forward : {true, false})
      walk(id, forward, [&](long fsr, double len) {
        for (int g = 0; g < kGroups; ++g) {
          const double delta = psi[g] * table(mat.sigma_t(g) * len);
          psi[g] -= delta * 1e-9;
          acc += delta + static_cast<double>(fsr) * 1e-30;
        }
      });
  return acc;
}

/// Times `sweep` with enough repetitions for a stable wall-clock reading.
template <class Sweep>
double time_sweep(Sweep&& sweep, int* reps_out) {
  int reps = 1;
  for (;;) {
    const double t0 = now_seconds();
    for (int r = 0; r < reps; ++r) sweep();
    const double elapsed = now_seconds() - t0;
    if (elapsed >= 0.2 || reps >= 1 << 12) {
      *reps_out = reps;
      return elapsed / reps;
    }
    reps *= 2;
  }
}

struct EndToEnd {
  double seconds_per_iter = 0.0;
  double k_eff = 0.0;
  bool templates_active = false;
};

EndToEnd managed_run_once(const Problem& p, TemplateMode mode) {
  gpusim::Device device(
      gpusim::DeviceSpec::scaled(std::size_t{1} << 30, 16));
  GpuSolverOptions opts;
  opts.policy = TrackPolicy::kManaged;
  opts.resident_budget_bytes = std::size_t{2} << 20;
  opts.templates = mode;
  GpuSolver solver(p.stacks, p.model.materials, device, opts);
  SolveOptions sopts;
  sopts.fixed_iterations = kIterations;
  Timer wall;
  wall.start();
  const SolveResult r = solver.solve(sopts);
  wall.stop();
  return {wall.seconds() / kIterations, r.k_eff,
          solver.templates_active()};
}

/// Best-of-N with the two modes interleaved, so scheduler noise from
/// unrelated load (ctest runs the perf label in parallel) cannot charge
/// a slowdown to either configuration.
void managed_best_of(const Problem& p, EndToEnd* seed, EndToEnd* tmpl) {
  constexpr int kReps = 3;
  for (int r = 0; r < kReps; ++r) {
    const EndToEnd off = managed_run_once(p, TemplateMode::kOff);
    const EndToEnd on = managed_run_once(p, TemplateMode::kAuto);
    if (r == 0 || off.seconds_per_iter < seed->seconds_per_iter) *seed = off;
    if (r == 0 || on.seconds_per_iter < tmpl->seconds_per_iter) *tmpl = on;
  }
}

}  // namespace

int main(int argc, char** argv) {
  TelemetryScope telemetry_scope("bench_otf_template");
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_otf.json";

  Problem p = slice();
  const ChordTemplateCache cache(p.stacks);
  std::vector<long> eligible;
  for (long id = 0; id < p.stacks.num_tracks(); ++id)
    if (cache.eligible(id)) eligible.push_back(id);

  // --- Bitwise identity: template expansion vs the generic walk ----------
  bool bitwise_identical = true;
  long checked_segments = 0;
  for (long id = 0; id < p.stacks.num_tracks() && bitwise_identical; ++id)
    for (bool forward : {true, false}) {
      std::vector<std::pair<long, double>> ref, got;
      p.stacks.for_each_segment(id, forward, [&](long fsr, double len) {
        ref.emplace_back(fsr, len);
      });
      if (!cache.for_each_segment(id, forward, [&](long fsr, double len) {
            got.emplace_back(fsr, len);
          }))
        continue;
      checked_segments += static_cast<long>(ref.size());
      if (got != ref) {  // pair== is bitwise on the length doubles
        bitwise_identical = false;
        break;
      }
    }

  // --- 1. Template-eligible OTF sweep: template vs generic ---------------
  static const ExpTable table;
  const Material& mat = p.model.materials[0];
  volatile double sink = 0.0;
  auto generic_sweep = [&] {
    sink = eligible_sweep(eligible, mat, table,
                          [&](long id, bool fwd, auto&& f) {
                            p.stacks.for_each_segment(id, fwd, f);
                          });
  };
  auto template_sweep = [&] {
    sink = eligible_sweep(eligible, mat, table,
                          [&](long id, bool fwd, auto&& f) {
                            cache.for_each_segment(id, fwd, f);
                          });
  };
  generic_sweep();
  template_sweep();  // warm both paths
  int generic_reps = 0, template_reps = 0;
  const double t_generic = time_sweep(generic_sweep, &generic_reps);
  const double t_template = time_sweep(template_sweep, &template_reps);
  const double sweep_speedup = t_generic / t_template;

  print_table(
      "Template-eligible OTF sweep — chord templates vs generic walk "
      "(7-group attenuation, both directions)",
      {"path", "s/sweep", "reps", "speedup"},
      {{"generic walk", fmt(t_generic, "%.3e"),
        std::to_string(generic_reps), "1.00x"},
       {"chord templates", fmt(t_template, "%.3e"),
        std::to_string(template_reps), fmt(sweep_speedup, "%.2fx")}});
  std::printf("coverage: %.1f%% of segments (%ld of %ld tracks eligible), "
              "bitwise identical: %s\n",
              100.0 * cache.coverage(), cache.num_eligible(),
              p.stacks.num_tracks(), bitwise_identical ? "yes" : "NO");

  // --- 2. Managed end-to-end: templates auto vs off (seed) ---------------
  EndToEnd seed, tmpl;
  managed_best_of(p, &seed, &tmpl);
  print_table(
      "Managed-policy end-to-end (GpuSolver, 16 CUs, " +
          std::to_string(kIterations) + " fixed iterations)",
      {"track.templates", "s/iter", "k_eff", "active"},
      {{"off (seed)", fmt(seed.seconds_per_iter, "%.4f"),
        fmt(seed.k_eff, "%.9f"), "-"},
       {"auto", fmt(tmpl.seconds_per_iter, "%.4f"),
        fmt(tmpl.k_eff, "%.9f"), tmpl.templates_active ? "yes" : "no"}});

  // --- BENCH_otf.json -----------------------------------------------------
  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
    return 1;
  }
  std::fprintf(
      f,
      "{\n"
      "  \"bench\": \"otf_template\",\n"
      "  \"tracks\": %ld,\n"
      "  \"eligible_tracks\": %ld,\n"
      "  \"coverage\": %.9g,\n"
      "  \"checked_segments\": %ld,\n"
      "  \"bitwise_identical\": %s,\n"
      "  \"eligible_sweep\": {\n"
      "    \"generic_seconds\": %.9g,\n"
      "    \"template_seconds\": %.9g,\n"
      "    \"speedup\": %.9g\n"
      "  },\n"
      "  \"managed_end_to_end\": {\n"
      "    \"off\": {\"seconds_per_iteration\": %.9g, \"k_eff\": %.17g},\n"
      "    \"auto\": {\"seconds_per_iteration\": %.9g, \"k_eff\": %.17g, "
      "\"templates_active\": %s}\n"
      "  }\n"
      "}\n",
      p.stacks.num_tracks(), cache.num_eligible(), cache.coverage(),
      checked_segments, bitwise_identical ? "true" : "false", t_generic,
      t_template, sweep_speedup, seed.seconds_per_iter, seed.k_eff,
      tmpl.seconds_per_iter, tmpl.k_eff,
      tmpl.templates_active ? "true" : "false");
  std::fclose(f);
  std::printf("\nwrote %s\n", json_path.c_str());
  return 0;
}
