#!/usr/bin/env bash
# Overlapped-exchange performance gate (DESIGN.md §8). Runs
# bench_exchange_overlap, validates the BENCH_exchange.json it emits, and
# enforces the bars:
#
#   * JSON must be well-formed with every expected field, else FAIL.
#   * Synchronous and overlapped k_eff must be *identical* — the overlap
#     is a communication-schedule change, never a physics change.
#   * Eq. 7 consistency: flux_bytes_per_iter == crossing_track_ends *
#     7 groups * 4 bytes.
#   * overlap_ratio must land in (0, 1].
#   * Overlapped must not be materially slower than synchronous. The
#     in-process runtime has no real wire to hide, so no speedup is
#     demanded — the bar is "within x1.25" (timer noise + the request
#     bookkeeping) on any host.
#
# Usage: bench/run_exchange_gate.sh [build-dir]   (from the repo root;
#        build-dir defaults to ./build and must already contain the bench)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
BIN="$BUILD/bench/bench_exchange_overlap"

if [ ! -x "$BIN" ]; then
  echo "FAIL: $BIN not built (cmake --build $BUILD --target" \
       "bench_exchange_overlap)"
  exit 1
fi

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT
json="$workdir/BENCH_exchange.json"

echo "== exchange gate: running bench_exchange_overlap =="
"$BIN" "$json"

[ -s "$json" ] || { echo "FAIL: bench wrote no BENCH_exchange.json"; exit 1; }

python3 - "$json" <<'EOF'
import json, sys

try:
    data = json.load(open(sys.argv[1]))
except Exception as e:
    sys.exit(f"FAIL: BENCH_exchange.json is malformed: {e}")

def need(obj, key, ctx):
    if key not in obj:
        sys.exit(f"FAIL: missing field {ctx}.{key}")
    return obj[key]

assert need(data, "bench", "") == "exchange_overlap", "wrong bench tag"
need(data, "hardware_threads", "")
need(data, "fixed_iterations", "")
decomp = need(data, "decomposition", "")
assert len(decomp) == 3 and all(n >= 1 for n in decomp), \
    f"FAIL: bad decomposition {decomp}"

sync = need(data, "sync", "")
over = need(data, "overlapped", "")
for name, r in [("sync", sync), ("overlapped", over)]:
    assert need(r, "seconds_per_iteration", name) > 0, \
        f"{name}: non-positive seconds_per_iteration"
    assert need(r, "k_eff", name) > 0, f"{name}: non-positive k_eff"

# Result identity: the overlap changes the communication schedule only.
assert sync["k_eff"] == over["k_eff"], \
    (f"FAIL: overlapped k_eff {over['k_eff']!r} differs from "
     f"synchronous {sync['k_eff']!r}")

# Eq. 7: wire bytes = crossing track ends * 7 groups * 4 bytes.
ends = need(data, "crossing_track_ends", "")
bytes_ = need(data, "flux_bytes_per_iter", "")
assert ends > 0, "FAIL: no crossing track ends in a real decomposition"
assert bytes_ == ends * 7 * 4, \
    f"FAIL: flux_bytes_per_iter {bytes_} != {ends} ends * 7 groups * 4 B"

ratio = need(over, "overlap_ratio", "overlapped")
assert 0.0 < ratio <= 1.0, f"FAIL: overlap_ratio {ratio} outside (0, 1]"

slowdown = over["seconds_per_iteration"] / sync["seconds_per_iteration"]
print(f"   overlapped vs synchronous: {slowdown:.3f}x "
      f"(bar: <= 1.25), overlap ratio {ratio:.3f}")
assert slowdown <= 1.25, \
    f"FAIL: overlapped exchange {slowdown:.3f}x slower than synchronous"

print(f"   JSON OK: {ends} crossing ends, {bytes_} B/iter over "
      f"{decomp} domains")
EOF

echo "exchange gate PASSED"
