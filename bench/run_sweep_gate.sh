#!/usr/bin/env bash
# Sweep-throughput performance gate (DESIGN.md §7). Runs
# bench_sweep_throughput, validates the BENCH_sweep.json it emits, and
# enforces the perf bars:
#
#   * JSON must be well-formed with every expected field, else FAIL.
#   * Every configuration (serial host, each worker count, device atomic,
#     device privatized) must agree on k_eff — the parallel sweep and the
#     privatized tallies are refactorings, not physics changes.
#   * Privatized device tallies must be no slower than the atomic
#     fallback (x1.10 slack for timer noise).
#   * On hosts with >= 4 hardware threads, the best parallel CpuSolver
#     sweep must be >= 2x faster than serial. On smaller hosts (CI
#     containers are often 1-2 cores) parallel can only oversubscribe, so
#     the bar is relaxed to "within x1.25 of serial".
#   * The event backend (sweep.backend=event, DESIGN.md §13) must deliver
#     >= 1.3x the history backend's single-thread segments/s, must stay
#     >= 0.95x history at the parallel worker count, and must report
#     exactly the history k_eff (the backends are bitwise identical).
#
# Usage: bench/run_sweep_gate.sh [build-dir]   (from the repo root;
#        build-dir defaults to ./build and must already contain the bench)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
BIN="$BUILD/bench/bench_sweep_throughput"

if [ ! -x "$BIN" ]; then
  echo "FAIL: $BIN not built (cmake --build $BUILD --target" \
       "bench_sweep_throughput)"
  exit 1
fi

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT
json="$workdir/BENCH_sweep.json"

echo "== sweep gate: running bench_sweep_throughput =="
"$BIN" "$json"

[ -s "$json" ] || { echo "FAIL: bench wrote no BENCH_sweep.json"; exit 1; }

python3 - "$json" <<'EOF'
import json, sys

try:
    data = json.load(open(sys.argv[1]))
except Exception as e:
    sys.exit(f"FAIL: BENCH_sweep.json is malformed: {e}")

def need(obj, key, ctx):
    if key not in obj:
        sys.exit(f"FAIL: missing field {ctx}.{key}")
    return obj[key]

assert need(data, "bench", "") == "sweep_throughput", "wrong bench tag"
hw = need(data, "hardware_threads", "")
need(data, "fixed_iterations", "")
segments = need(data, "segments_per_sweep", "")
assert segments > 0, "segments_per_sweep must be positive"

host = need(data, "host", "")
serial = need(host, "serial", "host")
best = need(host, "best_parallel", "host")
workers = need(host, "workers", "host")
assert len(workers) >= 2, "worker sweep must cover at least 1..2"

device = need(data, "device", "")
atomic = need(device, "atomic", "device")
priv = need(device, "privatized", "device")

event = need(data, "event", "")
ev_hist_s = need(event, "history_serial", "event")
ev_event_s = need(event, "event_serial", "event")
ev_hist_p = need(event, "history_parallel", "event")
ev_event_p = need(event, "event_parallel", "event")

# The event section runs with the ExpTable evaluator (the production
# configuration), which legitimately shifts k_eff by up to the table
# tolerance vs the exact-expm1 runs above — so its four runs join the
# well-formedness checks but not the exact-physics agreement below; the
# section enforces its own, stricter, bar: event == history bitwise.
backend_runs = [("event.history_serial", ev_hist_s),
                ("event.event_serial", ev_event_s),
                ("event.history_parallel", ev_hist_p),
                ("event.event_parallel", ev_event_p)]

runs = [("serial", serial), ("best_parallel", best),
        ("device.atomic", atomic), ("device.privatized", priv)] + [
        (f"workers[{w['workers']}]", w) for w in workers]
for name, r in backend_runs:
    s = need(r, "seconds_per_iteration", name)
    assert s > 0, f"{name}: non-positive seconds_per_iteration"
    assert need(r, "segments_per_second", name) > 0, \
        f"{name}: non-positive segments_per_second"
for name, r in runs:
    s = need(r, "seconds_per_iteration", name)
    assert s > 0, f"{name}: non-positive seconds_per_iteration"
    assert need(r, "segments_per_second", name) > 0, \
        f"{name}: non-positive segments_per_second"

# Physics invariance: every configuration solves the same problem.
ks = [(name, need(r, "k_eff", name)) for name, r in runs]
k0 = ks[0][1]
assert k0 > 0, "serial k_eff must be positive"
for name, k in ks:
    assert abs(k - k0) < 1e-7, \
        f"FAIL: {name} k_eff {k} deviates from serial {k0}"

# Privatized device tallies must not lose to the atomic fallback.
ratio = priv["seconds_per_iteration"] / atomic["seconds_per_iteration"]
print(f"   device privatized vs atomic: {ratio:.3f}x "
      f"(bar: <= 1.10)")
assert ratio <= 1.10, \
    f"FAIL: privatized tallies {ratio:.3f}x slower than atomics"

# Host scaling bar, calibrated to the machine.
speedup = serial["seconds_per_iteration"] / best["seconds_per_iteration"]
print(f"   host best parallel ({best['workers']} workers): "
      f"{speedup:.2f}x vs serial on {hw} hardware threads")
if hw >= 4:
    assert speedup >= 2.0, \
        f"FAIL: parallel sweep speedup {speedup:.2f}x < 2x on {hw} threads"
else:
    assert speedup >= 1.0 / 1.25, \
        (f"FAIL: parallel sweep {1.0/speedup:.2f}x slower than serial "
         f"(> x1.25 oversubscription slack on {hw} threads)")

# Event backend: bitwise-identical physics, so the k_eff must match the
# history run EXACTLY (not merely within tolerance), and the flat-array
# kernel must clear its throughput bars.
assert ev_event_s["k_eff"] == ev_hist_s["k_eff"], \
    (f"FAIL: event serial k_eff {ev_event_s['k_eff']} != history "
     f"{ev_hist_s['k_eff']} (backends must be bitwise identical)")
assert ev_event_p["k_eff"] == ev_hist_p["k_eff"], \
    (f"FAIL: event parallel k_eff {ev_event_p['k_eff']} != history "
     f"{ev_hist_p['k_eff']} (backends must be bitwise identical)")

eoh = need(event, "event_over_history", "event")
eoh_p = need(event, "event_over_history_parallel", "event")
print(f"   event vs history serial: {eoh:.2f}x (bar: >= 1.3)")
assert eoh >= 1.3, \
    f"FAIL: event backend {eoh:.2f}x history single-thread < 1.3x bar"
print(f"   event vs history at {event['parallel_workers']} workers: "
      f"{eoh_p:.2f}x (bar: >= 0.95)")
assert eoh_p >= 0.95, \
    (f"FAIL: event backend {eoh_p:.2f}x history at "
     f"{event['parallel_workers']} workers < 0.95x bar")

print(f"   JSON OK: {len(workers)} worker points, "
      f"{segments} segments/sweep")
EOF

echo "sweep gate PASSED"
