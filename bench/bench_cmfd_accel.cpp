/// \file bench_cmfd_accel.cpp
/// CMFD acceleration bench (DESIGN.md §14): on the scaled C5G7 core,
/// measures
///   1. the plain power iteration — outer-iteration count and wall clock
///      to the gate tolerance;
///   2. the CMFD-accelerated solve — same tolerance, same laydown; the
///      pin-resolution coarse solve must cut outer iterations >= 3x and
///      wall clock to <= 0.6x while landing within 5 pcm of the plain
///      k_eff;
///   3. the instrumented-but-idle path — CMFD tallying every sweep but
///      never prolonging (start_iteration past the horizon) must be
///      bitwise identical to the plain solver: the tally hooks are pure
///      observers.
/// Emits BENCH_cmfd.json (path = argv[1], default ./BENCH_cmfd.json);
/// bench/run_cmfd_gate.sh validates it and enforces the bars.

#include <cmath>
#include <cstdio>
#include <string>

#include "bench/common.h"
#include "cmfd/cmfd.h"
#include "perfmodel/perfmodel.h"
#include "solver/cpu_solver.h"
#include "util/timer.h"

namespace {

using namespace antmoc;
using namespace antmoc::bench;

constexpr int kWorkers = 2;
constexpr int kIdleIterations = 30;

SolveOptions gate_options() {
  SolveOptions opts;
  opts.tolerance = 1e-7;
  opts.max_iterations = 2000;
  return opts;
}

struct Run {
  SolveResult result;
  double seconds = 0.0;
  int accelerations = 0;
  int skips = 0;
  bool degraded = false;
};

Run run_solver(const Problem& p, const SolveOptions& opts,
               const cmfd::CmfdOptions* co) {
  CpuSolver solver(p.stacks, p.model.materials, kWorkers);
  if (co != nullptr) solver.enable_cmfd(*co);
  Timer t;
  t.start();
  Run r;
  r.result = solver.solve(opts);
  t.stop();
  r.seconds = t.seconds();
  if (co != nullptr) {
    r.accelerations = solver.cmfd_accel()->accelerations();
    r.skips = solver.cmfd_accel()->skips();
    r.degraded = solver.cmfd_accel()->degraded();
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_cmfd.json";
  TelemetryScope telemetry("BENCH_cmfd");

  // The cmfd_test gate problem: full 3x3-assembly heterogeneity over a
  // shallow axial extent, coarse angular discretization — converges in a
  // few hundred plain outers, so both solves finish in tens of seconds.
  Problem p(scaled_core(), 4, 0.3, 2, 0.75);
  const SolveOptions opts = gate_options();

  std::printf("== plain power iteration ==\n");
  const Run plain = run_solver(p, opts, nullptr);

  std::printf("== CMFD-accelerated ==\n");
  cmfd::CmfdOptions co;
  co.enable = true;
  const Run accel = run_solver(p, opts, &co);

  // Idle-instrumentation identity: short fixed-iteration runs, CMFD
  // tallying but never prolonging vs. no CMFD at all.
  std::printf("== instrumented-but-idle vs plain (fixed %d sweeps) ==\n",
              kIdleIterations);
  SolveOptions fixed;
  fixed.fixed_iterations = kIdleIterations;
  const Run off_plain = run_solver(p, fixed, nullptr);
  cmfd::CmfdOptions idle;
  idle.enable = true;
  idle.start_iteration = 1000000;
  const Run off_idle = run_solver(p, fixed, &idle);
  const bool off_bitwise =
      off_plain.result.k_eff == off_idle.result.k_eff &&
      off_plain.result.residual == off_idle.result.residual;

  const double pcm = std::abs(accel.result.k_eff - plain.result.k_eff) * 1e5;
  const double outer_ratio =
      static_cast<double>(plain.result.iterations) /
      static_cast<double>(accel.result.iterations);
  const double wall_ratio = accel.seconds / plain.seconds;
  // Empirical dominance ratio of the plain iteration (error ~ rho^N
  // reaching the tolerance at N outers) feeds the perf-model prediction
  // recorded alongside the measurement.
  const double rho =
      std::pow(opts.tolerance,
               1.0 / static_cast<double>(plain.result.iterations));
  const double predicted =
      perf::predict_cmfd_outer_reduction(rho);

  print_table(
      "CMFD acceleration (scaled C5G7 core)",
      {"configuration", "k_eff", "outers", "wall [s]"},
      {{"plain", fmt(plain.result.k_eff, "%.8f"),
        std::to_string(plain.result.iterations), fmt(plain.seconds, "%.2f")},
       {"cmfd", fmt(accel.result.k_eff, "%.8f"),
        std::to_string(accel.result.iterations), fmt(accel.seconds, "%.2f")},
       {"delta", fmt(pcm, "%.3f") + " pcm", fmt(outer_ratio, "%.2f") + "x",
        fmt(wall_ratio, "%.2f") + "x"}});

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
    return 1;
  }
  std::fprintf(
      f,
      "{\n"
      "  \"bench\": \"cmfd_accel\",\n"
      "  \"tolerance\": %.3g,\n"
      "  \"workers\": %d,\n"
      "  \"plain\": {\"k_eff\": %.17g, \"iterations\": %d,\n"
      "            \"converged\": %s, \"seconds\": %.9g},\n"
      "  \"cmfd\": {\"k_eff\": %.17g, \"iterations\": %d,\n"
      "           \"converged\": %s, \"seconds\": %.9g,\n"
      "           \"accelerations\": %d, \"skips\": %d,\n"
      "           \"degraded\": %s},\n"
      "  \"pcm\": %.9g,\n"
      "  \"outer_ratio\": %.9g,\n"
      "  \"wallclock_ratio\": %.9g,\n"
      "  \"predicted_outer_reduction\": %.9g,\n"
      "  \"off_bitwise\": %s,\n"
      "  \"off_k_plain\": %.17g,\n"
      "  \"off_k_instrumented\": %.17g\n"
      "}\n",
      opts.tolerance, kWorkers, plain.result.k_eff, plain.result.iterations,
      plain.result.converged ? "true" : "false", plain.seconds,
      accel.result.k_eff, accel.result.iterations,
      accel.result.converged ? "true" : "false", accel.seconds,
      accel.accelerations, accel.skips, accel.degraded ? "true" : "false",
      pcm, outer_ratio, wall_ratio, predicted,
      off_bitwise ? "true" : "false", off_plain.result.k_eff,
      off_idle.result.k_eff);
  std::fclose(f);
  std::printf("\nwrote %s\n", json_path.c_str());
  return 0;
}
