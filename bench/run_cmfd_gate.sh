#!/usr/bin/env bash
# CMFD acceleration gate (DESIGN.md §14). Runs bench_cmfd_accel,
# validates the BENCH_cmfd.json it emits, and enforces the bars:
#
#   * JSON must be well-formed with every expected field, else FAIL.
#   * Both solves must converge, and the accelerated run must never
#     degrade to plain iteration.
#   * Accelerated k_eff must land within 5 pcm of the plain k_eff.
#   * CMFD must cut outer iterations >= 3x and wall clock to <= 0.6x.
#   * The instrumented-but-idle run (tallying every sweep, never
#     prolonging) must be bitwise identical to the plain solver.
#
# Usage: bench/run_cmfd_gate.sh [build-dir]   (from the repo root;
#        build-dir defaults to ./build and must already contain the bench)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
BIN="$BUILD/bench/bench_cmfd_accel"

if [ ! -x "$BIN" ]; then
  echo "FAIL: $BIN not built (cmake --build $BUILD --target" \
       "bench_cmfd_accel)"
  exit 1
fi

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT
json="$workdir/BENCH_cmfd.json"

echo "== cmfd gate: running bench_cmfd_accel =="
"$BIN" "$json"

[ -s "$json" ] || { echo "FAIL: bench wrote no BENCH_cmfd.json"; exit 1; }

python3 - "$json" <<'EOF'
import json, sys

try:
    data = json.load(open(sys.argv[1]))
except Exception as e:
    sys.exit(f"FAIL: BENCH_cmfd.json is malformed: {e}")

def need(obj, key, ctx):
    if key not in obj:
        sys.exit(f"FAIL: missing field {ctx}.{key}")
    return obj[key]

assert need(data, "bench", "") == "cmfd_accel", "wrong bench tag"
need(data, "tolerance", "")
plain = need(data, "plain", "")
cmfd = need(data, "cmfd", "")
for name, run in (("plain", plain), ("cmfd", cmfd)):
    assert need(run, "k_eff", name) > 0, f"{name}: non-positive k_eff"
    assert need(run, "iterations", name) > 0, f"{name}: no iterations"
    assert need(run, "seconds", name) > 0, f"{name}: non-positive seconds"
    assert need(run, "converged", name), f"FAIL: {name} did not converge"
assert not need(cmfd, "degraded", "cmfd"), \
    "FAIL: accelerated run degraded to plain iteration"
assert need(cmfd, "accelerations", "cmfd") > 0, \
    "FAIL: accelerated run never applied a prolongation"

pcm = need(data, "pcm", "")
print(f"   k agreement: {pcm:.3f} pcm (bar: <= 5)")
assert pcm <= 5.0, f"FAIL: accelerated k_eff off by {pcm:.3f} pcm > 5"

outer = need(data, "outer_ratio", "")
print(f"   outer iterations: {plain['iterations']} -> "
      f"{cmfd['iterations']} ({outer:.2f}x, bar: >= 3)")
assert outer >= 3.0, f"FAIL: outer-iteration reduction {outer:.2f}x < 3x"

wall = need(data, "wallclock_ratio", "")
print(f"   wall clock: {plain['seconds']:.2f}s -> {cmfd['seconds']:.2f}s "
      f"({wall:.2f}x, bar: <= 0.6)")
assert wall <= 0.6, f"FAIL: accelerated wall clock {wall:.2f}x > 0.6x"

assert need(data, "off_bitwise", ""), \
    (f"FAIL: instrumented-but-idle k {data.get('off_k_instrumented')} != "
     f"plain {data.get('off_k_plain')} (tallies must be pure observers)")
print(f"   idle instrumentation bitwise identical: "
      f"k = {data['off_k_plain']:.12f}")
print(f"   perf model predicted reduction: "
      f"{data.get('predicted_outer_reduction', 0):.2f}x")
EOF

echo "cmfd gate PASSED"
