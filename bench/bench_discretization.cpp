/// \file bench_discretization.cpp
/// Ablation study for the discretization choices DESIGN.md calls out:
///  * k-convergence of the pin-cell lattice under radial spacing, axial
///    intercept spacing, and polar order — the knobs of paper Table 2/4;
///  * the axial-link quantization (radial reflective links re-inject at
///    the nearest z-lattice intercept, error <= dz/2) vanishing with dz;
///  * graph-partitioner refinement passes vs achieved uniformity (the L1
///    quality/cost trade).

#include <benchmark/benchmark.h>

#include <map>
#include <tuple>

#include "bench/common.h"
#include "partition/partitioner.h"
#include "solver/cpu_solver.h"
#include "util/rng.h"

namespace {

using namespace antmoc;
using namespace antmoc::bench;

double pin_k(int num_azim, double spacing, int num_polar, double dz) {
  static std::map<std::tuple<int, double, int, double>, double> cache;
  const auto key = std::make_tuple(num_azim, spacing, num_polar, dz);
  if (const auto it = cache.find(key); it != cache.end()) return it->second;
  const auto model = models::build_pin_cell(2, 2.0);
  const Geometry& g = model.geometry;
  const Quadrature quad(num_azim, spacing, 1.26, 1.26, num_polar);
  TrackGenerator2D gen(quad, g.bounds(),
                       {LinkKind::kReflective, LinkKind::kReflective,
                        LinkKind::kReflective, LinkKind::kReflective});
  gen.trace(g);
  const TrackStacks stacks(gen, g, 0.0, 2.0, dz);
  CpuSolver solver(stacks, model.materials);
  SolveOptions opts;
  opts.tolerance = 1e-7;
  opts.max_iterations = 30000;
  return cache[key] = solver.solve(opts).k_eff;
}

void report_k_convergence() {
  std::vector<std::vector<std::string>> rows;
  const double k_fine = pin_k(16, 0.05, 3, 0.1);
  for (auto [azim, spacing, polar, dz] :
       {std::tuple{4, 0.4, 1, 1.0}, std::tuple{4, 0.2, 1, 0.5},
        std::tuple{8, 0.1, 2, 0.25}, std::tuple{16, 0.05, 3, 0.1}}) {
    const double k = pin_k(azim, spacing, polar, dz);
    rows.push_back({std::to_string(azim), fmt(spacing, "%.2f"),
                    std::to_string(polar), fmt(dz, "%.2f"),
                    fmt(k, "%.6f"),
                    fmt(1e5 * (k - k_fine) / k_fine, "%+.0f pcm")});
  }
  print_table(
      "Ablation — pin-cell k vs discretization (reference = finest row)",
      {"azim", "spacing", "polar", "dz", "k_eff", "delta"}, rows);
}

void report_axial_quantization() {
  // Halving dz halves the worst-case z re-injection offset of radial
  // reflective links; k must converge monotonically-ish in dz.
  std::vector<std::vector<std::string>> rows;
  double prev = 0.0;
  const double k_ref = pin_k(4, 0.2, 2, 0.0625);
  for (double dz : {1.0, 0.5, 0.25, 0.125}) {
    const double k = pin_k(4, 0.2, 2, dz);
    rows.push_back({fmt(dz, "%.4f"), fmt(k, "%.6f"),
                    fmt(1e5 * std::abs(k - k_ref) / k_ref, "%.1f pcm"),
                    prev == 0.0 ? "-" : fmt(k - prev, "%+.2e")});
    prev = k;
  }
  print_table("Ablation — axial-intercept spacing dz (z-link quantization "
              "error vanishes with dz; reference dz=0.0625)",
              {"dz", "k_eff", "|k - k_ref|", "step"}, rows);
}

void report_partitioner_refinement() {
  Rng rng(17);
  partition::Graph g(256);
  for (int v = 0; v < 256; ++v)
    g.set_weight(v, 1.0 + 8.0 * rng.next_double());
  for (int v = 0; v + 1 < 256; ++v) g.add_edge(v, v + 1, 1.0);

  std::vector<std::vector<std::string>> rows;
  for (int passes : {0, 4, 16, 64, 256}) {
    partition::PartitionOptions opts;
    opts.refine_passes = passes;
    const auto part = partition::partition_kway(g, 16, opts);
    rows.push_back(
        {std::to_string(passes),
         fmt(partition::load_uniformity(g.weights(), part, 16), "%.4f"),
         fmt(partition::edge_cut(g, part), "%.1f")});
  }
  print_table("Ablation — L1 partitioner refinement passes "
              "(quality vs cost of the ParMETIS stand-in)",
              {"refine passes", "uniformity", "edge cut"}, rows);
}

void bm_pin_k_solve(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(pin_k(4, 0.4, 1, 1.0));
}
BENCHMARK(bm_pin_k_solve)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  report_k_convergence();
  report_axial_quantization();
  report_partitioner_refinement();
  return 0;
}
