#!/usr/bin/env bash
# Compact segment-store gate (DESIGN.md §15). Runs bench_memory_gate,
# validates the BENCH_memory.json it emits, and enforces the bars:
#
#   * JSON must be well-formed with every expected field, else FAIL.
#   * Both converged solves must actually converge.
#   * Compact resident bytes must be <= 0.55x exact over the same tracks.
#   * Compact k_eff must land within 2 pcm of exact, and the per-FSR
#     scalar-flux RMS must stay <= 1e-5 relative.
#   * Under one capped arena budget, compact must keep a strictly higher
#     resident segment fraction and model >= 1.15x the eligible-sweep
#     throughput of exact at the same cap (pinned costs {1, 6, 1.5}).
#
# Usage: bench/run_memory_gate.sh [build-dir]   (from the repo root;
#        build-dir defaults to ./build and must already contain the bench)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
BIN="$BUILD/bench/bench_memory_gate"

if [ ! -x "$BIN" ]; then
  echo "FAIL: $BIN not built (cmake --build $BUILD --target" \
       "bench_memory_gate)"
  exit 1
fi

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT
json="$workdir/BENCH_memory.json"

echo "== memory gate: running bench_memory_gate =="
"$BIN" "$json"

[ -s "$json" ] || { echo "FAIL: bench wrote no BENCH_memory.json"; exit 1; }

python3 - "$json" <<'EOF'
import json, sys

try:
    data = json.load(open(sys.argv[1]))
except Exception as e:
    sys.exit(f"FAIL: BENCH_memory.json is malformed: {e}")

def need(obj, key, ctx):
    if key not in obj:
        sys.exit(f"FAIL: missing field {ctx}.{key}")
    return obj[key]

assert need(data, "bench", "") == "memory_compact", "wrong bench tag"
need(data, "tolerance", "")
seg = need(data, "segment_bytes", "")
assert need(seg, "exact", "segment_bytes") == 16
assert need(seg, "compact", "segment_bytes") == 8

exact = need(data, "exact", "")
compact = need(data, "compact", "")
for name, run in (("exact", exact), ("compact", compact)):
    assert need(run, "k_eff", name) > 0, f"{name}: non-positive k_eff"
    assert need(run, "iterations", name) > 0, f"{name}: no iterations"
    assert need(run, "seconds", name) > 0, f"{name}: non-positive seconds"
    assert need(run, "converged", name), f"FAIL: {name} did not converge"
    assert need(run, "resident_bytes", name) > 0, f"{name}: empty store"

ratio = need(data, "bytes_ratio", "")
print(f"   resident bytes: {exact['resident_bytes']} -> "
      f"{compact['resident_bytes']} ({ratio:.3f}x, bar: <= 0.55)")
assert ratio <= 0.55, f"FAIL: compact resident bytes {ratio:.3f}x > 0.55x"

pcm = need(data, "pcm", "")
print(f"   k agreement: {pcm:.3f} pcm (bar: <= 2)")
assert pcm <= 2.0, f"FAIL: compact k_eff off by {pcm:.3f} pcm > 2"

rms = need(data, "flux_rms", "")
print(f"   per-FSR flux RMS: {rms:.3g} relative (bar: <= 1e-5)")
assert rms <= 1e-5, f"FAIL: flux RMS {rms:.3g} > 1e-5 relative"

cap = need(data, "capped", "")
ef = need(cap, "exact_fraction", "capped")
cf = need(cap, "compact_fraction", "capped")
print(f"   capped arena ({cap.get('budget_bytes')} B): resident fraction "
      f"{ef:.3f} -> {cf:.3f} (bar: strictly higher)")
assert cf > ef, \
    f"FAIL: compact fraction {cf:.3f} not above exact {ef:.3f} at same cap"

tput = need(cap, "throughput_ratio", "capped")
print(f"   modeled eligible-sweep throughput: {tput:.2f}x (bar: >= 1.15)")
assert tput >= 1.15, f"FAIL: modeled throughput {tput:.2f}x < 1.15x"
EOF

echo "memory gate PASSED"
