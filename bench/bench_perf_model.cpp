/// \file bench_perf_model.cpp
/// Reproduces Fig. 8: performance-model validation. The Eq. 4 segment
/// estimator is calibrated on a small sample, then predicted vs measured
/// segment counts are compared across a sweep of track counts; the paper
/// reports relative error within 1.1%.
///
/// Also microbenchmarks the model itself (the point of Eqs. 2-7 is that
/// they are cheap enough to drive load mapping decisions).

#include <benchmark/benchmark.h>

#include "bench/common.h"
#include "perfmodel/perfmodel.h"

namespace {

using namespace antmoc;
using namespace antmoc::bench;

void report_fig8() {
  // Calibration sample: same geometry, dense-but-small laydown.
  Problem sample(scaled_core(), 4, 0.20, 2, 1.0);
  const auto ratios =
      perf::SegmentRatios::calibrate(sample.gen, sample.stacks);

  std::vector<std::vector<std::string>> rows;
  for (double spacing : {0.15, 0.12, 0.10, 0.08, 0.06}) {
    Problem p(scaled_core(), 4, spacing, 2, 1.0);
    const long n3d = p.stacks.num_tracks();
    const long measured = p.stacks.total_segments();
    const long predicted = ratios.predict_segments_3d(n3d);
    const double err =
        std::abs(double(predicted) - double(measured)) / double(measured);
    rows.push_back({fmt(double(n3d), "%.0f"), fmt(double(predicted), "%.0f"),
                    fmt(double(measured), "%.0f"),
                    fmt(100.0 * err, "%.2f%%")});
  }
  print_table(
      "Fig. 8 — predicted vs measured 3D segment counts "
      "(paper: relative error fluctuates within 1.1%)",
      {"3D tracks", "predicted segs", "measured segs", "rel. error"}, rows);
}

void bm_predict_tracks_3d(benchmark::State& state) {
  Problem p(scaled_core(), 4, 0.2, 2, 1.0);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        perf::predict_num_tracks_3d(p.gen, 0.0, 9.639, 1.0));
}
BENCHMARK(bm_predict_tracks_3d);

void bm_calibrate_ratios(benchmark::State& state) {
  Problem p(scaled_core(), 4, 0.3, 2, 1.5);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        perf::SegmentRatios::calibrate(p.gen, p.stacks));
}
BENCHMARK(bm_calibrate_ratios);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  report_fig8();
  return 0;
}
