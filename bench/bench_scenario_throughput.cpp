/// \file bench_scenario_throughput.cpp
/// Scenario-engine throughput bench (DESIGN.md §12): on the scaled C5G7
/// core, measures
///   1. cold one-shot latency — a fresh laydown, caches, device, and
///      solver for one scenario (what every job would pay without the
///      engine);
///   2. warm engine latency — the same scenario as a session job served
///      from the shared caches (must be bitwise identical and <= 0.5x of
///      the cold latency);
///   3. batch throughput — a mixed batch over the device pool (jobs/s,
///      with at least two jobs in flight at the peak).
/// Emits BENCH_engine.json (path = argv[1], default ./BENCH_engine.json);
/// bench/run_engine_gate.sh validates it and enforces the bars.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.h"
#include "engine/scenario.h"
#include "engine/session.h"
#include "perfmodel/sweep_costs.h"
#include "util/timer.h"

namespace {

using namespace antmoc;
using namespace antmoc::bench;

constexpr int kBatchJobs = 8;
constexpr int kDevices = 2;
// Cold and warm latency samples are interleaved (cold, warm, cold, warm,
// ...) and each side takes its best: on a shared/1-core host the machine
// speed drifts over seconds, and interleaving exposes both paths to the
// same drift instead of measuring cold in one regime and warm in another.
constexpr int kLatencySamples = 3;

engine::SessionOptions session_options() {
  engine::SessionOptions opts;
  opts.num_devices = kDevices;
  opts.max_concurrent = kDevices;
  // Roomy arena: admission control is the OOM test's subject, not this
  // bench's — here every job must take the privatized (bit-reproducible)
  // tally path.
  opts.device = gpusim::DeviceSpec::scaled(std::size_t{2} << 30, 8);
  // Dense radial tracing over a shallow axial extent: the 2D trace and
  // template build the session amortizes are the dominant cost, the
  // per-job 3D sweep the minority — the screening-workload shape the
  // engine targets.
  opts.num_azim = 8;
  opts.azim_spacing = 0.05;
  opts.num_polar = 2;
  opts.z_spacing = 3.0;
  // Production-accuracy attenuation table: ~10M knots, built once per
  // session but per solve on the cold path.
  opts.exp_tolerance = 2e-12;
  // Scenario screening runs a short fixed-iteration solve: latency is
  // dominated by what the session amortizes (tracing, templates, track
  // management), which is exactly the regime the engine exists for.
  opts.solve.fixed_iterations = 2;
  opts.sweep_workers = 2;
  return opts;
}

/// The batch: four distinct scenarios, each submitted kBatchJobs/4 times.
std::vector<engine::Scenario> batch_scenarios() {
  using engine::MaterialOp;
  using engine::Scenario;
  std::vector<Scenario> jobs;
  for (int rep = 0; rep < kBatchJobs / 4; ++rep) {
    Scenario base;
    base.name = "base";
    jobs.push_back(base);

    Scenario up;
    up.name = "up";
    MaterialOp scale;
    scale.kind = MaterialOp::Kind::kScale;
    scale.material = 0;
    scale.xs = MaterialOp::Xs::kNuFission;
    scale.factor = 1.02;
    up.ops.push_back(scale);
    jobs.push_back(up);

    Scenario rodded;
    rodded.name = "rodded";
    MaterialOp swap;
    swap.kind = MaterialOp::Kind::kSwap;
    swap.material = 6;
    swap.source = 7;
    rodded.ops.push_back(swap);
    jobs.push_back(rodded);

    Scenario hot;
    hot.name = "hot";
    MaterialOp temp;
    temp.kind = MaterialOp::Kind::kTemperature;
    temp.delta_t = 300.0;
    hot.ops.push_back(temp);
    jobs.push_back(hot);
  }
  return jobs;
}

bool results_identical(const engine::JobResult& a,
                       const engine::JobResult& b) {
  if (!a.ok || !b.ok || a.k_eff != b.k_eff || a.step_k != b.step_k ||
      a.group_flux.size() != b.group_flux.size())
    return false;
  for (std::size_t g = 0; g < a.group_flux.size(); ++g)
    if (a.group_flux[g] != b.group_flux[g]) return false;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  TelemetryScope telemetry_scope("bench_scenario_throughput");
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_engine.json";

  // Pin the paper's cost model so TrackManager residency ranking — and
  // with it the cold/warm comparison — is identical run to run.
  perf::set_sweep_costs({1.0, 6.0, 1.5});

  const engine::SessionOptions opts = session_options();

  Timer warmup;
  warmup.start();
  engine::Session session(scaled_core(1, 1, 0.05), opts);
  warmup.stop();

  const std::vector<engine::Scenario> jobs = batch_scenarios();

  // --- 1+2. cold one-shot vs warm engine latency (interleaved samples,
  // best of each) and the bitwise warm-vs-cold identity check.
  engine::JobResult cold_base = session.solve_one_shot(jobs[0]);
  engine::JobResult warm_base = session.submit(jobs[0]).get();
  for (int s = 1; s < kLatencySamples; ++s) {
    const engine::JobResult cold = session.solve_one_shot(jobs[0]);
    if (cold.solve_seconds < cold_base.solve_seconds) cold_base = cold;
    const engine::JobResult warm = session.submit(jobs[0]).get();
    if (warm.solve_seconds < warm_base.solve_seconds) warm_base = warm;
  }
  const bool bitwise_identical = results_identical(warm_base, cold_base) &&
                                 results_identical(
                                     session.submit(jobs[1]).get(),
                                     session.solve_one_shot(jobs[1]));

  // --- 3. batch throughput over the device pool ---------------------------
  Timer batch;
  batch.start();
  const std::vector<engine::JobResult> results = session.run(jobs);
  batch.stop();
  long failed = 0;
  for (const engine::JobResult& r : results)
    if (!r.ok) ++failed;
  const engine::SessionStats stats = session.stats();
  const double jobs_per_second =
      static_cast<double>(results.size()) / batch.seconds();
  const double warm_over_cold =
      warm_base.solve_seconds / cold_base.solve_seconds;

  print_table(
      "Scenario engine — warm session jobs vs cold one-shot solves (" +
          std::to_string(opts.solve.fixed_iterations) +
          " fixed iterations, " + std::to_string(kDevices) + " devices)",
      {"path", "latency [s]", "k_eff", "vs cold"},
      {{"cold one-shot", fmt(cold_base.solve_seconds, "%.4f"),
        fmt(cold_base.k_eff, "%.9f"), "1.00x"},
       {"warm engine job", fmt(warm_base.solve_seconds, "%.4f"),
        fmt(warm_base.k_eff, "%.9f"), fmt(warm_over_cold, "%.2fx")}});
  print_table(
      "Batch of " + std::to_string(results.size()) + " jobs",
      {"metric", "value"},
      {{"batch wall [s]", fmt(batch.seconds(), "%.4f")},
       {"jobs/s", fmt(jobs_per_second, "%.2f")},
       {"peak concurrent", std::to_string(stats.peak_concurrent)},
       {"deferrals", std::to_string(stats.deferrals)},
       {"failed", std::to_string(failed)},
       {"session warm-up [s]", fmt(warmup.seconds(), "%.4f")},
       {"bitwise identical", bitwise_identical ? "yes" : "NO"}});

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
    return 1;
  }
  std::fprintf(
      f,
      "{\n"
      "  \"bench\": \"engine\",\n"
      "  \"jobs\": %zu,\n"
      "  \"devices\": %d,\n"
      "  \"warmup_seconds\": %.9g,\n"
      "  \"cold_seconds\": %.9g,\n"
      "  \"warm_seconds\": %.9g,\n"
      "  \"warm_over_cold\": %.9g,\n"
      "  \"batch_seconds\": %.9g,\n"
      "  \"jobs_per_second\": %.9g,\n"
      "  \"peak_concurrent\": %d,\n"
      "  \"deferrals\": %ld,\n"
      "  \"failed\": %ld,\n"
      "  \"bitwise_identical\": %s,\n"
      "  \"k_eff\": %.17g\n"
      "}\n",
      results.size(), kDevices, warmup.seconds(), cold_base.solve_seconds,
      warm_base.solve_seconds, warm_over_cold, batch.seconds(),
      jobs_per_second, stats.peak_concurrent, stats.deferrals, failed,
      bitwise_identical ? "true" : "false", warm_base.k_eff);
  std::fclose(f);
  std::printf("\nwrote %s\n", json_path.c_str());
  return 0;
}
