/// \file bench_sweep_throughput.cpp
/// The sweep hot-path baseline every future perf PR benches against:
///   1. Host fork-join sweep scaling — CpuSolver wall s/iteration and 3D
///      segments/second over a worker sweep 1..N (N = max(4, hardware
///      threads), capped at 8).
///   2. Device FSR-tally strategy — GpuSolver atomic fallback
///      (sweep.privatize=off) versus per-CU privatized tallies with the
///      deterministic reduction kernel (sweep.privatize=force).
///   3. Sweep backend — history-based per-track expansion versus the flat
///      event-array backend (sweep.backend=event, DESIGN.md §13), serial
///      and at the best parallel worker count, both with the interleaved
///      ExpTable evaluator (the production configuration; with the exact
///      expm1 evaluator libm dominates and kernel organization is
///      unmeasurable).
/// Emits BENCH_sweep.json (path = argv[1], default ./BENCH_sweep.json);
/// bench/run_sweep_gate.sh validates it and enforces the speedup bars,
/// including event >= 1.3x history serial segments/s.

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "solver/cpu_solver.h"
#include "solver/gpu_solver.h"
#include "util/timer.h"

namespace {

using namespace antmoc;
using namespace antmoc::bench;

constexpr int kIterations = 5;

struct RunResult {
  double seconds_per_iter = 0.0;
  double segments_per_second = 0.0;
  double k_eff = 0.0;
  long segments_per_sweep = 0;
};

RunResult timed_solve(TransportSolver& solver) {
  SolveOptions opts;
  opts.fixed_iterations = kIterations;
  Timer t;
  t.start();
  const SolveResult r = solver.solve(opts);
  t.stop();
  RunResult out;
  out.seconds_per_iter = t.seconds() / kIterations;
  out.segments_per_sweep = solver.last_sweep_segments();
  out.segments_per_second =
      out.seconds_per_iter > 0.0
          ? static_cast<double>(out.segments_per_sweep) /
                out.seconds_per_iter
          : 0.0;
  out.k_eff = r.k_eff;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  TelemetryScope telemetry_scope("bench_sweep_throughput");
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_sweep.json";

  const unsigned hw = std::thread::hardware_concurrency();
  const unsigned max_workers =
      std::min(std::max(4u, hw == 0 ? 1u : hw), 8u);

  Problem p(scaled_core(), 4, 0.3, 2, 1.5);

  // --- 1. Host worker sweep ------------------------------------------------
  std::vector<std::pair<unsigned, RunResult>> host;
  for (unsigned w = 1; w <= max_workers; ++w) {
    CpuSolver solver(p.stacks, p.model.materials, w);
    host.emplace_back(w, timed_solve(solver));
  }

  const RunResult& serial = host.front().second;
  const RunResult* best_parallel = nullptr;
  unsigned best_workers = 0;
  for (const auto& [w, r] : host) {
    if (w == 1) continue;
    if (best_parallel == nullptr ||
        r.seconds_per_iter < best_parallel->seconds_per_iter) {
      best_parallel = &r;
      best_workers = w;
    }
  }

  std::vector<std::vector<std::string>> rows;
  for (const auto& [w, r] : host)
    rows.push_back({std::to_string(w), fmt(r.seconds_per_iter, "%.4f"),
                    fmt(r.segments_per_second, "%.4g"),
                    fmt(serial.seconds_per_iter / r.seconds_per_iter,
                        "%.2fx")});
  print_table("Host sweep scaling (CpuSolver, " +
                  std::to_string(kIterations) + " fixed iterations, " +
                  std::to_string(hw) + " hardware threads)",
              {"workers", "s/iter", "segments/s", "speedup"}, rows);

  // --- 2. Device tally strategy: atomics vs privatized ---------------------
  auto gpu_run = [&](PrivatizeMode mode) {
    gpusim::Device device(
        gpusim::DeviceSpec::scaled(std::size_t{1} << 30, 16));
    GpuSolverOptions opts;
    opts.policy = TrackPolicy::kManaged;
    opts.resident_budget_bytes = std::size_t{2} << 20;
    opts.privatize = mode;
    GpuSolver solver(p.stacks, p.model.materials, device, opts);
    return timed_solve(solver);
  };
  const RunResult atomic = gpu_run(PrivatizeMode::kOff);
  const RunResult privatized = gpu_run(PrivatizeMode::kForce);

  print_table(
      "Device FSR-tally strategy (GpuSolver, 16 CUs)",
      {"strategy", "s/iter", "segments/s"},
      {{"atomic (sweep.privatize=off)", fmt(atomic.seconds_per_iter, "%.4f"),
        fmt(atomic.segments_per_second, "%.4g")},
       {"privatized (sweep.privatize=force)",
        fmt(privatized.seconds_per_iter, "%.4f"),
        fmt(privatized.segments_per_second, "%.4g")}});

  // --- 3. Sweep backend: history vs event ----------------------------------
  const ExpTable table(40.0, 1e-6);
  auto backend_run = [&](SweepBackend backend, unsigned workers) {
    CpuSolver solver(p.stacks, p.model.materials, workers,
                     TemplateMode::kAuto, backend);
    solver.set_exp_table(&table);
    // Warm-up solve: the once-per-solver flatten (and template build)
    // happens off the clock — the bar measures kernel organization, and
    // telemetry reports the flatten separately as solver/event_build.
    SolveOptions warm;
    warm.fixed_iterations = 1;
    solver.solve(warm);
    // Min-of-3 defends the ratio against scheduler noise on shared hosts.
    RunResult fastest;
    for (int rep = 0; rep < 3; ++rep) {
      const RunResult r = timed_solve(solver);
      if (rep == 0 || r.seconds_per_iter < fastest.seconds_per_iter)
        fastest = r;
    }
    return fastest;
  };
  const RunResult hist_serial = backend_run(SweepBackend::kHistory, 1);
  const RunResult event_serial = backend_run(SweepBackend::kEvent, 1);
  const RunResult hist_par = backend_run(SweepBackend::kHistory, best_workers);
  const RunResult event_par = backend_run(SweepBackend::kEvent, best_workers);
  const double event_over_history =
      event_serial.segments_per_second / hist_serial.segments_per_second;
  const double event_over_history_parallel =
      event_par.segments_per_second / hist_par.segments_per_second;

  print_table(
      "Sweep backend (CpuSolver + ExpTable, serial and " +
          std::to_string(best_workers) + " workers)",
      {"backend", "workers", "s/iter", "segments/s", "vs history"},
      {{"history", "1", fmt(hist_serial.seconds_per_iter, "%.4f"),
        fmt(hist_serial.segments_per_second, "%.4g"), "1.00x"},
       {"event", "1", fmt(event_serial.seconds_per_iter, "%.4f"),
        fmt(event_serial.segments_per_second, "%.4g"),
        fmt(event_over_history, "%.2fx")},
       {"history", std::to_string(best_workers),
        fmt(hist_par.seconds_per_iter, "%.4f"),
        fmt(hist_par.segments_per_second, "%.4g"), "1.00x"},
       {"event", std::to_string(best_workers),
        fmt(event_par.seconds_per_iter, "%.4f"),
        fmt(event_par.segments_per_second, "%.4g"),
        fmt(event_over_history_parallel, "%.2fx")}});

  // --- 4. BENCH_sweep.json -------------------------------------------------
  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"sweep_throughput\",\n"
               "  \"hardware_threads\": %u,\n"
               "  \"fixed_iterations\": %d,\n"
               "  \"segments_per_sweep\": %ld,\n"
               "  \"host\": {\n"
               "    \"serial\": {\"workers\": 1, "
               "\"seconds_per_iteration\": %.9g, "
               "\"segments_per_second\": %.9g, \"k_eff\": %.12f},\n",
               hw, kIterations, serial.segments_per_sweep,
               serial.seconds_per_iter, serial.segments_per_second,
               serial.k_eff);
  std::fprintf(f, "    \"workers\": [\n");
  for (std::size_t i = 0; i < host.size(); ++i) {
    const auto& [w, r] = host[i];
    std::fprintf(f,
                 "      {\"workers\": %u, \"seconds_per_iteration\": %.9g, "
                 "\"segments_per_second\": %.9g, \"k_eff\": %.12f}%s\n",
                 w, r.seconds_per_iter, r.segments_per_second, r.k_eff,
                 i + 1 < host.size() ? "," : "");
  }
  std::fprintf(f,
               "    ],\n"
               "    \"best_parallel\": {\"workers\": %u, "
               "\"seconds_per_iteration\": %.9g, "
               "\"segments_per_second\": %.9g, \"k_eff\": %.12f}\n"
               "  },\n",
               best_workers, best_parallel->seconds_per_iter,
               best_parallel->segments_per_second, best_parallel->k_eff);
  std::fprintf(f,
               "  \"device\": {\n"
               "    \"atomic\": {\"seconds_per_iteration\": %.9g, "
               "\"segments_per_second\": %.9g, \"k_eff\": %.12f},\n"
               "    \"privatized\": {\"seconds_per_iteration\": %.9g, "
               "\"segments_per_second\": %.9g, \"k_eff\": %.12f}\n"
               "  },\n",
               atomic.seconds_per_iter, atomic.segments_per_second,
               atomic.k_eff, privatized.seconds_per_iter,
               privatized.segments_per_second, privatized.k_eff);
  std::fprintf(f,
               "  \"event\": {\n"
               "    \"parallel_workers\": %u,\n"
               "    \"history_serial\": {\"seconds_per_iteration\": %.9g, "
               "\"segments_per_second\": %.9g, \"k_eff\": %.12f},\n"
               "    \"event_serial\": {\"seconds_per_iteration\": %.9g, "
               "\"segments_per_second\": %.9g, \"k_eff\": %.12f},\n"
               "    \"history_parallel\": {\"seconds_per_iteration\": %.9g, "
               "\"segments_per_second\": %.9g, \"k_eff\": %.12f},\n"
               "    \"event_parallel\": {\"seconds_per_iteration\": %.9g, "
               "\"segments_per_second\": %.9g, \"k_eff\": %.12f},\n"
               "    \"event_over_history\": %.9g,\n"
               "    \"event_over_history_parallel\": %.9g\n"
               "  }\n"
               "}\n",
               best_workers, hist_serial.seconds_per_iter,
               hist_serial.segments_per_second, hist_serial.k_eff,
               event_serial.seconds_per_iter,
               event_serial.segments_per_second, event_serial.k_eff,
               hist_par.seconds_per_iter, hist_par.segments_per_second,
               hist_par.k_eff, event_par.seconds_per_iter,
               event_par.segments_per_second, event_par.k_eff,
               event_over_history, event_over_history_parallel);
  std::fclose(f);
  std::printf("\nwrote %s\n", json_path.c_str());
  return 0;
}
