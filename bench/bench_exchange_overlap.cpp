/// \file bench_exchange_overlap.cpp
/// Overlapped vs synchronous interface-flux exchange (DESIGN.md §8): runs
/// the same {2,2,1}-decomposed C5G7 core with the buffered-synchronous
/// exchange and with the nonblocking boundary-first overlap, and reports
/// wall s/iteration, the measured overlap ratio, and the Eq. 7 wire
/// volume. Emits BENCH_exchange.json (path = argv[1], default
/// ./BENCH_exchange.json); bench/run_exchange_gate.sh validates it and
/// enforces the result-identity and slowdown bars.

#include <cstdio>
#include <string>
#include <thread>

#include "bench/common.h"
#include "solver/domain_solver.h"
#include "util/timer.h"

namespace {

using namespace antmoc;
using namespace antmoc::bench;

constexpr int kIterations = 5;

struct RunResult {
  double seconds_per_iter = 0.0;
  double k_eff = 0.0;
  double overlap_ratio = 0.0;
  std::uint64_t flux_bytes_per_iter = 0;
  long crossing_track_ends = 0;
};

RunResult timed_solve(const models::C5G7Model& model,
                      const Decomposition& decomp, bool overlap) {
  DomainRunParams params;
  params.num_azim = 4;
  params.azim_spacing = 0.3;
  params.num_polar = 2;
  params.z_spacing = 1.5;
  // Bit-identity between the modes is promised for a fixed worker count.
  params.sweep_workers = 2;
  params.overlap = overlap;
  SolveOptions opts;
  opts.fixed_iterations = kIterations;

  Timer t;
  t.start();
  const DomainRunSummary summary =
      solve_decomposed(model.geometry, model.materials, decomp, params,
                       opts);
  t.stop();

  RunResult out;
  out.seconds_per_iter = t.seconds() / kIterations;
  out.k_eff = summary.result.k_eff;
  out.overlap_ratio = summary.comm_overlap_ratio;
  out.flux_bytes_per_iter = summary.flux_bytes_per_iter;
  out.crossing_track_ends = summary.crossing_track_ends;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  TelemetryScope telemetry_scope("bench_exchange_overlap");
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_exchange.json";

  const models::C5G7Model model = scaled_core();
  const Decomposition decomp{2, 2, 1};

  const RunResult sync = timed_solve(model, decomp, /*overlap=*/false);
  const RunResult overlapped = timed_solve(model, decomp, /*overlap=*/true);

  print_table(
      "Interface-flux exchange (" + std::to_string(decomp.num_domains()) +
          " domains, " + std::to_string(kIterations) +
          " fixed iterations)",
      {"mode", "s/iter", "k_eff", "overlap ratio"},
      {{"synchronous (comm.overlap=false)", fmt(sync.seconds_per_iter,
                                                "%.4f"),
        fmt(sync.k_eff, "%.6f"), "-"},
       {"overlapped (comm.overlap=true)",
        fmt(overlapped.seconds_per_iter, "%.4f"),
        fmt(overlapped.k_eff, "%.6f"),
        fmt(overlapped.overlap_ratio, "%.3f")}});

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
    return 1;
  }
  std::fprintf(
      f,
      "{\n"
      "  \"bench\": \"exchange_overlap\",\n"
      "  \"hardware_threads\": %u,\n"
      "  \"fixed_iterations\": %d,\n"
      "  \"decomposition\": [%d, %d, %d],\n"
      "  \"flux_bytes_per_iter\": %llu,\n"
      "  \"crossing_track_ends\": %ld,\n"
      "  \"sync\": {\"seconds_per_iteration\": %.9g, \"k_eff\": %.12f},\n"
      "  \"overlapped\": {\"seconds_per_iteration\": %.9g, "
      "\"k_eff\": %.12f, \"overlap_ratio\": %.9g}\n"
      "}\n",
      std::thread::hardware_concurrency(), kIterations, decomp.nx,
      decomp.ny, decomp.nz,
      static_cast<unsigned long long>(sync.flux_bytes_per_iter),
      sync.crossing_track_ends, sync.seconds_per_iter, sync.k_eff,
      overlapped.seconds_per_iter, overlapped.k_eff,
      overlapped.overlap_ratio);
  std::fclose(f);
  std::printf("\nwrote %s\n", json_path.c_str());
  return 0;
}
