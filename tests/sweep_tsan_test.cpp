/// \file sweep_tsan_test.cpp
/// Concurrency suite for the sweep hot path, labeled for the tsan preset
/// (`ctest --test-dir build-tsan -L fault`): drives the fork-join host
/// sweep, the parallel per-iteration FSR loops, and the concurrent
/// per-device launches of MultiGpuSolver under ThreadSanitizer so any
/// data race in the privatized-tally or staged-deposit machinery trips
/// the sanitizer rather than silently corrupting a flux.

#include <gtest/gtest.h>

#include "models/c5g7_model.h"
#include "solver/cpu_solver.h"
#include "solver/multi_gpu_solver.h"

namespace antmoc {
namespace {

struct Problem {
  models::C5G7Model model;
  Quadrature quad;
  TrackGenerator2D gen;
  TrackStacks stacks;

  Problem(models::C5G7Model m, int nazim, double spacing, int npolar,
          double dz)
      : model(std::move(m)),
        quad(nazim, spacing, model.geometry.bounds().width_x(),
             model.geometry.bounds().width_y(), npolar),
        gen(quad, model.geometry.bounds(), radial_kinds(model.geometry)),
        stacks((gen.trace(model.geometry), gen), model.geometry,
               model.geometry.bounds().z_min,
               model.geometry.bounds().z_max, dz) {}

  static std::array<LinkKind, 4> radial_kinds(const Geometry& g) {
    return {to_link_kind(g.boundary(Face::kXMin)),
            to_link_kind(g.boundary(Face::kXMax)),
            to_link_kind(g.boundary(Face::kYMin)),
            to_link_kind(g.boundary(Face::kYMax))};
  }
};

Problem small_problem() {
  models::C5G7Options opt;
  opt.pins_per_assembly = 3;
  opt.fuel_layers = 2;
  opt.reflector_layers = 1;
  opt.height_scale = 0.1;
  return Problem(models::build_core(opt), 4, 0.5, 2, 1.0);
}

TEST(SweepConcurrency, ParallelHostSweepIsRaceFree) {
  Problem p = small_problem();
  CpuSolver solver(p.stacks, p.model.materials, 4);
  SolveOptions opts;
  opts.fixed_iterations = 3;
  const auto r = solver.solve(opts);
  EXPECT_GT(r.k_eff, 0.0);
}

TEST(SweepConcurrency, ConcurrentDeviceLaunchesPrivatized) {
  Problem p = small_problem();
  MultiGpuOptions opts;
  opts.num_devices = 3;
  opts.device_spec = gpusim::DeviceSpec::scaled(std::size_t{1} << 30, 4);
  opts.resident_budget_bytes = std::size_t{1} << 20;
  opts.privatize = PrivatizeMode::kForce;
  MultiGpuSolver solver(p.stacks, p.model.materials, opts);
  ASSERT_TRUE(solver.privatized());
  SolveOptions sopts;
  sopts.fixed_iterations = 2;
  const auto r = solver.solve(sopts);
  EXPECT_GT(r.k_eff, 0.0);
}

TEST(SweepConcurrency, ConcurrentDeviceLaunchesAtomicFallback) {
  Problem p = small_problem();
  MultiGpuOptions opts;
  opts.num_devices = 3;
  opts.device_spec = gpusim::DeviceSpec::scaled(std::size_t{1} << 30, 4);
  opts.resident_budget_bytes = std::size_t{1} << 20;
  opts.privatize = PrivatizeMode::kOff;
  MultiGpuSolver solver(p.stacks, p.model.materials, opts);
  ASSERT_FALSE(solver.privatized());
  SolveOptions sopts;
  sopts.fixed_iterations = 2;
  const auto r = solver.solve(sopts);
  EXPECT_GT(r.k_eff, 0.0);
}

}  // namespace
}  // namespace antmoc
