#include <gtest/gtest.h>

#include <cstdio>

#include "geometry/builder.h"
#include "material/c5g7.h"
#include "models/c5g7_model.h"
#include "solver/cpu_solver.h"
#include "solver/tallies.h"
#include "util/error.h"

namespace antmoc {
namespace {

/// A reflective unit box filled with one material.
Geometry box_of(int material, BoundaryType radial = BoundaryType::kReflective,
                BoundaryType axial = BoundaryType::kReflective) {
  GeometryBuilder b;
  const int u = b.add_universe("medium");
  b.add_cell(u, "all", material, {});
  b.set_root(u);
  Bounds bounds;
  bounds.x_max = 1.0;
  bounds.y_max = 1.0;
  b.set_bounds(bounds);
  b.set_all_radial_boundaries(radial);
  b.set_boundary(Face::kZMin, axial);
  b.set_boundary(Face::kZMax, axial);
  b.add_axial_zone(0.0, 1.0, 1);
  return b.build();
}

struct Problem {
  Geometry geometry;
  std::vector<Material> materials;
  Quadrature quad;
  TrackGenerator2D gen;
  TrackStacks stacks;

  Problem(Geometry g, std::vector<Material> mats)
      : geometry(std::move(g)),
        materials(std::move(mats)),
        quad(4, 0.3, geometry.bounds().width_x(),
             geometry.bounds().width_y(), 2),
        gen(quad, geometry.bounds(),
            {to_link_kind(geometry.boundary(Face::kXMin)),
             to_link_kind(geometry.boundary(Face::kXMax)),
             to_link_kind(geometry.boundary(Face::kYMin)),
             to_link_kind(geometry.boundary(Face::kYMax))}),
        stacks((gen.trace(geometry), gen), geometry,
               geometry.bounds().z_min, geometry.bounds().z_max, 0.5) {}
};

// ------------------------------------------------------------ fixed source ---

TEST(FixedSource, OneGroupInfiniteMediumAnalytic) {
  // phi = Q / Sigma_a in a leakage-free, fission-free medium.
  Material m("absorber", 1);
  m.set_sigma_t({1.0});
  m.set_sigma_s({0.4});
  Problem p(box_of(0), {m});
  CpuSolver solver(p.stacks, p.materials);
  const std::vector<double> source(p.geometry.num_fsrs(), 2.0);
  SolveOptions opts;
  opts.tolerance = 1e-8;
  opts.max_iterations = 20000;
  const auto result = solver.solve_fixed_source(source, opts);
  ASSERT_TRUE(result.converged);
  // Sigma_a = 1.0 - 0.4 = 0.6; phi = 2 / 0.6.
  EXPECT_NEAR(solver.fsr().flux(0, 0), 2.0 / 0.6, 1e-4 * (2.0 / 0.6));
}

TEST(FixedSource, MultigroupBalanceConserved) {
  // Leakage-free: total absorption equals the total external source.
  const auto materials = c5g7::materials();
  Problem p(box_of(c5g7::kModerator), materials);
  CpuSolver solver(p.stacks, p.materials);
  const long n = p.geometry.num_fsrs() * 7;
  std::vector<double> source(n, 0.5);
  SolveOptions opts;
  opts.tolerance = 1e-8;
  opts.max_iterations = 50000;
  ASSERT_TRUE(solver.solve_fixed_source(source, opts).converged);

  const double absorption = tallies::total_rate(
      p.geometry, p.materials, solver.fsr().scalar_flux(),
      solver.fsr().volumes(), tallies::Reaction::kAbsorption);
  double injected = 0.0;
  for (long r = 0; r < p.geometry.num_fsrs(); ++r)
    injected += solver.fsr().volumes()[r] * 0.5 * 7;
  EXPECT_NEAR(absorption, injected, 2e-3 * injected);
}

TEST(FixedSource, SubcriticalMultiplicationAmplifiesFlux) {
  // The same source in a subcritical fissile medium yields more
  // absorption events than in a pure absorber of equal Sigma_a=...;
  // simpler invariant: with fission on, total absorption exceeds the
  // injected source (the multiplication chain), still finite because
  // k_inf < 1 for bare UO2.
  const auto materials = c5g7::materials();
  Problem p(box_of(c5g7::kUO2), materials);
  CpuSolver solver(p.stacks, p.materials);
  std::vector<double> source(p.geometry.num_fsrs() * 7, 0.1);
  SolveOptions opts;
  opts.tolerance = 1e-8;
  opts.max_iterations = 50000;
  ASSERT_TRUE(solver.solve_fixed_source(source, opts).converged);
  const double absorption = tallies::total_rate(
      p.geometry, p.materials, solver.fsr().scalar_flux(),
      solver.fsr().volumes(), tallies::Reaction::kAbsorption);
  double injected = 0.0;
  for (long r = 0; r < p.geometry.num_fsrs(); ++r)
    injected += solver.fsr().volumes()[r] * 0.1 * 7;
  EXPECT_GT(absorption, 1.2 * injected);
}

TEST(FixedSource, LeakageReducesAbsorption) {
  const auto materials = c5g7::materials();
  Problem p(box_of(c5g7::kModerator, BoundaryType::kVacuum,
                   BoundaryType::kVacuum),
            materials);
  CpuSolver solver(p.stacks, p.materials);
  std::vector<double> source(p.geometry.num_fsrs() * 7, 0.5);
  SolveOptions opts;
  opts.tolerance = 1e-8;
  opts.max_iterations = 50000;
  ASSERT_TRUE(solver.solve_fixed_source(source, opts).converged);
  const double absorption = tallies::total_rate(
      p.geometry, p.materials, solver.fsr().scalar_flux(),
      solver.fsr().volumes(), tallies::Reaction::kAbsorption);
  double injected = 0.0;
  for (long r = 0; r < p.geometry.num_fsrs(); ++r)
    injected += solver.fsr().volumes()[r] * 0.5 * 7;
  EXPECT_LT(absorption, 0.8 * injected);
}

TEST(FixedSource, RejectsWrongSourceSize) {
  const auto materials = c5g7::materials();
  Problem p(box_of(c5g7::kModerator), materials);
  CpuSolver solver(p.stacks, p.materials);
  std::vector<double> wrong(3, 1.0);
  EXPECT_THROW(solver.solve_fixed_source(wrong), Error);
}

// ------------------------------------------------------------- checkpoint ---

struct PinProblem {
  models::C5G7Model model;
  Quadrature quad;
  TrackGenerator2D gen;
  TrackStacks stacks;

  PinProblem()
      : model(models::build_pin_cell(2, 2.0)),
        quad(4, 0.25, 1.26, 1.26, 1),
        gen(quad, model.geometry.bounds(),
            {LinkKind::kReflective, LinkKind::kReflective,
             LinkKind::kReflective, LinkKind::kReflective}),
        stacks((gen.trace(model.geometry), gen), model.geometry, 0.0, 2.0,
               0.5) {}
};

TEST(Checkpoint, ResumeReachesTheSameEigenvalue) {
  PinProblem p;
  const std::string path = ::testing::TempDir() + "/antmoc.ckpt";

  SolveOptions full;
  full.tolerance = 1e-6;
  full.max_iterations = 20000;
  CpuSolver reference(p.stacks, p.model.materials);
  const double k_ref = reference.solve(full).k_eff;

  // Interrupt after 40 iterations, checkpoint, restore, resume.
  CpuSolver first(p.stacks, p.model.materials);
  SolveOptions partial;
  partial.fixed_iterations = 40;
  first.solve(partial);
  first.save_state(path);

  CpuSolver second(p.stacks, p.model.materials);
  second.load_state(path);
  SolveOptions resume = full;
  resume.resume = true;
  const auto result = second.solve(resume);
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(result.k_eff, k_ref, 1e-5 * k_ref);
  // Resuming from a 40-iteration head start must converge in fewer
  // iterations than starting cold.
  CpuSolver cold(p.stacks, p.model.materials);
  const auto cold_result = cold.solve(full);
  EXPECT_LT(result.iterations, cold_result.iterations);
  std::remove(path.c_str());
}

TEST(Checkpoint, StateRoundTripsExactly) {
  PinProblem p;
  const std::string path = ::testing::TempDir() + "/antmoc_rt.ckpt";
  CpuSolver a(p.stacks, p.model.materials);
  SolveOptions opts;
  opts.fixed_iterations = 10;
  a.solve(opts);
  a.save_state(path);

  CpuSolver b(p.stacks, p.model.materials);
  b.load_state(path);
  EXPECT_DOUBLE_EQ(b.k_eff(), a.k_eff());
  for (long i = 0; i < p.model.geometry.num_fsrs(); ++i)
    for (int g = 0; g < 7; ++g)
      EXPECT_DOUBLE_EQ(b.fsr().flux(i, g), a.fsr().flux(i, g));
  std::remove(path.c_str());
}

TEST(Checkpoint, MismatchedSolverRejectsState) {
  PinProblem p;
  const std::string path = ::testing::TempDir() + "/antmoc_mm.ckpt";
  CpuSolver a(p.stacks, p.model.materials);
  SolveOptions opts;
  opts.fixed_iterations = 2;
  a.solve(opts);
  a.save_state(path);

  // A solver with a different track laydown has different psi shape.
  models::C5G7Model other = models::build_pin_cell(2, 2.0);
  Quadrature quad(8, 0.25, 1.26, 1.26, 2);
  TrackGenerator2D gen(quad, other.geometry.bounds(),
                       {LinkKind::kReflective, LinkKind::kReflective,
                        LinkKind::kReflective, LinkKind::kReflective});
  gen.trace(other.geometry);
  TrackStacks stacks(gen, other.geometry, 0.0, 2.0, 0.5);
  CpuSolver b(stacks, other.materials);
  EXPECT_THROW(b.load_state(path), Error);
  std::remove(path.c_str());
}

TEST(Checkpoint, ResumeWithoutLoadThrows) {
  PinProblem p;
  CpuSolver solver(p.stacks, p.model.materials);
  SolveOptions opts;
  opts.resume = true;
  EXPECT_THROW(solver.solve(opts), Error);
}

TEST(Checkpoint, CorruptFileRejected) {
  const std::string path = ::testing::TempDir() + "/antmoc_bad.ckpt";
  FILE* f = fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  fputs("definitely not a checkpoint", f);
  fclose(f);
  PinProblem p;
  CpuSolver solver(p.stacks, p.model.materials);
  EXPECT_THROW(solver.load_state(path), Error);
  EXPECT_THROW(solver.load_state("/nonexistent/nope.ckpt"), Error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace antmoc
