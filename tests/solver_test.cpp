#include <gtest/gtest.h>

#include <cmath>

#include "geometry/builder.h"
#include "material/c5g7.h"
#include "models/c5g7_model.h"
#include "perfmodel/sweep_costs.h"
#include "solver/cpu_solver.h"
#include "solver/exponential.h"
#include "solver/gpu_solver.h"
#include "solver/track_policy.h"
#include "util/error.h"

namespace antmoc {
namespace {

// ------------------------------------------------------------ exponential ---

TEST(Exponential, ExactMatchesDefinition) {
  for (double tau : {1e-12, 1e-6, 0.01, 0.5, 1.0, 5.0, 30.0}) {
    EXPECT_NEAR(exp_f1(tau), 1.0 - std::exp(-tau), 1e-15) << tau;
    EXPECT_GT(exp_f1(tau), 0.0);
  }
  EXPECT_DOUBLE_EQ(exp_f1(0.0), 0.0);
}

TEST(Exponential, TableMeetsErrorBound) {
  const double max_err = 1e-6;
  const ExpTable table(40.0, max_err);
  for (double tau = 0.0; tau < 45.0; tau += 0.0137)
    EXPECT_NEAR(table(tau), exp_f1(tau), max_err) << tau;
  EXPECT_DOUBLE_EQ(table(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(table(1000.0), 1.0);
}

TEST(Exponential, TighterToleranceShrinksSpacing) {
  const ExpTable loose(40.0, 1e-4);
  const ExpTable tight(40.0, 1e-8);
  EXPECT_LT(tight.table_spacing(), loose.table_spacing());
  EXPECT_GT(tight.size(), loose.size());
}

// ------------------------------------------------------------ test models ---

/// Uniform fissile medium filling a pin-cell box: the MOC answer must be
/// the analytic infinite-medium eigenvalue regardless of discretization.
models::C5G7Model uniform_medium_model() {
  GeometryBuilder b;
  const int u = b.add_universe("medium");
  b.add_cell(u, "fuel", c5g7::kUO2, {});
  const int root = b.add_lattice("root", 1, 1, 1.0, 1.0, 0.0, 0.0, {u});
  b.set_root(root);
  Bounds bounds;
  bounds.x_max = 1.0;
  bounds.y_max = 1.0;
  b.set_bounds(bounds);
  b.set_all_radial_boundaries(BoundaryType::kReflective);
  b.set_boundary(Face::kZMin, BoundaryType::kReflective);
  b.set_boundary(Face::kZMax, BoundaryType::kReflective);
  b.add_axial_zone(0.0, 1.0, 2);
  return {b.build(), c5g7::materials()};
}

struct Problem {
  models::C5G7Model model;
  Quadrature quad;
  TrackGenerator2D gen;
  TrackStacks stacks;

  Problem(models::C5G7Model m, int nazim, double spacing, int npolar,
          double dz)
      : model(std::move(m)),
        quad(nazim, spacing, model.geometry.bounds().width_x(),
             model.geometry.bounds().width_y(), npolar),
        gen(quad, model.geometry.bounds(), radial_kinds(model.geometry)),
        stacks((gen.trace(model.geometry), gen), model.geometry,
               model.geometry.bounds().z_min, model.geometry.bounds().z_max,
               dz) {}

  static std::array<LinkKind, 4> radial_kinds(const Geometry& g) {
    return {to_link_kind(g.boundary(Face::kXMin)),
            to_link_kind(g.boundary(Face::kXMax)),
            to_link_kind(g.boundary(Face::kYMin)),
            to_link_kind(g.boundary(Face::kYMax))};
  }
};

// --------------------------------------------------------------- physics ---

TEST(CpuSolver, InfiniteMediumReproducesAnalyticK) {
  Problem p(uniform_medium_model(), 4, 0.3, 2, 0.5);
  CpuSolver solver(p.stacks, p.model.materials);
  SolveOptions opts;
  opts.tolerance = 1e-7;
  opts.max_iterations = 20000;
  const auto result = solver.solve(opts);
  ASSERT_TRUE(result.converged);
  const double k_exact =
      infinite_medium_k(p.model.materials[c5g7::kUO2]);
  // Boundary fluxes are single precision (paper §3.3), which bounds the
  // achievable agreement near 1e-5 relative.
  EXPECT_NEAR(result.k_eff, k_exact, 1e-4 * k_exact)
      << "MOC " << result.k_eff << " vs analytic " << k_exact;
}

TEST(CpuSolver, InfiniteMediumFluxSpectrumMatches) {
  Problem p(uniform_medium_model(), 4, 0.3, 2, 0.5);
  CpuSolver solver(p.stacks, p.model.materials);
  SolveOptions opts;
  opts.tolerance = 1e-7;
  opts.max_iterations = 20000;
  ASSERT_TRUE(solver.solve(opts).converged);
  const auto exact = infinite_medium_flux(p.model.materials[c5g7::kUO2]);
  // Compare normalized spectra in FSR 0.
  const int G = c5g7::kNumGroups;
  double norm = 0.0;
  for (int g = 0; g < G; ++g) norm += solver.fsr().flux(0, g);
  for (int g = 0; g < G; ++g)
    EXPECT_NEAR(solver.fsr().flux(0, g) / norm, exact[g], 2e-3)
        << "group " << g;
}

TEST(CpuSolver, PinCellKInPhysicalRange) {
  // A moderated UO2 pin cell: k_inf of the lattice should land near the
  // well-known ~1.3 for C5G7-style pins (wide window: coarse quadrature).
  Problem p(models::build_pin_cell(2, 2.0), 8, 0.1, 2, 0.5);
  CpuSolver solver(p.stacks, p.model.materials);
  SolveOptions opts;
  opts.tolerance = 1e-6;
  opts.max_iterations = 20000;
  const auto result = solver.solve(opts);
  ASSERT_TRUE(result.converged);
  EXPECT_GT(result.k_eff, 1.15);
  EXPECT_LT(result.k_eff, 1.50);
}

TEST(CpuSolver, LeakageLowersK) {
  // Same pin with vacuum boundaries everywhere must be far subcritical
  // relative to the reflected lattice.
  auto reflected = models::build_pin_cell(2, 2.0);
  auto leaky = models::build_pin_cell(2, 2.0);
  {
    GeometryBuilder b;  // rebuild with vacuum boundaries
    const int circ = b.add_circle(0.0, 0.0, 0.54);
    const int pin = b.add_universe("pin");
    b.add_cell(pin, "fuel", c5g7::kUO2, {b.inside(circ)});
    b.add_cell(pin, "mod", c5g7::kModerator, {b.outside(circ)});
    const int root =
        b.add_lattice("root", 1, 1, 1.26, 1.26, 0.0, 0.0, {pin});
    b.set_root(root);
    Bounds bounds;
    bounds.x_max = 1.26;
    bounds.y_max = 1.26;
    b.set_bounds(bounds);
    b.add_axial_zone(0.0, 2.0, 2);
    leaky.geometry = b.build();
  }
  Problem pr(std::move(reflected), 4, 0.2, 1, 1.0);
  Problem pl(std::move(leaky), 4, 0.2, 1, 1.0);
  SolveOptions opts;
  opts.tolerance = 1e-6;
  opts.max_iterations = 20000;
  CpuSolver sr(pr.stacks, pr.model.materials);
  CpuSolver sl(pl.stacks, pl.model.materials);
  const double k_reflected = sr.solve(opts).k_eff;
  const double k_leaky = sl.solve(opts).k_eff;
  EXPECT_LT(k_leaky, 0.5 * k_reflected);
}

TEST(CpuSolver, FissionRatesArePositiveInFuel) {
  Problem p(models::build_pin_cell(2, 2.0), 4, 0.2, 1, 1.0);
  CpuSolver solver(p.stacks, p.model.materials);
  SolveOptions opts;
  opts.tolerance = 1e-5;
  ASSERT_TRUE(solver.solve(opts).converged);
  const auto rate = solver.fsr().fission_rate();
  const Geometry& g = p.model.geometry;
  const int fuel = g.find_radial({0.63, 0.63}).region;
  const int mod = g.find_radial({0.01, 0.01}).region;
  for (int l = 0; l < g.num_axial_layers(); ++l) {
    EXPECT_GT(rate[g.fsr_id(fuel, l)], 0.0);
    EXPECT_DOUBLE_EQ(rate[g.fsr_id(mod, l)], 0.0);
  }
}

TEST(CpuSolver, FixedIterationModeAlwaysRunsExactly) {
  Problem p(models::build_pin_cell(1, 1.0), 4, 0.3, 1, 1.0);
  CpuSolver solver(p.stacks, p.model.materials);
  SolveOptions opts;
  opts.fixed_iterations = 7;
  const auto result = solver.solve(opts);
  EXPECT_EQ(result.iterations, 7);
  EXPECT_TRUE(result.converged);
}

TEST(CpuSolver, NonFissileProblemThrows) {
  GeometryBuilder b;
  const int u = b.add_universe("water");
  b.add_cell(u, "w", c5g7::kModerator, {});
  b.set_root(u);
  Bounds bounds;
  bounds.x_max = 1.0;
  bounds.y_max = 1.0;
  b.set_bounds(bounds);
  b.set_all_radial_boundaries(BoundaryType::kReflective);
  b.add_axial_zone(0.0, 1.0, 1);
  models::C5G7Model model{b.build(), c5g7::materials()};
  Problem p(std::move(model), 4, 0.4, 1, 0.5);
  CpuSolver solver(p.stacks, p.model.materials);
  EXPECT_THROW(solver.solve(), Error);
}

// --------------------------------------------- CPU vs GPU path equivalence ---

TEST(GpuSolver, MatchesCpuSolverExactlyOnSameTracks) {
  Problem p(models::build_pin_cell(2, 2.0), 4, 0.2, 2, 0.5);
  SolveOptions opts;
  opts.tolerance = 1e-6;
  opts.max_iterations = 2000;

  CpuSolver cpu(p.stacks, p.model.materials);
  const auto rc = cpu.solve(opts);

  gpusim::Device device(gpusim::DeviceSpec::scaled(1 << 28, 8));
  GpuSolverOptions gopts;
  gopts.policy = TrackPolicy::kExplicit;
  GpuSolver gpu(p.stacks, p.model.materials, device, gopts);
  const auto rg = gpu.solve(opts);

  ASSERT_TRUE(rc.converged);
  ASSERT_TRUE(rg.converged);
  EXPECT_NEAR(rg.k_eff, rc.k_eff, 1e-5 * rc.k_eff);
  // Pin fission rates: the paper's §5.1 criterion (relative error ~ 0).
  const auto fc = cpu.fsr().fission_rate();
  const auto fg = gpu.fsr().fission_rate();
  for (std::size_t i = 0; i < fc.size(); ++i)
    if (fc[i] > 0.0) {
      EXPECT_NEAR(fg[i] / fc[i], 1.0, 1e-4) << "fsr " << i;
    }
}

TEST(GpuSolver, AllTrackPoliciesAgree) {
  Problem p(models::build_pin_cell(2, 2.0), 4, 0.2, 2, 0.5);
  SolveOptions opts;
  opts.tolerance = 1e-6;
  opts.max_iterations = 2000;

  double k_exp = 0.0;
  for (TrackPolicy policy : {TrackPolicy::kExplicit, TrackPolicy::kOnTheFly,
                             TrackPolicy::kManaged}) {
    gpusim::Device device(gpusim::DeviceSpec::scaled(1 << 28, 8));
    GpuSolverOptions gopts;
    gopts.policy = policy;
    gopts.resident_budget_bytes = 1 << 16;  // force a partial split
    GpuSolver solver(p.stacks, p.model.materials, device, gopts);
    const auto r = solver.solve(opts);
    ASSERT_TRUE(r.converged);
    if (policy == TrackPolicy::kExplicit)
      k_exp = r.k_eff;
    else
      EXPECT_NEAR(r.k_eff, k_exp, 1e-6 * k_exp);
  }
}

TEST(GpuSolver, L3SortDoesNotChangePhysics) {
  Problem p(models::build_pin_cell(2, 2.0), 4, 0.3, 1, 0.5);
  SolveOptions opts;
  opts.tolerance = 1e-6;
  double k_sorted = 0.0;
  for (bool l3 : {true, false}) {
    gpusim::Device device(gpusim::DeviceSpec::scaled(1 << 28, 8));
    GpuSolverOptions gopts;
    gopts.policy = TrackPolicy::kOnTheFly;
    gopts.l3_sort = l3;
    GpuSolver solver(p.stacks, p.model.materials, device, gopts);
    const auto r = solver.solve(opts);
    ASSERT_TRUE(r.converged);
    if (l3)
      k_sorted = r.k_eff;
    else
      EXPECT_NEAR(r.k_eff, k_sorted, 1e-6 * k_sorted);
  }
}

TEST(GpuSolver, L3SortImprovesCuLoadUniformity) {
  // Heterogeneous pin cell: track segment counts vary, so blocked natural
  // order skews CUs while sorted round-robin evens them out.
  Problem p(models::build_pin_cell(4, 4.0), 8, 0.1, 2, 0.25);
  SolveOptions opts;
  opts.fixed_iterations = 1;
  double balanced = 0.0, unbalanced = 0.0;
  for (bool l3 : {true, false}) {
    gpusim::Device device(gpusim::DeviceSpec::scaled(1 << 28, 16));
    GpuSolverOptions gopts;
    gopts.policy = TrackPolicy::kOnTheFly;
    gopts.l3_sort = l3;
    GpuSolver solver(p.stacks, p.model.materials, device, gopts);
    solver.solve(opts);
    (l3 ? balanced : unbalanced) =
        solver.last_sweep_stats().load_uniformity();
  }
  EXPECT_LT(balanced, unbalanced);
  EXPECT_LT(balanced, 1.1);
}

TEST(GpuSolver, ChargesTable3MemoryLabels) {
  Problem p(models::build_pin_cell(1, 1.0), 4, 0.3, 1, 0.5);
  gpusim::Device device(gpusim::DeviceSpec::scaled(1 << 28, 8));
  GpuSolverOptions gopts;
  gopts.policy = TrackPolicy::kExplicit;
  GpuSolver solver(p.stacks, p.model.materials, device, gopts);
  const auto breakdown = device.memory().breakdown();
  for (const char* label : {"2d_tracks", "2d_segments", "3d_tracks",
                            "3d_segments", "track_fluxs", "others"})
    EXPECT_TRUE(breakdown.count(label)) << label;
}

TEST(GpuSolver, ExplicitPolicyFailsOnTinyDevice) {
  Problem p(models::build_pin_cell(2, 2.0), 8, 0.1, 2, 0.25);
  gpusim::Device device(gpusim::DeviceSpec::scaled(1 << 12, 8));
  GpuSolverOptions gopts;
  gopts.policy = TrackPolicy::kExplicit;
  EXPECT_THROW(GpuSolver(p.stacks, p.model.materials, device, gopts),
               DeviceOutOfMemory);
}

// ------------------------------------------------------------ TrackManager ---

TEST(TrackManager, PolicyResidencyInvariants) {
  Problem p(models::build_pin_cell(2, 2.0), 4, 0.2, 2, 0.5);
  TrackManager exp(p.stacks, TrackPolicy::kExplicit, nullptr, 0);
  EXPECT_EQ(exp.num_resident(), p.stacks.num_tracks());
  EXPECT_DOUBLE_EQ(exp.resident_fraction(), 1.0);

  TrackManager otf(p.stacks, TrackPolicy::kOnTheFly, nullptr, 0);
  EXPECT_EQ(otf.num_resident(), 0);
  EXPECT_EQ(otf.resident_bytes(), 0u);

  TrackManager managed(p.stacks, TrackPolicy::kManaged, nullptr, 1 << 14);
  EXPECT_GT(managed.num_resident(), 0);
  EXPECT_LT(managed.num_resident(), p.stacks.num_tracks());
  EXPECT_LE(managed.resident_bytes(), std::size_t{1} << 14);
}

TEST(TrackManager, ManagedPrefersHeavyTracks) {
  Problem p(models::build_pin_cell(2, 2.0), 4, 0.2, 2, 0.5);
  TrackManager managed(p.stacks, TrackPolicy::kManaged, nullptr, 1 << 14);
  const auto& counts = managed.segment_counts();
  long min_resident = std::numeric_limits<long>::max();
  long max_temporary = 0;
  for (long id = 0; id < p.stacks.num_tracks(); ++id) {
    if (managed.resident(id))
      min_resident = std::min(min_resident, counts[id]);
    else
      max_temporary = std::max(max_temporary, counts[id]);
  }
  // Greedy-by-weight under a byte budget: every temporary track is no
  // heavier than the lightest resident track (ties aside), except where
  // the budget boundary splits equal weights.
  EXPECT_GE(min_resident + 1, max_temporary);
}

TEST(TrackManager, StoredSegmentsMatchOtfExpansion) {
  Problem p(models::build_pin_cell(2, 2.0), 4, 0.3, 1, 0.5);
  TrackManager exp(p.stacks, TrackPolicy::kExplicit, nullptr, 0);
  for (long id = 0; id < p.stacks.num_tracks(); ++id) {
    long count = 0;
    const Segment3D* segs = exp.segments(id, count);
    ASSERT_NE(segs, nullptr);
    const auto otf = p.stacks.expand(id);
    ASSERT_EQ(static_cast<std::size_t>(count), otf.size());
    for (long s = 0; s < count; ++s) {
      EXPECT_EQ(segs[s].fsr, otf[s].fsr);
      EXPECT_DOUBLE_EQ(segs[s].length, otf[s].length);
    }
  }
}

TEST(TrackManager, CostModelReflectsPolicy) {
  Problem p(models::build_pin_cell(1, 1.0), 4, 0.3, 1, 0.5);
  TrackManager exp(p.stacks, TrackPolicy::kExplicit, nullptr, 0);
  TrackManager otf(p.stacks, TrackPolicy::kOnTheFly, nullptr, 0);
  // The regeneration tax is no longer a hardcoded 6.0: the first manager
  // micro-calibrates it (or an earlier override pinned it). Whatever the
  // process-wide value is, track_cost must reflect it exactly.
  const double ratio = perf::otf_cost_ratio();
  EXPECT_GE(ratio, 1.0);
  for (long id = 0; id < p.stacks.num_tracks(); id += 5)
    EXPECT_NEAR(otf.track_cost(id), exp.track_cost(id) * ratio, 1e-9);
}

}  // namespace
}  // namespace antmoc
