/// \file engine_tsan_test.cpp
/// Concurrency companion to engine_test.cpp: N jobs run concurrently
/// across a session's device pool while every shared structure — track
/// stacks, chord templates, the decoded-track-info cache, link table,
/// volumes, the exponential table, and the per-device TrackManager — is
/// read by all of them. Labeled fault as well so the tsan preset
/// (`ctest -L fault`) runs the whole engine under ThreadSanitizer; any
/// post-warm-up mutation of session state shows up as a data race here.

#include <gtest/gtest.h>

#include <cstddef>
#include <map>
#include <vector>

#include "engine/scenario.h"
#include "engine/session.h"
#include "models/c5g7_model.h"

namespace antmoc {
namespace {

using engine::JobResult;
using engine::MaterialOp;
using engine::Scenario;

TEST(EngineTsan, ConcurrentJobsShareWarmStateRaceFree) {
  models::C5G7Options mopt;
  mopt.pins_per_assembly = 3;
  mopt.fuel_layers = 2;
  mopt.reflector_layers = 1;
  mopt.height_scale = 0.1;

  engine::SessionOptions opts;
  opts.num_devices = 2;
  opts.max_concurrent = 4;
  opts.device = gpusim::DeviceSpec::scaled(std::size_t{256} << 20, 4);
  opts.num_azim = 4;
  opts.azim_spacing = 0.5;
  opts.num_polar = 2;
  opts.z_spacing = 1.0;
  opts.solve.fixed_iterations = 4;
  opts.sweep_workers = 2;
  engine::Session session(models::build_core(mopt), opts);

  // Four distinct scenarios, each submitted twice: the duplicates land on
  // different devices/workers and must still agree bitwise.
  std::vector<Scenario> jobs;
  for (int rep = 0; rep < 2; ++rep) {
    Scenario base;
    base.name = "base";
    jobs.push_back(base);

    Scenario up;
    up.name = "up";
    MaterialOp scale;
    scale.kind = MaterialOp::Kind::kScale;
    scale.material = 0;
    scale.xs = MaterialOp::Xs::kNuFission;
    scale.factor = 1.02;
    up.ops.push_back(scale);
    jobs.push_back(up);

    Scenario rodded;
    rodded.name = "rodded";
    MaterialOp swap;
    swap.kind = MaterialOp::Kind::kSwap;
    swap.material = 6;
    swap.source = 7;
    rodded.ops.push_back(swap);
    jobs.push_back(rodded);

    Scenario hot;
    hot.name = "hot";
    MaterialOp temp;
    temp.kind = MaterialOp::Kind::kTemperature;
    temp.delta_t = 300.0;
    hot.ops.push_back(temp);
    jobs.push_back(hot);
  }

  const std::vector<JobResult> results = session.run(jobs);
  ASSERT_EQ(results.size(), jobs.size());

  std::map<std::string, double> k_by_name;
  for (const JobResult& r : results) {
    ASSERT_TRUE(r.ok) << r.scenario << ": " << r.error;
    const auto [it, inserted] = k_by_name.emplace(r.scenario, r.k_eff);
    if (!inserted)
      EXPECT_EQ(it->second, r.k_eff)
          << r.scenario << " diverged across concurrent duplicates";
  }
  EXPECT_EQ(k_by_name.size(), 4u);

  const auto stats = session.stats();
  EXPECT_EQ(stats.submitted, static_cast<long>(jobs.size()));
  EXPECT_EQ(stats.completed, static_cast<long>(jobs.size()));
  EXPECT_EQ(stats.failed, 0);
}

}  // namespace
}  // namespace antmoc
