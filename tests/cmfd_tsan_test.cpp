/// \file cmfd_tsan_test.cpp
/// Concurrency companion for the CMFD layer, labeled for the tsan preset
/// (`ctest --test-dir build-tsan -L fault`): the per-worker private
/// current buffers written by the fork-join sweep, the crossing-plan
/// construction under a parallel pool, the decomposed driver's
/// cross-rank coarse-current allreduce, and engine jobs sharing one
/// immutable CmfdContext all run under ThreadSanitizer so any race in
/// the tally or merge machinery trips the sanitizer.

#include <gtest/gtest.h>

#include <array>
#include <string>
#include <vector>

#include "cmfd/cmfd.h"
#include "engine/session.h"
#include "models/c5g7_model.h"
#include "solver/cpu_solver.h"
#include "solver/domain_solver.h"

namespace antmoc {
namespace {

struct Problem {
  models::C5G7Model model;
  Quadrature quad;
  TrackGenerator2D gen;
  TrackStacks stacks;

  Problem(models::C5G7Model m, int nazim, double spacing, int npolar,
          double dz)
      : model(std::move(m)),
        quad(nazim, spacing, model.geometry.bounds().width_x(),
             model.geometry.bounds().width_y(), npolar),
        gen(quad, model.geometry.bounds(), radial_kinds(model.geometry)),
        stacks((gen.trace(model.geometry), gen), model.geometry,
               model.geometry.bounds().z_min,
               model.geometry.bounds().z_max, dz) {}

  static std::array<LinkKind, 4> radial_kinds(const Geometry& g) {
    return {to_link_kind(g.boundary(Face::kXMin)),
            to_link_kind(g.boundary(Face::kXMax)),
            to_link_kind(g.boundary(Face::kYMin)),
            to_link_kind(g.boundary(Face::kYMax))};
  }
};

models::C5G7Model small_model() {
  models::C5G7Options opt;
  opt.pins_per_assembly = 3;
  opt.fuel_layers = 2;
  opt.reflector_layers = 1;
  opt.height_scale = 0.1;
  return models::build_core(opt);
}

TEST(CmfdConcurrency, ForkJoinTalliesArePrivatized) {
  Problem p(small_model(), 4, 0.5, 2, 1.0);
  CpuSolver solver(p.stacks, p.model.materials, 4);
  cmfd::CmfdOptions co;
  co.enable = true;
  solver.enable_cmfd(co);
  SolveOptions opts;
  opts.fixed_iterations = 4;
  const auto r = solver.solve(opts);
  EXPECT_GT(r.k_eff, 0.0);
  EXPECT_FALSE(solver.cmfd_accel()->degraded());
}

TEST(CmfdConcurrency, DecomposedRanksShareCoarseCurrents) {
  const auto model = small_model();
  DomainRunParams params;
  params.num_azim = 4;
  params.azim_spacing = 0.5;
  params.num_polar = 2;
  params.z_spacing = 1.0;
  params.sweep_workers = 2;
  params.cmfd.enable = true;
  SolveOptions opts;
  opts.fixed_iterations = 4;
  const auto summary = solve_decomposed(model.geometry, model.materials,
                                        {1, 1, 2}, params, opts);
  EXPECT_GT(summary.result.k_eff, 0.0);
}

TEST(CmfdConcurrency, EngineJobsShareOneContext) {
  engine::SessionOptions opts;
  opts.num_devices = 2;
  opts.max_concurrent = 2;
  opts.device = gpusim::DeviceSpec::scaled(std::size_t{256} << 20, 4);
  opts.num_azim = 4;
  opts.azim_spacing = 0.5;
  opts.num_polar = 2;
  opts.z_spacing = 1.0;
  opts.solve.fixed_iterations = 4;
  opts.sweep_workers = 2;
  opts.cmfd.enable = true;
  engine::Session session(small_model(), opts);
  std::vector<engine::Scenario> jobs(4);
  for (std::size_t i = 0; i < jobs.size(); ++i)
    jobs[i].name = "job" + std::to_string(i);
  const auto results = session.run(jobs);
  ASSERT_EQ(results.size(), jobs.size());
  for (const auto& r : results) {
    EXPECT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.k_eff, results[0].k_eff);
  }
}

}  // namespace
}  // namespace antmoc
