#include <gtest/gtest.h>

#include <numeric>

#include "material/c5g7.h"
#include "models/c5g7_model.h"
#include "solver/cpu_solver.h"
#include "solver/tallies.h"
#include "util/error.h"

namespace antmoc::tallies {
namespace {

struct Solved {
  models::C5G7Model model;
  Quadrature quad;
  TrackGenerator2D gen;
  TrackStacks stacks;
  CpuSolver solver;
  SolveResult result;

  Solved()
      : model(models::build_pin_cell(4, 4.0)),
        quad(4, 0.2, 1.26, 1.26, 1),
        gen(quad, model.geometry.bounds(),
            {LinkKind::kReflective, LinkKind::kReflective,
             LinkKind::kReflective, LinkKind::kReflective}),
        stacks((gen.trace(model.geometry), gen), model.geometry, 0.0, 4.0,
               1.0),
        solver(stacks, model.materials) {
    SolveOptions opts;
    opts.tolerance = 1e-6;
    opts.max_iterations = 20000;
    result = solver.solve(opts);
  }
};

const Solved& solved() {
  static const Solved s;
  return s;
}

TEST(Tallies, RatesByMaterialPartitionTheTotal) {
  const auto& s = solved();
  const auto by_mat = rate_by_material(
      s.model.geometry, s.model.materials, s.solver.fsr().scalar_flux(),
      s.solver.fsr().volumes(), Reaction::kTotal);
  const double total =
      total_rate(s.model.geometry, s.model.materials,
                 s.solver.fsr().scalar_flux(), s.solver.fsr().volumes(),
                 Reaction::kTotal);
  EXPECT_NEAR(std::accumulate(by_mat.begin(), by_mat.end(), 0.0), total,
              1e-9 * total);
  // Only UO2 and moderator exist in a pin cell.
  for (std::size_t m = 0; m < by_mat.size(); ++m) {
    if (m == c5g7::kUO2 || m == c5g7::kModerator)
      EXPECT_GT(by_mat[m], 0.0) << m;
    else
      EXPECT_DOUBLE_EQ(by_mat[m], 0.0) << m;
  }
}

TEST(Tallies, OnlyFuelFissions) {
  const auto& s = solved();
  const auto fission = rate_by_material(
      s.model.geometry, s.model.materials, s.solver.fsr().scalar_flux(),
      s.solver.fsr().volumes(), Reaction::kFission);
  EXPECT_GT(fission[c5g7::kUO2], 0.0);
  EXPECT_DOUBLE_EQ(fission[c5g7::kModerator], 0.0);
}

TEST(Tallies, NeutronBalanceAtConvergedK) {
  // Leakage-free reflected problem: production / absorption = k.
  const auto& s = solved();
  ASSERT_TRUE(s.result.converged);
  const double production =
      total_rate(s.model.geometry, s.model.materials,
                 s.solver.fsr().scalar_flux(), s.solver.fsr().volumes(),
                 Reaction::kNuFission);
  const double absorption =
      total_rate(s.model.geometry, s.model.materials,
                 s.solver.fsr().scalar_flux(), s.solver.fsr().volumes(),
                 Reaction::kAbsorption);
  EXPECT_NEAR(production / absorption, s.result.k_eff,
              2e-3 * s.result.k_eff);
}

TEST(Tallies, AxialProfileFlatForReflectedPin) {
  const auto& s = solved();
  const auto profile = axial_power_profile(
      s.model.geometry, s.solver.fsr().fission_rate(),
      s.solver.fsr().volumes());
  ASSERT_EQ(profile.size(), 4u);
  for (double p : profile) EXPECT_NEAR(p, 1.0, 5e-3);
}

TEST(Tallies, RadialPowerMapFindsThePin) {
  const auto& s = solved();
  const auto map = radial_power_map(s.model.geometry,
                                    s.solver.fsr().fission_rate(),
                                    s.solver.fsr().volumes(), 1, 1);
  ASSERT_EQ(map.size(), 1u);
  EXPECT_GT(map[0], 0.0);
}

TEST(Tallies, PeakingFactorProperties) {
  EXPECT_DOUBLE_EQ(peaking_factor({}), 0.0);
  EXPECT_DOUBLE_EQ(peaking_factor({2.0, 2.0, 2.0}), 1.0);
  EXPECT_DOUBLE_EQ(peaking_factor({1.0, 3.0}), 1.5);
  // Zero entries (reflector tiles) are excluded from the average.
  EXPECT_DOUBLE_EQ(peaking_factor({0.0, 1.0, 3.0}), 1.5);
}

TEST(Tallies, SizeMismatchesThrow) {
  const auto& s = solved();
  std::vector<double> wrong(3, 1.0);
  EXPECT_THROW(rate_by_material(s.model.geometry, s.model.materials, wrong,
                                s.solver.fsr().volumes(),
                                Reaction::kTotal),
               Error);
  EXPECT_THROW(axial_power_profile(s.model.geometry, wrong,
                                   s.solver.fsr().volumes()),
               Error);
}

}  // namespace
}  // namespace antmoc::tallies
