#include <gtest/gtest.h>

#include <cmath>

#include "geometry/builder.h"
#include "material/c5g7.h"
#include "models/c5g7_model.h"
#include "solver/cpu_solver.h"
#include "track/generator2d.h"
#include "util/error.h"

namespace antmoc {
namespace {

constexpr double kPi = 3.14159265358979323846;

// ------------------------------------------------------------ line surface ---

TEST(LineSurface, EvaluatesSignedDistance) {
  // x + y - 1 = 0, normalized.
  const auto l = Surface2D::line(1.0, 1.0, -1.0);
  EXPECT_LT(l.evaluate({0.0, 0.0}), 0.0);
  EXPECT_GT(l.evaluate({1.0, 1.0}), 0.0);
  EXPECT_NEAR(l.evaluate({0.5, 0.5}), 0.0, 1e-12);
  // Normalization makes evaluate a true distance.
  EXPECT_NEAR(l.evaluate({0.0, 0.0}), -1.0 / std::sqrt(2.0), 1e-12);
}

TEST(LineSurface, RayDistance) {
  const auto l = Surface2D::line(0.0, 1.0, -2.0);  // y = 2
  EXPECT_NEAR(l.ray_distance({0.0, 0.0}, 0.0, 1.0), 2.0, 1e-12);
  EXPECT_EQ(l.ray_distance({0.0, 0.0}, 1.0, 0.0), kInfDistance);
  EXPECT_EQ(l.ray_distance({0.0, 3.0}, 0.0, 1.0), kInfDistance);
  const double s = 1.0 / std::sqrt(2.0);
  EXPECT_NEAR(l.ray_distance({0.0, 0.0}, s, s), 2.0 * std::sqrt(2.0),
              1e-12);
}

// -------------------------------------------------------- pin subdivision ---

Geometry subdivided_pin(const PinSubdivision& sub) {
  GeometryBuilder b;
  const int pin = b.add_pin_universe("pin", /*fuel=*/0, /*mod=*/1, 0.54,
                                     sub);
  const int root = b.add_lattice("root", 1, 1, 1.26, 1.26, 0.0, 0.0, {pin});
  b.set_root(root);
  Bounds bounds;
  bounds.x_max = 1.26;
  bounds.y_max = 1.26;
  b.set_bounds(bounds);
  b.set_all_radial_boundaries(BoundaryType::kReflective);
  b.set_boundary(Face::kZMin, BoundaryType::kReflective);
  b.set_boundary(Face::kZMax, BoundaryType::kReflective);
  b.add_axial_zone(0.0, 1.0, 1);
  return b.build();
}

TEST(PinSubdivisionGeom, RegionCountFormula) {
  for (int rings : {1, 2, 3})
    for (int fsec : {1, 2, 4, 8})
      for (int msec : {1, 4}) {
        PinSubdivision sub;
        sub.fuel_rings = rings;
        sub.fuel_sectors = fsec;
        sub.moderator_sectors = msec;
        const auto g = subdivided_pin(sub);
        EXPECT_EQ(g.num_radial_regions(), rings * fsec + msec)
            << rings << "r " << fsec << "fs " << msec << "ms";
      }
}

TEST(PinSubdivisionGeom, InvalidCountsThrow) {
  GeometryBuilder b;
  PinSubdivision sub;
  sub.fuel_rings = 0;
  EXPECT_THROW(b.add_pin_universe("p", 0, 1, 0.5, sub), Error);
}

TEST(PinSubdivisionGeom, EveryPointFindsAUniqueRegion) {
  PinSubdivision sub;
  sub.fuel_rings = 2;
  sub.fuel_sectors = 4;
  sub.moderator_sectors = 8;
  const auto g = subdivided_pin(sub);
  // Dense sampling must always land in some region with the right
  // material (fuel inside r=0.54 of the center, moderator outside).
  const int n = 150;
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) {
      const Point2 p{(i + 0.5) * 1.26 / n, (j + 0.5) * 1.26 / n};
      const auto found = g.find_radial(p);
      const double r = std::hypot(p.x - 0.63, p.y - 0.63);
      EXPECT_EQ(found.material, r < 0.54 - 1e-9   ? 0
                                : r > 0.54 + 1e-9 ? 1
                                                  : found.material);
    }
}

TEST(PinSubdivisionGeom, RingAreasAreEqual) {
  PinSubdivision sub;
  sub.fuel_rings = 3;
  const auto g = subdivided_pin(sub);
  const Quadrature quad(16, 0.02, 1.26, 1.26, 1);
  TrackGenerator2D gen(quad, g.bounds(),
                       {LinkKind::kReflective, LinkKind::kReflective,
                        LinkKind::kReflective, LinkKind::kReflective});
  gen.trace(g);
  const auto areas = gen.region_areas(g.num_radial_regions());
  // Regions 0..2 are the rings (builder order), each pi*R^2/3.
  const double expected = kPi * 0.54 * 0.54 / 3.0;
  for (int r = 0; r < 3; ++r)
    EXPECT_NEAR(areas[r], expected, 0.03 * expected) << "ring " << r;
}

TEST(PinSubdivisionGeom, SectorAreasAreEqual) {
  PinSubdivision sub;
  sub.fuel_sectors = 4;
  const auto g = subdivided_pin(sub);
  const Quadrature quad(16, 0.02, 1.26, 1.26, 1);
  TrackGenerator2D gen(quad, g.bounds(),
                       {LinkKind::kReflective, LinkKind::kReflective,
                        LinkKind::kReflective, LinkKind::kReflective});
  gen.trace(g);
  const auto areas = gen.region_areas(g.num_radial_regions());
  const double expected = kPi * 0.54 * 0.54 / 4.0;
  for (int s = 0; s < 4; ++s)
    EXPECT_NEAR(areas[s], expected, 0.05 * expected) << "sector " << s;
}

TEST(PinSubdivisionGeom, TotalAreaPreserved) {
  PinSubdivision sub;
  sub.fuel_rings = 2;
  sub.fuel_sectors = 4;
  sub.moderator_sectors = 4;
  const auto g = subdivided_pin(sub);
  const Quadrature quad(8, 0.03, 1.26, 1.26, 1);
  TrackGenerator2D gen(quad, g.bounds(),
                       {LinkKind::kReflective, LinkKind::kReflective,
                        LinkKind::kReflective, LinkKind::kReflective});
  gen.trace(g);
  const auto areas = gen.region_areas(g.num_radial_regions());
  double total = 0.0;
  for (double a : areas) total += a;
  EXPECT_NEAR(total, 1.26 * 1.26, 1e-6 * 1.26 * 1.26);
}

// ------------------------------------------------------- solver coupling ---

TEST(PinSubdivisionSolve, KMatchesUnsubdividedPin) {
  // The same physical problem with refined FSRs: k moves only by the
  // flat-source discretization error, which is small for a pin cell.
  SolveOptions opts;
  opts.tolerance = 1e-6;
  opts.max_iterations = 20000;

  auto run = [&](const PinSubdivision& sub) {
    GeometryBuilder b;
    const int pin = b.add_pin_universe("pin", c5g7::kUO2,
                                       c5g7::kModerator, 0.54, sub);
    const int root =
        b.add_lattice("root", 1, 1, 1.26, 1.26, 0.0, 0.0, {pin});
    b.set_root(root);
    Bounds bounds;
    bounds.x_max = 1.26;
    bounds.y_max = 1.26;
    b.set_bounds(bounds);
    b.set_all_radial_boundaries(BoundaryType::kReflective);
    b.set_boundary(Face::kZMin, BoundaryType::kReflective);
    b.set_boundary(Face::kZMax, BoundaryType::kReflective);
    b.add_axial_zone(0.0, 2.0, 2);
    const Geometry g = b.build();
    const auto materials = c5g7::materials();
    const Quadrature quad(8, 0.08, 1.26, 1.26, 2);
    TrackGenerator2D gen(quad, g.bounds(),
                         {LinkKind::kReflective, LinkKind::kReflective,
                          LinkKind::kReflective, LinkKind::kReflective});
    gen.trace(g);
    const TrackStacks stacks(gen, g, 0.0, 2.0, 0.5);
    CpuSolver solver(stacks, materials);
    const auto result = solver.solve(opts);
    EXPECT_TRUE(result.converged);
    return result.k_eff;
  };

  const double k_coarse = run({});
  PinSubdivision fine;
  fine.fuel_rings = 3;
  fine.fuel_sectors = 4;
  fine.moderator_sectors = 4;
  const double k_fine = run(fine);
  EXPECT_NEAR(k_fine, k_coarse, 0.01 * k_coarse)
      << "coarse " << k_coarse << " fine " << k_fine;
}

TEST(PinSubdivisionSolve, C5G7ModelAcceptsSubdivision) {
  models::C5G7Options opt;
  opt.pins_per_assembly = 3;
  opt.height_scale = 0.05;
  opt.subdivision.fuel_rings = 2;
  opt.subdivision.fuel_sectors = 2;
  const auto model = models::build_core(opt);
  // 4 fueled assemblies x 9 pins x (2*2 fuel + 1 moderator) + 5 reflector.
  EXPECT_EQ(model.geometry.num_radial_regions(), 4 * 9 * 5 + 5);
}

}  // namespace
}  // namespace antmoc
