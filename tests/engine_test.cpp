/// \file engine_test.cpp
/// Scenario-engine suite (DESIGN.md §12): scenario parsing and
/// application, bitwise identity of warm engine jobs against cold
/// one-shot solves, job-order independence, memory-admission fallback
/// (jobs queue, never fail, when the arena is tight), and fault isolation
/// (a crashed job leaves the session serving).

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>

#include "engine/scenario.h"
#include "engine/session.h"
#include "fault/fault.h"
#include "models/c5g7_model.h"
#include "util/error.h"

namespace antmoc {
namespace {

using engine::JobResult;
using engine::MaterialOp;
using engine::Scenario;
using engine::Session;
using engine::SessionOptions;

models::C5G7Model small_model() {
  models::C5G7Options opt;
  opt.pins_per_assembly = 3;
  opt.fuel_layers = 2;
  opt.reflector_layers = 1;
  opt.height_scale = 0.1;
  return models::build_core(opt);
}

SessionOptions small_options(int devices = 1) {
  SessionOptions opts;
  opts.num_devices = devices;
  opts.device = gpusim::DeviceSpec::scaled(std::size_t{256} << 20, 4);
  opts.num_azim = 4;
  opts.azim_spacing = 0.5;
  opts.num_polar = 2;
  opts.z_spacing = 1.0;
  opts.solve.fixed_iterations = 5;
  opts.sweep_workers = 2;
  return opts;
}

Scenario named(const std::string& name) {
  Scenario s;
  s.name = name;
  return s;
}

Scenario scale_scenario(const std::string& name, int material,
                        MaterialOp::Xs xs, double factor) {
  Scenario s = named(name);
  MaterialOp op;
  op.kind = MaterialOp::Kind::kScale;
  op.material = material;
  op.xs = xs;
  op.factor = factor;
  s.ops.push_back(op);
  return s;
}

void expect_bitwise_equal(const JobResult& a, const JobResult& b) {
  ASSERT_TRUE(a.ok) << a.error;
  ASSERT_TRUE(b.ok) << b.error;
  EXPECT_EQ(a.k_eff, b.k_eff);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.converged, b.converged);
  EXPECT_EQ(a.residual, b.residual);
  ASSERT_EQ(a.step_k.size(), b.step_k.size());
  for (std::size_t i = 0; i < a.step_k.size(); ++i)
    EXPECT_EQ(a.step_k[i], b.step_k[i]) << "step " << i;
  ASSERT_EQ(a.group_flux.size(), b.group_flux.size());
  for (std::size_t g = 0; g < a.group_flux.size(); ++g)
    EXPECT_EQ(a.group_flux[g], b.group_flux[g]) << "group " << g;
}

// ---------------------------------------------------------- scenario file ---

TEST(ScenarioParse, FullGrammar) {
  const auto scenarios = engine::parse_scenarios(
      "# control-rod study\n"
      "scenario base\n"
      "scenario rodded\n"
      "  swap material=6 source=7\n"
      "scenario branch steps=3 burn=0.98  # depletion-ish chain\n"
      "  scale material=0 xs=nu_fission group=all factor=1.02\n"
      "  temp dT=300 material=all\n");
  ASSERT_EQ(scenarios.size(), 3u);
  EXPECT_EQ(scenarios[0].name, "base");
  EXPECT_TRUE(scenarios[0].ops.empty());
  EXPECT_EQ(scenarios[0].steps, 1);

  ASSERT_EQ(scenarios[1].ops.size(), 1u);
  EXPECT_EQ(scenarios[1].ops[0].kind, MaterialOp::Kind::kSwap);
  EXPECT_EQ(scenarios[1].ops[0].material, 6);
  EXPECT_EQ(scenarios[1].ops[0].source, 7);

  EXPECT_EQ(scenarios[2].steps, 3);
  EXPECT_DOUBLE_EQ(scenarios[2].burn, 0.98);
  ASSERT_EQ(scenarios[2].ops.size(), 2u);
  EXPECT_EQ(scenarios[2].ops[0].xs, MaterialOp::Xs::kNuFission);
  EXPECT_EQ(scenarios[2].ops[0].group, -1);
  EXPECT_DOUBLE_EQ(scenarios[2].ops[0].factor, 1.02);
  EXPECT_EQ(scenarios[2].ops[1].kind, MaterialOp::Kind::kTemperature);
  EXPECT_DOUBLE_EQ(scenarios[2].ops[1].delta_t, 300.0);
}

TEST(ScenarioParse, RejectsMalformedInput) {
  EXPECT_THROW(engine::parse_scenarios("scale material=0 factor=2\n"),
               ConfigError);  // op before any header
  EXPECT_THROW(engine::parse_scenarios("scenario\n"), ConfigError);
  EXPECT_THROW(engine::parse_scenarios("scenario s\n  scale material=0\n"),
               ConfigError);  // scale without factor
  EXPECT_THROW(engine::parse_scenarios("scenario s\n  swap material=1\n"),
               ConfigError);  // swap without source
  EXPECT_THROW(engine::parse_scenarios("scenario s\n  warp factor=9\n"),
               ConfigError);  // unknown directive
  EXPECT_THROW(
      engine::parse_scenarios("scenario s\n  scale xs=speed factor=2\n"),
      ConfigError);  // unknown xs family
  EXPECT_THROW(engine::parse_scenarios("scenario s steps=0\n"), ConfigError);
}

TEST(ScenarioApply, OpsEditOnlyTheirTargets) {
  const auto model = small_model();
  const auto& base = model.materials;

  Scenario s = scale_scenario("up", 0, MaterialOp::Xs::kNuFission, 1.05);
  const auto mats = engine::apply_scenario(base, s);
  ASSERT_EQ(mats.size(), base.size());
  for (int g = 0; g < base[0].num_groups(); ++g) {
    EXPECT_DOUBLE_EQ(mats[0].nu_sigma_f(g), 1.05 * base[0].nu_sigma_f(g));
    EXPECT_DOUBLE_EQ(mats[0].sigma_t(g), base[0].sigma_t(g));
    EXPECT_DOUBLE_EQ(mats[1].nu_sigma_f(g), base[1].nu_sigma_f(g));
  }

  Scenario swap = named("rodded");
  MaterialOp op;
  op.kind = MaterialOp::Kind::kSwap;
  op.material = 6;
  op.source = 7;
  swap.ops.push_back(op);
  const auto rodded = engine::apply_scenario(base, swap);
  for (int g = 0; g < base[0].num_groups(); ++g)
    EXPECT_DOUBLE_EQ(rodded[6].sigma_t(g), base[7].sigma_t(g));
}

TEST(ScenarioApply, BurnStepsDepleteFissionXs) {
  const auto model = small_model();
  Scenario s = named("deplete");
  s.steps = 3;
  s.burn = 0.9;
  const auto step0 = engine::apply_scenario(model.materials, s, 0);
  const auto step2 = engine::apply_scenario(model.materials, s, 2);
  const double expected = 0.9 * 0.9;
  for (int g = 0; g < step0[0].num_groups(); ++g) {
    EXPECT_DOUBLE_EQ(step2[0].nu_sigma_f(g),
                     expected * step0[0].nu_sigma_f(g));
    // Non-fissile materials never deplete.
    EXPECT_DOUBLE_EQ(step2[6].sigma_t(g), step0[6].sigma_t(g));
  }
}

TEST(ScenarioApply, InvalidPhysicsThrows) {
  const auto model = small_model();
  // Crushing Σt below the out-scatter total must fail validation.
  Scenario bad = scale_scenario("bad", 6, MaterialOp::Xs::kTotal, 0.1);
  EXPECT_THROW(engine::apply_scenario(model.materials, bad), Error);
}

// ------------------------------------------------------- engine vs one-shot ---

TEST(EngineSession, WarmJobBitwiseIdenticalToOneShot) {
  Session session(small_model(), small_options());

  std::vector<Scenario> jobs;
  jobs.push_back(named("base"));
  jobs.push_back(scale_scenario("up", 0, MaterialOp::Xs::kNuFission, 1.02));
  Scenario chain = named("chain");
  chain.steps = 2;
  chain.burn = 0.95;
  jobs.push_back(chain);

  const auto results = session.run(jobs);
  ASSERT_EQ(results.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const JobResult cold = session.solve_one_shot(jobs[i]);
    expect_bitwise_equal(results[i], cold);
  }
  // Distinct scenarios must actually differ — the identity above is not
  // vacuous.
  EXPECT_NE(results[0].k_eff, results[1].k_eff);
  ASSERT_EQ(results[2].step_k.size(), 2u);
  EXPECT_NE(results[2].step_k[0], results[2].step_k[1]);
}

TEST(EngineSession, ResultsIndependentOfSubmissionOrder) {
  SessionOptions opts = small_options(2);
  opts.max_concurrent = 2;
  Session session(small_model(), opts);

  std::vector<Scenario> forward;
  forward.push_back(named("base"));
  forward.push_back(scale_scenario("up", 0, MaterialOp::Xs::kNuFission, 1.02));
  forward.push_back(scale_scenario("hot", 0, MaterialOp::Xs::kTotal, 1.01));
  std::vector<Scenario> reversed(forward.rbegin(), forward.rend());

  const auto a = session.run(forward);
  const auto b = session.run(reversed);
  for (const JobResult& ra : a) {
    for (const JobResult& rb : b) {
      if (ra.scenario != rb.scenario) continue;
      expect_bitwise_equal(ra, rb);
    }
  }

  const auto stats = session.stats();
  EXPECT_EQ(stats.submitted, 6);
  EXPECT_EQ(stats.completed, 6);
  EXPECT_EQ(stats.failed, 0);
}

// ------------------------------------------------------------- admission ---

TEST(EngineSession, TightArenaQueuesJobsInsteadOfFailing) {
  // Size a device that fits the shared state plus 1.5 job floors: two
  // workers then compete for one admission slot, and the second job must
  // wait for the first, never OOM.
  std::size_t shared_bytes = 0;
  std::size_t floor = 0;
  {
    Session probe(small_model(), small_options());
    shared_bytes =
        small_options().device.memory_bytes - probe.idle_headroom(0);
    floor = probe.job_floor_bytes();
  }

  SessionOptions opts = small_options();
  opts.device =
      gpusim::DeviceSpec::scaled(shared_bytes + floor + floor / 2, 4);
  opts.max_concurrent = 2;
  Session session(small_model(), opts);

  std::vector<Scenario> jobs;
  jobs.push_back(named("base"));
  jobs.push_back(scale_scenario("up", 0, MaterialOp::Xs::kNuFission, 1.02));
  jobs.push_back(scale_scenario("hot", 0, MaterialOp::Xs::kTotal, 1.01));
  const auto results = session.run(jobs);
  for (const JobResult& r : results) EXPECT_TRUE(r.ok) << r.error;

  const auto stats = session.stats();
  EXPECT_EQ(stats.completed, 3);
  EXPECT_EQ(stats.failed, 0);
  // The arena admits one job at a time; admission control must have
  // serialized them rather than letting a second job in to OOM.
  EXPECT_EQ(stats.peak_concurrent, 1);
}

// ------------------------------------------------------- fault isolation ---

TEST(EngineSession, FaultedJobFailsAloneSessionKeepsServing) {
  SessionOptions opts = small_options();
  opts.max_concurrent = 1;  // deterministic job order for nth targeting
  Session session(small_model(), opts);

  const Scenario base = named("base");
  const JobResult before = session.submit(base).get();
  ASSERT_TRUE(before.ok) << before.error;

  {
    fault::ScopedPlan plan("engine.job throw solver nth=1");
    const JobResult faulted = session.submit(base).get();
    EXPECT_FALSE(faulted.ok);
    EXPECT_FALSE(faulted.error.empty());
  }

  const JobResult after = session.submit(base).get();
  expect_bitwise_equal(before, after);

  const auto stats = session.stats();
  EXPECT_EQ(stats.completed, 2);
  EXPECT_EQ(stats.failed, 1);
}

TEST(EngineSession, InvalidScenarioFailsJobOnly) {
  Session session(small_model(), small_options());
  const JobResult bad = session
                            .submit(scale_scenario(
                                "bad", 6, MaterialOp::Xs::kTotal, 0.1))
                            .get();
  EXPECT_FALSE(bad.ok);
  EXPECT_FALSE(bad.error.empty());

  const JobResult good = session.submit(named("base")).get();
  EXPECT_TRUE(good.ok) << good.error;
  expect_bitwise_equal(good, session.solve_one_shot(named("base")));
}

// ---------------------------------------------------------------- physics ---

TEST(EngineSession, ScenariosMoveKTheRightWay) {
  SessionOptions opts = small_options();
  opts.solve.fixed_iterations = 8;
  Session session(small_model(), opts);

  std::vector<Scenario> jobs;
  jobs.push_back(named("base"));
  Scenario rodded = named("rodded");
  MaterialOp op;
  op.kind = MaterialOp::Kind::kSwap;
  op.material = 6;  // moderator -> control rod everywhere
  op.source = 7;
  rodded.ops.push_back(op);
  jobs.push_back(rodded);
  jobs.push_back(scale_scenario("up", 0, MaterialOp::Xs::kNuFission, 1.05));
  Scenario hot = named("hot");
  MaterialOp t;
  t.kind = MaterialOp::Kind::kTemperature;
  t.delta_t = 600.0;
  hot.ops.push_back(t);
  jobs.push_back(hot);

  const auto r = session.run(jobs);
  ASSERT_EQ(r.size(), 4u);
  for (const JobResult& res : r) ASSERT_TRUE(res.ok) << res.error;
  const double k_base = r[0].k_eff;
  EXPECT_LT(r[1].k_eff, k_base);  // absorber flooding the moderator
  EXPECT_GT(r[2].k_eff, k_base);  // more neutrons per fission
  EXPECT_LT(r[3].k_eff, k_base);  // Doppler feedback is negative
}

}  // namespace
}  // namespace antmoc
