#include <gtest/gtest.h>

#include <cmath>

#include "geometry/builder.h"
#include "geometry/geometry.h"
#include "util/error.h"

namespace antmoc {
namespace {

constexpr double kPi = 3.14159265358979323846;

// ---------------------------------------------------------------- Surface ---

TEST(Surface, PlaneEvaluation) {
  const auto sx = Surface2D::x_plane(2.0);
  EXPECT_LT(sx.evaluate({1.0, 0.0}), 0.0);
  EXPECT_GT(sx.evaluate({3.0, 0.0}), 0.0);
  EXPECT_DOUBLE_EQ(sx.evaluate({2.0, 5.0}), 0.0);

  const auto sy = Surface2D::y_plane(-1.0);
  EXPECT_LT(sy.evaluate({0.0, -2.0}), 0.0);
  EXPECT_GT(sy.evaluate({0.0, 0.0}), 0.0);
}

TEST(Surface, CircleEvaluation) {
  const auto c = Surface2D::circle(1.0, 1.0, 0.5);
  EXPECT_LT(c.evaluate({1.0, 1.0}), 0.0);
  EXPECT_GT(c.evaluate({2.0, 1.0}), 0.0);
  EXPECT_NEAR(c.evaluate({1.5, 1.0}), 0.0, 1e-12);
}

TEST(Surface, PlaneRayDistance) {
  const auto sx = Surface2D::x_plane(2.0);
  EXPECT_DOUBLE_EQ(sx.ray_distance({0.0, 0.0}, 1.0, 0.0), 2.0);
  EXPECT_EQ(sx.ray_distance({0.0, 0.0}, -1.0, 0.0), kInfDistance);
  EXPECT_EQ(sx.ray_distance({0.0, 0.0}, 0.0, 1.0), kInfDistance);
  // Diagonal ray: distance is 2 / cos(45 deg).
  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  EXPECT_NEAR(sx.ray_distance({0.0, 0.0}, inv_sqrt2, inv_sqrt2),
              2.0 * std::sqrt(2.0), 1e-12);
}

TEST(Surface, CircleRayDistanceFromOutside) {
  const auto c = Surface2D::circle(0.0, 0.0, 1.0);
  EXPECT_NEAR(c.ray_distance({-3.0, 0.0}, 1.0, 0.0), 2.0, 1e-12);
  // Ray missing the circle.
  EXPECT_EQ(c.ray_distance({-3.0, 2.0}, 1.0, 0.0), kInfDistance);
  // Ray pointing away.
  EXPECT_EQ(c.ray_distance({-3.0, 0.0}, -1.0, 0.0), kInfDistance);
}

TEST(Surface, CircleRayDistanceFromInside) {
  const auto c = Surface2D::circle(0.0, 0.0, 1.0);
  EXPECT_NEAR(c.ray_distance({0.0, 0.0}, 1.0, 0.0), 1.0, 1e-12);
  EXPECT_NEAR(c.ray_distance({0.5, 0.0}, 1.0, 0.0), 0.5, 1e-12);
  EXPECT_NEAR(c.ray_distance({0.5, 0.0}, -1.0, 0.0), 1.5, 1e-12);
}

TEST(Surface, TangentRayGrazesOrMisses) {
  const auto c = Surface2D::circle(0.0, 0.0, 1.0);
  const double d = c.ray_distance({-2.0, 1.0 + 1e-9}, 1.0, 0.0);
  EXPECT_EQ(d, kInfDistance);
}

// ------------------------------------------------------ simple geometries ---

/// A single square pin cell: fuel circle at the center, moderator outside.
Geometry pin_cell_geometry(double pitch = 1.26, double r = 0.54,
                           int layers = 1) {
  GeometryBuilder b;
  const int circ = b.add_circle(0.0, 0.0, r);
  const int pin = b.add_universe("pin");
  b.add_cell(pin, "fuel", /*material=*/0, {b.inside(circ)});
  b.add_cell(pin, "mod", /*material=*/1, {b.outside(circ)});
  const int lat = b.add_lattice("root", 1, 1, pitch, pitch, 0.0, 0.0, {pin});
  b.set_root(lat);
  Bounds bounds;
  bounds.x_min = 0.0;
  bounds.x_max = pitch;
  bounds.y_min = 0.0;
  bounds.y_max = pitch;
  b.set_bounds(bounds);
  b.add_axial_zone(0.0, 10.0, layers);
  return b.build();
}

/// A 2x2 lattice of pins with distinct fuel materials 0..3, moderator 4.
Geometry quad_lattice_geometry() {
  GeometryBuilder b;
  const double pitch = 1.0, r = 0.4;
  std::vector<int> pins;
  for (int m = 0; m < 4; ++m) {
    const int circ = b.add_circle(0.0, 0.0, r);
    const int pin = b.add_universe("pin" + std::to_string(m));
    b.add_cell(pin, "fuel", m, {b.inside(circ)});
    b.add_cell(pin, "mod", 4, {b.outside(circ)});
    pins.push_back(pin);
  }
  const int lat =
      b.add_lattice("root", 2, 2, pitch, pitch, 0.0, 0.0, pins);
  b.set_root(lat);
  Bounds bounds;
  bounds.x_max = 2.0;
  bounds.y_max = 2.0;
  b.set_bounds(bounds);
  b.add_axial_zone(0.0, 4.0, 2);
  return b.build();
}

TEST(Geometry, PinCellEnumeratesTwoRegions) {
  const auto g = pin_cell_geometry();
  EXPECT_EQ(g.num_radial_regions(), 2);
  EXPECT_EQ(g.num_axial_layers(), 1);
  EXPECT_EQ(g.num_fsrs(), 2);
}

TEST(Geometry, PinCellPointLocation) {
  const auto g = pin_cell_geometry();
  // Lattice element center is at (0.63, 0.63); fuel inside r=0.54.
  const auto fuel = g.find_radial({0.63, 0.63});
  EXPECT_EQ(fuel.material, 0);
  const auto mod = g.find_radial({0.05, 0.05});
  EXPECT_EQ(mod.material, 1);
  EXPECT_NE(fuel.region, mod.region);
}

TEST(Geometry, FindOutsideBoundsThrows) {
  const auto g = pin_cell_geometry();
  EXPECT_THROW(g.find_radial({-1.0, 0.5}), GeometryError);
  EXPECT_THROW(g.find_radial({0.5, 99.0}), GeometryError);
}

TEST(Geometry, DistanceToCircleBoundary) {
  const auto g = pin_cell_geometry();
  // From pin center heading +x: first crossing is the fuel circle.
  const double d = g.distance_to_boundary({0.63, 0.63}, 1.0, 0.0);
  EXPECT_NEAR(d, 0.54, 1e-9);
  // From moderator corner heading +x: the circle is ahead.
  const double d2 = g.distance_to_boundary({0.0, 0.63}, 1.0, 0.0);
  EXPECT_NEAR(d2, 0.63 - 0.54, 1e-9);
}

TEST(Geometry, DistanceToOuterBoundaryWhenNothingElseAhead) {
  const auto g = pin_cell_geometry();
  // From just past the circle heading +x at y through the center.
  const double d = g.distance_to_boundary({1.2, 0.63}, 1.0, 0.0);
  EXPECT_NEAR(d, 1.26 - 1.2, 1e-9);
}

TEST(Geometry, QuadLatticeRegionsAndMaterials) {
  const auto g = quad_lattice_geometry();
  EXPECT_EQ(g.num_radial_regions(), 8);  // 4 pins x (fuel + moderator)
  EXPECT_EQ(g.num_axial_layers(), 2);
  EXPECT_EQ(g.num_fsrs(), 16);
  EXPECT_EQ(g.find_radial({0.5, 0.5}).material, 0);   // pin (0,0)
  EXPECT_EQ(g.find_radial({1.5, 0.5}).material, 1);   // pin (1,0)
  EXPECT_EQ(g.find_radial({0.5, 1.5}).material, 2);   // pin (0,1)
  EXPECT_EQ(g.find_radial({1.5, 1.5}).material, 3);   // pin (1,1)
  EXPECT_EQ(g.find_radial({0.99, 0.99}).material, 4); // moderator gap
}

TEST(Geometry, LatticeWallIsABoundaryForTracing) {
  const auto g = quad_lattice_geometry();
  // Moderator at (0.95, 0.5) heading +x: the x=1 lattice wall comes before
  // the next pin's circle.
  const double d = g.distance_to_boundary({0.95, 0.5}, 1.0, 0.0);
  EXPECT_NEAR(d, 0.05, 1e-9);
}

TEST(Geometry, RegionNamesIncludeLatticePath) {
  const auto g = quad_lattice_geometry();
  const auto fuel = g.find_radial({0.5, 0.5});
  EXPECT_NE(g.region_name(fuel.region).find("[0,0]"), std::string::npos);
  EXPECT_NE(g.region_name(fuel.region).find("fuel"), std::string::npos);
}

TEST(Geometry, NestedLatticeTwoLevels) {
  // A 2x2 lattice where each element is itself a 2x2 pin lattice, nested
  // via a fill cell (assembly-in-core, pin-in-assembly — the C5G7 layout).
  GeometryBuilder b;
  const double pin_pitch = 0.5;
  const int circ = b.add_circle(0.0, 0.0, 0.2);
  const int pin = b.add_universe("pin");
  b.add_cell(pin, "fuel", 0, {b.inside(circ)});
  b.add_cell(pin, "mod", 1, {b.outside(circ)});
  const int sub = b.add_centered_lattice("sub", 2, 2, pin_pitch, pin_pitch,
                                         {pin, pin, pin, pin});
  const int asm_u = b.add_universe("assembly");
  b.add_fill_cell(asm_u, "lat", sub, {});
  const int root = b.add_lattice("core", 2, 2, 1.0, 1.0, 0.0, 0.0,
                                 {asm_u, asm_u, asm_u, asm_u});
  b.set_root(root);
  Bounds bounds;
  bounds.x_max = 2.0;
  bounds.y_max = 2.0;
  b.set_bounds(bounds);
  b.add_axial_zone(0.0, 1.0, 1);
  const auto g = b.build();

  // 4 assemblies x 4 pins x 2 cells.
  EXPECT_EQ(g.num_radial_regions(), 32);
  // Pin centers sit at odd multiples of 0.25.
  EXPECT_EQ(g.find_radial({0.25, 0.25}).material, 0);
  EXPECT_EQ(g.find_radial({1.75, 1.75}).material, 0);
  EXPECT_EQ(g.find_radial({0.5, 0.5}).material, 1);
  // Distinct pin instances get distinct regions.
  EXPECT_NE(g.find_radial({0.25, 0.25}).region,
            g.find_radial({0.75, 0.25}).region);
  EXPECT_NE(g.find_radial({0.25, 0.25}).region,
            g.find_radial({1.25, 0.25}).region);
}

// --------------------------------------------------------------- axial ----

TEST(Geometry, AxialLayersPartitionZones) {
  GeometryBuilder b;
  const int u = b.add_universe("slab");
  b.add_cell(u, "all", 0, {});
  b.set_root(u);
  Bounds bounds;
  bounds.x_max = 1.0;
  bounds.y_max = 1.0;
  b.set_bounds(bounds);
  b.add_axial_zone(0.0, 3.0, 3);
  b.add_axial_zone(3.0, 5.0, 1);
  const auto g = b.build();

  EXPECT_EQ(g.num_axial_layers(), 4);
  EXPECT_DOUBLE_EQ(g.layer_z_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(g.layer_z_hi(0), 1.0);
  EXPECT_DOUBLE_EQ(g.layer_z_lo(3), 3.0);
  EXPECT_DOUBLE_EQ(g.layer_z_hi(3), 5.0);
  EXPECT_EQ(g.layer_zone(2), 0);
  EXPECT_EQ(g.layer_zone(3), 1);
  EXPECT_DOUBLE_EQ(g.bounds().z_min, 0.0);
  EXPECT_DOUBLE_EQ(g.bounds().z_max, 5.0);
}

TEST(Geometry, LayerAtLookup) {
  GeometryBuilder b;
  const int u = b.add_universe("slab");
  b.add_cell(u, "all", 0, {});
  b.set_root(u);
  Bounds bounds;
  bounds.x_max = 1.0;
  bounds.y_max = 1.0;
  b.set_bounds(bounds);
  b.add_axial_zone(0.0, 4.0, 4);
  const auto g = b.build();
  EXPECT_EQ(g.layer_at(-1.0), 0);
  EXPECT_EQ(g.layer_at(0.5), 0);
  EXPECT_EQ(g.layer_at(1.5), 1);
  EXPECT_EQ(g.layer_at(3.999), 3);
  EXPECT_EQ(g.layer_at(99.0), 3);
}

TEST(Geometry, ZoneMaterialOverrideChangesFsrMaterial) {
  GeometryBuilder b;
  const int circ = b.add_circle(0.0, 0.0, 0.4);
  const int pin = b.add_universe("pin");
  b.add_cell(pin, "fuel", 0, {b.inside(circ)});
  b.add_cell(pin, "mod", 1, {b.outside(circ)});
  const int lat = b.add_lattice("root", 1, 1, 1.0, 1.0, 0.0, 0.0, {pin});
  b.set_root(lat);
  Bounds bounds;
  bounds.x_max = 1.0;
  bounds.y_max = 1.0;
  b.set_bounds(bounds);
  b.add_axial_zone(0.0, 2.0, 2);   // fuel zone
  b.add_axial_zone(2.0, 3.0, 1);   // reflector zone: fuel -> moderator
  b.override_zone_material(1, /*from=*/0, /*to=*/1);
  const auto g = b.build();

  const int fuel_region = g.find_radial({0.5, 0.5}).region;
  EXPECT_EQ(g.fsr_material(g.fsr_id(fuel_region, 0)), 0);
  EXPECT_EQ(g.fsr_material(g.fsr_id(fuel_region, 1)), 0);
  EXPECT_EQ(g.fsr_material(g.fsr_id(fuel_region, 2)), 1);  // overridden
  // Moderator region unchanged in all layers.
  const int mod_region = g.find_radial({0.05, 0.05}).region;
  for (int l = 0; l < 3; ++l)
    EXPECT_EQ(g.fsr_material(g.fsr_id(mod_region, l)), 1);
}

TEST(Geometry, FsrIndexRoundTrip) {
  const auto g = quad_lattice_geometry();
  for (int r = 0; r < g.num_radial_regions(); ++r)
    for (int l = 0; l < g.num_axial_layers(); ++l) {
      const long fsr = g.fsr_id(r, l);
      EXPECT_EQ(g.fsr_radial_region(fsr), r);
      EXPECT_EQ(g.fsr_layer(fsr), l);
    }
}

// -------------------------------------------------------------- builder ---

TEST(Builder, RejectsInvalidInput) {
  GeometryBuilder b;
  EXPECT_THROW(b.add_circle(0, 0, -1.0), Error);
  EXPECT_THROW(b.add_cell(99, "x", 0, {}), Error);
  EXPECT_THROW(b.add_lattice("l", 2, 2, 1, 1, 0, 0, {0}), Error);
  EXPECT_THROW(b.add_lattice("l", 0, 2, 1, 1, 0, 0, {}), Error);
}

TEST(Builder, BuildWithoutRootThrows) {
  GeometryBuilder b;
  Bounds bounds;
  bounds.x_max = 1.0;
  bounds.y_max = 1.0;
  b.set_bounds(bounds);
  b.add_axial_zone(0.0, 1.0, 1);
  EXPECT_THROW(b.build(), Error);
}

TEST(Builder, BuildWithoutZonesThrows) {
  GeometryBuilder b;
  const int u = b.add_universe("u");
  b.add_cell(u, "c", 0, {});
  b.set_root(u);
  Bounds bounds;
  bounds.x_max = 1.0;
  bounds.y_max = 1.0;
  b.set_bounds(bounds);
  EXPECT_THROW(b.build(), Error);
}

TEST(Builder, NonContiguousZonesThrow) {
  GeometryBuilder b;
  b.add_axial_zone(0.0, 1.0, 1);
  EXPECT_THROW(b.add_axial_zone(1.5, 2.0, 1), Error);
}

TEST(Builder, EmptyUniverseRejectedAtBuild) {
  GeometryBuilder b;
  const int u = b.add_universe("empty");
  b.set_root(u);
  Bounds bounds;
  bounds.x_max = 1.0;
  bounds.y_max = 1.0;
  b.set_bounds(bounds);
  b.add_axial_zone(0.0, 1.0, 1);
  EXPECT_THROW(b.build(), Error);
}

TEST(Builder, BoundaryConditionsStored) {
  GeometryBuilder b;
  const int u = b.add_universe("u");
  b.add_cell(u, "c", 0, {});
  b.set_root(u);
  Bounds bounds;
  bounds.x_max = 1.0;
  bounds.y_max = 1.0;
  b.set_bounds(bounds);
  b.add_axial_zone(0.0, 1.0, 1);
  b.set_boundary(Face::kXMin, BoundaryType::kReflective);
  b.set_boundary(Face::kZMax, BoundaryType::kVacuum);
  const auto g = b.build();
  EXPECT_EQ(g.boundary(Face::kXMin), BoundaryType::kReflective);
  EXPECT_EQ(g.boundary(Face::kXMax), BoundaryType::kVacuum);
  EXPECT_EQ(g.boundary(Face::kZMax), BoundaryType::kVacuum);
}

// ----------------------------------------------------- tracing property ---

TEST(GeometryProperty, SegmentLengthsTileAnyChord) {
  // March across the quad lattice along many rays; the sum of step lengths
  // must equal the chord length through the bounding box.
  const auto g = quad_lattice_geometry();
  for (double y : {0.13, 0.5, 0.77, 1.0 - 1e-6, 1.31, 1.9}) {
    Point2 p{0.0, y};
    double traveled = 0.0;
    int steps = 0;
    while (traveled < 2.0 - 1e-9 && steps < 100) {
      const double d = g.distance_to_boundary(p, 1.0, 0.0);
      ASSERT_GT(d, 0.0);
      const double step = std::min(d, 2.0 - traveled);
      traveled += step;
      p.x += step;
      ++steps;
    }
    EXPECT_NEAR(traveled, 2.0, 1e-9) << "y=" << y;
    EXPECT_LT(steps, 100);
  }
}

TEST(GeometryProperty, FuelAreaFractionMatchesMonteCarloProbe) {
  // Area of the fuel circle / pin area, sampled on a grid, must match
  // pi r^2 / pitch^2 to grid accuracy — validates find_radial geometry.
  const auto g = pin_cell_geometry();
  const int n = 400;
  int fuel_hits = 0;
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) {
      const Point2 p{(i + 0.5) * 1.26 / n, (j + 0.5) * 1.26 / n};
      if (g.find_radial(p).material == 0) ++fuel_hits;
    }
  const double measured = static_cast<double>(fuel_hits) / (n * n);
  const double expected = kPi * 0.54 * 0.54 / (1.26 * 1.26);
  EXPECT_NEAR(measured, expected, 0.002);
}

}  // namespace
}  // namespace antmoc
